package turnpike

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// ByNameForTest re-exports the workload lookup for the façade tests.
func ByNameForTest(name string) (Profile, bool) { return workload.ByName(name) }

func TestEvaluateSchemes(t *testing.T) {
	cfg := EvalConfig{ScalePct: 4}
	base, err := Evaluate("gcc", Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Evaluate("gcc", Turnstile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Evaluate("gcc", Turnpike, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Overhead != 1.0 {
		t.Fatalf("baseline overhead = %v", base.Overhead)
	}
	if !(tp.Overhead < ts.Overhead) {
		t.Fatalf("turnpike (%.3f) not faster than turnstile (%.3f)", tp.Overhead, ts.Overhead)
	}
	if tp.Compile.Checkpoints == 0 || tp.Compile.Regions == 0 {
		t.Fatalf("turnpike compile stats empty: %+v", tp.Compile)
	}
}

func TestEvaluateUnknownBenchmark(t *testing.T) {
	if _, err := Evaluate("nonesuch", Turnpike, EvalConfig{}); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 36 {
		t.Fatalf("%d benchmarks, want 36", len(names))
	}
	if len(Benchmarks()) != 36 {
		t.Fatal("Benchmarks() mismatch")
	}
}

func TestInjectFaultsNoSDC(t *testing.T) {
	res, err := InjectFaults("fft", Turnpike, FaultCampaignConfig{Trials: 25, ScalePct: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes == nil {
		t.Fatal("no outcomes")
	}
	if _, err := InjectFaults("fft", Baseline, FaultCampaignConfig{}); err == nil {
		t.Fatal("baseline campaign accepted")
	}
}

func TestWCDLForSensors(t *testing.T) {
	w, err := WCDLForSensors(300, 1.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if w < 8 || w > 12 {
		t.Fatalf("WCDL = %d, want ~10", w)
	}
	if _, err := WCDLForSensors(0, 1, 1); err == nil {
		t.Fatal("accepted zero sensors")
	}
}

func TestNewExperimentRunner(t *testing.T) {
	r := NewExperimentRunner(3)
	if r == nil || r.Scale != 3 {
		t.Fatal("runner misconfigured")
	}
}

func TestArtifactRoundTripAndAudit(t *testing.T) {
	res, err := Evaluate("fft", Turnpike, EvalConfig{ScalePct: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	p, _ := ByNameForTest("fft")
	compiled, err := Compile(p.Build(3), CompileOptions{
		Scheme: Turnpike, SBSize: 4, Prune: true, ColoredCkpts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveProgram(compiled.Prog, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArtifact(loaded, 2, true); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Insts) != len(compiled.Prog.Insts) {
		t.Fatal("artifact size changed")
	}
	// Tamper: the audit must catch it.
	loaded.Insts[loaded.Regions[0].RecoveryPC] = isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2, Kind: isa.StoreProgram}
	if err := VerifyArtifact(loaded, 2, true); err == nil {
		t.Fatal("audit accepted a tampered artifact")
	}
}
