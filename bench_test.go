package turnpike

// One benchmark per table and figure of the paper's evaluation (§6). Each
// regenerates the corresponding result through the experiment harness and
// reports the headline quantity as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Workload scale is kept moderate so a
// full -bench=. run finishes in minutes; raise benchScale for closer
// statistics (the shapes are stable across scales).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/hwcost"
	"repro/internal/pipeline"
	"repro/internal/sensor"
)

// benchScale is the workload trip-count percentage used by the benchmark
// harness runs.
const benchScale = 12

func geoOf(m map[string]float64) float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, v)
	}
	return experiment.Geomean(xs)
}

// BenchmarkFig04CheckpointRatio regenerates Figure 4: the dynamic
// checkpoint fraction under Turnstile partitioning with 40- vs 4-entry
// store buffers.
func BenchmarkFig04CheckpointRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig4(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*geoOf(res.Ratio[4]), "ckpt%-sb4")
		b.ReportMetric(100*geoOf(res.Ratio[40]), "ckpt%-sb40")
	}
}

// BenchmarkFig14CLQOverhead regenerates Figure 14: normalized execution
// time under the ideal versus the compact CLQ with hardware-only fast
// release.
func BenchmarkFig14CLQOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig14(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoOf(res.Ideal), "geo-ideal")
		b.ReportMetric(geoOf(res.Compact), "geo-compact")
	}
}

// BenchmarkFig15WARFreeRatio regenerates Figure 15: the fraction of stores
// detected WAR-free by each CLQ design.
func BenchmarkFig15WARFreeRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig15(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		var mi, mc []float64
		for _, v := range res.Ideal {
			mi = append(mi, v)
		}
		for _, v := range res.Compact {
			mc = append(mc, v)
		}
		b.ReportMetric(100*experiment.Mean(mi), "warfree%-ideal")
		b.ReportMetric(100*experiment.Mean(mc), "warfree%-compact")
	}
}

// BenchmarkFig18SensorLatency regenerates Figure 18: WCDL versus deployed
// sensor count across clock frequencies.
func BenchmarkFig18SensorLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig18()
		b.ReportMetric(float64(res.Latency[25][300]), "wcdl-300@2.5GHz")
		b.ReportMetric(float64(res.Latency[25][30]), "wcdl-30@2.5GHz")
		_ = sensor.Model{}
	}
}

// BenchmarkFig19TurnpikeWCDL regenerates Figure 19: Turnpike overhead
// across WCDL 10..50.
func BenchmarkFig19TurnpikeWCDL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig19(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoOf(res.Overhead[10]), "geo-DL10")
		b.ReportMetric(geoOf(res.Overhead[50]), "geo-DL50")
	}
}

// BenchmarkFig20TurnstileWCDL regenerates Figure 20: Turnstile overhead
// across WCDL 10..50.
func BenchmarkFig20TurnstileWCDL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig20(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoOf(res.Overhead[10]), "geo-DL10")
		b.ReportMetric(geoOf(res.Overhead[50]), "geo-DL50")
	}
}

// BenchmarkFig21Breakdown regenerates Figure 21: the cumulative
// optimization ablation at WCDL 10.
func BenchmarkFig21Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig21(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoOf(res.Overhead[res.Configs[0]]), "geo-turnstile")
		b.ReportMetric(geoOf(res.Overhead[res.Configs[len(res.Configs)-1]]), "geo-turnpike")
	}
}

// BenchmarkFig22SBSize regenerates Figure 22: the store-buffer size
// sensitivity of both schemes.
func BenchmarkFig22SBSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig22(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoOf(res.Turnstile[40]), "geo-turnstile-sb40")
		b.ReportMetric(geoOf(res.Turnpike[4]), "geo-turnpike-sb4")
	}
}

// BenchmarkFig23StoreBreakdown regenerates Figure 23: the seven-way store
// classification.
func BenchmarkFig23StoreBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig23(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		released := 0.0
		pruned := 0.0
		n := 0.0
		for _, bd := range res.Breakdown {
			released += bd["Colored"] + bd["WAR-free store"]
			pruned += bd["Pruned"]
			n++
		}
		b.ReportMetric(100*released/n, "released%")
		b.ReportMetric(100*pruned/n, "pruned%")
	}
}

// BenchmarkFig24CLQEntries regenerates Figure 24: populated CLQ entries.
func BenchmarkFig24CLQEntries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig24(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		var avgs, maxs []float64
		for _, v := range res.Avg {
			avgs = append(avgs, v)
		}
		for _, v := range res.Max {
			maxs = append(maxs, v)
		}
		b.ReportMetric(experiment.Mean(avgs), "clq-avg")
		b.ReportMetric(experiment.Mean(maxs), "clq-maxavg")
	}
}

// BenchmarkFig25CLQSize regenerates Figure 25: 2- versus 4-entry CLQs.
func BenchmarkFig25CLQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig25(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoOf(res.CLQ2), "geo-clq2")
		b.ReportMetric(geoOf(res.CLQ4), "geo-clq4")
	}
}

// BenchmarkFig26RegionSize regenerates Figure 26: region sizes and code
// growth.
func BenchmarkFig26RegionSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		res, err := experiment.Fig26(r, 10)
		if err != nil {
			b.Fatal(err)
		}
		var sizes, growth []float64
		for _, v := range res.RegionSize {
			sizes = append(sizes, v)
		}
		for _, v := range res.CodeGrowth {
			growth = append(growth, v)
		}
		b.ReportMetric(experiment.Mean(sizes), "insts/region")
		b.ReportMetric(experiment.Mean(growth), "codegrowth%")
	}
}

// BenchmarkTable1HardwareCost regenerates Table 1: the analytical area and
// energy model for the co-design structures.
func BenchmarkTable1HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hwcost.Default22nm()
		a, e, a40, e40 := hwcost.Ratios(m)
		b.ReportMetric(a, "tp-area%")
		b.ReportMetric(e, "tp-energy%")
		b.ReportMetric(a40, "sb40-area%")
		b.ReportMetric(e40, "sb40-energy%")
	}
}

// BenchmarkFaultCampaign measures detection+recovery behaviour: the
// recovery guarantee (no SDC) plus the mean recovery penalty, exercising
// the full co-design end to end.
func BenchmarkFaultCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := InjectFaults("gcc", Turnpike, FaultCampaignConfig{Trials: 40, Seed: 7, ScalePct: 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcomes[fault.SDC] != 0 {
			b.Fatal("SDC observed")
		}
		b.ReportMetric(res.AvgRecoveryCycles, "recovery-cycles")
	}
}

// BenchmarkSimulatorThroughput measures the raw simulator speed, the main
// cost driver of every other benchmark here.
func BenchmarkSimulatorThroughput(b *testing.B) {
	res, err := Evaluate("gcc", Turnpike, EvalConfig{ScalePct: 25})
	if err != nil {
		b.Fatal(err)
	}
	insts := res.Stats.Insts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate("gcc", Turnpike, EvalConfig{ScalePct: 25}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(insts), "insts/run")
	_ = core.Options{}
	_ = pipeline.Config{}
}
