// Codesign: dissect where Turnpike's win comes from by turning the
// optimizations on one at a time — the paper's Fig. 21 ablation — and by
// inspecting what happens to the stores (Fig. 23's categories): pruned,
// eliminated by LICM/RA/LIVM, fast-released through the CLQ or the color
// maps, or quarantined like Turnstile would.
//
//	go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	bench := "exchange2"
	p, _ := workload.ByName(bench)
	f := p.Build(12)

	base, err := core.Compile(f, core.Options{Scheme: core.Baseline, SBSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	baseStats := simulate(p, base, pipeline.BaselineConfig(4))
	fmt.Printf("%s baseline: %d cycles\n\n", bench, baseStats.Cycles)

	steps := []struct {
		name string
		opt  core.Options
		cfg  pipeline.Config
	}{
		{"Turnstile (quarantine everything)",
			core.Options{Scheme: core.Turnstile, SBSize: 4},
			pipeline.TurnstileConfig(4, 10)},
		{"+ WAR-free fast release (CLQ)",
			core.Options{Scheme: core.Turnstile, SBSize: 4},
			warOnly()},
		{"+ HW coloring (checkpoints bypass too)",
			core.Options{Scheme: core.Turnstile, SBSize: 4},
			pipeline.TurnpikeConfig(4, 10)},
		{"+ checkpoint pruning",
			core.Options{Scheme: core.Turnpike, SBSize: 4, ColoredCkpts: true, Prune: true},
			pipeline.TurnpikeConfig(4, 10)},
		{"+ checkpoint LICM/sinking",
			core.Options{Scheme: core.Turnpike, SBSize: 4, ColoredCkpts: true, Prune: true, Sink: true},
			pipeline.TurnpikeConfig(4, 10)},
		{"+ checkpoint-aware scheduling",
			core.Options{Scheme: core.Turnpike, SBSize: 4, ColoredCkpts: true, Prune: true, Sink: true, Sched: true},
			pipeline.TurnpikeConfig(4, 10)},
		{"+ store-aware register allocation",
			core.Options{Scheme: core.Turnpike, SBSize: 4, ColoredCkpts: true, Prune: true, Sink: true, Sched: true, StoreAwareRA: true},
			pipeline.TurnpikeConfig(4, 10)},
		{"+ induction variable merging = Turnpike",
			core.TurnpikeAll(4),
			pipeline.TurnpikeConfig(4, 10)},
	}

	fmt.Printf("%-42s %9s %9s\n", "configuration", "cycles", "overhead")
	for _, s := range steps {
		compiled, err := core.Compile(f, s.opt)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		st := simulate(p, compiled, s.cfg)
		fmt.Printf("%-42s %9d %8.1f%%\n", s.name, st.Cycles,
			100*(float64(st.Cycles)/float64(baseStats.Cycles)-1))
	}

	// Store anatomy under the full scheme.
	full, err := core.Compile(f, core.TurnpikeAll(4))
	if err != nil {
		log.Fatal(err)
	}
	st := simulate(p, full, pipeline.TurnpikeConfig(4, 10))
	all := st.ProgStores + st.SpillStores + st.CkptStores
	fmt.Printf("\nstore anatomy under full Turnpike (%d dynamic stores):\n", all)
	fmt.Printf("  released WAR-free via CLQ : %d (%.0f%%)\n", st.WARFreeReleased, pct(st.WARFreeReleased, all))
	fmt.Printf("  released via coloring     : %d (%.0f%%)\n", st.ColoredReleased, pct(st.ColoredReleased, all))
	fmt.Printf("  quarantined (verified)    : %d (%.0f%%)\n", st.Quarantined, pct(st.Quarantined, all))
	fmt.Printf("  static checkpoints pruned by the compiler: %d\n", full.Stats.PrunedCkpts)
	fmt.Printf("  checkpoints sunk (in-block / out-of-loop): %d / %d\n",
		full.Stats.SunkInBlock, full.Stats.SunkOutOfLoop)
	fmt.Printf("  induction variables merged: %d\n", full.Stats.LIVMMerged)
}

func warOnly() pipeline.Config {
	c := pipeline.TurnstileConfig(4, 10)
	c.WARFreeRelease = true
	return c
}

func simulate(p workload.Profile, c *core.Compiled, cfg pipeline.Config) pipeline.Stats {
	s, err := pipeline.New(c.Prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p.SeedMemory(s.Mem)
	st, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
