// Fault injection: strike a register mid-flight with a bit flip, watch the
// acoustic-sensor model detect it within WCDL, and follow the recovery
// through the region boundary buffer and the compiler-generated recovery
// block. The run then proves the output still matches the fault-free image
// — the paper's "no silent data corruption" guarantee, live.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	// Step 1: single visible injection on the gcc kernel.
	p, _ := workload.ByName("gcc")
	f := p.Build(6)
	compiled, err := turnpike.Compile(f, turnpike.CompileOptions{
		Scheme: turnpike.Turnpike, SBSize: 4,
		StoreAwareRA: true, LIVM: true, Prune: true, Sink: true, Sched: true,
		ColoredCkpts: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := pipeline.TurnpikeConfig(4, 10)

	golden := runOnce(compiled.Prog, cfg, p, nil)
	fmt.Printf("fault-free run: %d non-zero output words\n", golden.Len())

	inj := struct {
		reg     isa.Reg
		bit     uint
		atInst  uint64
		latency int
	}{reg: 7, bit: 13, atInst: 900, latency: 6}

	sim, err := pipeline.New(compiled.Prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p.SeedMemory(sim.Mem)
	injected := false
	for !sim.Halted() {
		if !injected && sim.Stats.Insts >= inj.atInst {
			fmt.Printf("\ncycle %-6d strike: flipping bit %d of %v (value %#x)\n",
				sim.Cycle(), inj.bit, inj.reg, sim.Regs[inj.reg])
			if err := sim.InjectBitFlip(inj.reg, inj.bit, inj.latency); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("cycle %-6d sensors will report within %d cycles (WCDL %d)\n",
				sim.Cycle(), inj.latency, cfg.WCDL)
			injected = true
		}
		before := sim.Stats.Recoveries
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
		if sim.Stats.Recoveries != before {
			fmt.Printf("cycle %-6d detection: store buffer flushed, colors squashed,\n", sim.Cycle())
			fmt.Printf("             fetch redirected to recovery block at pc %d\n", sim.PC)
		}
	}
	got := maskStack(sim.OutputMemory())
	if !golden.Equal(got) {
		log.Fatalf("SILENT DATA CORRUPTION:\n%s", golden.Diff(got, 8))
	}
	fmt.Printf("cycle %-6d halt: output identical to the fault-free run\n", sim.Stats.Cycles)
	fmt.Printf("recovery cost: %d cycles (%d recovery, %d parity events)\n\n",
		sim.Stats.RecoveryCycles, sim.Stats.Recoveries, sim.Stats.ParityTrips)

	// Step 2: a statistical campaign over random strikes.
	res, err := turnpike.InjectFaults("gcc", turnpike.Turnpike, turnpike.FaultCampaignConfig{
		Trials: 200, Seed: 42, ScalePct: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign over 200 random strikes: masked=%d recovered=%d SDC=%d\n",
		res.Outcomes[fault.Masked], res.Outcomes[fault.Recovered], res.Outcomes[fault.SDC])
	if res.Outcomes[fault.SDC] != 0 {
		log.Fatal("the guarantee is broken")
	}
	fmt.Println("zero silent data corruptions — the resilience guarantee holds.")
}

func runOnce(prog *turnpike.Program, cfg turnpike.SimConfig, p workload.Profile, _ interface{}) *isa.Memory {
	sim, err := pipeline.New(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p.SeedMemory(sim.Mem)
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	return maskStack(sim.OutputMemory())
}

func maskStack(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}
