// Sweep: reproduce the shape of the paper's headline figures (19/20) on a
// handful of benchmarks — run-time overhead of Turnstile and Turnpike as
// the sensor mesh shrinks (worst-case detection latency 10..50 cycles),
// plus the sensor-count axis those latencies correspond to (Fig. 18).
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	turnpike "repro"
	"repro/internal/sensor"
)

func main() {
	benches := []string{"gcc", "lbm", "exchange2", "mcf", "fft"}
	wcdls := []int{10, 20, 30, 40, 50}

	fmt.Println("sensor mesh sizing (1mm² die, 2.5GHz — Fig. 18's model):")
	for _, w := range wcdls {
		n := sensor.SensorsForWCDL(w, 1.0, 2.5)
		fmt.Printf("  WCDL %2d cycles needs ≥%d sensors\n", w, n)
	}
	fmt.Println()

	fmt.Printf("%-10s", "benchmark")
	for _, w := range wcdls {
		fmt.Printf("  TS-DL%-3d TP-DL%-3d", w, w)
	}
	fmt.Println()

	for _, b := range benches {
		fmt.Printf("%-10s", b)
		for _, w := range wcdls {
			ts, err := turnpike.Evaluate(b, turnpike.Turnstile, turnpike.EvalConfig{WCDL: w, ScalePct: 12})
			if err != nil {
				log.Fatal(err)
			}
			tp, err := turnpike.Evaluate(b, turnpike.Turnpike, turnpike.EvalConfig{WCDL: w, ScalePct: 12})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8.3f %-8.3f", ts.Overhead, tp.Overhead)
		}
		fmt.Println()
	}
	fmt.Println("\nTS = Turnstile, TP = Turnpike; values are normalized execution time.")
	fmt.Println("Expect Turnstile to degrade steeply with WCDL while Turnpike stays")
	fmt.Println("near 1.0 — the paper's Figs. 19/20 in miniature.")
}
