// Quickstart: compile a kernel you define yourself under all three
// schemes, run it on the in-order core model, and verify both the outputs
// and the overhead ordering the paper reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	turnpike "repro"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// buildDotProduct constructs IR for: out = Σ a[i]*b[i], i in [0,n).
// This is what a frontend would emit; the package's compiler handles
// strength reduction, region partitioning, and checkpointing from here.
func buildDotProduct(n int64) *turnpike.Func {
	b := ir.NewBuilder("dot")
	a := b.MovI(int64(isa.DataBase))
	bb := b.MovI(int64(isa.DataBase) + 1<<16)
	out := b.MovI(int64(isa.DataBase) + 1<<17)
	i := b.MovI(0)
	sum := b.MovI(0)

	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, n, exit, body)
	b.SetBlock(body)
	off := b.OpI(isa.SHL, i, 3)
	av := b.Load(b.Op(isa.ADD, a, off), 0)
	bv := b.Load(b.Op(isa.ADD, bb, off), 0)
	b.OpTo(isa.ADD, sum, sum, b.Op(isa.MUL, av, bv))
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)
	b.SetBlock(exit)
	b.Store(out, 0, sum)
	b.Halt()
	return b.MustFinish()
}

func seed(mem *isa.Memory) {
	for i := uint64(0); i < 512; i++ {
		mem.Store(isa.DataBase+i*8, i+1)
		mem.Store(isa.DataBase+1<<16+i*8, 2*i+1)
	}
}

func main() {
	f := buildDotProduct(512)

	type variant struct {
		name string
		opt  turnpike.CompileOptions
		cfg  turnpike.SimConfig
	}
	variants := []variant{
		{"baseline", turnpike.CompileOptions{Scheme: turnpike.Baseline}, pipeline.BaselineConfig(4)},
		{"turnstile", turnpike.CompileOptions{Scheme: turnpike.Turnstile, SBSize: 4}, pipeline.TurnstileConfig(4, 10)},
		{"turnpike", func() turnpike.CompileOptions {
			o := turnpike.CompileOptions{Scheme: turnpike.Turnpike, SBSize: 4,
				StoreAwareRA: true, LIVM: true, Prune: true, Sink: true, Sched: true, ColoredCkpts: true}
			return o
		}(), pipeline.TurnpikeConfig(4, 10)},
	}

	var baseCycles uint64
	var want uint64
	for _, v := range variants {
		compiled, err := turnpike.Compile(f, v.opt)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		sim, err := pipeline.New(compiled.Prog, v.cfg)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		seed(sim.Mem)
		st, err := sim.Run()
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		got := sim.OutputMemory().Load(isa.DataBase + 1<<17)
		if want == 0 {
			want = got
		} else if got != want {
			log.Fatalf("%s computed %d, want %d — schemes must agree", v.name, got, want)
		}
		if v.name == "baseline" {
			baseCycles = st.Cycles
		}
		fmt.Printf("%-10s dot=%d  cycles=%-7d overhead=%.1f%%  regions=%d ckpts=%d\n",
			v.name, got, st.Cycles,
			100*(float64(st.Cycles)/float64(baseCycles)-1),
			compiled.Stats.Regions, compiled.Stats.Checkpoints)
	}
	fmt.Println("\nall three schemes computed the same dot product; turnpike's overhead")
	fmt.Println("sits between baseline and turnstile, matching the paper's headline.")
}
