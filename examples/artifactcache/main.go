// Artifact cache: the content-addressed compiled-program cache behind
// the multi-tenant front door. A submitted IR text is fingerprinted over
// its canonical form, compiled once under every scheme (single-flight —
// concurrent identical submissions share one compile), audited by the
// independent resilience verifier, and served from the cache for every
// later submission or campaign. The example also ships one image over
// the wire and proves the deserialized artifact is the same program.
//
//	go run ./examples/artifactcache
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"repro/internal/artifact"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// What a tenant would POST to /programs: textual IR that initializes its
// own memory.
const submission = `func dot
b0: -> b1
    movi v0, #7
    movi v1, #0
b1: -> b2 b1
    ld v2, [v1, #0]
    ld v3, [v1, #1024]
    mul v2, v2, v3
    add v0, v0, v2
    add v1, v1, #8
    blt v1, #64
b2:
    st v0, [v1, #4096]
    halt
`

// The same program as a careless client would format it.
const resubmission = "func dot\n\nb0:   ->  b1\n  movi v0, #7\n\tmovi v1, #0\n" +
	"b1: -> b2 b1\n  ld v2, [v1, #0]\n  ld v3, [v1, #1024]\n  mul v2, v2, v3\n" +
	"  add v0, v0, v2\n  add v1, v1, #8\n  blt v1, #64\nb2:\n  st v0, [v1, #4096]\n  halt\n"

func main() {
	cache := artifact.NewCache(64<<20, nil)

	// Eight concurrent submissions of the same program: the cache's
	// single-flight dedup runs exactly one compile and every submitter
	// shares the result.
	f, err := ir.ParseFuncLimits(submission, ir.DefaultParseLimits())
	if err != nil {
		log.Fatal(err)
	}
	fp := artifact.Fingerprint(f)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cache.GetOrCompute(fp, func() (*artifact.Entry, error) {
				return artifact.CompileAll(f.Clone(), 4, len(submission))
			}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	st := cache.Stats()
	fmt.Printf("8 concurrent submissions of %s: %d compile(s), %d resident entries\n",
		fp[:12], st.Compiles, st.Entries)

	// A resubmission with different formatting canonicalizes to the same
	// fingerprint, so it is a pure cache hit — zero new compiles.
	f2, err := ir.ParseFuncLimits(resubmission, ir.DefaultParseLimits())
	if err != nil {
		log.Fatal(err)
	}
	if artifact.Fingerprint(f2) != fp {
		log.Fatal("formatting changed the fingerprint")
	}
	entry, hit := cache.Get(fp)
	if !hit {
		log.Fatal("resubmission missed the cache")
	}
	fmt.Printf("reformatted resubmission: cache hit, still %d compile(s)\n", cache.Stats().Compiles)
	fmt.Printf("entry carries %d schemes, %d bytes of artifacts\n", len(entry.Schemes), entry.Size())

	// Ship the turnpike image to a "device" and audit it there, exactly
	// as a fleet worker would before campaigning against it.
	var image bytes.Buffer
	if _, err := entry.Schemes["turnpike"].WriteTo(&image); err != nil {
		log.Fatal(err)
	}
	loaded, err := isa.ReadProgram(bytes.NewReader(image.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// Same artifact, same results.
	run := func(prog *isa.Program) (uint64, *isa.Memory) {
		s, err := pipeline.New(prog, pipeline.TurnpikeConfig(entry.SBSize, 10))
		if err != nil {
			log.Fatal(err)
		}
		st, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st.Cycles, s.OutputMemory()
	}
	c1, m1 := run(entry.Schemes["turnpike"])
	c2, m2 := run(loaded)
	if c1 != c2 || !m1.Equal(m2) {
		log.Fatalf("deserialized artifact diverged: %d vs %d cycles", c1, c2)
	}
	fmt.Printf("cached and deserialized artifacts agree: %d cycles, %d output words\n",
		c1, m1.Len())
}
