// Artifact cache: compile once, serialize the binary (including its
// recovery metadata), load it back, and prove the deserialized program is
// the same artifact — same simulation results, and it still passes the
// independent resilience verifier. This is how a deployment would ship
// pre-compiled resilient kernels to fleets of in-order devices.
//
//	go run ./examples/artifactcache
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	p, _ := workload.ByName("fft")
	f := p.Build(10)
	compiled, err := core.Compile(f, core.TurnpikeAll(4))
	if err != nil {
		log.Fatal(err)
	}

	// Serialize (a file in a real deployment; a buffer here).
	var image bytes.Buffer
	n, err := compiled.Prog.WriteTo(&image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d instructions, %d regions -> %d bytes on the wire\n",
		p.Name, len(compiled.Prog.Insts), len(compiled.Prog.Regions), n)

	// Load on the "device".
	loaded, err := isa.ReadProgram(bytes.NewReader(image.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// The device can audit the artifact before trusting it.
	if err := core.VerifyResilience(loaded, 2, false); err != nil {
		log.Fatalf("artifact failed the resilience audit: %v", err)
	}
	fmt.Println("artifact passed the static resilience audit")

	// Same artifact, same results.
	run := func(prog *isa.Program) (uint64, *isa.Memory) {
		s, err := pipeline.New(prog, pipeline.TurnpikeConfig(4, 10))
		if err != nil {
			log.Fatal(err)
		}
		p.SeedMemory(s.Mem)
		st, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st.Cycles, s.OutputMemory()
	}
	c1, m1 := run(compiled.Prog)
	c2, m2 := run(loaded)
	if c1 != c2 || !m1.Equal(m2) {
		log.Fatalf("deserialized artifact diverged: %d vs %d cycles", c1, c2)
	}
	fmt.Printf("original and deserialized artifacts agree: %d cycles, %d output words\n",
		c1, m1.Len())
}
