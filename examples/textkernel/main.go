// Text kernel: author a kernel in the textual IR format, parse it, compile
// it under Turnpike, audit the artifact, and measure its overhead — the
// full workflow without writing a line of builder code.
//
//	go run ./examples/textkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// saxpy: y[i] = a*x[i] + y[i] over 256 elements, then a checksum.
const saxpy = `
func saxpy
b0: -> b1
    movi v0, #65536
    movi v1, #131072
    movi v2, #3
    movi v3, #0
    movi v4, #0
b1: -> b3 b2
    bge v3, #256
b2: -> b1
    shl v5, v3, #3
    add v6, v0, v5
    ld v7, [v6, #0]
    mul v7, v7, v2
    add v8, v1, v5
    ld v9, [v8, #0]
    add v9, v9, v7
    st v9, [v8, #0]
    add v4, v4, v9
    add v3, v3, #1
    jmp
b3:
    st v4, [v1, #65536]
    halt
`

func main() {
	f, err := ir.ParseFunc(saxpy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d blocks, %d instructions, %d virtual registers\n",
		f.Name, len(f.Blocks), f.InstrCount(), f.NumVRegs)

	seed := func(mem *isa.Memory) {
		for i := uint64(0); i < 256; i++ {
			mem.Store(0x10000+i*8, i)   // x
			mem.Store(0x20000+i*8, 2*i) // y
		}
	}

	type result struct {
		name   string
		cycles uint64
	}
	var results []result
	for _, v := range []struct {
		name string
		opt  core.Options
		cfg  pipeline.Config
	}{
		{"baseline", core.Options{Scheme: core.Baseline}, pipeline.BaselineConfig(4)},
		{"turnstile", core.Options{Scheme: core.Turnstile, SBSize: 4}, pipeline.TurnstileConfig(4, 10)},
		{"turnpike", core.TurnpikeAll(4), pipeline.TurnpikeConfig(4, 10)},
	} {
		compiled, err := core.Compile(f, v.opt)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		if v.opt.Scheme != core.Baseline {
			// Checkpoints count against the quarantine budget only when the
			// core lacks hardware coloring.
			budget := compiled.Stats.StoreBudget
			countCkpts := !v.opt.ColoredCkpts
			if err := core.VerifyResilience(compiled.Prog, budget, countCkpts); err != nil {
				log.Fatalf("%s failed the audit: %v", v.name, err)
			}
		}
		s, err := pipeline.New(compiled.Prog, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		seed(s.Mem)
		st, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		checksum := s.OutputMemory().Load(0x20000 + 65536)
		fmt.Printf("%-10s cycles=%-7d checksum=%d\n", v.name, st.Cycles, checksum)
		results = append(results, result{v.name, st.Cycles})
	}
	base := float64(results[0].cycles)
	fmt.Printf("\noverheads: turnstile %+.1f%%, turnpike %+.1f%%\n",
		100*(float64(results[1].cycles)/base-1),
		100*(float64(results[2].cycles)/base-1))
}
