// Command diag prints per-benchmark stall breakdowns and the marginal cost
// of checkpoint instructions — the calibration instrument used while
// matching the paper's overhead shapes (not part of the evaluated tooling).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	names := []string{"lbm", "gcc", "mcf", "gemsfdtd", "exchange2", "radix", "libquan"}
	for _, name := range names {
		p, _ := workload.ByName(name)
		f := p.Build(10)
		base, err := core.Compile(f, core.Options{Scheme: core.Baseline, SBSize: 4})
		check(err)
		ts, err := core.Compile(f, core.Options{Scheme: core.Turnstile, SBSize: 4})
		check(err)
		tp, err := core.Compile(f, core.TurnpikeAll(4))
		check(err)
		b := run(p, base.Prog, pipeline.BaselineConfig(4))
		t := run(p, ts.Prog, pipeline.TurnstileConfig(4, 10))
		q := run(p, tp.Prog, pipeline.TurnpikeConfig(4, 10))
		fmt.Printf("%-10s base cyc=%d insts=%d ipc=%.2f\n", name, b.Cycles, b.Insts, b.IPC())
		fmt.Printf("  TS  ov=%.3f insts=%d sbStall=%d dataStall=%d branch=%d ckpts=%d quar=%d regions=%d\n",
			float64(t.Cycles)/float64(b.Cycles), t.Insts, t.SBFullStalls, t.DataStalls, t.BranchBubbles, t.CkptStores, t.Quarantined, t.RegionsExecuted)
		fmt.Printf("  TP  ov=%.3f insts=%d sbStall=%d dataStall=%d branch=%d ckpts=%d quar=%d warfree=%d colored=%d regions=%d prune=%d livm=%d\n",
			float64(q.Cycles)/float64(b.Cycles), q.Insts, q.SBFullStalls, q.DataStalls, q.BranchBubbles, q.CkptStores, q.Quarantined, q.WARFreeReleased, q.ColoredReleased, q.RegionsExecuted, tp.Stats.PrunedCkpts, tp.Stats.LIVMMerged)

		// Marginal cost of the remaining checkpoints: same binary with
		// CKPTs deleted (unsound for recovery, fine for timing).
		s := run(p, stripCkpts(tp.Prog), pipeline.TurnpikeConfig(4, 10))
		fmt.Printf("  TP-ckpts cyc=%d -> marginal ckpt cost %.2f cycles each (%d ckpts)\n",
			s.Cycles, float64(int64(q.Cycles)-int64(s.Cycles))/float64(q.CkptStores), q.CkptStores)
	}
}

func run(p workload.Profile, prog *isa.Program, cfg pipeline.Config) pipeline.Stats {
	s, err := pipeline.New(prog, cfg)
	check(err)
	p.SeedMemory(s.Mem)
	st, err := s.Run()
	check(err)
	return st
}

func stripCkpts(prog *isa.Program) *isa.Program {
	out := &isa.Program{CkptBase: prog.CkptBase, Entry: prog.Entry}
	remap := make([]int, len(prog.Insts)+1)
	for i := range prog.Insts {
		remap[i] = len(out.Insts)
		if prog.Insts[i].Op == isa.CKPT {
			continue
		}
		out.Insts = append(out.Insts, prog.Insts[i])
	}
	remap[len(prog.Insts)] = len(out.Insts)
	for i := range out.Insts {
		if out.Insts[i].Op.IsBranch() {
			out.Insts[i].Target = remap[out.Insts[i].Target]
		}
	}
	for _, r := range prog.Regions {
		nr := r
		if nr.RecoveryPC >= 0 {
			nr.RecoveryPC = remap[nr.RecoveryPC]
		}
		out.Regions = append(out.Regions, nr)
	}
	out.RegionOf = make([]int, len(out.Insts))
	cur := -1
	for i := range out.Insts {
		if out.Insts[i].Op == isa.BOUND {
			cur = int(out.Insts[i].Imm)
		}
		out.RegionOf[i] = cur
	}
	return out
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
