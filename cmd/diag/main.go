// Command diag prints per-benchmark stall breakdowns and the marginal cost
// of checkpoint instructions — the calibration instrument used while
// matching the paper's overhead shapes (not part of the evaluated tooling).
// Output goes through the shared obs table renderer; -markdown switches to
// GitHub-flavored markdown and -metrics writes the merged metric snapshot
// of every simulated run as JSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	var (
		markdown  = flag.Bool("markdown", false, "render the table as markdown")
		metricOut = flag.String("metrics", "", "write the merged metric snapshot JSON to this file")
		scale     = flag.Int("scale", 10, "workload scale percent")
	)
	flag.Parse()

	names := []string{"lbm", "gcc", "mcf", "gemsfdtd", "exchange2", "radix", "libquan"}
	tab := obs.Table{
		Title: "stall breakdown and marginal checkpoint cost",
		Header: []string{"bench", "scheme", "cycles", "overhead", "insts", "sbStall",
			"dataStall", "branch", "ckpts", "quar", "warfree", "colored", "regions", "ckpt-cost"},
		Notes: []string{
			"overhead = cycles / baseline cycles at the same SB size",
			"ckpt-cost = marginal cycles per remaining checkpoint (Turnpike binary with CKPTs stripped)",
		},
	}
	var agg pipeline.Stats
	for _, name := range names {
		p, _ := workload.ByName(name)
		f := p.Build(*scale)
		base, err := core.Compile(f, core.Options{Scheme: core.Baseline, SBSize: 4})
		check(err)
		ts, err := core.Compile(f, core.Options{Scheme: core.Turnstile, SBSize: 4})
		check(err)
		tp, err := core.Compile(f, core.TurnpikeAll(4))
		check(err)
		b := run(p, base.Prog, pipeline.BaselineConfig(4))
		t := run(p, ts.Prog, pipeline.TurnstileConfig(4, 10))
		q := run(p, tp.Prog, pipeline.TurnpikeConfig(4, 10))

		// Marginal cost of the remaining checkpoints: same binary with
		// CKPTs deleted (unsound for recovery, fine for timing).
		s := run(p, stripCkpts(tp.Prog), pipeline.TurnpikeConfig(4, 10))
		ckptCost := 0.0
		if q.CkptStores > 0 {
			ckptCost = float64(int64(q.Cycles)-int64(s.Cycles)) / float64(q.CkptStores)
		}

		tab.Rows = append(tab.Rows,
			statsRow(name, "baseline", b, b, -1),
			statsRow(name, "turnstile", t, b, -1),
			statsRow(name, "turnpike", q, b, ckptCost))
		for _, st := range []pipeline.Stats{b, t, q} {
			st := st
			agg.Merge(&st)
		}
	}
	if *markdown {
		fmt.Print(tab.RenderMarkdown())
	} else {
		fmt.Print(tab.Render())
	}

	if *metricOut != "" {
		reg := obs.NewRegistry()
		pipeline.FillStats(reg, &agg)
		f, err := os.Create(*metricOut)
		check(err)
		check(reg.Snapshot().WriteJSON(f))
		check(f.Close())
		fmt.Printf("wrote metrics to %s\n", *metricOut)
	}
}

func statsRow(bench, scheme string, st, base pipeline.Stats, ckptCost float64) []string {
	cost := ""
	if ckptCost >= 0 {
		cost = fmt.Sprintf("%.2f", ckptCost)
	}
	return []string{
		bench, scheme,
		fmt.Sprintf("%d", st.Cycles),
		fmt.Sprintf("%.3f", float64(st.Cycles)/float64(base.Cycles)),
		fmt.Sprintf("%d", st.Insts),
		fmt.Sprintf("%d", st.SBFullStalls),
		fmt.Sprintf("%d", st.DataStalls),
		fmt.Sprintf("%d", st.BranchBubbles),
		fmt.Sprintf("%d", st.CkptStores),
		fmt.Sprintf("%d", st.Quarantined),
		fmt.Sprintf("%d", st.WARFreeReleased),
		fmt.Sprintf("%d", st.ColoredReleased),
		fmt.Sprintf("%d", st.RegionsExecuted),
		cost,
	}
}

func run(p workload.Profile, prog *isa.Program, cfg pipeline.Config) pipeline.Stats {
	s, err := pipeline.New(prog, cfg)
	check(err)
	p.SeedMemory(s.Mem)
	st, err := s.Run()
	check(err)
	return st
}

func stripCkpts(prog *isa.Program) *isa.Program {
	out := &isa.Program{CkptBase: prog.CkptBase, Entry: prog.Entry}
	remap := make([]int, len(prog.Insts)+1)
	for i := range prog.Insts {
		remap[i] = len(out.Insts)
		if prog.Insts[i].Op == isa.CKPT {
			continue
		}
		out.Insts = append(out.Insts, prog.Insts[i])
	}
	remap[len(prog.Insts)] = len(out.Insts)
	for i := range out.Insts {
		if out.Insts[i].Op.IsBranch() {
			out.Insts[i].Target = remap[out.Insts[i].Target]
		}
	}
	for _, r := range prog.Regions {
		nr := r
		if nr.RecoveryPC >= 0 {
			nr.RecoveryPC = remap[nr.RecoveryPC]
		}
		out.Regions = append(out.Regions, nr)
	}
	out.RegionOf = make([]int, len(out.Insts))
	cur := -1
	for i := range out.Insts {
		if out.Insts[i].Op == isa.BOUND {
			cur = int(out.Insts[i].Imm)
		}
		out.RegionOf[i] = cur
	}
	return out
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
