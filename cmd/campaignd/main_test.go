package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles campaignd once per test.
func buildBinary(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM delivery is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "campaignd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// lockedBuffer collects daemon output from two writers at once: exec's
// stderr-copy goroutine and the test's stdout drain. It deliberately
// implements only Write (no ReadFrom), so both io.Copy paths serialize
// through the mutex instead of racing on a bare bytes.Buffer.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon is one running campaignd process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string        // http://host:port
	out  *lockedBuffer // combined stdout+stderr after the address line
}

// startDaemon boots campaignd on a kernel-picked port over dir and
// parses the bound address off its first stdout line.
func startDaemon(t *testing.T, bin, dir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-state", dir}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var buf lockedBuffer
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
		io.Copy(&buf, stdout) //nolint:errcheck
	}()
	select {
	case line, ok := <-lineCh:
		if !ok || !strings.Contains(line, "listening on http://") {
			cmd.Process.Kill()
			t.Fatalf("no address line from campaignd: %q\n%s", line, buf.String())
		}
		base := line[strings.Index(line, "http://"):]
		return &daemon{cmd: cmd, base: base, out: &buf}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("campaignd never printed its address\n%s", buf.String())
		return nil
	}
}

// jobView is the slice of the job JSON the test compares across daemon
// lives: lifecycle outcome plus the raw campaign result.
type jobView struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// submit POSTs one job spec and returns the assigned ID.
func submit(t *testing.T, base string, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: %d %s", spec, resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// waitAllDone polls until every job is done, returning each job's
// compacted result bytes.
func waitAllDone(t *testing.T, base string, ids []string, within time.Duration) map[string][]byte {
	t.Helper()
	results := map[string][]byte{}
	deadline := time.Now().Add(within)
	for len(results) < len(ids) {
		for _, id := range ids {
			if _, ok := results[id]; ok {
				continue
			}
			v := getJob(t, base, id)
			switch v.State {
			case "done":
				var compact bytes.Buffer
				if err := json.Compact(&compact, v.Result); err != nil {
					t.Fatalf("%s result: %v", id, err)
				}
				results[id] = compact.Bytes()
			case "failed", "canceled":
				t.Fatalf("%s ended %s: %s", id, v.State, v.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not done within %s: have %d/%d", within, len(results), len(ids))
		}
		time.Sleep(20 * time.Millisecond)
	}
	return results
}

var jobSpecs = []string{
	`{"bench":"gcc","trials":280,"seed":7,"scale_pct":4,"workers":2,"failure_budget":-1,"checkpoint_every":4}`,
	`{"bench":"lbm","trials":60,"seed":11,"scale_pct":4,"workers":2,"failure_budget":-1}`,
	`{"bench":"mcf","trials":60,"seed":13,"scale_pct":4,"workers":2,"failure_budget":-1}`,
}

// TestSigtermDrainRestartByteIdentical is the daemon acceptance path,
// process-for-real: submit three jobs over HTTP, SIGTERM while the first
// campaign is mid-flight, assert the daemon drains and exits 0, restart
// it over the same state directory, and assert every job completes with
// results byte-identical to an uninterrupted daemon's.
func TestSigtermDrainRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon three times")
	}
	bin := buildBinary(t)

	// Reference life: never signalled, all three jobs run to completion.
	refDir := t.TempDir()
	ref := startDaemon(t, bin, refDir)
	var refIDs []string
	for _, spec := range jobSpecs {
		refIDs = append(refIDs, submit(t, ref.base, spec))
	}
	want := waitAllDone(t, ref.base, refIDs, 3*time.Minute)
	ref.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	if err := ref.cmd.Wait(); err != nil {
		t.Fatalf("reference daemon exit: %v\n%s", err, ref.out.String())
	}

	// Interrupted life: SIGTERM once job 1's campaign has checkpointed
	// (proof the signal lands mid-campaign). -drain is kept short so the
	// drain window expires and the checkpoint-requeue path runs.
	dir := t.TempDir()
	d := startDaemon(t, bin, dir, "-drain", "250ms")
	var ids []string
	for _, spec := range jobSpecs {
		ids = append(ids, submit(t, d.base, spec))
	}
	ckpt := filepath.Join(dir, ids[0]+".ckpt.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if v := getJob(t, d.base, ids[0]); v.State == "done" {
			d.cmd.Process.Kill()
			t.Skipf("job 1 finished before SIGTERM could land mid-campaign")
		}
		if time.Now().After(deadline) {
			d.cmd.Process.Kill()
			t.Fatalf("no campaign checkpoint at %s\n%s", ckpt, d.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- d.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v\n%s", err, d.out.String())
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon did not exit within 30s of SIGTERM\n%s", d.out.String())
	}
	logs := d.out.String()
	if !strings.Contains(logs, "draining") || !strings.Contains(logs, "drained") {
		t.Fatalf("exit was not a drain:\n%s", logs)
	}

	// Next life: same state dir; the three jobs must complete and match
	// the reference byte for byte.
	d2 := startDaemon(t, bin, dir)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		d2.cmd.Wait()                          //nolint:errcheck
	}()
	if !strings.Contains(d2.out.String()+logs, "restored") {
		// The restore log may race the address line; check via the API too.
		resp, err := http.Get(d2.base + "/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var all []jobView
		if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(all) != len(ids) {
			t.Fatalf("restart restored %d jobs, want %d", len(all), len(ids))
		}
	}
	got := waitAllDone(t, d2.base, ids, 3*time.Minute)
	for i, id := range ids {
		refID := refIDs[i]
		if !bytes.Equal(got[id], want[refID]) {
			t.Errorf("job %d (%s) result diverged after SIGTERM+restart\nresumed:   %s\nreference: %s",
				i+1, id, got[id], want[refID])
		}
	}
}

// TestReadyzFlipsDuringDrain boots the daemon with a long-running job
// and a generous drain window, sends SIGTERM, and asserts /readyz turns
// not-ready (draining) while the drain is still in progress.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon")
	}
	bin := buildBinary(t)
	d := startDaemon(t, bin, t.TempDir(), "-drain", "2m")
	defer func() {
		d.cmd.Process.Kill() //nolint:errcheck
		d.cmd.Wait()         //nolint:errcheck
	}()
	id := submit(t, d.base, `{"bench":"gcc","trials":100000,"seed":1,"scale_pct":4,"checkpoint_every":8}`)
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, d.base, id).State != "running" {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for {
		resp, err := http.Get(d.base + "/readyz")
		if err != nil {
			t.Fatalf("daemon stopped serving before the drain finished: %v\n%s", err, d.out.String())
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(body, []byte("draining")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never reported draining: %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Submissions during the drain are refused.
	resp, err := http.Post(d.base+"/jobs", "application/json",
		strings.NewReader(`{"bench":"lbm"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %s", resp.StatusCode, body)
	}
}
