// Command campaignd runs fault-injection campaigns as a service: a
// durable job queue behind an HTTP API, sharing one mux with the
// observability endpoints (/metrics, /live, /runs).
//
//	campaignd -state /var/lib/campaignd -addr 127.0.0.1:8321
//
//	curl -X POST localhost:8321/jobs -d '{"bench":"gcc","trials":1000}'
//	curl localhost:8321/jobs/job-000001
//	curl localhost:8321/readyz
//
// Jobs queue up to -queue deep; beyond that, submissions are rejected
// with 429 + Retry-After (backpressure). Failed jobs retry with
// exponential backoff when the failure is transient; a workload failing
// permanently -breaker-threshold times in a row has its circuit breaker
// opened and submissions fail fast until the cool-down elapses.
//
// The daemon logs structured records (-log-format json|text, -log-level)
// where every line carries the request → job → shard → trial correlation
// chain, and keeps a bounded flight-recorder ring (-recorder) of recent
// events at Debug detail regardless of the terminal level. The ring is
// served per job at /jobs/{id}/events, dumped to the state dir when a
// job fails permanently, and dumped to stderr on SIGQUIT.
//
// A wall-clock span tracer (-spans ring capacity, 0 disables) records
// each job's lifecycle phases — queue wait, attempt, golden run,
// per-shard execution, checkpoint writes, merge, persists — stamped with
// the same correlation chain. The retained spans are served per job at
// /jobs/{id}/trace (Chrome trace JSON, loadable in Perfetto) and rolled
// into a phase-budget report at /jobs/{id}/phases; span.* duration
// histograms land in /metrics. -span-file streams every completed span
// to a file (.jsonl = JSON lines, anything else = Chrome trace JSON).
//
// Every job transition is persisted atomically under -state, and each
// campaign checkpoints its completed trials there too. SIGTERM and
// SIGINT drain: in-flight campaigns get up to -drain to finish, then
// are cancelled — which flushes their checkpoints — and the daemon
// exits 0. A restart (graceful or after a crash) re-queues unfinished
// jobs and resumes them from their watermarks; results are
// byte-identical to an uninterrupted run.
//
// # Fleet mode
//
// The daemon is always a fleet coordinator: each campaign is opened as
// a session whose contiguous trial ranges are leased to registered
// workers — remote campaignd processes started with
//
//	campaignd -worker -join http://coordinator:8321
//
// Workers register (POST /fleet/workers), heartbeat, poll for leases,
// execute each range on their own compiled copy of the campaign, and
// post the sealed shard back. Leases carry deadlines (-fleet-lease-ttl)
// and are reclaimed when they expire or when a worker misses
// -fleet-misses heartbeats; leases outstanding longer than
// -fleet-steal-after are work-stolen (duplicate grant, first complete
// wins, cross-validated). While no workers are live the coordinator
// executes leases itself, so a workerless daemon behaves exactly as
// before — and every merged result is byte-identical to a single-node
// run regardless of how many workers served it or died mid-campaign.
// GET /fleet shows the worker and lease tables; /readyz reports fleet
// health (degraded when registered workers are lost).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	turnpike "repro"
	"repro/internal/artifact"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/span"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/tenant"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8321", "HTTP listen address (host:0 picks a free port)")
		state       = flag.String("state", "campaignd-state", "state directory: job store + campaign checkpoints")
		queue       = flag.Int("queue", 64, "queued-job bound; a full queue answers 429 + Retry-After")
		concurrency = flag.Int("concurrency", 1, "jobs run at once (campaigns parallelize internally)")
		attempts    = flag.Int("max-attempts", 3, "runs of one job before a transient failure becomes permanent")
		deadline    = flag.Duration("deadline", 10*time.Minute, "wall-time bound per attempt (0 = none); overruns retry from the checkpoint")
		drain       = flag.Duration("drain", 30*time.Second, "SIGTERM/SIGINT drain window before in-flight jobs are checkpointed for the next life")
		brThreshold = flag.Int("breaker-threshold", 3, "consecutive permanent failures that open a workload's circuit breaker")
		brCooldown  = flag.Duration("breaker-cooldown", time.Minute, "breaker open time before one probe job is admitted")
		logFormat   = flag.String("log-format", "json", "structured log format: json (machine-readable, pinned schema) or text")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug (per-trial campaign events), info, warn, error")
		recorder    = flag.Int("recorder", 4096, "flight-recorder ring capacity (events); 0 disables the ring, /jobs/{id}/events, and SIGQUIT dumps")
		spans       = flag.Int("spans", 8192, "wall-clock span ring capacity backing /jobs/{id}/trace and /jobs/{id}/phases; 0 disables span tracing")
		spanFile    = flag.String("span-file", "", "stream completed spans to this file (.jsonl = JSON lines, else Chrome trace JSON for Perfetto)")

		tenants       = flag.String("tenants", "", "JSON tenants file (API keys + quotas); empty = anonymous single-tenant mode")
		maxBody       = flag.Int64("max-body", 1<<20, "POST request body cap in bytes (413 beyond it)")
		cacheBytes    = flag.Int64("artifact-cache", 64<<20, "compiled-artifact cache bound in bytes (LRU eviction beyond it)")
		compileBudget = flag.Duration("compile-budget", 30*time.Second, "wall-time bound for compiling one submitted program under every scheme")

		workerMode  = flag.Bool("worker", false, "run as a fleet worker: join a coordinator, execute leased trial ranges, post shards back")
		join        = flag.String("join", "", "coordinator base URL for -worker mode, e.g. http://127.0.0.1:8321")
		workerID    = flag.String("worker-id", "", "stable worker identity for -worker mode (default: coordinator mints one)")
		fleetHB     = flag.Duration("fleet-heartbeat", 2*time.Second, "worker heartbeat cadence the coordinator advertises")
		fleetMisses = flag.Int("fleet-misses", 3, "missed heartbeats before a worker is lost and its leases reclaimed")
		fleetTTL    = flag.Duration("fleet-lease-ttl", 30*time.Second, "lease deadline; unreturned ranges are requeued after it")
		fleetSteal  = flag.Duration("fleet-steal-after", 10*time.Second, "lease age before a straggling range is work-stolen (duplicate grant, first complete wins)")
		fleetPoll   = flag.Duration("fleet-poll", 250*time.Millisecond, "lease-poll cadence the coordinator advertises to idle workers")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("campaignd: ")

	level, err := parseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	// The terminal leg honors -log-level; the flight recorder always
	// keeps Debug (per-trial events) so a post-mortem has the detail the
	// terminal suppressed.
	var rec *olog.Recorder
	legs := []slog.Handler{olog.NewHandler(os.Stderr, olog.Options{Format: *logFormat, Level: level})}
	if *recorder > 0 {
		rec = olog.NewRecorder(*recorder)
		legs = append(legs, rec.Handler(slog.LevelDebug))
	}
	logger := olog.Attach(legs...)

	reg := obs.NewRegistry()
	progress := &pipeline.Progress{}

	if *workerMode {
		// Workers resolve program:<fp> workloads by fetching the source
		// from the coordinator and compiling it locally (cached); the
		// golden statistics cross-check proves both sides built the same
		// campaign.
		resolve := workerProgramResolver(strings.TrimRight(*join, "/"), *compileBudget)
		runWorker(*join, *workerID, campaignPrepare(reg, progress, logger, resolve), logger)
		return
	}

	registry, err := loadTenants(*tenants)
	if err != nil {
		log.Fatal(err)
	}
	programs, err := service.NewProgramStore(service.ProgramStoreConfig{
		Dir:           filepath.Join(*state, "programs"),
		Cache:         artifact.NewCache(*cacheBytes, reg),
		CompileBudget: *compileBudget,
		Logger:        logger,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The span tracer's ring backs the per-job HTTP endpoints; -span-file
	// adds a streaming sink behind the tracer's flusher. The service owns
	// the tracer's shutdown (Service.Shutdown closes it).
	var tracer *span.Tracer
	var spanOut *os.File
	if *spans > 0 {
		scfg := span.Config{Capacity: *spans, Metrics: reg}
		if *spanFile != "" {
			spanOut, err = os.Create(*spanFile)
			if err != nil {
				log.Fatal(err)
			}
			scfg.Sink = obs.SinkForPath(spanOut, *spanFile)
		}
		tracer = span.New(scfg)
	}

	fleet := service.NewFleet(service.FleetConfig{
		HeartbeatInterval: *fleetHB,
		HeartbeatMisses:   *fleetMisses,
		LeaseTTL:          *fleetTTL,
		StealAfter:        *fleetSteal,
		PollInterval:      *fleetPoll,
		Progress:          progress,
		Metrics:           reg,
		Logger:            logger,
	})
	prepare := campaignPrepare(reg, progress, logger, programs.Entry)
	svc, err := service.New(service.Config{
		StateDir:         *state,
		Executor:         &service.FleetExecutor{Fleet: fleet, Prepare: prepare},
		Fleet:            fleet,
		Tenants:          registry,
		Programs:         programs,
		MaxBodyBytes:     *maxBody,
		QueueDepth:       *queue,
		Concurrency:      *concurrency,
		MaxAttempts:      *attempts,
		JobDeadline:      *deadline,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		Progress:         progress,
		Metrics:          reg,
		Logger:           logger,
		Events:           rec,
		Spans:            tracer,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := obs.NewServer(obs.ServerConfig{Snapshot: reg.Snapshot, RunsDir: *state, Instrument: reg})
	svc.Mount(srv)
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	// The one stdout line, so scripts (and the e2e test) can learn the
	// bound port when -addr asked the kernel for one.
	fmt.Printf("campaignd listening on http://%s\n", bound)

	sampler := pipeline.NewSampler(progress, reg, 0, func(ps pipeline.ProgressSample) {
		srv.Publish("progress", ps)
	})
	sampler.Start()
	svc.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	var got os.Signal
	for got = range sig {
		if got != syscall.SIGQUIT {
			break
		}
		// SIGQUIT is the flight-recorder tap: dump the ring to stderr and
		// keep serving. kill -QUIT $(pidof campaignd) is the "what has
		// this daemon been doing" question, answered without restarting.
		if rec == nil {
			log.Printf("SIGQUIT: flight recorder disabled (-recorder 0)")
			continue
		}
		n, err := rec.Dump(os.Stderr)
		if err != nil {
			log.Printf("SIGQUIT: flight recorder dump failed: %v", err)
			continue
		}
		log.Printf("SIGQUIT: dumped %d flight-recorder event(s) (%d dropped since start)", n, rec.Dropped())
	}
	log.Printf("received %s; draining (window %s)", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("warning: final state persist: %v", err)
	}
	cancel()
	if spanOut != nil {
		// Shutdown already closed the tracer (final flush + sink Close);
		// only the file handle remains ours.
		if err := spanOut.Close(); err != nil {
			log.Printf("warning: span file: %v", err)
		} else {
			log.Printf("spans written to %s", *spanFile)
		}
	}
	sampler.Stop()
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("warning: http shutdown: %v", err)
	}
	httpCancel()
	log.Printf("drained; state persisted under %s — restart with the same -state to resume unfinished jobs", *state)
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("campaignd: unknown -log-level %q (want debug, info, warn, or error)", s)
}

// campaignPrepare adapts the two-phase fault-campaign engine to
// service.PrepareFunc, threading the process's registry, live-progress
// gauges, and structured logger into every campaign so /metrics, /live,
// and the correlated log cover the jobs as they run. The coordinator's
// FleetExecutor opens each Prepared as the session it leases from;
// workers prepare the same spec (with checkpoint "") and execute leased
// ranges on it — identical golden statistics on both sides prove the
// two processes compiled the same campaign.
func campaignPrepare(reg *obs.Registry, progress *pipeline.Progress, logger *slog.Logger, programs programResolver) service.PrepareFunc {
	return func(ctx context.Context, spec service.JobSpec, checkpoint string) (*fault.Prepared, error) {
		var sc turnpike.Scheme
		schemeName := spec.Scheme
		switch spec.Scheme {
		case "", "turnpike":
			sc, schemeName = turnpike.Turnpike, "turnpike"
		case "turnstile":
			sc = turnpike.Turnstile
		default:
			return nil, fmt.Errorf("%w: unknown scheme %q", fault.ErrInvalidConfig, spec.Scheme)
		}
		cfg := turnpike.FaultCampaignConfig{
			Trials:          spec.Trials,
			Seed:            spec.Seed,
			SBSize:          spec.SBSize,
			WCDL:            spec.WCDL,
			ScalePct:        spec.ScalePct,
			Workers:         spec.Workers,
			Lease:           spec.Lease,
			FailureBudget:   spec.FailureBudget,
			Checkpoint:      checkpoint,
			CheckpointEvery: spec.CheckpointEvery,
			Metrics:         reg,
			Progress:        progress,
			Logger:          logger,
		}
		if spec.IsProgram() {
			if programs == nil {
				return nil, fmt.Errorf("%w: this process resolves no submitted programs", fault.ErrInvalidConfig)
			}
			entry, err := programs(ctx, spec.ProgramFingerprint())
			if err != nil {
				return nil, err
			}
			prog, ok := entry.Schemes[schemeName]
			if !ok {
				return nil, fmt.Errorf("%w: program %s has no %s image", fault.ErrInvalidConfig,
					entry.Fingerprint, schemeName)
			}
			cfg.SBSize = entry.SBSize
			return turnpike.PrepareCompiledFaultCampaign(ctx, prog, sc, cfg)
		}
		return turnpike.PrepareFaultCampaign(ctx, spec.Bench, sc, cfg)
	}
}

// programResolver resolves a submitted program's fingerprint to its
// compiled artifact. The coordinator reads its ProgramStore; workers
// fetch from the coordinator and compile locally.
type programResolver func(ctx context.Context, fp string) (*artifact.Entry, error)

// loadTenants builds the tenant registry: from -tenants when set, else
// the anonymous single-tenant registry.
func loadTenants(path string) (*tenant.Registry, error) {
	if path == "" {
		return tenant.New(nil)
	}
	r, err := tenant.LoadFile(path)
	if err != nil {
		return nil, err
	}
	log.Printf("loaded %d tenant(s) from %s; API keys required on submissions", len(r.IDs()), path)
	return r, nil
}

// workerProgramResolver resolves program workloads over the fleet wire:
// GET /programs/{fp} for the store-buffer size the artifact must match,
// GET /programs/{fp}/source for the canonical IR, then a local compile
// into a worker-side cache so repeat leases against one program compile
// once.
func workerProgramResolver(coordinator string, budget time.Duration) programResolver {
	cache := artifact.NewCache(0, nil)
	client := &http.Client{Timeout: 30 * time.Second}
	return func(ctx context.Context, fp string) (*artifact.Entry, error) {
		entry, _, err := cache.GetOrCompute(fp, func() (*artifact.Entry, error) {
			var meta struct {
				SBSize int `json:"sb_size"`
			}
			if err := fetchJSON(ctx, client, coordinator+"/programs/"+fp, &meta); err != nil {
				return nil, fmt.Errorf("campaignd: fetch program %s: %w", fp, err)
			}
			src, err := fetchText(ctx, client, coordinator+"/programs/"+fp+"/source")
			if err != nil {
				return nil, fmt.Errorf("campaignd: fetch program %s source: %w", fp, err)
			}
			f, err := ir.ParseFuncLimits(src, ir.DefaultParseLimits())
			if err != nil {
				return nil, fmt.Errorf("%w: program %s from coordinator does not parse: %v",
					fault.ErrInvalidConfig, fp, err)
			}
			cctx, cancel := artifact.Deadline(ctx, budget)
			defer cancel()
			return artifact.CompileAllContext(cctx, f, meta.SBSize, len(src))
		})
		return entry, err
	}
}

func fetchJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func fetchText(ctx context.Context, client *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// runWorker is -worker mode: one fleet worker process, running until a
// signal drains it (the coordinator reclaims its leases by heartbeat
// timeout) or the coordinator quarantines it (exit 2 — a quarantined
// identity is never trusted again, so restarting under it is useless).
func runWorker(join, id string, prepare service.PrepareFunc, logger *slog.Logger) {
	if join == "" {
		log.Fatal("-worker needs -join http://coordinator:port")
	}
	wc, err := service.NewWorkerClient(service.WorkerConfig{
		Coordinator: strings.TrimRight(join, "/"),
		Prepare:     prepare,
		ID:          id,
		Logger:      logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The one stdout line, mirroring the coordinator's "listening on",
	// so scripts know the worker process came up.
	fmt.Printf("campaignd worker joining %s\n", join)
	err = wc.Run(ctx)
	switch {
	case errors.Is(err, service.ErrWorkerQuarantined):
		log.Printf("worker %s quarantined by coordinator; exiting", wc.ID())
		os.Exit(2)
	case errors.Is(err, context.Canceled):
		log.Printf("worker %s drained on signal", wc.ID())
	case err != nil:
		log.Fatal(err)
	}
}
