// Command campaignd runs fault-injection campaigns as a service: a
// durable job queue behind an HTTP API, sharing one mux with the
// observability endpoints (/metrics, /live, /runs).
//
//	campaignd -state /var/lib/campaignd -addr 127.0.0.1:8321
//
//	curl -X POST localhost:8321/jobs -d '{"bench":"gcc","trials":1000}'
//	curl localhost:8321/jobs/job-000001
//	curl localhost:8321/readyz
//
// Jobs queue up to -queue deep; beyond that, submissions are rejected
// with 429 + Retry-After (backpressure). Failed jobs retry with
// exponential backoff when the failure is transient; a workload failing
// permanently -breaker-threshold times in a row has its circuit breaker
// opened and submissions fail fast until the cool-down elapses.
//
// Every job transition is persisted atomically under -state, and each
// campaign checkpoints its completed trials there too. SIGTERM and
// SIGINT drain: in-flight campaigns get up to -drain to finish, then
// are cancelled — which flushes their checkpoints — and the daemon
// exits 0. A restart (graceful or after a crash) re-queues unfinished
// jobs and resumes them from their watermarks; results are
// byte-identical to an uninterrupted run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8321", "HTTP listen address (host:0 picks a free port)")
		state       = flag.String("state", "campaignd-state", "state directory: job store + campaign checkpoints")
		queue       = flag.Int("queue", 64, "queued-job bound; a full queue answers 429 + Retry-After")
		concurrency = flag.Int("concurrency", 1, "jobs run at once (campaigns parallelize internally)")
		attempts    = flag.Int("max-attempts", 3, "runs of one job before a transient failure becomes permanent")
		deadline    = flag.Duration("deadline", 10*time.Minute, "wall-time bound per attempt (0 = none); overruns retry from the checkpoint")
		drain       = flag.Duration("drain", 30*time.Second, "SIGTERM/SIGINT drain window before in-flight jobs are checkpointed for the next life")
		brThreshold = flag.Int("breaker-threshold", 3, "consecutive permanent failures that open a workload's circuit breaker")
		brCooldown  = flag.Duration("breaker-cooldown", time.Minute, "breaker open time before one probe job is admitted")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("campaignd: ")

	reg := obs.NewRegistry()
	progress := &pipeline.Progress{}

	svc, err := service.New(service.Config{
		StateDir:         *state,
		Runner:           campaignRunner(reg, progress),
		QueueDepth:       *queue,
		Concurrency:      *concurrency,
		MaxAttempts:      *attempts,
		JobDeadline:      *deadline,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		Progress:         progress,
		Metrics:          reg,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := obs.NewServer(obs.ServerConfig{Snapshot: reg.Snapshot, RunsDir: *state})
	svc.Mount(srv)
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	// The one stdout line, so scripts (and the e2e test) can learn the
	// bound port when -addr asked the kernel for one.
	fmt.Printf("campaignd listening on http://%s\n", bound)

	sampler := pipeline.NewSampler(progress, reg, 0, func(ps pipeline.ProgressSample) {
		srv.Publish("progress", ps)
	})
	sampler.Start()
	svc.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("received %s; draining (window %s)", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("warning: final state persist: %v", err)
	}
	cancel()
	sampler.Stop()
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("warning: http shutdown: %v", err)
	}
	httpCancel()
	log.Printf("drained; state persisted under %s — restart with the same -state to resume unfinished jobs", *state)
}

// campaignRunner adapts the fault-campaign engine to service.Runner,
// threading the service's registry and live-progress gauges into every
// campaign so /metrics and /live cover the jobs as they run.
func campaignRunner(reg *obs.Registry, progress *pipeline.Progress) service.Runner {
	return func(ctx context.Context, spec service.JobSpec, checkpoint string) (*fault.Result, error) {
		var sc turnpike.Scheme
		switch spec.Scheme {
		case "", "turnpike":
			sc = turnpike.Turnpike
		case "turnstile":
			sc = turnpike.Turnstile
		default:
			return nil, fmt.Errorf("%w: unknown scheme %q", fault.ErrInvalidConfig, spec.Scheme)
		}
		return turnpike.InjectFaultsContext(ctx, spec.Bench, sc, turnpike.FaultCampaignConfig{
			Trials:          spec.Trials,
			Seed:            spec.Seed,
			SBSize:          spec.SBSize,
			WCDL:            spec.WCDL,
			ScalePct:        spec.ScalePct,
			Workers:         spec.Workers,
			FailureBudget:   spec.FailureBudget,
			Checkpoint:      checkpoint,
			CheckpointEvery: spec.CheckpointEvery,
			Metrics:         reg,
			Progress:        progress,
			Warnf:           log.Printf,
		})
	}
}
