package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/profile"
)

// runBench invokes run with a small, fast matrix rooted at dir.
func runBench(t *testing.T, dir string, extra ...string) (int, string, string) {
	t.Helper()
	args := []string{"-dir", dir, "-scale", "3", "-schemes", "baseline,turnpike"}
	args = append(args, extra...) // flags must precede the positional benchmark
	args = append(args, "gcc")
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFirstRunRecordsBaseline(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runBench(t, dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "no prior BENCH_*.json manifest") {
		t.Errorf("first run should report missing prior; got:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_1.json")); err != nil {
		t.Fatalf("BENCH_1.json not written: %v", err)
	}
	man, res, err := readResults(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Tool != "bench" {
		t.Errorf("tool = %q", man.Tool)
	}
	for _, k := range []string{"gcc/baseline", "gcc/turnpike"} {
		r, ok := res[k]
		if !ok {
			t.Fatalf("matrix missing %s", k)
		}
		if r.Cycles == 0 || r.Insts == 0 || r.IPC <= 0 {
			t.Errorf("%s: implausible result %+v", k, r)
		}
	}
	if res["gcc/baseline"].Overhead != 1.0 {
		t.Errorf("baseline overhead = %v, want exactly 1", res["gcc/baseline"].Overhead)
	}
	if res["gcc/turnpike"].Overhead < 1.0 {
		t.Errorf("turnpike overhead = %v, want >= 1", res["gcc/turnpike"].Overhead)
	}
}

func TestIdenticalRerunPasses(t *testing.T) {
	dir := t.TempDir()
	if code, _, errOut := runBench(t, dir); code != 0 {
		t.Fatalf("seed run failed: exit %d, %s", code, errOut)
	}
	// The simulator is deterministic, so a rerun must diff clean.
	code, out, errOut := runBench(t, dir)
	if code != 0 {
		t.Fatalf("rerun regressed: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "OK: no regression vs BENCH_1.json") {
		t.Errorf("rerun should diff clean; got:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatalf("BENCH_2.json not written: %v", err)
	}
	if !strings.Contains(out, "+0.00%") {
		t.Errorf("deterministic rerun should show zero deltas; got:\n%s", out)
	}
}

// doctorPrior rewrites one result cell in a manifest through fn.
func doctorPrior(t *testing.T, path, key string, fn func(*benchResult)) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	results := man["extra"].(map[string]any)["results"].(map[string]any)
	cell, err := json.Marshal(results[key])
	if err != nil {
		t.Fatal(err)
	}
	var r benchResult
	if err := json.Unmarshal(cell, &r); err != nil {
		t.Fatal(err)
	}
	fn(&r)
	results[key] = r
	out, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	if code, _, errOut := runBench(t, dir); code != 0 {
		t.Fatalf("seed run failed: exit %d, %s", code, errOut)
	}
	// Make the prior look much better than the present: fewer cycles and
	// higher IPC mean the (unchanged) current run reads as a regression.
	doctorPrior(t, filepath.Join(dir, "BENCH_1.json"), "gcc/turnpike", func(r *benchResult) {
		r.Cycles = r.Cycles / 2
		r.IPC = r.IPC * 2
		r.Overhead = r.Overhead / 2
	})
	code, out, _ := runBench(t, dir)
	if code == 0 {
		t.Fatalf("doctored prior must trip the gate; got exit 0:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL:") {
		t.Errorf("regression table/verdict missing; got:\n%s", out)
	}
	// The untouched configuration still passes.
	if !strings.Contains(out, "gcc/baseline") {
		t.Errorf("baseline row missing; got:\n%s", out)
	}
}

func TestIncomparableKnobsSkipDiff(t *testing.T) {
	dir := t.TempDir()
	if code, _, errOut := runBench(t, dir); code != 0 {
		t.Fatalf("seed run failed: exit %d, %s", code, errOut)
	}
	// A different scale changes every cycle count; the gate must restart
	// the trajectory instead of reporting phantom regressions.
	code, out, errOut := runBench(t, dir, "-scale", "4")
	if code != 0 {
		t.Fatalf("knob change must not fail the gate: exit %d, %s", code, errOut)
	}
	if !strings.Contains(out, "different knobs") {
		t.Errorf("expected trajectory restart notice; got:\n%s", out)
	}
}

// TestCampaignCostMetricsRecorded: resilient cells carry trials/sec,
// ns/trial, and allocs/trial; the baseline cell (no campaign) does not.
func TestCampaignCostMetricsRecorded(t *testing.T) {
	dir := t.TempDir()
	if code, _, errOut := runBench(t, dir, "-trials", "8"); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	_, res, err := readResults(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	tp := res["gcc/turnpike"]
	if tp.TrialsPerSec <= 0 || tp.NsPerTrial <= 0 || tp.AllocsPerTrial <= 0 {
		t.Errorf("gcc/turnpike cost metrics missing: %+v", tp)
	}
	base := res["gcc/baseline"]
	if base.TrialsPerSec != 0 || base.AllocsPerTrial != 0 {
		t.Errorf("baseline should have no campaign cost: %+v", base)
	}
}

// TestAllocsRegressionTripsGate: an allocs/trial explosion beyond
// -tol-allocs fails the build even when cycle counts are unchanged.
func TestAllocsRegressionTripsGate(t *testing.T) {
	dir := t.TempDir()
	if code, _, errOut := runBench(t, dir, "-trials", "8"); code != 0 {
		t.Fatalf("seed run failed: exit %d, %s", code, errOut)
	}
	// Make the prior look far leaner than the present.
	doctorPrior(t, filepath.Join(dir, "BENCH_1.json"), "gcc/turnpike", func(r *benchResult) {
		r.AllocsPerTrial = r.AllocsPerTrial / 10
	})
	code, out, _ := runBench(t, dir, "-trials", "8")
	if code == 0 {
		t.Fatalf("allocs/trial regression must trip the gate; got exit 0:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("regression verdict missing; got:\n%s", out)
	}
}

// TestTrialsPerSecGateOffByDefault: a huge trials/sec "loss" against the
// prior passes unless -tol-trialsec opts in, because wall-clock speed is
// a property of the machine, not the code.
func TestTrialsPerSecGateOffByDefault(t *testing.T) {
	dir := t.TempDir()
	if code, _, errOut := runBench(t, dir, "-trials", "8"); code != 0 {
		t.Fatalf("seed run failed: exit %d, %s", code, errOut)
	}
	doctorPrior(t, filepath.Join(dir, "BENCH_1.json"), "gcc/turnpike", func(r *benchResult) {
		r.TrialsPerSec = r.TrialsPerSec * 100
	})
	if code, out, _ := runBench(t, dir, "-trials", "8"); code != 0 {
		t.Fatalf("trials/sec gate should default off; got exit %d:\n%s", code, out)
	}
}

// TestProfileFlagWritesArtifacts: -profile leaves CPU + heap profiles
// and a cost report totalling the campaign cells.
func TestProfileFlagWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "prof")
	code, out, errOut := runBench(t, dir, "-trials", "8", "-profile", prof)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, f := range []string{"bench.cpu.pprof", "bench.heap.pprof", "bench.cost.json"} {
		if fi, err := os.Stat(filepath.Join(prof, f)); err != nil || fi.Size() == 0 {
			t.Errorf("%s missing or empty (err=%v)", f, err)
		}
	}
	rep, err := profile.ReadCostReport(filepath.Join(prof, "bench.cost.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 8 || rep.TrialsPerSec <= 0 || rep.AllocsPerTrial <= 0 {
		t.Errorf("implausible cost report: %+v", rep)
	}
	if !strings.Contains(out, "campaign cost:") {
		t.Errorf("cost summary missing from stdout:\n%s", out)
	}
}

func TestLatestManifestNumbering(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, next, err := latestManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_10.json" || next != 11 {
		t.Errorf("latest = %s next = %d, want BENCH_10.json / 11", path, next)
	}
}
