// Command bench runs the workload x scheme performance matrix and tracks
// its trajectory across commits. Every run writes a numbered manifest
// (BENCH_1.json, BENCH_2.json, ...) into -dir and, when a prior manifest
// exists, diffs the new results against the most recent one with
// per-metric relative thresholds: cycle-count or overhead growth and IPC
// loss beyond tolerance are regressions and make the command exit nonzero.
// The simulator is deterministic (integer cycle counts, no wall-clock
// dependence), so the tolerances can be tight and the gate runs anywhere.
//
// Usage:
//
//	bench                              # default matrix, diff vs latest BENCH_*.json
//	bench -scale 10 gcc lbm            # subset at a larger scale
//	bench -schemes turnpike -dir runs  # keep the trajectory elsewhere
//	bench -tol-cycles 0.5              # tighten the cycle tolerance (percent)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	turnpike "repro"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/obs/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchResult is one cell of the matrix, stored under
// Extra["results"]["<bench>/<scheme>"] in the manifest. The campaign
// cost metrics (trials/sec, ns/trial, allocs/trial) are measured only
// for the resilient schemes — they run a small fault campaign — and are
// zero in cells (and old manifests) that never measured them, which the
// diff treats as "no prior data", not a regression.
type benchResult struct {
	Cycles   uint64  `json:"cycles"`
	Insts    uint64  `json:"insts"`
	IPC      float64 `json:"ipc"`
	Overhead float64 `json:"overhead"` // cycles / baseline cycles

	TrialsPerSec   float64 `json:"trials_per_sec,omitempty"`
	NsPerTrial     float64 `json:"ns_per_trial,omitempty"`
	AllocsPerTrial float64 `json:"allocs_per_trial,omitempty"`
}

// schemeByName maps the CLI spelling to the library scheme.
var schemeByName = map[string]turnpike.Scheme{
	"baseline":  turnpike.Baseline,
	"turnstile": turnpike.Turnstile,
	"turnpike":  turnpike.Turnpike,
}

// benchPattern matches trajectory manifests and captures their sequence
// number.
var benchPattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// run is the testable entry point; it returns the process exit code
// (0 = ok, 1 = regression or run failure, 2 = usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale       = fs.Int("scale", 5, "workload scale (percent of full trip count)")
		sb          = fs.Int("sb", 4, "store buffer entries")
		wcdl        = fs.Int("wcdl", 10, "worst-case sensor detection latency (cycles)")
		dir         = fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
		schemes     = fs.String("schemes", "baseline,turnstile,turnpike", "comma-separated schemes to run")
		tolCycles   = fs.Float64("tol-cycles", 1.0, "max cycle-count growth before regression (percent)")
		tolIPC      = fs.Float64("tol-ipc", 1.0, "max IPC loss before regression (percent)")
		tolOverhead = fs.Float64("tol-overhead", 1.0, "max overhead growth before regression (percent)")
		trials      = fs.Int("trials", 32, "fault-campaign trials per resilient cell for the cost metrics (0 skips them)")
		tolAllocs   = fs.Float64("tol-allocs", 25.0, "max allocs/trial growth before regression (percent)")
		tolTrialSec = fs.Float64("tol-trialsec", 0, "max trials/sec loss before regression (percent); 0 disables the gate (wall-clock is machine-dependent)")
		profileDir  = fs.String("profile", "", "directory for pprof profiles + cost report bracketing the campaign cells (empty = off)")
		spansOut    = fs.String("spans", "", "wall-clock span trace file for the campaign cells (.jsonl = JSON lines, else Chrome trace JSON) plus a phase-budget table (empty = off)")
		trendOut    = fs.String("trend", "", "CSV file to append one campaign-cost row per resilient cell (seq,cell,trials_per_sec,ns_per_trial,allocs_per_trial); the header is written when the file is new (empty = off)")
		summaryOut  = fs.String("summary", "", "file to append the trajectory delta table as markdown, e.g. $GITHUB_STEP_SUMMARY (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	benches := fs.Args()
	if len(benches) == 0 {
		benches = []string{"gcc", "lbm", "mcf", "exchange2", "radix"}
	}
	var schemeNames []string
	for _, s := range strings.Split(*schemes, ",") {
		s = strings.TrimSpace(s)
		if _, ok := schemeByName[s]; !ok {
			fmt.Fprintf(stderr, "bench: unknown scheme %q\n", s)
			return 2
		}
		schemeNames = append(schemeNames, s)
	}

	// Run the matrix.
	man := obs.NewManifest("bench")
	man.Config["scale_pct"] = *scale
	man.Config["sb_size"] = *sb
	man.Config["wcdl"] = *wcdl
	man.Config["schemes"] = schemeNames
	man.Config["trials"] = *trials
	man.Workloads = benches
	results := map[string]benchResult{}
	for _, b := range benches {
		for _, sn := range schemeNames {
			res, err := turnpike.Evaluate(b, schemeByName[sn], turnpike.EvalConfig{
				SBSize: *sb, WCDL: *wcdl, ScalePct: *scale,
			})
			if err != nil {
				fmt.Fprintf(stderr, "bench: %s/%s: %v\n", b, sn, err)
				return 1
			}
			ipc := float64(res.Stats.Insts) / float64(res.Cycles)
			results[b+"/"+sn] = benchResult{
				Cycles:   res.Cycles,
				Insts:    res.Stats.Insts,
				IPC:      ipc,
				Overhead: res.Overhead,
			}
		}
	}
	if *trials > 0 {
		// -spans: the campaign cells run under a wall-clock tracer; the
		// trace file and a phase-budget table land after the matrix. Note
		// the recorded spans add a handful of allocations per *campaign*
		// (not per trial), so the allocs/trial gate is unaffected at
		// default tolerances.
		ctx := context.Background()
		var tracer *span.Tracer
		var spanFile *os.File
		if *spansOut != "" {
			var err error
			spanFile, err = os.Create(*spansOut)
			if err != nil {
				fmt.Fprintf(stderr, "bench: %v\n", err)
				return 1
			}
			tracer = span.New(span.Config{Sink: obs.SinkForPath(spanFile, *spansOut)})
			ctx = span.Into(ctx, tracer)
		}
		if err := measureCampaignCost(ctx, benches, schemeNames, *trials, *scale, *sb, *wcdl,
			*profileDir, results, stdout); err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 1
		}
		if tracer != nil {
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(stderr, "bench: span trace: %v\n", err)
			}
			if err := spanFile.Close(); err != nil {
				fmt.Fprintf(stderr, "bench: span trace: %v\n", err)
			}
			fmt.Fprint(stdout, span.Analyze("", tracer.Spans()).Table("phase budget (wall clock)").Render())
			fmt.Fprintf(stdout, "span trace written to %s\n", *spansOut)
		}
	}
	man.Extra["results"] = results

	// Locate the most recent prior manifest before claiming the next
	// sequence number.
	priorPath, nextSeq, err := latestManifest(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}

	man.Finish(obs.Snapshot{})
	man.Metrics = nil // the matrix is the payload; no registry ran
	outPath := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", nextSeq))
	if err := man.WriteFile(outPath); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d configurations)\n", outPath, len(results))

	if *trendOut != "" && *trials > 0 {
		if err := appendTrend(*trendOut, nextSeq, results); err != nil {
			fmt.Fprintf(stderr, "bench: trend: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "appended campaign cost rows to %s\n", *trendOut)
	}

	if priorPath == "" {
		fmt.Fprintln(stdout, "no prior BENCH_*.json manifest; baseline recorded, nothing to diff")
		return 0
	}

	prior, priorResults, err := readResults(priorPath)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	if !comparableConfigs(prior.Config, man.Config) {
		fmt.Fprintf(stdout, "prior %s ran with different knobs (%v); trajectory restarted, no diff\n",
			filepath.Base(priorPath), prior.Config)
		return 0
	}

	tols := tolerances{cycles: *tolCycles, ipc: *tolIPC, overhead: *tolOverhead,
		allocs: *tolAllocs, trialsec: *tolTrialSec}
	table, regressions := diffResults(filepath.Base(priorPath), priorResults, results, tols)
	fmt.Fprint(stdout, table.Render())
	if *summaryOut != "" {
		if err := appendSummary(*summaryOut, table, regressions); err != nil {
			fmt.Fprintf(stderr, "bench: summary: %v\n", err)
			return 1
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "\nFAIL: %d metric(s) regressed beyond tolerance "+
			"(cycles +%.2f%%, ipc -%.2f%%, overhead +%.2f%%)\n",
			regressions, tols.cycles, tols.ipc, tols.overhead)
		return 1
	}
	fmt.Fprintf(stdout, "\nOK: no regression vs %s\n", filepath.Base(priorPath))
	return 0
}

// measureCampaignCost fills in the per-trial cost metrics for the
// resilient schemes by running a small deterministic fault campaign per
// cell and bracketing each with an alloc/wall measurement. Workers is
// pinned to 1 and the seed to 1 so allocs/trial is stable run to run;
// trials/sec remains machine-dependent, which is why its gate defaults
// off. With profileDir set, one CPU+heap profile pair brackets all the
// campaign cells and a cost report totalling them is written next to it.
func measureCampaignCost(ctx context.Context, benches, schemeNames []string, trials, scale, sb, wcdl int,
	profileDir string, results map[string]benchResult, stdout io.Writer) error {
	var cap *profile.Capture
	if profileDir != "" {
		var err error
		if cap, err = profile.Start(profileDir, "bench", true); err != nil {
			return err
		}
	}
	var total profile.Usage
	totalTrials := 0
	for _, b := range benches {
		for _, sn := range schemeNames {
			if sn == "baseline" {
				continue // no detection, no campaign to cost
			}
			cctx, csp := span.Start(ctx, "cli", "campaign")
			csp.SetArg("cell", b+"/"+sn)
			// Prepare (compile, golden run, worker priming) stays outside
			// the measurement bracket: the reported cost is the trial
			// loop alone, which is what the allocs/trial and trials/sec
			// gates are meant to pin.
			prep, err := turnpike.PrepareFaultCampaign(cctx, b, schemeByName[sn], turnpike.FaultCampaignConfig{
				Trials: trials, Seed: 1, Workers: 1, FailureBudget: -1,
				ScalePct: scale, SBSize: sb, WCDL: wcdl,
			})
			if err != nil {
				csp.End()
				return fmt.Errorf("%s/%s campaign: %w", b, sn, err)
			}
			u, err := profile.Measure(func() error {
				_, err := prep.Run(cctx)
				return err
			})
			csp.End()
			if err != nil {
				return fmt.Errorf("%s/%s campaign: %w", b, sn, err)
			}
			rep := u.Report(trials)
			cell := results[b+"/"+sn]
			cell.TrialsPerSec = rep.TrialsPerSec
			cell.NsPerTrial = rep.NsPerTrial
			cell.AllocsPerTrial = rep.AllocsPerTrial
			results[b+"/"+sn] = cell
			total.Wall += u.Wall
			total.Allocs += u.Allocs
			total.AllocBytes += u.AllocBytes
			totalTrials += trials
		}
	}
	if cap != nil {
		if _, err := cap.Stop(); err != nil {
			return err
		}
		rep := total.Report(totalTrials)
		rep.Workload = "matrix"
		rep.Scheme = strings.Join(schemeNames, ",")
		rep.CPUProfile = cap.CPUProfilePath()
		rep.HeapProfile = cap.HeapProfilePath()
		costPath := filepath.Join(profileDir, "bench.cost.json")
		if err := rep.WriteFile(costPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "campaign cost: %s\nprofiles: %s %s\ncost report: %s\n",
			rep, cap.CPUProfilePath(), cap.HeapProfilePath(), costPath)
	}
	return nil
}

// appendTrend appends one campaign-cost row per resilient cell to the
// CSV at path, creating it (with a header) on first use. The file is the
// CI artifact that accumulates the per-commit throughput trajectory —
// BENCH_<n>.json keeps only the latest pairwise delta, the CSV keeps
// every point.
func appendTrend(path string, seq int, results map[string]benchResult) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if _, err := fmt.Fprintln(f, "seq,cell,trials_per_sec,ns_per_trial,allocs_per_trial"); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(results))
	for k := range results {
		if results[k].TrialsPerSec > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := results[k]
		if _, err := fmt.Fprintf(f, "%d,%s,%.2f,%.0f,%.1f\n",
			seq, k, c.TrialsPerSec, c.NsPerTrial, c.AllocsPerTrial); err != nil {
			return err
		}
	}
	return f.Close()
}

// appendSummary appends the trajectory delta table as markdown — the
// $GITHUB_STEP_SUMMARY rendering of the same table the log shows.
func appendSummary(path string, table *obs.Table, regressions int) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	verdict := "no regression"
	if regressions > 0 {
		verdict = fmt.Sprintf("**%d metric(s) regressed beyond tolerance**", regressions)
	}
	if _, err := fmt.Fprintf(f, "\n%s\n%s\n", table.RenderMarkdown(), verdict); err != nil {
		return err
	}
	return f.Close()
}

// tolerances are per-metric relative thresholds in percent.
type tolerances struct {
	cycles, ipc, overhead float64
	// allocs gates allocs/trial growth; trialsec gates trials/sec loss
	// and is 0 (off) by default because wall-clock differs by machine.
	allocs, trialsec float64
}

// latestManifest scans dir for BENCH_<n>.json files and returns the path
// of the highest-numbered one ("" when none exist) plus the next free
// sequence number.
func latestManifest(dir string) (string, int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	best := 0
	bestPath := ""
	for _, e := range ents {
		m := benchPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= best {
			continue
		}
		best = n
		bestPath = filepath.Join(dir, e.Name())
	}
	return bestPath, best + 1, nil
}

// readResults loads a prior manifest and decodes its results matrix.
func readResults(path string) (*obs.Manifest, map[string]benchResult, error) {
	m, err := obs.ReadManifest(path)
	if err != nil {
		return nil, nil, err
	}
	raw, ok := m.Extra["results"]
	if !ok {
		return nil, nil, fmt.Errorf("%s: manifest has no results matrix", path)
	}
	// Extra round-trips through map[string]any; re-marshal to get typed
	// results back.
	b, err := json.Marshal(raw)
	if err != nil {
		return nil, nil, err
	}
	var out map[string]benchResult
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, nil, fmt.Errorf("%s: bad results matrix: %w", path, err)
	}
	return m, out, nil
}

// comparableConfigs reports whether two runs used the same simulation
// knobs, i.e. whether diffing their cycle counts is meaningful.
func comparableConfigs(prior, cur map[string]any) bool {
	for _, k := range []string{"scale_pct", "sb_size", "wcdl", "trials"} {
		if fmt.Sprint(prior[k]) != fmt.Sprint(cur[k]) {
			return false
		}
	}
	return true
}

// diffResults compares the current matrix against the prior one and
// renders a regression table. A configuration regresses when cycles or
// overhead grow, or IPC shrinks, beyond its tolerance; improvements and
// in-tolerance drift pass. Configurations present on only one side are
// noted but never regressions.
func diffResults(priorName string, prior, cur map[string]benchResult, tol tolerances) (*obs.Table, int) {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	t := &obs.Table{
		Title:  "benchmark trajectory vs " + priorName,
		Header: []string{"CONFIG", "CYCLES", "ΔCYCLES", "ΔIPC", "ΔOVERHEAD", "ΔALLOCS/TRIAL", "ΔTRIALS/S", "STATUS"},
	}
	regressions := 0
	pct := func(old, new float64) float64 {
		if old == 0 {
			return 0
		}
		return (new - old) / old * 100
	}
	// fmtDelta renders a cost-metric delta, or "-" when either side
	// lacks the measurement (old manifest, baseline scheme, -trials 0):
	// absent data is not a regression.
	fmtDelta := func(old, new float64) string {
		if old == 0 || new == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.2f%%", pct(old, new))
	}
	for _, k := range keys {
		c := cur[k]
		p, ok := prior[k]
		if !ok {
			t.Rows = append(t.Rows, []string{k, fmt.Sprint(c.Cycles), "-", "-", "-", "-", "-", "new"})
			continue
		}
		dc := pct(float64(p.Cycles), float64(c.Cycles))
		di := pct(p.IPC, c.IPC)
		do := pct(p.Overhead, c.Overhead)
		var da, dt float64
		if p.AllocsPerTrial > 0 && c.AllocsPerTrial > 0 {
			da = pct(p.AllocsPerTrial, c.AllocsPerTrial)
		}
		if p.TrialsPerSec > 0 && c.TrialsPerSec > 0 {
			dt = pct(p.TrialsPerSec, c.TrialsPerSec)
		}
		status := "ok"
		switch {
		case dc > tol.cycles || do > tol.overhead || di < -tol.ipc ||
			da > tol.allocs || (tol.trialsec > 0 && dt < -tol.trialsec):
			status = "REGRESSED"
			regressions++
		case dc < -tol.cycles || di > tol.ipc || do < -tol.overhead:
			status = "improved"
		}
		t.Rows = append(t.Rows, []string{
			k,
			fmt.Sprintf("%d → %d", p.Cycles, c.Cycles),
			fmt.Sprintf("%+.2f%%", dc),
			fmt.Sprintf("%+.2f%%", di),
			fmt.Sprintf("%+.2f%%", do),
			fmtDelta(p.AllocsPerTrial, c.AllocsPerTrial),
			fmtDelta(p.TrialsPerSec, c.TrialsPerSec),
			status,
		})
	}
	var dropped []string
	for k := range prior {
		if _, ok := cur[k]; !ok {
			dropped = append(dropped, k)
		}
	}
	sort.Strings(dropped)
	for _, k := range dropped {
		t.Rows = append(t.Rows, []string{k, "-", "-", "-", "-", "-", "-", "dropped"})
	}
	trialsecNote := "trials/sec gate off"
	if tol.trialsec > 0 {
		trialsecNote = fmt.Sprintf("trials/sec -%.2f%%", tol.trialsec)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("tolerances: cycles +%.2f%%, ipc -%.2f%%, overhead +%.2f%%, allocs/trial +%.2f%%, %s; cycle counts are deterministic",
			tol.cycles, tol.ipc, tol.overhead, tol.allocs, trialsecNote))
	return t, regressions
}
