// Command trace dissects one compiled benchmark: the annotated
// disassembly with region boundaries and checkpoint stores, the recovery
// block of every region, per-region static store counts against the
// budget, and optionally a dynamic region timeline from the simulator
// (start/end/verify cycles and store-release classes for the first N
// regions).
//
// With -trace it additionally runs a full simulation with the cycle-domain
// tracer attached and writes the trace to a file: .json is Chrome
// trace-event JSON (open in https://ui.perfetto.dev or chrome://tracing),
// .jsonl is line-delimited JSON, .txt is human-readable. The traced run
// injects one soft error mid-run so recovery episodes appear in the trace;
// disable with -inject 0. With -metrics it writes the run's metric
// snapshot (counters + histograms) as JSON.
//
// Usage:
//
//	trace [-scheme turnpike] [-timeline 20] gcc
//	trace -trace out.json -metrics metrics.json gcc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	var (
		scheme   = flag.String("scheme", "turnpike", "baseline | turnstile | turnpike")
		sb       = flag.Int("sb", 4, "store buffer entries")
		wcdl     = flag.Int("wcdl", 10, "worst-case detection latency")
		scale    = flag.Int("scale", 5, "workload scale percent")
		timeline = flag.Int("timeline", 0, "print a dynamic timeline of the first N regions")
		noDisasm = flag.Bool("q", false, "suppress the disassembly listing")
		traceOut = flag.String("trace", "", "write a cycle-domain trace to this file (.json=Perfetto, .jsonl, .txt)")
		inject   = flag.Int64("inject", -1, "inject one bit flip at this instruction during the traced run (-1 = auto, 0 = none)")
		burst    = flag.Int("burst", 1, "strikes injected at the injection point (a fault burst sharing one detection window)")
		latency  = flag.Int("latency", 0, "detection latency of the injected strike(s) (0 = WCDL; beyond WCDL shows a late-detection/degraded-mode episode)")
		fp       = flag.Bool("fp", false, "also inject a false-positive sensor firing at the injection point")
	)
	cli := obs.RegisterCLI(flag.CommandLine, "trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: trace [flags] <benchmark>")
		os.Exit(2)
	}
	p, ok := workload.ByName(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", flag.Arg(0))
		os.Exit(2)
	}

	var opt core.Options
	switch *scheme {
	case "baseline":
		opt = core.Options{Scheme: core.Baseline, SBSize: *sb}
	case "turnstile":
		opt = core.Options{Scheme: core.Turnstile, SBSize: *sb}
	case "turnpike":
		opt = core.TurnpikeAll(*sb)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	f := p.Build(*scale)
	compiled, err := core.Compile(f, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := compiled.Prog
	st := compiled.Stats
	fmt.Printf("%s under %s: %d instructions, %d regions, %d checkpoints "+
		"(%d pruned, %d+%d sunk, %d IVs merged), budget %d\n\n",
		p.Name, *scheme, st.InstrCount, st.Regions, st.Checkpoints,
		st.PrunedCkpts, st.SunkInBlock, st.SunkOutOfLoop, st.LIVMMerged, st.StoreBudget)

	if !*noDisasm {
		fmt.Println("== disassembly (body) ==")
		bodyEnd := len(prog.Insts)
		for i, ri := range prog.Regions {
			if ri.RecoveryPC >= 0 && ri.RecoveryPC < bodyEnd {
				bodyEnd = ri.RecoveryPC
			}
			_ = i
		}
		for i := 0; i < bodyEnd; i++ {
			in := &prog.Insts[i]
			marker := "  "
			switch {
			case in.Op == isa.BOUND:
				marker = "▶ "
			case in.Op == isa.CKPT:
				marker = "c "
			case in.Op.IsStore():
				marker = "s "
			}
			region := ""
			if prog.RegionOf != nil && prog.RegionOf[i] >= 0 {
				region = fmt.Sprintf("R%d", prog.RegionOf[i])
			}
			fmt.Printf("%4d %s %-28s %s\n", i, marker, in.String(), region)
		}

		if len(prog.Regions) > 0 {
			if reports, err := core.AnalyzeRegions(prog); err == nil {
				fmt.Println("\n== static region structure ==")
				fmt.Printf("%-8s %-8s %-10s %-8s %-8s %-8s %s\n",
					"region", "bound@", "max insts", "stores", "ckpts", "live-in", "recovery insts")
				for _, r := range reports {
					fmt.Printf("R%-7d @%-7d %-10d %-8d %-8d %-8d %d\n",
						r.ID, r.BoundPC, r.Insts, r.Stores, r.Ckpts, r.LiveIn, r.RecoveryInsts)
				}
			}
			fmt.Println("\n== recovery blocks ==")
			for _, ri := range prog.Regions {
				if ri.RecoveryPC < 0 {
					continue
				}
				fmt.Printf("R%d @%d:", ri.ID, ri.RecoveryPC)
				for pc := ri.RecoveryPC; pc < len(prog.Insts); pc++ {
					in := &prog.Insts[pc]
					fmt.Printf(" %s;", in.String())
					if in.Op == isa.JMP {
						break
					}
				}
				fmt.Println()
			}
		}
	}

	if *timeline > 0 {
		printTimeline(p, prog, opt, *sb, *wcdl, *timeline)
	}

	if *traceOut != "" || cli.WantsOutput() || cli.Serving() {
		inj := injectPlan{at: *inject, burst: *burst, latency: *latency, fp: *fp}
		if err := runObserved(p, prog, opt, *sb, *wcdl, *traceOut, inj, cli); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// injectPlan is the traced run's fault scenario from the CLI flags.
type injectPlan struct {
	at      int64 // -1 auto, 0 none
	burst   int
	latency int // 0 = WCDL
	fp      bool
}

// simConfig maps the compile options to a pipeline configuration.
func simConfig(opt core.Options, sb, wcdl int) pipeline.Config {
	switch opt.Scheme {
	case core.Baseline:
		return pipeline.BaselineConfig(sb)
	case core.Turnstile:
		return pipeline.TurnstileConfig(sb, wcdl)
	default:
		return pipeline.TurnpikeConfig(sb, wcdl)
	}
}

// runObserved executes the full workload with observability attached,
// writing the requested trace/metric/manifest files and, with -serve,
// streaming live progress while it runs. Under a resilient scheme it
// injects one soft error (auto-placed at one third of the dynamic
// instruction count unless -inject pins or disables it) so the trace shows
// a complete strike → detect → recover → re-execute episode; -burst,
// -latency, and -fp turn that into an adversarial one (multi-strike
// bursts, late detections with a degraded-mode window, spurious firings).
func runObserved(p workload.Profile, prog *isa.Program, opt core.Options, sb, wcdl int, traceOut string, inject injectPlan, cli *obs.CLI) error {
	cfg := simConfig(opt, sb, wcdl)
	if inject.burst+1 > cfg.DetectQueue && cfg.DetectQueue > 0 {
		cfg.DetectQueue = inject.burst + 1
	}

	injectAt := uint64(0)
	if cfg.Resilient && inject.at != 0 {
		if inject.at > 0 {
			injectAt = uint64(inject.at)
		} else {
			// Auto placement: a quick unobserved run sizes the program.
			pre, err := pipeline.New(prog, cfg)
			if err != nil {
				return err
			}
			p.SeedMemory(pre.Mem)
			st, err := pre.Run()
			if err != nil {
				return err
			}
			injectAt = st.Insts / 3
			if injectAt == 0 {
				injectAt = 1
			}
		}
	}

	s, err := pipeline.New(prog, cfg)
	if err != nil {
		return err
	}
	p.SeedMemory(s.Mem)

	var tracer *obs.Tracer
	var traceFile *os.File
	if traceOut != "" {
		traceFile, err = os.Create(traceOut)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer(obs.SinkForPath(traceFile, traceOut))
	}
	reg := obs.NewRegistry()
	s.AttachObs(pipeline.NewObs(tracer, reg))

	if cli.Serving() {
		progress := &pipeline.Progress{}
		s.AttachProgress(progress)
		srv, err := cli.StartServer(reg.Snapshot)
		if err != nil {
			return err
		}
		sampler := pipeline.NewSampler(progress, reg, 0, func(ps pipeline.ProgressSample) {
			srv.Publish("progress", ps)
		})
		sampler.Start()
		defer func() {
			sampler.Stop()
			cli.CloseServer()
		}()
	}

	injected := false
	for !s.Halted() {
		if injectAt > 0 && !injected && s.Stats.Insts >= injectAt {
			lat := inject.latency
			if lat <= 0 {
				lat = wcdl
			}
			if lat < 1 {
				lat = 1
			}
			n := inject.burst
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				if err := s.InjectBitFlip(isa.Reg(4+i%8), uint(17+i), lat+i); err != nil {
					return err
				}
			}
			if inject.fp {
				if err := s.InjectFalseDetection(lat); err != nil {
					return err
				}
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			return err
		}
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote trace to %s (%d cycles, %d insts, %d regions, %d recoveries)\n",
			traceOut, s.Stats.Cycles, s.Stats.Insts, s.Stats.RegionsExecuted, s.Stats.Recoveries)
	}
	if cli.WantsOutput() {
		s.FillMetrics(reg)
		man := cli.NewManifest()
		man.Config["scheme"] = opt.Scheme
		man.Config["sb_size"] = sb
		man.Config["wcdl"] = wcdl
		man.Workloads = []string{p.Name}
		if err := cli.WriteOutputs(man, reg.Snapshot(), os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// printTimeline simulates and reports the first n dynamic regions.
func printTimeline(p workload.Profile, prog *isa.Program, opt core.Options, sb, wcdl, n int) {
	var cfg pipeline.Config
	switch opt.Scheme {
	case core.Baseline:
		fmt.Println("\n(no regions under the baseline; timeline skipped)")
		return
	case core.Turnstile:
		cfg = pipeline.TurnstileConfig(sb, wcdl)
	default:
		cfg = pipeline.TurnpikeConfig(sb, wcdl)
	}
	cfg.RecordRegions = true
	s, err := pipeline.New(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p.SeedMemory(s.Mem)
	for !s.Halted() && len(s.RegionLog()) < n {
		if err := s.Step(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("\n== dynamic timeline (first %d regions, WCDL=%d) ==\n", n, wcdl)
	fmt.Printf("%-9s %-7s %-9s %-9s %-9s %-6s %-8s %-8s %s\n",
		"instance", "static", "start", "end", "verify", "insts", "warfree", "colored", "quarantined")
	for i, ev := range s.RegionLog() {
		if i >= n {
			break
		}
		fate := ""
		if ev.Squashed {
			fate = "  (squashed)"
		}
		fmt.Printf("#%-8d R%-6d @%-8d @%-8d @%-8d %-6d %-8d %-8d %d%s\n",
			ev.Instance, ev.StaticID, ev.Start, ev.End, ev.VerifyAt,
			ev.Insts, ev.WARFree, ev.Colored, ev.Quarantined, fate)
	}
	fmt.Printf("(totals so far: %d cycles, %d insts, %d warfree, %d colored, %d quarantined)\n",
		s.Cycle(), s.Stats.Insts, s.Stats.WARFreeReleased,
		s.Stats.ColoredReleased, s.Stats.Quarantined)
}
