// Command trace dissects one compiled benchmark: the annotated
// disassembly with region boundaries and checkpoint stores, the recovery
// block of every region, per-region static store counts against the
// budget, and optionally a dynamic region timeline from the simulator
// (start/end/verify cycles and store-release classes for the first N
// regions).
//
// Usage:
//
//	trace [-scheme turnpike] [-timeline 20] gcc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	var (
		scheme   = flag.String("scheme", "turnpike", "baseline | turnstile | turnpike")
		sb       = flag.Int("sb", 4, "store buffer entries")
		wcdl     = flag.Int("wcdl", 10, "worst-case detection latency")
		scale    = flag.Int("scale", 5, "workload scale percent")
		timeline = flag.Int("timeline", 0, "print a dynamic timeline of the first N regions")
		noDisasm = flag.Bool("q", false, "suppress the disassembly listing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: trace [flags] <benchmark>")
		os.Exit(2)
	}
	p, ok := workload.ByName(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", flag.Arg(0))
		os.Exit(2)
	}

	var opt core.Options
	switch *scheme {
	case "baseline":
		opt = core.Options{Scheme: core.Baseline, SBSize: *sb}
	case "turnstile":
		opt = core.Options{Scheme: core.Turnstile, SBSize: *sb}
	case "turnpike":
		opt = core.TurnpikeAll(*sb)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	f := p.Build(*scale)
	compiled, err := core.Compile(f, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := compiled.Prog
	st := compiled.Stats
	fmt.Printf("%s under %s: %d instructions, %d regions, %d checkpoints "+
		"(%d pruned, %d+%d sunk, %d IVs merged), budget %d\n\n",
		p.Name, *scheme, st.InstrCount, st.Regions, st.Checkpoints,
		st.PrunedCkpts, st.SunkInBlock, st.SunkOutOfLoop, st.LIVMMerged, st.StoreBudget)

	if !*noDisasm {
		fmt.Println("== disassembly (body) ==")
		bodyEnd := len(prog.Insts)
		for i, ri := range prog.Regions {
			if ri.RecoveryPC >= 0 && ri.RecoveryPC < bodyEnd {
				bodyEnd = ri.RecoveryPC
			}
			_ = i
		}
		for i := 0; i < bodyEnd; i++ {
			in := &prog.Insts[i]
			marker := "  "
			switch {
			case in.Op == isa.BOUND:
				marker = "▶ "
			case in.Op == isa.CKPT:
				marker = "c "
			case in.Op.IsStore():
				marker = "s "
			}
			region := ""
			if prog.RegionOf != nil && prog.RegionOf[i] >= 0 {
				region = fmt.Sprintf("R%d", prog.RegionOf[i])
			}
			fmt.Printf("%4d %s %-28s %s\n", i, marker, in.String(), region)
		}

		if len(prog.Regions) > 0 {
			if reports, err := core.AnalyzeRegions(prog); err == nil {
				fmt.Println("\n== static region structure ==")
				fmt.Printf("%-8s %-8s %-10s %-8s %-8s %-8s %s\n",
					"region", "bound@", "max insts", "stores", "ckpts", "live-in", "recovery insts")
				for _, r := range reports {
					fmt.Printf("R%-7d @%-7d %-10d %-8d %-8d %-8d %d\n",
						r.ID, r.BoundPC, r.Insts, r.Stores, r.Ckpts, r.LiveIn, r.RecoveryInsts)
				}
			}
			fmt.Println("\n== recovery blocks ==")
			for _, ri := range prog.Regions {
				if ri.RecoveryPC < 0 {
					continue
				}
				fmt.Printf("R%d @%d:", ri.ID, ri.RecoveryPC)
				for pc := ri.RecoveryPC; pc < len(prog.Insts); pc++ {
					in := &prog.Insts[pc]
					fmt.Printf(" %s;", in.String())
					if in.Op == isa.JMP {
						break
					}
				}
				fmt.Println()
			}
		}
	}

	if *timeline > 0 {
		printTimeline(p, prog, opt, *sb, *wcdl, *timeline)
	}
}

// printTimeline simulates and reports the first n dynamic regions.
func printTimeline(p workload.Profile, prog *isa.Program, opt core.Options, sb, wcdl, n int) {
	var cfg pipeline.Config
	switch opt.Scheme {
	case core.Baseline:
		fmt.Println("\n(no regions under the baseline; timeline skipped)")
		return
	case core.Turnstile:
		cfg = pipeline.TurnstileConfig(sb, wcdl)
	default:
		cfg = pipeline.TurnpikeConfig(sb, wcdl)
	}
	cfg.RecordRegions = true
	s, err := pipeline.New(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p.SeedMemory(s.Mem)
	for !s.Halted() && len(s.RegionLog()) < n {
		if err := s.Step(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("\n== dynamic timeline (first %d regions, WCDL=%d) ==\n", n, wcdl)
	fmt.Printf("%-9s %-7s %-9s %-9s %-9s %-6s %-8s %-8s %s\n",
		"instance", "static", "start", "end", "verify", "insts", "warfree", "colored", "quarantined")
	for i, ev := range s.RegionLog() {
		if i >= n {
			break
		}
		fate := ""
		if ev.Squashed {
			fate = "  (squashed)"
		}
		fmt.Printf("#%-8d R%-6d @%-8d @%-8d @%-8d %-6d %-8d %-8d %d%s\n",
			ev.Instance, ev.StaticID, ev.Start, ev.End, ev.VerifyAt,
			ev.Insts, ev.WARFree, ev.Colored, ev.Quarantined, fate)
	}
	fmt.Printf("(totals so far: %d cycles, %d insts, %d warfree, %d colored, %d quarantined)\n",
		s.Cycle(), s.Stats.Insts, s.Stats.WARFreeReleased,
		s.Stats.ColoredReleased, s.Stats.Quarantined)
}
