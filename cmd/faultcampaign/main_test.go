package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles the faultcampaign command once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("SIGINT delivery is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "faultcampaign")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptFlushesCheckpointAndResumeReproduces covers the operator
// workflow the checkpoint machinery exists for: SIGINT mid-campaign must
// flush the checkpoint before the process exits with status 130, and a
// re-run with the same -resume prefix must finish the campaign with output
// byte-identical to a never-interrupted run.
func TestInterruptFlushesCheckpointAndResumeReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary three times")
	}
	bin := buildBinary(t)
	dir := t.TempDir()

	args := func(prefix string) []string {
		return []string{
			"-trials", "3000", "-seed", "7", "-scale", "8", "-workers", "2",
			"-budget", "-1", "-missprob", "0.2", "-burst", "2",
			"-resume", prefix, "gcc",
		}
	}

	// Reference: an uninterrupted run.
	refPrefix := filepath.Join(dir, "ref")
	ref, err := exec.Command(bin, args(refPrefix)...).CombinedOutput()
	if err != nil {
		t.Fatalf("reference run: %v\n%s", err, ref)
	}

	// Interrupted run: SIGINT once the first checkpoint write lands.
	intPrefix := filepath.Join(dir, "int")
	ckpt := intPrefix + "-gcc.json"
	cmd := exec.Command(bin, args(intPrefix)...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared at %s within 60s:\n%s", ckpt, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		// The campaign may have finished before the signal landed on a
		// fast machine; that leaves nothing to resume.
		t.Skipf("campaign completed before SIGINT took effect: err=%v\n%s", err, out.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d after SIGINT, want 130\n%s", code, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("interrupted")) {
		t.Fatalf("interrupted run did not announce partial results:\n%s", out.String())
	}
	fi, err := os.Stat(ckpt)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint not flushed before exit: %v", err)
	}

	// Resume: the finished campaign's output must match the reference
	// byte for byte (the checkpoint restores completed trials; merging is
	// trial-ordered and worker-count independent).
	res, err := exec.Command(bin, args(intPrefix)...).CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, res)
	}
	if !bytes.Equal(res, ref) {
		t.Fatalf("resumed output diverged from the uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", res, ref)
	}
}
