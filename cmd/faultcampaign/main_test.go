package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles the faultcampaign command once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("SIGINT delivery is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "faultcampaign")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptFlushesCheckpointAndResumeReproduces covers the operator
// workflow the checkpoint machinery exists for: an interrupt mid-campaign
// must flush the checkpoint before the process exits with status 130, and
// a re-run with the same -resume prefix must finish the campaign with
// output byte-identical to a never-interrupted run. SIGINT (an operator's
// Ctrl-C) and SIGTERM (a supervisor's stop — systemd, Kubernetes, the
// campaignd drain) must take the identical path.
func TestInterruptFlushesCheckpointAndResumeReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary five times")
	}
	bin := buildBinary(t)
	dir := t.TempDir()

	args := func(prefix string) []string {
		return []string{
			"-trials", "3000", "-seed", "7", "-scale", "8", "-workers", "2",
			"-budget", "-1", "-missprob", "0.2", "-burst", "2",
			"-resume", prefix, "gcc",
		}
	}

	// Reference: an uninterrupted run, shared by both signal cases.
	refPrefix := filepath.Join(dir, "ref")
	ref, err := exec.Command(bin, args(refPrefix)...).CombinedOutput()
	if err != nil {
		t.Fatalf("reference run: %v\n%s", err, ref)
	}

	for _, tc := range []struct {
		name string
		sig  syscall.Signal
	}{
		{"SIGINT", syscall.SIGINT},
		{"SIGTERM", syscall.SIGTERM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Interrupted run: signal once the first checkpoint write lands.
			intPrefix := filepath.Join(dir, "int-"+tc.name)
			ckpt := intPrefix + "-gcc.json"
			cmd := exec.Command(bin, args(intPrefix)...)
			var out bytes.Buffer
			cmd.Stdout, cmd.Stderr = &out, &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
					break
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					t.Fatalf("no checkpoint appeared at %s within 60s:\n%s", ckpt, out.String())
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err := cmd.Process.Signal(tc.sig); err != nil {
				t.Fatal(err)
			}
			err := cmd.Wait()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				// The campaign may have finished before the signal landed on
				// a fast machine; that leaves nothing to resume.
				t.Skipf("campaign completed before %s took effect: err=%v\n%s", tc.name, err, out.String())
			}
			if code := ee.ExitCode(); code != 130 {
				t.Fatalf("exit code %d after %s, want 130\n%s", code, tc.name, out.String())
			}
			if !bytes.Contains(out.Bytes(), []byte("interrupted")) {
				t.Fatalf("interrupted run did not announce partial results:\n%s", out.String())
			}
			fi, err := os.Stat(ckpt)
			if err != nil || fi.Size() == 0 {
				t.Fatalf("checkpoint not flushed before exit: %v", err)
			}

			// Resume: the finished campaign's output must match the
			// reference byte for byte (the checkpoint restores completed
			// trials; merging is trial-ordered and worker-count independent).
			res, err := exec.Command(bin, args(intPrefix)...).CombinedOutput()
			if err != nil {
				t.Fatalf("resumed run: %v\n%s", err, res)
			}
			if !bytes.Equal(res, ref) {
				t.Fatalf("resumed output diverged from the uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", res, ref)
			}
		})
	}
}
