// Command faultcampaign runs single-bit-flip soft-error injection against
// one or more benchmarks and reports outcome classes. The invariant under
// both resilient schemes is zero SDC: every fault is either masked or
// detected by the sensor model and repaired through the compiler-generated
// recovery blocks.
//
// Usage:
//
//	faultcampaign                      # quick campaign on a sample set
//	faultcampaign -trials 500 gcc lbm
//	faultcampaign -scheme turnstile -wcdl 30 -all
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	turnpike "repro"
	"repro/internal/fault"
)

func main() {
	var (
		scheme = flag.String("scheme", "turnpike", "resilience scheme: turnstile | turnpike")
		trials = flag.Int("trials", 100, "injections per benchmark")
		wcdl   = flag.Int("wcdl", 10, "worst-case sensor detection latency (cycles)")
		sb     = flag.Int("sb", 4, "store buffer entries")
		scale  = flag.Int("scale", 8, "workload scale (percent)")
		seed   = flag.Int64("seed", 1, "campaign seed")
		all    = flag.Bool("all", false, "run every benchmark")
	)
	flag.Parse()

	var sc turnpike.Scheme
	switch *scheme {
	case "turnstile":
		sc = turnpike.Turnstile
	case "turnpike":
		sc = turnpike.Turnpike
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	benches := flag.Args()
	if *all {
		benches = turnpike.BenchmarkNames()
	} else if len(benches) == 0 {
		benches = []string{"gcc", "lbm", "mcf", "exchange2", "radix"}
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tMASKED\tRECOVERED\tSDC\tCRASH\tAVG RECOVERY (cyc)\tP50 SLOWDOWN\tP99 SLOWDOWN")
	totalSDC := 0
	for _, b := range benches {
		res, err := turnpike.InjectFaults(b, sc, turnpike.FaultCampaignConfig{
			Trials: *trials, Seed: *seed, SBSize: *sb, WCDL: *wcdl, ScalePct: *scale,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.3f\t%.3f\n", b,
			res.Outcomes[fault.Masked], res.Outcomes[fault.Recovered],
			res.Outcomes[fault.SDC], res.Outcomes[fault.Crash],
			res.AvgRecoveryCycles,
			res.SlowdownPercentile(50), res.SlowdownPercentile(99))
		totalSDC += res.Outcomes[fault.SDC]
	}
	w.Flush()
	if totalSDC > 0 {
		fmt.Println("\nFAIL: silent data corruption observed")
		os.Exit(1)
	}
	fmt.Printf("\n%v: no silent data corruption across %d benchmarks x %d trials\n",
		sc, len(benches), *trials)
}
