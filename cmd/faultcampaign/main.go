// Command faultcampaign runs single-bit-flip soft-error injection against
// one or more benchmarks and reports outcome classes. The invariant under
// both resilient schemes is zero SDC: every fault is either masked or
// detected by the sensor model and repaired through the compiler-generated
// recovery blocks.
//
// Usage:
//
//	faultcampaign                      # quick campaign on a sample set
//	faultcampaign -trials 500 gcc lbm
//	faultcampaign -scheme turnstile -wcdl 30 -all
//	faultcampaign -manifest run.json gcc   # write a JSON run manifest
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
)

func main() {
	var (
		scheme   = flag.String("scheme", "turnpike", "resilience scheme: turnstile | turnpike")
		trials   = flag.Int("trials", 100, "injections per benchmark")
		wcdl     = flag.Int("wcdl", 10, "worst-case sensor detection latency (cycles)")
		sb       = flag.Int("sb", 4, "store buffer entries")
		scale    = flag.Int("scale", 8, "workload scale (percent)")
		seed     = flag.Int64("seed", 1, "campaign seed")
		all      = flag.Bool("all", false, "run every benchmark")
		manifest = flag.String("manifest", "", "write a per-run JSON manifest (config, outcomes, metric snapshot) to this file")
	)
	flag.Parse()

	var sc turnpike.Scheme
	switch *scheme {
	case "turnstile":
		sc = turnpike.Turnstile
	case "turnpike":
		sc = turnpike.Turnpike
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	benches := flag.Args()
	if *all {
		benches = turnpike.BenchmarkNames()
	} else if len(benches) == 0 {
		benches = []string{"gcc", "lbm", "mcf", "exchange2", "radix"}
	}

	man := obs.NewManifest("faultcampaign")
	man.Config["scheme"] = *scheme
	man.Config["trials"] = *trials
	man.Config["wcdl"] = *wcdl
	man.Config["sb_size"] = *sb
	man.Config["scale_pct"] = *scale
	man.Seed = *seed
	man.Workloads = benches
	reg := obs.NewRegistry()
	outcomes := map[string]map[string]int{}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tMASKED\tRECOVERED\tSDC\tCRASH\tAVG RECOVERY (cyc)\tP50 SLOWDOWN\tP99 SLOWDOWN")
	totalSDC := 0
	for _, b := range benches {
		res, err := turnpike.InjectFaults(b, sc, turnpike.FaultCampaignConfig{
			Trials: *trials, Seed: *seed, SBSize: *sb, WCDL: *wcdl, ScalePct: *scale,
			Metrics: reg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.3f\t%.3f\n", b,
			res.Outcomes[fault.Masked], res.Outcomes[fault.Recovered],
			res.Outcomes[fault.SDC], res.Outcomes[fault.Crash],
			res.AvgRecoveryCycles,
			res.SlowdownPercentile(50), res.SlowdownPercentile(99))
		totalSDC += res.Outcomes[fault.SDC]
		per := map[string]int{}
		for o, n := range res.Outcomes {
			per[o.String()] = n
		}
		outcomes[b] = per
	}
	w.Flush()
	if totalSDC > 0 {
		fmt.Println("\nFAIL: silent data corruption observed")
		os.Exit(1)
	}
	fmt.Printf("\n%v: no silent data corruption across %d benchmarks x %d trials\n",
		sc, len(benches), *trials)

	if *manifest != "" {
		man.Extra["outcomes_by_benchmark"] = outcomes
		man.Finish(reg.Snapshot())
		if err := man.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote run manifest to %s\n", *manifest)
	}
}
