// Command faultcampaign runs single-bit-flip soft-error injection against
// one or more benchmarks and reports outcome classes. The invariant under
// both resilient schemes is zero SDC: every fault is either masked or
// detected by the sensor model and repaired through the compiler-generated
// recovery blocks.
//
// Usage:
//
//	faultcampaign                      # quick campaign on a sample set
//	faultcampaign -trials 500 gcc lbm
//	faultcampaign -scheme turnstile -wcdl 30 -all
//	faultcampaign -manifest run.json gcc   # write a JSON run manifest
//	faultcampaign -serve :9090 -all        # live /metrics + /live SSE mid-campaign
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	var (
		scheme = flag.String("scheme", "turnpike", "resilience scheme: turnstile | turnpike")
		trials = flag.Int("trials", 100, "injections per benchmark")
		wcdl   = flag.Int("wcdl", 10, "worst-case sensor detection latency (cycles)")
		sb     = flag.Int("sb", 4, "store buffer entries")
		scale  = flag.Int("scale", 8, "workload scale (percent)")
		seed   = flag.Int64("seed", 1, "campaign seed")
		all    = flag.Bool("all", false, "run every benchmark")
	)
	cli := obs.RegisterCLI(flag.CommandLine, "faultcampaign")
	flag.Parse()

	var sc turnpike.Scheme
	switch *scheme {
	case "turnstile":
		sc = turnpike.Turnstile
	case "turnpike":
		sc = turnpike.Turnpike
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	benches := flag.Args()
	if *all {
		benches = turnpike.BenchmarkNames()
	} else if len(benches) == 0 {
		benches = []string{"gcc", "lbm", "mcf", "exchange2", "radix"}
	}

	man := cli.NewManifest()
	man.Config["scheme"] = *scheme
	man.Config["trials"] = *trials
	man.Config["wcdl"] = *wcdl
	man.Config["sb_size"] = *sb
	man.Config["scale_pct"] = *scale
	man.Seed = *seed
	man.Workloads = benches
	reg := obs.NewRegistry()
	outcomes := map[string]map[string]int{}

	// -serve: the campaign registry is scraped live (its counters and
	// histograms are goroutine-safe) while a sampler streams per-trial
	// simulator progress to /live.
	var progress *pipeline.Progress
	if cli.Serving() {
		progress = &pipeline.Progress{}
		srv, err := cli.StartServer(reg.Snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sampler := pipeline.NewSampler(progress, reg, 0, func(ps pipeline.ProgressSample) {
			srv.Publish("progress", ps)
		})
		sampler.Start()
		defer func() {
			sampler.Stop()
			cli.CloseServer()
		}()
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tMASKED\tRECOVERED\tSDC\tCRASH\tAVG RECOVERY (cyc)\tP50 SLOWDOWN\tP99 SLOWDOWN")
	totalSDC := 0
	for _, b := range benches {
		res, err := turnpike.InjectFaults(b, sc, turnpike.FaultCampaignConfig{
			Trials: *trials, Seed: *seed, SBSize: *sb, WCDL: *wcdl, ScalePct: *scale,
			Metrics: reg, Progress: progress,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.3f\t%.3f\n", b,
			res.Outcomes[fault.Masked], res.Outcomes[fault.Recovered],
			res.Outcomes[fault.SDC], res.Outcomes[fault.Crash],
			res.AvgRecoveryCycles,
			res.SlowdownPercentile(50), res.SlowdownPercentile(99))
		totalSDC += res.Outcomes[fault.SDC]
		per := map[string]int{}
		for o, n := range res.Outcomes {
			per[o.String()] = n
		}
		outcomes[b] = per
	}
	w.Flush()
	if totalSDC > 0 {
		fmt.Println("\nFAIL: silent data corruption observed")
		os.Exit(1)
	}
	fmt.Printf("\n%v: no silent data corruption across %d benchmarks x %d trials\n",
		sc, len(benches), *trials)

	if cli.WantsOutput() {
		man.Extra["outcomes_by_benchmark"] = outcomes
		if err := cli.WriteOutputs(man, reg.Snapshot(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
