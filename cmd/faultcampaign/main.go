// Command faultcampaign runs single-bit-flip soft-error injection against
// one or more benchmarks and reports outcome classes. The invariant under
// both resilient schemes is zero SDC: every fault is either masked or
// detected by the sensor model and repaired through the compiler-generated
// recovery blocks.
//
// Trials are independently seeded and fan out over a worker pool; the
// outcome histogram and failure report are identical for every -workers
// value at a fixed seed.
//
// Usage:
//
//	faultcampaign                      # quick campaign on a sample set
//	faultcampaign -trials 500 gcc lbm
//	faultcampaign -scheme turnstile -wcdl 30 -all
//	faultcampaign -workers 1 -seed 42 gcc  # serial, same result as parallel
//	faultcampaign -budget -1 -trials 10000 gcc   # record every failure, never abort
//	faultcampaign -resume ckpt -trials 10000 gcc # checkpoint to ckpt-gcc.json; re-run resumes
//	faultcampaign -manifest run.json gcc   # write a JSON run manifest
//	faultcampaign -serve :9090 -all        # live /metrics + /live SSE mid-campaign
//	faultcampaign -spans trace.json gcc    # wall-clock spans (Perfetto) + phase budget
//
// Adversarial campaigns replace the perfect sensor mesh with an imperfect
// one — dead sensors, detections beyond the WCDL, multi-strike bursts, and
// false positives — and report detection coverage plus the DUE rate with
// Wilson 95% intervals. The invariant shifts: misses become DUEs (detected
// but unrecoverable, machine aborted), never SDC:
//
//	faultcampaign -missprob 0.2 -burst 3 -deadsensors 50 -fprate 0.05 gcc
//	faultcampaign -missprob 0.2 -containment=false gcc  # unsafe point: expect SDC
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"text/tabwriter"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/obs/span"
	"repro/internal/pipeline"
)

func main() {
	var (
		scheme  = flag.String("scheme", "turnpike", "resilience scheme: turnstile | turnpike")
		trials  = flag.Int("trials", 100, "injections per benchmark")
		wcdl    = flag.Int("wcdl", 10, "worst-case sensor detection latency (cycles)")
		sb      = flag.Int("sb", 4, "store buffer entries")
		scale   = flag.Int("scale", 8, "workload scale (percent)")
		seed    = flag.Int64("seed", 1, "campaign seed")
		all     = flag.Bool("all", false, "run every benchmark")
		workers = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); the result is identical for every value")
		lease   = flag.Int("lease", 0, "consecutive trials per worker dispatch (0 = automatic); the result is identical for every value")
		budget  = flag.Int("budget", 0, "failure budget: abort after this many SDC/crash trials (0 = first failure, -1 = record all, never abort)")
		resume  = flag.String("resume", "", "checkpoint path prefix; completed trials persist to <prefix>-<bench>.json and a re-run resumes from them")

		missprob    = flag.Float64("missprob", 0, "adversary: per-strike probability the detection lands beyond the WCDL")
		fprate      = flag.Float64("fprate", 0, "adversary: per-trial probability of a spurious sensor firing")
		deadsensors = flag.Int("deadsensors", 0, "adversary: sensors of the nominal mesh that are offline")
		burst       = flag.Int("burst", 0, "adversary: max strikes per trial (burst size drawn uniform in [1, burst])")
		latefactor  = flag.Float64("latefactor", 0, "adversary: late detections bounded at latefactor x WCDL (0 = default 4)")
		containment = flag.Bool("containment", true, "abort as DUE when a detection arrives after its region verified (off = unsafe, demonstrates SDC)")
		profileDir  = flag.String("profile", "", "directory for pprof profiles (CPU + heap) and a per-trial cost report bracketing the whole campaign (empty = off)")
		spansOut    = flag.String("spans", "", "wall-clock span trace file (.jsonl = JSON lines, else Chrome trace JSON for Perfetto) plus a phase-budget table (empty = off)")
		jsonOut     = flag.String("json", "", "write the merged campaign Result per benchmark as JSON to this file — the canonical form fleet CI diffs against (empty = off)")
	)
	cli := obs.RegisterCLI(flag.CommandLine, "faultcampaign")
	flag.Parse()

	var sc turnpike.Scheme
	switch *scheme {
	case "turnstile":
		sc = turnpike.Turnstile
	case "turnpike":
		sc = turnpike.Turnpike
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	benches := flag.Args()
	if *all {
		benches = turnpike.BenchmarkNames()
	} else if len(benches) == 0 {
		benches = []string{"gcc", "lbm", "mcf", "exchange2", "radix"}
	}

	var adv *turnpike.FaultAdversary
	if *missprob > 0 || *fprate > 0 || *deadsensors > 0 || *burst > 1 || *latefactor > 0 {
		adv = &turnpike.FaultAdversary{
			MissProb:          *missprob,
			FalsePositiveRate: *fprate,
			DeadSensors:       *deadsensors,
			BurstMax:          *burst,
			LateFactor:        *latefactor,
		}
	}

	man := cli.NewManifest()
	man.Config["scheme"] = *scheme
	man.Config["trials"] = *trials
	man.Config["wcdl"] = *wcdl
	man.Config["sb_size"] = *sb
	man.Config["scale_pct"] = *scale
	man.Config["workers"] = *workers
	man.Config["lease"] = *lease
	man.Config["failure_budget"] = *budget
	man.Config["containment"] = *containment
	if adv != nil {
		man.Config["adversary"] = adv
	}
	man.Seed = *seed
	man.Workloads = benches
	reg := obs.NewRegistry()
	outcomes := map[string]map[string]int{}
	failures := map[string][]fault.TrialFailure{}
	results := map[string]*fault.Result{}

	// Ctrl-C or a supervisor's SIGTERM cancels outstanding trials; with
	// -resume each benchmark's checkpoint is flushed first, so the next
	// invocation picks up from the completed-trial watermark. Both signals
	// take the same path: partial results, exit 130, resume hint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -serve: the campaign registry is scraped live (its counters and
	// histograms are goroutine-safe) while a sampler streams per-trial
	// simulator progress — including the active worker count — to /live.
	var progress *pipeline.Progress
	if cli.Serving() {
		progress = &pipeline.Progress{}
		srv, err := cli.StartServer(reg.Snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sampler := pipeline.NewSampler(progress, reg, 0, func(ps pipeline.ProgressSample) {
			srv.Publish("progress", ps)
		})
		sampler.Start()
		defer func() {
			sampler.Stop()
			cli.CloseServer()
		}()
	}

	// -spans: a wall-clock tracer rides the context into every campaign;
	// each benchmark runs under one "campaign" root span, the engine's
	// phases (golden run, shard execution, checkpoints, merge) nest under
	// it, and the file + phase-budget table are written at the end.
	var tracer *span.Tracer
	var spanFile *os.File
	if *spansOut != "" {
		var err error
		spanFile, err = os.Create(*spansOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tracer = span.New(span.Config{Metrics: reg, Sink: obs.SinkForPath(spanFile, *spansOut)})
		ctx = span.Into(ctx, tracer)
	}

	// -profile: one CPU + heap capture brackets every campaign below; the
	// cost report divides the usage over all completed trials.
	var capture *profile.Capture
	if *profileDir != "" {
		var err error
		if capture, err = profile.Start(*profileDir, "faultcampaign", true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tMASKED\tRECOVERED\tSDC\tCRASH\tDUE\tAVG RECOVERY (cyc)\tP50 SLOWDOWN\tP99 SLOWDOWN")
	totalSDC := 0
	completedTrials := 0
	var coverage []string
	interrupted := false
	for _, b := range benches {
		ckpt := ""
		if *resume != "" {
			ckpt = fmt.Sprintf("%s-%s.json", *resume, b)
		}
		bctx, bspan := span.Start(ctx, "cli", "campaign")
		bspan.SetArg("bench", b)
		res, err := turnpike.InjectFaultsContext(bctx, b, sc, turnpike.FaultCampaignConfig{
			Trials: *trials, Seed: *seed, SBSize: *sb, WCDL: *wcdl, ScalePct: *scale,
			Metrics: reg, Progress: progress,
			Workers: *workers, Lease: *lease, FailureBudget: *budget, Checkpoint: ckpt,
			Adversary: adv, Containment: containment,
		})
		bspan.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b, err)
			if res == nil || ctx.Err() == nil {
				w.Flush()
				printFailures(failures)
				os.Exit(1)
			}
			interrupted = true
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.3f\t%.3f\n", b,
			res.Outcomes[fault.Masked], res.Outcomes[fault.Recovered],
			res.Outcomes[fault.SDC], res.Outcomes[fault.Crash],
			res.Outcomes[fault.DUE],
			res.AvgRecoveryCycles,
			res.SlowdownPercentile(50), res.SlowdownPercentile(99))
		totalSDC += res.Outcomes[fault.SDC]
		completedTrials += res.CompletedTrials
		if adv != nil {
			coverage = append(coverage, fmt.Sprintf(
				"%s: coverage %.1f%% [%.1f%%, %.1f%%] (%d/%d strikes), DUE rate %.1f%% [%.1f%%, %.1f%%], SDC rate %.1f%% [%.1f%%, %.1f%%]",
				b,
				100*res.Coverage.Rate, 100*res.Coverage.Lo, 100*res.Coverage.Hi,
				res.Coverage.Successes, res.Coverage.Total,
				100*res.DUERate.Rate, 100*res.DUERate.Lo, 100*res.DUERate.Hi,
				100*res.SDCRate.Rate, 100*res.SDCRate.Lo, 100*res.SDCRate.Hi))
		}
		per := map[string]int{}
		for o, n := range res.Outcomes {
			per[o.String()] = n
		}
		outcomes[b] = per
		results[b] = res
		if len(res.Failures) > 0 {
			failures[b] = res.Failures
		}
		if interrupted {
			break
		}
	}
	w.Flush()
	// -json: the merged Result per benchmark, exactly as campaignd serves
	// it in a job record. The fleet CI job regenerates this single-node
	// form and diffs it against both the committed reference and the
	// distributed run's merged result: three executors, one byte stream.
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("campaign results written to %s\n", *jsonOut)
	}
	if capture != nil {
		usage, err := capture.Stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep := usage.Report(completedTrials)
		rep.Workload = fmt.Sprint(benches)
		rep.Scheme = *scheme
		rep.CPUProfile = capture.CPUProfilePath()
		rep.HeapProfile = capture.HeapProfilePath()
		costPath := filepath.Join(*profileDir, "faultcampaign.cost.json")
		if err := rep.WriteFile(costPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ncampaign cost: %s\nprofiles: %s %s\ncost report: %s\n",
			rep, capture.CPUProfilePath(), capture.HeapProfilePath(), costPath)
	}
	if len(coverage) > 0 {
		fmt.Println("\nadversarial mesh (Wilson 95% intervals):")
		for _, line := range coverage {
			fmt.Println("  " + line)
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "span trace: %v\n", err)
		}
		if err := spanFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "span trace: %v\n", err)
		}
		fmt.Println()
		fmt.Print(span.Analyze("", tracer.Spans()).Table("phase budget (wall clock)").Render())
		fmt.Printf("span trace written to %s (open in https://ui.perfetto.dev)\n", *spansOut)
	}
	printFailures(failures)
	switch {
	case interrupted:
		fmt.Println("\ninterrupted: partial results above; re-run with the same -resume prefix to continue")
		os.Exit(130)
	case totalSDC > 0 && *containment:
		fmt.Println("\nFAIL: silent data corruption observed")
		os.Exit(1)
	case totalSDC > 0:
		fmt.Printf("\n%d SDC outcomes with containment disabled (the expected unsafe operating point)\n", totalSDC)
	default:
		fmt.Printf("\n%v: no silent data corruption across %d benchmarks x %d trials\n",
			sc, len(benches), *trials)
	}

	if cli.WantsOutput() {
		man.Extra["outcomes_by_benchmark"] = outcomes
		if len(failures) > 0 {
			man.Extra["failures_by_benchmark"] = failures
		}
		if err := cli.WriteOutputs(man, reg.Snapshot(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// printFailures dumps the replayable failure report: one line per SDC or
// crash trial, in trial order, with the exact injection to hand to
// turnpike.ReplayFault (or fault.Replay) for debugging.
func printFailures(failures map[string][]fault.TrialFailure) {
	for _, b := range sortedKeys(failures) {
		fmt.Printf("\n%s failure report (%d):\n", b, len(failures[b]))
		for _, f := range failures[b] {
			fmt.Printf("  trial %d: %s reg=%d bit=%d at_inst=%d latency=%d%s\n",
				f.Trial, f.Outcome, f.Inj.Reg, f.Inj.Bit, f.Inj.AtInst, f.Inj.Latency,
				errSuffix(f.Err))
		}
	}
}

func errSuffix(s string) string {
	if s == "" {
		return ""
	}
	return " err=" + s
}

func sortedKeys(m map[string][]fault.TrialFailure) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
