// Command turnpike compiles one benchmark kernel under a chosen resilience
// scheme, simulates it on the in-order core model, and prints the run-time
// overhead plus the mechanism counters.
//
// Usage:
//
//	turnpike [flags] <benchmark>
//	turnpike -list
//
// Examples:
//
//	turnpike gcc
//	turnpike -scheme turnstile -wcdl 30 lbm
//	turnpike -scheme turnpike -sb 8 -scale 50 -v mcf
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	turnpike "repro"
	"repro/internal/workload"
)

func main() {
	var (
		scheme = flag.String("scheme", "turnpike", "resilience scheme: baseline | turnstile | turnpike")
		sb     = flag.Int("sb", 4, "store buffer entries")
		wcdl   = flag.Int("wcdl", 10, "worst-case sensor detection latency (cycles)")
		scale  = flag.Int("scale", 25, "workload scale (percent of full trip count)")
		ideal  = flag.Bool("ideal-clq", false, "use the infinite address-matching CLQ")
		list   = flag.Bool("list", false, "list benchmarks and exit")
		verb   = flag.Bool("v", false, "print detailed mechanism counters")
		save   = flag.String("save", "", "serialize the compiled program to this file")
	)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "NAME\tSUITE\tTEMPLATE")
		for _, p := range workload.Benchmarks() {
			fmt.Fprintf(w, "%s\t%s\t%s\n", p.Name, p.Suite, p.Tmpl)
		}
		w.Flush()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: turnpike [flags] <benchmark>   (or -list)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	bench := flag.Arg(0)

	var sc turnpike.Scheme
	switch *scheme {
	case "baseline":
		sc = turnpike.Baseline
	case "turnstile":
		sc = turnpike.Turnstile
	case "turnpike":
		sc = turnpike.Turnpike
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	res, err := turnpike.Evaluate(bench, sc, turnpike.EvalConfig{
		SBSize: *sb, WCDL: *wcdl, ScalePct: *scale, CLQIdeal: *ideal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *save != "" {
		p, _ := workload.ByName(bench)
		compiled, err := turnpike.Compile(p.Build(*scale), optionsFor(sc, *sb))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fobj, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := compiled.Prog.WriteTo(fobj)
		if cerr := fobj.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d bytes (%d instructions, %d regions) to %s\n",
			n, len(compiled.Prog.Insts), len(compiled.Prog.Regions), *save)
	}

	fmt.Printf("%s under %v (SB=%d, WCDL=%d):\n", bench, sc, *sb, *wcdl)
	fmt.Printf("  cycles           %d (baseline %d)\n", res.Cycles, res.BaselineCycles)
	fmt.Printf("  normalized time  %.3f (%.1f%% overhead)\n", res.Overhead, 100*(res.Overhead-1))
	fmt.Printf("  IPC              %.2f\n", res.Stats.IPC())
	if !*verb {
		return
	}
	st, cs := res.Stats, res.Compile
	fmt.Printf("compile: regions=%d checkpoints=%d pruned=%d sunk=%d/%d livm=%d spills=%d budget=%d\n",
		cs.Regions, cs.Checkpoints, cs.PrunedCkpts, cs.SunkInBlock, cs.SunkOutOfLoop,
		cs.LIVMMerged, cs.SpillStores, cs.StoreBudget)
	fmt.Printf("dynamic: insts=%d progStores=%d spills=%d ckpts=%d\n",
		st.Insts, st.ProgStores, st.SpillStores, st.CkptStores)
	fmt.Printf("release: warfree=%d colored=%d quarantined=%d wawBlocked=%d\n",
		st.WARFreeReleased, st.ColoredReleased, st.Quarantined, st.WAWBlocked)
	fmt.Printf("stalls:  sbFull=%d data=%d branch=%d fetch=%d rbb=%d color=%d\n",
		st.SBFullStalls, st.DataStalls, st.BranchBubbles, st.FetchStalls,
		st.RBBFullStalls, st.ColorStalls)
	fmt.Printf("regions: executed=%d clqOverflow=%d clqOcc(avg/max)=%.2f/%d\n",
		st.RegionsExecuted, st.CLQOverflows, st.AvgCLQOccupancy(), st.CLQOccMax)
}

// optionsFor maps a scheme to its full compile options at the given SB.
func optionsFor(sc turnpike.Scheme, sb int) turnpike.CompileOptions {
	switch sc {
	case turnpike.Baseline:
		return turnpike.CompileOptions{Scheme: turnpike.Baseline, SBSize: sb}
	case turnpike.Turnstile:
		return turnpike.CompileOptions{Scheme: turnpike.Turnstile, SBSize: sb}
	default:
		return turnpike.CompileOptions{Scheme: turnpike.Turnpike, SBSize: sb,
			StoreAwareRA: true, LIVM: true, Prune: true, Sink: true, Sched: true,
			ColoredCkpts: true}
	}
}
