// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6) as text tables: Figs. 4, 14, 15, 18, 19, 20, 21,
// 22, 23, 24, 25, 26 and Table 1.
//
// Usage:
//
//	experiments                # run everything at the default scale
//	experiments -scale 50 fig19 fig20
//	experiments -manifest run.json fig19   # also write a machine-diffable run manifest
//	experiments -serve :9090 fig19         # live /metrics, /live SSE, pprof while running
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

type runner func(r *experiment.Runner) (fmt.Stringer, error)

type tableResult struct{ t experiment.Table }

func (t tableResult) String() string {
	if markdownOut {
		return t.t.RenderMarkdown()
	}
	return t.t.Render()
}

// markdownOut selects markdown rendering (set by the -markdown flag).
var markdownOut bool

func main() {
	var (
		scale = flag.Int("scale", 25, "workload scale (percent of full trip count)")
		list  = flag.Bool("list", false, "list experiment names and exit")
		wcdl  = flag.Int("wcdl", 10, "default WCDL for the single-WCDL figures")
		md    = flag.Bool("markdown", false, "render tables as markdown")
	)
	cli := obs.RegisterCLI(flag.CommandLine, "experiments")
	flag.Parse()
	markdownOut = *md

	exps := map[string]runner{
		"fig4": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig4(r)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig14": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig14(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig15": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig15(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig18": func(r *experiment.Runner) (fmt.Stringer, error) {
			return tableResult{experiment.Fig18().Table}, nil
		},
		"fig19": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig19(r)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig20": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig20(r)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig21": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig21(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig22": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig22(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig23": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig23(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig24": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig24(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig25": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig25(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"fig26": func(r *experiment.Runner) (fmt.Stringer, error) {
			res, err := experiment.Fig26(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{res.Table}, nil
		},
		"table1": func(r *experiment.Runner) (fmt.Stringer, error) {
			return tableResult{experiment.Table1()}, nil
		},
		"workloads": func(r *experiment.Runner) (fmt.Stringer, error) {
			tab, err := experiment.WorkloadTable(r.Scale)
			if err != nil {
				return nil, err
			}
			return tableResult{tab}, nil
		},
		"energy": func(r *experiment.Runner) (fmt.Stringer, error) {
			tab, err := experiment.EnergyTable(r, *wcdl)
			if err != nil {
				return nil, err
			}
			return tableResult{tab}, nil
		},
	}

	names := make([]string, 0, len(exps))
	for n := range exps {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	want := flag.Args()
	if len(want) == 0 {
		want = names
	}
	man := cli.NewManifest()
	man.Config["scale_pct"] = *scale
	man.Config["wcdl"] = *wcdl
	man.Workloads = want
	wallSecs := map[string]float64{}

	r := experiment.NewRunner(*scale)

	// -serve: live registry (runner aggregate + live.* gauges) plus a
	// progress sampler streaming to /live while figures run.
	if cli.Serving() {
		liveReg := obs.NewRegistry()
		progress := &pipeline.Progress{}
		r.Progress = progress
		srv, err := cli.StartServer(func() obs.Snapshot {
			return r.MetricsSnapshot().Merge(liveReg.Snapshot())
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sampler := pipeline.NewSampler(progress, liveReg, 0, func(ps pipeline.ProgressSample) {
			srv.Publish("progress", ps)
		})
		sampler.Start()
		defer func() {
			sampler.Stop()
			cli.CloseServer()
		}()
	}

	for _, n := range want {
		run, ok := exps[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
		start := time.Now()
		out, err := run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		wallSecs[n] = time.Since(start).Seconds()
		fmt.Println(out.String())
		fmt.Printf("[%s in %.1fs]\n\n", n, wallSecs[n])
	}

	if cli.WantsOutput() {
		man.Extra["experiment_wall_seconds"] = wallSecs
		if err := cli.WriteOutputs(man, r.MetricsSnapshot(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
