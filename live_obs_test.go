package turnpike

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// TestLiveCampaignServing wires the exact stack cmd/faultcampaign -serve
// uses — InjectFaults publishing into a shared registry and Progress,
// sampler feeding an obs.Server — and scrapes /metrics and /live WHILE the
// campaign is in flight. It is the acceptance test for the live
// observability layer: the exposition must parse, and the SSE stream must
// deliver at least one mid-run progress event.
func TestLiveCampaignServing(t *testing.T) {
	reg := obs.NewRegistry()
	progress := &pipeline.Progress{}

	srv := obs.NewServer(obs.ServerConfig{Snapshot: reg.Snapshot})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	sampler := pipeline.NewSampler(progress, reg, 2*time.Millisecond,
		func(ps pipeline.ProgressSample) { srv.Publish("progress", ps) })
	sampler.Start()

	// Run the campaign in the background; scrape while it runs.
	var wg sync.WaitGroup
	wg.Add(1)
	var campErr error
	go func() {
		defer wg.Done()
		_, campErr = InjectFaults("gcc", Turnpike, FaultCampaignConfig{
			Trials: 60, Seed: 3, ScalePct: 8, Metrics: reg, Progress: progress,
			Workers: 4,
		})
	}()

	// /live: collect one progress event while trials are in flight.
	liveResp, err := http.Get(base + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer liveResp.Body.Close()
	type lineRes struct {
		line string
		ok   bool
	}
	lines := make(chan lineRes, 64)
	go func() {
		sc := bufio.NewScanner(liveResp.Body)
		for sc.Scan() {
			lines <- lineRes{sc.Text(), true}
		}
		lines <- lineRes{"", false}
	}()
	var sample pipeline.ProgressSample
	gotLive := false
	deadline := time.After(30 * time.Second)
	for !gotLive {
		select {
		case l := <-lines:
			if !l.ok {
				t.Fatal("live stream closed before any progress event")
			}
			if data, found := strings.CutPrefix(l.line, "data: "); found {
				if err := json.Unmarshal([]byte(data), &sample); err != nil {
					t.Fatalf("SSE data not JSON: %q: %v", data, err)
				}
				gotLive = true
			}
		case <-deadline:
			t.Fatal("no /live event within 30s")
		}
	}

	// /metrics mid-run: must be parseable Prometheus text exposition.
	metResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	sc := bufio.NewScanner(metResp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	metResp.Body.Close()
	if metResp.Header.Get("Content-Type") != obs.PromContentType {
		t.Errorf("content type = %q", metResp.Header.Get("Content-Type"))
	}
	fams := parseProm(t, body.String())
	if len(fams) == 0 {
		t.Fatal("mid-run /metrics exposed no families")
	}

	wg.Wait()
	sampler.Stop()
	if campErr != nil {
		t.Fatal(campErr)
	}

	// The final state must reflect the whole campaign: 60 trials plus the
	// cold golden run and its warm-start baseline rerun, with live gauges
	// present in the exposition.
	if got := progress.Runs.Load(); got != 62 {
		t.Errorf("progress runs = %d, want 62 (60 trials + cold and warm golden)", got)
	}
	finalFams := parseProm(t, scrape(t, base+"/metrics"))
	if _, ok := finalFams["live_cycles"]; !ok {
		t.Error("live_cycles gauge missing from final exposition")
	}
	if finalFams["live_runs"] != 62 {
		t.Errorf("live_runs = %d, want 62", finalFams["live_runs"])
	}
	// Worker-level progress is part of the SSE/metrics contract: the
	// gauge must be exposed, and must read zero once the pool has drained.
	if v, ok := finalFams["live_workers"]; !ok {
		t.Error("live_workers gauge missing from final exposition")
	} else if v != 0 {
		t.Errorf("live_workers = %d after campaign end, want 0", v)
	}
	if sum := finalFams["fault_outcome_masked_total"] + finalFams["fault_outcome_recovered_total"]; sum != 60 {
		t.Errorf("outcome counters sum to %d, want 60", sum)
	}
}

// scrape GETs a URL and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// parseProm is a minimal strict parser for the exposition subset the
// server emits: TYPE comments plus `name value` and bucket samples. It
// returns plain (non-bucket) sample values by name and fails on any
// unrecognized line.
func parseProm(t *testing.T, text string) map[string]uint64 {
	t.Helper()
	typed := map[string]bool{}
	vals := map[string]uint64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown family type in %q", line)
			}
			typed[f[0]] = true
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad sample line %q", line)
		}
		var v uint64
		if _, err := json.Number(val).Int64(); err != nil {
			t.Fatalf("bad value in %q", line)
		}
		json.Unmarshal([]byte(val), &v) //nolint:errcheck — checked above
		if i := strings.IndexByte(name, '{'); i >= 0 {
			continue // histogram bucket; family presence checked via TYPE
		}
		vals[name] = v
	}
	if len(typed) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
	return vals
}
