// Package turnpike reproduces "Turnpike: Lightweight Soft Error Resilience
// for In-Order Cores" (Zeng, Kim, Lee, Jung — MICRO '21): a compiler/
// architecture co-design that makes acoustic-sensor-based soft error
// verification practical on small in-order cores.
//
// The package is a façade over the internal substrates:
//
//   - the compiler (region partitioning, eager checkpointing, checkpoint
//     pruning, LICM sinking, induction-variable merging, store-aware
//     register allocation, checkpoint-aware scheduling),
//   - a cycle-level 2-issue in-order pipeline simulator with the gated
//     store buffer, region boundary buffer, committed load queue, and
//     hardware coloring,
//   - the 36 synthetic benchmark kernels standing in for SPEC CPU2006/
//     2017 and SPLASH-3,
//   - fault-injection campaigns with recovery verification, and
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	res, err := turnpike.Evaluate("gcc", turnpike.Turnpike, turnpike.EvalConfig{})
//	fmt.Printf("overhead: %.1f%%\n", 100*(res.Overhead-1))
//
// See examples/ for runnable scenarios and cmd/experiments for the full
// evaluation.
package turnpike

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sensor"
	"repro/internal/workload"
)

// Scheme selects the resilience strategy.
type Scheme = core.Scheme

// Schemes.
const (
	// Baseline has no resilience support; its cycle count is the
	// denominator of every overhead number.
	Baseline = core.Baseline
	// Turnstile is the prior state of the art (MICRO'16): full store
	// quarantine, eager checkpointing, no fast release.
	Turnstile = core.Turnstile
	// Turnpike is the paper's co-design with all optimizations.
	Turnpike = core.Turnpike
)

// CompileOptions re-exports the compiler configuration.
type CompileOptions = core.Options

// SimConfig re-exports the simulator configuration.
type SimConfig = pipeline.Config

// SimStats re-exports the simulator statistics.
type SimStats = pipeline.Stats

// Program re-exports the executable program image.
type Program = isa.Program

// Func re-exports the compiler IR function type.
type Func = ir.Func

// Profile re-exports a benchmark description.
type Profile = workload.Profile

// Benchmarks lists the 36 evaluated workloads in the paper's order.
func Benchmarks() []Profile { return workload.Benchmarks() }

// BenchmarkNames lists workload names in the paper's order.
func BenchmarkNames() []string { return workload.Names() }

// Compile lowers an IR function under the given options.
func Compile(f *Func, opt CompileOptions) (*core.Compiled, error) {
	return core.Compile(f, opt)
}

// Simulate runs a compiled program on the in-order core model with the
// given memory seeder (may be nil).
func Simulate(p *Program, cfg SimConfig, seed func(*isa.Memory)) (SimStats, error) {
	s, err := pipeline.New(p, cfg)
	if err != nil {
		return SimStats{}, err
	}
	if seed != nil {
		seed(s.Mem)
	}
	return s.Run()
}

// EvalConfig parameterizes Evaluate.
type EvalConfig struct {
	// SBSize is the store buffer capacity (default 4, the Cortex-A53).
	SBSize int
	// WCDL is the sensor worst-case detection latency in cycles
	// (default 10, i.e. ~300 sensors at 2.5GHz per Fig. 18).
	WCDL int
	// ScalePct scales the benchmark trip counts (default 25).
	ScalePct int
	// CLQIdeal selects the infinite address-matching CLQ instead of the
	// paper's compact 2-entry design.
	CLQIdeal bool
}

func (c *EvalConfig) defaults() {
	if c.SBSize == 0 {
		c.SBSize = 4
	}
	if c.WCDL == 0 {
		c.WCDL = 10
	}
	if c.ScalePct == 0 {
		c.ScalePct = 25
	}
}

// EvalResult reports one benchmark/scheme evaluation.
type EvalResult struct {
	Benchmark      string
	Scheme         Scheme
	Cycles         uint64
	BaselineCycles uint64
	// Overhead is normalized execution time (cycles / baseline cycles).
	Overhead float64
	Stats    SimStats
	Compile  core.Stats
}

// Evaluate compiles and simulates one benchmark under a scheme and returns
// its overhead against the no-resilience baseline.
func Evaluate(bench string, scheme Scheme, cfg EvalConfig) (*EvalResult, error) {
	cfg.defaults()
	p, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("turnpike: unknown benchmark %q (see BenchmarkNames)", bench)
	}
	f := p.Build(cfg.ScalePct)

	var opt core.Options
	var sim pipeline.Config
	switch scheme {
	case Baseline:
		opt = core.Options{Scheme: core.Baseline, SBSize: cfg.SBSize}
		sim = pipeline.BaselineConfig(cfg.SBSize)
	case Turnstile:
		opt = core.Options{Scheme: core.Turnstile, SBSize: cfg.SBSize}
		sim = pipeline.TurnstileConfig(cfg.SBSize, cfg.WCDL)
	case Turnpike:
		opt = core.TurnpikeAll(cfg.SBSize)
		sim = pipeline.TurnpikeConfig(cfg.SBSize, cfg.WCDL)
	default:
		return nil, fmt.Errorf("turnpike: unknown scheme %v", scheme)
	}
	if cfg.CLQIdeal {
		sim.CLQ = pipeline.CLQIdeal
	}

	compiled, err := core.Compile(f, opt)
	if err != nil {
		return nil, err
	}
	st, err := Simulate(compiled.Prog, sim, p.SeedMemory)
	if err != nil {
		return nil, err
	}

	baseOpt := core.Options{Scheme: core.Baseline, SBSize: cfg.SBSize}
	baseProg, err := core.Compile(f, baseOpt)
	if err != nil {
		return nil, err
	}
	baseStats, err := Simulate(baseProg.Prog, pipeline.BaselineConfig(cfg.SBSize), p.SeedMemory)
	if err != nil {
		return nil, err
	}

	return &EvalResult{
		Benchmark:      bench,
		Scheme:         scheme,
		Cycles:         st.Cycles,
		BaselineCycles: baseStats.Cycles,
		Overhead:       float64(st.Cycles) / float64(baseStats.Cycles),
		Stats:          st,
		Compile:        compiled.Stats,
	}, nil
}

// FaultCampaignConfig parameterizes InjectFaults.
type FaultCampaignConfig struct {
	Trials   int // default 100
	Seed     int64
	SBSize   int // default 4
	WCDL     int // default 10
	ScalePct int // default 10
	// Metrics, when non-nil, receives the campaign's observability:
	// outcome counters, detection-latency and recovery-cycle histograms,
	// and the merged per-trial simulator statistics.
	Metrics *obs.Registry
	// Progress, when non-nil, is attached to every trial's simulator so a
	// pipeline.Sampler can stream live campaign figures (cmd/faultcampaign
	// -serve).
	Progress *pipeline.Progress
	// Workers bounds the campaign's trial worker pool; <=0 uses
	// GOMAXPROCS. The merged result is identical for every worker count.
	Workers int
	// Lease is the number of consecutive trials one dispatch hands a
	// worker; <=0 picks an automatic batch from Trials and Workers. Any
	// lease size produces byte-identical results. See fault.Config.Lease.
	Lease int
	// FailureBudget caps recorded SDC/crash trials before the campaign
	// aborts: 0 fails fast on the first failure, a negative budget
	// records every failure without aborting. See fault.Config.
	FailureBudget int
	// Checkpoint, when non-empty, checkpoints completed trials to this
	// file so an interrupted campaign resumes from its watermark.
	Checkpoint string
	// CheckpointEvery is the completed-trial cadence between checkpoint
	// rewrites (default 64); campaign services lower it so a drained or
	// killed job loses at most a few trials. See fault.Config.
	CheckpointEvery int
	// Warnf, when non-nil, receives non-fatal campaign warnings (today: a
	// corrupt checkpoint file being discarded for a fresh run). The
	// legacy printf hook; prefer Logger.
	Warnf func(format string, args ...any)
	// Logger, when non-nil, receives the campaign's structured log —
	// lifecycle events, per-trial Debug records, and the simulator's
	// rare events — stamped with the caller context's correlation chain.
	// See fault.Config.Logger.
	Logger *slog.Logger
	// Adversary, when non-nil, switches the campaign to the
	// imperfect-mesh fault model: dead sensors, detections beyond the
	// WCDL, fault bursts, and false positives. See fault.Adversary.
	Adversary *FaultAdversary
	// Containment, when non-nil, overrides the simulator's containment
	// policy (on by default for resilient configs): a detection arriving
	// after its region verified aborts as a DUE instead of running on
	// corrupted state. Turning it off is the unsafe operating point used
	// to demonstrate SDC under an imperfect mesh.
	Containment *bool
}

// FaultResult re-exports the campaign outcome.
type FaultResult = fault.Result

// FaultInjection re-exports one trial's injection plan — the replay unit
// recorded in FaultResult.Failures and campaign checkpoint files.
type FaultInjection = fault.Injection

// FaultAdversary re-exports the imperfect-mesh fault model knobs.
type FaultAdversary = fault.Adversary

// campaignSetup compiles bench for scheme and returns the program, the
// simulator config, and the memory seeder a campaign (or replay) needs.
func campaignSetup(bench string, scheme Scheme, cfg *FaultCampaignConfig) (*Program, pipeline.Config, func(*isa.Memory), error) {
	if scheme == Baseline {
		return nil, pipeline.Config{}, nil, fmt.Errorf("turnpike: the baseline has no detection or recovery to campaign against")
	}
	if cfg.Trials == 0 {
		cfg.Trials = 100
	}
	if cfg.SBSize == 0 {
		cfg.SBSize = 4
	}
	if cfg.WCDL == 0 {
		cfg.WCDL = 10
	}
	if cfg.ScalePct == 0 {
		cfg.ScalePct = 10
	}
	p, ok := workload.ByName(bench)
	if !ok {
		return nil, pipeline.Config{}, nil, fmt.Errorf("turnpike: unknown benchmark %q", bench)
	}
	f := p.Build(cfg.ScalePct)
	opt := core.Options{Scheme: core.Turnstile, SBSize: cfg.SBSize}
	sim := pipeline.TurnstileConfig(cfg.SBSize, cfg.WCDL)
	if scheme == Turnpike {
		opt = core.TurnpikeAll(cfg.SBSize)
		sim = pipeline.TurnpikeConfig(cfg.SBSize, cfg.WCDL)
	}
	if cfg.Containment != nil {
		sim.Containment = *cfg.Containment
	}
	compiled, err := core.Compile(f, opt)
	if err != nil {
		return nil, pipeline.Config{}, nil, err
	}
	return compiled.Prog, sim, p.SeedMemory, nil
}

// InjectFaults runs a single-bit-flip campaign against a benchmark under
// the given scheme (Turnstile or Turnpike) and verifies that every outcome
// is SDC-free — the paper's core guarantee.
func InjectFaults(bench string, scheme Scheme, cfg FaultCampaignConfig) (*FaultResult, error) {
	return InjectFaultsContext(context.Background(), bench, scheme, cfg)
}

// InjectFaultsContext is InjectFaults with cancellation: a cancelled ctx
// stops the campaign's outstanding trials, writes a final checkpoint (when
// configured), and returns the merged partial result alongside the error.
func InjectFaultsContext(ctx context.Context, bench string, scheme Scheme, cfg FaultCampaignConfig) (*FaultResult, error) {
	p, err := PrepareFaultCampaign(ctx, bench, scheme, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// PreparedFaultCampaign re-exports the two-phase campaign handle: the
// golden run is executed and snapshotted, per-worker simulators are
// forked, and Run executes only the trial phase. cmd/bench uses the
// split to meter trial throughput without the serial setup.
type PreparedFaultCampaign = fault.Prepared

// PrepareFaultCampaign runs a campaign's serial phases (compile, golden
// run, golden-state snapshot, worker priming) and returns the campaign
// ready to Run. InjectFaultsContext is Prepare followed by Run.
func PrepareFaultCampaign(ctx context.Context, bench string, scheme Scheme, cfg FaultCampaignConfig) (*PreparedFaultCampaign, error) {
	prog, sim, seedMem, err := campaignSetup(bench, scheme, &cfg)
	if err != nil {
		return nil, err
	}
	return fault.Prepare(ctx, prog, fault.Config{
		Trials:          cfg.Trials,
		Seed:            cfg.Seed,
		Sim:             sim,
		Metrics:         cfg.Metrics,
		Progress:        cfg.Progress,
		Workers:         cfg.Workers,
		Lease:           cfg.Lease,
		FailureBudget:   cfg.FailureBudget,
		Checkpoint:      cfg.Checkpoint,
		CheckpointEvery: cfg.CheckpointEvery,
		Adversary:       cfg.Adversary,
		Warnf:           cfg.Warnf,
		Logger:          cfg.Logger,
	}, seedMem)
}

// PrepareCompiledFaultCampaign is PrepareFaultCampaign for an
// already-compiled resilient image instead of a named benchmark — the
// campaign path for front-door submissions served from the artifact
// cache. The program must self-initialize its memory: unlike the
// built-in benchmarks, a submitted program has no memory seeder, so the
// golden run (and every trial) starts from zeroed memory exactly as the
// admission interpreter did. cfg.SBSize must match the size the image
// was compiled for (the caller knows it from the artifact entry).
func PrepareCompiledFaultCampaign(ctx context.Context, prog *Program, scheme Scheme, cfg FaultCampaignConfig) (*PreparedFaultCampaign, error) {
	if scheme == Baseline {
		return nil, fmt.Errorf("turnpike: the baseline has no detection or recovery to campaign against")
	}
	if prog == nil {
		return nil, fmt.Errorf("turnpike: no program to campaign against")
	}
	if cfg.Trials == 0 {
		cfg.Trials = 100
	}
	if cfg.SBSize == 0 {
		cfg.SBSize = 4
	}
	if cfg.WCDL == 0 {
		cfg.WCDL = 10
	}
	sim := pipeline.TurnstileConfig(cfg.SBSize, cfg.WCDL)
	if scheme == Turnpike {
		sim = pipeline.TurnpikeConfig(cfg.SBSize, cfg.WCDL)
	}
	if cfg.Containment != nil {
		sim.Containment = *cfg.Containment
	}
	return fault.Prepare(ctx, prog, fault.Config{
		Trials:          cfg.Trials,
		Seed:            cfg.Seed,
		Sim:             sim,
		Metrics:         cfg.Metrics,
		Progress:        cfg.Progress,
		Workers:         cfg.Workers,
		Lease:           cfg.Lease,
		FailureBudget:   cfg.FailureBudget,
		Checkpoint:      cfg.Checkpoint,
		CheckpointEvery: cfg.CheckpointEvery,
		Adversary:       cfg.Adversary,
		Warnf:           cfg.Warnf,
		Logger:          cfg.Logger,
	}, nil)
}

// ReplayFault re-executes one recorded injection from a campaign's
// failure report against a freshly compiled benchmark and returns its
// classification — the debugging half of the campaign engine's replayable
// failure reports.
func ReplayFault(bench string, scheme Scheme, cfg FaultCampaignConfig, inj FaultInjection) (fault.Outcome, SimStats, error) {
	prog, sim, seedMem, err := campaignSetup(bench, scheme, &cfg)
	if err != nil {
		return fault.Crash, SimStats{}, err
	}
	return fault.Replay(prog, fault.Config{Sim: sim}, seedMem, inj)
}

// WCDLForSensors returns the worst-case detection latency of a sensor mesh
// (Fig. 18's model).
func WCDLForSensors(sensors int, dieAreaMM2, clockGHz float64) (int, error) {
	m := sensor.Model{Sensors: sensors, DieAreaMM2: dieAreaMM2, ClockGHz: clockGHz}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return m.WCDL(), nil
}

// NewExperimentRunner returns the harness used to regenerate the paper's
// tables and figures; see the internal/experiment package's FigNN
// functions via cmd/experiments for the full set.
func NewExperimentRunner(scalePct int) *experiment.Runner {
	return experiment.NewRunner(scalePct)
}

// SaveProgram serializes a compiled program to w in the versioned binary
// artifact format (see isa.ReadProgram / Program.WriteTo).
func SaveProgram(p *Program, w io.Writer) error {
	_, err := p.WriteTo(w)
	return err
}

// LoadProgram deserializes a compiled program and validates it.
func LoadProgram(r io.Reader) (*Program, error) { return isa.ReadProgram(r) }

// VerifyArtifact audits a compiled resilient binary with the independent
// static checker: recovery-block coverage and self-containment, region
// numbering, and the store budget (counting checkpoints unless the target
// core has hardware coloring). Use it before trusting recovery metadata
// from a cached or third-party artifact.
func VerifyArtifact(p *Program, storeBudget int, coloredCkpts bool) error {
	return core.VerifyResilience(p, storeBudget, !coloredCkpts)
}
