package turnpike

// Ablation benchmarks for the design choices DESIGN.md calls out: CLQ
// sizing, the colored-checkpoint store-budget exclusion, RBB capacity, and
// the per-run dynamic energy estimate. These complement the per-figure
// benchmarks in bench_test.go: each isolates one knob and reports both
// settings as metrics so a regression in either direction is visible.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/hwcost"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func mustOverhead(b *testing.B, r *experiment.Runner, bench string, opt core.Options, cfg pipeline.Config) float64 {
	b.Helper()
	o, err := r.Overhead(bench, opt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkAblationCLQSize sweeps the compact CLQ through 1/2/4/8 entries.
// The paper fixes 2; the sweep shows why (1 starves overlap, >2 buys
// nothing — Fig. 24's occupancy explains it).
func BenchmarkAblationCLQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		opt := core.TurnpikeAll(4)
		for _, size := range []int{1, 2, 4, 8} {
			cfg := pipeline.TurnpikeConfig(4, 10)
			cfg.CLQSize = size
			var sum float64
			benches := []string{"gcc", "lbm", "radix", "fft", "exchange2"}
			for _, w := range benches {
				sum += mustOverhead(b, r, w, opt, cfg)
			}
			b.ReportMetric(sum/float64(len(benches)), "geo-clq"+itoa(size))
		}
	}
}

// BenchmarkAblationColoredBudget compares Turnpike compiled with colored
// checkpoints excluded from the region store budget (the shipping design)
// against counting them — the region-collapse feedback DESIGN.md §decision
// 7 describes.
func BenchmarkAblationColoredBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		cfg := pipeline.TurnpikeConfig(4, 10)
		excl := core.TurnpikeAll(4)
		counted := excl
		counted.ColoredCkpts = false
		var oExcl, oCnt float64
		benches := []string{"gcc", "lbm", "radix", "exchange2"}
		for _, w := range benches {
			oExcl += mustOverhead(b, r, w, excl, cfg)
			oCnt += mustOverhead(b, r, w, counted, cfg)
		}
		n := float64(len(benches))
		b.ReportMetric(oExcl/n, "excluded")
		b.ReportMetric(oCnt/n, "counted")
	}
}

// BenchmarkAblationRBBSize checks that the region boundary buffer at its
// default 16 entries never throttles, by comparing against a tight 4-entry
// configuration under the longest WCDL.
func BenchmarkAblationRBBSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		opt := core.TurnpikeAll(4)
		for _, size := range []int{4, 16} {
			cfg := pipeline.TurnpikeConfig(4, 50)
			cfg.RBBSize = size
			var sum float64
			benches := []string{"gcc", "lbm", "fft"}
			for _, w := range benches {
				sum += mustOverhead(b, r, w, opt, cfg)
			}
			b.ReportMetric(sum/float64(len(benches)), "rbb"+itoa(size))
		}
	}
}

// BenchmarkAblationEnergy reports the estimated dynamic-energy overhead of
// the co-design structures per scheme, extending Table 1 to per-run
// numbers (internal/hwcost's RunEnergy).
func BenchmarkAblationEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hwcost.Default22nm()
		p, _ := workload.ByName("gcc")
		f := p.Build(benchScale)
		run := func(opt core.Options, cfg pipeline.Config) pipeline.Stats {
			c, err := core.Compile(f, opt)
			if err != nil {
				b.Fatal(err)
			}
			s, err := pipeline.New(c.Prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			p.SeedMemory(s.Mem)
			st, err := s.Run()
			if err != nil {
				b.Fatal(err)
			}
			return st
		}
		base := run(core.Options{Scheme: core.Baseline, SBSize: 4}, pipeline.BaselineConfig(4))
		ts := run(core.Options{Scheme: core.Turnstile, SBSize: 4}, pipeline.TurnstileConfig(4, 10))
		tp := run(core.TurnpikeAll(4), pipeline.TurnpikeConfig(4, 10))
		b.ReportMetric(100*hwcost.OverheadVsBaseline(m, 4, 2, ts, base), "ts-energy%")
		b.ReportMetric(100*hwcost.OverheadVsBaseline(m, 4, 2, tp, base), "tp-energy%")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationIssueWidth compares single- against dual-issue cores:
// Turnpike's surviving checkpoint stores ride in otherwise-empty second
// issue slots, so its relative overhead grows when the core narrows —
// quantifying how much of the "checkpoints are nearly free" story the
// second slot carries.
func BenchmarkAblationIssueWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner(benchScale)
		opt := core.TurnpikeAll(4)
		for _, width := range []int{1, 2} {
			cfg := pipeline.TurnpikeConfig(4, 10)
			cfg.IssueWidth = width
			var sum float64
			benches := []string{"gcc", "lbm", "exchange2", "fft"}
			for _, w := range benches {
				// The baseline must narrow too: Overhead() builds its own
				// baseline config, so compute the ratio manually.
				bcfg := pipeline.BaselineConfig(4)
				bcfg.IssueWidth = width
				base, err := r.Run(w, core.Options{Scheme: core.Baseline, SBSize: 4}, bcfg)
				if err != nil {
					b.Fatal(err)
				}
				st, err := r.Run(w, opt, cfg)
				if err != nil {
					b.Fatal(err)
				}
				sum += float64(st.Cycles) / float64(base.Cycles)
			}
			b.ReportMetric(sum/4, "width"+itoa(width))
		}
	}
}
