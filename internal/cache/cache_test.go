package cache

import "testing"

func TestGeometryValidation(t *testing.T) {
	if _, err := New(Config{Name: "bad", SizeBytes: 0, Assoc: 2}); err == nil {
		t.Fatal("accepted zero size")
	}
	if _, err := New(Config{Name: "bad", SizeBytes: 1 << 10, Assoc: 3, HitLatency: 1}); err == nil {
		t.Fatal("accepted non-dividing associativity")
	}
	if _, err := New(Config{Name: "ok", SizeBytes: 32 << 10, Assoc: 2, HitLatency: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(Config{Name: "c", SizeBytes: 4 << 10, Assoc: 2, HitLatency: 2})
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1008) {
		t.Fatal("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways x 64B = 256B cache; lines mapping to set 0 are
	// multiples of 128.
	c := MustNew(Config{Name: "t", SizeBytes: 256, Assoc: 2, HitLatency: 1})
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("a evicted despite MRU")
	}
	if c.Contains(b) {
		t.Fatal("b not evicted")
	}
	if !c.Contains(d) {
		t.Fatal("d not installed")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	// Cold: L1 miss + L2 miss -> full memory latency.
	lat := h.DataAccess(0x4000)
	want := h.L1D.HitLatency() + h.L2.HitLatency() + h.MemLatency
	if lat != want {
		t.Fatalf("cold access latency %d, want %d", lat, want)
	}
	// Warm: L1 hit.
	if lat := h.DataAccess(0x4000); lat != h.L1D.HitLatency() {
		t.Fatalf("warm access latency %d, want %d", lat, h.L1D.HitLatency())
	}
}

func TestHierarchyL2Backfill(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.DataAccess(0x8000) // install in L1D and L2
	// Thrash L1D set while keeping L2 resident: touch many addresses
	// mapping to the same L1 set (L1D is 64KB 2-way -> 512 sets, stride
	// 512*64 = 32KB).
	for i := uint64(1); i <= 4; i++ {
		h.DataAccess(0x8000 + i*32768)
	}
	lat := h.DataAccess(0x8000)
	want := h.L1D.HitLatency() + h.L2.HitLatency()
	if lat != want {
		t.Fatalf("L2 hit latency %d, want %d", lat, want)
	}
}

func TestInstAccessHidesHits(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	if lat := h.InstAccess(0); lat == 0 {
		t.Fatal("cold fetch free")
	}
	if lat := h.InstAccess(4); lat != 0 {
		t.Fatalf("warm fetch cost %d", lat)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Config{Name: "r", SizeBytes: 4 << 10, Assoc: 2, HitLatency: 1})
	c.Access(0x100)
	c.Reset()
	if c.Contains(0x100) || c.Hits != 0 || c.Misses != 0 {
		t.Fatal("reset incomplete")
	}
}
