// Package cache models a set-associative cache hierarchy with LRU
// replacement, mirroring the paper's gem5 configuration for an ARM
// Cortex-A53-class core: 32KB/64KB 2-way L1 I/D caches with a 2-cycle hit,
// a unified 128KB 16-way L2 with a 20-cycle hit, and main memory behind it.
// Only timing is modeled here (data lives in the simulator's functional
// memory); the hierarchy returns access latencies and records statistics.
package cache

import (
	"fmt"

	"repro/internal/obs"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	HitLatency int // cycles, charged on hit at this level
}

// Cache is one set-associative level with LRU replacement.
type Cache struct {
	cfg   Config
	sets  int
	tags  [][]uint64 // [set][way], tag values; 0 means empty (tag 0 offset by +1)
	lru   [][]uint64 // [set][way], last-touch stamps
	stamp uint64

	Hits   uint64
	Misses uint64
}

// New builds a cache from cfg, validating the geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache %s: invalid geometry %d/%d", cfg.Name, cfg.SizeBytes, cfg.Assoc)
	}
	lines := cfg.SizeBytes / LineSize
	if lines%cfg.Assoc != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by assoc %d", cfg.Name, lines, cfg.Assoc)
	}
	sets := lines / cfg.Assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Assoc)
		c.lru[i] = make([]uint64, cfg.Assoc)
	}
	return c, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr / LineSize
	return int(line) & (c.sets - 1), line/uint64(c.sets) + 1 // +1 so 0 = empty
}

// Access touches addr, returning whether it hit and installing the line on
// miss (allocate-on-miss for both reads and writes).
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	c.stamp++
	ways := c.tags[set]
	for w, t := range ways {
		if t == tag {
			c.lru[set][w] = c.stamp
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Install into LRU way.
	victim := 0
	for w := 1; w < len(ways); w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	ways[victim] = tag
	c.lru[set][victim] = c.stamp
	return false
}

// Contains reports whether addr's line is resident, without touching LRU.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, t := range c.tags[set] {
		if t == tag {
			return true
		}
	}
	return false
}

// HitLatency returns this level's hit latency.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for s := range c.tags {
		for w := range c.tags[s] {
			c.tags[s][w] = 0
			c.lru[s][w] = 0
		}
	}
	c.stamp, c.Hits, c.Misses = 0, 0, 0
}

// levelImage is one cache level's captured replacement state, flattened
// to [set*assoc] so a snapshot is two copies, not thousands of slices.
type levelImage struct {
	tags, lru []uint64
	stamp     uint64
}

func (c *Cache) snapshotInto(img *levelImage) {
	n := c.sets * c.cfg.Assoc
	if cap(img.tags) < n {
		img.tags = make([]uint64, n)
		img.lru = make([]uint64, n)
	}
	img.tags = img.tags[:n]
	img.lru = img.lru[:n]
	for s := range c.tags {
		copy(img.tags[s*c.cfg.Assoc:], c.tags[s])
		copy(img.lru[s*c.cfg.Assoc:], c.lru[s])
	}
	img.stamp = c.stamp
}

// restoreFrom primes the level's contents from img and zeroes the
// hit/miss counters; img must come from a level with the same geometry.
func (c *Cache) restoreFrom(img *levelImage) {
	for s := range c.tags {
		copy(c.tags[s], img.tags[s*c.cfg.Assoc:(s+1)*c.cfg.Assoc])
		copy(c.lru[s], img.lru[s*c.cfg.Assoc:(s+1)*c.cfg.Assoc])
	}
	c.stamp = img.stamp
	c.Hits, c.Misses = 0, 0
}

// Image is a reusable snapshot of a hierarchy's full replacement state
// (tags, LRU stamps, clock). Fault campaigns capture the golden run's
// warmed hierarchy once and restore every trial's simulator from it —
// after the first Snapshot into an Image, both directions are
// allocation-free.
type Image struct {
	l1i, l1d, l2 levelImage
}

// Snapshot captures the hierarchy's replacement state into img.
func (h *Hierarchy) Snapshot(img *Image) {
	h.L1I.snapshotInto(&img.l1i)
	h.L1D.snapshotInto(&img.l1d)
	h.L2.snapshotInto(&img.l2)
}

// Restore primes the hierarchy from img and zeroes the per-level
// hit/miss counters, so a restored simulator's statistics count only
// its own run. img must come from a hierarchy with the same geometry.
func (h *Hierarchy) Restore(img *Image) {
	h.L1I.restoreFrom(&img.l1i)
	h.L1D.restoreFrom(&img.l1d)
	h.L2.restoreFrom(&img.l2)
}

// Hierarchy is the two-level hierarchy with a flat memory behind it.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	// MemLatency is the main-memory access latency in cycles.
	MemLatency int
}

// HierarchyConfig sizes a hierarchy; DefaultHierarchy gives the paper's.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// DefaultHierarchyConfig is the paper's §6.1 gem5 configuration.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "l1i", SizeBytes: 32 << 10, Assoc: 2, HitLatency: 2},
		L1D:        Config{Name: "l1d", SizeBytes: 64 << 10, Assoc: 2, HitLatency: 2},
		L2:         Config{Name: "l2", SizeBytes: 128 << 10, Assoc: 16, HitLatency: 20},
		MemLatency: 100,
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.MemLatency <= 0 {
		return nil, fmt.Errorf("cache: memory latency %d <= 0", cfg.MemLatency)
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, MemLatency: cfg.MemLatency}, nil
}

// MustNewHierarchy panics on config errors; for static configurations.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// DataAccess returns the latency of a data access to addr, updating L1D/L2
// state. Writes allocate like reads (write-allocate, write-back timing is
// folded into the store-buffer model).
func (h *Hierarchy) DataAccess(addr uint64) int {
	if h.L1D.Access(addr) {
		return h.L1D.HitLatency()
	}
	if h.L2.Access(addr) {
		return h.L1D.HitLatency() + h.L2.HitLatency()
	}
	return h.L1D.HitLatency() + h.L2.HitLatency() + h.MemLatency
}

// InstAccess returns the latency of an instruction fetch from addr.
func (h *Hierarchy) InstAccess(addr uint64) int {
	if h.L1I.Access(addr) {
		return 0 // fetch hit is hidden by the pipeline
	}
	if h.L2.Access(addr) {
		return h.L2.HitLatency()
	}
	return h.L2.HitLatency() + h.MemLatency
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}

// FillRegistry exports per-level hit/miss counters and hit rates into reg
// under "cache.<level>.*". Values add on repeat calls; use a fresh
// registry per run.
func (h *Hierarchy) FillRegistry(reg *obs.Registry) {
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2} {
		c.FillRegistry(reg)
	}
}

// FillRegistry exports this level's hit/miss counters into reg.
func (c *Cache) FillRegistry(reg *obs.Registry) {
	name := c.cfg.Name
	if name == "" {
		name = "cache"
	}
	reg.Counter("cache." + name + ".hits").Add(c.Hits)
	reg.Counter("cache." + name + ".misses").Add(c.Misses)
}
