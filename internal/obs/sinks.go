package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Sinks are safe for concurrent emitters: campaign shard workers emit
// wall-clock spans from multiple goroutines into one sink, so Emit and
// Close serialize on a per-sink mutex (one line / one buffered event at
// a time; the underlying writer sees no interleaving).

// JSONLSink writes one JSON object per event per line — the streaming
// format for programmatic consumers (round-trips through encoding/json).
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(ev)
}

// Close is a no-op (the caller owns the writer).
func (s *JSONLSink) Close() error { return nil }

// TextSink writes human-readable lines, for quick eyeballing and tests.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink wraps w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes one aligned text line.
func (s *TextSink) Emit(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var args string
	if len(ev.Args) > 0 {
		parts := make([]string, 0, len(ev.Args))
		for _, k := range sortedKeys(ev.Args) {
			parts = append(parts, fmt.Sprintf("%s=%v", k, ev.Args[k]))
		}
		args = " {" + strings.Join(parts, " ") + "}"
	}
	if ev.Kind == KindSpan {
		_, err := fmt.Fprintf(s.w, "@%-10d +%-8d %-10s %-12s %s%s\n",
			ev.Start, ev.Dur, ev.Track, ev.Cat, ev.Name, args)
		return err
	}
	_, err := fmt.Fprintf(s.w, "@%-10d %-9s %-10s %-12s %s%s\n",
		ev.Start, "·", ev.Track, ev.Cat, ev.Name, args)
	return err
}

// Close is a no-op.
func (s *TextSink) Close() error { return nil }

// ChromeSink buffers events and, on Close, writes Chrome trace-event JSON
// ({"traceEvents": [...]}) that loads in Perfetto and chrome://tracing.
// Simulated cycles map 1:1 to trace microseconds; tracks map to threads of
// a single process, named via thread_name metadata.
type ChromeSink struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
	tids   map[string]int
	order  []string
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeSink wraps w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: w, tids: map[string]int{}}
}

func (s *ChromeSink) tid(track string) int {
	if id, ok := s.tids[track]; ok {
		return id
	}
	id := len(s.tids)
	s.tids[track] = id
	s.order = append(s.order, track)
	return id
}

// Emit buffers one event.
func (s *ChromeSink) Emit(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := ev.Name
	if name == "" {
		name = "(unnamed)"
	}
	ce := chromeEvent{
		Name: name,
		Cat:  ev.Cat,
		TS:   ev.Start,
		PID:  1,
		TID:  s.tid(ev.Track),
		Args: ev.Args,
	}
	if ev.Kind == KindSpan {
		ce.Ph = "X"
		dur := ev.Dur
		if dur == 0 {
			dur = 1 // Perfetto hides true zero-width slices
		}
		ce.Dur = &dur
	} else {
		ce.Ph = "i"
		ce.S = "t"
	}
	s.events = append(s.events, ce)
	return nil
}

// Close writes the buffered trace as one JSON document.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]chromeEvent, 0, len(s.events)+len(s.order))
	// thread_name metadata gives each track a labeled lane; sort_index
	// keeps lane order stable across loads.
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	for _, track := range names {
		label := track
		if label == "" {
			label = "(unnamed)"
		}
		all = append(all, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: s.tids[track],
			Args: map[string]any{"name": label},
		})
	}
	all = append(all, s.events...)
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		Comment         string        `json:"otherData,omitempty"`
	}{TraceEvents: all, DisplayTimeUnit: "ns", Comment: "timestamps are simulated cycles"}
	enc := json.NewEncoder(s.w)
	return enc.Encode(doc)
}

// SinkForPath picks a sink format from the file extension: .jsonl is
// line-delimited JSON, .txt/.text is human-readable, anything else
// (typically .json) is Chrome trace-event JSON for Perfetto.
func SinkForPath(w io.Writer, path string) Sink {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl":
		return NewJSONLSink(w)
	case ".txt", ".text":
		return NewTextSink(w)
	default:
		return NewChromeSink(w)
	}
}
