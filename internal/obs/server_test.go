package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T, cfg ServerConfig) string {
	t.Helper()
	srv := NewServer(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + addr.String()
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.insts").Add(42)
	reg.Gauge("live.sb_occupancy").Set(2)
	reg.Histogram("sim.recovery_cycles", []uint64{10, 100}).Observe(33)
	base := startTestServer(t, ServerConfig{Snapshot: reg.Snapshot})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, string(body))
	if fams["sim_insts_total"].samples[""] != 42 {
		t.Errorf("sim_insts_total = %+v", fams["sim_insts_total"])
	}
	if fams["live_sb_occupancy"].samples[""] != 2 {
		t.Errorf("live_sb_occupancy = %+v", fams["live_sb_occupancy"])
	}
	if fams["sim_recovery_cycles"].count != 1 || fams["sim_recovery_cycles"].sum != 33 {
		t.Errorf("sim_recovery_cycles = %+v", fams["sim_recovery_cycles"])
	}
}

func TestServerSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Add(5)
	base := startTestServer(t, ServerConfig{Snapshot: reg.Snapshot})

	resp, err := http.Get(base + "/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := ReadSnapshot(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a.b"] != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestServerRunsIndex(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("experiments")
	m.Workloads = []string{"gcc"}
	m.Finish(Snapshot{})
	if err := m.WriteFile(filepath.Join(dir, "run1.json")); err != nil {
		t.Fatal(err)
	}
	// Distractors: non-manifest JSON and a torn file must be skipped.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte(`{"x":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), []byte(`{"tool":"x","sta`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := startTestServer(t, ServerConfig{RunsDir: dir})

	resp, err := http.Get(base + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var runs []RunInfo
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %+v, want exactly the one real manifest", runs)
	}
	if runs[0].Tool != "experiments" || runs[0].File != "run1.json" || !runs[0].HasMetrics {
		t.Fatalf("run index entry = %+v", runs[0])
	}
}

func TestServerLiveStream(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer(ServerConfig{Snapshot: reg.Snapshot})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Publish until the subscriber is registered and sees a frame.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				srv.Publish("progress", map[string]any{"cycles": 123, "ipc": 0.8})
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer close(done)

	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	var event, data string
	for data == "" {
		lineCh := make(chan bool, 1)
		go func() { lineCh <- sc.Scan() }()
		select {
		case ok := <-lineCh:
			if !ok {
				t.Fatalf("stream ended early: %v", sc.Err())
			}
		case <-deadline:
			t.Fatal("no SSE frame within 5s")
		}
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
		}
		if v, ok := strings.CutPrefix(line, "data: "); ok {
			data = v
		}
	}
	if event != "progress" {
		t.Errorf("event = %q, want progress", event)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(data), &payload); err != nil {
		t.Fatalf("data not JSON: %q: %v", data, err)
	}
	if payload["cycles"].(float64) != 123 {
		t.Errorf("payload = %v", payload)
	}
}

// TestShutdownDisconnectsLiveSubscribers is the graceful-lifecycle
// regression test: an open /live stream must not wedge Shutdown (SSE
// handlers never finish on their own — the server has to close their
// channels first), and the client's stream must end rather than block a
// writer goroutine forever.
func TestShutdownDisconnectsLiveSubscribers(t *testing.T) {
	srv := NewServer(ServerConfig{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr.String() + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait for the subscription to register so Shutdown has a live
	// subscriber to disconnect (the handler writes its banner first).
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	streamDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, br)
		streamDone <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(6 * time.Second):
		t.Fatal("Shutdown wedged behind an open /live stream")
	}
	select {
	case <-streamDone:
		// EOF or a reset — either way the subscriber was disconnected.
	case <-time.After(5 * time.Second):
		t.Fatal("client /live stream still open after Shutdown")
	}
}

// TestLiveSubscribeAfterCloseReturns covers the race the closed flag
// exists for: a /live request landing after Close must get a closed
// channel and return immediately, not park a handler goroutine on a
// subscription nobody will ever signal.
func TestLiveSubscribeAfterCloseReturns(t *testing.T) {
	srv := NewServer(ServerConfig{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The listener is gone; drive the handler directly through the mux,
	// as an embedding server (the daemon's) would.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/live", nil)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		srv.Handler().ServeHTTP(rec, req)
	}()
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("/live handler blocked after Close — leaked writer goroutine")
	}
	if !strings.Contains(rec.Body.String(), "turnpike live stream") {
		t.Fatalf("banner missing from post-Close /live response: %q", rec.Body.String())
	}
}

// TestServerHandleMountsExtraRoutes: the daemon mounts its job API next
// to the observability endpoints via Handle/HandleFunc.
func TestServerHandleMountsExtraRoutes(t *testing.T) {
	srv := NewServer(ServerConfig{})
	srv.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	// The catch-all index still serves alongside the method pattern.
	resp, err = http.Get("http://" + addr.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ status = %d after extra routes", resp.StatusCode)
	}
}

func TestServerIndexAndPprof(t *testing.T) {
	base := startTestServer(t, ServerConfig{})
	for _, path := range []string{"/", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s body empty", path)
		}
	}
	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", resp.StatusCode)
	}
}
