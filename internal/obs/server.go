package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Server is the embeddable live-observability endpoint the command-line
// tools expose behind their -serve flag. While a simulation or campaign is
// in flight it serves:
//
//	/metrics        current Snapshot in Prometheus text exposition
//	/snapshot.json  current Snapshot as JSON (same payload the tools write)
//	/runs           index of the on-disk run manifests in RunsDir
//	/live           server-sent-event stream of progress samples (Publish)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// The Snapshot provider is called on every scrape, so it must be safe to
// call concurrently with the run (Registry.Snapshot is).
type Server struct {
	cfg  ServerConfig
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	mu     sync.Mutex
	subs   map[chan liveFrame]struct{}
	seq    uint64
	closed bool
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Snapshot provides the current metric state; nil serves empty
	// snapshots.
	Snapshot func() Snapshot
	// RunsDir is scanned for *.json run manifests by /runs. Empty means
	// the current directory.
	RunsDir string
	// Instrument, when non-nil, wraps every route (built-in and
	// Handle-registered, except /debug/pprof/*) with per-route RED
	// metrics in this registry: http.requests.<route>,
	// http.errors.<route>, http.request_duration_us.<route>.
	Instrument *Registry
}

// liveFrame is one queued SSE frame.
type liveFrame struct {
	event string
	data  []byte
}

// NewServer builds a server; call Start (own listener) or mount Handler.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Snapshot == nil {
		cfg.Snapshot = func() Snapshot { return Snapshot{} }
	}
	if cfg.RunsDir == "" {
		cfg.RunsDir = "."
	}
	s := &Server{cfg: cfg, subs: map[chan liveFrame]struct{}{}}
	s.mux = http.NewServeMux()
	s.Handle("/", http.HandlerFunc(s.handleIndex))
	s.Handle("/metrics", http.HandlerFunc(s.handleMetrics))
	s.Handle("/snapshot.json", http.HandlerFunc(s.handleSnapshot))
	s.Handle("/runs", http.HandlerFunc(s.handleRuns))
	s.Handle("/live", http.HandlerFunc(s.handleLive))
	// pprof stays uninstrumented: profiling requests should not skew the
	// RED metrics they are used to investigate.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's route table for mounting in another server.
func (s *Server) Handler() http.Handler { return s.mux }

// Handle registers an additional route on the server's mux — the hook the
// campaign service daemon uses to mount its job API next to /metrics and
// /live. Register before Start; the pattern syntax is net/http's
// (method-and-wildcard patterns included). With cfg.Instrument set the
// route is wrapped in RED metrics, labeled by its pattern — the wrap
// happens here, at registration time, because the stdlib in go.mod's
// declared version does not expose the matched pattern on the request.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, Instrument(s.cfg.Instrument, RouteLabel(pattern), h))
}

// HandleFunc is Handle for a plain handler function.
func (s *Server) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	s.Handle(pattern, http.HandlerFunc(h))
}

// Start listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address, which differs from
// addr when port 0 asked the kernel to pick one.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	go s.http.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on Close
	return ln.Addr(), nil
}

// Close stops the listener immediately and disconnects every /live
// subscriber. In-flight non-streaming requests are aborted; use Shutdown
// for a graceful stop.
func (s *Server) Close() error {
	s.disconnectSubscribers()
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

// Shutdown stops the server gracefully: it first disconnects every /live
// subscriber — without this the SSE handlers would never return and a
// graceful shutdown could never complete — then lets in-flight scrape
// requests finish, bounded by ctx. New subscriptions racing the shutdown
// observe the closed state and return immediately instead of leaking a
// blocked writer goroutine.
func (s *Server) Shutdown(ctx context.Context) error {
	s.disconnectSubscribers()
	if s.http != nil {
		return s.http.Shutdown(ctx)
	}
	return nil
}

// disconnectSubscribers closes every /live channel and marks the server
// closed so later subscribe calls get an already-closed channel.
func (s *Server) disconnectSubscribers() {
	s.mu.Lock()
	s.closed = true
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan liveFrame]struct{}{}
	s.mu.Unlock()
}

// Publish broadcasts one event to every /live subscriber as an SSE frame
// with the given event name and v as the JSON payload. Slow subscribers
// drop frames rather than stall the publisher.
func (s *Server) Publish(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	s.mu.Lock()
	s.seq++
	for ch := range s.subs {
		select {
		case ch <- liveFrame{event: event, data: data}:
		default: // subscriber not draining; drop
		}
	}
	s.mu.Unlock()
}

func (s *Server) subscribe() chan liveFrame {
	ch := make(chan liveFrame, 64)
	s.mu.Lock()
	if s.closed {
		// A /live request racing Close/Shutdown: hand back a closed
		// channel so the handler returns instead of blocking forever on a
		// channel nobody will ever close again.
		close(ch)
	} else {
		s.subs[ch] = struct{}{}
	}
	s.mu.Unlock()
	return ch
}

func (s *Server) unsubscribe(ch chan liveFrame) {
	s.mu.Lock()
	if _, ok := s.subs[ch]; ok {
		delete(s.subs, ch)
		close(ch)
	}
	s.mu.Unlock()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "turnpike observability server")
	fmt.Fprintln(w, "  /metrics        Prometheus text exposition")
	fmt.Fprintln(w, "  /snapshot.json  metric snapshot as JSON")
	fmt.Fprintln(w, "  /runs           on-disk run manifest index")
	fmt.Fprintln(w, "  /live           SSE stream of progress samples")
	fmt.Fprintln(w, "  /debug/pprof/   Go runtime profiles")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	if err := s.cfg.Snapshot().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// RunInfo is one /runs index entry: the manifest header without its
// (potentially large) metric payload.
type RunInfo struct {
	File        string    `json:"file"`
	Tool        string    `json:"tool"`
	StartedAt   time.Time `json:"started_at"`
	WallSeconds float64   `json:"wall_seconds"`
	Workloads   []string  `json:"workloads,omitempty"`
	Seed        int64     `json:"seed,omitempty"`
	HasMetrics  bool      `json:"has_metrics"`
}

// IndexRuns scans dir for *.json files that parse as run manifests and
// returns them newest-first. Files that fail to parse (torn writes from
// pre-atomic tools, unrelated JSON) are skipped, not fatal.
func IndexRuns(dir string) ([]RunInfo, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	runs := make([]RunInfo, 0, len(paths))
	for _, p := range paths {
		m, err := ReadManifest(p)
		if err != nil || m.Tool == "" || m.StartedAt.IsZero() {
			continue
		}
		runs = append(runs, RunInfo{
			File:        filepath.Base(p),
			Tool:        m.Tool,
			StartedAt:   m.StartedAt,
			WallSeconds: m.WallSeconds,
			Workloads:   m.Workloads,
			Seed:        m.Seed,
			HasMetrics:  m.Metrics != nil,
		})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].StartedAt.After(runs[j].StartedAt) })
	return runs, nil
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs, err := IndexRuns(s.cfg.RunsDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(runs) //nolint:errcheck — client gone is not actionable
}

// handleLive streams Publish events as server-sent events until the client
// disconnects or the server closes. Each frame is
//
//	event: <name>\n
//	data: <json>\n\n
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": turnpike live stream\n\n")
	fl.Flush()

	ch := s.subscribe()
	defer s.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case f, open := <-ch:
			if !open {
				return
			}
			name := f.event
			if name == "" {
				name = "progress"
			}
			// SSE data must not contain raw newlines; compact JSON doesn't.
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, f.data)
			fl.Flush()
		}
	}
}
