package obs

import (
	"net/http"
	"strings"
	"time"
)

// RED instrumentation for HTTP routes: request rate, error rate, and
// duration per route. The Registry has no label dimension, so the route
// is encoded into the metric name — "GET /jobs/{id}" becomes the
// metrics
//
//	http.requests.get_jobs_id         (counter)
//	http.errors.get_jobs_id           (counter, status >= 400)
//	http.request_duration_us.get_jobs_id  (histogram, microseconds)
//
// plus the cross-route totals http.requests and http.errors.

// RouteLabel sanitizes a net/http route pattern ("GET /jobs/{id}") into
// a metric-name segment ("get_jobs_id"). Wildcard braces and slashes
// collapse to underscores; the bare root pattern becomes "root".
func RouteLabel(pattern string) string {
	var b strings.Builder
	us := true // swallow leading/duplicate underscores
	for _, r := range strings.ToLower(pattern) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			us = false
		default:
			if !us {
				b.WriteByte('_')
				us = true
			}
		}
	}
	out := strings.TrimRight(b.String(), "_")
	if out == "" {
		return "root"
	}
	return out
}

// durationBuckets spans 1µs..~4s in powers of 4 — wide enough for both
// in-memory queue hops and multi-second campaign submissions.
func durationBuckets() []uint64 { return ExpBuckets(1, 4, 12) }

// ResponseRecorder wraps a ResponseWriter to capture the status code and
// body size for metrics and access logging. It forwards Flush so SSE
// handlers (/live) keep streaming through it.
type ResponseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// NewResponseRecorder wraps w; Status reports 200 until a handler says
// otherwise, matching net/http's implicit WriteHeader.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w, status: http.StatusOK}
}

func (w *ResponseRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *ResponseRecorder) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *ResponseRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the response status code (200 if never set explicitly).
func (w *ResponseRecorder) Status() int { return w.status }

// Bytes returns the body bytes written so far.
func (w *ResponseRecorder) Bytes() int64 { return w.bytes }

// Instrument wraps next with RED metrics for the route label (use
// RouteLabel to derive one from a pattern). A nil registry returns next
// unchanged — the disabled path costs nothing.
func Instrument(reg *Registry, route string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	reqs := reg.Counter("http.requests." + route)
	errs := reg.Counter("http.errors." + route)
	dur := reg.Histogram("http.request_duration_us."+route, durationBuckets())
	allReqs := reg.Counter("http.requests")
	allErrs := reg.Counter("http.errors")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec, ok := w.(*ResponseRecorder)
		if !ok {
			// Outermost instrumented layer: wrap once; nested middleware
			// reuses the same recorder.
			rec = NewResponseRecorder(w)
		}
		start := time.Now()
		next.ServeHTTP(rec, r)
		us := uint64(time.Since(start).Microseconds())
		reqs.Inc()
		allReqs.Inc()
		dur.Observe(us)
		if rec.Status() >= 400 {
			errs.Inc()
			allErrs.Inc()
		}
	})
}
