package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Snapshot.
//
// The mapping is mechanical: counters become Prometheus counters with the
// conventional `_total` suffix, gauges become gauges, and the fixed-bucket
// histograms become Prometheus histograms — per-bucket counts are
// cumulated, the overflow bucket becomes `le="+Inf"`, and `_sum`/`_count`
// come straight from the snapshot. Metric names are sanitized to the
// Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]*), so "sim.region_lifetime_cycles"
// exports as "sim_region_lifetime_cycles". Two distinct snapshot names that
// sanitize to the same exposition name would collide; the repo's metric
// namespace (dot-separated snake_case) never does.

// PromContentType is the Content-Type the /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a snapshot metric name to the Prometheus charset:
// every run of invalid characters becomes one underscore, and a leading
// digit is prefixed with one.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	prevUnderscore := false
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !valid {
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('_')
				b.WriteRune(r)
				prevUnderscore = false
				continue
			}
			if !prevUnderscore {
				b.WriteByte('_')
			}
			prevUnderscore = true
			continue
		}
		b.WriteRune(r)
		prevUnderscore = r == '_'
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Output is sorted by metric name, so identical snapshots render
// byte-identically.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, n := range sortedKeys(s.Counters) {
		pn := PromName(n) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		pn := PromName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n])
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		pn := PromName(n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
