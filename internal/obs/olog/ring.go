package olog

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// The flight recorder: a bounded in-memory ring of recent structured
// events. It rides on the logging pipeline — Recorder.Handler is one leg
// of an Attach fanout — so everything the daemon logs (access lines, job
// transitions, breaker trips, per-trial campaign events) lands in the
// ring with its correlation chain intact, even at levels the terminal
// log suppresses. The ring answers two questions after the fact: "what
// were the last N things this process did" (Dump, wired to SIGQUIT) and
// "what happened to this job" (JobEvents, served at /jobs/{id}/events
// and dumped when a job fails permanently).

// Event is one recorded log record, flattened for JSON serving. Shard
// and Trial are -1 when unset (0 is a valid index for both).
type Event struct {
	Time      time.Time      `json:"time"`
	Level     string         `json:"level"`
	Msg       string         `json:"msg"`
	RequestID string         `json:"request_id,omitempty"`
	JobID     string         `json:"job_id,omitempty"`
	Shard     int            `json:"shard"`
	Trial     int            `json:"trial"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// Recorder is a goroutine-safe bounded ring of Events. When full, the
// oldest event is overwritten; Dropped counts the overwrites.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64
}

// NewRecorder returns a recorder holding the most recent capacity events
// (default 4096 when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when the ring is full.
func (r *Recorder) Append(e Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.seq++
	r.mu.Unlock()
}

// snapshotLocked copies the ring oldest-first; the caller holds r.mu.
func (r *Recorder) snapshotLocked() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// JobEvents returns the recorded events carrying the given job ID,
// oldest first — the /jobs/{id}/events timeline.
func (r *Recorder) JobEvents(id string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.snapshotLocked() {
		if e.JobID == id {
			out = append(out, e)
		}
	}
	return out
}

// Dropped reports how many events the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Dump writes the recorded events as JSON lines, oldest first — the
// SIGQUIT / job-failure post-mortem artifact. It returns the number of
// events written.
func (r *Recorder) Dump(w io.Writer) (int, error) {
	return WriteEvents(w, r.Events())
}

// DumpJob writes one job's timeline as JSON lines, oldest first.
func (r *Recorder) DumpJob(w io.Writer, id string) (int, error) {
	return WriteEvents(w, r.JobEvents(id))
}

// WriteEvents writes events as JSON lines.
func WriteEvents(w io.Writer, evs []Event) (int, error) {
	enc := json.NewEncoder(w)
	for i, e := range evs {
		if err := enc.Encode(e); err != nil {
			return i, err
		}
	}
	return len(evs), nil
}

// Handler returns a slog.Handler that records every record at or above
// min into the ring. Compose it with a writer handler through Attach;
// give it a lower min than the terminal handler and the ring keeps
// debug detail the log stream suppresses.
func (r *Recorder) Handler(min slog.Level) slog.Handler {
	return recHandler{rec: r, min: min}
}

type recHandler struct {
	rec   *Recorder
	min   slog.Level
	attrs []slog.Attr
}

func (h recHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.min }

func (h recHandler) Handle(ctx context.Context, r slog.Record) error {
	e := Event{
		Time:  r.Time,
		Level: r.Level.String(),
		Msg:   r.Message,
		Shard: -1,
		Trial: -1,
	}
	absorb := func(a slog.Attr) bool {
		if a.Key == "" {
			return true
		}
		v := a.Value.Resolve().Any()
		switch a.Key {
		case KeyRequestID:
			if s, ok := v.(string); ok {
				e.RequestID = s
				return true
			}
		case KeyJobID:
			if s, ok := v.(string); ok {
				e.JobID = s
				return true
			}
		case KeyShard:
			if n, ok := v.(int64); ok {
				e.Shard = int(n)
				return true
			}
		case KeyTrial:
			if n, ok := v.(int64); ok {
				e.Trial = int(n)
				return true
			}
		}
		if e.Attrs == nil {
			e.Attrs = map[string]any{}
		}
		e.Attrs[a.Key] = v
		return true
	}
	for _, a := range h.attrs {
		absorb(a)
	}
	r.Attrs(absorb)
	h.rec.Append(e)
	return nil
}

func (h recHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return recHandler{rec: h.rec, min: h.min, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h recHandler) WithGroup(string) slog.Handler { return h }
