package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 7; i++ {
		r.Append(Event{Msg: string(rune('a' + i)), Shard: -1, Trial: -1})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	got := ""
	for _, e := range evs {
		got += e.Msg
	}
	if got != "defg" {
		t.Errorf("ring order = %q, want oldest-first defg", got)
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
}

func TestRecorderJobTimeline(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 3; i++ {
		r.Append(Event{Msg: "a", JobID: "job-1", Shard: -1, Trial: -1})
		r.Append(Event{Msg: "b", JobID: "job-2", Shard: -1, Trial: -1})
	}
	if got := len(r.JobEvents("job-1")); got != 3 {
		t.Errorf("job-1 timeline has %d events, want 3", got)
	}
	if got := len(r.JobEvents("job-404")); got != 0 {
		t.Errorf("unknown job timeline has %d events, want 0", got)
	}
}

// TestRecorderHandlerCapturesCorrelation proves the recorder leg of an
// Attach fanout absorbs the correlation chain into typed Event fields
// and keeps everything else as attrs.
func TestRecorderHandlerCapturesCorrelation(t *testing.T) {
	r := NewRecorder(16)
	var term bytes.Buffer
	// Terminal log at Info; ring keeps Debug detail too.
	l := Attach(NewHandler(&term, Options{Level: slog.LevelInfo}), r.Handler(slog.LevelDebug))
	ctx := WithTrial(WithShard(WithJobID(WithRequestID(context.Background(),
		"req-1"), "job-9"), 2), 40)
	l.LogAttrs(ctx, slog.LevelDebug, "trial", slog.String("outcome", "masked"))

	if strings.Contains(term.String(), "trial") {
		t.Errorf("debug line leaked to the Info terminal log: %s", term.String())
	}
	evs := r.JobEvents("job-9")
	if len(evs) != 1 {
		t.Fatalf("ring events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.RequestID != "req-1" || e.JobID != "job-9" || e.Shard != 2 || e.Trial != 40 {
		t.Errorf("correlation not absorbed: %+v", e)
	}
	if e.Msg != "trial" || e.Level != "DEBUG" || e.Attrs["outcome"] != "masked" {
		t.Errorf("event payload wrong: %+v", e)
	}
	if e.Time.IsZero() {
		t.Error("event time not stamped")
	}
}

func TestDumpJSONL(t *testing.T) {
	r := NewRecorder(8)
	r.Append(Event{Time: time.Unix(1, 0).UTC(), Msg: "one", JobID: "job-1", Shard: -1, Trial: -1})
	r.Append(Event{Time: time.Unix(2, 0).UTC(), Msg: "two", JobID: "job-2", Shard: -1, Trial: -1})
	var buf bytes.Buffer
	n, err := r.Dump(&buf)
	if err != nil || n != 2 {
		t.Fatalf("dump: n=%d err=%v", n, err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump lines = %d, want 2", len(lines))
	}
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("dump line not JSON: %v\n%s", err, ln)
		}
	}
	buf.Reset()
	if n, _ := r.DumpJob(&buf, "job-2"); n != 1 || !strings.Contains(buf.String(), "two") {
		t.Errorf("job dump: n=%d out=%s", n, buf.String())
	}
}
