// Package olog is the repo's structured-logging layer: leveled
// log/slog loggers with JSON and text handlers, plus the correlation
// chain that ties every layer of the campaign service together. One ID
// per layer — HTTP request ID → job ID → campaign shard → trial index —
// travels in the context.Context and is stamped onto every log line a
// correlated logger emits, so one grep over the access log, the job
// lifecycle log, and the campaign's per-trial lines reconstructs a
// request's whole story.
//
// The package follows the same discipline as internal/obs: the disabled
// path is free. A Nop logger's Enabled check is a single interface call
// returning false, and guarded call sites (`if logger != nil`, or a
// cached Enabled(level) bool for per-trial logging) add no allocations
// to hot loops — TestDisabledLoggerZeroAlloc pins that.
package olog

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Correlation attribute keys, in emission order. These names are part of
// the pinned log schema (see TestLogSchemaGolden): dashboards and the
// flight-recorder timeline key off them, so renaming one is a breaking
// schema change.
const (
	KeyTenantID  = "tenant_id"
	KeyRequestID = "request_id"
	KeyJobID     = "job_id"
	KeyShard     = "shard"
	KeyTrial     = "trial"
)

// Corr is the correlation chain carried through a context: which tenant's
// HTTP request became which job, which campaign shard (worker) is
// executing, and which trial index it is on. Zero string fields and
// negative numeric fields are "unset" and are not emitted.
type Corr struct {
	TenantID  string
	RequestID string
	JobID     string
	Shard     int
	Trial     int
}

// emptyCorr is the unset chain (Shard/Trial use -1 because 0 is a valid
// shard and trial index).
func emptyCorr() Corr { return Corr{Shard: -1, Trial: -1} }

type corrKey struct{}

// FromContext returns the correlation chain stored in ctx, or the empty
// chain when none is.
func FromContext(ctx context.Context) Corr {
	if c, ok := ctx.Value(corrKey{}).(Corr); ok {
		return c
	}
	return emptyCorr()
}

// WithCorr returns a context carrying exactly c as its correlation
// chain, replacing any chain already present — the re-rooting primitive
// for deriving a fresh job context from a stored record. Callers must
// set unused Shard/Trial to -1 (0 is a valid index for both).
func WithCorr(ctx context.Context, c Corr) context.Context {
	return context.WithValue(ctx, corrKey{}, c)
}

// WithTenantID returns a context whose correlation chain carries the
// authenticated tenant's ID — the outermost link of the chain, stamped
// by the front door's access middleware so every downstream record
// (access log, job lifecycle, per-trial campaign lines) can be filtered
// per tenant.
func WithTenantID(ctx context.Context, id string) context.Context {
	c := FromContext(ctx)
	c.TenantID = id
	return context.WithValue(ctx, corrKey{}, c)
}

// WithRequestID returns a context whose correlation chain carries the
// HTTP request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	c := FromContext(ctx)
	c.RequestID = id
	return context.WithValue(ctx, corrKey{}, c)
}

// WithJobID returns a context whose correlation chain carries the job ID.
func WithJobID(ctx context.Context, id string) context.Context {
	c := FromContext(ctx)
	c.JobID = id
	return context.WithValue(ctx, corrKey{}, c)
}

// WithShard returns a context whose correlation chain carries the
// campaign shard (trial-worker index).
func WithShard(ctx context.Context, shard int) context.Context {
	c := FromContext(ctx)
	c.Shard = shard
	return context.WithValue(ctx, corrKey{}, c)
}

// WithTrial returns a context whose correlation chain carries the trial
// index.
func WithTrial(ctx context.Context, trial int) context.Context {
	c := FromContext(ctx)
	c.Trial = trial
	return context.WithValue(ctx, corrKey{}, c)
}

// attrs renders the set fields of the chain in schema order.
func (c Corr) attrs() []slog.Attr {
	out := make([]slog.Attr, 0, 5)
	if c.TenantID != "" {
		out = append(out, slog.String(KeyTenantID, c.TenantID))
	}
	if c.RequestID != "" {
		out = append(out, slog.String(KeyRequestID, c.RequestID))
	}
	if c.JobID != "" {
		out = append(out, slog.String(KeyJobID, c.JobID))
	}
	if c.Shard >= 0 {
		out = append(out, slog.Int(KeyShard, c.Shard))
	}
	if c.Trial >= 0 {
		out = append(out, slog.Int(KeyTrial, c.Trial))
	}
	return out
}

// NewRequestID returns a fresh 16-hex-character request ID. IDs only
// need to be unique within a log-retention window, not cryptographically
// meaningful; 64 random bits are plenty.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy device is gone; any
		// constant is as good as any other at that point.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Options parameterizes New / NewHandler.
type Options struct {
	// Format is "json" (default, one object per line — the pinned
	// machine-readable schema) or "text" (slog's key=value form, for
	// humans watching a terminal).
	Format string
	// Level is the minimum emitted level; nil means slog.LevelInfo.
	Level slog.Leveler
	// AddSource attaches the file:line of the call site.
	AddSource bool
}

// NewHandler builds the plain format handler (no correlation stamping);
// compose it with Attach, or use New which does both.
func NewHandler(w io.Writer, o Options) slog.Handler {
	hopts := &slog.HandlerOptions{Level: o.Level, AddSource: o.AddSource}
	if strings.EqualFold(o.Format, "text") {
		return slog.NewTextHandler(w, hopts)
	}
	return slog.NewJSONHandler(w, hopts)
}

// New returns a correlated logger writing to w: every line carries the
// correlation chain of the context it was logged with.
func New(w io.Writer, o Options) *slog.Logger {
	return Attach(NewHandler(w, o))
}

// Attach wraps one or more handlers (a writer handler, a flight
// recorder, ...) into a single correlated logger: records fan out to
// every handler that is enabled for their level, and the context's
// correlation chain is appended to each record exactly once.
func Attach(hs ...slog.Handler) *slog.Logger {
	var inner slog.Handler
	switch len(hs) {
	case 0:
		return Nop()
	case 1:
		inner = hs[0]
	default:
		inner = fanout(append([]slog.Handler(nil), hs...))
	}
	return slog.New(corrHandler{inner: inner})
}

// corrHandler stamps the context's correlation chain onto every record
// before forwarding.
type corrHandler struct{ inner slog.Handler }

func (h corrHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h corrHandler) Handle(ctx context.Context, r slog.Record) error {
	if ctx != nil {
		if attrs := FromContext(ctx).attrs(); len(attrs) > 0 {
			r = r.Clone()
			r.AddAttrs(attrs...)
		}
	}
	return h.inner.Handle(ctx, r)
}

func (h corrHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return corrHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h corrHandler) WithGroup(name string) slog.Handler {
	return corrHandler{inner: h.inner.WithGroup(name)}
}

// fanout forwards each record to every handler enabled for its level.
type fanout []slog.Handler

func (f fanout) Enabled(ctx context.Context, l slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, l) {
			return true
		}
	}
	return false
}

func (f fanout) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f fanout) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(fanout, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (f fanout) WithGroup(name string) slog.Handler {
	out := make(fanout, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}

// nopHandler is disabled at every level; call sites guarded by Enabled
// (as slog's Logger methods are) never build a record.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// Nop returns a logger that discards everything with zero allocations —
// the disabled path for components that want an always-non-nil logger.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// Warnf adapts a structured logger to the legacy printf-style warning
// hook (fault.Config.Warnf and friends): the formatted message becomes a
// WARN record. Kept for backward compatibility while call sites migrate
// to structured logging.
func Warnf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Warn(fmt.Sprintf(format, args...))
	}
}

// Logf adapts the other direction: a legacy printf hook becomes a
// correlated structured logger, so components that migrated internally
// to slog keep honoring a caller's Logf. Records render as
// "LEVEL msg key=value ..." through the hook.
func Logf(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return Nop()
	}
	return Attach(logfHandler{logf: logf})
}

// logfHandler renders records through a printf hook at Info level and up.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.LevelInfo
}

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	appendAttr := func(a slog.Attr) bool {
		if a.Key == "" {
			return true
		}
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Resolve().Any())
		return true
	}
	for _, a := range h.attrs {
		appendAttr(a)
	}
	r.Attrs(appendAttr)
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logfHandler{logf: h.logf, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }
