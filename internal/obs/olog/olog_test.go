package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestLogSchemaGolden pins the JSON log-line schema: the base fields
// slog emits, the correlation keys, and their order. Dashboards, the
// flight recorder, and the e2e correlation test all key off these
// names — a change here is a breaking schema change and must be
// deliberate.
func TestLogSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{Format: "json", Level: slog.LevelDebug})
	ctx := WithTrial(WithShard(WithJobID(WithRequestID(WithTenantID(context.Background(),
		"acme"), "req-abc"), "job-000001"), 3), 17)
	l.LogAttrs(ctx, slog.LevelInfo, "campaign trial",
		slog.String("outcome", "recovered"), slog.Int("attempt", 1))

	line := strings.TrimSpace(buf.String())
	// Field order is part of the schema: slog's base trio, then the call
	// site's attrs, then the correlation chain outermost-first.
	wantOrder := []string{"time", "level", "msg", "outcome", "attempt",
		KeyTenantID, KeyRequestID, KeyJobID, KeyShard, KeyTrial}
	pos := -1
	for _, k := range wantOrder {
		idx := strings.Index(line, `"`+k+`":`)
		if idx < 0 {
			t.Fatalf("schema field %q missing from line: %s", k, line)
		}
		if idx < pos {
			t.Errorf("schema field %q out of order in line: %s", k, line)
		}
		pos = idx
	}

	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("log line is not one JSON object: %v\n%s", err, line)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := append([]string(nil), wantOrder...)
	sort.Strings(want)
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("schema drifted:\n got %v\nwant %v", keys, want)
	}
	if m["msg"] != "campaign trial" || m[KeyTenantID] != "acme" || m[KeyRequestID] != "req-abc" ||
		m[KeyJobID] != "job-000001" || m[KeyShard] != float64(3) || m[KeyTrial] != float64(17) {
		t.Errorf("schema values wrong: %v", m)
	}
}

func TestUnsetCorrelationEmitsNothing(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, Options{}).Info("plain")
	for _, k := range []string{KeyTenantID, KeyRequestID, KeyJobID, KeyShard, KeyTrial} {
		if strings.Contains(buf.String(), k) {
			t.Errorf("unset correlation key %q emitted: %s", k, buf.String())
		}
	}
}

func TestCorrChainAccumulates(t *testing.T) {
	ctx := WithRequestID(context.Background(), "r1")
	ctx = WithJobID(ctx, "j1")
	inner := WithTrial(WithShard(ctx, 0), 0)
	c := FromContext(inner)
	if c.RequestID != "r1" || c.JobID != "j1" || c.Shard != 0 || c.Trial != 0 {
		t.Errorf("chain lost fields: %+v", c)
	}
	// The outer context is untouched — each With* derives a new context.
	if got := FromContext(ctx); got.Shard != -1 || got.Trial != -1 {
		t.Errorf("With* mutated parent context: %+v", got)
	}
	if got := FromContext(context.Background()); got != emptyCorr() {
		t.Errorf("empty context chain = %+v", got)
	}
}

func TestNewRequestIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("request id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("request id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestTextFormatAndLeveling(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{Format: "text", Level: slog.LevelWarn})
	l.Info("suppressed")
	l.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Errorf("info line leaked past Warn level: %s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "k=v") {
		t.Errorf("text line malformed: %s", out)
	}
}

func TestWarnfAdapter(t *testing.T) {
	var buf bytes.Buffer
	warnf := Warnf(New(&buf, Options{}))
	warnf("checkpoint %s discarded after %d tries", "x.json", 3)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["level"] != "WARN" || m["msg"] != "checkpoint x.json discarded after 3 tries" {
		t.Errorf("warnf line = %v", m)
	}
}

func TestLogfAdapter(t *testing.T) {
	var lines []string
	l := Logf(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	ctx := WithJobID(context.Background(), "job-7")
	l.Log(ctx, slog.LevelInfo, "job done", "trials", 240)
	l.Debug("invisible") // logf adapter is Info+
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	if want := "job done trials=240 job_id=job-7"; lines[0] != want {
		t.Errorf("logf line = %q, want %q", lines[0], want)
	}
	if Logf(nil).Enabled(context.Background(), slog.LevelError) {
		t.Error("Logf(nil) must be disabled")
	}
}

func TestFanoutLevels(t *testing.T) {
	var loud, quiet bytes.Buffer
	l := Attach(
		NewHandler(&quiet, Options{Level: slog.LevelWarn}),
		NewHandler(&loud, Options{Level: slog.LevelDebug}),
	)
	if !l.Enabled(context.Background(), slog.LevelDebug) {
		t.Fatal("fanout must be enabled when any leg is")
	}
	l.Debug("detail")
	l.Warn("problem")
	if strings.Contains(quiet.String(), "detail") {
		t.Errorf("warn-leveled leg got debug line: %s", quiet.String())
	}
	if !strings.Contains(loud.String(), "detail") || !strings.Contains(loud.String(), "problem") {
		t.Errorf("debug leg missing lines: %s", loud.String())
	}
	if !strings.Contains(quiet.String(), "problem") {
		t.Errorf("warn leg missing warn line: %s", quiet.String())
	}
}

// TestDisabledLoggerZeroAlloc pins the disabled path's cost: a Nop
// logger — and the `l.Enabled(...)` guard hot loops use before building
// per-trial attrs — must not allocate.
func TestDisabledLoggerZeroAlloc(t *testing.T) {
	l := Nop()
	ctx := context.Background()
	if avg := testing.AllocsPerRun(1000, func() {
		if l.Enabled(ctx, slog.LevelDebug) {
			l.LogAttrs(ctx, slog.LevelDebug, "trial", slog.Int("t", 1))
		}
	}); avg != 0 {
		t.Errorf("disabled logging path allocates %.1f/op, want 0", avg)
	}
}

func BenchmarkDisabledLogging(b *testing.B) {
	l := Nop()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.Enabled(ctx, slog.LevelDebug) {
			l.LogAttrs(ctx, slog.LevelDebug, "trial", slog.Int("t", i))
		}
	}
}

func BenchmarkEnabledJSONLogging(b *testing.B) {
	l := New(&bytes.Buffer{}, Options{Format: "json", Level: slog.LevelDebug})
	ctx := WithTrial(WithJobID(context.Background(), "job-1"), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.LogAttrs(ctx, slog.LevelDebug, "trial", slog.Int("t", i))
	}
}
