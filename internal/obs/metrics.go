// Package obs is the repo's observability substrate: a lightweight
// metrics registry (named counters, gauges, fixed-bucket histograms with
// snapshot/merge/diff and text + JSON rendering), a cycle-domain tracer
// with pluggable sinks (JSONL, Chrome trace-event JSON loadable in
// Perfetto, human-readable text), per-run manifests that make benchmark
// trajectories machine-diffable, and the shared table renderer the
// command-line tools print with.
//
// The simulator hot path never touches this package unless observability
// is explicitly attached: every instrumentation site in internal/pipeline
// is guarded by a single nil check, and BenchmarkSimObsDisabled holds the
// disabled path to the uninstrumented simulator's throughput.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value-wins int64 metric (occupancies, maxima, sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of uint64 observations. Bounds are
// inclusive upper bounds; one extra overflow bucket catches everything
// above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []uint64
	counts []uint64 // len(bounds)+1; last is overflow
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// ExpBuckets returns n bucket bounds starting at start and growing by
// factor (at least +1 per step), e.g. ExpBuckets(1, 2, 10) = 1,2,4,...,512.
func ExpBuckets(start uint64, factor float64, n int) []uint64 {
	if start < 1 {
		start = 1
	}
	if factor < 1 {
		factor = 2
	}
	out := make([]uint64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		nv := uint64(float64(v) * factor)
		if nv <= v {
			nv = v + 1
		}
		v = nv
	}
	return out
}

// LinearBuckets returns n bounds start, start+step, ...
func LinearBuckets(start, step uint64, n int) []uint64 {
	if step == 0 {
		step = 1
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+uint64(i)*step)
	}
	return out
}

func newHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1), min: ^uint64(0)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Max:    h.max,
	}
	if h.count > 0 {
		s.Min = h.min
	}
	return s
}

// Registry holds named metrics. Lookup is mutex-guarded; the returned
// metric handles are lock-free (counters/gauges) or internally locked
// (histograms), so callers should cache handles on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds
// of the first registration win; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = ExpBuckets(1, 2, 20)
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is an immutable histogram state.
type HistSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Min    uint64   `json:"min"`
	Max    uint64   `json:"max"`
}

// Mean returns the average observation, 0 when empty.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge adds o into h (bucket-wise when shapes match, else coarsely).
func (h HistSnapshot) merge(o HistSnapshot) HistSnapshot {
	out := h
	out.Counts = append([]uint64(nil), h.Counts...)
	if len(o.Counts) == len(h.Counts) {
		for i, c := range o.Counts {
			out.Counts[i] += c
		}
	} else if len(o.Counts) > 0 {
		// Shape mismatch: dump everything into overflow to stay lossless
		// in Count/Sum even if bucket detail is lost.
		out.Counts[len(out.Counts)-1] += o.Count
	}
	if o.Count > 0 {
		if h.Count == 0 || o.Min < out.Min {
			out.Min = o.Min
		}
		if o.Max > out.Max {
			out.Max = o.Max
		}
	}
	out.Count += o.Count
	out.Sum += o.Sum
	return out
}

// Snapshot is a point-in-time copy of a registry, safe to serialize,
// merge, and diff.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Merge returns the union of two snapshots: counters and histograms sum,
// gauges take the elementwise maximum (gauges here track occupancies and
// maxima, where max is the meaningful cross-run aggregate).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for n, v := range s.Counters {
		out.Counters[n] = v
	}
	for n, v := range o.Counters {
		out.Counters[n] += v
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range o.Gauges {
		if cur, ok := out.Gauges[n]; !ok || v > cur {
			out.Gauges[n] = v
		}
	}
	for n, v := range s.Histograms {
		out.Histograms[n] = v
	}
	for n, v := range o.Histograms {
		if cur, ok := out.Histograms[n]; ok {
			out.Histograms[n] = cur.merge(v)
		} else {
			out.Histograms[n] = v
		}
	}
	return out
}

// Diff returns s minus prev: counters and histogram counts subtract
// (clamped at zero). Gauges are NOT subtracted — a gauge is a level, not a
// flow, so the difference of two occupancy readings is meaningless; each
// gauge keeps its last value from s. A histogram whose bucket layout
// changed between the snapshots (different Counts length) cannot be
// subtracted either and is passed through from s whole. Use Diff to
// isolate one phase of a longer run.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	sub := func(a, b uint64) uint64 {
		if b > a {
			return 0
		}
		return a - b
	}
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for n, v := range s.Counters {
		out.Counters[n] = sub(v, prev.Counters[n])
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range s.Histograms {
		p, ok := prev.Histograms[n]
		if !ok || len(p.Counts) != len(v.Counts) {
			out.Histograms[n] = v
			continue
		}
		d := v
		d.Counts = append([]uint64(nil), v.Counts...)
		for i := range d.Counts {
			d.Counts[i] = sub(d.Counts[i], p.Counts[i])
		}
		d.Count = sub(v.Count, p.Count)
		d.Sum = sub(v.Sum, p.Sum)
		out.Histograms[n] = d
	}
	return out
}

// Table renders the snapshot as the shared table form the tools print.
func (s Snapshot) Table(title string) Table {
	t := Table{Title: title, Header: []string{"metric", "kind", "value", "detail"}}
	for _, n := range sortedKeys(s.Counters) {
		t.Rows = append(t.Rows, []string{n, "counter", fmt.Sprintf("%d", s.Counters[n]), ""})
	}
	for _, n := range sortedKeys(s.Gauges) {
		t.Rows = append(t.Rows, []string{n, "gauge", fmt.Sprintf("%d", s.Gauges[n]), ""})
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		detail := fmt.Sprintf("min=%d max=%d mean=%.1f", h.Min, h.Max, h.Mean())
		t.Rows = append(t.Rows, []string{n, "histogram", fmt.Sprintf("%d", h.Count), detail})
	}
	return t
}

// RenderText renders the snapshot as aligned text.
func (s Snapshot) RenderText(title string) string {
	t := s.Table(title)
	return t.Render()
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot previously written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
