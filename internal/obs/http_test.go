package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"GET /jobs/{id}":        "get_jobs_id",
		"GET /jobs/{id}/events": "get_jobs_id_events",
		"POST /jobs":            "post_jobs",
		"DELETE /jobs/{id}":     "delete_jobs_id",
		"/metrics":              "metrics",
		"/snapshot.json":        "snapshot_json",
		"/":                     "root",
		"":                      "root",
	}
	for in, want := range cases {
		if got := RouteLabel(in); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInstrumentRecordsRED(t *testing.T) {
	reg := NewRegistry()
	h := Instrument(reg, "get_jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	for _, path := range []string{"/jobs", "/jobs", "/jobs?fail=1"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["http.requests.get_jobs"]; got != 3 {
		t.Errorf("route requests = %d, want 3", got)
	}
	if got := snap.Counters["http.errors.get_jobs"]; got != 1 {
		t.Errorf("route errors = %d, want 1", got)
	}
	if got := snap.Counters["http.requests"]; got != 3 {
		t.Errorf("total requests = %d, want 3", got)
	}
	if got := snap.Counters["http.errors"]; got != 1 {
		t.Errorf("total errors = %d, want 1", got)
	}
	d, ok := snap.Histograms["http.request_duration_us.get_jobs"]
	if !ok || d.Count != 3 {
		t.Errorf("duration histogram count = %+v, want 3 observations", d)
	}
}

func TestInstrumentNilRegistryIsPassthrough(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Instrument(nil, "x", next); got == nil {
		t.Fatal("nil registry must still return the handler")
	}
}

// TestInstrumentNestedReusesRecorder: stacking two instrumented layers
// (server route wrap + service middleware) must not double-wrap the
// ResponseWriter, so the inner layer sees the status the handler set.
func TestInstrumentNestedReusesRecorder(t *testing.T) {
	reg := NewRegistry()
	inner := Instrument(reg, "inner", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	outer := Instrument(reg, "outer", inner)
	rr := httptest.NewRecorder()
	outer.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	snap := reg.Snapshot()
	if snap.Counters["http.errors.inner"] != 1 || snap.Counters["http.errors.outer"] != 1 {
		t.Errorf("both layers must see the 418: %v", snap.Counters)
	}
	if rr.Code != http.StatusTeapot {
		t.Errorf("status = %d, want 418", rr.Code)
	}
}

func TestResponseRecorder(t *testing.T) {
	rr := httptest.NewRecorder()
	w := NewResponseRecorder(rr)
	if w.Status() != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", w.Status())
	}
	w.WriteHeader(http.StatusAccepted)
	w.Write([]byte("hello"))
	w.Flush()
	if w.Status() != http.StatusAccepted || w.Bytes() != 5 {
		t.Errorf("recorder status/bytes = %d/%d", w.Status(), w.Bytes())
	}
	if !rr.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	var _ http.Flusher = w // SSE handlers type-assert this
}

// TestServerRoutesInstrumented: with ServerConfig.Instrument set, both
// built-in and Handle-registered routes produce RED metrics that then
// appear in the /metrics exposition itself.
func TestServerRoutesInstrumented(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer(ServerConfig{Snapshot: reg.Snapshot, Instrument: reg})
	srv.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(r.PathValue("id")))
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/jobs/abc"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"http_requests_get_jobs_id_total 1",
		"http_requests_metrics_total",
		"http_requests_total",
		"http_request_duration_us_get_jobs_id_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
