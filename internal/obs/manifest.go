package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Manifest is the per-run record the experiment tools emit alongside their
// human-readable output: what ran, with which knobs, for how long, and the
// final metric snapshot. Two manifests from different commits diff cleanly
// with ordinary JSON tooling, which is what makes benchmark trajectories
// machine-comparable.
type Manifest struct {
	// Tool names the producing command (e.g. "experiments").
	Tool string `json:"tool"`
	// StartedAt is the run's wall-clock start.
	StartedAt time.Time `json:"started_at"`
	// WallSeconds is the run's total wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// GoVersion and Host capture the producing environment.
	GoVersion string `json:"go_version"`
	Host      string `json:"host,omitempty"`
	// Config holds the tool's knobs (scheme, scale, WCDL, SB size, ...).
	Config map[string]any `json:"config,omitempty"`
	// Workloads lists the benchmarks or experiments covered.
	Workloads []string `json:"workloads,omitempty"`
	// Seed is the campaign/workload seed when the run is randomized.
	Seed int64 `json:"seed,omitempty"`
	// Metrics is the final registry snapshot.
	Metrics *Snapshot `json:"metrics,omitempty"`
	// Extra carries tool-specific results (per-experiment wall times,
	// per-benchmark outcome counts, ...).
	Extra map[string]any `json:"extra,omitempty"`
}

// NewManifest starts a manifest for tool, stamping start time and
// environment. Call Finish before writing.
func NewManifest(tool string) *Manifest {
	host, _ := os.Hostname()
	return &Manifest{
		Tool:      tool,
		StartedAt: time.Now(),
		GoVersion: runtime.Version(),
		Host:      host,
		Config:    map[string]any{},
		Extra:     map[string]any{},
	}
}

// Finish stamps the total wall time and attaches the metric snapshot.
func (m *Manifest) Finish(s Snapshot) {
	m.WallSeconds = time.Since(m.StartedAt).Seconds()
	m.Metrics = &s
}

// WriteFile writes the manifest as indented JSON to path. The write is
// atomic — the JSON lands in a temp file in the same directory which is
// then renamed over path — so concurrent readers (the /runs index,
// cmd/bench diffing the latest manifest) never observe a torn manifest.
func (m *Manifest) WriteFile(path string) error {
	err := writeFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return nil
}

// WriteFileAtomic writes whatever fill produces via a temp file in path's
// directory plus rename, so a concurrent reader never observes a torn
// file. On error the temp file is removed and path is untouched. Fault
// campaigns use it for their resume checkpoints; manifests and metric
// snapshots go through the same path.
func WriteFileAtomic(path string, fill func(io.Writer) error) error {
	return writeFileAtomic(path, fill)
}

// writeFileAtomic writes via a temp file in path's directory plus rename.
// On error the temp file is removed and path is untouched.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	return &m, nil
}
