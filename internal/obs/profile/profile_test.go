package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCaptureWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	c, err := Start(dir, "camp", true)
	if err != nil {
		t.Fatal(err)
	}
	// Do a little allocating work inside the bracket.
	var sink [][]byte
	for i := 0; i < 100; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	u, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if u.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", u.Wall)
	}
	if u.Allocs < 100 {
		t.Errorf("allocs = %d, want >= 100", u.Allocs)
	}
	if u.AllocBytes < 100*1024 {
		t.Errorf("alloc bytes = %d, want >= 100KiB", u.AllocBytes)
	}
	for _, p := range []string{c.CPUProfilePath(), c.HeapProfilePath()} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile artifact missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile artifact %s is empty", p)
		}
	}
	if !strings.HasSuffix(c.CPUProfilePath(), "camp.cpu.pprof") ||
		!strings.HasSuffix(c.HeapProfilePath(), "camp.heap.pprof") {
		t.Errorf("artifact names: cpu=%s heap=%s", c.CPUProfilePath(), c.HeapProfilePath())
	}
}

func TestCaptureWithoutCPU(t *testing.T) {
	dir := t.TempDir()
	c, err := Start(dir, "noncpu", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if c.CPUProfilePath() != "" {
		t.Errorf("cpu profile path = %q, want empty", c.CPUProfilePath())
	}
	if _, err := os.Stat(filepath.Join(dir, "noncpu.heap.pprof")); err != nil {
		t.Errorf("heap profile missing: %v", err)
	}
}

func TestReportPerTrialMath(t *testing.T) {
	u := Usage{Wall: 2 * time.Second, Allocs: 1000, AllocBytes: 64000}
	r := u.Report(500)
	if r.TrialsPerSec != 250 {
		t.Errorf("trials/sec = %v, want 250", r.TrialsPerSec)
	}
	if r.NsPerTrial != 4e6 {
		t.Errorf("ns/trial = %v, want 4e6", r.NsPerTrial)
	}
	if r.AllocsPerTrial != 2 {
		t.Errorf("allocs/trial = %v, want 2", r.AllocsPerTrial)
	}
	if r.AllocBytesPerTrial != 128 {
		t.Errorf("alloc bytes/trial = %v, want 128", r.AllocBytesPerTrial)
	}
	// Degenerate inputs must not divide by zero.
	z := Usage{}.Report(0)
	if z.TrialsPerSec != 0 || z.NsPerTrial != 0 {
		t.Errorf("zero usage report = %+v", z)
	}
}

func TestCostReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cost.json")
	want := Usage{Wall: time.Second, Allocs: 10, AllocBytes: 100}.Report(10)
	want.Workload = "matmul"
	want.Scheme = "turnpike"
	want.CPUProfile = "camp.cpu.pprof"
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCostReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if s := got.String(); !strings.Contains(s, "trials/sec") || !strings.Contains(s, "allocs/trial") {
		t.Errorf("summary line missing fields: %s", s)
	}
}

func TestMeasureBracketsWork(t *testing.T) {
	u, err := Measure(func() error {
		s := make([]int, 1<<16)
		s[0] = 1
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.Wall < time.Millisecond {
		t.Errorf("wall = %v, want >= 1ms", u.Wall)
	}
	if u.AllocBytes < 1<<16 {
		t.Errorf("alloc bytes = %d, want >= 64KiB", u.AllocBytes)
	}
}
