// Package profile is the automated pprof capture harness: it brackets a
// campaign (or any measured region) with a CPU profile, a heap profile,
// and allocation accounting, and reduces the bracket to a per-trial cost
// report — ns/trial, allocs/trial, trials/sec — the number the ROADMAP's
// trial-throughput campaign is judged against. cmd/bench and
// cmd/faultcampaign -profile wire it in; the resulting .pprof files load
// straight into `go tool pprof`.
//
// Only one CPU profile can run per process (a runtime/pprof
// restriction), so captures are sequential: Start a capture, run the
// campaign, Stop it, then start the next.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
)

// Capture is one in-flight profiling bracket.
type Capture struct {
	dir     string
	name    string
	cpu     *os.File
	started time.Time
	before  runtime.MemStats

	cpuPath  string
	heapPath string
}

// Start opens a profiling bracket named name under dir (created if
// missing). When cpu is true a CPU profile streams to
// <dir>/<name>.cpu.pprof until Stop; the heap profile and allocation
// deltas are always captured. Allocation numbers count the whole
// process, so keep the bracket quiet: nothing else should run.
func Start(dir, name string, cpu bool) (*Capture, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	c := &Capture{dir: dir, name: name}
	if cpu {
		path := filepath.Join(dir, name+".cpu.pprof")
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(path)
			return nil, fmt.Errorf("profile: start cpu: %w", err)
		}
		c.cpu = f
		c.cpuPath = path
	}
	// A GC before reading the baseline keeps dead garbage from a prior
	// phase out of the bracket's alloc-bytes delta (Mallocs is
	// monotonic and unaffected).
	runtime.GC()
	runtime.ReadMemStats(&c.before)
	c.started = time.Now()
	return c, nil
}

// Usage is the measured cost of one bracket.
type Usage struct {
	Wall       time.Duration
	Allocs     uint64 // heap allocations (objects) inside the bracket
	AllocBytes uint64 // heap bytes allocated inside the bracket
}

// Stop closes the bracket: the CPU profile is finalized, a heap profile
// is written to <dir>/<name>.heap.pprof, and the wall/allocation deltas
// are returned.
func (c *Capture) Stop() (Usage, error) {
	wall := time.Since(c.started)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if c.cpu != nil {
		pprof.StopCPUProfile()
		if err := c.cpu.Close(); err != nil {
			return Usage{}, fmt.Errorf("profile: close cpu: %w", err)
		}
		c.cpu = nil
	}
	heapPath := filepath.Join(c.dir, c.name+".heap.pprof")
	f, err := os.Create(heapPath)
	if err != nil {
		return Usage{}, fmt.Errorf("profile: %w", err)
	}
	// The allocs profile keeps cumulative allocation sites (what the
	// trial loop allocates), which is what a throughput campaign tunes;
	// the live-heap view is derivable from the same file.
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return Usage{}, fmt.Errorf("profile: write heap: %w", err)
	}
	if err := f.Close(); err != nil {
		return Usage{}, fmt.Errorf("profile: %w", err)
	}
	c.heapPath = heapPath
	return Usage{
		Wall:       wall,
		Allocs:     after.Mallocs - c.before.Mallocs,
		AllocBytes: after.TotalAlloc - c.before.TotalAlloc,
	}, nil
}

// CPUProfilePath and HeapProfilePath return the written artifact paths
// ("" when not captured / not yet stopped).
func (c *Capture) CPUProfilePath() string  { return c.cpuPath }
func (c *Capture) HeapProfilePath() string { return c.heapPath }

// CostReport is the per-trial cost summary of a measured campaign — the
// unit the bench regression gate and the trial-throughput speed campaign
// trade in.
type CostReport struct {
	Workload string `json:"workload,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	Trials   int    `json:"trials"`

	WallSeconds        float64 `json:"wall_seconds"`
	TrialsPerSec       float64 `json:"trials_per_sec"`
	NsPerTrial         float64 `json:"ns_per_trial"`
	AllocsPerTrial     float64 `json:"allocs_per_trial"`
	AllocBytesPerTrial float64 `json:"alloc_bytes_per_trial"`

	CPUProfile  string `json:"cpu_profile,omitempty"`
	HeapProfile string `json:"heap_profile,omitempty"`
}

// Report reduces a bracket to its per-trial cost.
func (u Usage) Report(trials int) CostReport {
	r := CostReport{
		Trials:      trials,
		WallSeconds: u.Wall.Seconds(),
	}
	if trials > 0 {
		r.NsPerTrial = float64(u.Wall.Nanoseconds()) / float64(trials)
		r.AllocsPerTrial = float64(u.Allocs) / float64(trials)
		r.AllocBytesPerTrial = float64(u.AllocBytes) / float64(trials)
	}
	if u.Wall > 0 {
		r.TrialsPerSec = float64(trials) / u.Wall.Seconds()
	}
	return r
}

// WriteFile writes the report as indented JSON, atomically.
func (r CostReport) WriteFile(path string) error {
	return obs.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	})
}

// ReadCostReport loads a report written by WriteFile.
func ReadCostReport(path string) (CostReport, error) {
	var r CostReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(b, &r)
	return r, err
}

// String renders the one-line human summary the tools print.
func (r CostReport) String() string {
	return fmt.Sprintf("%d trials in %.2fs: %.1f trials/sec, %.0f ns/trial, %.0f allocs/trial, %.0f B/trial",
		r.Trials, r.WallSeconds, r.TrialsPerSec, r.NsPerTrial, r.AllocsPerTrial, r.AllocBytesPerTrial)
}

// Measure brackets fn with allocation and wall accounting only (no
// pprof files) — the cheap path cmd/bench uses on every run to keep
// trials/sec and allocs/trial in the regression-gated matrix.
func Measure(fn func() error) (Usage, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return Usage{
		Wall:       wall,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}, err
}
