package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family from the text exposition.
type promFamily struct {
	typ     string            // counter | gauge | histogram
	samples map[string]uint64 // sample suffix (or le bound) -> value
	sum     uint64
	count   uint64
}

// parsePrometheus is a strict parser for the subset of the text
// exposition format WritePrometheus emits. It fails the test on any line
// it does not recognize, so format drift cannot pass silently.
func parsePrometheus(t *testing.T, r string) map[string]promFamily {
	t.Helper()
	fams := map[string]promFamily{}
	sc := bufio.NewScanner(strings.NewReader(r))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if !validPromName(parts[0]) {
				t.Fatalf("invalid metric name %q", parts[0])
			}
			fams[parts[0]] = promFamily{typ: parts[1], samples: map[string]uint64{}}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad sample line %q", line)
		}
		var le string
		if base, rest, found := strings.Cut(name, "{"); found {
			name = base
			if !strings.HasPrefix(rest, `le="`) || !strings.HasSuffix(rest, `"}`) {
				t.Fatalf("bad label set in %q", line)
			}
			le = strings.TrimSuffix(strings.TrimPrefix(rest, `le="`), `"}`)
		}
		v, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		switch {
		case le != "":
			base := strings.TrimSuffix(name, "_bucket")
			f, seen := fams[base]
			if !seen || f.typ != "histogram" {
				t.Fatalf("bucket sample %q without histogram TYPE", line)
			}
			f.samples[le] = v
			fams[base] = f
		case strings.HasSuffix(name, "_sum") && fams[strings.TrimSuffix(name, "_sum")].typ == "histogram":
			base := strings.TrimSuffix(name, "_sum")
			f := fams[base]
			f.sum = v
			fams[base] = f
		case strings.HasSuffix(name, "_count") && fams[strings.TrimSuffix(name, "_count")].typ == "histogram":
			base := strings.TrimSuffix(name, "_count")
			f := fams[base]
			f.count = v
			fams[base] = f
		default:
			f, seen := fams[name]
			if !seen {
				t.Fatalf("sample %q without TYPE line", line)
			}
			f.samples[""] = v
			fams[name] = f
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

func validPromName(n string) bool {
	if n == "" {
		return false
	}
	for i, r := range n {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// TestPrometheusRoundTrip builds a registry, renders it, parses the
// exposition back, and checks every value against the JSON-visible
// snapshot state.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.insts").Add(12345)
	reg.Counter("fault.outcome.recovered").Add(7)
	reg.Gauge("sim.clq_occ_max").Set(9)
	reg.Gauge("live.sb_occupancy").Set(3)
	h := reg.Histogram("sim.verify_latency_cycles", []uint64{1, 5, 10})
	for _, v := range []uint64{0, 1, 2, 6, 11, 400} {
		h.Observe(v)
	}
	snap := reg.Snapshot()

	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())

	for name, want := range snap.Counters {
		f, ok := fams[PromName(name)+"_total"]
		if !ok || f.typ != "counter" {
			t.Fatalf("counter %s missing or mistyped: %+v", name, f)
		}
		if got := f.samples[""]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	for name, want := range snap.Gauges {
		f, ok := fams[PromName(name)]
		if !ok || f.typ != "gauge" {
			t.Fatalf("gauge %s missing or mistyped: %+v", name, f)
		}
		if got := f.samples[""]; got != uint64(want) {
			t.Errorf("gauge %s = %d, want %d", name, got, want)
		}
	}
	for name, hs := range snap.Histograms {
		f, ok := fams[PromName(name)]
		if !ok || f.typ != "histogram" {
			t.Fatalf("histogram %s missing or mistyped: %+v", name, f)
		}
		if f.sum != hs.Sum || f.count != hs.Count {
			t.Errorf("histogram %s sum/count = %d/%d, want %d/%d",
				name, f.sum, f.count, hs.Sum, hs.Count)
		}
		cum := uint64(0)
		for i, b := range hs.Bounds {
			cum += hs.Counts[i]
			le := fmt.Sprintf("%d", b)
			if got := f.samples[le]; got != cum {
				t.Errorf("histogram %s le=%s = %d, want %d", name, le, got, cum)
			}
		}
		if got := f.samples["+Inf"]; got != hs.Count {
			t.Errorf("histogram %s le=+Inf = %d, want %d", name, got, hs.Count)
		}
		// Buckets must be monotone non-decreasing up to +Inf.
		prev := uint64(0)
		for i, b := range hs.Bounds {
			if f.samples[fmt.Sprintf("%d", b)] < prev {
				t.Errorf("histogram %s bucket %d not cumulative", name, i)
			}
			prev = f.samples[fmt.Sprintf("%d", b)]
		}
		if hs.Count < prev {
			t.Errorf("histogram %s +Inf below last bucket", name)
		}
	}
	// Family count matches: no extra or dropped metrics.
	if want := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms); len(fams) != want {
		t.Errorf("rendered %d families, want %d", len(fams), want)
	}
}

// TestPromEmptyHistogram: a histogram that was created but never
// observed must still render as a complete, parseable family — all
// buckets zero, sum and count zero — not be dropped or emit bare lines.
func TestPromEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("service.queue_wait_us", []uint64{1, 4, 16})
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())
	f, ok := fams["service_queue_wait_us"]
	if !ok || f.typ != "histogram" {
		t.Fatalf("empty histogram missing from exposition: %+v", fams)
	}
	if f.sum != 0 || f.count != 0 {
		t.Errorf("empty histogram sum/count = %d/%d, want 0/0", f.sum, f.count)
	}
	for _, le := range []string{"1", "4", "16", "+Inf"} {
		if v, seen := f.samples[le]; !seen || v != 0 {
			t.Errorf("empty histogram bucket le=%s = %d (seen=%v), want 0", le, v, seen)
		}
	}
}

// TestPromEmptySnapshot: no metrics, no output — not a partial header.
func TestPromEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := (Snapshot{}).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", buf.String())
	}
}

// TestPromRouteLabelEscaping: the RED metric names are built from HTTP
// route patterns; even a raw, unsanitized pattern leaking into a metric
// name must come out as a valid exposition name with the label-ish
// characters ({, }, /, space) collapsed.
func TestPromRouteLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http.requests." + RouteLabel("GET /jobs/{id}/events")).Add(2)
	reg.Counter(`http.requests.GET /jobs/{id}`).Add(1) // hostile: raw pattern
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String()) // parser rejects invalid names
	if f := fams["http_requests_get_jobs_id_events_total"]; f.samples[""] != 2 {
		t.Errorf("route-labeled counter missing: %+v", fams)
	}
	// PromName collapses each invalid run to one underscore but does not
	// trim the trailing one from "}", hence the double underscore.
	if f := fams["http_requests_GET_jobs_id__total"]; f.samples[""] != 1 {
		t.Errorf("raw pattern not escaped: %+v", fams)
	}
}

// TestPromREDRoundTrip drives real requests through the instrumented
// middleware and round-trips the resulting RED histograms through the
// exposition parser.
func TestPromREDRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := Instrument(reg, "post_jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("full") != "" {
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusCreated)
	}))
	for _, q := range []string{"", "", "", "?full=1"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", "/jobs"+q, nil))
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())
	if f := fams["http_requests_post_jobs_total"]; f.typ != "counter" || f.samples[""] != 4 {
		t.Errorf("requests family = %+v, want counter 4", f)
	}
	if f := fams["http_errors_post_jobs_total"]; f.samples[""] != 1 {
		t.Errorf("errors family = %+v, want 1 (the 429)", f)
	}
	d, ok := fams["http_request_duration_us_post_jobs"]
	if !ok || d.typ != "histogram" {
		t.Fatalf("duration histogram missing: %+v", fams)
	}
	if d.count != 4 {
		t.Errorf("duration count = %d, want 4", d.count)
	}
	if d.samples["+Inf"] != 4 {
		t.Errorf("duration +Inf = %d, want 4", d.samples["+Inf"])
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.region_lifetime_cycles": "sim_region_lifetime_cycles",
		"cache.l1d.hits":             "cache_l1d_hits",
		"fault.outcome.SDC":          "fault_outcome_SDC",
		"9lives":                     "_9lives",
		"a b..c":                     "a_b_c",
		"":                           "_",
		"ok:name_1":                  "ok:name_1",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}
