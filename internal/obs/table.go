package obs

import (
	"fmt"
	"strings"
)

// Table is the shared render-ready result table: every tool that prints a
// stats or figure table (cmd/experiments, cmd/diag, metric snapshots) goes
// through this one renderer.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderMarkdown formats the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}
