package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLI bundles the observability flags the command-line tools share —
// -manifest (per-run JSON manifest), -metrics (metric snapshot JSON), and
// -serve (live observability server) — plus the finish/write sequence
// that used to be copy-pasted across cmd/experiments, cmd/faultcampaign,
// and cmd/trace. Register before flag.Parse; after the run, call
// WriteOutputs with the finished snapshot.
type CLI struct {
	tool     string
	manifest string
	metrics  string
	serve    string
	server   *Server
}

// RegisterCLI registers the shared observability flags on fs (typically
// flag.CommandLine) for the named tool.
func RegisterCLI(fs *flag.FlagSet, tool string) *CLI {
	c := &CLI{tool: tool}
	fs.StringVar(&c.manifest, "manifest", "",
		"write a per-run JSON manifest (config, wall times, metric snapshot) to this file")
	fs.StringVar(&c.metrics, "metrics", "",
		"write the run's metric snapshot JSON to this file")
	fs.StringVar(&c.serve, "serve", "",
		"serve live observability on this address while the run is in flight "+
			"(/metrics Prometheus, /snapshot.json, /runs, /live SSE, /debug/pprof), e.g. :9090")
	return c
}

// WantsOutput reports whether any file output flag is set.
func (c *CLI) WantsOutput() bool { return c.manifest != "" || c.metrics != "" }

// Serving reports whether -serve was requested.
func (c *CLI) Serving() bool { return c.serve != "" }

// NewManifest starts a manifest stamped with the tool name.
func (c *CLI) NewManifest() *Manifest { return NewManifest(c.tool) }

// StartServer starts the -serve server over the given snapshot provider,
// indexing run manifests from the current directory. It returns nil when
// -serve is unset. The bound address is announced on stderr so `-serve
// :0` is usable.
func (c *CLI) StartServer(snapshot func() Snapshot) (*Server, error) {
	if c.serve == "" {
		return nil, nil
	}
	srv := NewServer(ServerConfig{Snapshot: snapshot})
	addr, err := srv.Start(c.serve)
	if err != nil {
		return nil, err
	}
	c.server = srv
	fmt.Fprintf(os.Stderr, "%s: live observability on http://%s/ (metrics, snapshot.json, runs, live, debug/pprof)\n",
		c.tool, addr)
	return srv, nil
}

// CloseServer shuts the -serve server down, if one was started.
func (c *CLI) CloseServer() {
	if c.server != nil {
		c.server.Close()
		c.server = nil
	}
}

// WriteOutputs writes the flagged output files: the -metrics snapshot
// JSON and the -manifest run manifest (finished with snap). Each write is
// announced on w (pass os.Stdout; nil silences).
func (c *CLI) WriteOutputs(man *Manifest, snap Snapshot, w io.Writer) error {
	if w == nil {
		w = io.Discard
	}
	if c.metrics != "" {
		if err := WriteSnapshotFile(c.metrics, snap); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote metrics to %s\n", c.metrics)
	}
	if c.manifest != "" {
		man.Finish(snap)
		if err := man.WriteFile(c.manifest); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote run manifest to %s\n", c.manifest)
	}
	return nil
}

// WriteSnapshotFile writes the snapshot as indented JSON to path,
// atomically (temp file + rename), so a concurrent reader never sees a
// torn file.
func WriteSnapshotFile(path string, s Snapshot) error {
	return writeFileAtomic(path, func(w io.Writer) error { return s.WriteJSON(w) })
}
