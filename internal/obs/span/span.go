// Package span is the wall-clock half of the repo's tracing story. The
// cycle-domain obs.Tracer answers "where do the simulated cycles go";
// this package answers "where does the *real* time go" — queue wait vs.
// golden run vs. shard execution vs. checkpoint writes vs. merge — for
// one campaign job or a whole command-line run.
//
// Span context travels the same road as the olog correlation chain: a
// *Tracer rides a context.Context (Into), Start opens a child span of
// whatever span the context already carries, and every completed span is
// stamped with the request_id → job_id → shard → trial chain
// olog.FromContext finds. Completed spans land in a bounded retention
// ring (the substrate for GET /jobs/{id}/trace and /jobs/{id}/phases),
// stream to an optional obs.Sink through a background flusher, and feed
// span.<layer>.<name>_us duration histograms into a shared registry so
// /metrics carries the same phase timings the trace file details.
//
// The package follows the internal/obs discipline: the disabled path is
// free. A context without a tracer makes Start return the context
// unchanged and a nil *Span whose End is a nil-check — zero allocations,
// pinned by TestDisabledSpanZeroAlloc and BenchmarkDisabledSpans.
package span

import (
	"context"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/olog"
)

// Record is one completed span: a named wall-clock interval on a layer
// (service, fault, pipeline, cli), with its position in the span tree
// and the correlation chain it was recorded under. Shard and Trial are
// -1 when unset (0 is a valid index for both).
type Record struct {
	ID        uint64         `json:"id"`
	Parent    uint64         `json:"parent,omitempty"`
	Layer     string         `json:"layer"`
	Name      string         `json:"name"`
	Start     time.Time      `json:"start"`
	Dur       time.Duration  `json:"dur"`
	RequestID string         `json:"request_id,omitempty"`
	JobID     string         `json:"job_id,omitempty"`
	Shard     int            `json:"shard"`
	Trial     int            `json:"trial"`
	Args      map[string]any `json:"args,omitempty"`
}

// End returns the span's end time.
func (r Record) End() time.Time { return r.Start.Add(r.Dur) }

// Config parameterizes New.
type Config struct {
	// Capacity bounds the retained completed spans (default 8192). When
	// full, the oldest span is evicted; Dropped counts evictions.
	Capacity int
	// Metrics, when set, receives one span.<layer>.<name>_us duration
	// histogram per distinct span name — the /metrics view of the same
	// phase timings the trace details.
	Metrics *obs.Registry
	// Sink, when set, receives every completed span as an obs.Event
	// (JSONL or Chrome trace by sink type), flushed by a background
	// goroutine every FlushEvery. Close stops the flusher, flushes the
	// tail, and closes the sink.
	Sink obs.Sink
	// FlushEvery is the flusher cadence (default 1s). Only meaningful
	// with Sink set.
	FlushEvery time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Tracer collects completed wall-clock spans. A nil *Tracer is a valid
// disabled tracer: every method nil-checks the receiver.
type Tracer struct {
	cfg   Config
	epoch time.Time

	mu      sync.Mutex
	nextID  uint64
	ring    []Record
	next    int
	full    bool
	dropped uint64
	pending []Record // awaiting the flusher (Sink set only)
	closed  bool
	err     error

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a tracer. With cfg.Sink set, a background flusher starts
// immediately; stop it with Close (the retention ring outlives Close, so
// per-job queries keep working after shutdown).
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	t := &Tracer{cfg: cfg, epoch: cfg.Clock(), ring: make([]Record, cfg.Capacity)}
	if cfg.Sink != nil {
		t.done = make(chan struct{})
		t.wg.Add(1)
		go t.flushLoop()
	}
	return t
}

// Epoch is the tracer's time zero; exported trace timestamps are
// microseconds since it.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// scope is the context payload: which tracer records, and which span is
// the current parent.
type scope struct {
	t      *Tracer
	parent uint64
}

type scopeKey struct{}

// Into returns a context carrying the tracer (a nil tracer returns ctx
// unchanged). Spans started from the returned context are roots until
// Start nests them.
func Into(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, scope{t: t})
}

// FromContext returns the tracer riding ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	sc, _ := ctx.Value(scopeKey{}).(scope)
	return sc.t
}

// Detach returns a context with no tracer, preserving everything else
// (correlation chain included). Campaign workers use it so the per-trial
// hot loop under an instrumented shard span records no spans of its own.
func Detach(ctx context.Context) context.Context {
	if sc, ok := ctx.Value(scopeKey{}).(scope); !ok || sc.t == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, scope{})
}

// Span is one open interval. A nil *Span (the disabled path) accepts
// every method as a no-op.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	layer  string
	name   string
	start  time.Time
	corr   olog.Corr
	args   map[string]any
}

// Start opens a span on the context's tracer as a child of the context's
// current span, and returns a context under which further spans nest
// below this one. Without a tracer it returns ctx unchanged and a nil
// span, allocating nothing.
func Start(ctx context.Context, layer, name string) (context.Context, *Span) {
	sc, ok := ctx.Value(scopeKey{}).(scope)
	if !ok || sc.t == nil {
		return ctx, nil
	}
	t := sc.t
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{
		t:      t,
		id:     id,
		parent: sc.parent,
		layer:  layer,
		name:   name,
		start:  t.cfg.Clock(),
		corr:   olog.FromContext(ctx),
	}
	return context.WithValue(ctx, scopeKey{}, scope{t: t, parent: id}), s
}

// SetArg attaches one key/value to the span (shown in trace args).
func (s *Span) SetArg(key string, v any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = v
}

// End completes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(Record{
		ID:        s.id,
		Parent:    s.parent,
		Layer:     s.layer,
		Name:      s.name,
		Start:     s.start,
		Dur:       s.t.cfg.Clock().Sub(s.start),
		RequestID: s.corr.RequestID,
		JobID:     s.corr.JobID,
		Shard:     s.corr.Shard,
		Trial:     s.corr.Trial,
		Args:      s.args,
	})
}

// Record stores an already-measured interval — the retroactive form used
// where the span's start predates the code that learns about it (queue
// wait, backoff sleep, breaker open time). The context supplies the
// correlation chain and parent span; a nil tracer records nothing. An
// end before start clamps to a zero-length span.
func (t *Tracer) Record(ctx context.Context, layer, name string, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	dur := end.Sub(start)
	if dur < 0 {
		dur = 0
	}
	var parent uint64
	if sc, ok := ctx.Value(scopeKey{}).(scope); ok {
		parent = sc.parent
	}
	corr := olog.FromContext(ctx)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	t.record(Record{
		ID:        id,
		Parent:    parent,
		Layer:     layer,
		Name:      name,
		Start:     start,
		Dur:       dur,
		RequestID: corr.RequestID,
		JobID:     corr.JobID,
		Shard:     corr.Shard,
		Trial:     corr.Trial,
		Args:      args,
	})
}

// RecordCtx is the package-level retroactive record: the tracer comes
// from the context (no-op without one). Used by layers that only ever
// see a context, like the campaign engine's checkpoint writes.
func RecordCtx(ctx context.Context, layer, name string, start, end time.Time, args map[string]any) {
	sc, ok := ctx.Value(scopeKey{}).(scope)
	if !ok || sc.t == nil {
		return
	}
	sc.t.Record(ctx, layer, name, start, end, args)
}

// record stores one completed span: metrics histogram, retention ring,
// and the flusher's pending queue.
func (t *Tracer) record(r Record) {
	if r.Dur < 0 { // a clock step backwards must not panic downstream
		r.Dur = 0
	}
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Histogram("span."+r.Layer+"."+r.Name+"_us", obs.ExpBuckets(1, 4, 16)).
			Observe(uint64(r.Dur.Microseconds()))
	}
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.ring[t.next] = r
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	if t.cfg.Sink != nil && !t.closed {
		t.pending = append(t.pending, r)
	}
	t.mu.Unlock()
}

// snapshotLocked copies the ring oldest-first; the caller holds t.mu.
func (t *Tracer) snapshotLocked() []Record {
	if !t.full {
		return append([]Record(nil), t.ring[:t.next]...)
	}
	out := make([]Record, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Spans returns every retained span, oldest first.
func (t *Tracer) Spans() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// JobSpans returns the retained spans recorded under the given job ID,
// oldest first — the payload behind GET /jobs/{id}/trace.
func (t *Tracer) JobSpans(id string) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Record
	for _, r := range t.snapshotLocked() {
		if r.JobID == id {
			out = append(out, r)
		}
	}
	return out
}

// Dropped reports how many completed spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Err returns the first sink error seen, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// flushLoop is the background flusher: every FlushEvery it drains the
// pending queue into the sink. It exits when Close signals done.
func (t *Tracer) flushLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			t.flush()
		}
	}
}

// flush drains pending spans into the sink, latching the first error.
func (t *Tracer) flush() {
	t.mu.Lock()
	pend := t.pending
	t.pending = nil
	t.mu.Unlock()
	for _, r := range pend {
		if err := t.cfg.Sink.Emit(Event(t.epoch, r)); err != nil {
			t.mu.Lock()
			if t.err == nil {
				t.err = err
			}
			t.mu.Unlock()
			return
		}
	}
}

// Close stops the flusher, flushes the pending tail, and closes the
// sink. The retention ring survives — Spans and JobSpans keep serving —
// so a drained daemon can still answer /jobs/{id}/trace. Idempotent and
// nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return t.err
	}
	t.closed = true
	t.mu.Unlock()
	if t.done != nil {
		close(t.done)
		t.wg.Wait()
	}
	if t.cfg.Sink != nil {
		t.flush()
		if err := t.cfg.Sink.Close(); err != nil {
			t.mu.Lock()
			if t.err == nil {
				t.err = err
			}
			t.mu.Unlock()
		}
	}
	return t.Err()
}

// Event converts one record to the obs trace-event form: timestamps are
// microseconds since epoch, the layer becomes the track (one Perfetto
// lane per layer), and the args carry the span tree and correlation
// chain so a loaded trace can be filtered by request or job.
func Event(epoch time.Time, r Record) obs.Event {
	start := uint64(0)
	if r.Start.After(epoch) {
		start = uint64(r.Start.Sub(epoch).Microseconds())
	}
	args := map[string]any{"span_id": r.ID}
	if r.Parent != 0 {
		args["parent_id"] = r.Parent
	}
	if r.RequestID != "" {
		args["request_id"] = r.RequestID
	}
	if r.JobID != "" {
		args["job_id"] = r.JobID
	}
	if r.Shard >= 0 {
		args["shard"] = r.Shard
	}
	if r.Trial >= 0 {
		args["trial"] = r.Trial
	}
	for k, v := range r.Args {
		args[k] = v
	}
	return obs.Event{
		Kind:  obs.KindSpan,
		Track: r.Layer,
		Cat:   r.Layer,
		Name:  r.Name,
		Start: start,
		Dur:   uint64(r.Dur.Microseconds()),
		Args:  args,
	}
}

// WriteChrome writes the records as one Chrome trace-event JSON document
// (loadable in Perfetto / chrome://tracing) — the GET /jobs/{id}/trace
// payload.
func WriteChrome(w io.Writer, epoch time.Time, recs []Record) error {
	sink := obs.NewChromeSink(w)
	for _, r := range recs {
		if err := sink.Emit(Event(epoch, r)); err != nil {
			return err
		}
	}
	return sink.Close()
}
