package span

import (
	"strings"
	"testing"
	"time"
)

// mk builds a record spanning [start, start+dur] ms after a fixed epoch.
func mk(id, parent uint64, layer, name string, startMS, durMS int64) Record {
	epoch := time.Unix(1_700_000_000, 0)
	return Record{
		ID: id, Parent: parent, Layer: layer, Name: name,
		Start: epoch.Add(time.Duration(startMS) * time.Millisecond),
		Dur:   time.Duration(durMS) * time.Millisecond,
		Shard: -1, Trial: -1,
	}
}

func TestAnalyzeAttributionAndCriticalPath(t *testing.T) {
	// Window [0, 100]: queue_wait [0,10], attempt [10,95] with children
	// golden_run [12,30] and shard_exec [30,90] (which has a
	// checkpoint_write [50,60] child), persist [95,100]. Roots cover
	// [0,100] fully → 100% attributed.
	recs := []Record{
		mk(1, 0, "service", "queue_wait", 0, 10),
		mk(2, 0, "service", "attempt", 10, 85),
		mk(3, 2, "fault", "golden_run", 12, 18),
		mk(4, 2, "fault", "shard_exec", 30, 60),
		mk(5, 4, "fault", "checkpoint_write", 50, 10),
		mk(6, 0, "service", "persist", 95, 5),
	}
	rep := Analyze("job-1", recs)

	if rep.Spans != 6 || rep.JobID != "job-1" {
		t.Fatalf("header = %+v", rep)
	}
	if rep.WindowUS != 100_000 {
		t.Fatalf("WindowUS = %d, want 100000", rep.WindowUS)
	}
	if rep.AttributedUS != 100_000 || rep.AttributedPct != 100 {
		t.Fatalf("attribution = %dus (%.1f%%), want 100000us (100%%)",
			rep.AttributedUS, rep.AttributedPct)
	}
	if rep.Phases[0].Name != "attempt" || rep.Phases[0].TotalUS != 85_000 {
		t.Fatalf("dominant phase = %+v, want attempt 85ms", rep.Phases[0])
	}
	if got := int(rep.Phases[0].Pct); got != 85 {
		t.Fatalf("attempt pct = %d, want 85", got)
	}

	want := []string{"attempt", "shard_exec", "checkpoint_write"}
	if len(rep.CriticalPath) != len(want) {
		t.Fatalf("critical path = %+v, want %v", rep.CriticalPath, want)
	}
	for i, name := range want {
		if rep.CriticalPath[i].Name != name {
			t.Fatalf("critical path step %d = %q, want %q", i, rep.CriticalPath[i].Name, name)
		}
	}
}

func TestAnalyzeGapsReduceAttribution(t *testing.T) {
	// Two 10ms roots inside a 100ms window: 20% attributed.
	recs := []Record{
		mk(1, 0, "a", "x", 0, 10),
		mk(2, 0, "a", "y", 90, 10),
	}
	rep := Analyze("", recs)
	if rep.AttributedUS != 20_000 {
		t.Fatalf("AttributedUS = %d, want 20000", rep.AttributedUS)
	}
	if rep.AttributedPct < 19.9 || rep.AttributedPct > 20.1 {
		t.Fatalf("AttributedPct = %.2f, want 20", rep.AttributedPct)
	}
}

func TestAnalyzeOrphanParentIsRoot(t *testing.T) {
	// A span whose parent was evicted from the ring counts as a root —
	// attribution must not silently drop it.
	recs := []Record{mk(7, 99, "fault", "merge", 0, 50)}
	rep := Analyze("", recs)
	if rep.AttributedPct != 100 {
		t.Fatalf("orphan attribution = %.1f%%, want 100", rep.AttributedPct)
	}
	if rep.CriticalPath[0].Name != "merge" {
		t.Fatalf("critical path = %+v", rep.CriticalPath)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze("j", nil)
	if rep.Spans != 0 || rep.WindowUS != 0 || rep.AttributedPct != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	if out := rep.Table("t").Render(); !strings.Contains(out, "0 spans") {
		t.Fatalf("empty table render:\n%s", out)
	}
}

func TestReportTableRender(t *testing.T) {
	recs := []Record{
		mk(1, 0, "service", "attempt", 0, 90),
		mk(2, 1, "fault", "shard_exec", 5, 80),
	}
	out := Analyze("j", recs).Table("phase budget").Render()
	for _, want := range []string{
		"phase budget", "attempt", "shard_exec",
		"critical path: attempt 90.00ms → shard_exec 80.00ms",
		"attributed to named phases",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
