package span

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/olog"
)

func TestSpanTreeAndCorrelation(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Metrics: reg})
	defer tr.Close()

	ctx := olog.WithCorr(context.Background(), olog.Corr{
		RequestID: "req-1", JobID: "job-1", Shard: -1, Trial: -1,
	})
	ctx = Into(ctx, tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the installed tracer")
	}

	pctx, parent := Start(ctx, "service", "attempt")
	if parent == nil {
		t.Fatal("Start returned nil span with a tracer installed")
	}
	sctx := olog.WithShard(pctx, 3)
	_, child := Start(sctx, "fault", "shard_exec")
	child.SetArg("trials", 42)
	child.End()
	parent.End()

	recs := tr.JobSpans("job-1")
	if len(recs) != 2 {
		t.Fatalf("JobSpans = %d records, want 2", len(recs))
	}
	// Ring order is completion order: child first.
	c, p := recs[0], recs[1]
	if c.Name != "shard_exec" || p.Name != "attempt" {
		t.Fatalf("unexpected order: %q then %q", c.Name, p.Name)
	}
	if c.Parent != p.ID {
		t.Fatalf("child.Parent = %d, want parent ID %d", c.Parent, p.ID)
	}
	if p.Parent != 0 {
		t.Fatalf("root span has Parent = %d, want 0", p.Parent)
	}
	if c.RequestID != "req-1" || c.JobID != "job-1" || c.Shard != 3 {
		t.Fatalf("child correlation not captured: %+v", c)
	}
	if p.Shard != -1 {
		t.Fatalf("parent shard = %d, want -1 (unset)", p.Shard)
	}

	snap := reg.Snapshot()
	for _, name := range []string{"span.service.attempt_us", "span.fault.shard_exec_us"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %q missing from snapshot", name)
		}
	}
	if got := tr.JobSpans("absent"); got != nil {
		t.Fatalf("JobSpans(absent) = %v, want nil", got)
	}
}

func TestRetroactiveRecord(t *testing.T) {
	tr := New(Config{})
	ctx := Into(olog.WithJobID(context.Background(), "j1"), tr)
	ctx, sp := Start(ctx, "service", "attempt")

	start := time.Now().Add(-50 * time.Millisecond)
	tr.Record(ctx, "service", "queue_wait", start, time.Now(), map[string]any{"depth": 2})
	RecordCtx(ctx, "fault", "checkpoint_write", time.Now(), time.Now(), nil)
	// end before start clamps, never panics or goes negative
	tr.Record(ctx, "service", "weird", time.Now(), time.Now().Add(-time.Hour), nil)
	sp.End()

	recs := tr.Spans()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	qw := recs[0]
	if qw.Name != "queue_wait" || qw.Dur < 40*time.Millisecond {
		t.Fatalf("queue_wait = %+v", qw)
	}
	if qw.Parent == 0 {
		t.Fatal("retroactive record should nest under the context's span")
	}
	if qw.JobID != "j1" || qw.Args["depth"] != 2 {
		t.Fatalf("queue_wait correlation/args = %+v", qw)
	}
	if recs[2].Dur != 0 {
		t.Fatalf("clamped duration = %v, want 0", recs[2].Dur)
	}
}

func TestDisabledSpanZeroAlloc(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		c, s := Start(ctx, "service", "attempt")
		s.SetArg("k", 1)
		s.End()
		RecordCtx(c, "service", "queue_wait", start, start, nil)
		var nilT *Tracer
		nilT.Record(c, "service", "x", start, start, nil)
		nilT.Close()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

func TestDetachStopsRecording(t *testing.T) {
	tr := New(Config{})
	ctx := Into(context.Background(), tr)
	dctx := Detach(ctx)
	if FromContext(dctx) != nil {
		t.Fatal("Detach left a tracer in the context")
	}
	_, s := Start(dctx, "fault", "trial")
	if s != nil {
		t.Fatal("Start on detached context returned a live span")
	}
	// Detach without a tracer is the identity.
	base := context.Background()
	if Detach(base) != base {
		t.Fatal("Detach allocated a new context with no tracer present")
	}
}

func TestRingEvictionAndDropped(t *testing.T) {
	tr := New(Config{Capacity: 4})
	ctx := Into(context.Background(), tr)
	for i := 0; i < 6; i++ {
		_, s := Start(ctx, "l", "n")
		s.SetArg("i", i)
		s.End()
	}
	recs := tr.Spans()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want 4", len(recs))
	}
	if recs[0].Args["i"] != 2 || recs[3].Args["i"] != 5 {
		t.Fatalf("ring kept wrong window: first=%v last=%v", recs[0].Args["i"], recs[3].Args["i"])
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestFlusherStreamsJSONL(t *testing.T) {
	var buf syncBuffer
	tr := New(Config{Sink: obs.NewJSONLSink(&buf), FlushEvery: time.Millisecond})
	ctx := Into(olog.WithRequestID(context.Background(), "req-9"), tr)
	_, s := Start(ctx, "service", "attempt")
	s.End()

	deadline := time.Now().Add(5 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("flusher wrote nothing before Close")
	}
	var ev obs.Event
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &ev); err != nil {
		t.Fatalf("flushed line is not an obs.Event: %v", err)
	}
	if ev.Name != "attempt" || ev.Args["request_id"] != "req-9" {
		t.Fatalf("flushed event = %+v", ev)
	}
	// Close is idempotent, and the ring outlives it.
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if len(tr.Spans()) != 1 {
		t.Fatal("retention ring did not survive Close")
	}
}

func TestWriteChromeIsValidTrace(t *testing.T) {
	tr := New(Config{})
	ctx := Into(olog.WithCorr(context.Background(), olog.Corr{
		RequestID: "r", JobID: "j", Shard: -1, Trial: -1,
	}), tr)
	_, a := Start(ctx, "service", "attempt")
	a.End()
	_, b := Start(ctx, "fault", "golden_run")
	b.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Epoch(), tr.Spans()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not Chrome trace JSON: %v", err)
	}
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		if ev.Args["request_id"] != "r" || ev.Args["job_id"] != "j" {
			t.Fatalf("span %q missing correlation args: %+v", ev.Name, ev.Args)
		}
		if _, ok := ev.Args["span_id"]; !ok {
			t.Fatalf("span %q missing span_id", ev.Name)
		}
	}
	if spans != 2 {
		t.Fatalf("trace has %d complete spans, want 2", spans)
	}
}

func BenchmarkDisabledSpans(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "service", "attempt")
		s.End()
	}
}

func BenchmarkEnabledSpans(b *testing.B) {
	tr := New(Config{Capacity: 1024})
	ctx := Into(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "service", "attempt")
		s.End()
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for flusher tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
