package span

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Phase-budget analysis: roll a job's completed spans into wall-time per
// named phase, the fraction of the job window attributed to any phase,
// and the critical path (the chain of longest spans from the dominant
// root down). This is the answer to "where did this job's real time go"
// — the measurement the trial-throughput speed campaign starts from.

// PhaseStat is the aggregate for one layer/name phase.
type PhaseStat struct {
	Layer   string  `json:"layer"`
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalUS int64   `json:"total_us"`
	Pct     float64 `json:"pct"` // of the job window
}

// PathStep is one hop on the critical path, root first.
type PathStep struct {
	Layer string  `json:"layer"`
	Name  string  `json:"name"`
	DurUS int64   `json:"dur_us"`
	Pct   float64 `json:"pct"` // of the job window
}

// Report is the phase budget for one span set.
type Report struct {
	JobID         string      `json:"job_id,omitempty"`
	Spans         int         `json:"spans"`
	WindowUS      int64       `json:"window_us"`      // first span start → last span end
	AttributedUS  int64       `json:"attributed_us"`  // union of root-span intervals
	AttributedPct float64     `json:"attributed_pct"` // attributed / window
	Phases        []PhaseStat `json:"phases"`
	CriticalPath  []PathStep  `json:"critical_path"`
}

// Analyze rolls completed spans into a phase budget. The window is the
// hull [min start, max end]; attribution is the interval union of root
// spans (spans whose parent is absent from the set), so nested children
// never double-count; phases group by layer+name; the critical path
// starts at the longest root and repeatedly descends into the longest
// child.
func Analyze(jobID string, recs []Record) *Report {
	rep := &Report{JobID: jobID, Spans: len(recs)}
	if len(recs) == 0 {
		return rep
	}

	present := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		present[r.ID] = true
	}
	children := map[uint64][]Record{}
	var roots []Record
	minStart := recs[0].Start
	maxEnd := recs[0].End()
	for _, r := range recs {
		if r.Start.Before(minStart) {
			minStart = r.Start
		}
		if e := r.End(); e.After(maxEnd) {
			maxEnd = e
		}
		if r.Parent != 0 && present[r.Parent] {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			roots = append(roots, r)
		}
	}
	window := maxEnd.Sub(minStart)
	rep.WindowUS = window.Microseconds()

	// Attribution: sweep the union of root intervals.
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	var attributed time.Duration
	curStart, curEnd := roots[0].Start, roots[0].End()
	for _, r := range roots[1:] {
		if !r.Start.After(curEnd) {
			if e := r.End(); e.After(curEnd) {
				curEnd = e
			}
			continue
		}
		attributed += curEnd.Sub(curStart)
		curStart, curEnd = r.Start, r.End()
	}
	attributed += curEnd.Sub(curStart)
	rep.AttributedUS = attributed.Microseconds()
	if window > 0 {
		rep.AttributedPct = 100 * float64(attributed) / float64(window)
	}

	// Phase totals by layer/name.
	type key struct{ layer, name string }
	totals := map[key]*PhaseStat{}
	for _, r := range recs {
		k := key{r.Layer, r.Name}
		st := totals[k]
		if st == nil {
			st = &PhaseStat{Layer: r.Layer, Name: r.Name}
			totals[k] = st
		}
		st.Count++
		st.TotalUS += r.Dur.Microseconds()
	}
	for _, st := range totals {
		if rep.WindowUS > 0 {
			st.Pct = 100 * float64(st.TotalUS) / float64(rep.WindowUS)
		}
		rep.Phases = append(rep.Phases, *st)
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		if rep.Phases[i].TotalUS != rep.Phases[j].TotalUS {
			return rep.Phases[i].TotalUS > rep.Phases[j].TotalUS
		}
		if rep.Phases[i].Layer != rep.Phases[j].Layer {
			return rep.Phases[i].Layer < rep.Phases[j].Layer
		}
		return rep.Phases[i].Name < rep.Phases[j].Name
	})

	// Critical path: longest root, then repeatedly the longest child.
	longest := func(rs []Record) Record {
		best := rs[0]
		for _, r := range rs[1:] {
			if r.Dur > best.Dur {
				best = r
			}
		}
		return best
	}
	cur := longest(roots)
	for depth := 0; depth < 64; depth++ {
		step := PathStep{Layer: cur.Layer, Name: cur.Name, DurUS: cur.Dur.Microseconds()}
		if rep.WindowUS > 0 {
			step.Pct = 100 * float64(step.DurUS) / float64(rep.WindowUS)
		}
		rep.CriticalPath = append(rep.CriticalPath, step)
		kids := children[cur.ID]
		if len(kids) == 0 {
			break
		}
		cur = longest(kids)
	}
	return rep
}

// fmtUS renders microseconds as a human duration.
func fmtUS(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// Table renders the report as an obs.Table: one row per phase sorted by
// wall time, with the window, attribution, and critical path as notes.
func (r *Report) Table(title string) *obs.Table {
	t := &obs.Table{
		Title:  title,
		Header: []string{"PHASE", "LAYER", "COUNT", "WALL", "% OF WINDOW"},
	}
	for _, p := range r.Phases {
		t.Rows = append(t.Rows, []string{
			p.Name, p.Layer, fmt.Sprintf("%d", p.Count),
			fmtUS(p.TotalUS), fmt.Sprintf("%.1f%%", p.Pct),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"window %s across %d spans; %.1f%% attributed to named phases",
		fmtUS(r.WindowUS), r.Spans, r.AttributedPct))
	if len(r.CriticalPath) > 0 {
		steps := make([]string, len(r.CriticalPath))
		for i, s := range r.CriticalPath {
			steps[i] = fmt.Sprintf("%s %s", s.Name, fmtUS(s.DurUS))
		}
		t.Notes = append(t.Notes, "critical path: "+strings.Join(steps, " → "))
	}
	return t
}
