package obs

import (
	"strings"
	"testing"
)

// TestTableColumnWidths checks that every rendered row pads its cells to
// the widest entry of each column, so columns line up regardless of
// content.
func TestTableColumnWidths(t *testing.T) {
	tab := Table{
		Title:  "widths",
		Header: []string{"name", "v"},
		Rows:   [][]string{{"a", "1"}, {"much-longer-name", "22"}},
	}
	lines := strings.Split(strings.TrimRight(tab.Render(), "\n"), "\n")
	// lines: [0] title, [1] header, [2] dashes, [3..] rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), tab.Render())
	}
	// The second column must start at the same offset in every body line:
	// one past the widest first-column cell plus the two-space separator.
	wantOffset := len("much-longer-name") + 2
	for _, ln := range lines[1:] {
		col2 := strings.TrimRight(ln[wantOffset:], " ")
		if strings.Contains(col2, "  ") {
			t.Errorf("column 2 misaligned in %q", ln)
		}
		if len(ln) < wantOffset {
			t.Errorf("line %q shorter than first column width", ln)
		}
	}
	// Dashes row underlines each column to its full width.
	if !strings.HasPrefix(lines[2], strings.Repeat("-", len("much-longer-name"))) {
		t.Errorf("dash row %q does not span column 1", lines[2])
	}
}

// TestTableEmpty renders a header-only table without panicking and without
// phantom rows.
func TestTableEmpty(t *testing.T) {
	tab := Table{Title: "empty", Header: []string{"a", "b"}}
	text := tab.Render()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 3 { // title, header, dashes
		t.Fatalf("empty table rendered %d lines, want 3:\n%s", len(lines), text)
	}
	md := tab.RenderMarkdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("empty markdown table:\n%s", md)
	}
}

// TestTableWideCell checks that one very wide cell stretches its whole
// column (header included) rather than colliding with its neighbor.
func TestTableWideCell(t *testing.T) {
	wide := strings.Repeat("x", 60)
	tab := Table{
		Title:  "wide",
		Header: []string{"k", "v"},
		Rows:   [][]string{{wide, "1"}, {"short", "2"}},
	}
	lines := strings.Split(strings.TrimRight(tab.Render(), "\n"), "\n")
	headerIdx := strings.Index(lines[1], "v")
	if headerIdx != 60+2 {
		t.Errorf("header column 2 at offset %d, want %d", headerIdx, 62)
	}
	for i, ln := range lines[3:] {
		if got := ln[62:63]; got != "1" && got != "2" {
			t.Errorf("row %d value cell misplaced: %q", i, ln)
		}
	}
	// Markdown escapes pipes so wide/odd cells cannot break the table.
	pipeTab := Table{Title: "p", Header: []string{"h"}, Rows: [][]string{{"a|b"}}}
	if !strings.Contains(pipeTab.RenderMarkdown(), `a\|b`) {
		t.Error("markdown render must escape | in cells")
	}
}
