package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Span("a", "b", "c", 1, 2, nil) // must not panic
	tr.Instant("a", "b", "c", 1, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should return nil")
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLSink(&buf))
	tr.Span("regions", "region", "R0", 10, 25, map[string]any{"insts": 7})
	tr.Instant("sensor", "strike", "strike", 12, nil)
	tr.Span("regions", "region", "R1", 30, 30, nil)  // zero-length
	tr.Span("regions", "region", "bad", 50, 40, nil) // end before start: clamped
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != KindSpan || first.Track != "regions" || first.Start != 10 || first.Dur != 15 {
		t.Fatalf("round trip = %+v", first)
	}
	if v, ok := first.Args["insts"].(float64); !ok || v != 7 {
		t.Fatalf("args lost: %+v", first.Args)
	}
	var clamped Event
	if err := json.Unmarshal([]byte(lines[3]), &clamped); err != nil {
		t.Fatal(err)
	}
	if clamped.Dur != 0 {
		t.Fatalf("end<start span should clamp to zero dur, got %d", clamped.Dur)
	}
}

func TestChromeSinkDocument(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewChromeSink(&buf))
	tr.Span("regions", "region", "R0", 0, 10, map[string]any{"x": 1})
	tr.Span("store-buffer", "sb-quarantined", "store", 4, 9, nil)
	tr.Instant("sensor", "strike", "strike", 5, nil)
	tr.Span("regions", "region", "", 11, 11, nil) // empty name, zero dur
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta int
	tids := map[string]map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		switch ph {
		case "X":
			spans++
			if ev["dur"].(float64) < 1 {
				t.Fatalf("zero-duration span not widened: %+v", ev)
			}
			if ev["name"].(string) == "" {
				t.Fatalf("empty span name survived: %+v", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
			name := ev["args"].(map[string]any)["name"].(string)
			if tids[name] == nil {
				tids[name] = map[float64]bool{}
			}
			tids[name][ev["tid"].(float64)] = true
		}
	}
	if spans != 3 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 3/1", spans, instants)
	}
	if meta != 3 { // regions, store-buffer, sensor
		t.Fatalf("thread metadata = %d tracks, want 3", meta)
	}
	for name, set := range tids {
		if len(set) != 1 {
			t.Fatalf("track %q mapped to %d tids", name, len(set))
		}
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewTextSink(&buf))
	tr.Span("regions", "region", "R0", 3, 8, map[string]any{"b": 2, "a": 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "R0") || !strings.Contains(out, "regions") {
		t.Fatalf("text sink output:\n%s", out)
	}
	// Args render in sorted key order for deterministic output.
	if strings.Index(out, "a=1") > strings.Index(out, "b=2") {
		t.Fatalf("args not sorted:\n%s", out)
	}
}

func TestSinkForPath(t *testing.T) {
	var buf bytes.Buffer
	if _, ok := SinkForPath(&buf, "out.jsonl").(*JSONLSink); !ok {
		t.Fatal(".jsonl should pick JSONLSink")
	}
	if _, ok := SinkForPath(&buf, "out.txt").(*TextSink); !ok {
		t.Fatal(".txt should pick TextSink")
	}
	if _, ok := SinkForPath(&buf, "out.json").(*ChromeSink); !ok {
		t.Fatal(".json should pick ChromeSink")
	}
	if _, ok := SinkForPath(&buf, "out").(*ChromeSink); !ok {
		t.Fatal("default should pick ChromeSink")
	}
}

// errSink fails on the nth emit, to exercise error latching.
type errSink struct{ n, seen int }

func (e *errSink) Emit(Event) error {
	e.seen++
	if e.seen > e.n {
		return errors.New("sink full")
	}
	return nil
}
func (e *errSink) Close() error { return nil }

func TestTracerLatchesFirstError(t *testing.T) {
	sink := &errSink{n: 1}
	tr := NewTracer(sink)
	tr.Instant("t", "c", "ok", 1, nil)
	tr.Instant("t", "c", "fails", 2, nil)
	tr.Instant("t", "c", "dropped", 3, nil)
	if tr.Enabled() {
		t.Fatal("tracer still enabled after sink error")
	}
	if sink.seen != 2 {
		t.Fatalf("sink saw %d emits after error, want 2", sink.seen)
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close should report the latched error")
	}
}

// FuzzSinkEvents feeds pathological events (empty names, huge timestamps,
// end-before-start spans, weird tracks) through every sink: none may
// panic, JSONL output must round-trip through encoding/json, and the
// Chrome document must stay valid JSON.
func FuzzSinkEvents(f *testing.F) {
	f.Add("", "", "", uint64(0), uint64(0), true)
	f.Add("regions", "region", "R0", uint64(10), uint64(5), false)
	f.Add("a\nb", "c\x00d", "名前", uint64(1<<63), uint64(1), true)
	f.Add("t", "c", `quote"back\slash`, uint64(42), uint64(42), false)
	f.Fuzz(func(t *testing.T, track, cat, name string, start, end uint64, instant bool) {
		var jbuf, cbuf, tbuf bytes.Buffer
		jt := NewTracer(NewJSONLSink(&jbuf))
		ct := NewTracer(NewChromeSink(&cbuf))
		tt := NewTracer(NewTextSink(&tbuf))
		for _, tr := range []*Tracer{jt, ct, tt} {
			if instant {
				tr.Instant(track, cat, name, start, nil)
			} else {
				tr.Span(track, cat, name, start, end, map[string]any{"k": start})
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("sink error on pathological input: %v", err)
			}
		}
		for _, line := range strings.Split(strings.TrimSpace(jbuf.String()), "\n") {
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("JSONL line does not round-trip: %v\n%s", err, line)
			}
			// encoding/json replaces invalid UTF-8 with U+FFFD, so exact
			// equality only holds for valid strings.
			if utf8.ValidString(track) && utf8.ValidString(name) &&
				(ev.Track != track || ev.Name != name) {
				t.Fatalf("JSONL round trip mangled fields: %+v", ev)
			}
		}
		var doc map[string]any
		if err := json.Unmarshal(cbuf.Bytes(), &doc); err != nil {
			t.Fatalf("chrome doc invalid: %v", err)
		}
		if _, ok := doc["traceEvents"]; !ok {
			t.Fatal("chrome doc missing traceEvents")
		}
	})
}
