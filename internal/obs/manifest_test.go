package obs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("test-tool")
	if m.Tool != "test-tool" || m.GoVersion == "" || m.StartedAt.IsZero() {
		t.Fatalf("NewManifest missing stamps: %+v", m)
	}
	m.Config["scale_pct"] = 10
	m.Config["wcdl"] = 10
	m.Workloads = []string{"gcc", "lbm"}
	m.Seed = 42
	m.Extra["note"] = "hello"

	r := NewRegistry()
	r.Counter("sim.insts").Add(99)
	m.Finish(r.Snapshot())
	if m.Metrics == nil || m.Metrics.Counters["sim.insts"] != 99 {
		t.Fatalf("Finish did not attach metrics: %+v", m.Metrics)
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "test-tool" || got.Seed != 42 || len(got.Workloads) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Metrics.Counters["sim.insts"] != 99 {
		t.Fatalf("metrics lost in round trip: %+v", got.Metrics)
	}
	if got.Config["scale_pct"].(float64) != 10 {
		t.Fatalf("config lost: %+v", got.Config)
	}
	if got.Extra["note"].(string) != "hello" {
		t.Fatalf("extra lost: %+v", got.Extra)
	}
}

// TestWriteFileAtomic pins the atomicity contract: a failed write leaves
// the destination untouched and no temp files behind, a successful write
// replaces it in one rename, and temp names never match the *.json glob
// the /runs index and cmd/bench scan.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	if err := os.WriteFile(path, []byte(`{"tool":"old"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	wantErr := errors.New("boom")
	err := writeFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != `{"tool":"old"}` {
		t.Fatalf("failed write clobbered destination: %q, %v", b, err)
	}

	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, `{"tool":"new"}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != `{"tool":"new"}` {
		t.Fatalf("successful write not visible: %q", b)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "run.json" {
			t.Errorf("leftover temp file %q", e.Name())
		}
		if matched, _ := filepath.Match("*.json", e.Name()); matched && e.Name() != "run.json" {
			t.Errorf("temp file %q matches the manifest glob", e.Name())
		}
	}
}
