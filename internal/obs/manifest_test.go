package obs

import (
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("test-tool")
	if m.Tool != "test-tool" || m.GoVersion == "" || m.StartedAt.IsZero() {
		t.Fatalf("NewManifest missing stamps: %+v", m)
	}
	m.Config["scale_pct"] = 10
	m.Config["wcdl"] = 10
	m.Workloads = []string{"gcc", "lbm"}
	m.Seed = 42
	m.Extra["note"] = "hello"

	r := NewRegistry()
	r.Counter("sim.insts").Add(99)
	m.Finish(r.Snapshot())
	if m.Metrics == nil || m.Metrics.Counters["sim.insts"] != 99 {
		t.Fatalf("Finish did not attach metrics: %+v", m.Metrics)
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "test-tool" || got.Seed != 42 || len(got.Workloads) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Metrics.Counters["sim.insts"] != 99 {
		t.Fatalf("metrics lost in round trip: %+v", got.Metrics)
	}
	if got.Config["scale_pct"].(float64) != 10 {
		t.Fatalf("config lost: %+v", got.Config)
	}
	if got.Extra["note"].(string) != "hello" {
		t.Fatalf("extra lost: %+v", got.Extra)
	}
}
