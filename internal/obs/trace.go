package obs

// Cycle-domain tracer. Events carry simulated-cycle timestamps, not wall
// time: the simulator emits spans (region lifetimes, verification windows,
// recovery episodes, store-buffer residency) and instants (cache misses,
// strikes, detections) onto named tracks, and a Sink serializes them. The
// ChromeSink output loads directly in Perfetto / chrome://tracing with one
// thread lane per track.

// Event kinds.
const (
	KindSpan    = "span"
	KindInstant = "instant"
)

// Event is one trace record. Start and Dur are in simulated cycles.
type Event struct {
	Kind  string         `json:"kind"`
	Track string         `json:"track"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	Start uint64         `json:"start"`
	Dur   uint64         `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Sink consumes events. Implementations must tolerate pathological input
// (empty names, zero-length spans, out-of-order timestamps) without
// panicking; Close flushes buffered state.
type Sink interface {
	Emit(ev Event) error
	Close() error
}

// Tracer fans events into one sink, latching the first error. A nil
// *Tracer is a valid no-op: every method nil-checks the receiver, so
// holders need exactly one branch to skip disabled tracing.
type Tracer struct {
	sink Sink
	err  error
}

// NewTracer wraps a sink. A nil sink yields a disabled tracer.
func NewTracer(s Sink) *Tracer {
	if s == nil {
		return nil
	}
	return &Tracer{sink: s}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil && t.err == nil }

// Span records a [start, end] interval on a track. end < start is clamped
// to a zero-length span at start (pathological runs must not panic).
func (t *Tracer) Span(track, cat, name string, start, end uint64, args map[string]any) {
	if !t.Enabled() {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	t.emit(Event{Kind: KindSpan, Track: track, Cat: cat, Name: name, Start: start, Dur: dur, Args: args})
}

// Instant records a point event.
func (t *Tracer) Instant(track, cat, name string, at uint64, args map[string]any) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{Kind: KindInstant, Track: track, Cat: cat, Name: name, Start: at, Args: args})
}

func (t *Tracer) emit(ev Event) {
	if err := t.sink.Emit(ev); err != nil && t.err == nil {
		t.err = err
	}
}

// Err returns the first sink error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Close flushes the sink and returns the first error seen.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	if err := t.sink.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
