package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Campaign shard workers emit wall-clock spans into one sink from many
// goroutines; Emit/Close must serialize internally. Run under -race.
func TestSinksConcurrentEmit(t *testing.T) {
	const goroutines, perG = 8, 200

	hammer := func(s Sink) {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					ev := Event{
						Kind: KindSpan, Track: fmt.Sprintf("track-%d", g),
						Cat: "test", Name: fmt.Sprintf("ev-%d-%d", g, i),
						Start: uint64(i), Dur: 1,
					}
					if err := s.Emit(ev); err != nil {
						t.Errorf("Emit: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}

	t.Run("jsonl", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		hammer(s)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != goroutines*perG {
			t.Fatalf("got %d lines, want %d", len(lines), goroutines*perG)
		}
		for _, ln := range lines { // no interleaved/torn lines
			var ev Event
			if err := json.Unmarshal([]byte(ln), &ev); err != nil {
				t.Fatalf("torn JSONL line %q: %v", ln, err)
			}
		}
	})

	t.Run("chrome", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewChromeSink(&buf)
		hammer(s)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("not valid Chrome trace JSON: %v", err)
		}
		// goroutines thread_name metadata records + all emitted events
		if got, want := len(doc.TraceEvents), goroutines*perG+goroutines; got != want {
			t.Fatalf("trace has %d events, want %d", got, want)
		}
	})

	t.Run("text", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewTextSink(&buf)
		hammer(s)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != goroutines*perG {
			t.Fatalf("got %d lines, want %d", len(lines), goroutines*perG)
		}
	})
}
