package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").SetMax(5) // lower: must not shrink
	r.Gauge("g").SetMax(9)
	if got := r.Gauge("g").Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	h := r.Histogram("h", LinearBuckets(0, 10, 4))
	for _, v := range []uint64{0, 5, 10, 11, 35, 1000} {
		h.Observe(v)
	}
	// Same name returns the same histogram regardless of bounds argument.
	if r.Histogram("h", nil) != h {
		t.Fatal("histogram not memoized by name")
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	if hs.Count != 6 || hs.Sum != 1061 || hs.Min != 0 || hs.Max != 1000 {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("counts len %d, bounds len %d", len(hs.Counts), len(hs.Bounds))
	}
	if hs.Counts[len(hs.Counts)-1] != 2 { // 35 and 1000 overflow bound 30
		t.Fatalf("overflow bucket = %d, want 2", hs.Counts[len(hs.Counts)-1])
	}
	var total uint64
	for _, c := range hs.Counts {
		total += c
	}
	if total != hs.Count {
		t.Fatalf("bucket sum %d != count %d", total, hs.Count)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", nil).Observe(uint64(j))
				r.Gauge("g").SetMax(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestSnapshotMergeDiff(t *testing.T) {
	a := NewRegistry()
	a.Counter("x").Add(10)
	a.Gauge("g").Set(3)
	a.Histogram("h", LinearBuckets(0, 1, 4)).Observe(2)

	b := NewRegistry()
	b.Counter("x").Add(5)
	b.Counter("y").Add(1)
	b.Gauge("g").Set(8)
	b.Histogram("h", LinearBuckets(0, 1, 4)).Observe(3)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["x"] != 15 || m.Counters["y"] != 1 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 8 { // gauges merge by max
		t.Fatalf("merged gauge = %d, want 8", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Sum != 5 || h.Min != 2 || h.Max != 3 {
		t.Fatalf("merged hist = %+v", h)
	}

	d := m.Diff(a.Snapshot())
	if d.Counters["x"] != 5 || d.Counters["y"] != 1 {
		t.Fatalf("diff counters = %v", d.Counters)
	}
	// Clamped subtraction: diffing against a larger snapshot yields zero,
	// not underflow.
	d2 := a.Snapshot().Diff(m)
	if d2.Counters["x"] != 0 {
		t.Fatalf("clamped diff = %d, want 0", d2.Counters["x"])
	}
}

// TestDiffGaugeKeepsLastValue pins the documented gauge semantics of Diff:
// a gauge is a level, not a flow, so the current reading survives the
// subtraction untouched — even when the previous reading was higher.
func TestDiffGaugeKeepsLastValue(t *testing.T) {
	prev := NewRegistry()
	prev.Gauge("occ").Set(7)
	cur := NewRegistry()
	cur.Gauge("occ").Set(3)
	cur.Gauge("fresh").Set(-2)

	d := cur.Snapshot().Diff(prev.Snapshot())
	if d.Gauges["occ"] != 3 {
		t.Errorf("gauge occ = %d after Diff, want last value 3 (not 3-7)", d.Gauges["occ"])
	}
	if d.Gauges["fresh"] != -2 {
		t.Errorf("gauge fresh = %d, want -2 carried through", d.Gauges["fresh"])
	}
	if _, ok := d.Gauges["missing"]; ok {
		t.Error("Diff invented a gauge absent from the current snapshot")
	}
}

// TestDiffHistogramShapeMismatch pins the fallback for histograms whose
// bucket layout changed between snapshots: bucket-wise subtraction is
// impossible, so the current histogram passes through whole.
func TestDiffHistogramShapeMismatch(t *testing.T) {
	prev := NewRegistry()
	ph := prev.Histogram("h", LinearBuckets(0, 1, 4))
	ph.Observe(1)
	ph.Observe(2)
	cur := NewRegistry()
	ch := cur.Histogram("h", LinearBuckets(0, 1, 8)) // different layout
	ch.Observe(3)
	cur.Histogram("only_cur", LinearBuckets(0, 1, 4)).Observe(5)

	d := cur.Snapshot().Diff(prev.Snapshot())
	got := d.Histograms["h"]
	want := cur.Snapshot().Histograms["h"]
	if got.Count != want.Count || got.Sum != want.Sum || len(got.Counts) != len(want.Counts) {
		t.Errorf("mismatched-shape diff = %+v, want current passed through %+v", got, want)
	}
	// A histogram with no prior also passes through whole.
	oc := d.Histograms["only_cur"]
	if oc.Count != 1 || oc.Sum != 5 {
		t.Errorf("no-prior histogram = %+v, want count 1 sum 5", oc)
	}
}

func TestSnapshotMergeShapeMismatch(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", LinearBuckets(0, 1, 4)).Observe(1)
	b := NewRegistry()
	bh := b.Histogram("h", LinearBuckets(0, 1, 8))
	bh.Observe(2)
	bh.Observe(9)
	m := a.Snapshot().Merge(b.Snapshot())
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 12 {
		t.Fatalf("mismatched-shape merge lost observations: %+v", h)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.insts").Add(123)
	r.Gauge("sim.clq_occ_max").Set(4)
	r.Histogram("sim.sb_occupancy", LinearBuckets(0, 1, 8)).Observe(3)
	want := r.Snapshot()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["sim.insts"] != 123 || got.Gauges["sim.clq_occ_max"] != 4 {
		t.Fatalf("round trip lost values: %+v", got)
	}
	h := got.Histograms["sim.sb_occupancy"]
	if h.Count != 1 || h.Sum != 3 {
		t.Fatalf("round trip lost histogram: %+v", h)
	}
}

func TestSnapshotRenderText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("z.gauge").Set(-3)
	r.Histogram("m.hist", nil).Observe(10)
	out := r.Snapshot().RenderText("metrics")
	for _, want := range []string{"metrics", "a.count", "b.count", "z.gauge", "m.hist", "-3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: a.count before b.count.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
}

func TestBucketGenerators(t *testing.T) {
	exp := ExpBuckets(1, 2, 5)
	if len(exp) != 5 {
		t.Fatalf("ExpBuckets len = %d", len(exp))
	}
	for i := 1; i < len(exp); i++ {
		if exp[i] <= exp[i-1] {
			t.Fatalf("ExpBuckets not strictly increasing: %v", exp)
		}
	}
	lin := LinearBuckets(0, 10, 4)
	if lin[0] != 0 || lin[3] != 30 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"col1", "longer-col"},
		Rows:   [][]string{{"a", "b"}, {"wide-value", "c"}},
		Notes:  []string{"a note"},
	}
	text := tab.Render()
	if !strings.Contains(text, "== demo ==") || !strings.Contains(text, "wide-value") ||
		!strings.Contains(text, "note: a note") {
		t.Fatalf("text render:\n%s", text)
	}
	md := tab.RenderMarkdown()
	if !strings.Contains(md, "| col1") || !strings.Contains(md, "| ---") {
		t.Fatalf("markdown render:\n%s", md)
	}
}
