package ir

import "repro/internal/isa"

// Builder is a convenience layer for constructing IR functions, used by the
// workload generators and tests. It appends instructions to a current block
// and wires control-flow edges.
type Builder struct {
	F   *Func
	cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block.
func NewBuilder(name string) *Builder {
	f := &Func{Name: name}
	b := &Builder{F: f}
	b.cur = f.NewBlock()
	return b
}

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// NewBlock creates a block without switching to it.
func (b *Builder) NewBlock() *Block { return b.F.NewBlock() }

// SetBlock moves the insertion point.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// VReg allocates a fresh virtual register.
func (b *Builder) VReg() VReg { return b.F.NewVReg() }

func (b *Builder) emit(in Instr) { b.cur.Instrs = append(b.cur.Instrs, in) }

// MovI loads a constant into a fresh register.
func (b *Builder) MovI(imm int64) VReg {
	d := b.VReg()
	b.emit(Instr{Op: isa.MOVI, Dst: d, Src1: NoReg, Src2: NoReg, Imm: imm})
	return d
}

// MovITo loads a constant into an existing register.
func (b *Builder) MovITo(dst VReg, imm int64) {
	b.emit(Instr{Op: isa.MOVI, Dst: dst, Src1: NoReg, Src2: NoReg, Imm: imm})
}

// Mov copies src into a fresh register.
func (b *Builder) Mov(src VReg) VReg {
	d := b.VReg()
	b.emit(Instr{Op: isa.MOV, Dst: d, Src1: src, Src2: NoReg})
	return d
}

// MovTo copies src into dst.
func (b *Builder) MovTo(dst, src VReg) {
	b.emit(Instr{Op: isa.MOV, Dst: dst, Src1: src, Src2: NoReg})
}

// Op emits a three-address ALU op into a fresh register.
func (b *Builder) Op(op isa.Op, s1, s2 VReg) VReg {
	d := b.VReg()
	b.emit(Instr{Op: op, Dst: d, Src1: s1, Src2: s2})
	return d
}

// OpTo emits a three-address ALU op into an existing register.
func (b *Builder) OpTo(op isa.Op, dst, s1, s2 VReg) {
	b.emit(Instr{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

// OpI emits an ALU op with an immediate second operand.
func (b *Builder) OpI(op isa.Op, s1 VReg, imm int64) VReg {
	d := b.VReg()
	b.emit(Instr{Op: op, Dst: d, Src1: s1, Src2: NoReg, Imm: imm, HasImm: true})
	return d
}

// OpITo emits an immediate ALU op into an existing register.
func (b *Builder) OpITo(op isa.Op, dst, s1 VReg, imm int64) {
	b.emit(Instr{Op: op, Dst: dst, Src1: s1, Src2: NoReg, Imm: imm, HasImm: true})
}

// Load emits dst = mem[base+off] into a fresh register.
func (b *Builder) Load(base VReg, off int64) VReg {
	d := b.VReg()
	b.emit(Instr{Op: isa.LD, Dst: d, Src1: base, Src2: NoReg, Imm: off})
	return d
}

// LoadTo emits dst = mem[base+off].
func (b *Builder) LoadTo(dst, base VReg, off int64) {
	b.emit(Instr{Op: isa.LD, Dst: dst, Src1: base, Src2: NoReg, Imm: off})
}

// Store emits mem[base+off] = val as a program store.
func (b *Builder) Store(base VReg, off int64, val VReg) {
	b.emit(Instr{Op: isa.ST, Dst: NoReg, Src1: base, Src2: val, Imm: off, Kind: isa.StoreProgram})
}

// Branch terminates the current block with a conditional branch: taken goes
// to t, fallthrough to f. The builder moves to a caller-supplied next block
// only via SetBlock.
func (b *Builder) Branch(op isa.Op, s1, s2 VReg, t, f *Block) {
	b.emit(Instr{Op: op, Dst: NoReg, Src1: s1, Src2: s2})
	b.cur.Succs = []*Block{t, f}
}

// BranchI is Branch with an immediate comparison operand.
func (b *Builder) BranchI(op isa.Op, s1 VReg, imm int64, t, f *Block) {
	b.emit(Instr{Op: op, Dst: NoReg, Src1: s1, Src2: NoReg, Imm: imm, HasImm: true})
	b.cur.Succs = []*Block{t, f}
}

// Jump terminates the current block with an unconditional jump.
func (b *Builder) Jump(t *Block) {
	b.emit(Instr{Op: isa.JMP, Dst: NoReg, Src1: NoReg, Src2: NoReg})
	b.cur.Succs = []*Block{t}
}

// Fallthrough ends the block without a terminator, flowing into t.
func (b *Builder) Fallthrough(t *Block) {
	b.cur.Succs = []*Block{t}
}

// Halt terminates the program.
func (b *Builder) Halt() {
	b.emit(Instr{Op: isa.HALT, Dst: NoReg, Src1: NoReg, Src2: NoReg})
	b.cur.Succs = nil
}

// Finish recomputes predecessor edges and verifies the function.
func (b *Builder) Finish() (*Func, error) {
	b.F.RecomputePreds()
	if err := b.F.Verify(); err != nil {
		return nil, err
	}
	return b.F, nil
}

// MustFinish is Finish for generators with structurally-known-good output.
func (b *Builder) MustFinish() *Func {
	f, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return f
}
