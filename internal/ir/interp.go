package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Interp executes a function directly on the IR, producing the memory image
// the program computes. It gives pass and lowering tests a golden reference
// that is independent of register allocation and of the pipeline simulator.
//
// CKPT/RESTORE/BOUND have no architectural effect at the IR level (they are
// resilience metadata); the interpreter ignores them so that functions
// before and after checkpoint insertion compare equal.
type Interp struct {
	Regs []uint64
	Mem  *isa.Memory
	// Executed counts dynamically executed IR instructions.
	Executed uint64
	// StepLimit bounds execution (0 = default of 100M).
	StepLimit uint64
	// Trace, when set, observes every instruction before it executes,
	// with the current register file. Used by workload characterization
	// and debugging; must not mutate state.
	Trace func(in *Instr, regs []uint64)
}

// RunIR interprets f from its entry block and returns the interpreter state.
func RunIR(f *Func) (*Interp, error) {
	it := &Interp{
		Regs: make([]uint64, f.NumVRegs),
		Mem:  isa.NewMemory(),
	}
	return it, it.Run(f)
}

// Run interprets f using the receiver's existing register and memory state.
func (it *Interp) Run(f *Func) error {
	if it.StepLimit == 0 {
		it.StepLimit = 100_000_000
	}
	if len(it.Regs) < f.NumVRegs {
		regs := make([]uint64, f.NumVRegs)
		copy(regs, it.Regs)
		it.Regs = regs
	}
	b := f.Blocks[0]
	for {
		next, halted, err := it.runBlock(b)
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
		if next == nil {
			return fmt.Errorf("ir: %s fell off %s", f.Name, b)
		}
		b = next
	}
}

func (it *Interp) runBlock(b *Block) (next *Block, halted bool, err error) {
	if len(b.Instrs) == 0 {
		// An empty block's traversal is an implicit jump and must cost a
		// step: a cycle of empty blocks executes no instructions, and
		// without this charge it would spin under the limit forever — a
		// hang any untrusted submission could trigger.
		if it.Executed >= it.StepLimit {
			return nil, false, fmt.Errorf("%w: %d steps without halting (at %s)", ErrStepLimit, it.StepLimit, b)
		}
		it.Executed++
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		// The bound is checked before the increment so the interpreter
		// halts having executed exactly StepLimit instructions: Executed
		// never overshoots the limit, and the typed error lets services
		// classify the failure as permanent (the interpreter is
		// deterministic, so a retry would burn the same budget again).
		if it.Executed >= it.StepLimit {
			return nil, false, fmt.Errorf("%w: %d steps without halting (at %s)", ErrStepLimit, it.StepLimit, b)
		}
		it.Executed++
		if it.Trace != nil {
			it.Trace(in, it.Regs)
		}
		switch {
		case in.Op == isa.HALT:
			return nil, true, nil
		case in.Op == isa.NOP || in.Op == isa.BOUND || in.Op == isa.CKPT || in.Op == isa.RESTORE:
			// No architectural effect at IR level.
		case in.Op == isa.MOVI:
			it.Regs[in.Dst] = uint64(in.Imm)
		case in.Op == isa.MOV:
			it.Regs[in.Dst] = it.Regs[in.Src1]
		case in.Op.IsALU():
			bv := uint64(0)
			if in.HasImm {
				bv = uint64(in.Imm)
			} else {
				bv = it.Regs[in.Src2]
			}
			it.Regs[in.Dst] = isa.ALUOp(in.Op, it.Regs[in.Src1], bv)
		case in.Op == isa.LD:
			it.Regs[in.Dst] = it.Mem.Load(it.Regs[in.Src1] + uint64(in.Imm))
		case in.Op == isa.ST:
			it.Mem.Store(it.Regs[in.Src1]+uint64(in.Imm), it.Regs[in.Src2])
		case in.Op == isa.JMP:
			return b.Succs[0], false, nil
		case in.Op.IsCondBranch():
			bv := uint64(0)
			if in.HasImm {
				bv = uint64(in.Imm)
			} else {
				bv = it.Regs[in.Src2]
			}
			if isa.BranchTaken(in.Op, it.Regs[in.Src1], bv) {
				return b.Succs[0], false, nil
			}
			return b.Succs[1], false, nil
		default:
			return nil, false, fmt.Errorf("ir: unimplemented op %v", in.Op)
		}
	}
	if len(b.Succs) != 1 {
		return nil, false, fmt.Errorf("ir: %s ends without terminator and has %d succs", b, len(b.Succs))
	}
	return b.Succs[0], false, nil
}
