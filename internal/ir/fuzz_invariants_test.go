package ir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// genCFG builds a random reducible CFG function from a seed (pure control
// structure; bodies are small ALU snippets). Used to property-test the
// analyses themselves.
func genCFG(seed int64) *Func {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("cfgfuzz")
	vals := []VReg{b.MovI(1), b.MovI(2), b.MovI(3)}
	emit := func() {
		for i := 0; i < 1+rng.Intn(3); i++ {
			v := vals[rng.Intn(len(vals))]
			b.OpITo(isa.XOR, v, v, int64(rng.Intn(100)+1))
		}
	}
	depth := 1 + rng.Intn(3)
	var build func(d int)
	build = func(d int) {
		if d == 0 {
			emit()
			return
		}
		switch rng.Intn(3) {
		case 0: // diamond
			tb, fb, jb := b.NewBlock(), b.NewBlock(), b.NewBlock()
			c := vals[rng.Intn(len(vals))]
			b.BranchI(isa.BEQ, c, int64(rng.Intn(4)), tb, fb)
			b.SetBlock(tb)
			build(d - 1)
			b.Jump(jb)
			b.SetBlock(fb)
			build(d - 1)
			b.Fallthrough(jb)
			b.SetBlock(jb)
		case 1: // counted loop
			i := b.MovI(0)
			head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
			b.Fallthrough(head)
			b.SetBlock(head)
			b.BranchI(isa.BGE, i, int64(2+rng.Intn(6)), exit, body)
			b.SetBlock(body)
			build(d - 1)
			b.OpITo(isa.ADD, i, i, 1)
			b.Jump(head)
			b.SetBlock(exit)
		default:
			emit()
			build(d - 1)
		}
	}
	build(depth)
	b.Halt()
	return b.MustFinish()
}

// TestQuickDominatorInvariants: the entry dominates every reachable block;
// immediate dominators are themselves dominated by the entry; and a
// block's idom is one of its CFG ancestors (dominance is consistent with
// reachability).
func TestQuickDominatorInvariants(t *testing.T) {
	check := func(seed int64) bool {
		f := genCFG(seed)
		dt := ComputeDominators(f)
		entry := f.Blocks[0]
		for _, b := range f.ReversePostorder() {
			if !dt.Dominates(entry, b) {
				t.Logf("seed %d: entry does not dominate %v", seed, b)
				return false
			}
			if b == entry {
				continue
			}
			idom := dt.IDom[b]
			if idom == nil {
				t.Logf("seed %d: reachable %v has no idom", seed, b)
				return false
			}
			if !dt.Dominates(idom, b) || dt.Dominates(b, idom) {
				t.Logf("seed %d: idom relation broken at %v", seed, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLivenessInvariants: nothing is live into the entry block of a
// well-formed program (every use is dominated by a def), and per-block
// live-in equals use ∪ (live-out − def).
func TestQuickLivenessInvariants(t *testing.T) {
	check := func(seed int64) bool {
		f := genCFG(seed)
		lv := ComputeLiveness(f)
		if lv.In[f.Blocks[0]].Len() != 0 {
			t.Logf("seed %d: live-in at entry: %v", seed, lv.In[f.Blocks[0]].Members())
			return false
		}
		for _, b := range f.Blocks {
			// Recompute in = use ∪ (out − def) directly and compare.
			want := lv.Out[b].Clone()
			lv.DefB[b].ForEach(func(v VReg) { want.Remove(v) })
			want.UnionWith(lv.UseB[b])
			got := lv.In[b]
			bad := false
			want.ForEach(func(v VReg) {
				if !got.Has(v) {
					bad = true
				}
			})
			got.ForEach(func(v VReg) {
				if !want.Has(v) {
					bad = true
				}
			})
			if bad {
				t.Logf("seed %d: liveness equation broken at %v", seed, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLoopInvariants: every discovered loop's header dominates all of
// its body; latches are in the body; exits are outside.
func TestQuickLoopInvariants(t *testing.T) {
	check := func(seed int64) bool {
		f := genCFG(seed)
		dt := ComputeDominators(f)
		lf := FindLoops(f, dt)
		for _, l := range lf.Loops {
			for b := range l.Body {
				if !dt.Dominates(l.Header, b) {
					t.Logf("seed %d: header does not dominate body block %v", seed, b)
					return false
				}
			}
			for _, latch := range l.Latches {
				if !l.Body[latch] {
					t.Logf("seed %d: latch outside body", seed)
					return false
				}
			}
			for _, e := range l.Exits {
				if l.Body[e] {
					t.Logf("seed %d: exit inside body", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneEquivalence: a clone interprets to the same memory.
func TestQuickCloneEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		f := genCFG(seed)
		a, err := RunIR(f)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		bIt, err := RunIR(f.Clone())
		if err != nil {
			t.Logf("seed %d clone: %v", seed, err)
			return false
		}
		return a.Mem.Equal(bIt.Mem)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(45))}); err != nil {
		t.Fatal(err)
	}
}
