package ir

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
)

// A minimal well-formed kernel for limit probing: one loop, one store,
// a halt.
const limitKernel = `func k
b0: -> b1
    movi v0, #0
b1: -> b2 b1
    add v0, v0, #1
    blt v0, #4
b2:
    st v0, [v0, #64]
    halt
`

func TestParseFuncLimitsDefaultsAdmitRealPrograms(t *testing.T) {
	if _, err := ParseFuncLimits(limitKernel, DefaultParseLimits()); err != nil {
		t.Fatalf("default limits rejected a normal kernel: %v", err)
	}
	// The unlimited path (ParseFunc) must behave identically.
	if _, err := ParseFunc(limitKernel); err != nil {
		t.Fatalf("ParseFunc rejected a normal kernel: %v", err)
	}
}

func TestParseFuncLimitsSourceBytes(t *testing.T) {
	lim := ParseLimits{MaxSourceBytes: 16}
	_, err := ParseFuncLimits(limitKernel, lim)
	if !errors.Is(err, ErrProgramTooLarge) {
		t.Fatalf("oversized source: got %v, want ErrProgramTooLarge", err)
	}
}

func TestParseFuncLimitsBlocks(t *testing.T) {
	var b strings.Builder
	b.WriteString("func many\n")
	for i := 0; i < 8; i++ {
		if i < 7 {
			fmt.Fprintf(&b, "b%d: -> b%d\n    movi v0, #1\n", i, i+1)
		} else {
			fmt.Fprintf(&b, "b%d:\n    halt\n", i)
		}
	}
	src := b.String()
	if _, err := ParseFuncLimits(src, ParseLimits{MaxBlocks: 8}); err != nil {
		t.Fatalf("8 blocks under MaxBlocks=8 rejected: %v", err)
	}
	_, err := ParseFuncLimits(src, ParseLimits{MaxBlocks: 7})
	if !errors.Is(err, ErrProgramTooLarge) {
		t.Fatalf("8 blocks under MaxBlocks=7: got %v, want ErrProgramTooLarge", err)
	}
}

func TestParseFuncLimitsInstrsPerBlock(t *testing.T) {
	var b strings.Builder
	b.WriteString("func wide\nb0:\n")
	for i := 0; i < 9; i++ {
		b.WriteString("    movi v0, #1\n")
	}
	b.WriteString("    halt\n")
	src := b.String()
	if _, err := ParseFuncLimits(src, ParseLimits{MaxInstrsPerBlock: 10}); err != nil {
		t.Fatalf("10 instrs under MaxInstrsPerBlock=10 rejected: %v", err)
	}
	_, err := ParseFuncLimits(src, ParseLimits{MaxInstrsPerBlock: 9})
	if !errors.Is(err, ErrProgramTooLarge) {
		t.Fatalf("10 instrs under MaxInstrsPerBlock=9: got %v, want ErrProgramTooLarge", err)
	}
}

func TestParseFuncLimitsVRegs(t *testing.T) {
	src := "func regs\nb0:\n    movi v7, #1\n    halt\n"
	if _, err := ParseFuncLimits(src, ParseLimits{MaxVRegs: 8}); err != nil {
		t.Fatalf("v7 under MaxVRegs=8 rejected: %v", err)
	}
	_, err := ParseFuncLimits(src, ParseLimits{MaxVRegs: 7})
	if !errors.Is(err, ErrProgramTooLarge) {
		t.Fatalf("v7 under MaxVRegs=7: got %v, want ErrProgramTooLarge", err)
	}
}

// TestInterpStepLimitExact pins the step-limit boundary: a program that
// halts in exactly N dynamic instructions runs to completion under
// StepLimit N, fails under N-1 with the typed ErrStepLimit, and the
// interpreter's Executed counter never overshoots the limit. The bound
// is checked before each instruction executes, so "Executed == limit at
// failure" is the contract a service's compute envelope relies on.
func TestInterpStepLimitExact(t *testing.T) {
	// Straight-line: 3 movi + halt = 4 dynamic instructions.
	src := "func four\nb0:\n    movi v0, #1\n    movi v1, #2\n    movi v2, #3\n    halt\n"
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}

	run := func(limit uint64) (*Interp, error) {
		it := &Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory(), StepLimit: limit}
		return it, it.Run(f)
	}

	if it, err := run(4); err != nil {
		t.Fatalf("StepLimit 4 for a 4-instruction program failed: %v", err)
	} else if it.Executed != 4 {
		t.Fatalf("Executed = %d after clean halt, want 4", it.Executed)
	}

	it, err := run(3)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("StepLimit 3: got %v, want ErrStepLimit", err)
	}
	if it.Executed != 3 {
		t.Fatalf("Executed = %d at the limit, want exactly 3 (no overshoot)", it.Executed)
	}
}

// TestInterpStepLimitEmptyBlockCycle is the regression test for a
// fuzzer-found hang: a cycle of empty blocks executes no instructions,
// so a per-instruction step bound alone never fires. Empty-block
// traversal must itself cost a step.
func TestInterpStepLimitEmptyBlockCycle(t *testing.T) {
	f, err := ParseFunc("func spin\nb0: -> b0\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Skipf("verifier now rejects empty self-loops: %v", err)
	}
	it := &Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory(), StepLimit: 100}
	err = it.Run(f)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("empty-block cycle: got %v, want ErrStepLimit", err)
	}
	if it.Executed != 100 {
		t.Fatalf("Executed = %d, want exactly the 100-step limit", it.Executed)
	}
}

// TestInterpStepLimitInfiniteLoop proves the envelope catches
// non-terminating submissions: an infinite loop stops at exactly the
// limit with the typed error.
func TestInterpStepLimitInfiniteLoop(t *testing.T) {
	src := "func spin\nb0: -> b0\n    movi v0, #1\n    jmp\n"
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	it := &Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory(), StepLimit: 1000}
	err = it.Run(f)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("infinite loop: got %v, want ErrStepLimit", err)
	}
	if it.Executed != 1000 {
		t.Fatalf("Executed = %d, want exactly the 1000-step limit", it.Executed)
	}
}
