// Package ir is the compiler's intermediate representation: functions of
// basic blocks over an unbounded set of virtual registers, plus the
// analyses the Turnpike passes need (liveness, dominators, natural loops,
// induction variables).
//
// The instruction vocabulary mirrors the ISA (package isa) so lowering is a
// register-renaming and linearization step rather than an instruction
// selection problem; the interesting work — region partitioning,
// checkpointing, pruning, scheduling — happens on this IR and on the
// lowered form.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// VReg is a virtual register. NoReg marks an absent operand. Values 0..31
// are *not* special; physical registers only appear after allocation, in
// the lowered isa.Program.
type VReg int32

// NoReg marks an unused register operand.
const NoReg VReg = -1

func (v VReg) String() string {
	if v == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(v))
}

// Instr is one IR instruction. Semantics follow isa.Op with virtual
// registers. Branches do not carry targets: control flow is expressed by
// Block.Succs, and the terminator's condition selects Succs[0] (taken)
// versus Succs[1] (fallthrough).
type Instr struct {
	Op     isa.Op
	Dst    VReg
	Src1   VReg
	Src2   VReg
	Imm    int64
	HasImm bool
	Kind   isa.StoreKind
}

// Uses appends the virtual registers read by the instruction.
func (in *Instr) Uses(dst []VReg) []VReg {
	switch in.Op {
	case isa.MOVI, isa.NOP, isa.BOUND, isa.HALT, isa.JMP, isa.RESTORE:
	case isa.MOV:
		dst = append(dst, in.Src1)
	case isa.LD:
		dst = append(dst, in.Src1)
	case isa.ST:
		dst = append(dst, in.Src1, in.Src2)
	case isa.CKPT:
		dst = append(dst, in.Src2)
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		dst = append(dst, in.Src1)
		if !in.HasImm {
			dst = append(dst, in.Src2)
		}
	default: // ALU
		dst = append(dst, in.Src1)
		if !in.HasImm {
			dst = append(dst, in.Src2)
		}
	}
	return dst
}

// Def returns the virtual register defined by the instruction, if any.
func (in *Instr) Def() (VReg, bool) {
	if in.Op.WritesReg() {
		return in.Dst, true
	}
	return NoReg, false
}

func (in *Instr) String() string {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.BOUND:
		return in.Op.String()
	case isa.MOVI:
		return fmt.Sprintf("movi %s, #%d", in.Dst, in.Imm)
	case isa.MOV:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src1)
	case isa.LD:
		return fmt.Sprintf("ld %s, [%s, #%d]", in.Dst, in.Src1, in.Imm)
	case isa.ST:
		return fmt.Sprintf("st %s, [%s, #%d]", in.Src2, in.Src1, in.Imm)
	case isa.CKPT:
		return fmt.Sprintf("ckpt %s", in.Src2)
	case isa.RESTORE:
		return fmt.Sprintf("restore %s", in.Dst)
	case isa.JMP:
		return "jmp"
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		if in.HasImm {
			return fmt.Sprintf("%s %s, #%d", in.Op, in.Src1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Src1, in.Src2)
	default:
		if in.HasImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Dst, in.Src1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}

// Block is a basic block. The terminator convention:
//   - last instruction is a conditional branch: Succs = [taken, fallthrough]
//   - last instruction is JMP: Succs = [target]
//   - last instruction is HALT: Succs = []
//   - otherwise: Succs = [fallthrough]
type Block struct {
	ID     int
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block
}

// Terminator returns the block's final instruction, or nil if empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// HasCondBranch reports whether the block ends in a conditional branch.
func (b *Block) HasCondBranch() bool {
	t := b.Terminator()
	return t != nil && t.Op.IsCondBranch()
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Func is a single-entry function. Blocks[0] is the entry block.
type Func struct {
	Name     string
	Blocks   []*Block
	NumVRegs int
}

// NewVReg allocates a fresh virtual register.
func (f *Func) NewVReg() VReg {
	v := VReg(f.NumVRegs)
	f.NumVRegs++
	return v
}

// NewBlock appends a fresh empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// RecomputePreds rebuilds all predecessor lists from successor lists.
// Passes that edit control flow call this before running analyses.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Verify checks the structural invariants every pass must preserve:
// consistent pred/succ edges, terminator arity, operand validity, and that
// the entry block exists. Tests call Verify after every transformation.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s has no blocks", f.Name)
	}
	seen := make(map[int]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("ir: %s block %d is nil", f.Name, i)
		}
		if seen[b.ID] {
			return fmt.Errorf("ir: %s duplicate block ID %d", f.Name, b.ID)
		}
		seen[b.ID] = true
		t := b.Terminator()
		wantSuccs := 1
		if t != nil {
			switch {
			case t.Op.IsCondBranch():
				wantSuccs = 2
			case t.Op == isa.JMP:
				wantSuccs = 1
			case t.Op == isa.HALT:
				wantSuccs = 0
			}
		}
		if len(b.Succs) != wantSuccs {
			return fmt.Errorf("ir: %s %s has %d successors, want %d (term %v)",
				f.Name, b, len(b.Succs), wantSuccs, t)
		}
		// Branches must be terminators only.
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if (in.Op.IsBranch() || in.Op == isa.HALT) && j != len(b.Instrs)-1 {
				return fmt.Errorf("ir: %s %s instr %d: %v not at block end", f.Name, b, j, in.Op)
			}
			var uses []VReg
			for _, u := range in.Uses(uses) {
				if u == NoReg || int(u) >= f.NumVRegs {
					return fmt.Errorf("ir: %s %s instr %d uses invalid %v", f.Name, b, j, u)
				}
			}
			if d, ok := in.Def(); ok && (d == NoReg || int(d) >= f.NumVRegs) {
				return fmt.Errorf("ir: %s %s instr %d defines invalid %v", f.Name, b, j, d)
			}
		}
	}
	// Edge consistency.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				return fmt.Errorf("ir: %s edge %s->%s missing pred backlink", f.Name, b, s)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				return fmt.Errorf("ir: %s pred %s of %s missing succ link", f.Name, p, b)
			}
		}
	}
	return nil
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// Clone deep-copies the function. Passes under test are run on clones so
// the original can be compared or re-used.
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, NumVRegs: f.NumVRegs}
	idx := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Instrs: append([]Instr(nil), b.Instrs...)}
		nf.Blocks = append(nf.Blocks, nb)
		idx[b] = nb
	}
	for _, b := range f.Blocks {
		nb := idx[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, idx[s])
		}
	}
	nf.RecomputePreds()
	return nf
}

// String renders the function for debugging and golden tests.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d vregs)\n", f.Name, f.NumVRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %s", s)
			}
		}
		sb.WriteByte('\n')
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

// InstrCount returns the total static instruction count.
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ReversePostorder returns blocks in reverse postorder from the entry.
// Unreachable blocks are excluded.
func (f *Func) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
