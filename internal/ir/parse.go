package ir

// Textual IR: ParseFunc reads the same format Func.String prints, so
// kernels can be written by hand, checked into test suites, or piped
// between tools. The grammar, by example:
//
//	func dot (7 vregs)
//	b0: -> b1
//	    movi v0, #65536
//	    movi v1, #0
//	    movi v2, #0
//	b1: -> b3 b2
//	    bge v1, #512
//	b2: -> b1
//	    shl v3, v1, #3
//	    add v4, v0, v3
//	    ld v5, [v4, #0]
//	    add v2, v2, v5
//	    add v1, v1, #1
//	    jmp
//	b3:
//	    st v2, [v0, #4096]
//	    halt
//
// The header line is optional (the register count is inferred). Successor
// lists follow the block label; conditional branches take successors
// [taken, fallthrough] in list order.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// ParseFunc parses the textual IR format produced by Func.String with no
// size bounds — the trusted-input path for tests and checked-in kernels.
// Untrusted input (anything that crossed a network) should go through
// ParseFuncLimits instead.
func ParseFunc(text string) (*Func, error) {
	return ParseFuncLimits(text, ParseLimits{})
}

// ParseFuncLimits is ParseFunc under resource bounds: source bytes,
// block count, instructions per block, and virtual registers are each
// capped by lim (zero fields are unlimited), and a violation returns an
// error matching ErrProgramTooLarge. Limits are enforced during parsing,
// so a hostile payload is rejected before it can allocate beyond the
// configured envelope.
func ParseFuncLimits(text string, lim ParseLimits) (*Func, error) {
	if err := lim.checkSource(len(text)); err != nil {
		return nil, err
	}
	f := &Func{Name: "parsed"}
	blocks := map[string]*Block{}
	succNames := map[*Block][]string{}
	var cur *Block
	maxVReg := -1

	getBlock := func(name string) *Block {
		if b, ok := blocks[name]; ok {
			return b
		}
		b := f.NewBlock()
		blocks[name] = b
		return b
	}

	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "func ") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				f.Name = fields[1]
			}
			continue
		}
		if colon := strings.Index(line, ":"); colon > 0 && strings.HasPrefix(line, "b") && !strings.Contains(line[:colon], " ") {
			// Block label, optionally followed by "-> b1 b2".
			name := line[:colon]
			cur = getBlock(name)
			if err := lim.checkBlocks(len(f.Blocks)); err != nil {
				return nil, err
			}
			rest := strings.TrimSpace(line[colon+1:])
			if rest != "" {
				if !strings.HasPrefix(rest, "->") {
					return nil, fmt.Errorf("ir: line %d: expected '->' after label", ln+1)
				}
				succNames[cur] = strings.Fields(strings.TrimSpace(rest[2:]))
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("ir: line %d: instruction before any block label", ln+1)
		}
		in, hi, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("ir: line %d: %w", ln+1, err)
		}
		if hi > maxVReg {
			maxVReg = hi
		}
		if err := lim.checkVRegs(hi + 1); err != nil {
			return nil, err
		}
		cur.Instrs = append(cur.Instrs, in)
		if err := lim.checkInstrs(cur); err != nil {
			return nil, err
		}
	}
	if len(f.Blocks) == 0 {
		return nil, fmt.Errorf("ir: no blocks")
	}
	for b, names := range succNames {
		for _, n := range names {
			s, ok := blocks[n]
			if !ok {
				return nil, fmt.Errorf("ir: unknown successor %q", n)
			}
			b.Succs = append(b.Succs, s)
		}
	}
	f.NumVRegs = maxVReg + 1
	f.RecomputePreds()
	if err := f.Verify(); err != nil {
		return nil, err
	}
	return f, nil
}

// parseInstr parses one instruction line, returning the highest vreg seen.
func parseInstr(line string) (Instr, int, error) {
	hi := -1
	reg := func(tok string) (VReg, error) {
		tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
		if tok == "_" {
			return NoReg, nil
		}
		if !strings.HasPrefix(tok, "v") {
			return NoReg, fmt.Errorf("expected vreg, got %q", tok)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 {
			return NoReg, fmt.Errorf("bad vreg %q", tok)
		}
		if n > hi {
			hi = n
		}
		return VReg(n), nil
	}
	imm := func(tok string) (int64, error) {
		tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
		if !strings.HasPrefix(tok, "#") {
			return 0, fmt.Errorf("expected immediate, got %q", tok)
		}
		return strconv.ParseInt(tok[1:], 10, 64)
	}

	fields := strings.Fields(line)
	op := fields[0]
	args := fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch op {
	case "nop":
		return Instr{Op: isa.NOP, Dst: NoReg, Src1: NoReg, Src2: NoReg}, hi, need(0)
	case "bound":
		return Instr{Op: isa.BOUND, Dst: NoReg, Src1: NoReg, Src2: NoReg}, hi, need(0)
	case "halt":
		return Instr{Op: isa.HALT, Dst: NoReg, Src1: NoReg, Src2: NoReg}, hi, need(0)
	case "jmp":
		return Instr{Op: isa.JMP, Dst: NoReg, Src1: NoReg, Src2: NoReg}, hi, need(0)
	case "movi":
		if err := need(2); err != nil {
			return Instr{}, hi, err
		}
		d, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		v, err := imm(args[1])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: isa.MOVI, Dst: d, Src1: NoReg, Src2: NoReg, Imm: v}, hi, nil
	case "mov":
		if err := need(2); err != nil {
			return Instr{}, hi, err
		}
		d, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		s, err := reg(args[1])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: isa.MOV, Dst: d, Src1: s, Src2: NoReg}, hi, nil
	case "ckpt":
		if err := need(1); err != nil {
			return Instr{}, hi, err
		}
		s, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: isa.CKPT, Dst: NoReg, Src1: NoReg, Src2: s, Kind: isa.StoreCheckpoint}, hi, nil
	case "restore":
		if err := need(1); err != nil {
			return Instr{}, hi, err
		}
		d, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: isa.RESTORE, Dst: d, Src1: NoReg, Src2: NoReg}, hi, nil
	case "ld", "st":
		// ld v1, [v2, #8]  /  st v1, [v2, #8]
		if len(args) != 3 || !strings.HasPrefix(args[1], "[") || !strings.HasSuffix(args[2], "]") {
			return Instr{}, hi, fmt.Errorf("%s expects 'r, [base, #off]'", op)
		}
		r, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		base, err := reg(strings.TrimPrefix(args[1], "["))
		if err != nil {
			return Instr{}, hi, err
		}
		off, err := imm(strings.TrimSuffix(args[2], "]"))
		if err != nil {
			return Instr{}, hi, err
		}
		if op == "ld" {
			return Instr{Op: isa.LD, Dst: r, Src1: base, Src2: NoReg, Imm: off}, hi, nil
		}
		return Instr{Op: isa.ST, Dst: NoReg, Src1: base, Src2: r, Imm: off, Kind: isa.StoreProgram}, hi, nil
	case "beq", "bne", "blt", "bge":
		if err := need(2); err != nil {
			return Instr{}, hi, err
		}
		ops := map[string]isa.Op{"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE}
		s1, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		if strings.HasPrefix(strings.TrimSpace(args[1]), "#") {
			v, err := imm(args[1])
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: ops[op], Dst: NoReg, Src1: s1, Src2: NoReg, Imm: v, HasImm: true}, hi, nil
		}
		s2, err := reg(args[1])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: ops[op], Dst: NoReg, Src1: s1, Src2: s2}, hi, nil
	case "add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr", "cmpeq", "cmplt":
		if err := need(3); err != nil {
			return Instr{}, hi, err
		}
		ops := map[string]isa.Op{
			"add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL, "div": isa.DIV,
			"and": isa.AND, "or": isa.OR, "xor": isa.XOR, "shl": isa.SHL,
			"shr": isa.SHR, "cmpeq": isa.CMPEQ, "cmplt": isa.CMPLT,
		}
		d, err := reg(args[0])
		if err != nil {
			return Instr{}, hi, err
		}
		s1, err := reg(args[1])
		if err != nil {
			return Instr{}, hi, err
		}
		if strings.HasPrefix(strings.TrimSpace(args[2]), "#") {
			v, err := imm(args[2])
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: ops[op], Dst: d, Src1: s1, Src2: NoReg, Imm: v, HasImm: true}, hi, nil
		}
		s2, err := reg(args[2])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: ops[op], Dst: d, Src1: s1, Src2: s2}, hi, nil
	}
	return Instr{}, hi, fmt.Errorf("unknown op %q", op)
}
