package ir

// Liveness holds per-block live-in/live-out virtual register sets, computed
// by the standard backward dataflow iteration to a fixed point.
type Liveness struct {
	In  map[*Block]RegSet
	Out map[*Block]RegSet
	// UseB/DefB are the per-block gen/kill sets (upward-exposed uses and
	// definitions), kept so passes can re-derive local facts cheaply.
	UseB map[*Block]RegSet
	DefB map[*Block]RegSet

	fn *Func
}

// ComputeLiveness runs the liveness analysis on f.
func ComputeLiveness(f *Func) *Liveness {
	lv := &Liveness{
		In:   make(map[*Block]RegSet, len(f.Blocks)),
		Out:  make(map[*Block]RegSet, len(f.Blocks)),
		UseB: make(map[*Block]RegSet, len(f.Blocks)),
		DefB: make(map[*Block]RegSet, len(f.Blocks)),
		fn:   f,
	}
	n := f.NumVRegs
	var uses []VReg
	for _, b := range f.Blocks {
		use, def := NewRegSet(n), NewRegSet(n)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if !def.Has(u) {
					use.Add(u)
				}
			}
			if d, ok := in.Def(); ok {
				def.Add(d)
			}
		}
		lv.UseB[b], lv.DefB[b] = use, def
		lv.In[b], lv.Out[b] = NewRegSet(n), NewRegSet(n)
	}
	// Iterate in postorder (reverse of RPO) for fast convergence of the
	// backward problem.
	rpo := f.ReversePostorder()
	changed := true
	tmp := NewRegSet(n)
	for changed {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.Out[b]
			for _, s := range b.Succs {
				if out.UnionWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.CopyFrom(out)
			lv.DefB[b].ForEach(func(v VReg) { tmp.Remove(v) })
			tmp.UnionWith(lv.UseB[b])
			if lv.In[b].UnionWith(tmp) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAcross returns, for block b, a slice parallel to b.Instrs where
// entry i is the set of registers live immediately *after* instruction i.
// Passes use this for within-block decisions (scheduling, checkpointing).
func (lv *Liveness) LiveAcross(b *Block) []RegSet {
	n := lv.fn.NumVRegs
	out := make([]RegSet, len(b.Instrs))
	cur := lv.Out[b].Clone()
	var uses []VReg
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		out[i] = cur.Clone()
		in := &b.Instrs[i]
		if d, ok := in.Def(); ok {
			cur.Remove(d)
		}
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			cur.Add(u)
		}
	}
	_ = n
	return out
}
