package ir

import (
	"errors"
	"fmt"
)

// ErrProgramTooLarge is the typed rejection for source text exceeding a
// ParseLimits bound. Front doors match it with errors.Is and map it to
// their "payload too large" contract (distinct from a syntax error: the
// program may be well-formed, it is just bigger than the caller is
// willing to compile).
var ErrProgramTooLarge = errors.New("ir: program exceeds parse limits")

// ErrStepLimit is the typed halt of an Interp that reached its StepLimit
// without executing HALT. It is deterministic — the interpreter has no
// hidden inputs — so services classify it as a permanent failure of the
// program, never a transient one worth retrying.
var ErrStepLimit = errors.New("ir: step limit exceeded")

// ParseLimits bounds ParseFuncLimits against hostile or runaway input.
// Zero fields are unlimited; DefaultParseLimits returns the sane bounds
// the ingestion front door uses.
type ParseLimits struct {
	// MaxSourceBytes caps len(text) before any parsing happens.
	MaxSourceBytes int
	// MaxBlocks caps the number of basic blocks.
	MaxBlocks int
	// MaxInstrsPerBlock caps the instructions in any one block.
	MaxInstrsPerBlock int
	// MaxVRegs caps the virtual register count (highest vreg + 1).
	MaxVRegs int
}

// DefaultParseLimits returns bounds generous enough for every kernel in
// internal/workload at full scale, and small enough that parsing plus
// compiling a maximal program stays well under a second.
func DefaultParseLimits() ParseLimits {
	return ParseLimits{
		MaxSourceBytes:    1 << 20, // 1 MiB of IR text
		MaxBlocks:         4096,
		MaxInstrsPerBlock: 4096,
		MaxVRegs:          1024,
	}
}

// check verifies one dimension, wrapping ErrProgramTooLarge so callers
// can match the class and still read the specific bound in the message.
func (l ParseLimits) checkSource(n int) error {
	if l.MaxSourceBytes > 0 && n > l.MaxSourceBytes {
		return fmt.Errorf("%w: %d source bytes (max %d)", ErrProgramTooLarge, n, l.MaxSourceBytes)
	}
	return nil
}

func (l ParseLimits) checkBlocks(n int) error {
	if l.MaxBlocks > 0 && n > l.MaxBlocks {
		return fmt.Errorf("%w: %d blocks (max %d)", ErrProgramTooLarge, n, l.MaxBlocks)
	}
	return nil
}

func (l ParseLimits) checkInstrs(b *Block) error {
	if l.MaxInstrsPerBlock > 0 && len(b.Instrs) > l.MaxInstrsPerBlock {
		return fmt.Errorf("%w: %s has %d instructions (max %d per block)",
			ErrProgramTooLarge, b, len(b.Instrs), l.MaxInstrsPerBlock)
	}
	return nil
}

func (l ParseLimits) checkVRegs(n int) error {
	if l.MaxVRegs > 0 && n > l.MaxVRegs {
		return fmt.Errorf("%w: %d virtual registers (max %d)", ErrProgramTooLarge, n, l.MaxVRegs)
	}
	return nil
}
