package ir

import (
	"testing"

	"repro/internal/isa"
)

// buildCountLoop builds: sum = Σ mem[A+i*8] for i in [0,n), store sum at out.
func buildCountLoop(n int64) *Func {
	b := NewBuilder("countloop")
	base := b.MovI(int64(isa.DataBase))
	out := b.MovI(int64(isa.DataBase) + 1024)
	i := b.MovI(0)
	sum := b.MovI(0)

	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Fallthrough(head)

	b.SetBlock(head)
	b.BranchI(isa.BGE, i, n, exit, body)

	b.SetBlock(body)
	off := b.OpI(isa.SHL, i, 3)
	addr := b.Op(isa.ADD, base, off)
	v := b.Load(addr, 0)
	b.OpTo(isa.ADD, sum, sum, v)
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)

	b.SetBlock(exit)
	b.Store(out, 0, sum)
	b.Halt()
	return b.MustFinish()
}

func TestBuilderVerify(t *testing.T) {
	f := buildCountLoop(10)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if f.InstrCount() == 0 {
		t.Fatal("empty function")
	}
}

func TestInterpCountLoop(t *testing.T) {
	f := buildCountLoop(10)
	it := &Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory()}
	// Seed input data: mem[A+i*8] = i+1 so the sum is 55.
	for i := uint64(0); i < 10; i++ {
		it.Mem.Store(isa.DataBase+i*8, i+1)
	}
	if err := it.Run(f); err != nil {
		t.Fatal(err)
	}
	if got := it.Mem.Load(isa.DataBase + 1024); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestLivenessLoop(t *testing.T) {
	f := buildCountLoop(10)
	lv := ComputeLiveness(f)
	head := f.Blocks[1]
	// i (vreg 2) and sum (vreg 3) are live into the loop header.
	if !lv.In[head].Has(2) {
		t.Errorf("i not live-in at header")
	}
	if !lv.In[head].Has(3) {
		t.Errorf("sum not live-in at header")
	}
	// The exit block needs sum and the output pointer.
	exit := f.Blocks[3]
	if !lv.In[exit].Has(3) {
		t.Errorf("sum not live-in at exit")
	}
	if !lv.In[exit].Has(1) {
		t.Errorf("out not live-in at exit")
	}
}

func TestLiveAcross(t *testing.T) {
	f := buildCountLoop(4)
	lv := ComputeLiveness(f)
	body := f.Blocks[2]
	la := lv.LiveAcross(body)
	if len(la) != len(body.Instrs) {
		t.Fatalf("LiveAcross length %d != %d", len(la), len(body.Instrs))
	}
	// After the final jump, liveness equals block live-out.
	last := la[len(la)-1]
	want := lv.Out[body]
	want.ForEach(func(v VReg) {
		if !last.Has(v) {
			t.Errorf("missing %v in live-after-last", v)
		}
	})
}

func TestDominators(t *testing.T) {
	f := buildCountLoop(4)
	dt := ComputeDominators(f)
	entry, head, body, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if !dt.Dominates(entry, exit) || !dt.Dominates(head, body) || !dt.Dominates(head, exit) {
		t.Fatalf("dominance relations wrong: idom=%v", dt.IDom)
	}
	if dt.Dominates(body, exit) {
		t.Fatalf("body should not dominate exit")
	}
	if dt.IDom[body] != head {
		t.Fatalf("idom(body) = %v, want %v", dt.IDom[body], head)
	}
}

func TestFindLoops(t *testing.T) {
	f := buildCountLoop(4)
	dt := ComputeDominators(f)
	lf := FindLoops(f, dt)
	if len(lf.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(lf.Loops))
	}
	l := lf.Loops[0]
	if l.Header != f.Blocks[1] {
		t.Errorf("header = %v, want b1", l.Header)
	}
	if !l.Contains(f.Blocks[2]) {
		t.Errorf("body block not in loop")
	}
	if l.Contains(f.Blocks[3]) {
		t.Errorf("exit block in loop")
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
	if lf.Depth(f.Blocks[2]) != 1 || lf.Depth(f.Blocks[0]) != 0 {
		t.Errorf("block depth wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	// for i in 0..3 { for j in 0..3 { } }
	b := NewBuilder("nested")
	i := b.MovI(0)
	oh := b.NewBlock() // outer header
	ob := b.NewBlock() // outer body = inner preheader
	ih := b.NewBlock() // inner header
	ib := b.NewBlock() // inner body
	ox := b.NewBlock() // outer latch
	ex := b.NewBlock()
	b.Fallthrough(oh)
	b.SetBlock(oh)
	b.BranchI(isa.BGE, i, 3, ex, ob)
	b.SetBlock(ob)
	j := b.MovI(0)
	b.Fallthrough(ih)
	b.SetBlock(ih)
	b.BranchI(isa.BGE, j, 3, ox, ib)
	b.SetBlock(ib)
	b.OpITo(isa.ADD, j, j, 1)
	b.Jump(ih)
	b.SetBlock(ox)
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(oh)
	b.SetBlock(ex)
	b.Halt()
	f := b.MustFinish()

	dt := ComputeDominators(f)
	lf := FindLoops(f, dt)
	if len(lf.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(lf.Loops))
	}
	outer, inner := lf.Loops[0], lf.Loops[1]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d,%d want 1,2", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer {
		t.Fatalf("inner.Parent wrong")
	}
	if !outer.Body[inner.Header] {
		t.Fatalf("outer loop should contain inner header")
	}
}

func TestFindBasicIVs(t *testing.T) {
	f := buildCountLoop(10)
	dt := ComputeDominators(f)
	lf := FindLoops(f, dt)
	ivs := FindBasicIVs(f, lf.Loops[0])
	// i (step 1) qualifies. sum does not (sum = sum + v is not reg+imm).
	found := false
	for _, iv := range ivs {
		if iv.Reg == 2 && iv.Step == 1 {
			found = true
			if !iv.HasInitConst || iv.InitConst != 0 {
				t.Errorf("init constant not found: %+v", iv)
			}
		}
		if iv.Reg == 3 {
			t.Errorf("sum misidentified as basic IV")
		}
	}
	if !found {
		t.Fatalf("basic IV i not found: %+v", ivs)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := buildCountLoop(4)
	g := f.Clone()
	g.Blocks[2].Instrs[0].Imm = 999
	if f.Blocks[2].Instrs[0].Imm == 999 {
		t.Fatal("clone shares instruction storage")
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	// CFG edges must point at clone blocks, not originals.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if containsBlock(f.Blocks, s) {
				t.Fatal("clone edge points into original function")
			}
		}
	}
}

func TestVerifyCatchesBadCFG(t *testing.T) {
	f := buildCountLoop(4)
	// Break terminator arity.
	f.Blocks[1].Succs = f.Blocks[1].Succs[:1]
	if err := f.Verify(); err == nil {
		t.Fatal("Verify accepted cond branch with one successor")
	}
}

func TestVerifyCatchesMidBlockBranch(t *testing.T) {
	b := NewBuilder("bad")
	x := b.MovI(1)
	blk := b.Block()
	b.Halt()
	// Insert a JMP before the HALT by hand.
	blk.Instrs = append([]Instr{{Op: isa.JMP}}, blk.Instrs...)
	b.F.RecomputePreds()
	if err := b.F.Verify(); err == nil {
		t.Fatal("Verify accepted mid-block branch")
	}
	_ = x
}

func TestRegSet(t *testing.T) {
	s := NewRegSet(200)
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, v := range []VReg{0, 63, 64, 199} {
		if !s.Has(v) {
			t.Errorf("missing %v", v)
		}
	}
	if s.Has(100) || s.Has(-1) || s.Has(5000) {
		t.Errorf("false positives")
	}
	s.Remove(63)
	if s.Has(63) || s.Len() != 3 {
		t.Errorf("Remove failed")
	}
	o := NewRegSet(200)
	o.Add(5)
	if !o.UnionWith(s) {
		t.Errorf("UnionWith reported no change")
	}
	if o.UnionWith(s) {
		t.Errorf("UnionWith reported change on no-op")
	}
	got := o.Members()
	want := []VReg{0, 5, 64, 199}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestReversePostorder(t *testing.T) {
	f := buildCountLoop(4)
	rpo := f.ReversePostorder()
	if rpo[0] != f.Blocks[0] {
		t.Fatal("RPO must start at entry")
	}
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// Header precedes body and exit in RPO.
	if pos[f.Blocks[1]] > pos[f.Blocks[2]] || pos[f.Blocks[1]] > pos[f.Blocks[3]] {
		t.Fatalf("RPO order wrong: %v", rpo)
	}
}
