package ir

import (
	"sort"

	"repro/internal/isa"
)

// Loop is a natural loop: a back edge latch->header where the header
// dominates the latch, with Body the set of blocks in the loop.
type Loop struct {
	Header *Block
	// Latches are the blocks with back edges to Header (usually one).
	Latches []*Block
	// Body contains all blocks of the loop, including Header and Latches.
	Body map[*Block]bool
	// Exits are blocks outside the loop that are successors of loop blocks.
	Exits []*Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *Block) bool { return l.Body[b] }

// LoopForest holds all natural loops of a function.
type LoopForest struct {
	// Loops lists all loops, outer before inner.
	Loops []*Loop
	// ByHeader maps header blocks to their loop. Loops sharing a header
	// are merged (standard natural-loop treatment).
	ByHeader map[*Block]*Loop
	// InnermostOf maps each block to the innermost loop containing it.
	InnermostOf map[*Block]*Loop
}

// FindLoops discovers the natural loops of f using dominator information.
func FindLoops(f *Func, dt *DomTree) *LoopForest {
	lf := &LoopForest{
		ByHeader:    make(map[*Block]*Loop),
		InnermostOf: make(map[*Block]*Loop),
	}
	rpo := f.ReversePostorder()
	// Find back edges and collect loop bodies; merge loops with the same
	// header.
	for _, b := range rpo {
		for _, s := range b.Succs {
			if dt.Dominates(s, b) {
				l := lf.ByHeader[s]
				if l == nil {
					l = &Loop{Header: s, Body: map[*Block]bool{s: true}}
					lf.ByHeader[s] = l
					lf.Loops = append(lf.Loops, l)
				}
				l.Latches = append(l.Latches, b)
				collectBody(l, b)
			}
		}
	}
	// Compute exits.
	for _, l := range lf.Loops {
		seen := map[*Block]bool{}
		for b := range l.Body {
			for _, s := range b.Succs {
				if !l.Body[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool { return l.Exits[i].ID < l.Exits[j].ID })
	}
	// Nesting: loop A is parent of B if A contains B's header and A != B.
	// Pick the smallest such container as the immediate parent.
	for _, inner := range lf.Loops {
		var best *Loop
		for _, outer := range lf.Loops {
			if outer == inner || !outer.Body[inner.Header] {
				continue
			}
			if best == nil || len(outer.Body) < len(best.Body) {
				best = outer
			}
		}
		inner.Parent = best
	}
	for _, l := range lf.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block.
	for _, l := range lf.Loops {
		for b := range l.Body {
			cur := lf.InnermostOf[b]
			if cur == nil || len(l.Body) < len(cur.Body) {
				lf.InnermostOf[b] = l
			}
		}
	}
	// Stable order: outer loops (larger bodies) first, then by header ID.
	sort.Slice(lf.Loops, func(i, j int) bool {
		if lf.Loops[i].Depth != lf.Loops[j].Depth {
			return lf.Loops[i].Depth < lf.Loops[j].Depth
		}
		return lf.Loops[i].Header.ID < lf.Loops[j].Header.ID
	})
	return lf
}

func collectBody(l *Loop, latch *Block) {
	// Walk predecessors backward from the latch until the header.
	stack := []*Block{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.Body[b] {
			continue
		}
		l.Body[b] = true
		for _, p := range b.Preds {
			stack = append(stack, p)
		}
	}
}

// Depth returns the loop-nesting depth of block b (0 = not in a loop).
// Used for spill-cost frequency estimates.
func (lf *LoopForest) Depth(b *Block) int {
	if l := lf.InnermostOf[b]; l != nil {
		return l.Depth
	}
	return 0
}

// BasicIV is a basic induction variable: a register with exactly one
// in-loop definition of the form v = v + C (or v = v - C), identified per
// the classic definition. InitVal captures the defining value on loop entry
// when it is a known constant or an affine function of the loop preheader.
type BasicIV struct {
	Reg  VReg
	Step int64 // signed per-iteration increment
	// DefBlock/DefIndex locate the increment instruction.
	DefBlock *Block
	DefIndex int
	// Init describes the value on entry to the loop when discoverable:
	// a MOVI constant (InitConst) or an ADD of base register + constant.
	HasInitConst bool
	InitConst    int64
	// InitBase is the register whose value, plus InitOffset, initializes
	// the IV in the preheader; NoReg when unknown.
	InitBase   VReg
	InitOffset int64
}

// FindBasicIVs scans loop l for basic induction variables. A register
// qualifies when it has exactly one definition inside the loop, of the form
// reg = reg + imm or reg = reg - imm.
func FindBasicIVs(f *Func, l *Loop) []BasicIV {
	defCount := map[VReg]int{}
	for b := range l.Body {
		for i := range b.Instrs {
			if d, ok := b.Instrs[i].Def(); ok {
				defCount[d]++
			}
		}
	}
	var ivs []BasicIV
	// Deterministic block order.
	blocks := make([]*Block, 0, len(l.Body))
	for b := range l.Body {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	for _, b := range blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.HasImm || in.Dst != in.Src1 || defCount[in.Dst] != 1 {
				continue
			}
			var step int64
			switch in.Op {
			case isa.ADD:
				step = in.Imm
			case isa.SUB:
				step = -in.Imm
			default:
				continue
			}
			iv := BasicIV{Reg: in.Dst, Step: step, DefBlock: b, DefIndex: i, InitBase: NoReg}
			fillInit(f, l, &iv)
			ivs = append(ivs, iv)
		}
	}
	return ivs
}

// fillInit looks for the IV's initializing definition in the loop's
// preheader chain: the unique predecessor of the header from outside the
// loop. Only simple forms (MOVI, ADD reg+imm, MOV) are recognized.
func fillInit(f *Func, l *Loop, iv *BasicIV) {
	var pre *Block
	for _, p := range l.Header.Preds {
		if !l.Body[p] {
			if pre != nil {
				return // multiple outside preds: no unique preheader
			}
			pre = p
		}
	}
	if pre == nil {
		return
	}
	// Find the last definition of iv.Reg in the preheader.
	for i := len(pre.Instrs) - 1; i >= 0; i-- {
		in := &pre.Instrs[i]
		d, ok := in.Def()
		if !ok || d != iv.Reg {
			continue
		}
		switch {
		case in.Op == isa.MOVI:
			iv.HasInitConst = true
			iv.InitConst = in.Imm
		case in.Op == isa.ADD && in.HasImm:
			iv.InitBase = in.Src1
			iv.InitOffset = in.Imm
		case in.Op == isa.MOV:
			iv.InitBase = in.Src1
		}
		return
	}
}
