package ir

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

const dotText = `
func dot (7 vregs)
b0: -> b1
    movi v0, #65536
    movi v1, #0
    movi v2, #0
b1: -> b3 b2
    bge v1, #16
b2: -> b1
    shl v3, v1, #3
    add v4, v0, v3
    ld v5, [v4, #0]
    add v2, v2, v5
    add v1, v1, #1
    jmp
b3:
    st v2, [v0, #4096]
    halt
`

func TestParseFuncExecutes(t *testing.T) {
	f, err := ParseFunc(dotText)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "dot" {
		t.Fatalf("name = %q", f.Name)
	}
	it := &Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory()}
	for i := uint64(0); i < 16; i++ {
		it.Mem.Store(isa.DataBase+i*8, i+1)
	}
	if err := it.Run(f); err != nil {
		t.Fatal(err)
	}
	if got := it.Mem.Load(isa.DataBase + 4096); got != 136 {
		t.Fatalf("sum = %d, want 136", got)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	f, err := ParseFunc(dotText)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseFunc(f.String())
	if err != nil {
		t.Fatalf("reparse of printed form: %v\n%s", err, f.String())
	}
	if f.String() != g.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", f.String(), g.String())
	}
}

func TestParsePrintRoundTripOnRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(8080))
	for trial := 0; trial < 40; trial++ {
		f := genCFG(rng.Int63())
		g, err := ParseFunc(f.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, f.String())
		}
		if f.String() != g.String() {
			t.Fatalf("trial %d: round trip changed the function", trial)
		}
		// Same semantics.
		a, err := RunIR(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunIR(g)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Mem.Equal(b.Mem) {
			t.Fatalf("trial %d: semantics changed", trial)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"instruction before label": "movi v0, #1",
		"unknown op":               "b0:\n    frobnicate v0",
		"unknown successor":        "b0: -> b9\n    halt",
		"bad vreg":                 "b0:\n    movi x0, #1\n    halt",
		"bad immediate":            "b0:\n    movi v0, 12\n    halt",
		"bad memory operand":       "b0:\n    ld v0, v1\n    halt",
		"missing arrow":            "b0: b1\n    halt",
		"wrong arity":              "b0:\n    add v0, v1\n    halt",
		"no blocks":                "   \n",
		"mid-block branch":         "b0: -> b0\n    jmp\n    movi v0, #1",
		"missing successor":        "b0:\n    jmp",
	}
	for name, text := range cases {
		if _, err := ParseFunc(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestParseAcceptsCommentsAndHeaderless(t *testing.T) {
	f, err := ParseFunc(`
// a comment
b0:
    movi v0, #3
    # another comment
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVRegs != 1 || f.InstrCount() != 2 {
		t.Fatalf("unexpected parse: %s", f.String())
	}
	if !strings.Contains(f.String(), "movi v0, #3") {
		t.Fatal("instruction lost")
	}
}
