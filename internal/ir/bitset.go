package ir

import "math/bits"

// RegSet is a dense bitset over virtual registers, used by the dataflow
// analyses. The zero value is an empty set of capacity zero; use NewRegSet
// to size it for a function.
type RegSet struct {
	words []uint64
}

// NewRegSet returns an empty set able to hold registers [0, n).
func NewRegSet(n int) RegSet {
	return RegSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts v.
func (s RegSet) Add(v VReg) { s.words[v>>6] |= 1 << (uint(v) & 63) }

// Remove deletes v.
func (s RegSet) Remove(v VReg) { s.words[v>>6] &^= 1 << (uint(v) & 63) }

// Has reports membership.
func (s RegSet) Has(v VReg) bool {
	if v < 0 || int(v>>6) >= len(s.words) {
		return false
	}
	return s.words[v>>6]&(1<<(uint(v)&63)) != 0
}

// UnionWith adds all members of o to s, reporting whether s changed.
func (s RegSet) UnionWith(o RegSet) bool {
	changed := false
	for i := range o.words {
		nw := s.words[i] | o.words[i]
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// CopyFrom overwrites s with o.
func (s RegSet) CopyFrom(o RegSet) {
	copy(s.words, o.words)
	for i := len(o.words); i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Clear empties the set.
func (s RegSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Len returns the number of members.
func (s RegSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet {
	return RegSet{words: append([]uint64(nil), s.words...)}
}

// ForEach calls fn for every member in ascending order.
func (s RegSet) ForEach(fn func(VReg)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(VReg(i*64 + b))
			w &= w - 1
		}
	}
}

// Members returns the set contents in ascending order.
func (s RegSet) Members() []VReg {
	out := make([]VReg, 0, s.Len())
	s.ForEach(func(v VReg) { out = append(out, v) })
	return out
}
