package ir

// DomTree holds immediate-dominator information computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
type DomTree struct {
	// IDom maps each reachable block to its immediate dominator; the entry
	// block maps to itself.
	IDom map[*Block]*Block
	// rpoIndex orders blocks by reverse postorder for intersection.
	rpoIndex map[*Block]int
	entry    *Block
}

// ComputeDominators builds the dominator tree of f's reachable blocks.
func ComputeDominators(f *Func) *DomTree {
	rpo := f.ReversePostorder()
	dt := &DomTree{
		IDom:     make(map[*Block]*Block, len(rpo)),
		rpoIndex: make(map[*Block]int, len(rpo)),
		entry:    f.Blocks[0],
	}
	for i, b := range rpo {
		dt.rpoIndex[b] = i
	}
	dt.IDom[dt.entry] = dt.entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == dt.entry {
				continue
			}
			var newIDom *Block
			for _, p := range b.Preds {
				if _, ok := dt.IDom[p]; !ok {
					continue // pred not yet processed / unreachable
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = dt.intersect(p, newIDom)
				}
			}
			if newIDom == nil {
				continue
			}
			if dt.IDom[b] != newIDom {
				dt.IDom[b] = newIDom
				changed = true
			}
		}
	}
	return dt
}

func (dt *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for dt.rpoIndex[a] > dt.rpoIndex[b] {
			a = dt.IDom[a]
		}
		for dt.rpoIndex[b] > dt.rpoIndex[a] {
			b = dt.IDom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		idom, ok := dt.IDom[b]
		if !ok || idom == b {
			return false
		}
		b = idom
	}
}
