package isa

import (
	"bytes"
	"testing"
)

func roundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func sampleProgram() *Program {
	return &Program{
		CkptBase: DefaultCkptBase,
		Insts: []Inst{
			{Op: BOUND, Imm: 0},
			{Op: MOVI, Rd: 1, Imm: -7},
			{Op: ADD, Rd: 2, Rs1: 1, Imm: 3, HasImm: true},
			{Op: CKPT, Rs2: 2, Kind: StoreCheckpoint},
			{Op: ST, Rs1: 1, Rs2: 2, Imm: 16, Kind: StoreProgram},
			{Op: BEQ, Rs1: 1, Rs2: 2, Target: 1},
			{Op: HALT},
			{Op: RESTORE, Rd: 2},
			{Op: JMP, Target: 0},
		},
		Regions:  []RegionInfo{{ID: 0, RecoveryPC: 7}},
		RegionOf: []int{0, 0, 0, 0, 0, 0, 0, -1, -1},
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p := sampleProgram()
	q := roundTrip(t, p)
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("instruction count %d != %d", len(q.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, p.Insts[i], q.Insts[i])
		}
	}
	if len(q.Regions) != 1 || q.Regions[0] != p.Regions[0] {
		t.Fatalf("regions differ: %+v", q.Regions)
	}
	for i := range p.RegionOf {
		if p.RegionOf[i] != q.RegionOf[i] {
			t.Fatalf("RegionOf[%d] differs", i)
		}
	}
	if q.CkptBase != p.CkptBase || q.Entry != p.Entry {
		t.Fatal("header fields differ")
	}
}

func TestProgramRoundTripExecutes(t *testing.T) {
	p := sampleProgram()
	q := roundTrip(t, p)
	run := func(pr *Program) *Memory {
		m := NewMachine(pr)
		m.StepLimit = 1000
		m.Run() // the loop exits via step limit or halt; either is fine
		return m.Mem
	}
	if !run(p).Equal(run(q)) {
		t.Fatal("round-tripped program behaves differently")
	}
}

func TestReadProgramRejectsGarbage(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("accepted truncated header")
	}
	if _, err := ReadProgram(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("accepted zero magic")
	}
	// Corrupt a valid image's version field.
	var buf bytes.Buffer
	if _, err := sampleProgram().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	img[4] = 99
	if _, err := ReadProgram(bytes.NewReader(img)); err == nil {
		t.Fatal("accepted wrong version")
	}
}

func TestReadProgramRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sampleProgram().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for _, cut := range []int{len(img) / 2, len(img) - 3} {
		if _, err := ReadProgram(bytes.NewReader(img[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestWriteToRejectsInvalid(t *testing.T) {
	p := &Program{Insts: []Inst{{Op: JMP, Target: 99}}}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err == nil {
		t.Fatal("serialized an invalid program")
	}
}
