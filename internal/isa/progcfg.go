package isa

// Program-level control-flow and liveness analysis, independent of the
// compiler's IR: it re-derives structure from the lowered instruction
// stream alone. The resilience verifier (package core) uses it to check
// compiled binaries with analyses that share no code with the passes that
// produced them.

// ProgCFG is a control-flow graph over a linear Program. Every instruction
// is a node; Succs lists the (0, 1, or 2) successor instruction indices.
type ProgCFG struct {
	Prog *Program
	// Succs[i] lists the instruction indices reachable from i in one step.
	Succs [][]int
	// Preds is the reverse relation.
	Preds [][]int
}

// BuildCFG derives the instruction-level CFG.
func BuildCFG(p *Program) *ProgCFG {
	n := len(p.Insts)
	g := &ProgCFG{Prog: p, Succs: make([][]int, n), Preds: make([][]int, n)}
	for i := 0; i < n; i++ {
		in := &p.Insts[i]
		switch {
		case in.Op == HALT:
			// no successors
		case in.Op == JMP:
			g.Succs[i] = []int{in.Target}
		case in.Op.IsCondBranch():
			g.Succs[i] = []int{in.Target}
			if i+1 < n {
				g.Succs[i] = append(g.Succs[i], i+1)
			}
		default:
			if i+1 < n {
				g.Succs[i] = []int{i + 1}
			}
		}
	}
	for i, ss := range g.Succs {
		for _, s := range ss {
			g.Preds[s] = append(g.Preds[s], i)
		}
	}
	return g
}

// RegBitmap is a 32-register liveness set.
type RegBitmap uint32

// Has reports membership.
func (m RegBitmap) Has(r Reg) bool { return m&(1<<uint(r)) != 0 }

// With returns the set plus r.
func (m RegBitmap) With(r Reg) RegBitmap { return m | 1<<uint(r) }

// Without returns the set minus r.
func (m RegBitmap) Without(r Reg) RegBitmap { return m &^ (1 << uint(r)) }

// Count returns the population.
func (m RegBitmap) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// LiveIn computes, for every instruction, the set of registers live before
// it — a straightforward backward fixed point at instruction granularity.
// RESTORE counts as a definition (it produces the register); recovery
// blocks therefore participate naturally.
func (g *ProgCFG) LiveIn() []RegBitmap {
	n := len(g.Prog.Insts)
	in := make([]RegBitmap, n)
	changed := true
	var usebuf [3]Reg
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			inst := &g.Prog.Insts[i]
			var out RegBitmap
			for _, s := range g.Succs[i] {
				out |= in[s]
			}
			v := out
			if d, ok := inst.Def(); ok {
				v = v.Without(d)
			}
			for _, u := range inst.Uses(usebuf[:0]) {
				v = v.With(u)
			}
			if v != in[i] {
				in[i] = v
				changed = true
			}
		}
	}
	return in
}

// ReachableFrom marks instructions reachable from start.
func (g *ProgCFG) ReachableFrom(start int) []bool {
	seen := make([]bool, len(g.Prog.Insts))
	stack := []int{start}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= len(seen) || seen[i] {
			continue
		}
		seen[i] = true
		stack = append(stack, g.Succs[i]...)
	}
	return seen
}
