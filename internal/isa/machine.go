package isa

import (
	"fmt"
	"sort"
)

// Memory is a sparse 64-bit word-addressable store. Addresses are byte
// addresses; accesses are 8-byte aligned by construction of the compiler
// (all displacements and strides are multiples of 8).
type Memory struct {
	words map[uint64]uint64
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return &Memory{words: make(map[uint64]uint64)} }

// Load reads the 64-bit word at addr (zero if never written).
func (m *Memory) Load(addr uint64) uint64 { return m.words[addr] }

// Store writes the 64-bit word at addr.
func (m *Memory) Store(addr, val uint64) {
	if val == 0 {
		// Keep the image canonical: a zero store erases the entry so two
		// memories with the same observable contents compare equal.
		delete(m.words, addr)
		return
	}
	m.words[addr] = val
}

// Len returns the number of non-zero words.
func (m *Memory) Len() int { return len(m.words) }

// Clone returns a deep copy.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for a, v := range m.words {
		c.words[a] = v
	}
	return c
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.words) != len(o.words) {
		return false
	}
	for a, v := range m.words {
		if o.words[a] != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable summary of up to max differing words,
// for test failure messages.
func (m *Memory) Diff(o *Memory, max int) string {
	type d struct {
		addr   uint64
		mv, ov uint64
	}
	var ds []d
	for a, v := range m.words {
		if o.words[a] != v {
			ds = append(ds, d{a, v, o.words[a]})
		}
	}
	for a, v := range o.words {
		if _, ok := m.words[a]; !ok {
			ds = append(ds, d{a, 0, v})
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].addr < ds[j].addr })
	if len(ds) > max {
		ds = ds[:max]
	}
	s := ""
	for _, x := range ds {
		s += fmt.Sprintf("  [0x%x] %d != %d\n", x.addr, x.mv, x.ov)
	}
	return s
}

// MemEntry is one address/value pair of a memory image snapshot.
type MemEntry = struct{ Addr, Val uint64 }

// Snapshot returns addr->value pairs sorted by address, for hashing and
// deterministic comparison in tests.
func (m *Memory) Snapshot() []MemEntry {
	out := make([]MemEntry, 0, len(m.words))
	for a, v := range m.words {
		out = append(out, MemEntry{a, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ResetTo restores m to exactly the contents of snap (as returned by
// Snapshot). The map's buckets are retained across calls, so once a
// memory has grown to a campaign trial's footprint, resetting it to the
// golden image allocates nothing.
func (m *Memory) ResetTo(snap []MemEntry) {
	clear(m.words)
	for _, e := range snap {
		m.words[e.Addr] = e.Val
	}
}

// EqualMasked reports whether m and o hold identical contents outside
// the two masked address ranges [aLo,aHi) and [bLo,bHi). o must already
// be masked (hold no words in either range) — campaign golden images
// are; entries of m inside the ranges are skipped. It is the
// allocation-free equivalent of copying m minus the masked ranges into
// a fresh image and calling Equal.
func (m *Memory) EqualMasked(o *Memory, aLo, aHi, bLo, bHi uint64) bool {
	n := 0
	for a, v := range m.words {
		if (a >= aLo && a < aHi) || (a >= bLo && a < bHi) {
			continue
		}
		if o.words[a] != v {
			return false
		}
		n++
	}
	return n == len(o.words)
}

// Machine is the functional reference implementation of the ISA. It has no
// timing, no store buffer, and no fault model; CKPT writes directly to color
// 0 of the register's checkpoint storage and RESTORE reads it back. The
// pipeline simulator must produce exactly the same architectural results as
// this machine on fault-free runs — integration tests enforce that.
type Machine struct {
	Prog *Program
	Regs [NumRegs]uint64
	Mem  *Memory
	PC   int

	// Executed counts dynamically executed instructions.
	Executed uint64
	// StepLimit aborts runaway programs in tests (0 = no limit).
	StepLimit uint64
}

// NewMachine returns a machine at the program entry with zeroed state.
func NewMachine(p *Program) *Machine {
	return &Machine{Prog: p, Mem: NewMemory(), PC: p.Entry}
}

// ALUOp computes the result of an ALU operation on two operands. It is
// shared with the pipeline simulator so functional semantics cannot drift.
func ALUOp(op Op, a, b uint64) uint64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case MUL:
		return a * b
	case DIV:
		if b == 0 {
			return 0 // architected: division by zero yields zero
		}
		return a / b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << (b & 63)
	case SHR:
		return a >> (b & 63)
	case CMPEQ:
		if a == b {
			return 1
		}
		return 0
	case CMPLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case MOV, MOVI:
		return b
	}
	panic(fmt.Sprintf("isa: ALUOp called with %v", op))
}

// BranchTaken evaluates a conditional branch. Shared with the simulator.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	}
	panic(fmt.Sprintf("isa: BranchTaken called with %v", op))
}

// Step executes one instruction. It returns false when the machine halts.
func (m *Machine) Step() (bool, error) {
	if m.PC < 0 || m.PC >= len(m.Prog.Insts) {
		return false, fmt.Errorf("isa: PC %d out of range", m.PC)
	}
	in := &m.Prog.Insts[m.PC]
	m.Executed++
	next := m.PC + 1
	switch {
	case in.Op == HALT:
		return false, nil
	case in.Op == NOP || in.Op == BOUND:
		// BOUND has no architectural effect in the reference machine.
	case in.Op == MOVI:
		m.Regs[in.Rd] = uint64(in.Imm)
	case in.Op == MOV:
		m.Regs[in.Rd] = m.Regs[in.Rs1]
	case in.Op.IsALU():
		b := m.Regs[in.Rs2]
		if in.HasImm {
			b = uint64(in.Imm)
		}
		m.Regs[in.Rd] = ALUOp(in.Op, m.Regs[in.Rs1], b)
	case in.Op == LD:
		m.Regs[in.Rd] = m.Mem.Load(m.Regs[in.Rs1] + uint64(in.Imm))
	case in.Op == ST:
		m.Mem.Store(m.Regs[in.Rs1]+uint64(in.Imm), m.Regs[in.Rs2])
	case in.Op == CKPT:
		m.Mem.Store(m.Prog.CkptSlot(in.Rs2, 0), m.Regs[in.Rs2])
	case in.Op == RESTORE:
		m.Regs[in.Rd] = m.Mem.Load(m.Prog.CkptSlot(in.Rd, 0))
	case in.Op == JMP:
		next = in.Target
	case in.Op.IsCondBranch():
		b := m.Regs[in.Rs2]
		if in.HasImm {
			b = uint64(in.Imm)
		}
		if BranchTaken(in.Op, m.Regs[in.Rs1], b) {
			next = in.Target
		}
	default:
		return false, fmt.Errorf("isa: unimplemented op %v at %d", in.Op, m.PC)
	}
	m.PC = next
	if m.StepLimit > 0 && m.Executed >= m.StepLimit {
		return false, fmt.Errorf("isa: step limit %d exceeded", m.StepLimit)
	}
	return true, nil
}

// Run executes until HALT or error.
func (m *Machine) Run() error {
	for {
		ok, err := m.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// OutputMemory returns the memory image with checkpoint storage removed.
// Checkpoint slots are scheme implementation detail, not program output, so
// functional-equivalence checks across schemes must ignore them.
func (m *Machine) OutputMemory() *Memory {
	out := NewMemory()
	lo := m.Prog.CkptBase
	hi := m.Prog.CkptBase + NumRegs*NumColors*8
	for a, v := range m.Mem.words {
		if a >= lo && a < hi {
			continue
		}
		out.words[a] = v
	}
	return out
}
