package isa

// Address-space layout shared by the compiler, workload generators, and
// simulator. The regions are disjoint so functional-equivalence checks can
// mask out compiler-private memory (spill slots, checkpoint storage) and
// compare only program data.
const (
	// StackBase is where register-allocator spill slots live; the stack
	// pointer (r0) is initialized to this value by the compiler prologue.
	StackBase uint64 = 0x1000
	// StackLimit bounds the spill area.
	StackLimit uint64 = 0x10000
	// DataBase is where workload data arrays are placed.
	DataBase uint64 = 0x10000
	// DefaultCkptBase is the architected checkpoint storage region
	// (NumRegs * NumColors slots of 8 bytes).
	DefaultCkptBase uint64 = 0x100000
)

// InRange reports whether addr falls in [base, limit).
func InRange(addr, base, limit uint64) bool { return addr >= base && addr < limit }
