// Package isa defines the instruction set of the simulated in-order core.
//
// The ISA is a small 64-bit RISC: 32 integer registers, load/store with
// base+displacement addressing, three-operand ALU instructions, conditional
// branches, and three co-design instructions used by the Turnstile/Turnpike
// schemes:
//
//   - BOUND marks a region boundary. The hardware allocates a region
//     boundary buffer (RBB) entry when a BOUND commits.
//   - CKPT saves a register to its architected checkpoint storage. It is a
//     store at the micro-architectural level and is eligible for hardware
//     coloring under Turnpike.
//   - RESTORE loads a register from the most recently *verified* checkpoint
//     storage (resolved through the verified-color map). It only appears in
//     compiler-generated recovery blocks.
//
// Programs are linear instruction slices; branch targets are instruction
// indices. The compiler attaches region and recovery metadata to the
// program (see Program).
package isa

import (
	"fmt"
	"strings"
)

// Reg names an architectural register, r0..r31. By convention r0 is the
// stack pointer for spill slots and r31 is the zero/link scratch register;
// the register allocator treats r0 as reserved.
type Reg uint8

// NumRegs is the architectural register count, matching the paper's
// ARM Cortex-A53 configuration (32 registers, 6 color-map bits each).
const NumRegs = 32

// SP is the stack pointer register used for spill slots.
const SP Reg = 0

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an instruction opcode.
type Op uint8

// Opcodes. ALU operations read Rs1 and either Rs2 or Imm (when HasImm is
// set) and write Rd. Loads read [Rs1+Imm] into Rd. Stores write Rs2 to
// [Rs1+Imm]. Branches compare Rs1 against Rs2 and jump to Target.
const (
	NOP Op = iota
	// ALU
	ADD
	SUB
	MUL
	DIV
	AND
	OR
	XOR
	SHL
	SHR
	CMPEQ // Rd = (Rs1 == Rs2/Imm) ? 1 : 0
	CMPLT // Rd = (Rs1 <  Rs2/Imm) ? 1 : 0 (signed)
	MOV   // Rd = Rs1
	MOVI  // Rd = Imm
	// Memory
	LD // Rd = mem[Rs1+Imm]
	ST // mem[Rs1+Imm] = Rs2
	// Control
	BEQ // if Rs1 == Rs2 goto Target
	BNE
	BLT // signed
	BGE
	JMP // goto Target
	// Co-design
	BOUND   // region boundary marker
	CKPT    // checkpoint store of Rs2
	RESTORE // recovery load of Rd from verified checkpoint storage
	HALT    // stop execution
	numOps
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	CMPEQ: "cmpeq", CMPLT: "cmplt", MOV: "mov", MOVI: "movi",
	LD: "ld", ST: "st", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JMP: "jmp", BOUND: "bound", CKPT: "ckpt", RESTORE: "restore", HALT: "halt",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsALU reports whether op is a register-to-register computation.
func (op Op) IsALU() bool {
	switch op {
	case ADD, SUB, MUL, DIV, AND, OR, XOR, SHL, SHR, CMPEQ, CMPLT, MOV, MOVI:
		return true
	}
	return false
}

// IsBranch reports whether op may redirect control flow.
func (op Op) IsBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BGE, JMP:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsStore reports whether op writes memory (ST or CKPT).
func (op Op) IsStore() bool { return op == ST || op == CKPT }

// IsLoad reports whether op reads memory (LD or RESTORE).
func (op Op) IsLoad() bool { return op == LD || op == RESTORE }

// WritesReg reports whether op defines Rd.
func (op Op) WritesReg() bool { return op.IsALU() || op == LD || op == RESTORE }

// ExLatency returns the execute-stage latency in cycles for op, excluding
// memory access time. The values model a small in-order core: single-cycle
// simple ALU, pipelined multiplier, iterative divider.
func (op Op) ExLatency() int {
	switch op {
	case MUL:
		return 3
	case DIV:
		return 12
	default:
		return 1
	}
}

// StoreKind classifies a store for the experiment breakdowns (Fig. 23).
type StoreKind uint8

const (
	// StoreNone marks non-store instructions.
	StoreNone StoreKind = iota
	// StoreProgram is a store present in the original program.
	StoreProgram
	// StoreSpill is a register-allocator spill store.
	StoreSpill
	// StoreCheckpoint is a compiler-inserted checkpoint (CKPT).
	StoreCheckpoint
)

func (k StoreKind) String() string {
	switch k {
	case StoreNone:
		return "none"
	case StoreProgram:
		return "program"
	case StoreSpill:
		return "spill"
	case StoreCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Inst is one machine instruction. Operand roles depend on Op; unused
// fields are zero. HasImm selects Imm over Rs2 for the second ALU operand.
type Inst struct {
	Op     Op
	Rd     Reg   // destination (ALU, LD, RESTORE)
	Rs1    Reg   // first source / base address / branch lhs
	Rs2    Reg   // second source / store data / branch rhs
	Imm    int64 // immediate / displacement
	HasImm bool  // ALU second operand is Imm rather than Rs2
	Target int   // branch target instruction index

	// Kind classifies stores for breakdown statistics.
	Kind StoreKind
}

// Uses appends the registers read by the instruction to dst and returns it.
// The slice-reuse form keeps hot simulator loops allocation-free.
func (in *Inst) Uses(dst []Reg) []Reg {
	switch in.Op {
	case ADD, SUB, MUL, DIV, AND, OR, XOR, SHL, SHR, CMPEQ, CMPLT:
		dst = append(dst, in.Rs1)
		if !in.HasImm {
			dst = append(dst, in.Rs2)
		}
	case MOV:
		dst = append(dst, in.Rs1)
	case MOVI:
	case LD:
		dst = append(dst, in.Rs1)
	case ST:
		dst = append(dst, in.Rs1, in.Rs2)
	case BEQ, BNE, BLT, BGE:
		dst = append(dst, in.Rs1)
		if !in.HasImm {
			dst = append(dst, in.Rs2)
		}
	case CKPT:
		dst = append(dst, in.Rs2)
	}
	return dst
}

// Def returns the register written by the instruction and whether one exists.
func (in *Inst) Def() (Reg, bool) {
	if in.Op.WritesReg() {
		return in.Rd, true
	}
	return 0, false
}

func (in *Inst) String() string {
	switch in.Op {
	case NOP, HALT, BOUND:
		return in.Op.String()
	case MOVI:
		return fmt.Sprintf("movi %s, #%d", in.Rd, in.Imm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", in.Rd, in.Rs1)
	case LD:
		return fmt.Sprintf("ld %s, [%s, #%d]", in.Rd, in.Rs1, in.Imm)
	case ST:
		return fmt.Sprintf("st %s, [%s, #%d]", in.Rs2, in.Rs1, in.Imm)
	case JMP:
		return fmt.Sprintf("jmp @%d", in.Target)
	case BEQ, BNE, BLT, BGE:
		if in.HasImm {
			return fmt.Sprintf("%s %s, #%d, @%d", in.Op, in.Rs1, in.Imm, in.Target)
		}
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case CKPT:
		return fmt.Sprintf("ckpt %s", in.Rs2)
	case RESTORE:
		return fmt.Sprintf("restore %s", in.Rd)
	default:
		if in.HasImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// RegionInfo describes one static region produced by the partitioner.
type RegionInfo struct {
	ID int
	// RecoveryPC is the entry of the region's recovery block, or -1 when
	// the region has no recovery block (baseline scheme).
	RecoveryPC int
}

// Program is an executable image: instructions plus the compiler metadata
// the resilient hardware needs (recovery block entry points per region).
type Program struct {
	Insts []Inst
	// Regions maps a static region ID to its metadata. Region IDs are
	// assigned in program order by the partitioner. Empty for baseline.
	Regions []RegionInfo
	// RegionOf maps an instruction index to its static region ID, or -1
	// for instructions outside any region (recovery blocks, prologue).
	RegionOf []int
	// CkptBase is the base address of the checkpoint storage area. Each
	// register owns NumColors consecutive 8-byte slots starting at
	// CkptBase + reg*NumColors*8.
	CkptBase uint64
	// Entry is the first instruction to execute.
	Entry int
}

// NumColors is the hardware coloring pool size per register (the paper
// uses a 4-color pool: 2 bits per map, 3 maps, 6 bits per register).
const NumColors = 4

// CkptSlot returns the address of color c's checkpoint slot for register r.
func (p *Program) CkptSlot(r Reg, c int) uint64 {
	return p.CkptBase + (uint64(r)*NumColors+uint64(c))*8
}

// Validate checks structural invariants: branch targets in range, register
// operands valid, HALT present, and metadata sizes consistent. The compiler
// runs this after every lowering; tests rely on it heavily.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	if p.Entry < 0 || p.Entry >= len(p.Insts) {
		return fmt.Errorf("isa: entry %d out of range [0,%d)", p.Entry, len(p.Insts))
	}
	if p.RegionOf != nil && len(p.RegionOf) != len(p.Insts) {
		return fmt.Errorf("isa: RegionOf length %d != %d instructions", len(p.RegionOf), len(p.Insts))
	}
	sawHalt := false
	var uses []Reg
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op >= numOps {
			return fmt.Errorf("isa: @%d invalid opcode %d", i, in.Op)
		}
		if in.Op == HALT {
			sawHalt = true
		}
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("isa: @%d branch target %d out of range", i, in.Target)
			}
		}
		uses = in.Uses(uses[:0])
		for _, r := range uses {
			if !r.Valid() {
				return fmt.Errorf("isa: @%d invalid source register %d", i, r)
			}
		}
		if d, ok := in.Def(); ok && !d.Valid() {
			return fmt.Errorf("isa: @%d invalid destination register %d", i, d)
		}
		if in.Op.IsStore() && in.Kind == StoreNone {
			return fmt.Errorf("isa: @%d store without StoreKind", i)
		}
		if !in.Op.IsStore() && in.Kind != StoreNone {
			return fmt.Errorf("isa: @%d non-store with StoreKind %v", i, in.Kind)
		}
	}
	if !sawHalt {
		return fmt.Errorf("isa: program has no HALT")
	}
	for id, ri := range p.Regions {
		if ri.ID != id {
			return fmt.Errorf("isa: region %d has ID %d", id, ri.ID)
		}
		if ri.RecoveryPC != -1 && (ri.RecoveryPC < 0 || ri.RecoveryPC >= len(p.Insts)) {
			return fmt.Errorf("isa: region %d recovery PC %d out of range", id, ri.RecoveryPC)
		}
	}
	if p.RegionOf != nil {
		for i, r := range p.RegionOf {
			if r != -1 && (r < 0 || r >= len(p.Regions)) {
				return fmt.Errorf("isa: @%d region %d out of range", i, r)
			}
		}
	}
	return nil
}

// Disassemble renders the program with instruction indices and region
// boundaries, for debugging and golden tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i := range p.Insts {
		region := -1
		if p.RegionOf != nil {
			region = p.RegionOf[i]
		}
		fmt.Fprintf(&b, "%4d: %-28s", i, p.Insts[i].String())
		if region >= 0 {
			fmt.Fprintf(&b, " ; R%d", region)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CountStores returns static store counts by kind.
func (p *Program) CountStores() map[StoreKind]int {
	counts := make(map[StoreKind]int)
	for i := range p.Insts {
		if p.Insts[i].Op.IsStore() {
			counts[p.Insts[i].Kind]++
		}
	}
	return counts
}
