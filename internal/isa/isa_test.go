package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                          Op
		alu, branch, store, load, w bool
	}{
		{ADD, true, false, false, false, true},
		{MOVI, true, false, false, false, true},
		{LD, false, false, false, true, true},
		{ST, false, false, true, false, false},
		{CKPT, false, false, true, false, false},
		{RESTORE, false, false, false, true, true},
		{BEQ, false, true, false, false, false},
		{JMP, false, true, false, false, false},
		{BOUND, false, false, false, false, false},
		{HALT, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsALU() != c.alu || c.op.IsBranch() != c.branch ||
			c.op.IsStore() != c.store || c.op.IsLoad() != c.load ||
			c.op.WritesReg() != c.w {
			t.Errorf("%v classification wrong", c.op)
		}
	}
}

func TestALUOpSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{ADD, 3, 4, 7},
		{SUB, 3, 4, ^uint64(0)},
		{MUL, 5, 6, 30},
		{DIV, 20, 5, 4},
		{DIV, 20, 0, 0},
		{AND, 0b1100, 0b1010, 0b1000},
		{OR, 0b1100, 0b1010, 0b1110},
		{XOR, 0b1100, 0b1010, 0b0110},
		{SHL, 1, 65, 2}, // shift amounts mask to 6 bits
		{SHR, 8, 2, 2},
		{CMPEQ, 4, 4, 1},
		{CMPEQ, 4, 5, 0},
		{CMPLT, ^uint64(0), 0, 1}, // -1 < 0 signed
		{CMPLT, 1, 0, 0},
	}
	for _, c := range cases {
		if got := ALUOp(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	if !BranchTaken(BEQ, 3, 3) || BranchTaken(BEQ, 3, 4) {
		t.Error("BEQ wrong")
	}
	if !BranchTaken(BNE, 3, 4) || BranchTaken(BNE, 3, 3) {
		t.Error("BNE wrong")
	}
	if !BranchTaken(BLT, ^uint64(0), 0) || BranchTaken(BLT, 0, ^uint64(0)) {
		t.Error("BLT signedness wrong")
	}
	if !BranchTaken(BGE, 0, ^uint64(0)) {
		t.Error("BGE signedness wrong")
	}
}

func TestUsesAndDef(t *testing.T) {
	st := Inst{Op: ST, Rs1: 3, Rs2: 4, Kind: StoreProgram}
	uses := st.Uses(nil)
	if len(uses) != 2 || uses[0] != 3 || uses[1] != 4 {
		t.Errorf("ST uses = %v", uses)
	}
	if _, ok := st.Def(); ok {
		t.Error("ST defines a register")
	}
	addi := Inst{Op: ADD, Rd: 1, Rs1: 2, Imm: 5, HasImm: true}
	uses = addi.Uses(nil)
	if len(uses) != 1 || uses[0] != 2 {
		t.Errorf("ADDI uses = %v", uses)
	}
	if d, ok := addi.Def(); !ok || d != 1 {
		t.Errorf("ADDI def = %v,%v", d, ok)
	}
	ck := Inst{Op: CKPT, Rs2: 7, Kind: StoreCheckpoint}
	uses = ck.Uses(nil)
	if len(uses) != 1 || uses[0] != 7 {
		t.Errorf("CKPT uses = %v", uses)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	good := &Program{Insts: []Inst{{Op: MOVI, Rd: 1, Imm: 3}, {Op: HALT}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Program{Insts: []Inst{{Op: JMP, Target: 99}, {Op: HALT}}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted out-of-range branch target")
	}
	bad = &Program{Insts: []Inst{{Op: MOVI, Rd: 40}, {Op: HALT}}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted invalid destination register")
	}
	bad = &Program{Insts: []Inst{{Op: ST, Rs1: 1, Rs2: 2}, {Op: HALT}}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted store without kind")
	}
	bad = &Program{Insts: []Inst{{Op: MOVI, Rd: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted program without HALT")
	}
}

func TestMachineRunsLoop(t *testing.T) {
	// sum 1..10 via a backward branch.
	p := &Program{Insts: []Inst{
		{Op: MOVI, Rd: 1, Imm: 0},                           // 0: i
		{Op: MOVI, Rd: 2, Imm: 0},                           // 1: sum
		{Op: ADD, Rd: 1, Rs1: 1, Imm: 1, HasImm: true},      // 2
		{Op: ADD, Rd: 2, Rs1: 2, Rs2: 1},                    // 3
		{Op: BLT, Rs1: 1, Imm: 10, HasImm: true, Target: 2}, // 4
		{Op: MOVI, Rd: 3, Imm: 0x2000},                      // 5
		{Op: ST, Rs1: 3, Rs2: 2, Kind: StoreProgram},        // 6
		{Op: HALT}, // 7
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(0x2000); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestMachineCkptRestore(t *testing.T) {
	p := &Program{CkptBase: DefaultCkptBase, Insts: []Inst{
		{Op: MOVI, Rd: 5, Imm: 42},
		{Op: CKPT, Rs2: 5, Kind: StoreCheckpoint},
		{Op: MOVI, Rd: 5, Imm: 0},
		{Op: RESTORE, Rd: 5},
		{Op: MOVI, Rd: 6, Imm: 0x2000},
		{Op: ST, Rs1: 6, Rs2: 5, Kind: StoreProgram},
		{Op: HALT},
	}}
	m := NewMachine(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(0x2000); got != 42 {
		t.Fatalf("restored %d, want 42", got)
	}
}

func TestMemorySemantics(t *testing.T) {
	m := NewMemory()
	m.Store(8, 7)
	m.Store(16, 9)
	if m.Load(8) != 7 || m.Load(16) != 9 || m.Load(24) != 0 {
		t.Fatal("load/store broken")
	}
	m.Store(8, 0) // zero store erases (canonical form)
	if m.Len() != 1 {
		t.Fatalf("Len = %d after zero store", m.Len())
	}
	c := m.Clone()
	c.Store(16, 1)
	if m.Load(16) != 9 {
		t.Fatal("clone aliases original")
	}
	if m.Equal(c) {
		t.Fatal("Equal on differing memories")
	}
	c.Store(16, 9)
	if !m.Equal(c) {
		t.Fatal("Equal on identical memories")
	}
}

func TestMemoryEqualProperty(t *testing.T) {
	// Property: a memory equals its clone after any sequence of stores
	// applied to both in the same order.
	f := func(ops []struct {
		Addr uint16
		Val  uint32
	}) bool {
		a, b := NewMemory(), NewMemory()
		for _, op := range ops {
			a.Store(uint64(op.Addr)*8, uint64(op.Val))
			b.Store(uint64(op.Addr)*8, uint64(op.Val))
		}
		return a.Equal(b) && b.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputMemoryMasksCkptStorage(t *testing.T) {
	p := &Program{CkptBase: DefaultCkptBase, Insts: []Inst{
		{Op: MOVI, Rd: 1, Imm: 9},
		{Op: CKPT, Rs2: 1, Kind: StoreCheckpoint},
		{Op: MOVI, Rd: 2, Imm: 0x2000},
		{Op: ST, Rs1: 2, Rs2: 1, Kind: StoreProgram},
		{Op: HALT},
	}}
	m := NewMachine(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.OutputMemory()
	if out.Load(p.CkptSlot(1, 0)) != 0 {
		t.Fatal("checkpoint storage visible in output memory")
	}
	if out.Load(0x2000) != 9 {
		t.Fatal("program output missing")
	}
}

func TestDisassembleStable(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: MOVI, Rd: 1, Imm: 3},
		{Op: LD, Rd: 2, Rs1: 1, Imm: 8},
		{Op: ST, Rs1: 1, Rs2: 2, Imm: 16, Kind: StoreProgram},
		{Op: BEQ, Rs1: 1, Rs2: 2, Target: 0},
		{Op: HALT},
	}, RegionOf: []int{0, 0, 0, 0, 0}, Regions: []RegionInfo{{ID: 0, RecoveryPC: -1}}}
	d := p.Disassemble()
	for _, want := range []string{"movi r1, #3", "ld r2, [r1, #8]", "st r2, [r1, #16]", "beq r1, r2, @0", "halt", "R0"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestStepLimit(t *testing.T) {
	p := &Program{Insts: []Inst{{Op: JMP, Target: 0}, {Op: HALT}}}
	m := NewMachine(p)
	m.StepLimit = 100
	if err := m.Run(); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestCkptSlotLayout(t *testing.T) {
	p := &Program{CkptBase: 0x1000}
	if p.CkptSlot(0, 0) != 0x1000 {
		t.Fatal("slot 0,0 misplaced")
	}
	if p.CkptSlot(0, 1) != 0x1008 {
		t.Fatal("colors not adjacent")
	}
	if p.CkptSlot(1, 0) != 0x1000+NumColors*8 {
		t.Fatal("register stride wrong")
	}
	// Slots never overlap across (reg,color) pairs.
	seen := map[uint64]bool{}
	for r := Reg(0); r < NumRegs; r++ {
		for c := 0; c < NumColors; c++ {
			a := p.CkptSlot(r, c)
			if seen[a] {
				t.Fatalf("slot collision at %#x", a)
			}
			seen[a] = true
		}
	}
}
