package isa

// Binary serialization of compiled programs, so downstream users can cache
// compilation artifacts (compiling large kernels with all Turnpike passes
// is much slower than loading them). The format is versioned,
// fixed-endian, and self-validating on load.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// progMagic identifies the serialized program format; progVersion gates
// compatibility.
const (
	progMagic   = 0x54504B45 // "TPKE"
	progVersion = 1
)

// WriteTo serializes the program. The error is never nil halfway: either
// the full image is written or nothing useful is.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("isa: refusing to serialize invalid program: %w", err)
	}
	var buf bytes.Buffer
	put32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	put64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }

	put32(progMagic)
	put32(progVersion)
	put64(p.CkptBase)
	put32(uint32(p.Entry))
	put32(uint32(len(p.Insts)))
	for i := range p.Insts {
		in := &p.Insts[i]
		flags := uint8(0)
		if in.HasImm {
			flags = 1
		}
		buf.WriteByte(uint8(in.Op))
		buf.WriteByte(uint8(in.Rd))
		buf.WriteByte(uint8(in.Rs1))
		buf.WriteByte(uint8(in.Rs2))
		buf.WriteByte(flags)
		buf.WriteByte(uint8(in.Kind))
		binary.Write(&buf, binary.LittleEndian, in.Imm)
		put32(uint32(in.Target))
	}
	put32(uint32(len(p.Regions)))
	for _, r := range p.Regions {
		put32(uint32(r.ID))
		put32(uint32(int32(r.RecoveryPC)))
	}
	if p.RegionOf == nil {
		put32(0)
	} else {
		put32(uint32(len(p.RegionOf)))
		for _, r := range p.RegionOf {
			put32(uint32(int32(r)))
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadProgram deserializes a program and validates it.
func ReadProgram(r io.Reader) (*Program, error) {
	var magic, version uint32
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd(&magic); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if magic != progMagic {
		return nil, fmt.Errorf("isa: bad magic %#x", magic)
	}
	if err := rd(&version); err != nil {
		return nil, err
	}
	if version != progVersion {
		return nil, fmt.Errorf("isa: unsupported program version %d", version)
	}
	p := &Program{}
	var entry, nInsts uint32
	if err := rd(&p.CkptBase); err != nil {
		return nil, err
	}
	if err := rd(&entry); err != nil {
		return nil, err
	}
	if err := rd(&nInsts); err != nil {
		return nil, err
	}
	const maxInsts = 1 << 24
	if nInsts > maxInsts {
		return nil, fmt.Errorf("isa: implausible instruction count %d", nInsts)
	}
	p.Entry = int(entry)
	p.Insts = make([]Inst, nInsts)
	for i := range p.Insts {
		var hdr [6]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		in := &p.Insts[i]
		in.Op = Op(hdr[0])
		in.Rd = Reg(hdr[1])
		in.Rs1 = Reg(hdr[2])
		in.Rs2 = Reg(hdr[3])
		in.HasImm = hdr[4]&1 != 0
		in.Kind = StoreKind(hdr[5])
		if err := rd(&in.Imm); err != nil {
			return nil, err
		}
		var tgt uint32
		if err := rd(&tgt); err != nil {
			return nil, err
		}
		in.Target = int(tgt)
	}
	var nRegions uint32
	if err := rd(&nRegions); err != nil {
		return nil, err
	}
	if nRegions > maxInsts {
		return nil, fmt.Errorf("isa: implausible region count %d", nRegions)
	}
	for i := uint32(0); i < nRegions; i++ {
		var id, rpc uint32
		if err := rd(&id); err != nil {
			return nil, err
		}
		if err := rd(&rpc); err != nil {
			return nil, err
		}
		p.Regions = append(p.Regions, RegionInfo{ID: int(id), RecoveryPC: int(int32(rpc))})
	}
	var nRegionOf uint32
	if err := rd(&nRegionOf); err != nil {
		return nil, err
	}
	if nRegionOf > 0 {
		if nRegionOf > maxInsts {
			return nil, fmt.Errorf("isa: implausible RegionOf length %d", nRegionOf)
		}
		p.RegionOf = make([]int, nRegionOf)
		for i := range p.RegionOf {
			var v uint32
			if err := rd(&v); err != nil {
				return nil, err
			}
			p.RegionOf[i] = int(int32(v))
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: deserialized program invalid: %w", err)
	}
	return p, nil
}
