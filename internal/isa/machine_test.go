package isa

import "testing"

func TestMachineErrorPaths(t *testing.T) {
	// PC out of range.
	p := &Program{Insts: []Inst{{Op: HALT}}}
	m := NewMachine(p)
	m.PC = 5
	if _, err := m.Step(); err == nil {
		t.Fatal("accepted out-of-range PC")
	}
}

func TestMachineConditionalBranches(t *testing.T) {
	// Each conditional op, taken and not taken.
	mk := func(op Op, a, b int64) uint64 {
		p := &Program{Insts: []Inst{
			{Op: MOVI, Rd: 1, Imm: a},
			{Op: MOVI, Rd: 2, Imm: b},
			{Op: op, Rs1: 1, Rs2: 2, Target: 5},
			{Op: MOVI, Rd: 3, Imm: 100}, // fallthrough marker
			{Op: HALT},
			{Op: MOVI, Rd: 3, Imm: 200}, // taken marker
			{Op: HALT},
		}}
		m := NewMachine(p)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Regs[3]
	}
	cases := []struct {
		op   Op
		a, b int64
		want uint64
	}{
		{BEQ, 4, 4, 200}, {BEQ, 4, 5, 100},
		{BNE, 4, 5, 200}, {BNE, 4, 4, 100},
		{BLT, -1, 0, 200}, {BLT, 1, 0, 100},
		{BGE, 0, -1, 200}, {BGE, -2, -1, 100},
	}
	for _, c := range cases {
		if got := mk(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) marker = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestMachineJumpAndNop(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: NOP},
		{Op: BOUND},
		{Op: JMP, Target: 4},
		{Op: MOVI, Rd: 1, Imm: 1}, // skipped
		{Op: HALT},
	}}
	m := NewMachine(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 0 {
		t.Fatal("jump fell through")
	}
	if m.Executed != 4 {
		t.Fatalf("executed %d, want 4", m.Executed)
	}
}

func TestMemoryDiffAndSnapshot(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Store(8, 1)
	a.Store(16, 2)
	b.Store(8, 9)
	b.Store(24, 3)
	d := a.Diff(b, 10)
	for _, frag := range []string{"0x8", "0x10", "0x18"} {
		if !contains(d, frag) {
			t.Errorf("diff missing %s:\n%s", frag, d)
		}
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].Addr != 8 || snap[1].Addr != 16 {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	// Diff truncates to max entries.
	if short := a.Diff(b, 1); countLines(short) != 1 {
		t.Fatalf("diff not truncated: %q", short)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}

func TestProgCFGOnValidatedPrograms(t *testing.T) {
	// CFG construction over a program with every control construct.
	p := &Program{Insts: []Inst{
		{Op: MOVI, Rd: 1, Imm: 0},                          // 0
		{Op: ADD, Rd: 1, Rs1: 1, Imm: 1, HasImm: true},     // 1
		{Op: BLT, Rs1: 1, Imm: 3, HasImm: true, Target: 1}, // 2
		{Op: JMP, Target: 5},                               // 3
		{Op: MOVI, Rd: 2, Imm: 99},                         // 4 (dead)
		{Op: HALT},                                         // 5
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p)
	if len(g.Succs[2]) != 2 {
		t.Fatalf("branch succs = %v", g.Succs[2])
	}
	if len(g.Succs[5]) != 0 {
		t.Fatal("halt has successors")
	}
	reach := g.ReachableFrom(0)
	if reach[4] {
		t.Fatal("dead instruction reachable")
	}
	if !reach[5] {
		t.Fatal("halt unreachable")
	}
	// Preds of the loop head include both the entry and the back edge.
	if len(g.Preds[1]) != 2 {
		t.Fatalf("loop head preds = %v", g.Preds[1])
	}
	live := g.LiveIn()
	if !live[1].Has(1) {
		t.Fatal("r1 not live at its increment")
	}
}

func TestCountStores(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: ST, Rs1: 1, Rs2: 2, Kind: StoreProgram},
		{Op: ST, Rs1: 1, Rs2: 2, Kind: StoreSpill},
		{Op: CKPT, Rs2: 2, Kind: StoreCheckpoint},
		{Op: HALT},
	}}
	c := p.CountStores()
	if c[StoreProgram] != 1 || c[StoreSpill] != 1 || c[StoreCheckpoint] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestStoreKindAndCLQKindStrings(t *testing.T) {
	for k, want := range map[StoreKind]string{
		StoreNone: "none", StoreProgram: "program",
		StoreSpill: "spill", StoreCheckpoint: "checkpoint",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Reg(7).String() != "r7" {
		t.Error("Reg string wrong")
	}
}
