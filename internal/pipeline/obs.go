package pipeline

import (
	"fmt"
	"reflect"
	"strings"
	"unicode"

	"repro/internal/obs"
)

// Observability integration. The simulator carries one optional *Obs
// pointer; every instrumentation site is guarded by a single `s.obs != nil`
// branch so the disabled path costs one predictable compare per site
// (BenchmarkSimObsDisabled holds it to the uninstrumented simulator's
// throughput). When attached, the simulator emits cycle-domain spans —
// region open→close→verify, recovery episodes, store-buffer residency,
// sensor detection windows — plus fetch/issue/commit and cache-miss
// instants, and feeds occupancy/latency histograms in the registry.

// Trace track names (one Perfetto lane each).
const (
	trackRegions  = "regions"
	trackVerify   = "verify"
	trackRecovery = "recovery"
	trackSB       = "store-buffer"
	trackMem      = "memory"
	trackSensor   = "sensor"
	trackExec     = "exec"
)

// Obs bundles a tracer and pre-resolved metric handles for the simulator.
// Either field of NewObs may be nil: tracer-only and metrics-only
// attachments are both valid.
type Obs struct {
	Tracer *obs.Tracer
	Reg    *obs.Registry

	regionLife  *obs.Histogram // cycles from region open to close
	verifyLat   *obs.Histogram // cycles from region close to verification
	sbOcc       *obs.Histogram // store-buffer entries after each push
	clqOcc      *obs.Histogram // CLQ occupancy sampled at region boundaries
	recoveryLen *obs.Histogram // cycles per recovery episode
	detectQueue *obs.Histogram // pending-detection queue depth after each enqueue
}

// NewObs builds the handle bundle; histograms are registered eagerly so
// the hot path never performs a map lookup.
func NewObs(tr *obs.Tracer, reg *obs.Registry) *Obs {
	o := &Obs{Tracer: tr, Reg: reg}
	if reg != nil {
		o.regionLife = reg.Histogram("sim.region_lifetime_cycles", obs.ExpBuckets(1, 2, 16))
		o.verifyLat = reg.Histogram("sim.verify_latency_cycles", obs.LinearBuckets(0, 5, 16))
		o.sbOcc = reg.Histogram("sim.sb_occupancy", obs.LinearBuckets(0, 1, 41))
		o.clqOcc = reg.Histogram("sim.clq_occupancy", obs.LinearBuckets(0, 1, 17))
		o.recoveryLen = reg.Histogram("sim.recovery_cycles", obs.ExpBuckets(1, 2, 12))
		o.detectQueue = reg.Histogram("sim.detect_queue_depth", obs.LinearBuckets(0, 1, 17))
	}
	return o
}

// AttachObs enables observability on the simulator. Call before Run/Step;
// passing nil detaches.
func (s *Sim) AttachObs(o *Obs) {
	s.obs = o
	s.sb.obs = o
}

// The obs* helpers below hold the emission bodies out-of-line so the
// simulator's hot functions carry only a nil check and a call at each
// instrumentation site — keeping Step() small enough that the disabled
// path stays within the BenchmarkSimObsDisabled budget.

func (s *Sim) obsFetchMiss(lat int) {
	s.obs.Tracer.Instant(trackMem, "fetch", "imiss", s.cycle,
		map[string]any{"pc": s.PC, "lat": lat})
}

func (s *Sim) obsDataStall(until uint64) {
	s.obs.Tracer.Span(trackExec, "issue", "data-stall", s.cycle, until,
		map[string]any{"pc": s.PC})
}

func (s *Sim) obsLoadAccess(addr uint64, lat int) {
	if lat > s.hier.L1D.HitLatency() {
		s.obs.Tracer.Instant(trackMem, "load", "dmiss", s.cycle,
			map[string]any{"addr": addr, "lat": lat})
	}
}

func (s *Sim) obsMispredict() {
	s.obs.Tracer.Instant(trackExec, "issue", "branch-mispredict", s.cycle,
		map[string]any{"pc": s.PC})
}

func (s *Sim) obsCommitStore(addr uint64, quarantine, isCkpt bool) {
	fate := "fast"
	switch {
	case quarantine:
		fate = "quarantined"
	case s.Cfg.Resilient:
		fate = "warfree"
	}
	name := "store"
	if isCkpt {
		name = "ckpt"
	}
	s.obs.Tracer.Instant(trackExec, "commit", name, s.cycle,
		map[string]any{"addr": addr, "fate": fate})
}

func (s *Sim) obsCommitCkptColored(addr uint64, color int) {
	s.obs.Tracer.Instant(trackExec, "commit", "ckpt", s.cycle,
		map[string]any{"addr": addr, "fate": "colored", "color": color})
}

// obsDrained emits the store-buffer residency span for a drained entry.
func (o *Obs) obsDrained(e *sbEntry, drainAt uint64) {
	cat := "sb-fast"
	if e.quarantined {
		cat = "sb-quarantined"
	}
	name := "store"
	if e.isCkpt {
		name = "ckpt"
	}
	o.Tracer.Span(trackSB, cat, name, e.commitAt, drainAt,
		map[string]any{"addr": e.addr})
}

// regionClosed fires when a region's fate is decided (verified or squashed
// by recovery): it records the optional RegionEvent and emits the region's
// spans and histograms.
func (s *Sim) regionClosed(r *regionInst, squashed bool) {
	s.logRegion(r, squashed)
	o := s.obs
	if o == nil {
		return
	}
	end := r.end
	if end == 0 || end < r.start {
		end = s.cycle // squashed while still open
	}
	if o.regionLife != nil {
		o.regionLife.Observe(end - r.start)
		if !squashed && r.verifyAt >= r.end {
			o.verifyLat.Observe(r.verifyAt - r.end)
		}
	}
	if o.Tracer.Enabled() {
		name := fmt.Sprintf("R%d", r.staticID)
		args := map[string]any{
			"instance": r.id, "insts": r.insts,
			"warfree": r.warFree, "colored": r.colored, "quarantined": r.quarantined,
		}
		if squashed {
			args["squashed"] = true
		}
		o.Tracer.Span(trackRegions, "region", name, r.start, end, args)
		if !squashed {
			o.Tracer.Span(trackVerify, "verify", name+" verify", r.end, r.verifyAt,
				map[string]any{"instance": r.id})
		}
	}
}

// FillMetrics exports the run's counters into reg: every Stats field as a
// sim.* metric plus the cache hierarchy's per-level hit/miss counters. Use
// a fresh registry per run (values add on repeat calls).
func (s *Sim) FillMetrics(reg *obs.Registry) {
	FillStats(reg, &s.Stats)
	s.hier.FillRegistry(reg)
}

// FillStats exports every Stats counter into reg under "sim.<snake_case>".
// CLQOccMax and DetectQueuePeak are exported as gauges (maxima, not
// counts).
func FillStats(reg *obs.Registry, st *Stats) {
	v := reflect.ValueOf(*st)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			continue
		}
		name := "sim." + snakeCase(f.Name)
		if f.Name == "CLQOccMax" || f.Name == "DetectQueuePeak" {
			reg.Gauge(name).SetMax(int64(v.Field(i).Uint()))
			continue
		}
		reg.Counter(name).Add(v.Field(i).Uint())
	}
}

// snakeCase converts CamelCase (with acronym runs) to snake_case:
// "SBFullStalls" -> "sb_full_stalls", "CLQOccMax" -> "clq_occ_max".
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if unicode.IsUpper(r) {
			prevLower := i > 0 && unicode.IsLower(rs[i-1])
			nextLower := i+1 < len(rs) && unicode.IsLower(rs[i+1])
			if i > 0 && (prevLower || (nextLower && unicode.IsUpper(rs[i-1]))) {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
