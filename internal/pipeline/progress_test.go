package pipeline

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// newTestSim compiles the standard kernel and returns a fresh Turnpike sim.
func newTestSim(t *testing.T) *Sim {
	t.Helper()
	c, err := core.Compile(buildBench(60), core.TurnpikeAll(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c.Prog, TurnpikeConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 60)
	return s
}

// TestProgressMatchesStats runs one simulation with a Progress attached
// and checks the accumulators land exactly on the final Stats.
func TestProgressMatchesStats(t *testing.T) {
	s := newTestSim(t)
	var p Progress
	s.AttachProgress(&p)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cycles.Load(); got != st.Cycles {
		t.Errorf("Progress.Cycles = %d, want %d", got, st.Cycles)
	}
	if got := p.Insts.Load(); got != st.Insts {
		t.Errorf("Progress.Insts = %d, want %d", got, st.Insts)
	}
	if got := p.Regions.Load(); got != st.RegionsExecuted {
		t.Errorf("Progress.Regions = %d, want %d", got, st.RegionsExecuted)
	}
	if got := p.RegionsVerified.Load(); got != st.RegionsVerified {
		t.Errorf("Progress.RegionsVerified = %d, want %d", got, st.RegionsVerified)
	}
	if st.RegionsVerified == 0 || st.RegionsVerified > st.RegionsExecuted {
		t.Errorf("RegionsVerified = %d outside (0, RegionsExecuted=%d]",
			st.RegionsVerified, st.RegionsExecuted)
	}
	if got := p.Recoveries.Load(); got != st.Recoveries {
		t.Errorf("Progress.Recoveries = %d, want %d", got, st.Recoveries)
	}
	if p.CLQOcc.Load() < 0 {
		t.Errorf("CLQOcc should be >= 0 on a CLQ config, got %d", p.CLQOcc.Load())
	}
}

// TestProgressAccumulatesAcrossSims shares one Progress between two
// sequential sims — the campaign/sweep usage — and expects sums.
func TestProgressAccumulatesAcrossSims(t *testing.T) {
	var p Progress
	var wantCycles, wantInsts uint64
	for i := 0; i < 2; i++ {
		s := newTestSim(t)
		s.AttachProgress(&p)
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		p.Runs.Add(1)
		wantCycles += st.Cycles
		wantInsts += st.Insts
	}
	if p.Cycles.Load() != wantCycles || p.Insts.Load() != wantInsts {
		t.Errorf("accumulated cycles/insts = %d/%d, want %d/%d",
			p.Cycles.Load(), p.Insts.Load(), wantCycles, wantInsts)
	}
	if p.Runs.Load() != 2 {
		t.Errorf("Runs = %d, want 2", p.Runs.Load())
	}
}

// TestSamplerLiveGauges runs the sampler goroutine concurrently with the
// simulation hot loop — exactly the interleaving `go test -race` watches —
// and checks the final sample and live.* gauges agree with the run.
func TestSamplerLiveGauges(t *testing.T) {
	s := newTestSim(t)
	var p Progress
	s.AttachProgress(&p)

	reg := obs.NewRegistry()
	var mu sync.Mutex
	var samples []ProgressSample
	sp := NewSampler(&p, reg, time.Millisecond, func(ps ProgressSample) {
		mu.Lock()
		samples = append(samples, ps)
		mu.Unlock()
	})
	sp.Start()
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	p.Runs.Add(1)
	sp.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		t.Fatal("sampler produced no samples")
	}
	last := samples[len(samples)-1]
	if last.Cycles != st.Cycles || last.Insts != st.Insts {
		t.Errorf("final sample cycles/insts = %d/%d, want %d/%d",
			last.Cycles, last.Insts, st.Cycles, st.Insts)
	}
	if last.Runs != 1 {
		t.Errorf("final sample runs = %d, want 1", last.Runs)
	}
	if st.Insts > 0 && (last.IPC <= 0 || last.IPC > float64(2)) {
		t.Errorf("IPC = %v outside (0, issue width]", last.IPC)
	}
	// Samples never regress: counters are monotone.
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycles < samples[i-1].Cycles || samples[i].Insts < samples[i-1].Insts {
			t.Fatalf("sample %d went backwards: %+v then %+v", i, samples[i-1], samples[i])
		}
	}
	snap := reg.Snapshot()
	if snap.Gauges["live.cycles"] != int64(st.Cycles) {
		t.Errorf("live.cycles gauge = %d, want %d", snap.Gauges["live.cycles"], st.Cycles)
	}
	if snap.Gauges["live.regions_verified"] != int64(st.RegionsVerified) {
		t.Errorf("live.regions_verified gauge = %d, want %d",
			snap.Gauges["live.regions_verified"], st.RegionsVerified)
	}
}

// TestSamplerServiceGauges covers the campaign-service accumulators: queue
// depth, retry count, and open-breaker count flow from Progress through
// the sample payload into live.* gauges like every pipeline counter.
func TestSamplerServiceGauges(t *testing.T) {
	p := &Progress{}
	p.JobsQueued.Store(3)
	p.Retries.Add(2)
	p.BreakersOpen.Store(1)
	reg := obs.NewRegistry()
	sp := NewSampler(p, reg, time.Hour, nil)
	sp.start = time.Now()
	s := sp.sample()
	if s.JobsQueued != 3 || s.Retries != 2 || s.BreakersOpen != 1 {
		t.Fatalf("sample = %+v", s)
	}
	snap := reg.Snapshot()
	if snap.Gauges["live.jobs_queued"] != 3 ||
		snap.Gauges["live.retries"] != 2 ||
		snap.Gauges["live.breakers_open"] != 1 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
}
