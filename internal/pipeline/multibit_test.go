package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// TestMultiBitFaultRecoveryNoSDC extends the resilience guarantee to
// multi-bit upsets, including strikes spilling over into a neighbouring
// register — the case that defeats per-word parity/ECC but not acoustic
// detection, since the sensors hear the strike itself.
func TestMultiBitFaultRecoveryNoSDC(t *testing.T) {
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	want := goldenRun(t, prog, 40)
	cfg := TurnpikeConfig(4, 10)
	rng := rand.New(rand.NewSource(2024))

	for trial := 0; trial < 40; trial++ {
		s, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seed(s.Mem, 40)
		injectAt := uint64(rng.Intn(2500))
		reg := isa.Reg(1 + rng.Intn(28))
		nbits := 2 + rng.Intn(4)
		bits := make([]uint, nbits)
		for i := range bits {
			bits[i] = uint(rng.Intn(64))
		}
		spill := rng.Intn(2) == 0
		lat := 1 + rng.Intn(cfg.WCDL)
		injected := false
		for !s.Halted() {
			if !injected && s.Stats.Insts >= injectAt {
				if err := s.InjectMultiBitFlip(reg, bits, spill, lat); err != nil {
					t.Fatal(err)
				}
				injected = true
			}
			if err := s.Step(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		got := maskPrivate(s.OutputMemory())
		if !want.Equal(got) {
			t.Fatalf("trial %d (reg=%v bits=%v spill=%v at=%d lat=%d): SDC!\n%s",
				trial, reg, bits, spill, injectAt, lat, want.Diff(got, 8))
		}
	}
}

func TestMultiBitValidation(t *testing.T) {
	f := buildBench(10)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	cfg.DetectQueue = 3
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectMultiBitFlip(1, nil, false, 5); err == nil {
		t.Fatal("accepted empty bit list")
	}
	if err := s.InjectMultiBitFlip(1, []uint{1, 2}, false, 0); err == nil {
		t.Fatal("accepted zero latency")
	}
	// Bursts: several strikes may share one detection window, bounded by
	// the detect-queue capacity.
	for i := 0; i < 3; i++ {
		if err := s.InjectMultiBitFlip(1, []uint{1, 2}, true, 5+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InjectMultiBitFlip(1, []uint{3}, false, 9); err == nil {
		t.Fatal("accepted a burst beyond the detect-queue capacity")
	}
	if got := s.Stats.DetectQueuePeak; got != 3 {
		t.Fatalf("DetectQueuePeak = %d, want 3", got)
	}
}
