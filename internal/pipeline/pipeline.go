// Package pipeline is the cycle-level timing and functional simulator of
// the 2-issue in-order core the paper evaluates on (an ARM Cortex-A53-class
// machine in gem5), extended with the co-design structures:
//
//   - a gated store buffer (GSB) that quarantines stores until their region
//     is verified error-free (WCDL cycles after the region ends),
//   - a region boundary buffer (RBB) tracking in-flight regions and their
//     recovery PCs,
//   - a committed load queue (CLQ) — ideal address-matching or compact
//     range-based — enabling fast release of WAR-free regular stores
//     (§4.3.1), with the selective-control FSM of Fig. 13, and
//   - hardware coloring (AC/UC/VC maps) enabling fast release of
//     checkpoint stores (§4.3.2).
//
// The model is an issue/ready-cycle scoreboard: dual issue, full
// forwarding, taken-branch bubbles under a bimodal predictor, load latency
// from a real cache hierarchy, and precise store-buffer occupancy. It is
// also a complete functional simulator — fault-free runs must produce
// exactly the reference machine's memory image (integration tests enforce
// this), and the fault package drives injection/recovery through it.
package pipeline

import (
	"fmt"

	"repro/internal/cache"
)

// CLQKind selects the committed-load-queue design (§4.3.1).
type CLQKind int

const (
	// CLQCompact is the paper's 2-entry range-based design.
	CLQCompact CLQKind = iota
	// CLQIdeal is the infinite, exact address-matching design used as the
	// accuracy upper bound in Figs. 14/15.
	CLQIdeal
)

func (k CLQKind) String() string {
	if k == CLQIdeal {
		return "ideal"
	}
	return "compact"
}

// Config parameterizes a simulation.
type Config struct {
	// SBSize is the store-buffer capacity (4 on Cortex-A53).
	SBSize int
	// WCDL is the sensors' worst-case detection latency in cycles.
	WCDL int
	// Resilient enables region tracking and store quarantine. False
	// models the baseline core: stores drain freely.
	Resilient bool
	// WARFreeRelease enables CLQ-based fast release of regular stores.
	WARFreeRelease bool
	// CLQ selects the CLQ design; CLQSize its entry count (compact only).
	CLQ     CLQKind
	CLQSize int
	// HWColoring enables checkpoint fast release through the color maps.
	HWColoring bool
	// IssueWidth is instructions per cycle (2 for the modeled core).
	IssueWidth int
	// RBBSize bounds in-flight (unverified) regions.
	RBBSize int
	// BranchPenalty is the misprediction bubble in cycles.
	BranchPenalty int
	// Hier configures the cache hierarchy; zero value uses the default.
	Hier cache.HierarchyConfig
	// MaxInsts aborts runaway simulations (0 = 500M).
	MaxInsts uint64
	// RecordRegions enables the per-region event log (RegionLog).
	RecordRegions bool

	// DetectQueue bounds the pending-detection queue — how many strike
	// detections can be in flight at once (fault bursts). 0 means the
	// default of 8. A burst exceeding the bound is an injection error:
	// real sensor controllers have finite event FIFOs.
	DetectQueue int
	// Containment turns detections that arrive after their region has
	// verified and released its stores into DUE machine-check aborts
	// (DUEError) instead of silently dropping them. Without it a late
	// detection is dropped and the corruption is free to become SDC.
	Containment bool
	// DegradeWindow is how many cycles the core stays in conservative
	// (quarantine-everything) mode after observing a late detection,
	// before a region boundary may recalibrate back to fast release.
	// 0 means the default of 8×WCDL.
	DegradeWindow uint64
}

// Default returns the paper's §6.1 configuration for the given scheme
// knobs. Callers flip Resilient/WARFreeRelease/HWColoring per experiment.
func Default() Config {
	return Config{
		SBSize:        4,
		WCDL:          10,
		CLQ:           CLQCompact,
		CLQSize:       2,
		IssueWidth:    2,
		RBBSize:       16,
		BranchPenalty: 3,
		Hier:          cache.DefaultHierarchyConfig(),
	}
}

// TurnstileConfig: quarantine everything, no fast release. Containment
// is on by default — a detection the quarantine can no longer absorb
// aborts the machine rather than corrupting memory. Campaigns exploring
// the unsafe operating point flip it off explicitly.
func TurnstileConfig(sb, wcdl int) Config {
	c := Default()
	c.SBSize, c.WCDL, c.Resilient, c.Containment = sb, wcdl, true, true
	return c
}

// TurnpikeConfig: quarantine with both fast-release mechanisms enabled.
func TurnpikeConfig(sb, wcdl int) Config {
	c := TurnstileConfig(sb, wcdl)
	c.WARFreeRelease, c.HWColoring = true, true
	return c
}

// BaselineConfig: no resilience support at all.
func BaselineConfig(sb int) Config {
	c := Default()
	c.SBSize = sb
	return c
}

func (c *Config) validate() error {
	if c.SBSize < 1 {
		return fmt.Errorf("pipeline: SB size %d", c.SBSize)
	}
	if c.Resilient && c.WCDL < 1 {
		return fmt.Errorf("pipeline: WCDL %d", c.WCDL)
	}
	if c.IssueWidth < 1 {
		return fmt.Errorf("pipeline: issue width %d", c.IssueWidth)
	}
	if c.WARFreeRelease && c.CLQ == CLQCompact && c.CLQSize < 1 {
		return fmt.Errorf("pipeline: CLQ size %d", c.CLQSize)
	}
	if c.Resilient && c.RBBSize < 2 {
		return fmt.Errorf("pipeline: RBB size %d", c.RBBSize)
	}
	if c.DetectQueue < 0 {
		return fmt.Errorf("pipeline: detect queue %d", c.DetectQueue)
	}
	return nil
}

// Stats aggregates a run's timing and mechanism counters.
type Stats struct {
	Cycles uint64
	Insts  uint64

	// Store classification (dynamic).
	ProgStores  uint64
	SpillStores uint64
	CkptStores  uint64

	// Fast-release outcomes (dynamic stores).
	WARFreeReleased uint64 // regular stores released via CLQ check
	ColoredReleased uint64 // checkpoints released via coloring
	Quarantined     uint64 // stores held for verification
	WAWBlocked      uint64 // fast release denied by same-address older entry

	// Stall accounting.
	SBFullStalls  uint64 // cycles stalled on a full store buffer
	DataStalls    uint64 // cycles stalled on operand readiness
	BranchBubbles uint64
	RBBFullStalls uint64
	ColorStalls   uint64 // cycles stalled waiting for a free color
	FetchStalls   uint64

	// Region/CLQ behaviour.
	RegionsExecuted uint64
	RegionsVerified uint64 // regions retired through verification (not squashed)
	CLQOverflows    uint64
	CLQOccSamples   uint64
	CLQOccSum       uint64
	CLQOccMax       uint64

	// Recovery behaviour (fault campaigns).
	Recoveries     uint64
	ParityTrips    uint64
	RecoveryCycles uint64

	// Adversarial detection behaviour. LateDetections counts injected
	// strikes whose detection lands beyond the provisioned WCDL;
	// FalseDetections counts spurious sensor firings with no strike;
	// DroppedDetections counts detections discarded because their
	// region had already verified (containment off); DUEs counts
	// machine-check aborts raised for the same situation with
	// containment on. DetectQueuePeak is the high-water mark of the
	// pending-detection queue (max on Merge, like CLQOccMax).
	LateDetections    uint64
	FalseDetections   uint64
	DroppedDetections uint64
	DUEs              uint64
	DegradeEntries    uint64
	DegradeExits      uint64
	DetectQueuePeak   uint64

	// Region-attribution remainders (resilient configs only): work done
	// while no region is open — recovery blocks and code before the first
	// boundary. With these, the per-region event log sums exactly to the
	// aggregates: sum(RegionEvent.Insts) + OutsideRegionInsts == Insts and
	// sum(RegionEvent.Quarantined) + OutsideRegionStores == Quarantined.
	OutsideRegionInsts  uint64
	OutsideRegionStores uint64
}

// Merge accumulates o into s: counters add, CLQOccMax takes the maximum.
// Fault campaigns use it to aggregate per-trial statistics; the experiment
// runner uses it to snapshot a whole session. A reflection-driven unit
// test keeps this list in sync with the struct.
func (s *Stats) Merge(o *Stats) {
	s.Cycles += o.Cycles
	s.Insts += o.Insts
	s.ProgStores += o.ProgStores
	s.SpillStores += o.SpillStores
	s.CkptStores += o.CkptStores
	s.WARFreeReleased += o.WARFreeReleased
	s.ColoredReleased += o.ColoredReleased
	s.Quarantined += o.Quarantined
	s.WAWBlocked += o.WAWBlocked
	s.SBFullStalls += o.SBFullStalls
	s.DataStalls += o.DataStalls
	s.BranchBubbles += o.BranchBubbles
	s.RBBFullStalls += o.RBBFullStalls
	s.ColorStalls += o.ColorStalls
	s.FetchStalls += o.FetchStalls
	s.RegionsExecuted += o.RegionsExecuted
	s.RegionsVerified += o.RegionsVerified
	s.CLQOverflows += o.CLQOverflows
	s.CLQOccSamples += o.CLQOccSamples
	s.CLQOccSum += o.CLQOccSum
	if o.CLQOccMax > s.CLQOccMax {
		s.CLQOccMax = o.CLQOccMax
	}
	s.Recoveries += o.Recoveries
	s.ParityTrips += o.ParityTrips
	s.RecoveryCycles += o.RecoveryCycles
	s.LateDetections += o.LateDetections
	s.FalseDetections += o.FalseDetections
	s.DroppedDetections += o.DroppedDetections
	s.DUEs += o.DUEs
	s.DegradeEntries += o.DegradeEntries
	s.DegradeExits += o.DegradeExits
	if o.DetectQueuePeak > s.DetectQueuePeak {
		s.DetectQueuePeak = o.DetectQueuePeak
	}
	s.OutsideRegionInsts += o.OutsideRegionInsts
	s.OutsideRegionStores += o.OutsideRegionStores
}

// AvgCLQOccupancy returns the mean populated CLQ entries sampled at region
// boundaries (Fig. 24).
func (s *Stats) AvgCLQOccupancy() float64 {
	if s.CLQOccSamples == 0 {
		return 0
	}
	return float64(s.CLQOccSum) / float64(s.CLQOccSamples)
}

// IPC returns instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}
