package pipeline

// committedLoadQueue abstracts the two CLQ designs of §4.3.1. Both track,
// per in-flight region, the addresses of committed loads so a committing
// regular store can be tested for WAR-freedom. The check spans *all*
// entries — every unverified region, not just the current one: a detected
// error restarts the earliest unverified region, which re-executes its
// loads, so a fast-released store may not overlap any unverified region's
// load set (this is why CLQ entries are cleared at region *verification*,
// not at region end). noteLoad reports false on overflow (compact design
// out of entries), which drives the selective-control FSM.
type committedLoadQueue interface {
	noteLoad(region int, addr uint64) bool
	warFree(addr uint64) bool
	clearRegion(region int)
	clearAll()
	occupancy() int
}

// compactCLQ is the paper's design: one {min,max} address range per
// region, capped at a fixed number of entries (2 by default). Range
// checking trades a little precision for a tiny, CAM-free structure.
type compactCLQ struct {
	entries []compactEntry
}

type compactEntry struct {
	region   int
	min, max uint64
	used     bool
}

func newCompactCLQ(size int) *compactCLQ {
	return &compactCLQ{entries: make([]compactEntry, size)}
}

func (c *compactCLQ) noteLoad(region int, addr uint64) bool {
	var free *compactEntry
	for i := range c.entries {
		e := &c.entries[i]
		if e.used && e.region == region {
			if addr < e.min {
				e.min = addr
			}
			if addr > e.max {
				e.max = addr
			}
			return true
		}
		if !e.used && free == nil {
			free = e
		}
	}
	if free == nil {
		return false
	}
	*free = compactEntry{region: region, min: addr, max: addr, used: true}
	return true
}

func (c *compactCLQ) warFree(addr uint64) bool {
	for i := range c.entries {
		e := &c.entries[i]
		if e.used && addr >= e.min && addr <= e.max {
			return false
		}
	}
	return true // no unverified region loaded this address
}

func (c *compactCLQ) clearRegion(region int) {
	for i := range c.entries {
		if c.entries[i].used && c.entries[i].region == region {
			c.entries[i] = compactEntry{}
		}
	}
}

func (c *compactCLQ) clearAll() {
	for i := range c.entries {
		c.entries[i] = compactEntry{}
	}
}

func (c *compactCLQ) occupancy() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].used {
			n++
		}
	}
	return n
}

// idealCLQ keeps exact per-region load address sets with no capacity
// bound: the 100%-accurate comparison point of Figs. 14/15.
type idealCLQ struct {
	byRegion map[int]map[uint64]bool
}

func newIdealCLQ() *idealCLQ { return &idealCLQ{byRegion: map[int]map[uint64]bool{}} }

func (c *idealCLQ) noteLoad(region int, addr uint64) bool {
	s := c.byRegion[region]
	if s == nil {
		s = map[uint64]bool{}
		c.byRegion[region] = s
	}
	s[addr] = true
	return true
}

func (c *idealCLQ) warFree(addr uint64) bool {
	for _, s := range c.byRegion {
		if s[addr] {
			return false
		}
	}
	return true
}

func (c *idealCLQ) clearRegion(region int) { delete(c.byRegion, region) }

func (c *idealCLQ) clearAll() { c.byRegion = map[int]map[uint64]bool{} }

func (c *idealCLQ) occupancy() int { return len(c.byRegion) }
