package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
)

// GoldenState is the immutable snapshot a fault campaign forks every
// trial from: the compiled program, the validated simulator
// configuration, the seeded initial memory image, and the golden run's
// warmed cache hierarchy. Capturing it once means trials stop paying for
// compilation, memory re-seeding, and cache-hierarchy construction —
// each worker forks one simulator and Resets it between trials, and the
// steady-state reset allocates nothing.
type GoldenState struct {
	prog *isa.Program
	cfg  Config
	init []isa.MemEntry
	img  cache.Image

	stats   Stats
	output  *isa.Memory
	regions int // dynamic regions the golden run bound (arena pre-size)
}

// CaptureGolden snapshots s's pre-execution state (program,
// configuration, seeded memory image), runs the golden execution to
// completion on s, and captures the warmed cache hierarchy. s must be
// freshly constructed — seeded, with attachments if desired, but not yet
// stepped. After a successful capture s itself is at the golden halt
// state and may be discarded or Reset.
func CaptureGolden(s *Sim) (*GoldenState, error) {
	if s.halted || s.Stats.Insts != 0 || s.cycle != 1 {
		return nil, fmt.Errorf("pipeline: CaptureGolden needs an unstepped simulator")
	}
	g := &GoldenState{prog: s.Prog, cfg: s.Cfg, init: s.Mem.Snapshot()}
	st, err := s.Run()
	if err != nil {
		return nil, err
	}
	g.stats = st
	g.output = s.OutputMemory()
	g.regions = s.regionsUsed
	s.hier.Snapshot(&g.img)
	return g, nil
}

// Stats returns the golden run's statistics.
func (g *GoldenState) Stats() Stats { return g.stats }

// Output returns the golden run's output memory (quarantine drained,
// checkpoint storage masked). Callers must treat it as immutable — every
// trial of the campaign classifies against it.
func (g *GoldenState) Output() *isa.Memory { return g.output }

// Program returns the compiled program the snapshot was captured from.
func (g *GoldenState) Program() *isa.Program { return g.prog }

// Config returns the validated simulator configuration of the snapshot.
func (g *GoldenState) Config() Config { return g.cfg }

// Fork builds a simulator primed at the snapshot's trial-start point:
// seeded memory, warmed caches, program entry. Each campaign worker
// forks once and Resets between trials.
func (g *GoldenState) Fork() (*Sim, error) {
	s, err := New(g.prog, g.cfg)
	if err != nil {
		return nil, err
	}
	// Pre-size the region arena for the golden run's region count plus
	// recovery headroom (each recovery re-binds the regions it squashed
	// as fresh dynamic regions), so injected trials recycle records
	// instead of growing the arena one region at a time. A trial that
	// still outruns the arena just grows it — correctness is unaffected.
	const regionSlack = 32
	for len(s.regionArena) < g.regions+regionSlack {
		s.regionArena = append(s.regionArena, &regionInst{colors: make(map[isa.Reg]int, isa.NumRegs)})
	}
	g.Reset(s)
	return s, nil
}

// Reset reprimes a forked simulator for the next trial: architectural
// state, caches, and every micro-architectural structure return to the
// trial-start snapshot, while the simulator's grown buffers (store
// buffer, RBB and its region arena, memory map, predictor table, color
// free lists) keep their capacity — the steady-state reset allocates
// nothing. Observability attachments (AttachObs, AttachLogger,
// AttachProgress) are preserved. s must have been built for the same
// program and configuration as the snapshot (normally via Fork).
func (g *GoldenState) Reset(s *Sim) {
	s.Regs = [isa.NumRegs]uint64{}
	s.Taint = [isa.NumRegs]bool{}
	s.regReady = [isa.NumRegs]uint64{}
	s.Mem.ResetTo(g.init)
	s.PC = g.prog.Entry
	s.cycle = 1
	s.slots = 0
	s.hier.Restore(&g.img)
	s.sb.reset()
	clear(s.predictor)
	s.rbb = s.rbb[:0]
	s.cur = nil
	s.nextRegion = 0
	s.regionsUsed = 0
	if s.clq != nil {
		s.clq.clearAll()
		s.clqEnabled = true
	}
	if s.colors != nil {
		s.colors.reset()
	}
	s.pendingDetects = s.pendingDetects[:0]
	s.degradedUntil = 0
	s.inRecovery = false
	s.lastRestart = -1
	s.regionLog = s.regionLog[:0]
	s.Stats = Stats{}
	s.published = publishedCounters{}
	s.halted = false
}
