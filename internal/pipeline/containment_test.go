package pipeline

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// runWithInjection executes prog under cfg, invoking inject once when the
// instruction count reaches at. It returns the simulator and the first
// error from Step (nil on clean completion).
func runWithInjection(t *testing.T, cfg Config, n int64, at uint64, inject func(*Sim) error) (*Sim, error) {
	t.Helper()
	f := buildBench(n)
	prog := compileFor(t, f, core.Turnpike, cfg.SBSize)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, int(n))
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= at {
			if err := inject(s); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			return s, err
		}
	}
	if !injected {
		t.Fatalf("program retired %d insts before injection point %d", s.Stats.Insts, at)
	}
	return s, nil
}

// TestLateDetectionContainmentDUE pins the containment invariant at the
// pipeline level: a detection arriving long after its region verified and
// released stores must abort as a DUE — never complete as if clean.
func TestLateDetectionContainmentDUE(t *testing.T) {
	cfg := TurnpikeConfig(4, 10)
	if !cfg.Containment {
		t.Fatal("resilient configs must default to containment on")
	}
	s, err := runWithInjection(t, cfg, 40, 500, func(s *Sim) error {
		return s.InjectBitFlip(4, 48, 5000) // detection far beyond every window
	})
	var due *DUEError
	if !errors.As(err, &due) {
		t.Fatalf("err = %v, want DUEError", err)
	}
	if !due.Late {
		t.Fatal("DUE not flagged late")
	}
	if s.Stats.DUEs != 1 {
		t.Fatalf("DUEs = %d, want 1", s.Stats.DUEs)
	}
	if s.Stats.DroppedDetections != 0 {
		t.Fatalf("DroppedDetections = %d with containment on", s.Stats.DroppedDetections)
	}
}

// TestLateDetectionDroppedWithoutContainment is the unsafe operating
// point: the same strike with containment off is dropped and the machine
// runs to completion on corrupted state.
func TestLateDetectionDroppedWithoutContainment(t *testing.T) {
	cfg := TurnpikeConfig(4, 10)
	cfg.Containment = false
	s, err := runWithInjection(t, cfg, 40, 500, func(s *Sim) error {
		return s.InjectBitFlip(4, 48, 5000)
	})
	if err != nil {
		t.Fatalf("expected the run to complete with the detection dropped, got %v", err)
	}
	if s.Stats.DUEs != 0 {
		t.Fatalf("DUEs = %d with containment off", s.Stats.DUEs)
	}
	if s.Stats.DroppedDetections == 0 {
		t.Fatal("late detection was not counted as dropped")
	}
}

// TestLateButContainedRecovers: a detection past the WCDL whose region is
// still unverified is recoverable — and must trip the degradation
// controller into quarantine mode, with a later boundary recalibrating.
func TestLateButContainedRecovers(t *testing.T) {
	cfg := TurnpikeConfig(4, 10)
	cfg.DegradeWindow = 40
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	want := goldenRun(t, prog, 40)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	for !s.Halted() {
		// Inject mid-region: latency 12 > WCDL 10, but the open region
		// will not have verified 12 cycles from now.
		if !injected && s.Stats.Insts >= 500 && s.cur != nil && s.cur.insts > 2 {
			if err := s.InjectBitFlip(4, 48, 12); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			t.Fatalf("late-but-contained strike should recover, got %v", err)
		}
	}
	if !injected {
		t.Fatal("never reached the injection point")
	}
	if s.Stats.Recoveries == 0 {
		t.Fatal("no recovery for a contained late detection")
	}
	if s.Stats.DegradeEntries == 0 {
		t.Fatal("late detection did not enter degraded mode")
	}
	if s.Stats.DegradeExits == 0 {
		t.Fatal("degraded mode never recalibrated")
	}
	got := maskPrivate(s.OutputMemory())
	if !want.Equal(got) {
		t.Fatalf("SDC after contained late detection:\n%s", want.Diff(got, 8))
	}
}

// TestBurstRecovery: several strikes inside one detection window resolve
// with correct final memory, exercising the pending-detection queue.
func TestBurstRecovery(t *testing.T) {
	cfg := TurnpikeConfig(4, 10)
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	want := goldenRun(t, prog, 40)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= 600 {
			for i, lat := range []int{3, 6, 9} {
				if err := s.InjectBitFlip(isa.Reg(4+i), uint(16+8*i), lat); err != nil {
					t.Fatal(err)
				}
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			t.Fatalf("burst should recover, got %v", err)
		}
	}
	if s.Stats.DetectQueuePeak < 3 {
		t.Fatalf("DetectQueuePeak = %d, want >= 3", s.Stats.DetectQueuePeak)
	}
	if s.Stats.Recoveries == 0 {
		t.Fatal("no recovery after burst")
	}
	got := maskPrivate(s.OutputMemory())
	if !want.Equal(got) {
		t.Fatalf("SDC after burst:\n%s", want.Diff(got, 8))
	}
}

// TestFalsePositiveCostsARecovery: a spurious detection with no strike
// triggers one wasted recovery and leaves memory untouched.
func TestFalsePositiveCostsARecovery(t *testing.T) {
	cfg := TurnpikeConfig(4, 10)
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	want := goldenRun(t, prog, 40)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= 500 {
			if err := s.InjectFalseDetection(5); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			t.Fatalf("false positive must not kill the run: %v", err)
		}
	}
	if s.Stats.FalseDetections != 1 {
		t.Fatalf("FalseDetections = %d, want 1", s.Stats.FalseDetections)
	}
	if s.Stats.Recoveries == 0 {
		t.Fatal("false positive did not cost a recovery")
	}
	got := maskPrivate(s.OutputMemory())
	if !want.Equal(got) {
		t.Fatalf("false positive corrupted memory:\n%s", want.Diff(got, 8))
	}
}

// TestDegradedModeQuarantines: while degraded, fast release is suspended
// — no WAR-free or colored releases happen until recalibration.
func TestDegradedModeQuarantines(t *testing.T) {
	cfg := TurnpikeConfig(4, 10)
	cfg.DegradeWindow = 1 << 40 // never recalibrate within this run
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	want := goldenRun(t, prog, 40)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	var fastAtInject, quarAtInject uint64
	for !s.Halted() {
		if !injected && s.Stats.Insts >= 500 && s.cur != nil && s.cur.insts > 2 {
			if err := s.InjectBitFlip(4, 48, 12); err != nil {
				t.Fatal(err)
			}
			fastAtInject = s.Stats.WARFreeReleased + s.Stats.ColoredReleased
			quarAtInject = s.Stats.Quarantined
			injected = true
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats.DegradeEntries == 0 {
		t.Fatal("never degraded")
	}
	if s.Stats.DegradeExits != 0 {
		t.Fatal("recalibrated despite an unreachable degrade window")
	}
	// While degraded, quarantine must dominate: fast release only
	// engages as the SB-headroom escape hatch, so quarantined stores
	// after the detection must outnumber fast-released ones.
	fastAfter := s.Stats.WARFreeReleased + s.Stats.ColoredReleased - fastAtInject
	quarAfter := s.Stats.Quarantined - quarAtInject
	if quarAfter == 0 || fastAfter >= quarAfter {
		t.Fatalf("degraded mode not conservative: %d fast vs %d quarantined after detection",
			fastAfter, quarAfter)
	}
	got := maskPrivate(s.OutputMemory())
	if !want.Equal(got) {
		t.Fatalf("SDC in degraded mode:\n%s", want.Diff(got, 8))
	}
}
