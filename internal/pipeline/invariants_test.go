package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestInvariantsHoldDuringRuns steps real workloads and audits the
// simulator's internal state periodically — with and without injected
// faults, across both schemes.
func TestInvariantsHoldDuringRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for _, name := range []string{"gcc", "lbm", "radix", "mcf"} {
		p, _ := workload.ByName(name)
		f := p.Build(3)
		for _, scheme := range []core.Scheme{core.Turnstile, core.Turnpike} {
			opt := core.Options{Scheme: core.Turnstile, SBSize: 4}
			cfg := TurnstileConfig(4, 10)
			if scheme == core.Turnpike {
				opt = core.TurnpikeAll(4)
				cfg = TurnpikeConfig(4, 10)
			}
			c, err := core.Compile(f, opt)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(c.Prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p.SeedMemory(s.Mem)
			injectAt := uint64(rng.Intn(2000) + 100)
			injected := false
			steps := 0
			for !s.Halted() {
				if !injected && s.Stats.Insts >= injectAt {
					if err := s.InjectBitFlip(isa.Reg(1+rng.Intn(28)), uint(rng.Intn(64)), 1+rng.Intn(10)); err != nil {
						t.Fatal(err)
					}
					injected = true
				}
				if err := s.Step(); err != nil {
					t.Fatalf("%s/%v: %v", name, scheme, err)
				}
				steps++
				if steps%97 == 0 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("%s/%v after %d steps: %v", name, scheme, steps, err)
					}
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("%s/%v at halt: %v", name, scheme, err)
			}
		}
	}
}

// TestInvariantsOnFuzz extends the audit to random programs.
func TestInvariantsOnFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for trial := 0; trial < 15; trial++ {
		seed := rng.Int63()
		f := workload.Fuzz(seed)
		c, err := core.Compile(f, core.TurnpikeAll(4))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := New(c.Prog, TurnpikeConfig(4, 10))
		if err != nil {
			t.Fatal(err)
		}
		workload.FuzzSeedMemory(s.Mem, seed)
		steps := 0
		for !s.Halted() {
			if err := s.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			steps++
			if steps%53 == 0 {
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("seed %d after %d steps: %v", seed, steps, err)
				}
			}
		}
	}
}
