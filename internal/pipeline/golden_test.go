package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// captureBench compiles the standard test kernel and captures its golden
// state at the given scale. testing.TB so fuzz targets can share it.
func captureBench(t testing.TB, n int) *GoldenState {
	t.Helper()
	c, err := core.Compile(buildBench(int64(n)), core.TurnpikeAll(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c.Prog, TurnpikeConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, n)
	gs, err := CaptureGolden(s)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

// trialResult is one injected run's complete observable outcome.
type trialResult struct {
	Stats Stats
	Mem   []isa.MemEntry
	Err   string
}

// runInjected drives s to halt, injecting one bit flip when the
// instruction count reaches atInst, and returns everything a campaign
// would observe from the trial.
func runInjected(s *Sim, reg isa.Reg, bit uint, atInst uint64, lat int) trialResult {
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= atInst {
			injected = true
			if err := s.InjectBitFlip(reg, bit, lat); err != nil {
				return trialResult{Stats: s.Stats, Err: err.Error()}
			}
		}
		if err := s.Step(); err != nil {
			return trialResult{Stats: s.Stats, Err: err.Error()}
		}
	}
	return trialResult{Stats: s.Stats, Mem: s.OutputMemory().Snapshot()}
}

// TestSimResetMatchesFresh is the Reset path's contract: a single
// simulator Reset between injected trials produces byte-identical
// results to a fresh Fork per trial, across trials that recover, mask,
// and corrupt state.
func TestSimResetMatchesFresh(t *testing.T) {
	gs := captureBench(t, 60)
	reused, err := gs.Fork()
	if err != nil {
		t.Fatal(err)
	}
	insts := gs.Stats().Insts
	for i := 0; i < 24; i++ {
		reg := isa.Reg(1 + i%31)
		bit := uint((i * 7) % 64)
		at := 1 + uint64(i)*insts/25
		lat := 1 + i%10

		gs.Reset(reused)
		got := runInjected(reused, reg, bit, at, lat)

		fresh, err := gs.Fork()
		if err != nil {
			t.Fatal(err)
		}
		want := runInjected(fresh, reg, bit, at, lat)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (r%d bit %d at %d lat %d): reused Reset diverged from fresh fork\nreused: %+v\nfresh:  %+v",
				i, reg, bit, at, lat, got, want)
		}
	}
}

// TestGoldenForkIsolation: corrupting or running one fork must not leak
// into a sibling fork or into the snapshot itself, and Reset must fully
// recover the corrupted fork.
func TestGoldenForkIsolation(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, s *Sim)
	}{
		{"registers", func(t *testing.T, s *Sim) {
			for r := range s.Regs {
				s.Regs[r] = 0xDEADBEEF
				s.Taint[r] = true
			}
		}},
		{"memory", func(t *testing.T, s *Sim) {
			s.Mem.Store(isa.DataBase, 0xBAD)
			s.Mem.Store(isa.DataBase+8, 0)
			s.Mem.Store(isa.StackBase, 0xBAD)
		}},
		{"run-to-halt", func(t *testing.T, s *Sim) {
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
		}},
		{"injected-run", func(t *testing.T, s *Sim) {
			runInjected(s, 3, 17, 40, 5)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gs := captureBench(t, 60)
			goldenImage := gs.Output().Snapshot()
			goldenStats := gs.Stats()

			// Warm reference: what any clean fork run must reproduce.
			// (Forks start from the warmed cache snapshot, so their cycle
			// counts differ from the cold capture run's — deterministically.)
			ref, err := gs.Fork()
			if err != nil {
				t.Fatal(err)
			}
			refStats, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.OutputMemory().Snapshot(), goldenImage) {
				t.Fatal("clean fork run does not reproduce the golden output")
			}

			a, err := gs.Fork()
			if err != nil {
				t.Fatal(err)
			}
			b, err := gs.Fork()
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, a)

			// The sibling fork is untouched: its clean run reproduces the
			// reference output and statistics exactly.
			st, err := b.Run()
			if err != nil {
				t.Fatalf("sibling run: %v", err)
			}
			if !reflect.DeepEqual(b.OutputMemory().Snapshot(), goldenImage) {
				t.Error("sibling fork output diverged after corrupting its sibling")
			}
			if st != refStats {
				t.Errorf("sibling stats diverged: %+v vs %+v", st, refStats)
			}

			// The snapshot itself is immutable.
			if !reflect.DeepEqual(gs.Output().Snapshot(), goldenImage) {
				t.Error("golden output mutated by a fork")
			}
			if gs.Stats() != goldenStats {
				t.Error("golden stats mutated by a fork")
			}

			// Reset recovers the corrupted fork completely.
			gs.Reset(a)
			st, err = a.Run()
			if err != nil {
				t.Fatalf("post-Reset run: %v", err)
			}
			if !reflect.DeepEqual(a.OutputMemory().Snapshot(), goldenImage) {
				t.Error("Reset did not recover the corrupted fork")
			}
			if st != refStats {
				t.Errorf("post-Reset stats diverged: %+v vs %+v", st, refStats)
			}
		})
	}
}

// FuzzGoldenFork fuzzes the Reset-vs-fresh-fork equivalence over the
// whole injection parameter space: for any strike, a reused simulator
// that has already executed a prior corrupting trial must reproduce a
// fresh fork's result bit for bit.
func FuzzGoldenFork(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint16(1), uint8(1))
	f.Add(uint8(3), uint8(17), uint16(40), uint8(5))
	f.Add(uint8(31), uint8(63), uint16(500), uint8(10))
	f.Add(uint8(7), uint8(32), uint16(65535), uint8(3))

	gs := captureBench(f, 40)
	reused, err := gs.Fork()
	if err != nil {
		f.Fatal(err)
	}
	insts := gs.Stats().Insts

	f.Fuzz(func(t *testing.T, regRaw, bitRaw uint8, atRaw uint16, latRaw uint8) {
		reg := isa.Reg(1 + int(regRaw)%(isa.NumRegs-1))
		bit := uint(bitRaw) % 64
		at := 1 + uint64(atRaw)%insts
		lat := 1 + int(latRaw)%10

		// Dirty the reused simulator with a fixed corrupting trial first,
		// so Reset always starts from non-trivial residue.
		gs.Reset(reused)
		runInjected(reused, 5, 11, at/2+1, 2)

		gs.Reset(reused)
		got := runInjected(reused, reg, bit, at, lat)

		fresh, err := gs.Fork()
		if err != nil {
			t.Fatal(err)
		}
		want := runInjected(fresh, reg, bit, at, lat)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("reused Reset diverged from fresh fork for r%d bit %d at %d lat %d",
				reg, bit, at, lat)
		}
	})
}
