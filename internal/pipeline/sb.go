package pipeline

import (
	"fmt"

	"repro/internal/isa"
)

// infCycle marks "no event" times.
const infCycle = ^uint64(0)

// sbEntry is one gated-store-buffer slot.
type sbEntry struct {
	addr, val uint64
	// quarantined entries apply to memory at drain, which requires their
	// region to be *verified* (not merely for a timestamp to pass — a
	// pending error detection can abort a verification whose window the
	// simulated clock has already jumped over). Fast/baseline entries are
	// applied at commit and model drain bandwidth only.
	quarantined bool
	region      *regionInst // nil when not resilient
	commitAt    uint64
	isCkpt      bool
	ckptReg     isa.Reg
	seq         uint64
}

// drainableAt returns the earliest cycle this entry may drain, ignoring
// the 1-per-cycle port: commit time for fast entries, the region's
// verification time for quarantined ones (infCycle until verified regions
// are processed — callers advance time, which runs verification).
func (e *sbEntry) drainableAt() uint64 {
	if !e.quarantined {
		return e.commitAt
	}
	if e.region == nil || !e.region.verified {
		return infCycle
	}
	return e.region.verifyAt
}

// pendingVerifyAt returns when the entry *would* become drainable assuming
// verification proceeds undisturbed; used to size structural-hazard stalls.
func (e *sbEntry) pendingVerifyAt() uint64 {
	if !e.quarantined {
		return e.commitAt
	}
	if e.region == nil {
		return infCycle
	}
	return e.region.verifyAt // infCycle while the region is still open
}

// storeBuffer models the GSB: bounded entries, one drain per cycle to L1,
// oldest-drainable-first (out-of-order across quarantine classes is safe —
// the simulator's WAW check refuses fast release when an older same-address
// entry is pending).
type storeBuffer struct {
	entries   []sbEntry
	cap       int
	lastDrain uint64
	seq       uint64

	// obs mirrors the simulator's attachment (AttachObs); nil when
	// observability is disabled.
	obs *Obs
}

func newStoreBuffer(capacity int) *storeBuffer {
	return &storeBuffer{cap: capacity}
}

// reset returns the buffer to its initial empty state, keeping the
// entries backing array so campaign trials reuse it allocation-free.
func (sb *storeBuffer) reset() {
	sb.entries = sb.entries[:0]
	sb.lastDrain = 0
	sb.seq = 0
}

func (sb *storeBuffer) full() bool { return len(sb.entries) >= sb.cap }
func (sb *storeBuffer) len() int   { return len(sb.entries) }

// push appends a committed store. Callers must ensure space (drain/stall).
func (sb *storeBuffer) push(e sbEntry) {
	sb.seq++
	e.seq = sb.seq
	sb.entries = append(sb.entries, e)
	if sb.obs != nil && sb.obs.sbOcc != nil {
		sb.obs.sbOcc.Observe(uint64(len(sb.entries)))
	}
}

// drainUntil retires drainable entries with the 1/cycle port up to cycle
// now, applying quarantined writes to mem. Verification state must be
// current (the simulator advances time before calling).
func (sb *storeBuffer) drainUntil(now uint64, mem *isa.Memory) {
	for {
		i := sb.oldestDrainable()
		if i < 0 {
			return
		}
		t := sb.entries[i].drainableAt()
		if t < sb.lastDrain+1 {
			t = sb.lastDrain + 1
		}
		if t > now {
			return
		}
		sb.applyAndRemove(i, t, mem)
		sb.lastDrain = t
	}
}

// nextEventAt returns the earliest cycle at which some entry could drain,
// assuming pending verifications complete on schedule. infCycle means the
// buffer is wedged on an open region (a partitioning bug).
func (sb *storeBuffer) nextEventAt() uint64 {
	best := infCycle
	for i := range sb.entries {
		t := sb.entries[i].pendingVerifyAt()
		if t == infCycle {
			continue
		}
		if t < sb.lastDrain+1 {
			t = sb.lastDrain + 1
		}
		if t < best {
			best = t
		}
	}
	return best
}

func (sb *storeBuffer) oldestDrainable() int {
	best := -1
	for i := range sb.entries {
		if sb.entries[i].drainableAt() == infCycle {
			continue
		}
		if best == -1 || sb.entries[i].seq < sb.entries[best].seq {
			best = i
		}
	}
	return best
}

func (sb *storeBuffer) applyAndRemove(i int, drainAt uint64, mem *isa.Memory) {
	e := sb.entries[i]
	if e.quarantined {
		mem.Store(e.addr, e.val)
	}
	if sb.obs != nil {
		sb.obs.obsDrained(&e, drainAt)
	}
	sb.entries = append(sb.entries[:i], sb.entries[i+1:]...)
}

// hasOlderSameAddr reports whether any pending entry targets addr — the
// WAW guard consulted before fast-releasing a store (the forwarding CAM
// provides this search in hardware).
func (sb *storeBuffer) hasOlderSameAddr(addr uint64) bool {
	for i := range sb.entries {
		if sb.entries[i].addr == addr {
			return true
		}
	}
	return false
}

// forward searches quarantined entries for the youngest value at addr
// (store-to-load forwarding); fast entries already hit memory.
func (sb *storeBuffer) forward(addr uint64) (uint64, bool) {
	bestSeq := uint64(0)
	var val uint64
	found := false
	for i := range sb.entries {
		e := &sb.entries[i]
		if e.quarantined && e.addr == addr && e.seq >= bestSeq {
			bestSeq, val, found = e.seq, e.val, true
		}
	}
	return val, found
}

// discardUnverified drops quarantined entries of unverified regions;
// recovery calls this after squashing the RBB. Returns the count dropped.
func (sb *storeBuffer) discardUnverified() int {
	n := 0
	kept := sb.entries[:0]
	for i := range sb.entries {
		e := sb.entries[i]
		if e.quarantined && (e.region == nil || !e.region.verified) {
			n++
			continue
		}
		kept = append(kept, e)
	}
	sb.entries = kept
	return n
}

// wedgedError describes a store buffer that can never drain.
func (sb *storeBuffer) wedgedError() error {
	return fmt.Errorf("pipeline: store buffer wedged: %d entries, none can ever drain (region exceeds SB size?)", len(sb.entries))
}
