package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
)

// buildBench builds a loop kernel with loads, branching, cross-region live
// values, and both WAR and WAR-free stores — enough structure to exercise
// every simulator mechanism.
func buildBench(n int64) *ir.Func {
	b := ir.NewBuilder("bench")
	a := b.MovI(int64(isa.DataBase))
	out := b.MovI(int64(isa.DataBase) + 8192)
	i := b.MovI(0)
	s := b.MovI(0)
	head, body, odd, join, exit := b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, n, exit, body)
	b.SetBlock(body)
	off := b.OpI(isa.SHL, i, 3)
	ai := b.Op(isa.ADD, a, off)
	v := b.Load(ai, 0)
	b.OpTo(isa.ADD, s, s, v)
	oi := b.Op(isa.ADD, out, off)
	b.Store(oi, 0, s) // WAR-free (never loaded in-region)
	b.Store(ai, 0, s) // WAR with the load above (same address)
	bit := b.OpI(isa.AND, v, 1)
	b.BranchI(isa.BEQ, bit, 1, odd, join)
	b.SetBlock(odd)
	b.OpITo(isa.XOR, s, s, 0x55)
	b.Fallthrough(join)
	b.SetBlock(join)
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)
	b.SetBlock(exit)
	b.Store(out, 4096, s)
	b.Halt()
	return b.MustFinish()
}

func seed(mem *isa.Memory, n int) {
	for i := 0; i < n; i++ {
		mem.Store(isa.DataBase+uint64(i)*8, uint64(i*31+7))
	}
}

func maskPrivate(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		if e.Addr >= isa.DefaultCkptBase {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}

func goldenRun(t *testing.T, prog *isa.Program, n int) *isa.Memory {
	t.Helper()
	m := isa.NewMachine(prog)
	m.StepLimit = 100_000_000
	seed(m.Mem, n)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return maskPrivate(m.OutputMemory())
}

func compileFor(t *testing.T, f *ir.Func, scheme core.Scheme, sb int) *isa.Program {
	t.Helper()
	opt := core.Options{Scheme: scheme, SBSize: sb}
	if scheme == core.Turnpike {
		opt = core.TurnpikeAll(sb)
	}
	c, err := core.Compile(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c.Prog
}

func simRun(t *testing.T, prog *isa.Program, cfg Config, n int) (*Sim, Stats) {
	t.Helper()
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, n)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

func TestBaselineFunctionalEquivalence(t *testing.T) {
	f := buildBench(60)
	prog := compileFor(t, f, core.Baseline, 4)
	want := goldenRun(t, prog, 60)
	s, st := simRun(t, prog, BaselineConfig(4), 60)
	if !want.Equal(maskPrivate(s.OutputMemory())) {
		t.Fatalf("baseline sim output differs:\n%s", want.Diff(maskPrivate(s.OutputMemory()), 10))
	}
	if st.Cycles == 0 || st.Insts == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	if st.IPC() > float64(BaselineConfig(4).IssueWidth) {
		t.Fatalf("IPC %.2f exceeds issue width", st.IPC())
	}
}

func TestTurnstileFunctionalEquivalence(t *testing.T) {
	f := buildBench(60)
	prog := compileFor(t, f, core.Turnstile, 4)
	want := goldenRun(t, prog, 60)
	s, st := simRun(t, prog, TurnstileConfig(4, 10), 60)
	if !want.Equal(maskPrivate(s.OutputMemory())) {
		t.Fatalf("turnstile sim output differs")
	}
	if st.Quarantined == 0 {
		t.Fatal("turnstile quarantined nothing")
	}
	if st.WARFreeReleased != 0 || st.ColoredReleased != 0 {
		t.Fatal("turnstile fast-released stores")
	}
	if st.RegionsExecuted < 60 {
		t.Fatalf("regions executed = %d", st.RegionsExecuted)
	}
}

func TestTurnpikeFunctionalEquivalence(t *testing.T) {
	f := buildBench(60)
	prog := compileFor(t, f, core.Turnpike, 4)
	want := goldenRun(t, prog, 60)
	s, st := simRun(t, prog, TurnpikeConfig(4, 10), 60)
	if !want.Equal(maskPrivate(s.OutputMemory())) {
		t.Fatalf("turnpike sim output differs:\n%s", want.Diff(maskPrivate(s.OutputMemory()), 10))
	}
	if st.WARFreeReleased == 0 {
		t.Fatal("no WAR-free fast releases")
	}
	if st.ColoredReleased == 0 {
		t.Fatal("no colored checkpoint releases")
	}
}

func TestOverheadOrdering(t *testing.T) {
	// The paper's headline: cycles(baseline) <= cycles(turnpike) <
	// cycles(turnstile) for the small-SB in-order configuration.
	f := buildBench(200)
	base := compileFor(t, f, core.Baseline, 4)
	tsProg := compileFor(t, f, core.Turnstile, 4)
	tpProg := compileFor(t, f, core.Turnpike, 4)

	_, stBase := simRun(t, base, BaselineConfig(4), 200)
	_, stTS := simRun(t, tsProg, TurnstileConfig(4, 30), 200)
	_, stTP := simRun(t, tpProg, TurnpikeConfig(4, 30), 200)

	if stTS.Cycles <= stBase.Cycles {
		t.Fatalf("turnstile (%d) not slower than baseline (%d)", stTS.Cycles, stBase.Cycles)
	}
	if stTP.Cycles >= stTS.Cycles {
		t.Fatalf("turnpike (%d) not faster than turnstile (%d)", stTP.Cycles, stTS.Cycles)
	}
}

func TestWCDLScalesTurnstileOverhead(t *testing.T) {
	f := buildBench(150)
	prog := compileFor(t, f, core.Turnstile, 4)
	var prev uint64
	for _, wcdl := range []int{10, 30, 50} {
		_, st := simRun(t, prog, TurnstileConfig(4, wcdl), 150)
		if st.Cycles < prev {
			t.Fatalf("cycles decreased when WCDL grew: %d -> %d", prev, st.Cycles)
		}
		prev = st.Cycles
	}
}

func TestSBSizeReducesTurnstileOverhead(t *testing.T) {
	f := buildBench(150)
	var prev uint64 = 1 << 62
	for _, sb := range []int{4, 8, 40} {
		prog := compileFor(t, f, core.Turnstile, sb)
		_, st := simRun(t, prog, TurnstileConfig(sb, 10), 150)
		if st.Cycles > prev {
			t.Fatalf("cycles increased when SB grew to %d: %d -> %d", sb, prev, st.Cycles)
		}
		prev = st.Cycles
	}
}

func TestWARDetectionQuarantinesConflict(t *testing.T) {
	// A region that loads an address then stores to it must quarantine
	// that store; the disjoint store must fast-release.
	f := buildBench(50)
	prog := compileFor(t, f, core.Turnpike, 4)
	_, st := simRun(t, prog, TurnpikeConfig(4, 10), 50)
	if st.Quarantined == 0 {
		t.Fatal("WAR store escaped quarantine")
	}
	if st.WARFreeReleased == 0 {
		t.Fatal("disjoint store not fast-released")
	}
}

func TestIdealCLQBeatsCompactOnDetection(t *testing.T) {
	f := buildBench(120)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfgC := TurnpikeConfig(4, 10)
	cfgI := cfgC
	cfgI.CLQ = CLQIdeal
	_, stC := simRun(t, prog, cfgC, 120)
	_, stI := simRun(t, prog, cfgI, 120)
	if stI.WARFreeReleased < stC.WARFreeReleased {
		t.Fatalf("ideal CLQ detected fewer WAR-free stores (%d) than compact (%d)",
			stI.WARFreeReleased, stC.WARFreeReleased)
	}
	if stI.Cycles > stC.Cycles {
		t.Fatalf("ideal CLQ slower (%d) than compact (%d)", stI.Cycles, stC.Cycles)
	}
}

func TestCLQOccupancyBounded(t *testing.T) {
	f := buildBench(100)
	prog := compileFor(t, f, core.Turnpike, 4)
	_, st := simRun(t, prog, TurnpikeConfig(4, 10), 100)
	if st.CLQOccMax > 2 {
		t.Fatalf("compact CLQ occupancy %d exceeds capacity 2", st.CLQOccMax)
	}
	if st.CLQOccSamples == 0 {
		t.Fatal("no occupancy samples")
	}
}

func TestDeterminism(t *testing.T) {
	f := buildBench(80)
	prog := compileFor(t, f, core.Turnpike, 4)
	_, a := simRun(t, prog, TurnpikeConfig(4, 10), 80)
	_, b := simRun(t, prog, TurnpikeConfig(4, 10), 80)
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// --- Fault injection ---

func TestFaultRecoveryNoSDC(t *testing.T) {
	// Inject single-bit flips at random points under both schemes; the
	// final memory must always equal the fault-free image — the paper's
	// SDC-freedom guarantee as an executable property.
	f := buildBench(40)
	for _, scheme := range []core.Scheme{core.Turnstile, core.Turnpike} {
		prog := compileFor(t, f, scheme, 4)
		want := goldenRun(t, prog, 40)
		cfg := TurnstileConfig(4, 10)
		if scheme == core.Turnpike {
			cfg = TurnpikeConfig(4, 10)
		}
		rng := rand.New(rand.NewSource(12345))
		for trial := 0; trial < 60; trial++ {
			s, err := New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			seed(s.Mem, 40)
			injectAt := uint64(rng.Intn(3000))
			reg := isa.Reg(1 + rng.Intn(28))
			bit := uint(rng.Intn(64))
			lat := 1 + rng.Intn(cfg.WCDL)
			injected := false
			for !s.Halted() {
				if !injected && s.Stats.Insts >= injectAt {
					if err := s.InjectBitFlip(reg, bit, lat); err != nil {
						t.Fatal(err)
					}
					injected = true
				}
				if err := s.Step(); err != nil {
					t.Fatalf("%v trial %d: %v", scheme, trial, err)
				}
			}
			got := maskPrivate(s.OutputMemory())
			if !want.Equal(got) {
				t.Fatalf("%v trial %d (reg=%v bit=%d at=%d lat=%d): SDC!\n%s",
					scheme, trial, reg, bit, injectAt, lat, want.Diff(got, 10))
			}
			if injected && s.Stats.Recoveries == 0 && s.Stats.ParityTrips == 0 {
				// A flip of a dead register may truly not need recovery —
				// but the detection event must still have fired.
				t.Fatalf("%v trial %d: injected fault never detected", scheme, trial)
			}
		}
	}
}

func TestRecoveryReexecutionCost(t *testing.T) {
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= 500 {
			if err := s.InjectBitFlip(5, 3, 5); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats.Recoveries == 0 {
		t.Fatal("no recovery happened")
	}
	if s.Stats.RecoveryCycles == 0 {
		t.Fatal("recovery cost not accounted")
	}
}

func TestInjectValidation(t *testing.T) {
	f := buildBench(10)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	cfg.DetectQueue = 2
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectBitFlip(1, 0, 0); err == nil {
		t.Fatal("accepted zero latency")
	}
	// Latency beyond WCDL models a degraded mesh and is accepted; the
	// strike is flagged late.
	if err := s.InjectBitFlip(1, 0, 11); err != nil {
		t.Fatal(err)
	}
	if s.Stats.LateDetections != 1 {
		t.Fatalf("LateDetections = %d, want 1", s.Stats.LateDetections)
	}
	// Bursts are accepted up to the queue bound.
	if err := s.InjectBitFlip(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectBitFlip(1, 0, 5); err == nil {
		t.Fatal("accepted a burst beyond the detect-queue capacity")
	}
	b, err := New(prog, BaselineConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.InjectBitFlip(1, 0, 5); err == nil {
		t.Fatal("baseline accepted injection")
	}
}

func TestConfigValidation(t *testing.T) {
	f := buildBench(10)
	prog := compileFor(t, f, core.Turnpike, 4)
	bad := TurnpikeConfig(4, 10)
	bad.SBSize = 0
	if _, err := New(prog, bad); err == nil {
		t.Fatal("accepted SB size 0")
	}
	bad = TurnpikeConfig(4, 0)
	if _, err := New(prog, bad); err == nil {
		t.Fatal("accepted WCDL 0")
	}
	baseProg := compileFor(t, f, core.Baseline, 4)
	if _, err := New(baseProg, TurnpikeConfig(4, 10)); err == nil {
		t.Fatal("accepted resilient sim of region-less program")
	}
}
