package pipeline

import (
	"fmt"

	"repro/internal/isa"
)

// CheckInvariants audits the simulator's internal consistency; tests call
// it periodically while stepping (it is O(state), too heavy for every
// cycle in production use). A non-nil error indicates a simulator bug, not
// a program bug.
//
// Invariants:
//
//  1. RBB holds unverified regions in FIFO (monotone instance) order, all
//     with monotone start cycles; at most one (the last) is still open.
//  2. The store buffer never exceeds its capacity, and every quarantined
//     entry's region is tracked (in the RBB or already verified).
//  3. The color maps partition each register's pool: free + in-flight
//     (UC) + verified (VC) colors are distinct and total NumColors.
//  4. The compact CLQ occupancy never exceeds its capacity, and every
//     entry belongs to an unverified region.
func (s *Sim) CheckInvariants() error {
	// 1: RBB ordering.
	for i := 1; i < len(s.rbb); i++ {
		if s.rbb[i].id <= s.rbb[i-1].id {
			return fmt.Errorf("invariant: RBB instances out of order at %d", i)
		}
		if s.rbb[i].start < s.rbb[i-1].start {
			return fmt.Errorf("invariant: RBB starts out of order at %d", i)
		}
	}
	for i, r := range s.rbb {
		if r.verified {
			return fmt.Errorf("invariant: verified region %d still in RBB", r.id)
		}
		open := r.verifyAt == infCycle
		if open && i != len(s.rbb)-1 {
			return fmt.Errorf("invariant: open region %d is not the RBB tail", r.id)
		}
	}

	// 2: store buffer.
	if s.sb.len() > s.Cfg.SBSize {
		return fmt.Errorf("invariant: SB holds %d > %d entries", s.sb.len(), s.Cfg.SBSize)
	}
	inRBB := map[*regionInst]bool{}
	for _, r := range s.rbb {
		inRBB[r] = true
	}
	for i := range s.sb.entries {
		e := &s.sb.entries[i]
		if !e.quarantined {
			continue
		}
		if e.region == nil {
			return fmt.Errorf("invariant: quarantined SB entry without region")
		}
		if !e.region.verified && !inRBB[e.region] {
			return fmt.Errorf("invariant: quarantined entry's region %d neither tracked nor verified", e.region.id)
		}
	}

	// 3: color partition.
	if s.colors != nil {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			seen := map[int]string{}
			claim := func(c int, who string) error {
				if c < 0 || c >= isa.NumColors {
					return fmt.Errorf("invariant: %v color %d out of range (%s)", r, c, who)
				}
				if prev, dup := seen[c]; dup {
					return fmt.Errorf("invariant: %v color %d claimed by %s and %s", r, c, prev, who)
				}
				seen[c] = who
				return nil
			}
			for _, c := range s.colors.free[r] {
				if err := claim(c, "AC"); err != nil {
					return err
				}
			}
			if vc := s.colors.vc[r]; vc >= 0 {
				if err := claim(vc, "VC"); err != nil {
					return err
				}
			}
			for _, reg := range s.rbb {
				if c, ok := reg.colors[r]; ok {
					if err := claim(c, fmt.Sprintf("UC(region %d)", reg.id)); err != nil {
						return err
					}
				}
			}
			if len(seen) > isa.NumColors {
				return fmt.Errorf("invariant: %v has %d colors", r, len(seen))
			}
		}
	}

	// 4: CLQ.
	if c, ok := s.clq.(*compactCLQ); ok && c != nil {
		if c.occupancy() > len(c.entries) {
			return fmt.Errorf("invariant: CLQ occupancy exceeds capacity")
		}
		unverified := map[int]bool{}
		for _, r := range s.rbb {
			unverified[r.id] = true
		}
		for _, e := range c.entries {
			if e.used && !unverified[e.region] {
				return fmt.Errorf("invariant: CLQ entry for verified/unknown region %d", e.region)
			}
		}
	}
	return nil
}
