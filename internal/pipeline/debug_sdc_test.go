package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// TestDebugSDCTrace reproduces one failing injection with tracing to
// pinpoint the recovery hole; kept as a regression test for that exact
// scenario once fixed.
func TestDebugSDCTrace(t *testing.T) {
	f := buildBench(40)
	c, err := core.Compile(f, core.TurnpikeAll(4))
	if err != nil {
		t.Fatal(err)
	}
	prog := c.Prog
	want := goldenRun(t, prog, 40)

	cfg := TurnpikeConfig(4, 10)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= 83 {
			t.Logf("inject at inst=%d pc=%d cycle=%d r4=%#x", s.Stats.Insts, s.PC, s.cycle, s.Regs[4])
			if err := s.InjectBitFlip(4, 48, 7); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		pc := s.PC
		in := prog.Insts[pc]
		if in.Op == isa.ST && injected && s.Stats.Recoveries == 0 {
			addr := s.Regs[in.Rs1] + uint64(in.Imm)
			t.Logf("pre-recovery store pc=%d %v addr=%#x val=%#x taint1=%v taint2=%v cycle=%d pend=%d",
				pc, in.String(), addr, s.Regs[in.Rs2], s.Taint[in.Rs1], s.Taint[in.Rs2], s.cycle, s.nextDetectAt())
		}
		wasRec := s.Stats.Recoveries
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if s.Stats.Recoveries != wasRec {
			t.Logf("RECOVERY at cycle=%d -> pc=%d", s.cycle, s.PC)
		}
	}
	got := maskPrivate(s.OutputMemory())
	if !want.Equal(got) {
		dis := prog.Disassemble()
		t.Fatalf("SDC persists:\n%s\ndisasm:\n%s", want.Diff(got, 12), dis)
	}
}
