package pipeline

// Region event log: optional per-region observability for tools and
// tests. When Config.RecordRegions is set, the simulator appends one
// RegionEvent per dynamic region at the moment its fate is decided
// (verified or squashed by recovery), carrying its timing and the fate of
// every store it committed. cmd/trace renders these; tests cross-check
// them against the aggregate counters.

// RegionEvent describes one dynamic region's life.
type RegionEvent struct {
	// Instance is the dynamic region ID; StaticID the compiler region.
	Instance, StaticID int
	// BoundPC is the boundary's program counter.
	BoundPC int
	// Start/End are the cycles the region opened and closed; VerifyAt is
	// End + WCDL. End==0 means the region was still open when squashed.
	Start, End, VerifyAt uint64
	// Squashed regions were discarded by recovery instead of verifying.
	Squashed bool
	// Store fates and instruction count within the region.
	WARFree, Colored, Quarantined int
	Insts                         uint64
}

// RegionLog returns the recorded events (nil unless Config.RecordRegions).
func (s *Sim) RegionLog() []RegionEvent { return s.regionLog }

// logRegion appends the event for a closed region.
func (s *Sim) logRegion(r *regionInst, squashed bool) {
	if !s.Cfg.RecordRegions {
		return
	}
	s.regionLog = append(s.regionLog, RegionEvent{
		Instance:    r.id,
		StaticID:    r.staticID,
		BoundPC:     r.boundPC,
		Start:       r.start,
		End:         r.end,
		VerifyAt:    r.verifyAt,
		Squashed:    squashed,
		WARFree:     r.warFree,
		Colored:     r.colored,
		Quarantined: r.quarantined,
		Insts:       r.insts,
	})
}
