package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// checkRegionAttribution asserts the region-attribution invariant: every
// committed instruction and every store fate either belongs to exactly one
// RegionEvent or to the OutsideRegion* remainders.
func checkRegionAttribution(t *testing.T, log []RegionEvent, st Stats) {
	t.Helper()
	if len(log) == 0 {
		t.Fatal("no region events recorded")
	}
	var war, col, quar, insts uint64
	for _, ev := range log {
		war += uint64(ev.WARFree)
		col += uint64(ev.Colored)
		quar += uint64(ev.Quarantined)
		insts += ev.Insts
	}
	if insts+st.OutsideRegionInsts != st.Insts {
		t.Fatalf("inst attribution: region %d + outside %d != total %d",
			insts, st.OutsideRegionInsts, st.Insts)
	}
	if quar+st.OutsideRegionStores != st.Quarantined {
		t.Fatalf("quarantine attribution: region %d + outside %d != total %d",
			quar, st.OutsideRegionStores, st.Quarantined)
	}
	if war != st.WARFreeReleased {
		t.Fatalf("WAR-free attribution: region %d != total %d", war, st.WARFreeReleased)
	}
	if col != st.ColoredReleased {
		t.Fatalf("colored attribution: region %d != total %d", col, st.ColoredReleased)
	}
}

// TestRegionAttributionCrossCheck runs every resilient scheme fault-free
// and cross-checks the per-region event sums against the aggregate
// counters.
func TestRegionAttributionCrossCheck(t *testing.T) {
	f := buildBench(100)
	cases := []struct {
		name   string
		scheme core.Scheme
		cfg    Config
	}{
		{"turnstile", core.Turnstile, TurnstileConfig(4, 10)},
		{"turnpike", core.Turnpike, TurnpikeConfig(4, 10)},
		{"turnpike-wcdl30", core.Turnpike, TurnpikeConfig(4, 30)},
		{"turnpike-sb2", core.Turnpike, TurnpikeConfig(2, 10)},
	}
	ideal := TurnpikeConfig(4, 10)
	ideal.CLQ = CLQIdeal
	cases = append(cases, struct {
		name   string
		scheme core.Scheme
		cfg    Config
	}{"turnpike-clq-ideal", core.Turnpike, ideal})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compileFor(t, f, tc.scheme, tc.cfg.SBSize)
			cfg := tc.cfg
			cfg.RecordRegions = true
			s, st := simRun(t, prog, cfg, 100)
			checkRegionAttribution(t, s.RegionLog(), st)
			for _, ev := range s.RegionLog() {
				if ev.Squashed {
					t.Fatalf("fault-free run squashed region %d", ev.Instance)
				}
			}
		})
	}
}

// TestRegionAttributionUnderFaults injects repeated bit flips (forcing
// squashes and recovery-block execution) and checks that the attribution
// invariant still holds exactly — squashed regions report the work they
// did before being discarded, and recovery-block work lands in the
// OutsideRegion* remainders.
func TestRegionAttributionUnderFaults(t *testing.T) {
	f := buildBench(100)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	cfg.RecordRegions = true
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 100)
	rng := rand.New(rand.NewSource(7))
	nextInject := uint64(20)
	for !s.Halted() {
		if s.Stats.Insts >= nextInject && !s.inRecovery {
			if err := s.InjectBitFlip(4, uint(rng.Intn(30)), 1+rng.Intn(10)); err != nil {
				t.Fatal(err)
			}
			nextInject = s.Stats.Insts + 150
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats
	if st.Recoveries == 0 {
		t.Fatal("no recoveries triggered; test is vacuous")
	}
	squashed := 0
	for _, ev := range s.RegionLog() {
		if ev.Squashed {
			squashed++
		}
	}
	if squashed == 0 {
		t.Fatal("no squashed regions recorded; test is vacuous")
	}
	if st.OutsideRegionInsts == 0 {
		t.Fatal("recovery blocks executed but OutsideRegionInsts is zero")
	}
	checkRegionAttribution(t, s.RegionLog(), st)
}
