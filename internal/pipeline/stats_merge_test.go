package pipeline

import (
	"reflect"
	"testing"
)

// TestStatsMergeCoversEveryField drives Stats.Merge through reflection:
// every uint64 field must either sum (counters) or take the maximum
// (CLQOccMax). Adding a field to Stats without extending Merge fails
// here.
func TestStatsMergeCoversEveryField(t *testing.T) {
	var a, b Stats
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	tt := av.Type()
	for i := 0; i < tt.NumField(); i++ {
		if tt.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("Stats.%s is %v; Merge and FillStats only handle uint64 — extend them and this test",
				tt.Field(i).Name, tt.Field(i).Type)
		}
		av.Field(i).SetUint(uint64(i + 1))
		bv.Field(i).SetUint(uint64(1000 + i))
	}

	got := a // copy
	got.Merge(&b)
	gv := reflect.ValueOf(got)
	for i := 0; i < tt.NumField(); i++ {
		name := tt.Field(i).Name
		x, y := uint64(i+1), uint64(1000+i)
		want := x + y
		if name == "CLQOccMax" || name == "DetectQueuePeak" {
			want = y // max, not sum
		}
		if gv.Field(i).Uint() != want {
			t.Errorf("Merge %s = %d, want %d", name, gv.Field(i).Uint(), want)
		}
	}

	// Merging a zero value is the identity.
	before := got
	var zero Stats
	got.Merge(&zero)
	if got != before {
		t.Fatalf("merging a zero Stats changed the value:\n%+v\n%+v", before, got)
	}
}
