package pipeline

import (
	"testing"

	"repro/internal/core"
)

// TestRegionLogConsistency cross-checks the per-region event log against
// the aggregate counters and the region timing invariants.
func TestRegionLogConsistency(t *testing.T) {
	f := buildBench(80)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	cfg.RecordRegions = true
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 80)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	log := s.RegionLog()
	if len(log) == 0 {
		t.Fatal("no region events recorded")
	}
	var war, col, quar, insts uint64
	lastInstance := -1
	for _, ev := range log {
		if ev.Instance <= lastInstance {
			t.Fatalf("events out of instance order: %d after %d", ev.Instance, lastInstance)
		}
		lastInstance = ev.Instance
		if ev.Squashed {
			t.Fatalf("fault-free run squashed region %d", ev.Instance)
		}
		if ev.End < ev.Start {
			t.Fatalf("region %d ends (%d) before it starts (%d)", ev.Instance, ev.End, ev.Start)
		}
		if ev.VerifyAt != ev.End+uint64(cfg.WCDL) && ev.VerifyAt != ev.End {
			// The final region's window is collapsed at halt.
			t.Fatalf("region %d verify %d != end %d + WCDL %d", ev.Instance, ev.VerifyAt, ev.End, cfg.WCDL)
		}
		war += uint64(ev.WARFree)
		col += uint64(ev.Colored)
		quar += uint64(ev.Quarantined)
		insts += ev.Insts
	}
	if war != st.WARFreeReleased || col != st.ColoredReleased || quar != st.Quarantined {
		t.Fatalf("per-region sums (%d/%d/%d) != aggregates (%d/%d/%d)",
			war, col, quar, st.WARFreeReleased, st.ColoredReleased, st.Quarantined)
	}
	if insts != st.Insts {
		t.Fatalf("per-region insts %d != total %d", insts, st.Insts)
	}
	if uint64(len(log)) != st.RegionsExecuted {
		t.Fatalf("%d events for %d regions", len(log), st.RegionsExecuted)
	}
}

// TestRegionLogSquashOnRecovery: squashed regions appear in the log with
// the flag set when a fault triggers recovery.
func TestRegionLogSquashOnRecovery(t *testing.T) {
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	cfg.RecordRegions = true
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 40)
	injected := false
	for !s.Halted() {
		if !injected && s.Stats.Insts >= 300 {
			if err := s.InjectBitFlip(4, 9, 5); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats.Recoveries == 0 {
		t.Skip("fault masked before a region closed")
	}
	squashed := 0
	for _, ev := range s.RegionLog() {
		if ev.Squashed {
			squashed++
		}
	}
	if squashed == 0 {
		t.Fatal("recovery happened but no region logged as squashed")
	}
}

// TestRegionLogDisabledByDefault: without the flag, no events accumulate.
func TestRegionLogDisabledByDefault(t *testing.T) {
	f := buildBench(20)
	prog := compileFor(t, f, core.Turnpike, 4)
	s, err := New(prog, TurnpikeConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 20)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.RegionLog() != nil {
		t.Fatal("events recorded without RecordRegions")
	}
}
