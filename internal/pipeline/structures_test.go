package pipeline

import (
	"testing"

	"repro/internal/isa"
)

// --- compact CLQ ---

func TestCompactCLQRangeSemantics(t *testing.T) {
	c := newCompactCLQ(2)
	if !c.noteLoad(1, 100) || !c.noteLoad(1, 200) {
		t.Fatal("insert failed with free entries")
	}
	// Range [100,200]: conservative — 150 was never loaded but falls in
	// range (the precision loss the paper accepts).
	for _, addr := range []uint64{100, 150, 200} {
		if c.warFree(addr) {
			t.Errorf("addr %d inside range reported WAR-free", addr)
		}
	}
	for _, addr := range []uint64{99, 201} {
		if !c.warFree(addr) {
			t.Errorf("addr %d outside range reported conflicting", addr)
		}
	}
	if c.occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.occupancy())
	}
}

func TestCompactCLQPerRegionEntries(t *testing.T) {
	c := newCompactCLQ(2)
	c.noteLoad(1, 100)
	c.noteLoad(2, 500)
	if c.occupancy() != 2 {
		t.Fatalf("occupancy = %d", c.occupancy())
	}
	// The WAR check spans all unverified regions.
	if c.warFree(100) || c.warFree(500) {
		t.Fatal("cross-region load missed")
	}
	// A third region overflows.
	if c.noteLoad(3, 900) {
		t.Fatal("overflow not reported")
	}
	// Verification of region 1 frees its entry.
	c.clearRegion(1)
	if c.occupancy() != 1 {
		t.Fatalf("occupancy after clear = %d", c.occupancy())
	}
	if !c.warFree(100) {
		t.Fatal("cleared region still blocks")
	}
	if !c.noteLoad(3, 900) {
		t.Fatal("freed entry not reusable")
	}
}

func TestCompactCLQClearAll(t *testing.T) {
	c := newCompactCLQ(2)
	c.noteLoad(1, 100)
	c.noteLoad(2, 200)
	c.clearAll()
	if c.occupancy() != 0 || !c.warFree(100) {
		t.Fatal("clearAll incomplete")
	}
}

// --- ideal CLQ ---

func TestIdealCLQExactMatching(t *testing.T) {
	c := newIdealCLQ()
	for i := uint64(0); i < 100; i++ {
		if !c.noteLoad(int(i%5), i*8) {
			t.Fatal("ideal CLQ overflowed")
		}
	}
	if c.warFree(40) {
		t.Fatal("loaded address reported WAR-free")
	}
	// Exact matching: a hole between loaded addresses stays releasable.
	if !c.warFree(41) {
		t.Fatal("unloaded address reported conflicting")
	}
	if c.occupancy() != 5 {
		t.Fatalf("occupancy = %d", c.occupancy())
	}
	c.clearRegion(0)
	if c.occupancy() != 4 {
		t.Fatalf("occupancy after clear = %d", c.occupancy())
	}
}

// --- color maps ---

func TestColorMapsLifecycle(t *testing.T) {
	cm := newColorMaps()
	r := isa.Reg(5)
	if cm.verified(r) != -1 {
		t.Fatal("fresh register has a verified color")
	}
	// Acquire all four colors.
	var got []int
	for i := 0; i < isa.NumColors; i++ {
		c := cm.acquire(r)
		if c < 0 {
			t.Fatalf("pool dry after %d acquires", i)
		}
		got = append(got, c)
	}
	if cm.acquire(r) != -1 {
		t.Fatal("fifth acquire succeeded")
	}
	// Verify the first: becomes VC; pool still dry (nothing reclaimed —
	// no previous VC existed).
	cm.verify(r, got[0])
	if cm.verified(r) != got[0] {
		t.Fatalf("VC = %d, want %d", cm.verified(r), got[0])
	}
	if cm.acquire(r) != -1 {
		t.Fatal("acquire succeeded with all colors in VC/UC")
	}
	// Verify the second: the first returns to the pool.
	cm.verify(r, got[1])
	if cm.verified(r) != got[1] {
		t.Fatal("VC not updated")
	}
	if c := cm.acquire(r); c != got[0] {
		t.Fatalf("reclaimed color = %d, want %d", c, got[0])
	}
	// Squash returns an unverified color directly.
	cm.squash(r, got[2])
	if c := cm.acquire(r); c != got[2] {
		t.Fatalf("squashed color not reusable: got %d", c)
	}
}

func TestColorMapsPerRegisterIndependence(t *testing.T) {
	cm := newColorMaps()
	a, b := isa.Reg(1), isa.Reg(2)
	for i := 0; i < isa.NumColors; i++ {
		if cm.acquire(a) < 0 {
			t.Fatal("pool dry")
		}
	}
	if cm.acquire(b) < 0 {
		t.Fatal("register b starved by register a")
	}
}

// --- store buffer ---

func mkRegion(id int, end, verify uint64, verified bool) *regionInst {
	return &regionInst{id: id, end: end, verifyAt: verify, verified: verified}
}

func TestStoreBufferQuarantineGatesOnVerification(t *testing.T) {
	sb := newStoreBuffer(2)
	mem := isa.NewMemory()
	r := mkRegion(0, 10, 20, false)
	sb.push(sbEntry{addr: 0x100, val: 7, quarantined: true, region: r, commitAt: 5})
	// Time passes beyond the stamp, but the region is unverified: no drain.
	sb.drainUntil(100, mem)
	if sb.len() != 1 || mem.Load(0x100) != 0 {
		t.Fatal("unverified entry drained")
	}
	r.verified = true
	sb.drainUntil(100, mem)
	if sb.len() != 0 || mem.Load(0x100) != 7 {
		t.Fatal("verified entry not drained/applied")
	}
}

func TestStoreBufferDrainRate(t *testing.T) {
	sb := newStoreBuffer(4)
	mem := isa.NewMemory()
	for i := 0; i < 4; i++ {
		sb.push(sbEntry{addr: uint64(0x100 + i*8), val: 1, commitAt: 10})
	}
	// One drain per cycle starting at the commit cycle: 10, 11, 12 drain
	// by cycle 12, the fourth waits for cycle 13.
	sb.drainUntil(12, mem)
	if sb.len() != 1 {
		t.Fatalf("len = %d after 3 drain cycles, want 1", sb.len())
	}
	sb.drainUntil(13, mem)
	if sb.len() != 0 {
		t.Fatalf("len = %d, want 0", sb.len())
	}
}

func TestStoreBufferForwardingYoungest(t *testing.T) {
	sb := newStoreBuffer(4)
	r := mkRegion(0, 0, infCycle, false)
	sb.push(sbEntry{addr: 0x100, val: 1, quarantined: true, region: r})
	sb.push(sbEntry{addr: 0x100, val: 2, quarantined: true, region: r})
	if v, ok := sb.forward(0x100); !ok || v != 2 {
		t.Fatalf("forward = %d,%v want youngest 2", v, ok)
	}
	if _, ok := sb.forward(0x108); ok {
		t.Fatal("forwarded a miss")
	}
	// Fast entries already applied to memory: not forwarded.
	sb2 := newStoreBuffer(4)
	sb2.push(sbEntry{addr: 0x200, val: 9, commitAt: 1})
	if _, ok := sb2.forward(0x200); ok {
		t.Fatal("fast entry forwarded")
	}
}

func TestStoreBufferWAWGuard(t *testing.T) {
	sb := newStoreBuffer(4)
	r := mkRegion(0, 0, infCycle, false)
	sb.push(sbEntry{addr: 0x300, val: 1, quarantined: true, region: r})
	if !sb.hasOlderSameAddr(0x300) {
		t.Fatal("same-address entry missed")
	}
	if sb.hasOlderSameAddr(0x308) {
		t.Fatal("false WAW hit")
	}
}

func TestStoreBufferDiscardUnverified(t *testing.T) {
	sb := newStoreBuffer(4)
	mem := isa.NewMemory()
	rv := mkRegion(0, 5, 15, true)
	ru := mkRegion(1, 0, infCycle, false)
	sb.push(sbEntry{addr: 0x100, val: 1, quarantined: true, region: rv})
	sb.push(sbEntry{addr: 0x108, val: 2, quarantined: true, region: ru})
	sb.push(sbEntry{addr: 0x110, val: 3, commitAt: 2}) // fast
	if n := sb.discardUnverified(); n != 1 {
		t.Fatalf("discarded %d, want 1", n)
	}
	if sb.len() != 2 {
		t.Fatalf("len = %d, want 2", sb.len())
	}
	sb.drainUntil(1000, mem)
	if mem.Load(0x100) != 1 {
		t.Fatal("verified entry lost")
	}
	if mem.Load(0x108) != 0 {
		t.Fatal("discarded entry applied")
	}
}

func TestStoreBufferNextEventAt(t *testing.T) {
	sb := newStoreBuffer(4)
	ru := mkRegion(0, 0, infCycle, false) // open region
	sb.push(sbEntry{addr: 1, val: 1, quarantined: true, region: ru})
	if sb.nextEventAt() != infCycle {
		t.Fatal("open region entry has a drain event")
	}
	ru.verifyAt = 50 // region ended; verification pending
	if sb.nextEventAt() != 50 {
		t.Fatalf("nextEventAt = %d, want 50", sb.nextEventAt())
	}
	sb.push(sbEntry{addr: 2, val: 1, commitAt: 7})
	if sb.nextEventAt() != 7 {
		t.Fatalf("nextEventAt = %d, want 7 (fast entry)", sb.nextEventAt())
	}
}
