package pipeline

import (
	"fmt"

	"repro/internal/isa"
)

// flushPenalty is the pipeline-flush cost charged when recovery redirects
// fetch to a recovery block (drain + refill of the 5-stage pipe).
const flushPenalty = 5

// detectEvent is one in-flight sensor event. The pipeline learns nothing
// about a strike until the acoustic wave reaches a sensor; what it can
// know at firing time is whether the damage is still containable — which
// is exactly what the anchor captures.
type detectEvent struct {
	// at is the cycle the sensors fire.
	at uint64
	// anchor is the region open when the strike (or spurious firing)
	// happened — the region whose quarantine holds the corruption. Nil
	// when no region was open (recovery block, pre-first-boundary).
	anchor *regionInst
	// epoch is Stats.RegionsVerified at strike time, the containment
	// fallback for nil anchors: if any region verified since, stores
	// the strike may have influenced could have escaped.
	epoch uint64
	// late marks a detection beyond the provisioned WCDL (a degraded
	// mesh heard the wave on a farther sensor).
	late bool
	// spurious marks a false positive: a detection with no strike.
	spurious bool
}

// DUEError is a detected-unrecoverable error: a sensor event arrived
// after the region holding its effects had verified and released its
// stores, and the containment policy aborted the machine (machine-check)
// rather than let the corruption become silent. Fault campaigns classify
// it as the DUE outcome with errors.As.
type DUEError struct {
	// Cycle is when the machine check fired.
	Cycle uint64
	// Late distinguishes a real late detection from a spurious one.
	Late bool
}

func (e *DUEError) Error() string {
	kind := "spurious detection"
	if e.Late {
		kind = "late detection"
	}
	return fmt.Sprintf("pipeline: DUE at cycle %d: %s outside every unverified region (containment abort)", e.Cycle, kind)
}

// nextDetectAt returns the earliest pending sensor firing, or infCycle.
// The queue is kept sorted by firing cycle.
func (s *Sim) nextDetectAt() uint64 {
	if len(s.pendingDetects) == 0 {
		return infCycle
	}
	return s.pendingDetects[0].at
}

// degraded reports whether the degradation controller has fast release
// suspended.
func (s *Sim) degraded() bool { return s.degradedUntil != 0 }

// enterDegraded suspends fast release (CLQ store release and checkpoint
// coloring both fall back to quarantine) for at least DegradeWindow
// cycles; a region boundary past that deadline recalibrates. Repeated
// late detections extend the window.
func (s *Sim) enterDegraded() {
	if s.degradedUntil == 0 {
		s.Stats.DegradeEntries++
		if s.obs != nil {
			s.obs.Tracer.Instant(trackSensor, "mesh", "degrade-enter", s.cycle,
				map[string]any{"window": s.Cfg.DegradeWindow})
		}
		s.logDegradeEnter()
	}
	s.degradedUntil = s.cycle + s.Cfg.DegradeWindow
}

// enqueueDetect inserts a sensor event in firing order, enforcing the
// bounded event FIFO.
func (s *Sim) enqueueDetect(e detectEvent) error {
	if len(s.pendingDetects) >= s.Cfg.DetectQueue {
		return fmt.Errorf("pipeline: detection queue full (%d pending, capacity %d)",
			len(s.pendingDetects), s.Cfg.DetectQueue)
	}
	i := len(s.pendingDetects)
	for i > 0 && s.pendingDetects[i-1].at > e.at {
		i--
	}
	s.pendingDetects = append(s.pendingDetects, detectEvent{})
	copy(s.pendingDetects[i+1:], s.pendingDetects[i:])
	s.pendingDetects[i] = e
	if n := uint64(len(s.pendingDetects)); n > s.Stats.DetectQueuePeak {
		s.Stats.DetectQueuePeak = n
	}
	if s.obs != nil && s.obs.detectQueue != nil {
		s.obs.detectQueue.Observe(uint64(len(s.pendingDetects)))
	}
	return nil
}

// newStrikeEvent captures the containment anchor for a strike happening
// "now" with the given detection latency.
func (s *Sim) newStrikeEvent(latency int, spurious bool) detectEvent {
	return detectEvent{
		at:       s.cycle + uint64(latency),
		anchor:   s.cur,
		epoch:    s.Stats.RegionsVerified,
		late:     latency > s.Cfg.WCDL,
		spurious: spurious,
	}
}

// InjectBitFlip flips one bit of an architectural register "now" and
// schedules the acoustic-sensor detection event after latency cycles.
// Latencies beyond the configured WCDL model a degraded mesh (the nearest
// live sensor missed the wave); whether such a late detection is survivable
// depends on the containment configuration, not on injection. Multiple
// strikes may be in flight at once (fault bursts) up to Config.DetectQueue.
// The register is tainted for the parity model of §5.
func (s *Sim) InjectBitFlip(r isa.Reg, bit uint, latency int) error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: fault injection requires a resilient configuration")
	}
	if latency < 1 {
		return fmt.Errorf("pipeline: detection latency %d < 1", latency)
	}
	ev := s.newStrikeEvent(latency, false)
	if err := s.enqueueDetect(ev); err != nil {
		return err
	}
	s.Regs[r] ^= 1 << (bit & 63)
	s.Taint[r] = true
	if ev.late {
		s.Stats.LateDetections++
	}
	if s.obs != nil {
		s.obs.Tracer.Instant(trackSensor, "fault", "strike", s.cycle,
			map[string]any{"reg": int(r), "bit": bit, "late": ev.late})
		s.obs.Tracer.Span(trackSensor, "sensor", "detection-window", s.cycle, ev.at,
			map[string]any{"latency": latency})
	}
	return nil
}

// InjectMultiBitFlip models a multi-bit upset: one particle strike
// corrupting several bits, possibly across two adjacent registers (the
// scenario that defeats parity/ECC-per-word schemes but not acoustic
// detection — the sensors hear the strike itself). Detection and recovery
// proceed exactly as for a single flip.
func (s *Sim) InjectMultiBitFlip(r isa.Reg, bits []uint, spillover bool, latency int) error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: fault injection requires a resilient configuration")
	}
	if latency < 1 {
		return fmt.Errorf("pipeline: detection latency %d < 1", latency)
	}
	if len(bits) == 0 {
		return fmt.Errorf("pipeline: no bits to flip")
	}
	ev := s.newStrikeEvent(latency, false)
	if err := s.enqueueDetect(ev); err != nil {
		return err
	}
	for _, b := range bits {
		s.Regs[r] ^= 1 << (b & 63)
	}
	s.Taint[r] = true
	if spillover {
		r2 := (r + 1) % isa.NumRegs
		s.Regs[r2] ^= 1 << (bits[0] & 63)
		s.Taint[r2] = true
	}
	if ev.late {
		s.Stats.LateDetections++
	}
	if s.obs != nil {
		s.obs.Tracer.Instant(trackSensor, "fault", "multi-bit-strike", s.cycle,
			map[string]any{"reg": int(r), "bits": len(bits), "spillover": spillover, "late": ev.late})
		s.obs.Tracer.Span(trackSensor, "sensor", "detection-window", s.cycle, ev.at,
			map[string]any{"latency": latency})
	}
	return nil
}

// InjectFalseDetection schedules a spurious sensor firing after latency
// cycles with no accompanying strike: electrical noise, a miscalibrated
// sensor. The machine cannot distinguish it from a real detection, so it
// pays a full (wasted) recovery — the modeled cost of false positives.
func (s *Sim) InjectFalseDetection(latency int) error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: fault injection requires a resilient configuration")
	}
	if latency < 1 {
		return fmt.Errorf("pipeline: detection latency %d < 1", latency)
	}
	ev := s.newStrikeEvent(latency, true)
	if err := s.enqueueDetect(ev); err != nil {
		return err
	}
	s.Stats.FalseDetections++
	if s.obs != nil {
		s.obs.Tracer.Instant(trackSensor, "fault", "false-positive", s.cycle,
			map[string]any{"latency": latency})
	}
	return nil
}

// contained reports whether the event's damage is still absorbable by
// recovery: its anchor region has not verified, so every store the strike
// may have influenced is still quarantined (or squashable). For events
// with no anchor (no region open at strike time) the verification epoch
// stands in: if nothing verified since the strike, nothing escaped.
func (s *Sim) contained(e detectEvent) bool {
	if e.anchor != nil {
		return !e.anchor.verified
	}
	return e.epoch == s.Stats.RegionsVerified
}

// fireDetections adjudicates the sensor event(s) due at the current cycle.
// Because one recovery clears the whole queue (re-execution from the
// earliest unverified region supersedes every in-flight event), every
// pending event must pass the containment check first:
//
//   - any uncontained event (its region verified and released stores
//     before the wave arrived) is unrecoverable — with Containment on the
//     machine aborts with a DUE; with it off the event is dropped and the
//     corruption runs free (the SDC path);
//   - contained events trigger the normal recovery sequence;
//   - a late detection, contained or not, flips the degradation
//     controller into conservative quarantine mode.
func (s *Sim) fireDetections() error {
	uncontained := 0
	hasLate := false
	containedReal := false
	containedSpurious := false
	for _, e := range s.pendingDetects {
		if s.contained(e) {
			if e.spurious {
				containedSpurious = true
			} else {
				containedReal = true
			}
		} else {
			uncontained++
		}
		if e.late {
			hasLate = true
		}
	}
	if hasLate {
		s.enterDegraded()
	}
	if uncontained > 0 {
		if s.Cfg.Containment {
			s.Stats.DUEs++
			if s.obs != nil {
				s.obs.Tracer.Instant(trackSensor, "sensor", "due", s.cycle,
					map[string]any{"uncontained": uncontained})
			}
			s.logDUE(uncontained, hasLate)
			return &DUEError{Cycle: s.cycle, Late: hasLate}
		}
		s.Stats.DroppedDetections += uint64(uncontained)
		if s.obs != nil {
			s.obs.Tracer.Instant(trackSensor, "sensor", "detection-dropped", s.cycle,
				map[string]any{"dropped": uncontained})
		}
		if !containedReal && !containedSpurious {
			// Nothing left to recover for; execution continues on
			// whatever state the strikes left behind.
			s.pendingDetects = s.pendingDetects[:0]
			return nil
		}
		// Fall through: recover for the contained events; the dropped
		// ones' effects already escaped and recovery cannot undo them.
	}
	if !containedReal && len(s.rbb) == 0 {
		// Only spurious firings, and no unverified region in flight:
		// the recovery handler finds nothing to roll back and resumes.
		s.pendingDetects = s.pendingDetects[:0]
		return nil
	}
	// A contained real event with no in-flight region (a strike before
	// the first boundary) has no recovery block to run; recover()
	// reports that as an error, matching the paper's machine.
	return s.recover()
}

// recover implements the paper's recovery sequence (§2.2, §4.3.2): discard
// all unverified store-buffer entries, squash the unverified regions'
// colors, redirect fetch to the recovery block of the earliest unverified
// region (whose entry is the most recently verified boundary), and resume.
// Fast-released stores of squashed regions already reached the cache; the
// WAR-free and coloring arguments guarantee re-execution overwrites or
// never reads them. All pending sensor events are retired: re-execution
// from the restart point supersedes every strike the queue still held
// (each was containment-checked by fireDetections before arriving here).
func (s *Sim) recover() error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: recovery without resilience support")
	}
	s.processVerifications()
	restartID := -1
	switch {
	case len(s.rbb) > 0:
		restartID = s.rbb[0].staticID
	case s.lastRestart >= 0:
		// A detection fired with no region in flight — the machine is
		// inside (or just past) a recovery block, before the restarted
		// region re-opens. fireDetections only routes contained events
		// here, so nothing has verified since the strike; re-running
		// the same recovery block is idempotent (it recomputes from
		// verified state only).
		restartID = s.lastRestart
	}
	if restartID < 0 {
		return fmt.Errorf("pipeline: recovery with no in-flight region")
	}

	for _, r := range s.rbb {
		if s.colors != nil {
			for reg, c := range r.colors {
				s.colors.squash(reg, c)
			}
		}
		s.regionClosed(r, true)
	}
	squashed := len(s.rbb)
	discarded := s.sb.discardUnverified()
	if s.clq != nil {
		s.clq.clearAll()
		s.clqEnabled = true
	}
	s.rbb = s.rbb[:0]
	s.cur = nil

	rpc := s.Prog.Regions[restartID].RecoveryPC
	if rpc < 0 {
		return fmt.Errorf("pipeline: region %d has no recovery block", restartID)
	}
	s.PC = rpc
	s.inRecovery = true
	s.lastRestart = restartID
	s.pendingDetects = s.pendingDetects[:0]
	for i := range s.Taint {
		s.Taint[i] = false
	}
	startCycle := s.cycle
	s.advanceTo(s.cycle+flushPenalty, nil)
	for i := range s.regReady {
		s.regReady[i] = s.cycle
	}
	s.Stats.Recoveries++
	s.Stats.RecoveryCycles += s.cycle - startCycle
	if s.obs != nil {
		if s.obs.recoveryLen != nil {
			s.obs.recoveryLen.Observe(s.cycle - startCycle)
		}
		s.obs.Tracer.Instant(trackSensor, "sensor", "detect", startCycle, nil)
		s.obs.Tracer.Span(trackRecovery, "recovery", fmt.Sprintf("recovery R%d", restartID),
			startCycle, s.cycle, map[string]any{
				"squashed_regions": squashed, "discarded_stores": discarded, "recovery_pc": rpc,
			})
	}
	s.logRecovery(startCycle, restartID, squashed, discarded)
	return nil
}

// FaultPending reports whether any detection event is scheduled.
func (s *Sim) FaultPending() bool { return len(s.pendingDetects) > 0 }

// Degraded reports whether the degradation controller currently has fast
// release suspended.
func (s *Sim) Degraded() bool { return s.degraded() }
