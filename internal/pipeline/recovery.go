package pipeline

import (
	"fmt"

	"repro/internal/isa"
)

// flushPenalty is the pipeline-flush cost charged when recovery redirects
// fetch to a recovery block (drain + refill of the 5-stage pipe).
const flushPenalty = 5

// InjectBitFlip flips one bit of an architectural register "now" and
// schedules the acoustic-sensor detection event after latency cycles.
// latency must not exceed the configured WCDL — the sensors guarantee the
// bound, and the recovery argument (§2.1) depends on it. The register is
// tainted for the parity model of §5.
func (s *Sim) InjectBitFlip(r isa.Reg, bit uint, latency int) error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: fault injection requires a resilient configuration")
	}
	if latency < 1 || latency > s.Cfg.WCDL {
		return fmt.Errorf("pipeline: detection latency %d outside [1, WCDL=%d]", latency, s.Cfg.WCDL)
	}
	if s.pendingDetectAt != infCycle {
		return fmt.Errorf("pipeline: a fault is already pending")
	}
	s.Regs[r] ^= 1 << (bit & 63)
	s.Taint[r] = true
	s.pendingDetectAt = s.cycle + uint64(latency)
	if s.obs != nil {
		s.obs.Tracer.Instant(trackSensor, "fault", "strike", s.cycle,
			map[string]any{"reg": int(r), "bit": bit})
		s.obs.Tracer.Span(trackSensor, "sensor", "detection-window", s.cycle, s.pendingDetectAt,
			map[string]any{"latency": latency})
	}
	return nil
}

// InjectMultiBitFlip models a multi-bit upset: one particle strike
// corrupting several bits, possibly across two adjacent registers (the
// scenario that defeats parity/ECC-per-word schemes but not acoustic
// detection — the sensors hear the strike itself). Detection and recovery
// proceed exactly as for a single flip; the guarantee is unchanged.
func (s *Sim) InjectMultiBitFlip(r isa.Reg, bits []uint, spillover bool, latency int) error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: fault injection requires a resilient configuration")
	}
	if latency < 1 || latency > s.Cfg.WCDL {
		return fmt.Errorf("pipeline: detection latency %d outside [1, WCDL=%d]", latency, s.Cfg.WCDL)
	}
	if s.pendingDetectAt != infCycle {
		return fmt.Errorf("pipeline: a fault is already pending")
	}
	if len(bits) == 0 {
		return fmt.Errorf("pipeline: no bits to flip")
	}
	for _, b := range bits {
		s.Regs[r] ^= 1 << (b & 63)
	}
	s.Taint[r] = true
	if spillover {
		r2 := (r + 1) % isa.NumRegs
		s.Regs[r2] ^= 1 << (bits[0] & 63)
		s.Taint[r2] = true
	}
	s.pendingDetectAt = s.cycle + uint64(latency)
	if s.obs != nil {
		s.obs.Tracer.Instant(trackSensor, "fault", "multi-bit-strike", s.cycle,
			map[string]any{"reg": int(r), "bits": len(bits), "spillover": spillover})
		s.obs.Tracer.Span(trackSensor, "sensor", "detection-window", s.cycle, s.pendingDetectAt,
			map[string]any{"latency": latency})
	}
	return nil
}

// recover implements the paper's recovery sequence (§2.2, §4.3.2): discard
// all unverified store-buffer entries, squash the unverified regions'
// colors, redirect fetch to the recovery block of the earliest unverified
// region (whose entry is the most recently verified boundary), and resume.
// Fast-released stores of squashed regions already reached the cache; the
// WAR-free and coloring arguments guarantee re-execution overwrites or
// never reads them.
func (s *Sim) recover() error {
	if !s.Cfg.Resilient {
		return fmt.Errorf("pipeline: recovery without resilience support")
	}
	s.processVerifications()
	if len(s.rbb) == 0 {
		return fmt.Errorf("pipeline: recovery with no in-flight region")
	}
	restart := s.rbb[0]

	for _, r := range s.rbb {
		if s.colors != nil {
			for reg, c := range r.colors {
				s.colors.squash(reg, c)
			}
		}
		s.regionClosed(r, true)
	}
	squashed := len(s.rbb)
	discarded := s.sb.discardUnverified()
	if s.clq != nil {
		s.clq.clearAll()
		s.clqEnabled = true
	}
	s.rbb = s.rbb[:0]
	s.cur = nil

	rpc := s.Prog.Regions[restart.staticID].RecoveryPC
	if rpc < 0 {
		return fmt.Errorf("pipeline: region %d has no recovery block", restart.staticID)
	}
	s.PC = rpc
	s.inRecovery = true
	s.pendingDetectAt = infCycle
	for i := range s.Taint {
		s.Taint[i] = false
	}
	startCycle := s.cycle
	s.advanceTo(s.cycle+flushPenalty, nil)
	for i := range s.regReady {
		s.regReady[i] = s.cycle
	}
	s.Stats.Recoveries++
	s.Stats.RecoveryCycles += s.cycle - startCycle
	if s.obs != nil {
		if s.obs.recoveryLen != nil {
			s.obs.recoveryLen.Observe(s.cycle - startCycle)
		}
		s.obs.Tracer.Instant(trackSensor, "sensor", "detect", startCycle, nil)
		s.obs.Tracer.Span(trackRecovery, "recovery", fmt.Sprintf("recovery R%d", restart.staticID),
			startCycle, s.cycle, map[string]any{
				"squashed_regions": squashed, "discarded_stores": discarded, "recovery_pc": rpc,
			})
	}
	return nil
}

// FaultPending reports whether a detection event is scheduled.
func (s *Sim) FaultPending() bool { return s.pendingDetectAt != infCycle }
