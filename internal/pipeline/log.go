package pipeline

import (
	"context"
	"log/slog"
)

// Structured logging attachment. The simulator logs only rare events —
// recovery episodes, containment aborts (DUEs), degradation-controller
// transitions — never per-cycle or per-instruction work, so an attached
// logger costs one nil check at each rare site and nothing in the hot
// loop (BenchmarkSimLogDisabled pins that). The context carries the
// correlation chain (request → job → shard → trial) a campaign worker
// established, so every recovery line in the terminal log names the
// exact trial that recovered.

// AttachLogger makes the simulator log rare events through l with ctx's
// correlation chain; nil l detaches. Attach before stepping.
func (s *Sim) AttachLogger(ctx context.Context, l *slog.Logger) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.log, s.logCtx = l, ctx
}

// logRecovery reports one completed recovery episode. Debug level: a
// healthy campaign recovers on most trials, and the flight recorder can
// keep Debug while the terminal log stays at Info.
func (s *Sim) logRecovery(startCycle uint64, restartID, squashed, discarded int) {
	if s.log == nil {
		return
	}
	s.log.LogAttrs(s.logCtx, slog.LevelDebug, "recovery",
		slog.Uint64("cycle", startCycle),
		slog.Int("region", restartID),
		slog.Int("squashed_regions", squashed),
		slog.Int("discarded_stores", discarded),
		slog.Uint64("recovery_cycles", s.cycle-startCycle),
	)
}

// logDUE reports a containment abort — the machine-check path.
func (s *Sim) logDUE(uncontained int, late bool) {
	if s.log == nil {
		return
	}
	s.log.LogAttrs(s.logCtx, slog.LevelInfo, "containment abort",
		slog.Uint64("cycle", s.cycle),
		slog.Int("uncontained", uncontained),
		slog.Bool("late", late),
	)
}

// logDegradeEnter reports the degradation controller suspending fast
// release after a late detection.
func (s *Sim) logDegradeEnter() {
	if s.log == nil {
		return
	}
	s.log.LogAttrs(s.logCtx, slog.LevelDebug, "degrade enter",
		slog.Uint64("cycle", s.cycle),
		slog.Uint64("window", s.Cfg.DegradeWindow),
	)
}
