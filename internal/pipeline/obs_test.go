package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
)

// observedRun attaches a tracer (JSONL + registry) to a fresh simulator
// and returns the raw JSONL buffer and the registry after the run.
func observedRun(t *testing.T, prog *isa.Program, cfg Config, n int,
	drive func(s *Sim)) (*bytes.Buffer, *obs.Registry, Stats) {
	t.Helper()
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		seed(s.Mem, n)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewJSONLSink(&buf))
	reg := obs.NewRegistry()
	s.AttachObs(NewObs(tr, reg))
	if drive != nil {
		drive(s)
	}
	for !s.Halted() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	return &buf, reg, s.Stats
}

// decodeJSONL asserts every line round-trips through encoding/json.
func decodeJSONL(t *testing.T, buf *bytes.Buffer) []obs.Event {
	t.Helper()
	var evs []obs.Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("JSONL line does not parse: %v\n%s", err, line)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestObsZeroInstructionProgram: a program that halts immediately produces
// a valid (possibly empty) trace without panicking.
func TestObsZeroInstructionProgram(t *testing.T) {
	prog := &isa.Program{Insts: []isa.Inst{{Op: isa.HALT}}}
	buf, _, st := observedRun(t, prog, BaselineConfig(4), 0, nil)
	if st.Insts != 1 {
		t.Fatalf("insts = %d", st.Insts)
	}
	decodeJSONL(t, buf)
}

// TestObsImmediateRecovery: a strike at the very first instruction with
// the minimum detection latency exercises recovery before any region has
// verified; the tracer must survive and record the episode.
func TestObsImmediateRecovery(t *testing.T) {
	f := buildBench(30)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	buf, reg, st := observedRun(t, prog, cfg, 30, func(s *Sim) {
		if err := s.InjectBitFlip(4, 3, 1); err != nil {
			t.Fatal(err)
		}
	})
	if st.Recoveries == 0 {
		t.Fatal("no recovery recorded")
	}
	evs := decodeJSONL(t, buf)
	var sawRecovery, sawStrike bool
	for _, ev := range evs {
		switch ev.Track {
		case "recovery":
			if ev.Kind == obs.KindSpan {
				sawRecovery = true
			}
		case "sensor":
			if ev.Name == "strike" {
				sawStrike = true
			}
		}
	}
	if !sawStrike || !sawRecovery {
		t.Fatalf("trace missing strike (%v) or recovery span (%v)", sawStrike, sawRecovery)
	}
	if reg.Snapshot().Histograms["sim.recovery_cycles"].Count == 0 {
		t.Fatal("recovery histogram empty")
	}
}

// TestObsRBBFullStalls: a tiny region boundary buffer under a long
// verification window forces RBB-full stalls; the tracer must handle the
// resulting span pile-up.
func TestObsRBBFullStalls(t *testing.T) {
	f := buildBench(40)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 200)
	cfg.RBBSize = 2
	buf, reg, st := observedRun(t, prog, cfg, 40, nil)
	if st.RBBFullStalls == 0 {
		t.Fatal("expected RBB-full stalls; test is vacuous")
	}
	evs := decodeJSONL(t, buf)
	regions := 0
	for _, ev := range evs {
		if ev.Track == "regions" && ev.Kind == obs.KindSpan {
			regions++
		}
	}
	if uint64(regions) != st.RegionsExecuted {
		t.Fatalf("%d region spans for %d regions executed", regions, st.RegionsExecuted)
	}
	if reg.Snapshot().Histograms["sim.region_lifetime_cycles"].Count != st.RegionsExecuted {
		t.Fatal("region lifetime histogram does not match regions executed")
	}
}

// TestObsMetricsMatchStats: the registry export agrees with the plain
// Stats struct and the histograms carry the run's occupancy samples.
func TestObsMetricsMatchStats(t *testing.T) {
	f := buildBench(60)
	prog := compileFor(t, f, core.Turnpike, 4)
	cfg := TurnpikeConfig(4, 10)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 60)
	reg := obs.NewRegistry()
	s.AttachObs(NewObs(nil, reg))
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	s.FillMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["sim.insts"] != st.Insts {
		t.Fatalf("sim.insts = %d, want %d", snap.Counters["sim.insts"], st.Insts)
	}
	if snap.Counters["sim.regions_executed"] != st.RegionsExecuted {
		t.Fatalf("sim.regions_executed = %d, want %d",
			snap.Counters["sim.regions_executed"], st.RegionsExecuted)
	}
	if snap.Counters["sim.sb_full_stalls"] != st.SBFullStalls {
		t.Fatalf("sim.sb_full_stalls = %d, want %d",
			snap.Counters["sim.sb_full_stalls"], st.SBFullStalls)
	}
	if uint64(snap.Gauges["sim.clq_occ_max"]) != st.CLQOccMax {
		t.Fatalf("sim.clq_occ_max = %d, want %d", snap.Gauges["sim.clq_occ_max"], st.CLQOccMax)
	}
	if snap.Histograms["sim.region_lifetime_cycles"].Count != st.RegionsExecuted {
		t.Fatal("region lifetime histogram count mismatch")
	}
	if snap.Histograms["sim.sb_occupancy"].Count == 0 {
		t.Fatal("SB occupancy histogram empty")
	}
	// Cache counters come along via FillMetrics.
	if _, ok := snap.Counters["cache.l1i.hits"]; !ok {
		t.Fatalf("cache counters missing from snapshot: %v", sortedCounterNames(snap))
	}
}

func sortedCounterNames(s obs.Snapshot) []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	return names
}
