package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// tinyProg assembles a raw program without the compiler, for precise
// timing assertions.
func tinyProg(insts ...isa.Inst) *isa.Program {
	p := &isa.Program{CkptBase: isa.DefaultCkptBase, Insts: insts}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// TestDualIssuePairsIndependentOps: two independent ALU ops share a cycle;
// a third takes the next one.
func TestDualIssuePairsIndependentOps(t *testing.T) {
	run := func(n int) uint64 {
		insts := []isa.Inst{}
		for i := 0; i < n; i++ {
			insts = append(insts, isa.Inst{Op: isa.MOVI, Rd: isa.Reg(1 + i%20), Imm: int64(i)})
		}
		insts = append(insts, isa.Inst{Op: isa.HALT})
		s, err := New(tinyProg(insts...), BaselineConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		// Cold instruction fetches are a constant-rate overhead of
		// straight-line code; measure issue behaviour without them.
		return s.Stats.Cycles - s.Stats.FetchStalls
	}
	// Doubling independent work should cost ~n/2 extra cycles, not ~n.
	c8, c16 := run(8), run(16)
	delta := c16 - c8
	if delta < 3 || delta > 5 {
		t.Fatalf("8 extra independent ops cost %d cycles, want ~4 (dual issue)", delta)
	}
}

// TestDependentChainSerializes: a dependent ALU chain issues one per cycle.
func TestDependentChainSerializes(t *testing.T) {
	run := func(n int) uint64 {
		insts := []isa.Inst{{Op: isa.MOVI, Rd: 1, Imm: 1}}
		for i := 0; i < n; i++ {
			insts = append(insts, isa.Inst{Op: isa.ADD, Rd: 1, Rs1: 1, Imm: 1, HasImm: true})
		}
		insts = append(insts, isa.Inst{Op: isa.HALT})
		s, err := New(tinyProg(insts...), BaselineConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Stats.Cycles - s.Stats.FetchStalls
	}
	c8, c16 := run(8), run(16)
	// One cycle of slack is possible where a fetch stall overlaps the
	// chain; the essential claim is ~1 cycle per dependent instruction.
	if d := c16 - c8; d < 7 || d > 9 {
		t.Fatalf("8 extra dependent adds cost %d cycles, want ~8", d)
	}
}

// TestLoadUseStall: consuming a load result stalls for the cache latency.
func TestLoadUseStall(t *testing.T) {
	mk := func(consumeImmediately bool) uint64 {
		insts := []isa.Inst{
			{Op: isa.MOVI, Rd: 1, Imm: int64(isa.DataBase)},
			{Op: isa.LD, Rd: 2, Rs1: 1}, // warm up the line
			{Op: isa.LD, Rd: 2, Rs1: 1}, // L1 hit
		}
		if consumeImmediately {
			insts = append(insts, isa.Inst{Op: isa.ADD, Rd: 3, Rs1: 2, Imm: 1, HasImm: true})
		} else {
			insts = append(insts,
				isa.Inst{Op: isa.MOVI, Rd: 4, Imm: 9},
				isa.Inst{Op: isa.MOVI, Rd: 5, Imm: 9},
				isa.Inst{Op: isa.ADD, Rd: 3, Rs1: 2, Imm: 1, HasImm: true})
		}
		insts = append(insts, isa.Inst{Op: isa.HALT})
		s, err := New(tinyProg(insts...), BaselineConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.DataStalls
	}
	eager, relaxed := mk(true), mk(false)
	if eager <= relaxed {
		t.Fatalf("immediate consumption stalls (%d) not above separated (%d)", eager, relaxed)
	}
}

// TestBimodalPredictorLearnsLoops: a steady loop branch stops paying the
// misprediction penalty after warmup.
func TestBimodalPredictorLearnsLoops(t *testing.T) {
	// Loop of 64 iterations: taken 63 times, not-taken once.
	insts := []isa.Inst{
		{Op: isa.MOVI, Rd: 1, Imm: 0},                           // 0
		{Op: isa.ADD, Rd: 1, Rs1: 1, Imm: 1, HasImm: true},      // 1
		{Op: isa.BLT, Rs1: 1, Imm: 64, HasImm: true, Target: 1}, // 2
		{Op: isa.HALT}, // 3
	}
	s, err := New(tinyProg(insts...), BaselineConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Mispredicts: the first taken(s) while the counter trains, plus the
	// final fall-through — single digits, not ~64.
	maxBubbles := uint64(5 * BaselineConfig(4).BranchPenalty)
	if st.BranchBubbles > maxBubbles {
		t.Fatalf("branch bubbles %d; predictor not learning", st.BranchBubbles)
	}
}

// TestSBStructuralHazardTiming: with a 1-entry SB and quarantine, a burst
// of stores serializes on region verification — the Fig. 5 stall.
func TestSBStructuralHazardTiming(t *testing.T) {
	f := buildBench(30)
	prog := compileFor(t, f, core.Turnstile, 1)
	_, stTight := simRun(t, prog, TurnstileConfig(1, 30), 30)
	prog4 := compileFor(t, f, core.Turnstile, 4)
	_, stRoomy := simRun(t, prog4, TurnstileConfig(4, 30), 30)
	if stTight.SBFullStalls <= stRoomy.SBFullStalls {
		t.Fatalf("1-entry SB stalls (%d) not above 4-entry (%d)",
			stTight.SBFullStalls, stRoomy.SBFullStalls)
	}
	if stTight.Cycles <= stRoomy.Cycles {
		t.Fatalf("1-entry SB cycles (%d) not above 4-entry (%d)", stTight.Cycles, stRoomy.Cycles)
	}
}

// TestICacheColdVsWarm: the first pass through code pays fetch misses; a
// loop body does not.
func TestICacheColdVsWarm(t *testing.T) {
	f := buildBench(100)
	prog := compileFor(t, f, core.Baseline, 4)
	s, err := New(prog, BaselineConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	seed(s.Mem, 100)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.FetchStalls == 0 {
		t.Fatal("no cold fetch misses at all")
	}
	// Fetch stalls must be a small fraction: the loop body hits.
	if st.FetchStalls*5 > st.Cycles {
		t.Fatalf("fetch stalls %d of %d cycles; icache not retaining the loop", st.FetchStalls, st.Cycles)
	}
}
