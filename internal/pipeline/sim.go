package pipeline

import (
	"context"
	"fmt"
	"log/slog"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/obs/span"
)

// regionInst is one dynamic region (an RBB entry): the instance of a
// static region opened by a committed BOUND.
type regionInst struct {
	id       int
	staticID int
	boundPC  int
	start    uint64
	end      uint64 // 0 while open
	verifyAt uint64 // end + WCDL; infCycle while open
	verified bool
	colors   map[isa.Reg]int // UC: colors used by this region's checkpoints

	// Per-region observability counters (events.go).
	warFree, colored, quarantined int
	insts                         uint64
}

// Sim simulates one program under one configuration. It is both the
// functional and the timing model; fault-free runs reproduce the reference
// machine's memory exactly.
type Sim struct {
	Prog *isa.Program
	Cfg  Config

	Regs [isa.NumRegs]uint64
	Mem  *isa.Memory
	PC   int

	// Taint marks architecturally corrupted registers during fault
	// campaigns (the per-register parity bit of §5 plus derived values,
	// standing in for the hardened AGU). Cleared by recovery.
	Taint [isa.NumRegs]bool

	cycle     uint64
	slots     int
	regReady  [isa.NumRegs]uint64
	hier      *cache.Hierarchy
	sb        *storeBuffer
	predictor map[int]uint8 // bimodal 2-bit counters per branch PC

	// Resilience state.
	rbb        []*regionInst
	cur        *regionInst
	nextRegion int
	clq        committedLoadQueue
	clqEnabled bool
	colors     *colorMaps

	// Fault state (driven by package fault). pendingDetects holds every
	// in-flight sensor event ordered by firing cycle (fault bursts put
	// several strikes inside one detection window); degradedUntil is
	// nonzero while the degradation controller has fast release
	// suspended after a late detection (0 = healthy).
	pendingDetects []detectEvent
	degradedUntil  uint64
	inRecovery     bool // executing a recovery block
	lastRestart    int  // static ID of the last restarted region, -1 before any recovery

	// regionLog records per-region events when Cfg.RecordRegions is set.
	regionLog []RegionEvent

	// regionArena recycles regionInst records across GoldenState resets:
	// regionsUsed counts the records handed out this run; Reset rewinds
	// it to zero so the next trial reuses the same records. Records are
	// never recycled mid-run — store-buffer entries and pending
	// detections hold region pointers beyond verification.
	regionArena []*regionInst
	regionsUsed int

	// obs is the optional observability attachment (AttachObs). Nil means
	// disabled; every instrumentation site is guarded by one nil check.
	obs *Obs

	// log is the optional structured-logging attachment (AttachLogger);
	// logCtx carries its correlation chain. Nil log disables; only rare
	// events (recovery, DUE, degrade transitions) are logged.
	log    *slog.Logger
	logCtx context.Context

	// progress is the optional live-progress attachment (AttachProgress);
	// published remembers the counter values already pushed into it so
	// each Step publishes deltas.
	progress  *Progress
	published publishedCounters

	Stats  Stats
	halted bool
}

// publishedCounters remembers the progress figures already pushed into
// the attachment, so each Step publishes deltas.
type publishedCounters struct {
	Cycles, Insts, RegionsExecuted, RegionsVerified, Recoveries uint64
}

// NewContext is New under a wall-clock span: when ctx carries a span
// tracer (internal/obs/span), simulator construction — config/program
// validation, cache hierarchy build, memory image — is recorded as a
// "pipeline"/"setup" span nested under the caller's current span.
// Without a tracer it is exactly New.
func NewContext(ctx context.Context, prog *isa.Program, cfg Config) (*Sim, error) {
	_, sp := span.Start(ctx, "pipeline", "setup")
	s, err := New(prog, cfg)
	sp.End()
	return s, err
}

// New builds a simulator. The program must validate; resilient configs
// require region metadata.
func New(prog *isa.Program, cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cfg.Resilient && len(prog.Regions) == 0 {
		return nil, fmt.Errorf("pipeline: resilient config but program has no regions")
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 500_000_000
	}
	hcfg := cfg.Hier
	if hcfg.MemLatency == 0 {
		hcfg = cache.DefaultHierarchyConfig()
	}
	hier, err := cache.NewHierarchy(hcfg)
	if err != nil {
		return nil, err
	}
	if cfg.DetectQueue == 0 {
		cfg.DetectQueue = 8
	}
	if cfg.DegradeWindow == 0 && cfg.Resilient {
		cfg.DegradeWindow = 8 * uint64(cfg.WCDL)
	}
	s := &Sim{
		Prog:        prog,
		Cfg:         cfg,
		Mem:         isa.NewMemory(),
		PC:          prog.Entry,
		hier:        hier,
		sb:          newStoreBuffer(cfg.SBSize),
		predictor:   map[int]uint8{},
		cycle:       1,
		lastRestart: -1,
	}
	if cfg.Resilient {
		if cfg.WARFreeRelease {
			if cfg.CLQ == CLQIdeal {
				s.clq = newIdealCLQ()
			} else {
				s.clq = newCompactCLQ(cfg.CLQSize)
			}
			s.clqEnabled = true
		}
		if cfg.HWColoring {
			s.colors = newColorMaps()
		}
	}
	return s, nil
}

// Cycle returns the current cycle.
func (s *Sim) Cycle() uint64 { return s.cycle }

// Halted reports whether the program has finished.
func (s *Sim) Halted() bool { return s.halted }

// Run executes to completion and returns the statistics.
func (s *Sim) Run() (Stats, error) {
	if s.progress == nil {
		// Fast path: call the cycle kernel directly so the detached-
		// observability loop costs exactly one call per cycle (the Step
		// wrapper is beyond the inline budget).
		for !s.halted {
			if err := s.step(); err != nil {
				return s.Stats, err
			}
		}
		return s.Stats, nil
	}
	for !s.halted {
		if err := s.Step(); err != nil {
			return s.Stats, err
		}
	}
	return s.Stats, nil
}

// OutputMemory returns the architectural memory with all pending
// quarantined stores applied (as if the machine drained at halt), masking
// checkpoint storage.
func (s *Sim) OutputMemory() *isa.Memory {
	out := s.Mem.Clone()
	for _, e := range s.sb.entries {
		if e.quarantined {
			out.Store(e.addr, e.val)
		}
	}
	lo := s.Prog.CkptBase
	hi := s.Prog.CkptBase + isa.NumRegs*isa.NumColors*8
	res := isa.NewMemory()
	for _, kv := range out.Snapshot() {
		if kv.Addr >= lo && kv.Addr < hi {
			continue
		}
		res.Store(kv.Addr, kv.Val)
	}
	return res
}

// newRegion hands out a zeroed dynamic-region record, recycling the
// arena built up by earlier trials of a GoldenState campaign. A recycled
// record keeps its colors map (cleared) so steady-state trials allocate
// no per-region state at all.
func (s *Sim) newRegion() *regionInst {
	if s.regionsUsed < len(s.regionArena) {
		r := s.regionArena[s.regionsUsed]
		s.regionsUsed++
		colors := r.colors
		clear(colors)
		*r = regionInst{colors: colors}
		return r
	}
	r := &regionInst{}
	s.regionArena = append(s.regionArena, r)
	s.regionsUsed++
	return r
}

// DrainOutput folds every still-buffered quarantined store into the
// architectural memory in place and returns s.Mem — OutputMemory without
// the clone and the checkpoint masking, for campaign workers that
// classify the image with isa.Memory.EqualMasked and then Reset the
// simulator. The returned memory still holds checkpoint and stack
// words; callers mask those ranges during comparison.
func (s *Sim) DrainOutput() *isa.Memory {
	for i := range s.sb.entries {
		e := &s.sb.entries[i]
		if e.quarantined {
			s.Mem.Store(e.addr, e.val)
		}
	}
	s.sb.entries = s.sb.entries[:0]
	return s.Mem
}

// advanceTo moves the issue cursor to cycle c (processing verification
// events), attributing the stall to the given counter.
func (s *Sim) advanceTo(c uint64, counter *uint64) {
	if c <= s.cycle {
		return
	}
	if counter != nil {
		*counter += c - s.cycle
	}
	s.cycle = c
	s.slots = 0
	s.processVerifications()
}

// processVerifications retires regions whose WCDL window has elapsed. A
// pending detection event caps the verification clock: the sensors fired
// at pendingDetectAt, so a region whose window reaches to or past that
// instant is aborted, not verified — even when the simulated clock has
// already jumped further due to a stall.
func (s *Sim) processVerifications() {
	limit := s.cycle
	if at := s.nextDetectAt(); at <= limit {
		limit = at - 1
	}
	for len(s.rbb) > 0 {
		r := s.rbb[0]
		if r.verifyAt == infCycle || r.verifyAt > limit {
			return
		}
		r.verified = true
		// Pop by copying down so the slice keeps its backing array —
		// reslicing forward would strand the array head and force append
		// to reallocate every trial of a GoldenState campaign.
		n := copy(s.rbb, s.rbb[1:])
		s.rbb = s.rbb[:n]
		s.Stats.RegionsVerified++
		s.regionClosed(r, false)
		// Colors: UC -> VC, reclaiming previous VC colors.
		if s.colors != nil {
			for reg, c := range r.colors {
				s.colors.verify(reg, c)
			}
		}
		// CLQ bookkeeping: free the region's entry. Re-enabling after an
		// overflow happens at a region *start* (commitBound), not here —
		// fast release is only safe when every unverified region's loads
		// are recorded, which holds again once all prior regions verify.
		if s.clq != nil {
			s.clq.clearRegion(r.id)
		}
	}
}

// Step executes one instruction (or triggers a pending fault detection).
func (s *Sim) Step() error {
	err := s.step()
	if s.progress != nil {
		s.publishProgress()
	}
	return err
}

func (s *Sim) step() error {
	if s.halted {
		return nil
	}
	if s.Stats.Insts >= s.Cfg.MaxInsts {
		return fmt.Errorf("pipeline: instruction limit %d exceeded", s.Cfg.MaxInsts)
	}
	s.processVerifications()
	if s.cycle >= s.nextDetectAt() {
		return s.fireDetections()
	}
	if s.PC < 0 || s.PC >= len(s.Prog.Insts) {
		return fmt.Errorf("pipeline: PC %d out of range", s.PC)
	}
	in := &s.Prog.Insts[s.PC]

	// Region boundaries are compiler metadata the RBB recognizes by PC —
	// they occupy no fetch slot, no issue slot, and no instruction count
	// (the paper's boundaries add no instructions to the binary).
	if in.Op == isa.BOUND {
		if err := s.commitBound(in, s.cycle); err != nil {
			return err
		}
		s.PC++
		s.Stats.Cycles = s.cycle
		return nil
	}

	// Fetch: instruction cache.
	if lat := s.hier.InstAccess(uint64(s.PC) * 4); lat > 0 {
		if s.obs != nil {
			s.obsFetchMiss(lat)
		}
		s.advanceTo(s.cycle+uint64(lat), &s.Stats.FetchStalls)
	}

	// Issue: operand readiness (full forwarding — ready cycle is when the
	// producing instruction's result is available).
	start := s.cycle
	var usebuf [3]isa.Reg
	uses := in.Uses(usebuf[:0])
	for _, r := range uses {
		if s.regReady[r] > start {
			start = s.regReady[r]
		}
	}
	if start > s.cycle {
		if s.obs != nil {
			s.obsDataStall(start)
		}
		s.advanceTo(start, &s.Stats.DataStalls)
	}
	// Dual-issue slot accounting.
	if s.slots >= s.Cfg.IssueWidth {
		s.advanceTo(s.cycle+1, nil)
	}
	s.slots++
	start = s.cycle

	s.Stats.Insts++
	if s.cur != nil && !s.inRecovery {
		s.cur.insts++
	} else if s.Cfg.Resilient {
		s.Stats.OutsideRegionInsts++
	}
	next := s.PC + 1

	switch {
	case in.Op == isa.HALT:
		if s.Cfg.Resilient && len(s.pendingDetects) > 0 {
			// The program cannot retire with sensor events in flight:
			// either a detection aborts the halt into recovery (a
			// corrupted value may even be what steered execution here),
			// or — for a late detection whose region already verified —
			// the event must still be adjudicated (DUE or dropped)
			// before the machine may claim a clean exit.
			if at := s.nextDetectAt(); at > s.cycle {
				s.advanceTo(at, nil)
			}
			return s.fireDetections()
		}
		s.halted = true
		if s.Cfg.Resilient {
			// The last region's verification tail is real time: the core
			// cannot retire the program's final stores to cache earlier.
			s.advanceTo(s.cycle+uint64(s.Cfg.WCDL), nil)
			if s.cur != nil && s.cur.end == 0 {
				s.cur.end = s.cycle
				s.cur.verifyAt = s.cycle // program over; window degenerate
			}
			s.processVerifications()
		}
		s.sb.drainUntil(infCycle-1, s.Mem)
		if s.sb.lastDrain > s.cycle {
			s.cycle = s.sb.lastDrain
		}
		s.Stats.Cycles = s.cycle
		return nil

	case in.Op == isa.NOP:

	case in.Op == isa.MOVI:
		s.Regs[in.Rd] = uint64(in.Imm)
		s.Taint[in.Rd] = false
		s.regReady[in.Rd] = start + 1

	case in.Op == isa.MOV:
		s.Regs[in.Rd] = s.Regs[in.Rs1]
		s.Taint[in.Rd] = s.Taint[in.Rs1]
		s.regReady[in.Rd] = start + 1

	case in.Op.IsALU():
		b := s.Regs[in.Rs2]
		taint := s.Taint[in.Rs1]
		if in.HasImm {
			b = uint64(in.Imm)
		} else {
			taint = taint || s.Taint[in.Rs2]
		}
		s.Regs[in.Rd] = isa.ALUOp(in.Op, s.Regs[in.Rs1], b)
		s.Taint[in.Rd] = taint
		s.regReady[in.Rd] = start + uint64(in.Op.ExLatency())

	case in.Op == isa.LD:
		addr := s.Regs[in.Rs1] + uint64(in.Imm)
		if s.Taint[in.Rs1] {
			// Parity on the address register trips before the access.
			s.Stats.ParityTrips++
			return s.recover()
		}
		var lat int
		if v, ok := s.sb.forward(addr); ok {
			s.Regs[in.Rd] = v
			lat = s.hier.L1D.HitLatency() // forwarding at L1-hit time
			s.hier.L1D.Access(addr)       // keep cache state warm
		} else {
			s.Regs[in.Rd] = s.Mem.Load(addr)
			lat = s.hier.DataAccess(addr)
			if s.obs != nil {
				s.obsLoadAccess(addr, lat)
			}
		}
		s.Taint[in.Rd] = false
		s.regReady[in.Rd] = start + uint64(lat)
		if s.Cfg.Resilient && s.clq != nil && s.clqEnabled && s.cur != nil && !s.inRecovery {
			if !s.clq.noteLoad(s.cur.id, addr) {
				// Overflow: disable fast release and wipe (Fig. 13).
				s.clqEnabled = false
				s.clq.clearAll()
				s.Stats.CLQOverflows++
			}
		}

	case in.Op == isa.ST:
		if s.Taint[in.Rs1] {
			s.Stats.ParityTrips++
			return s.recover()
		}
		addr := s.Regs[in.Rs1] + uint64(in.Imm)
		recovered, err := s.commitStore(in, addr, s.Regs[in.Rs2], false, 0)
		if err != nil {
			return err
		}
		if recovered {
			return nil // PC already redirected to the recovery block
		}

	case in.Op == isa.CKPT:
		recovered, err := s.commitCkpt(in)
		if err != nil {
			return err
		}
		if recovered {
			return nil
		}

	case in.Op == isa.RESTORE:
		// Recovery-block load from the verified checkpoint slot.
		color := 0
		if s.colors != nil {
			if vc := s.colors.verified(in.Rd); vc >= 0 {
				color = vc
			}
		}
		addr := s.Prog.CkptSlot(in.Rd, color)
		if v, ok := s.sb.forward(addr); ok {
			s.Regs[in.Rd] = v
		} else {
			s.Regs[in.Rd] = s.Mem.Load(addr)
		}
		lat := s.hier.DataAccess(addr)
		s.Taint[in.Rd] = false
		s.regReady[in.Rd] = start + uint64(lat)

	case in.Op == isa.JMP:
		next = in.Target
		if s.inRecovery && s.Prog.Insts[next].Op == isa.BOUND {
			// Jumping back into the program body ends the recovery block.
			s.inRecovery = false
		}

	case in.Op.IsCondBranch():
		b := s.Regs[in.Rs2]
		if in.HasImm {
			b = uint64(in.Imm)
		}
		taken := isa.BranchTaken(in.Op, s.Regs[in.Rs1], b)
		if taken {
			next = in.Target
		}
		// Bimodal predictor: 2-bit counter per branch PC.
		ctr := s.predictor[s.PC]
		predictTaken := ctr >= 2
		if predictTaken != taken {
			if s.obs != nil {
				s.obsMispredict()
			}
			s.advanceTo(s.cycle+uint64(s.Cfg.BranchPenalty), &s.Stats.BranchBubbles)
		}
		if taken && ctr < 3 {
			s.predictor[s.PC] = ctr + 1
		} else if !taken && ctr > 0 {
			s.predictor[s.PC] = ctr - 1
		}

	default:
		return fmt.Errorf("pipeline: unimplemented op %v at %d", in.Op, s.PC)
	}

	if !s.halted {
		s.PC = next
		if s.cycle == start && s.slots > s.Cfg.IssueWidth {
			// Defensive: slot bookkeeping is handled above; never trips.
			s.advanceTo(s.cycle+1, nil)
		}
	}
	s.Stats.Cycles = s.cycle
	return nil
}

// commitBound closes the current region and opens the next RBB entry.
func (s *Sim) commitBound(in *isa.Inst, now uint64) error {
	if !s.Cfg.Resilient {
		return nil // boundaries are inert without resilience hardware
	}
	if s.cur != nil {
		s.cur.end = now
		s.cur.verifyAt = now + uint64(s.Cfg.WCDL)
	}
	// Degradation controller: a region boundary is the recalibration
	// point — once the degrade window has elapsed with no further late
	// detections, the mesh is trusted again and fast release resumes
	// for regions opened from here on.
	if s.degradedUntil != 0 && now >= s.degradedUntil {
		s.degradedUntil = 0
		s.Stats.DegradeExits++
		if s.obs != nil {
			s.obs.Tracer.Instant(trackSensor, "mesh", "recalibrated", now, nil)
		}
	}
	// RBB capacity: stall until the oldest region verifies.
	for len(s.rbb) >= s.Cfg.RBBSize {
		oldest := s.rbb[0]
		if oldest.verifyAt == infCycle {
			return fmt.Errorf("pipeline: RBB wedged (open region at head)")
		}
		s.advanceTo(oldest.verifyAt, &s.Stats.RBBFullStalls)
		now = s.cycle
	}
	r := s.newRegion()
	r.id = s.nextRegion
	r.staticID = int(in.Imm)
	r.boundPC = s.PC
	r.start = now
	r.verifyAt = infCycle
	s.nextRegion++
	s.rbb = append(s.rbb, r)
	s.cur = r
	s.Stats.RegionsExecuted++
	// Fig. 13's selective control, with the paper's in-order-release
	// condition: after an overflow, CLQ insertion resumes only at a region
	// start once every prior region is verified (rbb holds just the new
	// region) — otherwise older unverified regions would have unrecorded
	// loads and the WAR check would be unsound.
	if s.clq != nil && !s.clqEnabled && len(s.rbb) == 1 {
		s.clqEnabled = true
	}
	// Sample CLQ occupancy at boundaries (Fig. 24).
	if s.clq != nil {
		occ := s.clq.occupancy()
		s.Stats.CLQOccSamples++
		s.Stats.CLQOccSum += uint64(occ)
		if uint64(occ) > s.Stats.CLQOccMax {
			s.Stats.CLQOccMax = uint64(occ)
		}
		if s.obs != nil && s.obs.clqOcc != nil {
			s.obs.clqOcc.Observe(uint64(occ))
		}
	}
	return nil
}

// degradedHeadroom reports whether the store buffer can take one more
// quarantined entry of a still-open region without risking a wedge: the
// buffer must keep at least one slot free of entries that cannot drain
// until an open region closes, or a Turnpike-partitioned region (sized
// for fast release, not for Turnstile quarantine) could fill the SB with
// undrainable stores and deadlock the pipeline.
func (s *Sim) degradedHeadroom() bool {
	n := 0
	for i := range s.sb.entries {
		if s.sb.entries[i].pendingVerifyAt() == infCycle {
			n++
		}
	}
	return n < s.sb.cap-1
}

// reserveSBSlot stalls until the store buffer has a free entry, sizing the
// stall from pending verification events. When a fault detection fires
// before the hazard resolves, it triggers recovery and reports
// recovered=true — the store never commits and will re-execute.
func (s *Sim) reserveSBSlot() (recovered bool, err error) {
	s.sb.drainUntil(s.cycle, s.Mem)
	for s.sb.full() {
		t := s.sb.nextEventAt()
		if t == infCycle {
			return false, s.sb.wedgedError()
		}
		if at := s.nextDetectAt(); t >= at {
			// The sensors fire before the structural hazard resolves.
			// recovered=true either way: the store did not commit and
			// re-executes (immediately, if the detection was dropped).
			s.advanceTo(at, &s.Stats.SBFullStalls)
			return true, s.fireDetections()
		}
		if t > s.cycle {
			s.advanceTo(t, &s.Stats.SBFullStalls)
		} else {
			s.advanceTo(s.cycle+1, &s.Stats.SBFullStalls)
		}
		s.sb.drainUntil(s.cycle, s.Mem)
	}
	return false, nil
}

// commitStore pushes a regular (program/spill) store or a checkpoint that
// fell back to quarantine. recovered=true means a fault detection fired
// during the structural stall and the store did not commit.
func (s *Sim) commitStore(in *isa.Inst, addr, val uint64, isCkpt bool, ckptReg isa.Reg) (recovered bool, err error) {
	// Structural hazard: wait for a free SB slot.
	if recovered, err := s.reserveSBSlot(); recovered || err != nil {
		return recovered, err
	}
	switch in.Kind {
	case isa.StoreProgram:
		s.Stats.ProgStores++
	case isa.StoreSpill:
		s.Stats.SpillStores++
	case isa.StoreCheckpoint:
		s.Stats.CkptStores++
	}

	quarantine := s.Cfg.Resilient
	if quarantine && !isCkpt && s.clq != nil && s.clqEnabled && s.cur != nil && !s.inRecovery {
		if s.degraded() && s.degradedHeadroom() {
			// Degradation controller: the WCDL bound is in doubt, so
			// hold the store in quarantine (Turnstile-style) as long as
			// the SB has headroom. Regions partitioned for Turnpike can
			// out-store the SB, so under pressure the controller yields
			// back to the WAR-free release below — forward progress
			// over conservatism, and the release itself is still sound
			// for timely detections.
		} else if s.clq.warFree(addr) {
			// Fast release of WAR-free regular stores (§4.3.1), guarded
			// by the forwarding-CAM WAW check for same-address ordering.
			if s.sb.hasOlderSameAddr(addr) {
				s.Stats.WAWBlocked++
			} else {
				quarantine = false
				s.Stats.WARFreeReleased++
				s.cur.warFree++
			}
		}
	}
	if quarantine {
		s.Stats.Quarantined++
		if s.cur != nil {
			s.cur.quarantined++
		} else {
			s.Stats.OutsideRegionStores++
		}
		s.sb.push(sbEntry{addr: addr, val: val, quarantined: true, region: s.cur,
			isCkpt: isCkpt, ckptReg: ckptReg, commitAt: s.cycle})
	} else {
		// Applied architecturally at commit; the SB entry models drain
		// bandwidth only.
		s.Mem.Store(addr, val)
		s.sb.push(sbEntry{addr: addr, val: val, commitAt: s.cycle})
	}
	if s.obs != nil {
		s.obsCommitStore(addr, quarantine, isCkpt)
	}
	// Charge the L1 write access for cache-state realism.
	s.hier.L1D.Access(addr)
	return false, nil
}

// commitCkpt handles a checkpoint store: colored fast release when
// enabled, else quarantine to the register's slot 0.
func (s *Sim) commitCkpt(in *isa.Inst) (recovered bool, err error) {
	r := in.Rs2
	val := s.Regs[r]
	if s.Cfg.Resilient && s.colors != nil && s.cur != nil && !s.inRecovery {
		color := s.colors.acquire(r)
		for color < 0 {
			// Color pool dry: stall until the next verification event
			// reclaims one (rare; bounded by in-flight regions).
			if len(s.rbb) == 0 || s.rbb[0].verifyAt == infCycle {
				return false, fmt.Errorf("pipeline: color pool wedged for %v", r)
			}
			t := s.rbb[0].verifyAt
			if at := s.nextDetectAt(); t >= at {
				s.advanceTo(at, &s.Stats.ColorStalls)
				return true, s.fireDetections()
			}
			s.advanceTo(t, &s.Stats.ColorStalls)
			color = s.colors.acquire(r)
		}
		if recovered, err := s.reserveSBSlot(); recovered || err != nil {
			if recovered {
				// The store never committed; the color was not recorded in
				// UC yet, so hand it straight back.
				s.colors.squash(r, color)
			}
			return recovered, err
		}
		if prev, used := s.cur.colors[r]; used {
			// Second checkpoint of r in one region: the earlier color is
			// superseded; reclaim it immediately.
			s.colors.squash(r, prev)
		}
		if s.cur.colors == nil {
			s.cur.colors = make(map[isa.Reg]int, isa.NumRegs)
		}
		s.cur.colors[r] = color
		addr := s.Prog.CkptSlot(r, color)
		s.Stats.CkptStores++
		if s.degraded() && s.degradedHeadroom() {
			// Degradation controller: the mesh recently delivered a late
			// detection, so the WCDL bound underpinning colored fast
			// release cannot be trusted. Keep the coloring bookkeeping
			// (RESTORE's verified-color lookup must stay consistent) but
			// hold the value in quarantine until the region verifies —
			// unless the SB is out of headroom (see commitStore).
			s.Stats.Quarantined++
			s.cur.quarantined++
			s.sb.push(sbEntry{addr: addr, val: val, quarantined: true, region: s.cur,
				isCkpt: true, ckptReg: r, commitAt: s.cycle})
			if s.obs != nil {
				s.obsCommitStore(addr, true, true)
			}
			s.hier.L1D.Access(addr)
			return false, nil
		}
		// Fast release: SB entry for bandwidth, memory applied at commit.
		s.Mem.Store(addr, val)
		s.sb.push(sbEntry{addr: addr, val: val, commitAt: s.cycle})
		s.hier.L1D.Access(addr)
		s.Stats.ColoredReleased++
		s.cur.colored++
		if s.obs != nil {
			s.obsCommitCkptColored(addr, color)
		}
		return false, nil
	}
	// No coloring: quarantine to slot 0 like any store.
	addr := s.Prog.CkptSlot(r, 0)
	return s.commitStore(in, addr, val, true, r)
}
