package pipeline

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/obs/olog"
)

// benchProg compiles the standard test kernel once per benchmark.
func benchProg(b *testing.B) *isa.Program {
	b.Helper()
	c, err := core.Compile(buildBench(200), core.TurnpikeAll(4))
	if err != nil {
		b.Fatal(err)
	}
	return c.Prog
}

func runSim(b *testing.B, prog *isa.Program, o *Obs) Stats {
	b.Helper()
	s, err := New(prog, TurnpikeConfig(4, 10))
	if err != nil {
		b.Fatal(err)
	}
	seed(s.Mem, 200)
	if o != nil {
		s.AttachObs(o)
	}
	st, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkSimObsDisabled measures the simulator with no observability
// attached — the nil-guard fast path. The acceptance budget for this PR
// is ≤2% regression against the uninstrumented simulator; compare against
// BenchmarkSimObsEnabled to see the cost of full instrumentation.
func BenchmarkSimObsDisabled(b *testing.B) {
	prog := benchProg(b)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st := runSim(b, prog, nil)
		cycles += st.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
}

// BenchmarkSimObsEnabled attaches the registry (histograms live on the
// hot path) plus a discarding tracer, measuring the fully-instrumented
// cost.
func BenchmarkSimObsEnabled(b *testing.B) {
	prog := benchProg(b)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(discardSink{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSim(b, prog, NewObs(tr, reg))
	}
}

type discardSink struct{}

func (discardSink) Emit(obs.Event) error { return nil }
func (discardSink) Close() error         { return nil }

// BenchmarkSimLogDisabled measures the simulator with no logger
// attached — the default. Compare against BenchmarkSimObsDisabled: the
// two must be indistinguishable, because rare-event logging costs one
// nil check at sites the hot loop never reaches.
func BenchmarkSimLogDisabled(b *testing.B) {
	prog := benchProg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(prog, TurnpikeConfig(4, 10))
		if err != nil {
			b.Fatal(err)
		}
		seed(s.Mem, 200)
		s.AttachLogger(context.Background(), nil)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimLogNop attaches a never-enabled logger — the cost when a
// caller hands every simulator a shared disabled logger instead of nil.
func BenchmarkSimLogNop(b *testing.B) {
	prog := benchProg(b)
	l := olog.Nop()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(prog, TurnpikeConfig(4, 10))
		if err != nil {
			b.Fatal(err)
		}
		seed(s.Mem, 200)
		s.AttachLogger(ctx, l)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
