package pipeline

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Live progress publication. A Progress is a goroutine-safe view of
// in-flight simulation work: the simulator publishes atomic deltas at the
// end of every Step (nil-guarded, like the tracer/metrics attachment), and
// a Sampler goroutine periodically turns the accumulators into live.*
// gauges and ProgressSamples for the -serve SSE stream. One Progress may
// be shared by many sequential or concurrent simulations (fault-campaign
// trials, experiment sweeps); counters accumulate across all of them.

// Progress holds goroutine-safe accumulators for in-flight simulation
// work. All counter fields only grow; SBOcc/CLQOcc are last-value gauges.
type Progress struct {
	Cycles          atomic.Uint64 // simulated cycles retired
	Insts           atomic.Uint64 // instructions retired
	Regions         atomic.Uint64 // regions opened
	RegionsVerified atomic.Uint64 // regions retired through verification
	Recoveries      atomic.Uint64 // recovery episodes
	Runs            atomic.Uint64 // completed simulations (campaign trials, sweep points)
	Workers         atomic.Int64  // campaign workers currently running trials
	Retries         atomic.Uint64 // campaign-service job attempts re-queued after transient failures

	SBOcc        atomic.Int64 // store-buffer entries at last publication
	CLQOcc       atomic.Int64 // CLQ occupancy at last publication (-1: no CLQ)
	JobsQueued   atomic.Int64 // campaign-service jobs waiting in the bounded queue
	JobsRunning  atomic.Int64 // campaign-service jobs currently executing
	BreakersOpen atomic.Int64 // campaign-service circuit breakers currently open

	// Fleet gauges: the distributed-campaign coordinator's view of its
	// worker fleet and lease table. FleetWorkers/FleetWorkersLost and
	// LeasesActive are last-value gauges; LeasesExpired/LeasesStolen only
	// grow.
	FleetWorkers     atomic.Int64  // registered workers currently live
	FleetWorkersLost atomic.Int64  // registered workers that stopped heartbeating
	LeasesActive     atomic.Int64  // trial-range leases currently outstanding
	LeasesExpired    atomic.Uint64 // leases reclaimed on deadline or worker loss
	LeasesStolen     atomic.Uint64 // duplicate grants issued to outrun stragglers
}

// AttachProgress makes the simulator publish into p at every Step; nil
// detaches. Attach before stepping. The same Progress may be attached to
// many simulators (even concurrently) — deltas accumulate.
func (s *Sim) AttachProgress(p *Progress) {
	s.progress = p
	if p != nil && s.clq == nil {
		p.CLQOcc.Store(-1)
	}
}

// publishProgress pushes the counter deltas since the last publication and
// refreshes the occupancy gauges. Called only when s.progress != nil.
func (s *Sim) publishProgress() {
	p := s.progress
	st := &s.Stats
	p.Cycles.Add(st.Cycles - s.published.Cycles)
	p.Insts.Add(st.Insts - s.published.Insts)
	p.Regions.Add(st.RegionsExecuted - s.published.RegionsExecuted)
	p.RegionsVerified.Add(st.RegionsVerified - s.published.RegionsVerified)
	p.Recoveries.Add(st.Recoveries - s.published.Recoveries)
	s.published.Cycles = st.Cycles
	s.published.Insts = st.Insts
	s.published.RegionsExecuted = st.RegionsExecuted
	s.published.RegionsVerified = st.RegionsVerified
	s.published.Recoveries = st.Recoveries
	p.SBOcc.Store(int64(s.sb.len()))
	if s.clq != nil {
		p.CLQOcc.Store(int64(s.clq.occupancy()))
	}
}

// ProgressSample is one sampler observation — the payload of a /live SSE
// frame and the source of the live.* gauges.
type ProgressSample struct {
	WallSeconds     float64 `json:"wall_seconds"`
	Cycles          uint64  `json:"cycles"`
	Insts           uint64  `json:"insts"`
	IPC             float64 `json:"ipc"` // cumulative insts/cycles
	CyclesPerSecond float64 `json:"cycles_per_second"`
	Regions         uint64  `json:"regions"`
	RegionsVerified uint64  `json:"regions_verified"`
	Recoveries      uint64  `json:"recoveries"`
	Runs            uint64  `json:"runs"`
	Workers         int64   `json:"workers"`
	Retries         uint64  `json:"retries"`
	SBOcc           int64   `json:"sb_occupancy"`
	CLQOcc          int64   `json:"clq_occupancy"`
	JobsQueued      int64   `json:"jobs_queued"`
	JobsRunning     int64   `json:"jobs_running"`
	BreakersOpen    int64   `json:"breakers_open"`

	FleetWorkers     int64  `json:"fleet_workers"`
	FleetWorkersLost int64  `json:"fleet_workers_lost"`
	LeasesActive     int64  `json:"leases_active"`
	LeasesExpired    uint64 `json:"leases_expired"`
	LeasesStolen     uint64 `json:"leases_stolen"`
}

// Sampler periodically reads a Progress and publishes each observation as
// live.* gauges in a registry (scraped by /metrics) and to an optional
// callback (fanned to /live subscribers by the tools). Start it before the
// run, Stop it after; Stop takes one final sample so short runs still
// produce at least one observation.
type Sampler struct {
	progress *Progress
	reg      *obs.Registry
	interval time.Duration
	onSample func(ProgressSample)

	start      time.Time
	lastCycles uint64
	lastAt     time.Time
	stop       chan struct{}
	done       chan struct{}
}

// NewSampler builds a sampler over p. reg and onSample may each be nil;
// interval defaults to 250ms.
func NewSampler(p *Progress, reg *obs.Registry, interval time.Duration, onSample func(ProgressSample)) *Sampler {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &Sampler{
		progress: p,
		reg:      reg,
		interval: interval,
		onSample: onSample,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine.
func (sp *Sampler) Start() {
	sp.start = time.Now()
	sp.lastAt = sp.start
	go func() {
		defer close(sp.done)
		t := time.NewTicker(sp.interval)
		defer t.Stop()
		for {
			select {
			case <-sp.stop:
				sp.sample()
				return
			case <-t.C:
				sp.sample()
			}
		}
	}()
}

// Stop halts the goroutine after one final sample and waits for it.
func (sp *Sampler) Stop() {
	select {
	case <-sp.stop:
	default:
		close(sp.stop)
	}
	<-sp.done
}

// Sample takes one observation immediately (also used by the goroutine).
func (sp *Sampler) sample() ProgressSample {
	now := time.Now()
	p := sp.progress
	s := ProgressSample{
		WallSeconds:     now.Sub(sp.start).Seconds(),
		Cycles:          p.Cycles.Load(),
		Insts:           p.Insts.Load(),
		Regions:         p.Regions.Load(),
		RegionsVerified: p.RegionsVerified.Load(),
		Recoveries:      p.Recoveries.Load(),
		Runs:            p.Runs.Load(),
		Workers:         p.Workers.Load(),
		Retries:         p.Retries.Load(),
		SBOcc:           p.SBOcc.Load(),
		CLQOcc:          p.CLQOcc.Load(),
		JobsQueued:      p.JobsQueued.Load(),
		JobsRunning:     p.JobsRunning.Load(),
		BreakersOpen:    p.BreakersOpen.Load(),

		FleetWorkers:     p.FleetWorkers.Load(),
		FleetWorkersLost: p.FleetWorkersLost.Load(),
		LeasesActive:     p.LeasesActive.Load(),
		LeasesExpired:    p.LeasesExpired.Load(),
		LeasesStolen:     p.LeasesStolen.Load(),
	}
	if s.Cycles > 0 {
		s.IPC = float64(s.Insts) / float64(s.Cycles)
	}
	if dt := now.Sub(sp.lastAt).Seconds(); dt > 0 {
		s.CyclesPerSecond = float64(s.Cycles-sp.lastCycles) / dt
	}
	sp.lastCycles = s.Cycles
	sp.lastAt = now
	if sp.reg != nil {
		sp.reg.Gauge("live.cycles").Set(int64(s.Cycles))
		sp.reg.Gauge("live.insts").Set(int64(s.Insts))
		sp.reg.Gauge("live.ipc_milli").Set(int64(s.IPC * 1000))
		sp.reg.Gauge("live.regions").Set(int64(s.Regions))
		sp.reg.Gauge("live.regions_verified").Set(int64(s.RegionsVerified))
		sp.reg.Gauge("live.recoveries").Set(int64(s.Recoveries))
		sp.reg.Gauge("live.runs").Set(int64(s.Runs))
		sp.reg.Gauge("live.workers").Set(s.Workers)
		sp.reg.Gauge("live.retries").Set(int64(s.Retries))
		sp.reg.Gauge("live.sb_occupancy").Set(s.SBOcc)
		sp.reg.Gauge("live.clq_occupancy").Set(s.CLQOcc)
		sp.reg.Gauge("live.jobs_queued").Set(s.JobsQueued)
		sp.reg.Gauge("live.jobs_running").Set(s.JobsRunning)
		sp.reg.Gauge("live.breakers_open").Set(s.BreakersOpen)
		sp.reg.Gauge("live.fleet_workers").Set(s.FleetWorkers)
		sp.reg.Gauge("live.fleet_workers_lost").Set(s.FleetWorkersLost)
		sp.reg.Gauge("live.leases_active").Set(s.LeasesActive)
		sp.reg.Gauge("live.leases_expired").Set(int64(s.LeasesExpired))
		sp.reg.Gauge("live.leases_stolen").Set(int64(s.LeasesStolen))
	}
	if sp.onSample != nil {
		sp.onSample(s)
	}
	return s
}
