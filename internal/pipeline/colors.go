package pipeline

import "repro/internal/isa"

// colorMaps implements the hardware coloring of §4.3.2: a pool of
// isa.NumColors checkpoint storage slots per register and three maps —
// Available (AC), Used (UC, kept per region in the RBB), and Verified (VC).
// A checkpoint store grabs a free color and is released to cache
// immediately; when its region verifies, the color moves into VC (and the
// previously verified color returns to AC); when its region is squashed by
// recovery, the color returns to AC directly. Recovery restores a register
// from its VC color.
type colorMaps struct {
	free [isa.NumRegs][]int // AC: free colors per register
	vc   [isa.NumRegs]int   // VC: verified color, -1 if none
}

func newColorMaps() *colorMaps {
	cm := &colorMaps{}
	for r := range cm.free {
		for c := 0; c < isa.NumColors; c++ {
			cm.free[r] = append(cm.free[r], c)
		}
		cm.vc[r] = -1
	}
	return cm
}

// reset returns every color to the free pool in newColorMaps order and
// clears the verified map, reusing the free-list backing arrays.
func (cm *colorMaps) reset() {
	for r := range cm.free {
		fl := cm.free[r][:0]
		for c := 0; c < isa.NumColors; c++ {
			fl = append(fl, c)
		}
		cm.free[r] = fl
		cm.vc[r] = -1
	}
}

// acquire takes a free color for reg, or returns -1 when the pool is dry.
func (cm *colorMaps) acquire(r isa.Reg) int {
	fl := cm.free[r]
	if len(fl) == 0 {
		return -1
	}
	c := fl[len(fl)-1]
	cm.free[r] = fl[:len(fl)-1]
	return c
}

// verify moves reg's used color into VC, reclaiming the previous verified
// color into AC.
func (cm *colorMaps) verify(r isa.Reg, color int) {
	if prev := cm.vc[r]; prev >= 0 {
		cm.free[r] = append(cm.free[r], prev)
	}
	cm.vc[r] = color
}

// squash returns a used-but-unverified color to AC (its region was
// discarded by recovery).
func (cm *colorMaps) squash(r isa.Reg, color int) {
	cm.free[r] = append(cm.free[r], color)
}

// verified returns reg's verified color, or -1 when reg has never had a
// verified checkpoint (its slot 0 holds the initial image, by convention).
func (cm *colorMaps) verified(r isa.Reg) int { return cm.vc[r] }
