// Package fault runs soft-error injection campaigns against the pipeline
// simulator: single-bit flips in architectural registers at random points,
// sensor detection within WCDL, recovery through the compiler-generated
// recovery blocks, and a golden-run comparison that classifies every
// outcome. The paper's core claim — acoustic-sensor verification plus
// region-level recovery eliminates silent data corruption — becomes the
// campaign invariant: zero SDC outcomes.
package fault

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Outcome classifies one injection run.
type Outcome int

const (
	// Masked: the flip changed nothing observable and no recovery was
	// needed (e.g. a dead register) — output still correct.
	Masked Outcome = iota
	// Recovered: detection fired, recovery ran, output correct.
	Recovered
	// SDC: output differs from the golden run — must never happen.
	SDC
	// Crash: the simulator reported an error.
	Crash
	// DUE: a detected-unrecoverable error — the detection arrived after
	// its region had verified and released stores, and containment
	// aborted the machine rather than let the corruption go silent. A
	// DUE is the *successful* outcome of containment under an imperfect
	// mesh: data is lost, but never silently wrong.
	DUE
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Recovered:
		return "recovered"
	case SDC:
		return "SDC"
	case Crash:
		return "crash"
	case DUE:
		return "DUE"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Config parameterizes a campaign.
type Config struct {
	// Trials is the number of injections.
	Trials int
	// Seed makes the campaign reproducible.
	Seed int64
	// Sim is the pipeline configuration (must be resilient).
	Sim pipeline.Config
	// MaxInjectInst bounds the injection point (instruction count); 0
	// derives it from a fault-free run's length.
	MaxInjectInst uint64
	// Sampler overrides the detection-latency distribution (e.g. a
	// sensor.PhysicalDetector for grid-placed meshes). Nil uses the
	// uniform-in-[1,WCDL] Detector. Sampled latencies are clamped to the
	// configured WCDL, preserving the recovery argument.
	Sampler LatencySampler
	// Metrics, when set, receives per-campaign observability: outcome
	// counters, a detection-latency histogram, a recovery-cycles
	// histogram, and the merged simulator statistics of every trial.
	Metrics *obs.Registry
	// Progress, when set, is attached to every trial's simulator so a
	// pipeline.Sampler can publish live campaign figures (cycles, IPC,
	// recoveries, trial count, active workers) while the campaign is in
	// flight.
	Progress *pipeline.Progress
	// Workers bounds the trial worker pool; <=0 uses GOMAXPROCS. The
	// result is identical for every worker count: each trial's injection
	// plan is a pure function of (Seed, trial) and per-trial results are
	// merged in trial order.
	Workers int
	// Lease is the number of consecutive trials a worker takes per
	// dispatch, amortizing channel traffic over batches of trials; <=0
	// picks an automatic batch from Trials and Workers. Any lease size
	// produces byte-identical results — the plan stays a pure function
	// of (Seed, trial) and the merge stays trial-index-ordered.
	Lease int
	// FailureBudget caps recorded SDC/crash trials before the campaign
	// cancels its remaining work. 0 keeps the historical fail-fast
	// behaviour (budget of one); a negative budget never aborts, so a
	// full campaign records every failure into Result.Failures for
	// replay. Whenever the budget is exhausted Campaign returns an error
	// alongside the merged partial result.
	FailureBudget int
	// Checkpoint, when non-empty, is the path of an atomically-rewritten
	// JSON file recording every completed trial. A campaign started with
	// an existing checkpoint at the same (seed, trials, workload) resumes
	// from the completed-trial watermark instead of re-running; anything
	// else in the file's fingerprint mismatching is an error.
	Checkpoint string
	// CheckpointEvery is the number of completed trials between
	// checkpoint rewrites (default 64). The file is always rewritten once
	// more when the campaign finishes or is cancelled.
	CheckpointEvery int
	// Adversary, when set, switches the campaign to the imperfect-mesh
	// fault model: dead sensors, late detections, fault bursts, and
	// false positives, all drawn from the per-trial SplitMix64 streams
	// so results stay worker-count-deterministic. Mutually exclusive
	// with Sampler.
	Adversary *Adversary
	// Warnf, when set, receives non-fatal campaign warnings — today, a
	// corrupt checkpoint file being discarded in favour of a fresh run.
	// Nil discards. Kept as the legacy printf hook; new call sites should
	// prefer Logger (when both are set, warnings go to both).
	Warnf func(format string, args ...any)
	// Logger, when set, receives the campaign's structured log:
	// lifecycle events at Info (start, resume, completion, budget
	// exhaustion), per-trial outcomes at Debug, and the simulator's rare
	// events (recoveries, containment aborts, degrade transitions). Every
	// record is stamped with the correlation chain of the campaign's
	// context — job ID from the service, plus the shard (worker) and
	// trial indices the engine adds — so one job's story can be filtered
	// out of a shared stream. Nil disables at zero hot-loop cost.
	Logger *slog.Logger
}

// Adversary parameterizes the imperfect-mesh fault model. The nominal
// mesh is derived from the pipeline's WCDL (the sensor count that
// achieves it on the paper's 1 mm², 2.5 GHz die); the knobs then break
// it: DeadSensors enlarge the surviving cells (stretching real detection
// latency past the WCDL the pipeline was provisioned for), MissProb
// sends strikes to a farther sensor outright, BurstMax packs several
// strikes into one detection window, and FalsePositiveRate fires
// sensors with no strike at all.
type Adversary struct {
	// MissProb is the per-strike probability the detection lands beyond
	// the nominal WCDL, in (WCDL, LateFactor×WCDL].
	MissProb float64 `json:"miss_prob"`
	// FalsePositiveRate is the per-trial probability of one spurious
	// detection at a uniform instruction point.
	FalsePositiveRate float64 `json:"false_positive_rate"`
	// DeadSensors is how many sensors of the nominal mesh are offline.
	DeadSensors int `json:"dead_sensors"`
	// BurstMax caps the strikes per trial: each trial draws a burst
	// size uniform in [1, BurstMax]. 0 or 1 keeps single strikes.
	BurstMax int `json:"burst_max"`
	// LateFactor bounds late detections at LateFactor × WCDL (values
	// below 2 are raised to 2; 0 means the default of 4).
	LateFactor float64 `json:"late_factor"`
}

// validate checks the adversary against the pipeline configuration it
// will drive.
func (a *Adversary) validate(sim pipeline.Config) error {
	if a.MissProb < 0 || a.MissProb > 1 {
		return fmt.Errorf("fault: adversary miss probability %v outside [0,1]", a.MissProb)
	}
	if a.FalsePositiveRate < 0 || a.FalsePositiveRate > 1 {
		return fmt.Errorf("fault: adversary false-positive rate %v outside [0,1]", a.FalsePositiveRate)
	}
	if a.DeadSensors < 0 {
		return fmt.Errorf("fault: adversary dead sensors %d", a.DeadSensors)
	}
	if a.BurstMax < 0 {
		return fmt.Errorf("fault: adversary burst max %d", a.BurstMax)
	}
	dq := sim.DetectQueue
	if dq == 0 {
		dq = 8 // pipeline.New's default
	}
	if a.BurstMax+1 > dq {
		return fmt.Errorf("fault: adversary burst max %d needs a detect queue of %d (have %d)",
			a.BurstMax, a.BurstMax+1, dq)
	}
	if a.LateFactor < 0 {
		return fmt.Errorf("fault: adversary late factor %v", a.LateFactor)
	}
	return nil
}

// LatencySampler produces per-strike detection latencies in cycles.
type LatencySampler interface {
	Latency() int
}

// Result aggregates a campaign.
type Result struct {
	Outcomes   map[Outcome]int
	Recoveries uint64
	Parity     uint64
	// AvgRecoveryCycles is the mean recovery penalty over runs that
	// recovered at least once.
	AvgRecoveryCycles float64
	// SlowdownSamples holds, per recovered trial, the run's cycle count
	// relative to the golden run — the end-to-end cost of one strike.
	SlowdownSamples []float64
	// Agg is the Stats.Merge aggregation of every injected trial's
	// simulator statistics (the golden run is excluded).
	Agg pipeline.Stats
	// CompletedTrials counts the trials that actually ran (or were
	// restored from a checkpoint); it is less than Config.Trials when the
	// campaign was cancelled or exhausted its failure budget.
	CompletedTrials int
	// Failures is the replayable failure report: every SDC or crash
	// trial, in trial order. Feed an entry's Inj to Replay to re-execute
	// it in isolation. DUEs are not failures — they are containment
	// working as designed.
	Failures []TrialFailure

	// Strikes is the total number of injected strikes across every
	// completed trial (each strike of a burst counts).
	Strikes int
	// MissedDetections counts strikes whose planned detection exceeded
	// the nominal WCDL (the imperfect mesh's misses).
	MissedDetections int
	// Coverage is the fraction of strikes detected within the WCDL,
	// with a Wilson 95% interval.
	Coverage Proportion
	// DUERate and SDCRate are per-trial outcome rates with Wilson 95%
	// intervals. The containment invariant in one line: with containment
	// on, SDCRate.Hi must sit at the binomial zero bound while DUERate
	// absorbs every miss.
	DUERate Proportion
	SDCRate Proportion
}

// Proportion is a binomial rate estimate with its Wilson 95% score
// interval — the interval of choice for campaign rates because it stays
// honest at the extremes (zero successes out of n still yields a nonzero
// upper bound of roughly 3.84/(n+3.84)).
type Proportion struct {
	Successes int     `json:"successes"`
	Total     int     `json:"total"`
	Rate      float64 `json:"rate"`
	// Lo and Hi bound the true rate at 95% confidence.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// NewProportion computes the Wilson 95% score interval for k successes
// out of n.
func NewProportion(k, n int) Proportion {
	p := Proportion{Successes: k, Total: n}
	if n <= 0 {
		return p
	}
	const z = 1.959963984540054 // 97.5th normal percentile
	ph := float64(k) / float64(n)
	p.Rate = ph
	nf := float64(n)
	denom := 1 + z*z/nf
	center := ph + z*z/(2*nf)
	half := z * math.Sqrt(ph*(1-ph)/nf+z*z/(4*nf*nf))
	p.Lo = (center - half) / denom
	p.Hi = (center + half) / denom
	if p.Lo < 0 {
		p.Lo = 0
	}
	if p.Hi > 1 {
		p.Hi = 1
	}
	return p
}

// SlowdownPercentile returns the p-th percentile (0..100) of the recovered
// trials' relative slowdowns using the nearest-rank definition
// (ceil(p/100*n)), or 0 when none recovered. Truncating the rank instead
// would bias P95/P99 low on small sample counts.
func (r *Result) SlowdownPercentile(p float64) float64 {
	if len(r.SlowdownSamples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.SlowdownSamples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Injection describes one trial's fault events: the primary strike (which
// register bit flips, after how many retired instructions, the sensor's
// detection latency), plus — for adversarial campaigns — the rest of the
// burst and any spurious detections. It is the replay unit: a campaign's
// failure report and checkpoint file both record Injections, and Replay
// re-executes one, adversarial or not.
type Injection struct {
	Reg     isa.Reg `json:"reg"`
	Bit     uint    `json:"bit"`
	AtInst  uint64  `json:"at_inst"`
	Latency int     `json:"latency"`
	// Missed flags a primary detection planned beyond the nominal WCDL.
	Missed bool `json:"missed,omitempty"`
	// Extra holds the burst's additional strikes, in injection order.
	Extra []Strike `json:"extra,omitempty"`
	// FalsePositives lists spurious sensor firings (no strike).
	FalsePositives []FalsePositive `json:"false_positives,omitempty"`
}

// Strike is one additional burst strike.
type Strike struct {
	Reg     isa.Reg `json:"reg"`
	Bit     uint    `json:"bit"`
	AtInst  uint64  `json:"at_inst"`
	Latency int     `json:"latency"`
	Missed  bool    `json:"missed,omitempty"`
}

// FalsePositive is one spurious detection event.
type FalsePositive struct {
	AtInst  uint64 `json:"at_inst"`
	Latency int    `json:"latency"`
}

// injEvent is one scheduled fault event in a trial; fp marks a spurious
// detection with no strike.
type injEvent struct {
	atInst uint64
	strike Strike
	fp     bool
	fpLat  int
}

// appendEvents appends the injection's instruction-ordered schedule to
// evs — normally a worker's scratch resliced to [:0], so steady-state
// planning allocates nothing. Ordering is deterministic: by instruction
// point, primaries before extras before false positives on ties (stable
// sort over that layout). The single-event common case skips the sort.
func (inj *Injection) appendEvents(evs []injEvent) []injEvent {
	evs = append(evs, injEvent{atInst: inj.AtInst, strike: Strike{
		Reg: inj.Reg, Bit: inj.Bit, AtInst: inj.AtInst, Latency: inj.Latency, Missed: inj.Missed}})
	for i := range inj.Extra {
		evs = append(evs, injEvent{atInst: inj.Extra[i].AtInst, strike: inj.Extra[i]})
	}
	for i := range inj.FalsePositives {
		evs = append(evs, injEvent{atInst: inj.FalsePositives[i].AtInst, fp: true, fpLat: inj.FalsePositives[i].Latency})
	}
	if len(evs) > 1 {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].atInst < evs[b].atInst })
	}
	return evs
}

// events flattens the injection into a freshly allocated schedule.
func (inj *Injection) events() []injEvent {
	return inj.appendEvents(make([]injEvent, 0, 1+len(inj.Extra)+len(inj.FalsePositives)))
}

// CountStrikes returns the number of strikes (1 + burst extras) and how
// many of them were planned to be missed (detected beyond the WCDL).
func (inj *Injection) CountStrikes() (strikes, missed int) {
	strikes = 1 + len(inj.Extra)
	if inj.Missed {
		missed++
	}
	for i := range inj.Extra {
		if inj.Extra[i].Missed {
			missed++
		}
	}
	return strikes, missed
}

// TrialFailure records one SDC or crash trial in a campaign's failure
// report.
type TrialFailure struct {
	Trial   int       `json:"trial"`
	Outcome Outcome   `json:"outcome"`
	Inj     Injection `json:"injection"`
	// Err is the simulator error for crashes.
	Err string `json:"error,omitempty"`
}

// run executes prog once, optionally injecting inj, and returns the output
// memory (with private regions masked) and the run's statistics. Each
// completed run counts toward cfg.Progress.Runs, so a live campaign's
// trial count ticks on the /live stream. ctx carries the correlation
// chain the simulator's rare-event log lines are stamped with.
func run(ctx context.Context, prog *isa.Program, cfg Config, seedMem func(*isa.Memory), inj *Injection) (*isa.Memory, pipeline.Stats, error) {
	// NewContext records a pipeline/setup span when ctx carries a span
	// tracer. Per-trial contexts are span-detached by the campaign
	// worker, so only the golden run (and direct callers) pay or log it.
	s, err := pipeline.NewContext(ctx, prog, cfg.Sim)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	if cfg.Progress != nil {
		s.AttachProgress(cfg.Progress)
	}
	if cfg.Logger != nil {
		s.AttachLogger(ctx, cfg.Logger)
	}
	if seedMem != nil {
		seedMem(s.Mem)
	}
	var evs []injEvent
	if inj != nil {
		evs = inj.events()
	}
	next := 0
	for !s.Halted() {
		for next < len(evs) && s.Stats.Insts >= evs[next].atInst {
			ev := evs[next]
			next++
			var err error
			if ev.fp {
				err = s.InjectFalseDetection(ev.fpLat)
			} else {
				err = s.InjectBitFlip(ev.strike.Reg, ev.strike.Bit, ev.strike.Latency)
			}
			if err != nil {
				return nil, s.Stats, err
			}
		}
		if err := s.Step(); err != nil {
			return nil, s.Stats, err
		}
	}
	if cfg.Progress != nil {
		cfg.Progress.Runs.Add(1)
	}
	return mask(s.OutputMemory()), s.Stats, nil
}

// mask removes compiler-private regions (spill slots) from the image;
// OutputMemory already masks checkpoint storage.
func mask(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}
