// Package fault runs soft-error injection campaigns against the pipeline
// simulator: single-bit flips in architectural registers at random points,
// sensor detection within WCDL, recovery through the compiler-generated
// recovery blocks, and a golden-run comparison that classifies every
// outcome. The paper's core claim — acoustic-sensor verification plus
// region-level recovery eliminates silent data corruption — becomes the
// campaign invariant: zero SDC outcomes.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sensor"
)

// Outcome classifies one injection run.
type Outcome int

const (
	// Masked: the flip changed nothing observable and no recovery was
	// needed (e.g. a dead register) — output still correct.
	Masked Outcome = iota
	// Recovered: detection fired, recovery ran, output correct.
	Recovered
	// SDC: output differs from the golden run — must never happen.
	SDC
	// Crash: the simulator reported an error.
	Crash
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Recovered:
		return "recovered"
	case SDC:
		return "SDC"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Config parameterizes a campaign.
type Config struct {
	// Trials is the number of injections.
	Trials int
	// Seed makes the campaign reproducible.
	Seed int64
	// Sim is the pipeline configuration (must be resilient).
	Sim pipeline.Config
	// MaxInjectInst bounds the injection point (instruction count); 0
	// derives it from a fault-free run's length.
	MaxInjectInst uint64
	// Sampler overrides the detection-latency distribution (e.g. a
	// sensor.PhysicalDetector for grid-placed meshes). Nil uses the
	// uniform-in-[1,WCDL] Detector. Sampled latencies are clamped to the
	// configured WCDL, preserving the recovery argument.
	Sampler LatencySampler
	// Metrics, when set, receives per-campaign observability: outcome
	// counters, a detection-latency histogram, a recovery-cycles
	// histogram, and the merged simulator statistics of every trial.
	Metrics *obs.Registry
	// Progress, when set, is attached to every trial's simulator so a
	// pipeline.Sampler can publish live campaign figures (cycles, IPC,
	// recoveries, trial count) while the campaign is in flight.
	Progress *pipeline.Progress
}

// LatencySampler produces per-strike detection latencies in cycles.
type LatencySampler interface {
	Latency() int
}

// Result aggregates a campaign.
type Result struct {
	Outcomes   map[Outcome]int
	Recoveries uint64
	Parity     uint64
	// AvgRecoveryCycles is the mean recovery penalty over runs that
	// recovered at least once.
	AvgRecoveryCycles float64
	// SlowdownSamples holds, per recovered trial, the run's cycle count
	// relative to the golden run — the end-to-end cost of one strike.
	SlowdownSamples []float64
	// Agg is the Stats.Merge aggregation of every injected trial's
	// simulator statistics (the golden run is excluded).
	Agg pipeline.Stats
}

// SlowdownPercentile returns the p-th percentile (0..100) of the recovered
// trials' relative slowdowns, or 0 when none recovered.
func (r *Result) SlowdownPercentile(p float64) float64 {
	if len(r.SlowdownSamples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.SlowdownSamples...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Injection describes one trial, for failure reporting.
type Injection struct {
	Reg     isa.Reg
	Bit     uint
	AtInst  uint64
	Latency int
}

// Campaign injects cfg.Trials faults into prog and verifies every outcome
// against the fault-free golden memory. seedMem populates program inputs
// for both runs. It returns the aggregate result; the first SDC or crash
// aborts the campaign with an error describing the trial.
func Campaign(prog *isa.Program, cfg Config, seedMem func(*isa.Memory)) (*Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 100
	}
	// Golden run.
	golden, goldenStats, err := run(prog, cfg, seedMem, nil)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	maxAt := cfg.MaxInjectInst
	if maxAt == 0 {
		maxAt = goldenStats.Insts * 9 / 10
		if maxAt == 0 {
			maxAt = 1
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var det LatencySampler = sensor.NewDetector(cfg.Sim.WCDL, cfg.Seed+1)
	if cfg.Sampler != nil {
		det = cfg.Sampler
	}
	var detLat, recLen *obs.Histogram
	if cfg.Metrics != nil {
		detLat = cfg.Metrics.Histogram("fault.detect_latency_cycles",
			obs.LinearBuckets(1, 1, 32))
		recLen = cfg.Metrics.Histogram("fault.recovery_cycles",
			obs.ExpBuckets(1, 2, 14))
	}
	res := &Result{Outcomes: map[Outcome]int{}}
	var recCycles, recRuns uint64
	for trial := 0; trial < cfg.Trials; trial++ {
		lat := det.Latency()
		if lat < 1 {
			lat = 1
		}
		if lat > cfg.Sim.WCDL {
			lat = cfg.Sim.WCDL
		}
		if detLat != nil {
			detLat.Observe(uint64(lat))
		}
		inj := Injection{
			Reg:     isa.Reg(1 + rng.Intn(isa.NumRegs-1)),
			Bit:     uint(rng.Intn(64)),
			AtInst:  uint64(rng.Int63n(int64(maxAt))) + 1,
			Latency: lat,
		}
		mem, st, err := run(prog, cfg, seedMem, &inj)
		res.Agg.Merge(&st)
		outcome := Masked
		switch {
		case err != nil:
			outcome = Crash
		case !golden.Equal(mem):
			outcome = SDC
		case st.Recoveries > 0:
			outcome = Recovered
		}
		res.Outcomes[outcome]++
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("fault.outcome." + outcome.String()).Inc()
		}
		if err != nil {
			return res, fmt.Errorf("fault: trial %d crashed (%+v): %w", trial, inj, err)
		}
		if outcome == SDC {
			return res, fmt.Errorf("fault: trial %d produced SDC (%+v)", trial, inj)
		}
		if outcome == Recovered {
			recCycles += st.RecoveryCycles
			recRuns++
			if recLen != nil {
				recLen.Observe(st.RecoveryCycles)
			}
			if goldenStats.Cycles > 0 {
				res.SlowdownSamples = append(res.SlowdownSamples,
					float64(st.Cycles)/float64(goldenStats.Cycles))
			}
		}
		res.Recoveries += st.Recoveries
		res.Parity += st.ParityTrips
	}
	if recRuns > 0 {
		res.AvgRecoveryCycles = float64(recCycles) / float64(recRuns)
	}
	if cfg.Metrics != nil {
		pipeline.FillStats(cfg.Metrics, &res.Agg)
	}
	return res, nil
}

// run executes prog once, optionally injecting inj, and returns the output
// memory (with private regions masked) and the run's statistics. Each
// completed run counts toward cfg.Progress.Runs, so a live campaign's
// trial count ticks on the /live stream.
func run(prog *isa.Program, cfg Config, seedMem func(*isa.Memory), inj *Injection) (*isa.Memory, pipeline.Stats, error) {
	s, err := pipeline.New(prog, cfg.Sim)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	if cfg.Progress != nil {
		s.AttachProgress(cfg.Progress)
	}
	if seedMem != nil {
		seedMem(s.Mem)
	}
	injected := false
	for !s.Halted() {
		if inj != nil && !injected && s.Stats.Insts >= inj.AtInst {
			if err := s.InjectBitFlip(inj.Reg, inj.Bit, inj.Latency); err != nil {
				return nil, s.Stats, err
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			return nil, s.Stats, err
		}
	}
	if cfg.Progress != nil {
		cfg.Progress.Runs.Add(1)
	}
	return mask(s.OutputMemory()), s.Stats, nil
}

// mask removes compiler-private regions (spill slots) from the image;
// OutputMemory already masks checkpoint storage.
func mask(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}
