// Package fault runs soft-error injection campaigns against the pipeline
// simulator: single-bit flips in architectural registers at random points,
// sensor detection within WCDL, recovery through the compiler-generated
// recovery blocks, and a golden-run comparison that classifies every
// outcome. The paper's core claim — acoustic-sensor verification plus
// region-level recovery eliminates silent data corruption — becomes the
// campaign invariant: zero SDC outcomes.
package fault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Outcome classifies one injection run.
type Outcome int

const (
	// Masked: the flip changed nothing observable and no recovery was
	// needed (e.g. a dead register) — output still correct.
	Masked Outcome = iota
	// Recovered: detection fired, recovery ran, output correct.
	Recovered
	// SDC: output differs from the golden run — must never happen.
	SDC
	// Crash: the simulator reported an error.
	Crash
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Recovered:
		return "recovered"
	case SDC:
		return "SDC"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Config parameterizes a campaign.
type Config struct {
	// Trials is the number of injections.
	Trials int
	// Seed makes the campaign reproducible.
	Seed int64
	// Sim is the pipeline configuration (must be resilient).
	Sim pipeline.Config
	// MaxInjectInst bounds the injection point (instruction count); 0
	// derives it from a fault-free run's length.
	MaxInjectInst uint64
	// Sampler overrides the detection-latency distribution (e.g. a
	// sensor.PhysicalDetector for grid-placed meshes). Nil uses the
	// uniform-in-[1,WCDL] Detector. Sampled latencies are clamped to the
	// configured WCDL, preserving the recovery argument.
	Sampler LatencySampler
	// Metrics, when set, receives per-campaign observability: outcome
	// counters, a detection-latency histogram, a recovery-cycles
	// histogram, and the merged simulator statistics of every trial.
	Metrics *obs.Registry
	// Progress, when set, is attached to every trial's simulator so a
	// pipeline.Sampler can publish live campaign figures (cycles, IPC,
	// recoveries, trial count, active workers) while the campaign is in
	// flight.
	Progress *pipeline.Progress
	// Workers bounds the trial worker pool; <=0 uses GOMAXPROCS. The
	// result is identical for every worker count: each trial's injection
	// plan is a pure function of (Seed, trial) and per-trial results are
	// merged in trial order.
	Workers int
	// FailureBudget caps recorded SDC/crash trials before the campaign
	// cancels its remaining work. 0 keeps the historical fail-fast
	// behaviour (budget of one); a negative budget never aborts, so a
	// full campaign records every failure into Result.Failures for
	// replay. Whenever the budget is exhausted Campaign returns an error
	// alongside the merged partial result.
	FailureBudget int
	// Checkpoint, when non-empty, is the path of an atomically-rewritten
	// JSON file recording every completed trial. A campaign started with
	// an existing checkpoint at the same (seed, trials, workload) resumes
	// from the completed-trial watermark instead of re-running; anything
	// else in the file's fingerprint mismatching is an error.
	Checkpoint string
	// CheckpointEvery is the number of completed trials between
	// checkpoint rewrites (default 64). The file is always rewritten once
	// more when the campaign finishes or is cancelled.
	CheckpointEvery int
}

// LatencySampler produces per-strike detection latencies in cycles.
type LatencySampler interface {
	Latency() int
}

// Result aggregates a campaign.
type Result struct {
	Outcomes   map[Outcome]int
	Recoveries uint64
	Parity     uint64
	// AvgRecoveryCycles is the mean recovery penalty over runs that
	// recovered at least once.
	AvgRecoveryCycles float64
	// SlowdownSamples holds, per recovered trial, the run's cycle count
	// relative to the golden run — the end-to-end cost of one strike.
	SlowdownSamples []float64
	// Agg is the Stats.Merge aggregation of every injected trial's
	// simulator statistics (the golden run is excluded).
	Agg pipeline.Stats
	// CompletedTrials counts the trials that actually ran (or were
	// restored from a checkpoint); it is less than Config.Trials when the
	// campaign was cancelled or exhausted its failure budget.
	CompletedTrials int
	// Failures is the replayable failure report: every SDC or crash
	// trial, in trial order. Feed an entry's Inj to Replay to re-execute
	// it in isolation.
	Failures []TrialFailure
}

// SlowdownPercentile returns the p-th percentile (0..100) of the recovered
// trials' relative slowdowns using the nearest-rank definition
// (ceil(p/100*n)), or 0 when none recovered. Truncating the rank instead
// would bias P95/P99 low on small sample counts.
func (r *Result) SlowdownPercentile(p float64) float64 {
	if len(r.SlowdownSamples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.SlowdownSamples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Injection describes one trial's strike: which register bit flips, after
// how many retired instructions, and the sensor's detection latency. It is
// the replay unit — a campaign's failure report and checkpoint file both
// record Injections, and Replay re-executes one.
type Injection struct {
	Reg     isa.Reg `json:"reg"`
	Bit     uint    `json:"bit"`
	AtInst  uint64  `json:"at_inst"`
	Latency int     `json:"latency"`
}

// TrialFailure records one SDC or crash trial in a campaign's failure
// report.
type TrialFailure struct {
	Trial   int       `json:"trial"`
	Outcome Outcome   `json:"outcome"`
	Inj     Injection `json:"injection"`
	// Err is the simulator error for crashes.
	Err string `json:"error,omitempty"`
}

// run executes prog once, optionally injecting inj, and returns the output
// memory (with private regions masked) and the run's statistics. Each
// completed run counts toward cfg.Progress.Runs, so a live campaign's
// trial count ticks on the /live stream.
func run(prog *isa.Program, cfg Config, seedMem func(*isa.Memory), inj *Injection) (*isa.Memory, pipeline.Stats, error) {
	s, err := pipeline.New(prog, cfg.Sim)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	if cfg.Progress != nil {
		s.AttachProgress(cfg.Progress)
	}
	if seedMem != nil {
		seedMem(s.Mem)
	}
	injected := false
	for !s.Halted() {
		if inj != nil && !injected && s.Stats.Insts >= inj.AtInst {
			if err := s.InjectBitFlip(inj.Reg, inj.Bit, inj.Latency); err != nil {
				return nil, s.Stats, err
			}
			injected = true
		}
		if err := s.Step(); err != nil {
			return nil, s.Stats, err
		}
	}
	if cfg.Progress != nil {
		cfg.Progress.Runs.Add(1)
	}
	return mask(s.OutputMemory()), s.Stats, nil
}

// mask removes compiler-private regions (spill slots) from the image;
// OutputMemory already masks checkpoint storage.
func mask(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}
