package fault

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// FuzzTrialPlan fuzzes the per-trial seeding scheme: for any (seed,
// trial, maxAt, wcdl), the injection plan must be pure (re-derivable) and
// in-bounds — register in [1, NumRegs), bit < 64, strike point in
// [1, maxAt], latency in [1, WCDL]. This is the property the parallel
// engine's worker-count invariance rests on.
func FuzzTrialPlan(f *testing.F) {
	f.Add(int64(1), uint16(0), uint64(100), uint8(10))
	f.Add(int64(-7), uint16(9999), uint64(1), uint8(1))
	f.Add(int64(1<<62), uint16(42), uint64(1<<40), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, trial uint16, maxAt uint64, wcdl uint8) {
		if maxAt == 0 {
			maxAt = 1
		}
		if maxAt > 1<<60 {
			maxAt = 1 << 60
		}
		w := int(wcdl)
		if w == 0 {
			w = 1
		}
		e := &engine{cfg: Config{Seed: seed, Trials: int(trial) + 1, Sim: pipeline.TurnpikeConfig(4, w)}, maxAt: maxAt}
		if err := e.resolveSampler(); err != nil {
			t.Fatal(err)
		}
		inj := e.plan(int(trial))
		if !reflect.DeepEqual(inj, e.plan(int(trial))) {
			t.Fatalf("plan not pure for seed=%d trial=%d", seed, trial)
		}
		if inj.Reg < 1 || int(inj.Reg) >= isa.NumRegs {
			t.Fatalf("register out of range: %+v", inj)
		}
		if inj.Bit > 63 {
			t.Fatalf("bit out of range: %+v", inj)
		}
		if inj.AtInst < 1 || inj.AtInst > maxAt {
			t.Fatalf("strike point outside [1, %d]: %+v", maxAt, inj)
		}
		if inj.Latency < 1 || inj.Latency > w {
			t.Fatalf("latency outside [1, %d]: %+v", w, inj)
		}
	})
}

// FuzzBurstPlan fuzzes the adversarial planner: for any (seed, trial) and
// any adversary knob settings, the burst plan must be a pure function of
// (Seed, trial) — re-deriving it twice gives identical strikes, extras,
// and false positives — and every event must stay in-bounds: burst size
// within [1, BurstMax], extras within one nominal window of the primary,
// false-positive latencies within [1, WCDL]. Worker-count invariance and
// checkpoint resume both rest on this purity.
func FuzzBurstPlan(f *testing.F) {
	f.Add(int64(1), uint16(0), uint8(3), uint8(50), uint8(20))
	f.Add(int64(-9), uint16(777), uint8(6), uint8(100), uint8(0))
	f.Add(int64(1<<61), uint16(65535), uint8(2), uint8(0), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, trial uint16, burst, missPct, fpPct uint8) {
		const wcdl = 10
		adv := &Adversary{
			MissProb:          float64(missPct%101) / 100,
			FalsePositiveRate: float64(fpPct%101) / 100,
			DeadSensors:       int(trial) % 4,
			BurstMax:          1 + int(burst)%7,
			LateFactor:        3,
		}
		cfg := pipeline.TurnpikeConfig(4, wcdl)
		cfg.DetectQueue = 16
		e := &engine{cfg: Config{Seed: seed, Trials: int(trial) + 1, Sim: cfg, Adversary: adv}, maxAt: 1000}
		if err := e.resolveSampler(); err != nil {
			t.Fatal(err)
		}
		inj := e.plan(int(trial))
		if !reflect.DeepEqual(inj, e.plan(int(trial))) {
			t.Fatalf("burst plan not pure for seed=%d trial=%d", seed, trial)
		}
		strikes, _ := inj.CountStrikes()
		if strikes < 1 || strikes > adv.BurstMax {
			t.Fatalf("burst size %d outside [1, %d]", strikes, adv.BurstMax)
		}
		if inj.Latency < 1 {
			t.Fatalf("non-positive primary latency: %+v", inj)
		}
		for _, s := range inj.Extra {
			if s.Reg < 1 || int(s.Reg) >= isa.NumRegs || s.Bit > 63 || s.Latency < 1 {
				t.Fatalf("extra strike out of range: %+v", s)
			}
			if s.AtInst < inj.AtInst || s.AtInst > inj.AtInst+wcdl {
				t.Fatalf("extra strike %d outside the primary's window [%d, %d]",
					s.AtInst, inj.AtInst, inj.AtInst+wcdl)
			}
		}
		for _, fp := range inj.FalsePositives {
			if fp.AtInst < 1 || fp.AtInst > e.maxAt || fp.Latency < 1 || fp.Latency > wcdl {
				t.Fatalf("false positive out of range: %+v", fp)
			}
		}
	})
}

// FuzzInjectNoSDC is the end-to-end resilience fuzz target: a random
// structured program, compiled under Turnpike, must survive random
// single-bit strikes without silent data corruption. The nightly CI smoke
// pass runs it with -fuzz; under plain `go test` only the seed corpus
// executes.
func FuzzInjectNoSDC(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(987654))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed ^ 0x7fbb))
		fn := workload.Fuzz(seed)
		wcdl := 5 + rng.Intn(30)
		compiled, err := core.Compile(fn, core.TurnpikeAll(4))
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		cfg := pipeline.TurnpikeConfig(4, wcdl)
		seedMem := func(m *isa.Memory) { workload.FuzzSeedMemory(m, seed) }
		golden, _, err := run(context.Background(), compiled.Prog, Config{Sim: cfg}, seedMem, nil)
		if err != nil {
			t.Fatalf("seed %d: golden: %v", seed, err)
		}
		for trial := 0; trial < 2; trial++ {
			inj := Injection{
				Reg:     isa.Reg(1 + rng.Intn(isa.NumRegs-1)),
				Bit:     uint(rng.Intn(64)),
				AtInst:  uint64(rng.Intn(600) + 1),
				Latency: 1 + rng.Intn(wcdl),
			}
			mem, _, err := run(context.Background(), compiled.Prog, Config{Sim: cfg}, seedMem, &inj)
			if err != nil {
				t.Fatalf("seed %d trial %d (%+v): crash: %v", seed, trial, inj, err)
			}
			if !golden.Equal(mem) {
				t.Fatalf("seed %d trial %d (%+v): SDC:\n%s", seed, trial, inj, golden.Diff(mem, 8))
			}
		}
	})
}
