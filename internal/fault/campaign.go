package fault

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/span"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sensor"
)

// trialSeed derives the independent PRNG seed for one trial from the
// campaign seed (two SplitMix64 avalanches over (seed, trial)). Per-trial
// seeding is what makes the injection plan a pure function of the Config:
// trials can run in any order, on any number of workers, and replay
// individually, without consuming a shared stream.
func trialSeed(seed int64, trial int) int64 {
	return int64(rng.Mix(rng.Mix(uint64(seed)) ^ uint64(trial)))
}

// trialForker is the required capability of a Config.Sampler: deriving an
// independent per-trial latency stream (sensor.Detector,
// sensor.PhysicalDetector, and sensor.MeshDetector all implement it). A
// sampler that cannot fork is rejected at campaign start — a shared
// stream would make the plan depend on trial execution order.
type trialForker interface {
	Fork(seed int64) sensor.Sampler
}

// trialRecord is one completed trial: the plan, the classification, and
// the simulator statistics needed to merge it into a Result. It is also
// the checkpoint file's unit of progress.
type trialRecord struct {
	Trial   int            `json:"trial"`
	Inj     Injection      `json:"injection"`
	Outcome Outcome        `json:"outcome"`
	Stats   pipeline.Stats `json:"stats"`
	Err     string         `json:"error,omitempty"`
}

// engine carries the immutable per-campaign state every worker shares.
type engine struct {
	prog    *isa.Program
	cfg     Config
	seedMem func(*isa.Memory)
	golden  *isa.Memory
	maxAt   uint64
	// Exactly one of fork/mesh is set: fork derives a per-trial latency
	// stream for perfect-mesh campaigns, mesh derives per-trial
	// adversarial detection streams.
	fork func(int64) sensor.Sampler
	mesh *sensor.MeshDetector
}

// warnf reports a non-fatal campaign condition (today: a corrupt
// checkpoint being discarded). The structured logger is the primary
// sink; the legacy printf hook still fires when set, so existing
// callers keep their warnings. Nothing set discards.
func (e *engine) warnf(format string, args ...any) {
	if e.cfg.Warnf != nil {
		e.cfg.Warnf(format, args...)
	}
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn(fmt.Sprintf(format, args...))
	}
}

// logTrial emits one trial's Debug record. The Enabled check is hoisted
// by the caller (debugOn) so a disabled logger costs nothing per trial.
func (e *engine) logTrial(ctx context.Context, rec *trialRecord) {
	e.cfg.Logger.LogAttrs(ctx, slog.LevelDebug, "trial complete",
		slog.String("outcome", rec.Outcome.String()),
		slog.Int("reg", int(rec.Inj.Reg)),
		slog.Uint64("at_inst", rec.Inj.AtInst),
		slog.Int("latency", rec.Inj.Latency),
		slog.Uint64("cycles", rec.Stats.Cycles),
	)
}

func (e *engine) resolveSampler() error {
	if e.cfg.Adversary != nil {
		if e.cfg.Sampler != nil {
			return fmt.Errorf("fault: Adversary and Sampler are mutually exclusive")
		}
		adv := e.cfg.Adversary
		if err := adv.validate(e.cfg.Sim); err != nil {
			return err
		}
		// The nominal mesh is whatever deployment achieves the
		// pipeline's WCDL on the paper's die; the adversary then breaks
		// it. The pipeline keeps believing the nominal bound.
		model := sensor.Model{
			Sensors:    sensor.SensorsForWCDL(e.cfg.Sim.WCDL, 1.0, 2.5),
			DieAreaMM2: 1.0,
			ClockGHz:   2.5,
		}
		det, err := sensor.NewMeshDetector(sensor.Mesh{
			Model:       model,
			DeadSensors: adv.DeadSensors,
			MissProb:    adv.MissProb,
			LateFactor:  adv.LateFactor,
		}, 0)
		if err != nil {
			return err
		}
		e.mesh = det
		return nil
	}
	if e.cfg.Sampler == nil {
		e.fork = sensor.NewDetector(e.cfg.Sim.WCDL, 0).Fork
		return nil
	}
	if f, ok := e.cfg.Sampler.(trialForker); ok {
		e.fork = f.Fork
		return nil
	}
	return fmt.Errorf("fault: sampler %T cannot fork per-trial streams; implement Fork(seed int64) sensor.Sampler", e.cfg.Sampler)
}

// plan derives trial's injection as a pure function of (cfg.Seed, trial):
// a SplitMix64 stream seeded from (Seed, trial) draws the strike points,
// and latencies come from an independently-seeded per-trial detector
// stream (fork seeds derive from Seed+1, keeping the two decorrelated).
// Perfect-mesh latencies are clamped to [1, WCDL], preserving the
// recovery argument; adversarial campaigns sample the degraded mesh
// instead — late detections included, plus burst extras and false
// positives.
func (e *engine) plan(trial int) Injection {
	s := rng.New(trialSeed(e.cfg.Seed, trial))
	inj := Injection{
		Reg:    isa.Reg(1 + s.Intn(isa.NumRegs-1)),
		Bit:    uint(s.Intn(64)),
		AtInst: uint64(s.Int63n(int64(e.maxAt))) + 1,
	}
	if e.mesh == nil {
		lat := e.fork(trialSeed(e.cfg.Seed+1, trial)).Latency()
		if lat < 1 {
			lat = 1
		}
		if w := e.cfg.Sim.WCDL; w > 0 && lat > w {
			lat = w
		}
		inj.Latency = lat
		return inj
	}
	det := e.mesh.ForkMesh(trialSeed(e.cfg.Seed+1, trial))
	d := det.Sample()
	inj.Latency, inj.Missed = d.Latency, d.Missed
	adv := e.cfg.Adversary
	if adv.BurstMax > 1 {
		// Burst size uniform in [1, BurstMax]; extras land within one
		// nominal detection window of the primary, so several strikes
		// share the pending-detection queue.
		for n := 1 + s.Intn(adv.BurstMax); n > 1; n-- {
			ds := det.Sample()
			inj.Extra = append(inj.Extra, Strike{
				Reg:     isa.Reg(1 + s.Intn(isa.NumRegs-1)),
				Bit:     uint(s.Intn(64)),
				AtInst:  inj.AtInst + uint64(s.Intn(e.cfg.Sim.WCDL+1)),
				Latency: ds.Latency,
				Missed:  ds.Missed,
			})
		}
	}
	if adv.FalsePositiveRate > 0 && s.Float64() < adv.FalsePositiveRate {
		inj.FalsePositives = append(inj.FalsePositives, FalsePositive{
			AtInst:  uint64(s.Int63n(int64(e.maxAt))) + 1,
			Latency: 1 + s.Intn(e.cfg.Sim.WCDL),
		})
	}
	return inj
}

// runTrial executes one planned injection and classifies it against the
// golden memory. ctx carries the worker's shard correlation; the trial
// index is added here so the simulator's rare-event lines name it.
func (e *engine) runTrial(ctx context.Context, trial int) *trialRecord {
	inj := e.plan(trial)
	mem, st, err := run(ctx, e.prog, e.cfg, e.seedMem, &inj)
	rec := &trialRecord{Trial: trial, Inj: inj, Stats: st}
	rec.Outcome = classify(e.golden, mem, st, err)
	if err != nil {
		rec.Err = err.Error()
	}
	return rec
}

// classify maps one injected run to its outcome. A DUEError is the
// containment path doing its job — detected but unrecoverable — and is
// kept distinct from Crash (the simulator wedging or faulting), which in
// turn outranks memory comparison.
func classify(golden, mem *isa.Memory, st pipeline.Stats, err error) Outcome {
	var due *pipeline.DUEError
	switch {
	case errors.As(err, &due):
		return DUE
	case err != nil:
		return Crash
	case !golden.Equal(mem):
		return SDC
	case st.Recoveries > 0:
		return Recovered
	}
	return Masked
}

// merge folds completed trials into a Result in trial order, so outcome
// counts, aggregate statistics, histograms, slowdown samples, and the
// failure report are identical for every worker count and for resumed
// campaigns.
func (e *engine) merge(records []*trialRecord, goldenStats pipeline.Stats) *Result {
	cfg := e.cfg
	var detLat, recLen *obs.Histogram
	if cfg.Metrics != nil {
		detLat = cfg.Metrics.Histogram("fault.detect_latency_cycles",
			obs.LinearBuckets(1, 1, 32))
		recLen = cfg.Metrics.Histogram("fault.recovery_cycles",
			obs.ExpBuckets(1, 2, 14))
	}
	res := &Result{Outcomes: map[Outcome]int{}}
	var recCycles, recRuns uint64
	for _, rec := range records {
		if rec == nil {
			continue // cancelled before this trial completed
		}
		res.CompletedTrials++
		strikes, missed := rec.Inj.CountStrikes()
		res.Strikes += strikes
		res.MissedDetections += missed
		if detLat != nil {
			detLat.Observe(uint64(rec.Inj.Latency))
		}
		res.Agg.Merge(&rec.Stats)
		res.Outcomes[rec.Outcome]++
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("fault.outcome." + rec.Outcome.String()).Inc()
		}
		switch rec.Outcome {
		case Recovered:
			recCycles += rec.Stats.RecoveryCycles
			recRuns++
			if recLen != nil {
				recLen.Observe(rec.Stats.RecoveryCycles)
			}
			if goldenStats.Cycles > 0 {
				res.SlowdownSamples = append(res.SlowdownSamples,
					float64(rec.Stats.Cycles)/float64(goldenStats.Cycles))
			}
		case SDC, Crash:
			res.Failures = append(res.Failures, TrialFailure{
				Trial: rec.Trial, Outcome: rec.Outcome, Inj: rec.Inj, Err: rec.Err,
			})
		}
		res.Recoveries += rec.Stats.Recoveries
		res.Parity += rec.Stats.ParityTrips
	}
	if recRuns > 0 {
		res.AvgRecoveryCycles = float64(recCycles) / float64(recRuns)
	}
	res.Coverage = NewProportion(res.Strikes-res.MissedDetections, res.Strikes)
	res.DUERate = NewProportion(res.Outcomes[DUE], res.CompletedTrials)
	res.SDCRate = NewProportion(res.Outcomes[SDC], res.CompletedTrials)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("fault.strikes").Add(uint64(res.Strikes))
		cfg.Metrics.Counter("fault.missed_detections").Add(uint64(res.MissedDetections))
		pipeline.FillStats(cfg.Metrics, &res.Agg)
	}
	return res
}

// Campaign injects cfg.Trials faults into prog and verifies every outcome
// against the fault-free golden memory. seedMem populates program inputs
// for both runs. See CampaignContext for the engine's semantics.
func Campaign(prog *isa.Program, cfg Config, seedMem func(*isa.Memory)) (*Result, error) {
	return CampaignContext(context.Background(), prog, cfg, seedMem)
}

// CampaignContext runs a fault-injection campaign: one golden execution,
// then cfg.Trials independently-seeded injections fanned out over a
// bounded worker pool and merged deterministically in trial order — the
// result is byte-identical for every worker count. SDC and crash trials
// land in Result.Failures until cfg.FailureBudget is exhausted, at which
// point the remaining trials are cancelled and an error is returned with
// the merged partial result. With cfg.Checkpoint set, completed trials are
// checkpointed to an atomically-rewritten JSON file and a later campaign
// with the same config resumes from that watermark; cancelling ctx also
// returns the merged partial result after a final checkpoint write.
func CampaignContext(ctx context.Context, prog *isa.Program, cfg Config, seedMem func(*isa.Memory)) (*Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 100
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	budget := cfg.FailureBudget
	if budget == 0 {
		budget = 1 // historical fail-fast default
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 64
	}

	// The golden run is often the single biggest serial phase of a
	// campaign; the span (with its nested pipeline setup) makes that
	// visible in the per-job trace.
	gctx, goldenSpan := span.Start(ctx, "fault", "golden_run")
	golden, goldenStats, err := run(gctx, prog, cfg, seedMem, nil)
	goldenSpan.SetArg("trials", cfg.Trials)
	goldenSpan.End()
	if err != nil {
		// The simulator is deterministic: a golden run that fails now will
		// fail on every retry, so the error is marked permanent.
		return nil, fmt.Errorf("%w: golden run failed: %v", ErrInvalidConfig, err)
	}
	maxAt := cfg.MaxInjectInst
	if maxAt == 0 {
		maxAt = goldenStats.Insts * 9 / 10
		if maxAt == 0 {
			maxAt = 1
		}
	}

	// Plan derivation: resolving the sampler fixes the injection plan as
	// a pure function of (seed, trial) — cheap for native samplers, a
	// pre-draw of every trial for non-forkable ones.
	planStart := time.Now()
	e := &engine{prog: prog, cfg: cfg, seedMem: seedMem, golden: golden, maxAt: maxAt}
	if err := e.resolveSampler(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	span.RecordCtx(ctx, "fault", "plan_derive", planStart, time.Now(),
		map[string]any{"trials": cfg.Trials})

	records := make([]*trialRecord, cfg.Trials)
	if cfg.Checkpoint != "" {
		// Restore covers reading the watermark file and re-deriving every
		// completed trial's injection plan for validation.
		restoreStart := time.Now()
		err := e.restore(records, goldenStats)
		span.RecordCtx(ctx, "fault", "checkpoint_restore", restoreStart, time.Now(), nil)
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) {
				return nil, err
			}
			// A corrupt file carries no usable progress and will be
			// atomically overwritten by the first save; restart fresh
			// rather than dying on bytes a torn write left behind.
			e.warnf("%v — restarting the campaign from trial 0", err)
			for i := range records {
				records[i] = nil
			}
		}
	}
	failures := 0
	for _, rec := range records {
		if rec != nil && (rec.Outcome == SDC || rec.Outcome == Crash) {
			failures++
		}
	}
	var pending []int
	if budget < 0 || failures < budget {
		for t := range records {
			if records[t] == nil {
				pending = append(pending, t)
			}
		}
	}

	log := cfg.Logger
	if log != nil {
		log.LogAttrs(ctx, slog.LevelInfo, "campaign start",
			slog.Int("trials", cfg.Trials),
			slog.Int64("seed", cfg.Seed),
			slog.Int("workers", workers),
			slog.Int("resumed", cfg.Trials-len(pending)),
			slog.Bool("adversarial", cfg.Adversary != nil),
		)
	}
	// Hoisted per-trial guard: with Debug disabled, the worker loop pays
	// one cached bool, not an Enabled call plus attr building per trial.
	debugOn := log != nil && log.Enabled(ctx, slog.LevelDebug)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan int)
	go func() {
		defer close(work)
		for _, t := range pending {
			select {
			case work <- t:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var (
		mu        sync.Mutex // guards records writes, failures, checkpoint cadence
		sinceCkpt int
		ckptErr   error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			if cfg.Progress != nil {
				cfg.Progress.Workers.Add(1)
				defer cfg.Progress.Workers.Add(-1)
			}
			wctx := olog.WithShard(runCtx, shard)
			// One span per worker covers its whole trial stream; the
			// per-trial loop runs with the tracer detached, so the hot
			// path records nothing and the ring holds per-worker phases,
			// not tens of thousands of per-trial slivers.
			sctx, shardSpan := span.Start(wctx, "fault", "shard_exec")
			loopCtx := span.Detach(sctx)
			executed := 0
			for t := range work {
				if runCtx.Err() != nil {
					break
				}
				tctx := loopCtx
				if log != nil {
					tctx = olog.WithTrial(loopCtx, t)
				}
				rec := e.runTrial(tctx, t)
				executed++
				if debugOn {
					e.logTrial(tctx, rec)
				}
				mu.Lock()
				records[t] = rec
				sinceCkpt++
				if rec.Outcome == SDC || rec.Outcome == Crash {
					failures++
					if budget > 0 && failures >= budget {
						cancel()
					}
				}
				if cfg.Checkpoint != "" && sinceCkpt >= every {
					sinceCkpt = 0
					ckptStart := time.Now()
					err := e.save(records, goldenStats)
					span.RecordCtx(sctx, "fault", "checkpoint_write", ckptStart, time.Now(),
						map[string]any{"trial": t})
					if err != nil && ckptErr == nil {
						ckptErr = err
						cancel()
					}
				}
				mu.Unlock()
			}
			shardSpan.SetArg("trials", executed)
			shardSpan.End()
		}(w)
	}
	wg.Wait()

	if cfg.Checkpoint != "" {
		ckptStart := time.Now()
		err := e.save(records, goldenStats)
		span.RecordCtx(ctx, "fault", "checkpoint_write", ckptStart, time.Now(),
			map[string]any{"final": true})
		if err != nil && ckptErr == nil {
			ckptErr = err
		}
	}

	mergeStart := time.Now()
	res := e.merge(records, goldenStats)
	span.RecordCtx(ctx, "fault", "merge", mergeStart, time.Now(),
		map[string]any{"completed": res.CompletedTrials})
	if log != nil {
		log.LogAttrs(ctx, slog.LevelInfo, "campaign complete",
			slog.Int("completed", res.CompletedTrials),
			slog.Int("trials", cfg.Trials),
			slog.Int("recovered", res.Outcomes[Recovered]),
			slog.Int("masked", res.Outcomes[Masked]),
			slog.Int("due", res.Outcomes[DUE]),
			slog.Int("failures", len(res.Failures)),
		)
	}
	switch {
	case ckptErr != nil:
		return res, fmt.Errorf("fault: checkpoint: %w", ckptErr)
	case ctx.Err() != nil:
		return res, fmt.Errorf("fault: campaign interrupted after %d/%d trials: %w",
			res.CompletedTrials, cfg.Trials, ctx.Err())
	case budget > 0 && len(res.Failures) >= budget:
		f := res.Failures[0]
		if log != nil {
			log.LogAttrs(ctx, slog.LevelWarn, "failure budget exhausted",
				slog.Int("budget", budget),
				slog.Int("failures", len(res.Failures)),
				slog.Int("first_trial", f.Trial),
				slog.String("first_outcome", f.Outcome.String()),
			)
		}
		return res, fmt.Errorf("fault: failure budget (%d) exhausted with %d failure(s); first: trial %d %s (%+v)%s",
			budget, len(res.Failures), f.Trial, f.Outcome, f.Inj, errSuffix(f.Err))
	}
	return res, nil
}

func errSuffix(s string) string {
	if s == "" {
		return ""
	}
	return ": " + s
}

// Replay re-executes one recorded injection — from Result.Failures or a
// checkpoint file — outside any campaign: golden run, injected run,
// classification. On Crash the simulator's error is returned alongside the
// outcome; any golden-run failure is an error with outcome Crash.
func Replay(prog *isa.Program, cfg Config, seedMem func(*isa.Memory), inj Injection) (Outcome, pipeline.Stats, error) {
	ctx := context.Background()
	golden, _, err := run(ctx, prog, cfg, seedMem, nil)
	if err != nil {
		return Crash, pipeline.Stats{}, fmt.Errorf("fault: golden run failed: %w", err)
	}
	mem, st, err := run(ctx, prog, cfg, seedMem, &inj)
	out := classify(golden, mem, st, err)
	if out == DUE {
		err = nil // the containment abort is the classification, not a failure
	}
	return out, st, err
}
