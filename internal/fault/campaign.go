package fault

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/span"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sensor"
)

// trialSeed derives the independent PRNG seed for one trial from the
// campaign seed (two SplitMix64 avalanches over (seed, trial)). Per-trial
// seeding is what makes the injection plan a pure function of the Config:
// trials can run in any order, on any number of workers, and replay
// individually, without consuming a shared stream.
func trialSeed(seed int64, trial int) int64 {
	return int64(rng.Mix(rng.Mix(uint64(seed)) ^ uint64(trial)))
}

// trialForker is the required capability of a Config.Sampler: deriving an
// independent per-trial latency stream (sensor.Detector,
// sensor.PhysicalDetector, and sensor.MeshDetector all implement it). A
// sampler that cannot fork is rejected at campaign start — a shared
// stream would make the plan depend on trial execution order.
type trialForker interface {
	Fork(seed int64) sensor.Sampler
}

// reseeder is the optional fast-path capability of a forked sampler:
// resetting its stream in place to what Fork(seed) would produce. The
// planner keeps one forked sampler per worker and reseeds it per trial,
// eliminating the per-trial fork allocations; samplers without Reseed
// fall back to a fork per trial with identical draws.
type reseeder interface {
	Reseed(seed int64)
}

// TrialRecord is one completed trial: the plan, the classification, and
// the simulator statistics needed to merge it into a Result. It is the
// checkpoint file's unit of progress and the payload of a distributed
// campaign's ShardResult — a record is valid wherever it was executed,
// because the injection plan is a pure function of (Seed, trial) and the
// simulator is deterministic.
type TrialRecord struct {
	Trial   int            `json:"trial"`
	Inj     Injection      `json:"injection"`
	Outcome Outcome        `json:"outcome"`
	Stats   pipeline.Stats `json:"stats"`
	Err     string         `json:"error,omitempty"`
}

// planScratch is one worker's reusable plan-derivation state: the cached
// per-trial sampler forks the planner reseeds instead of reallocating.
// The zero value is ready to use.
type planScratch struct {
	sampler sensor.Sampler
	mesh    *sensor.MeshDetector
}

// trialRunner is one worker's reusable execution state: a simulator
// forked from the golden snapshot and Reset between trials, plus the
// plan and event-schedule scratch. Steady-state, running a trial
// allocates only its TrialRecord.
type trialRunner struct {
	sim     *pipeline.Sim
	scratch planScratch
	evs     []injEvent
}

// engine carries the immutable per-campaign state every worker shares.
type engine struct {
	prog    *isa.Program
	cfg     Config
	seedMem func(*isa.Memory)
	golden  *isa.Memory
	maxAt   uint64
	// gs is the golden-state snapshot trial simulators fork from; nil in
	// unit tests that only exercise plan derivation. ckptLo/ckptHi bound
	// the checkpoint storage masked out of trial classification.
	gs             *pipeline.GoldenState
	ckptLo, ckptHi uint64
	// Exactly one of fork/mesh is set: fork derives a per-trial latency
	// stream for perfect-mesh campaigns, mesh derives per-trial
	// adversarial detection streams.
	fork func(int64) sensor.Sampler
	mesh *sensor.MeshDetector
}

// warnf reports a non-fatal campaign condition (today: a corrupt
// checkpoint being discarded). The structured logger is the primary
// sink; the legacy printf hook still fires when set, so existing
// callers keep their warnings. Nothing set discards.
func (e *engine) warnf(format string, args ...any) {
	if e.cfg.Warnf != nil {
		e.cfg.Warnf(format, args...)
	}
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn(fmt.Sprintf(format, args...))
	}
}

// logTrial emits one trial's Debug record. The Enabled check is hoisted
// by the caller (debugOn) so a disabled logger costs nothing per trial.
func (e *engine) logTrial(ctx context.Context, rec *TrialRecord) {
	e.cfg.Logger.LogAttrs(ctx, slog.LevelDebug, "trial complete",
		slog.String("outcome", rec.Outcome.String()),
		slog.Int("reg", int(rec.Inj.Reg)),
		slog.Uint64("at_inst", rec.Inj.AtInst),
		slog.Int("latency", rec.Inj.Latency),
		slog.Uint64("cycles", rec.Stats.Cycles),
	)
}

func (e *engine) resolveSampler() error {
	if e.cfg.Adversary != nil {
		if e.cfg.Sampler != nil {
			return fmt.Errorf("fault: Adversary and Sampler are mutually exclusive")
		}
		adv := e.cfg.Adversary
		if err := adv.validate(e.cfg.Sim); err != nil {
			return err
		}
		// The nominal mesh is whatever deployment achieves the
		// pipeline's WCDL on the paper's die; the adversary then breaks
		// it. The pipeline keeps believing the nominal bound.
		model := sensor.Model{
			Sensors:    sensor.SensorsForWCDL(e.cfg.Sim.WCDL, 1.0, 2.5),
			DieAreaMM2: 1.0,
			ClockGHz:   2.5,
		}
		det, err := sensor.NewMeshDetector(sensor.Mesh{
			Model:       model,
			DeadSensors: adv.DeadSensors,
			MissProb:    adv.MissProb,
			LateFactor:  adv.LateFactor,
		}, 0)
		if err != nil {
			return err
		}
		e.mesh = det
		return nil
	}
	if e.cfg.Sampler == nil {
		e.fork = sensor.NewDetector(e.cfg.Sim.WCDL, 0).Fork
		return nil
	}
	if f, ok := e.cfg.Sampler.(trialForker); ok {
		e.fork = f.Fork
		return nil
	}
	return fmt.Errorf("fault: sampler %T cannot fork per-trial streams; implement Fork(seed int64) sensor.Sampler", e.cfg.Sampler)
}

// latency draws one per-trial detection latency from the campaign's
// sampler, reusing sc's cached fork when the sampler supports in-place
// reseeding. The draws are identical either way.
func (e *engine) latency(sc *planScratch, seed int64) int {
	if sc.sampler != nil {
		if r, ok := sc.sampler.(reseeder); ok {
			r.Reseed(seed)
			return sc.sampler.Latency()
		}
		return e.fork(seed).Latency()
	}
	s := e.fork(seed)
	sc.sampler = s
	return s.Latency()
}

// meshFor returns the per-trial adversarial detector, reusing sc's
// cached fork via in-place reseeding.
func (e *engine) meshFor(sc *planScratch, seed int64) *sensor.MeshDetector {
	if sc.mesh == nil {
		sc.mesh = e.mesh.ForkMesh(seed)
	} else {
		sc.mesh.Reseed(seed)
	}
	return sc.mesh
}

// plan derives trial's injection with fresh scratch. Hot paths (workers,
// checkpoint restore) use planWith with a reused scratch; the derived
// plan is identical.
func (e *engine) plan(trial int) Injection {
	return e.planWith(trial, &planScratch{})
}

// planWith derives trial's injection as a pure function of (cfg.Seed,
// trial): a SplitMix64 stream seeded from (Seed, trial) draws the strike
// points, and latencies come from an independently-seeded per-trial
// detector stream (fork seeds derive from Seed+1, keeping the two
// decorrelated). Perfect-mesh latencies are clamped to [1, WCDL],
// preserving the recovery argument; adversarial campaigns sample the
// degraded mesh instead — late detections included, plus burst extras
// and false positives.
func (e *engine) planWith(trial int, sc *planScratch) Injection {
	var s rng.Stream
	s.Reseed(trialSeed(e.cfg.Seed, trial))
	inj := Injection{
		Reg:    isa.Reg(1 + s.Intn(isa.NumRegs-1)),
		Bit:    uint(s.Intn(64)),
		AtInst: uint64(s.Int63n(int64(e.maxAt))) + 1,
	}
	if e.mesh == nil {
		lat := e.latency(sc, trialSeed(e.cfg.Seed+1, trial))
		if lat < 1 {
			lat = 1
		}
		if w := e.cfg.Sim.WCDL; w > 0 && lat > w {
			lat = w
		}
		inj.Latency = lat
		return inj
	}
	det := e.meshFor(sc, trialSeed(e.cfg.Seed+1, trial))
	d := det.Sample()
	inj.Latency, inj.Missed = d.Latency, d.Missed
	adv := e.cfg.Adversary
	if adv.BurstMax > 1 {
		// Burst size uniform in [1, BurstMax]; extras land within one
		// nominal detection window of the primary, so several strikes
		// share the pending-detection queue.
		for n := 1 + s.Intn(adv.BurstMax); n > 1; n-- {
			ds := det.Sample()
			inj.Extra = append(inj.Extra, Strike{
				Reg:     isa.Reg(1 + s.Intn(isa.NumRegs-1)),
				Bit:     uint(s.Intn(64)),
				AtInst:  inj.AtInst + uint64(s.Intn(e.cfg.Sim.WCDL+1)),
				Latency: ds.Latency,
				Missed:  ds.Missed,
			})
		}
	}
	if adv.FalsePositiveRate > 0 && s.Float64() < adv.FalsePositiveRate {
		inj.FalsePositives = append(inj.FalsePositives, FalsePositive{
			AtInst:  uint64(s.Int63n(int64(e.maxAt))) + 1,
			Latency: 1 + s.Intn(e.cfg.Sim.WCDL),
		})
	}
	return inj
}

// exec runs one injection on the runner's simulator, Reset from the
// golden snapshot, and reports whether the masked output matches the
// golden image. The classification comparison runs in place
// (isa.Memory.EqualMasked over the drained trial memory) — no clone, no
// sorted snapshot — so a steady-state trial performs no comparison
// allocations at all.
func (e *engine) exec(ctx context.Context, r *trialRunner, inj *Injection) (st pipeline.Stats, equal bool, err error) {
	s := r.sim
	e.gs.Reset(s)
	if e.cfg.Logger != nil {
		s.AttachLogger(ctx, e.cfg.Logger)
	}
	r.evs = inj.appendEvents(r.evs[:0])
	evs := r.evs
	next := 0
	for !s.Halted() {
		for next < len(evs) && s.Stats.Insts >= evs[next].atInst {
			ev := &evs[next]
			next++
			var err error
			if ev.fp {
				err = s.InjectFalseDetection(ev.fpLat)
			} else {
				err = s.InjectBitFlip(ev.strike.Reg, ev.strike.Bit, ev.strike.Latency)
			}
			if err != nil {
				return s.Stats, false, err
			}
		}
		if err := s.Step(); err != nil {
			return s.Stats, false, err
		}
	}
	if e.cfg.Progress != nil {
		e.cfg.Progress.Runs.Add(1)
	}
	out := s.DrainOutput()
	equal = out.EqualMasked(e.golden, e.ckptLo, e.ckptHi, isa.StackBase, isa.StackLimit)
	return s.Stats, equal, nil
}

// runTrial executes one planned injection on the runner and classifies
// it into rec — caller-provided so workers fill a preallocated record
// slab instead of heap-allocating per trial. ctx carries the worker's
// shard correlation; the trial index is added by the worker loop so the
// simulator's rare-event lines name it.
func (e *engine) runTrial(ctx context.Context, r *trialRunner, trial int, rec *TrialRecord) {
	*rec = TrialRecord{Trial: trial, Inj: e.planWith(trial, &r.scratch)}
	st, equal, err := e.exec(ctx, r, &rec.Inj)
	rec.Stats = st
	rec.Outcome = classifyResult(equal, st, err)
	if err != nil {
		rec.Err = err.Error()
	}
}

// classifyResult maps one injected run to its outcome. A DUEError is the
// containment path doing its job — detected but unrecoverable — and is
// kept distinct from Crash (the simulator wedging or faulting), which in
// turn outranks memory comparison. The nil-error fast path matters: the
// errors.As target escapes, and the overwhelmingly common error-free
// trial must not pay an allocation for it.
func classifyResult(equal bool, st pipeline.Stats, err error) Outcome {
	if err != nil {
		var due *pipeline.DUEError
		if errors.As(err, &due) {
			return DUE
		}
		return Crash
	}
	if !equal {
		return SDC
	}
	if st.Recoveries > 0 {
		return Recovered
	}
	return Masked
}

// classify is classifyResult over explicit memory images, for callers
// holding a full trial image (the serial reference path).
func classify(golden, mem *isa.Memory, st pipeline.Stats, err error) Outcome {
	equal := err == nil && golden.Equal(mem)
	return classifyResult(equal, st, err)
}

// merge folds completed trials into a Result in trial order, so outcome
// counts, aggregate statistics, histograms, slowdown samples, and the
// failure report are identical for every worker count and for resumed
// campaigns.
func (e *engine) merge(records []*TrialRecord, goldenStats pipeline.Stats) *Result {
	cfg := e.cfg
	var detLat, recLen *obs.Histogram
	if cfg.Metrics != nil {
		detLat = cfg.Metrics.Histogram("fault.detect_latency_cycles",
			obs.LinearBuckets(1, 1, 32))
		recLen = cfg.Metrics.Histogram("fault.recovery_cycles",
			obs.ExpBuckets(1, 2, 14))
	}
	res := &Result{Outcomes: map[Outcome]int{}}
	recovered := 0
	for _, rec := range records {
		if rec != nil && rec.Outcome == Recovered {
			recovered++
		}
	}
	if recovered > 0 && goldenStats.Cycles > 0 {
		res.SlowdownSamples = make([]float64, 0, recovered)
	}
	var recCycles, recRuns uint64
	for _, rec := range records {
		if rec == nil {
			continue // cancelled before this trial completed
		}
		res.CompletedTrials++
		strikes, missed := rec.Inj.CountStrikes()
		res.Strikes += strikes
		res.MissedDetections += missed
		if detLat != nil {
			detLat.Observe(uint64(rec.Inj.Latency))
		}
		res.Agg.Merge(&rec.Stats)
		res.Outcomes[rec.Outcome]++
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("fault.outcome." + rec.Outcome.String()).Inc()
		}
		switch rec.Outcome {
		case Recovered:
			recCycles += rec.Stats.RecoveryCycles
			recRuns++
			if recLen != nil {
				recLen.Observe(rec.Stats.RecoveryCycles)
			}
			if goldenStats.Cycles > 0 {
				res.SlowdownSamples = append(res.SlowdownSamples,
					float64(rec.Stats.Cycles)/float64(goldenStats.Cycles))
			}
		case SDC, Crash:
			res.Failures = append(res.Failures, TrialFailure{
				Trial: rec.Trial, Outcome: rec.Outcome, Inj: rec.Inj, Err: rec.Err,
			})
		}
		res.Recoveries += rec.Stats.Recoveries
		res.Parity += rec.Stats.ParityTrips
	}
	if recRuns > 0 {
		res.AvgRecoveryCycles = float64(recCycles) / float64(recRuns)
	}
	res.Coverage = NewProportion(res.Strikes-res.MissedDetections, res.Strikes)
	res.DUERate = NewProportion(res.Outcomes[DUE], res.CompletedTrials)
	res.SDCRate = NewProportion(res.Outcomes[SDC], res.CompletedTrials)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("fault.strikes").Add(uint64(res.Strikes))
		cfg.Metrics.Counter("fault.missed_detections").Add(uint64(res.MissedDetections))
		pipeline.FillStats(cfg.Metrics, &res.Agg)
	}
	return res
}

// Campaign injects cfg.Trials faults into prog and verifies every outcome
// against the fault-free golden memory. seedMem populates program inputs
// for both runs. See CampaignContext for the engine's semantics.
func Campaign(prog *isa.Program, cfg Config, seedMem func(*isa.Memory)) (*Result, error) {
	return CampaignContext(context.Background(), prog, cfg, seedMem)
}

// CampaignContext runs a fault-injection campaign: one golden execution,
// then cfg.Trials independently-seeded injections fanned out over a
// bounded worker pool and merged deterministically in trial order — the
// result is byte-identical for every worker count. SDC and crash trials
// land in Result.Failures until cfg.FailureBudget is exhausted, at which
// point the remaining trials are cancelled and an error is returned with
// the merged partial result. With cfg.Checkpoint set, completed trials are
// checkpointed to an atomically-rewritten JSON file and a later campaign
// with the same config resumes from that watermark; cancelling ctx also
// returns the merged partial result after a final checkpoint write.
//
// CampaignContext is Prepare followed by Run; callers that want to
// measure or schedule the trial phase separately from the serial setup
// (compilation, golden run, worker priming) use the two-step API.
func CampaignContext(ctx context.Context, prog *isa.Program, cfg Config, seedMem func(*isa.Memory)) (*Result, error) {
	p, err := Prepare(ctx, prog, cfg, seedMem)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// Prepared is a campaign with its serial phases complete: the golden run
// executed and snapshotted, the injection plan fixed, and one primed
// simulator forked per worker. Run executes the trials.
type Prepared struct {
	e           *engine
	runners     []*trialRunner
	goldenStats pipeline.Stats
	ran         bool
	// mu serializes use of the runners: Run holds it for the campaign's
	// duration, and each RunRange (the distributed shard-execution path)
	// holds it per shard — the primed simulators are exclusive state.
	mu sync.Mutex
}

// Prepare runs a campaign's serial phases — golden execution (captured
// as a pipeline.GoldenState), plan derivation, and per-worker simulator
// forking — and returns the campaign ready to Run. Splitting the phases
// lets cmd/bench meter the trial loop alone and lets services overlap
// setup with queueing.
func Prepare(ctx context.Context, prog *isa.Program, cfg Config, seedMem func(*isa.Memory)) (*Prepared, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 100
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	// The golden run is often the single biggest serial phase of a
	// campaign; the span (with its nested pipeline setup) makes that
	// visible in the per-job trace. Any golden failure is permanent: the
	// simulator is deterministic, so a retry fails identically.
	gctx, goldenSpan := span.Start(ctx, "fault", "golden_run")
	gsim, err := pipeline.NewContext(gctx, prog, cfg.Sim)
	if err != nil {
		goldenSpan.End()
		return nil, fmt.Errorf("%w: golden run failed: %v", ErrInvalidConfig, err)
	}
	if cfg.Progress != nil {
		gsim.AttachProgress(cfg.Progress)
	}
	if cfg.Logger != nil {
		gsim.AttachLogger(gctx, cfg.Logger)
	}
	if seedMem != nil {
		seedMem(gsim.Mem)
	}
	gs, err := pipeline.CaptureGolden(gsim)
	goldenSpan.SetArg("trials", cfg.Trials)
	goldenSpan.End()
	if err != nil {
		return nil, fmt.Errorf("%w: golden run failed: %v", ErrInvalidConfig, err)
	}
	if cfg.Progress != nil {
		cfg.Progress.Runs.Add(1)
	}
	goldenStats := gs.Stats()
	maxAt := cfg.MaxInjectInst
	if maxAt == 0 {
		maxAt = goldenStats.Insts * 9 / 10
		if maxAt == 0 {
			maxAt = 1
		}
	}

	// Plan derivation: resolving the sampler fixes the injection plan as
	// a pure function of (seed, trial) — cheap for native samplers, a
	// pre-draw of every trial for non-forkable ones.
	planStart := time.Now()
	e := &engine{
		prog: prog, cfg: cfg, seedMem: seedMem, gs: gs,
		golden: mask(gs.Output()), maxAt: maxAt,
		ckptLo: prog.CkptBase,
		ckptHi: prog.CkptBase + isa.NumRegs*isa.NumColors*8,
	}
	if err := e.resolveSampler(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	span.RecordCtx(ctx, "fault", "plan_derive", planStart, time.Now(),
		map[string]any{"trials": cfg.Trials})

	// Fork one primed simulator per worker now, so the trial phase pays
	// only for trials: each worker's simulator is Reset — never rebuilt —
	// between trials.
	forkStart := time.Now()
	runners := make([]*trialRunner, workers)
	for i := range runners {
		sim, err := gs.Fork()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		if cfg.Progress != nil {
			sim.AttachProgress(cfg.Progress)
		}
		runners[i] = &trialRunner{sim: sim}
	}
	span.RecordCtx(ctx, "fault", "worker_fork", forkStart, time.Now(),
		map[string]any{"workers": workers})

	// Trials start from the warmed snapshot, so the slowdown baseline
	// (and the checkpoint fingerprint's golden cycle count) must be the
	// warm-start golden run, not the cold capture run — otherwise every
	// recovered trial would report a slowdown below 1. The warm run
	// executes on runner 0's simulator (Reset re-primes it before its
	// first trial) and doubles as a determinism self-check on the forked
	// state: its masked output must match the cold golden image.
	warmStart := time.Now()
	warmStats, err := runners[0].sim.Run()
	if err != nil {
		return nil, fmt.Errorf("%w: warm golden run failed: %v", ErrInvalidConfig, err)
	}
	if warmStats.Insts != goldenStats.Insts ||
		!runners[0].sim.DrainOutput().EqualMasked(e.golden, e.ckptLo, e.ckptHi, isa.StackBase, isa.StackLimit) {
		return nil, fmt.Errorf("%w: warm golden run diverged from the cold golden run", ErrInvalidConfig)
	}
	if cfg.Progress != nil {
		cfg.Progress.Runs.Add(1)
	}
	goldenStats.Cycles = warmStats.Cycles
	span.RecordCtx(ctx, "fault", "warm_golden_run", warmStart, time.Now(),
		map[string]any{"cycles": warmStats.Cycles})

	return &Prepared{e: e, runners: runners, goldenStats: goldenStats}, nil
}

// GoldenStats returns the golden run's simulator statistics.
func (p *Prepared) GoldenStats() pipeline.Stats { return p.goldenStats }

// trialRange is one worker lease: the contiguous trial indices
// [lo, hi) a worker executes from a single dispatch.
type trialRange struct{ lo, hi int }

// Run executes the prepared campaign's trials and merges the result; see
// CampaignContext for the semantics. Run may be called once.
func (p *Prepared) Run(ctx context.Context) (*Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ran {
		return nil, fmt.Errorf("fault: Prepared.Run called twice")
	}
	p.ran = true
	e := p.e
	cfg := e.cfg
	goldenStats := p.goldenStats
	workers := len(p.runners)
	budget := cfg.FailureBudget
	if budget == 0 {
		budget = 1 // historical fail-fast default
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 64
	}

	// records holds pointers (restore fills holes with checkpoint
	// records); fresh trials are filled into the slab so the steady-state
	// trial loop performs zero record allocations.
	records := make([]*TrialRecord, cfg.Trials)
	slab := make([]TrialRecord, cfg.Trials)
	if cfg.Checkpoint != "" {
		// Restore covers reading the watermark file and re-deriving every
		// completed trial's injection plan for validation.
		restoreStart := time.Now()
		err := e.restore(records, goldenStats)
		span.RecordCtx(ctx, "fault", "checkpoint_restore", restoreStart, time.Now(), nil)
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) {
				return nil, err
			}
			// A corrupt file carries no usable progress and will be
			// atomically overwritten by the first save; restart fresh
			// rather than dying on bytes a torn write left behind.
			e.warnf("%v — restarting the campaign from trial 0", err)
			for i := range records {
				records[i] = nil
			}
		}
	}
	failures := 0
	for _, rec := range records {
		if rec != nil && (rec.Outcome == SDC || rec.Outcome == Crash) {
			failures++
		}
	}
	pending := make([]int, 0, cfg.Trials)
	if budget < 0 || failures < budget {
		for t := range records {
			if records[t] == nil {
				pending = append(pending, t)
			}
		}
	}

	// Lease size: how many consecutive trials one dispatch hands a
	// worker. The default splits the pending work into a few leases per
	// worker so the tail stays balanced, capped so checkpoint cadence
	// and budget cancellation stay responsive.
	lease := cfg.Lease
	if lease <= 0 {
		lease = cfg.Trials / (workers * 4)
		if lease > 64 {
			lease = 64
		}
	}
	if lease < 1 {
		lease = 1
	}

	log := cfg.Logger
	if log != nil {
		log.LogAttrs(ctx, slog.LevelInfo, "campaign start",
			slog.Int("trials", cfg.Trials),
			slog.Int64("seed", cfg.Seed),
			slog.Int("workers", workers),
			slog.Int("lease", lease),
			slog.Int("resumed", cfg.Trials-len(pending)),
			slog.Bool("adversarial", cfg.Adversary != nil),
		)
	}
	// Hoisted per-trial guard: with Debug disabled, the worker loop pays
	// one cached bool, not an Enabled call plus attr building per trial.
	debugOn := log != nil && log.Enabled(ctx, slog.LevelDebug)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Dispatch leases of contiguous pending trials. Resumed campaigns
	// leave holes in the pending list; a lease never spans one, so every
	// leased range is fully pending.
	work := make(chan trialRange, workers)
	go func() {
		defer close(work)
		for i := 0; i < len(pending); {
			j := i + 1
			for j < len(pending) && j-i < lease && pending[j] == pending[j-1]+1 {
				j++
			}
			select {
			case work <- trialRange{lo: pending[i], hi: pending[j-1] + 1}:
			case <-runCtx.Done():
				return
			}
			i = j
		}
	}()

	var (
		mu        sync.Mutex // guards records writes, failures, checkpoint cadence
		sinceCkpt int
		ckptErr   error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int, runner *trialRunner) {
			defer wg.Done()
			if cfg.Progress != nil {
				cfg.Progress.Workers.Add(1)
				defer cfg.Progress.Workers.Add(-1)
			}
			wctx := olog.WithShard(runCtx, shard)
			// One span per worker covers its whole trial stream; the
			// per-trial loop runs with the tracer detached, so the hot
			// path records nothing and the ring holds per-worker phases,
			// not tens of thousands of per-trial slivers.
			sctx, shardSpan := span.Start(wctx, "fault", "shard_exec")
			loopCtx := span.Detach(sctx)
			executed := 0
			for tr := range work {
				for t := tr.lo; t < tr.hi && runCtx.Err() == nil; t++ {
					tctx := loopCtx
					if log != nil {
						tctx = olog.WithTrial(loopCtx, t)
					}
					rec := &slab[t]
					e.runTrial(tctx, runner, t, rec)
					executed++
					if debugOn {
						e.logTrial(tctx, rec)
					}
					mu.Lock()
					records[t] = rec
					sinceCkpt++
					if rec.Outcome == SDC || rec.Outcome == Crash {
						failures++
						if budget > 0 && failures >= budget {
							cancel()
						}
					}
					if cfg.Checkpoint != "" && sinceCkpt >= every {
						sinceCkpt = 0
						ckptStart := time.Now()
						err := e.save(records, goldenStats)
						span.RecordCtx(sctx, "fault", "checkpoint_write", ckptStart, time.Now(),
							map[string]any{"trial": t})
						if err != nil && ckptErr == nil {
							ckptErr = err
							cancel()
						}
					}
					mu.Unlock()
				}
			}
			shardSpan.SetArg("trials", executed)
			shardSpan.End()
		}(w, p.runners[w])
	}
	wg.Wait()

	if cfg.Checkpoint != "" {
		ckptStart := time.Now()
		err := e.save(records, goldenStats)
		span.RecordCtx(ctx, "fault", "checkpoint_write", ckptStart, time.Now(),
			map[string]any{"final": true})
		if err != nil && ckptErr == nil {
			ckptErr = err
		}
	}

	mergeStart := time.Now()
	res := e.merge(records, goldenStats)
	span.RecordCtx(ctx, "fault", "merge", mergeStart, time.Now(),
		map[string]any{"completed": res.CompletedTrials})
	if log != nil {
		log.LogAttrs(ctx, slog.LevelInfo, "campaign complete",
			slog.Int("completed", res.CompletedTrials),
			slog.Int("trials", cfg.Trials),
			slog.Int("recovered", res.Outcomes[Recovered]),
			slog.Int("masked", res.Outcomes[Masked]),
			slog.Int("due", res.Outcomes[DUE]),
			slog.Int("failures", len(res.Failures)),
		)
	}
	switch {
	case ckptErr != nil:
		return res, fmt.Errorf("fault: checkpoint: %w", ckptErr)
	case ctx.Err() != nil:
		return res, fmt.Errorf("fault: campaign interrupted after %d/%d trials: %w",
			res.CompletedTrials, cfg.Trials, ctx.Err())
	case budget > 0 && len(res.Failures) >= budget:
		f := res.Failures[0]
		if log != nil {
			log.LogAttrs(ctx, slog.LevelWarn, "failure budget exhausted",
				slog.Int("budget", budget),
				slog.Int("failures", len(res.Failures)),
				slog.Int("first_trial", f.Trial),
				slog.String("first_outcome", f.Outcome.String()),
			)
		}
		return res, fmt.Errorf("fault: failure budget (%d) exhausted with %d failure(s); first: trial %d %s (%+v)%s",
			budget, len(res.Failures), f.Trial, f.Outcome, f.Inj, errSuffix(f.Err))
	}
	return res, nil
}

func errSuffix(s string) string {
	if s == "" {
		return ""
	}
	return ": " + s
}

// Replay re-executes one recorded injection — from Result.Failures or a
// checkpoint file — outside any campaign: golden run, injected run,
// classification. It runs the injection through the same GoldenState
// fork-and-Reset trial path campaign workers use, so a replayed trial is
// byte-identical to its campaign record regardless of the campaign's
// worker count or lease batching. On Crash the simulator's error is
// returned alongside the outcome; any golden-run failure is an error
// with outcome Crash.
func Replay(prog *isa.Program, cfg Config, seedMem func(*isa.Memory), inj Injection) (Outcome, pipeline.Stats, error) {
	ctx := context.Background()
	gsim, err := pipeline.NewContext(ctx, prog, cfg.Sim)
	if err != nil {
		return Crash, pipeline.Stats{}, fmt.Errorf("fault: golden run failed: %w", err)
	}
	if seedMem != nil {
		seedMem(gsim.Mem)
	}
	gs, err := pipeline.CaptureGolden(gsim)
	if err != nil {
		return Crash, pipeline.Stats{}, fmt.Errorf("fault: golden run failed: %w", err)
	}
	e := &engine{
		prog: prog, cfg: cfg, seedMem: seedMem, gs: gs,
		golden: mask(gs.Output()),
		ckptLo: prog.CkptBase,
		ckptHi: prog.CkptBase + isa.NumRegs*isa.NumColors*8,
	}
	sim, err := gs.Fork()
	if err != nil {
		return Crash, pipeline.Stats{}, fmt.Errorf("fault: golden run failed: %w", err)
	}
	if cfg.Progress != nil {
		sim.AttachProgress(cfg.Progress)
	}
	st, equal, err := e.exec(ctx, &trialRunner{sim: sim}, &inj)
	out := classifyResult(equal, st, err)
	if out == DUE {
		err = nil // the containment abort is the classification, not a failure
	}
	return out, st, err
}
