package fault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// checkpointEngine builds a minimal engine around a checkpoint path —
// enough to exercise save/restore without compiling a workload.
func checkpointEngine(t *testing.T, ckpt string, seed int64, trials int) *engine {
	t.Helper()
	e := &engine{
		cfg:   Config{Seed: seed, Trials: trials, Sim: pipeline.TurnpikeConfig(4, 10), Checkpoint: ckpt},
		maxAt: 1000,
	}
	if err := e.resolveSampler(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCheckpointCorruptTyped pins the loader's error taxonomy: bytes that
// are not a syntactically valid checkpoint — truncation, garbage, records
// contradicting the deterministic plan — wrap ErrCheckpointCorrupt, while
// a well-formed file from a different campaign wraps ErrInvalidConfig
// (its progress must not be clobbered by a fresh restart).
func TestCheckpointCorruptTyped(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ck.json")
	e := checkpointEngine(t, ckpt, 11, 16)
	gs := pipeline.Stats{Cycles: 123, Insts: 456}

	records := make([]*TrialRecord, 16)
	for i := 0; i < 5; i++ {
		records[i] = &TrialRecord{Trial: i, Inj: e.plan(i), Outcome: Masked}
	}
	if err := e.save(records, gs); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	tampered := strings.Replace(string(valid), `"bit":`, `"bit":1`, 1)
	if tampered == string(valid) {
		t.Fatal("tamper substitution found nothing to rewrite")
	}
	outOfRange := strings.Replace(string(valid), `"trial":4`, `"trial":40`, 1)
	corrupt := map[string][]byte{
		"truncated":      valid[:len(valid)/2],
		"empty":          {},
		"garbage":        []byte("not a checkpoint at all"),
		"half-object":    []byte(`{"version":2,"seed":11,`),
		"tampered-plan":  []byte(tampered),
		"trial-oo-range": []byte(outOfRange),
	}
	for name, b := range corrupt {
		if err := os.WriteFile(ckpt, b, 0o644); err != nil {
			t.Fatal(err)
		}
		got := e.restore(make([]*TrialRecord, 16), gs)
		if !errors.Is(got, ErrCheckpointCorrupt) {
			t.Errorf("%s: want ErrCheckpointCorrupt, got %v", name, got)
		}
	}

	// Same bytes, different campaign fingerprint: a hard mismatch, never
	// "corrupt" — restarting fresh would destroy another campaign's work.
	if err := os.WriteFile(ckpt, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	other := checkpointEngine(t, ckpt, 12, 16)
	got := other.restore(make([]*TrialRecord, 16), gs)
	if !errors.Is(got, ErrInvalidConfig) || errors.Is(got, ErrCheckpointCorrupt) {
		t.Fatalf("fingerprint mismatch: want ErrInvalidConfig only, got %v", got)
	}
}

// TestCorruptCheckpointRestartsFresh is the operator-facing contract: a
// campaign pointed at a mangled checkpoint file warns, restarts from
// trial 0, and finishes with a result identical to a never-checkpointed
// run — it does not die on a raw unmarshal error.
func TestCorruptCheckpointRestartsFresh(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	base := Config{Trials: 30, Seed: 9, Sim: pipeline.TurnpikeConfig(4, 10)}

	want, err := Campaign(prog, base, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "mangled.json")
	if err := os.WriteFile(ckpt, []byte(`{"version":2,"seed":9,"done":[{"tr`), 0o644); err != nil {
		t.Fatal(err)
	}
	var warns []string
	cfg := base
	cfg.Checkpoint = ckpt
	cfg.Warnf = func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}
	got, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatalf("campaign over a corrupt checkpoint must restart fresh, got %v", err)
	}
	if got.CompletedTrials != base.Trials {
		t.Fatalf("completed %d/%d trials", got.CompletedTrials, base.Trials)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh restart diverged from a never-checkpointed run:\n%+v\nvs\n%+v", got, want)
	}
	if len(warns) == 0 || !strings.Contains(warns[0], "checkpoint corrupt") {
		t.Fatalf("no corruption warning surfaced; warns=%q", warns)
	}
}

// FuzzCheckpointRestore feeds arbitrary bytes to the checkpoint loader.
// The property: restore never panics and never surfaces a raw decoding
// error — every failure is typed as ErrCheckpointCorrupt (safe to discard)
// or ErrInvalidConfig (a different campaign's file).
func FuzzCheckpointRestore(f *testing.F) {
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.json")
	e := &engine{cfg: Config{Seed: 11, Trials: 8, Sim: pipeline.TurnpikeConfig(4, 10), Checkpoint: seedPath}, maxAt: 1000}
	if err := e.resolveSampler(); err != nil {
		f.Fatal(err)
	}
	gs := pipeline.Stats{Cycles: 123, Insts: 456}
	records := make([]*TrialRecord, 8)
	for i := 0; i < 3; i++ {
		records[i] = &TrialRecord{Trial: i, Inj: e.plan(i), Outcome: Masked}
	}
	if err := e.save(records, gs); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte("{"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, b []byte) {
		ckpt := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(ckpt, b, 0o644); err != nil {
			t.Fatal(err)
		}
		fe := &engine{cfg: Config{Seed: 11, Trials: 8, Sim: pipeline.TurnpikeConfig(4, 10), Checkpoint: ckpt}, maxAt: 1000}
		if err := fe.resolveSampler(); err != nil {
			t.Fatal(err)
		}
		err := fe.restore(make([]*TrialRecord, 8), gs)
		if err != nil && !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("raw error surfaced from mangled checkpoint: %v", err)
		}
	})
}
