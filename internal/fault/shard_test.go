package fault

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// shardTestConfig is the shared campaign the shard/session tests slice
// up: big enough for interesting splits, budget -1 so failures are
// recorded rather than aborting.
func shardTestConfig() Config {
	return Config{Trials: 48, Seed: 11, FailureBudget: -1,
		Sim: pipeline.TurnpikeConfig(4, 10)}
}

// TestSessionByteIdenticalToRun is the distributed-merge contract: a
// campaign executed as shards — committed out of trial order, with
// duplicate completions sprinkled in — must Finish with a Result
// byte-identical to Prepared.Run of the same Config.
func TestSessionByteIdenticalToRun(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	cfg := shardTestConfig()

	ref, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	prep, err := Prepare(ctx, prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Pending(); len(got) != 1 || got[0].Lo != 0 || got[0].Hi != cfg.Trials {
		t.Fatalf("fresh session pending = %v, want [{0 %d}]", got, cfg.Trials)
	}

	// Execute shards of uneven sizes, then commit them in reverse
	// order, re-committing one as a duplicate.
	var shards []*ShardResult
	for lo, step := 0, 7; lo < cfg.Trials; lo += step {
		hi := lo + step
		if hi > cfg.Trials {
			hi = cfg.Trials
		}
		sh, err := sess.RunRange(ctx, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
	}
	for i := len(shards) - 1; i >= 0; i-- {
		fresh, err := sess.Commit(shards[i])
		if err != nil {
			t.Fatalf("commit shard [%d,%d): %v", shards[i].Lo, shards[i].Hi, err)
		}
		if want := shards[i].Hi - shards[i].Lo; fresh != want {
			t.Fatalf("commit shard [%d,%d): fresh = %d, want %d", shards[i].Lo, shards[i].Hi, fresh, want)
		}
	}
	if fresh, err := sess.Commit(shards[0]); err != nil || fresh != 0 {
		t.Fatalf("duplicate commit: fresh=%d err=%v, want 0 <nil>", fresh, err)
	}
	if !sess.RangeComplete(0, cfg.Trials) {
		t.Fatal("RangeComplete(0, Trials) = false after all commits")
	}
	if got := sess.Pending(); len(got) != 0 {
		t.Fatalf("pending after all commits = %v, want none", got)
	}

	res, err := sess.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("sharded session result diverged from single-process Run")
	}
}

// TestShardVerifyAndCommitValidation exercises every rejection class:
// broken checksum, foreign golden fingerprint, fabricated injection
// plans, and duplicate records that contradict committed ones — plus
// Revoke as the mismatch resolution.
func TestShardVerifyAndCommitValidation(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	cfg := shardTestConfig()
	cfg.Trials = 16

	ctx := context.Background()
	prep, err := Prepare(ctx, prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	good, err := sess.RunRange(ctx, 0, 8)
	if err != nil {
		t.Fatal(err)
	}

	tampered := *good
	tampered.Checksum++
	if _, err := sess.Commit(&tampered); !errors.Is(err, ErrShardInvalid) {
		t.Errorf("broken checksum: err = %v, want ErrShardInvalid", err)
	}

	foreign := *good
	foreign.Records = append([]TrialRecord(nil), good.Records...)
	foreign.GoldenCycles++
	foreign.Seal()
	if _, err := sess.Commit(&foreign); !errors.Is(err, ErrShardInvalid) {
		t.Errorf("foreign golden fingerprint: err = %v, want ErrShardInvalid", err)
	}

	fabricated := *good
	fabricated.Records = append([]TrialRecord(nil), good.Records...)
	fabricated.Records[3].Inj.AtInst += 1000
	fabricated.Seal()
	if _, err := sess.Commit(&fabricated); !errors.Is(err, ErrShardInvalid) {
		t.Errorf("fabricated injection plan: err = %v, want ErrShardInvalid", err)
	}

	if fresh, err := sess.Commit(good); err != nil || fresh != 8 {
		t.Fatalf("good shard after rejects: fresh=%d err=%v", fresh, err)
	}

	// A duplicate whose outcome bytes differ from the committed records
	// is a mismatch — some executor is broken.
	lying := *good
	lying.Records = append([]TrialRecord(nil), good.Records...)
	lying.Records[2].Stats.Cycles += 7
	lying.Seal()
	if _, err := sess.Commit(&lying); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("contradicting duplicate: err = %v, want ErrShardMismatch", err)
	}

	// Revoke is the deterministic resolution: clear the range, re-run,
	// re-commit.
	if err := sess.Revoke(0, 8); err != nil {
		t.Fatal(err)
	}
	if sess.RangeComplete(0, 8) {
		t.Fatal("range still complete after Revoke")
	}
	rerun, err := sess.RunRange(ctx, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fresh, err := sess.Commit(rerun); err != nil || fresh != 8 {
		t.Fatalf("re-commit after revoke: fresh=%d err=%v", fresh, err)
	}

	rest, err := sess.RunRange(ctx, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Commit(rest); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Finish(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCheckpointResume abandons a session mid-campaign and
// reopens it: the new session must resume from the checkpoint watermark
// and finish byte-identical to an uninterrupted run.
func TestSessionCheckpointResume(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	cfg := shardTestConfig()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "session.ckpt.json")
	cfg.CheckpointEvery = 8

	refCfg := cfg
	refCfg.Checkpoint = ""
	ref, err := Campaign(prog, refCfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	prep, err := Prepare(ctx, prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prep.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Commit exactly two checkpoint cadences' worth, then walk away —
	// the coordinator-killed-mid-campaign case.
	for _, r := range []TrialRange{{0, 8}, {8, 16}} {
		sh, err := sess.RunRange(ctx, r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Commit(sh); err != nil {
			t.Fatal(err)
		}
	}

	prep2, err := Prepare(ctx, prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := prep2.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Completed() != 16 {
		t.Fatalf("restored session completed = %d, want 16", sess2.Completed())
	}
	pending := sess2.Pending()
	if len(pending) != 1 || pending[0].Lo != 16 || pending[0].Hi != cfg.Trials {
		t.Fatalf("restored pending = %v, want [{16 %d}]", pending, cfg.Trials)
	}
	for _, r := range pending {
		sh, err := sess2.RunRange(ctx, r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess2.Commit(sh); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess2.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("resumed session result diverged from uninterrupted run")
	}
}

// TestRunRangeCancelReturnsNoShard: a cancelled context abandons the
// shard entirely — partial shards must never merge.
func TestRunRangeCancelReturnsNoShard(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	cfg := shardTestConfig()
	ctx := context.Background()
	prep, err := Prepare(ctx, prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if sh, err := prep.RunRange(cctx, 0, 8); err == nil || sh != nil {
		t.Fatalf("cancelled RunRange: sh=%v err=%v, want nil + error", sh, err)
	}
	if _, err := prep.RunRange(ctx, -1, 8); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("negative lo: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := prep.RunRange(ctx, 0, cfg.Trials+1); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("hi beyond campaign: err = %v, want ErrInvalidConfig", err)
	}
}
