package fault

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// TestLeaseSizeInvariant extends the worker-count contract to batched
// dispatch: the merged result is byte-identical for every lease size,
// including leases larger than the per-worker share and the serial
// single-trial dispatch.
func TestLeaseSizeInvariant(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	base := Config{Trials: 80, Seed: 42, Sim: pipeline.TurnpikeConfig(4, 10)}

	var want *Result
	for _, tc := range []struct{ workers, lease int }{
		{1, 1}, {4, 1}, {4, 7}, {4, 64}, {8, 0},
	} {
		cfg := base
		cfg.Workers = tc.workers
		cfg.Lease = tc.lease
		res, err := Campaign(prog, cfg, p.SeedMemory)
		if err != nil {
			t.Fatalf("workers=%d lease=%d: %v", tc.workers, tc.lease, err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(want, res) {
			t.Errorf("workers=%d lease=%d diverged from serial reference", tc.workers, tc.lease)
		}
	}
}

// readCheckpointRecords loads a campaign checkpoint's per-trial records
// in trial order.
func readCheckpointRecords(t *testing.T, path string) []TrialRecord {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ck campaignCheckpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ck.Done, func(i, j int) bool { return ck.Done[i].Trial < ck.Done[j].Trial })
	return ck.Done
}

// TestReplayFromBatchedRange is the batched-dispatch replay contract:
// a trial executed mid-lease inside a multi-worker batched campaign
// must be byte-identical — outcome AND simulator statistics — to the
// same trial under single-trial serial dispatch, and to a standalone
// fault.Replay of its recorded injection. This is what makes a failure
// record from any campaign shape debuggable in isolation.
func TestReplayFromBatchedRange(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	dir := t.TempDir()
	base := Config{Trials: 48, Seed: 3, FailureBudget: -1, CheckpointEvery: 1000,
		Sim: pipeline.TurnpikeConfig(4, 10)}

	batched := base
	batched.Workers = 4
	batched.Lease = 8
	batched.Checkpoint = filepath.Join(dir, "batched.json")
	bres, err := Campaign(prog, batched, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}

	serial := base
	serial.Workers = 1
	serial.Lease = 1
	serial.Checkpoint = filepath.Join(dir, "serial.json")
	sres, err := Campaign(prog, serial, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bres, sres) {
		t.Fatal("batched campaign result diverged from per-trial serial dispatch")
	}
	brecs := readCheckpointRecords(t, batched.Checkpoint)
	srecs := readCheckpointRecords(t, serial.Checkpoint)
	if !reflect.DeepEqual(brecs, srecs) {
		t.Fatal("batched per-trial records diverged from serial records")
	}
	if len(brecs) != base.Trials {
		t.Fatalf("checkpoint holds %d/%d records", len(brecs), base.Trials)
	}

	// Fork trials out of the batched ranges — lease interiors, lease
	// boundaries, and both ends of the campaign — and replay each in
	// isolation.
	for _, trial := range []int{0, 7, 8, 20, 39, 47} {
		rec := brecs[trial]
		out, st, err := Replay(prog, Config{Sim: base.Sim}, p.SeedMemory, rec.Inj)
		if out != Crash && err != nil {
			t.Fatalf("trial %d replay: %v", trial, err)
		}
		if out != rec.Outcome {
			t.Errorf("trial %d: replay outcome %v, campaign recorded %v", trial, out, rec.Outcome)
		}
		if st != rec.Stats {
			t.Errorf("trial %d: replay stats diverged from campaign record:\n%+v\nvs\n%+v",
				trial, st, rec.Stats)
		}
	}
}

// TestTrialLoopAllocationFree pins the tentpole: once a worker's
// simulator and scratch are warm, running a trial — plan derivation,
// Reset, injected execution, classification — performs zero heap
// allocations.
func TestTrialLoopAllocationFree(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	cfg := Config{Trials: 32, Seed: 1, Workers: 1, FailureBudget: -1,
		Sim: pipeline.TurnpikeConfig(4, 10)}
	prep, err := Prepare(context.Background(), prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	e, r := prep.e, prep.runners[0]
	ctx := context.Background()
	var rec TrialRecord
	for i := 0; i < cfg.Trials; i++ {
		e.runTrial(ctx, r, i, &rec)
	}
	trial := 0
	allocs := testing.AllocsPerRun(100, func() {
		e.runTrial(ctx, r, trial%cfg.Trials, &rec)
		trial++
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state trial allocates %.2f objects/run, want 0", allocs)
	}
}
