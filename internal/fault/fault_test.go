package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/sensor"
	"repro/internal/workload"
)

func compiled(t *testing.T, name string, scheme core.Scheme) (*isa.Program, workload.Profile) {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	f := p.Build(2)
	opt := core.Options{Scheme: scheme, SBSize: 4}
	if scheme == core.Turnpike {
		opt = core.TurnpikeAll(4)
	}
	c, err := core.Compile(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c.Prog, p
}

func TestCampaignNoSDCTurnpike(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	res, err := Campaign(prog, Config{
		Trials: 120,
		Seed:   7,
		Sim:    pipeline.TurnpikeConfig(4, 10),
	}, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC] != 0 || res.Outcomes[Crash] != 0 {
		t.Fatalf("outcomes: %v", res.Outcomes)
	}
	if res.Outcomes[Recovered] == 0 {
		t.Fatal("no trial exercised recovery")
	}
}

func TestCampaignNoSDCTurnstile(t *testing.T) {
	prog, p := compiled(t, "radix", core.Turnstile)
	res, err := Campaign(prog, Config{
		Trials: 80,
		Seed:   11,
		Sim:    pipeline.TurnstileConfig(4, 20),
	}, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC] != 0 || res.Outcomes[Crash] != 0 {
		t.Fatalf("outcomes: %v", res.Outcomes)
	}
}

func TestCampaignAcrossTemplates(t *testing.T) {
	// One benchmark per kernel template, Turnpike with all hardware on —
	// the broadest recovery-soundness sweep in the suite.
	for _, name := range []string{"lbm", "exchange2", "mcf", "gemsfdtd", "radix"} {
		prog, p := compiled(t, name, core.Turnpike)
		res, err := Campaign(prog, Config{
			Trials: 40,
			Seed:   23,
			Sim:    pipeline.TurnpikeConfig(4, 10),
		}, p.SeedMemory)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Outcomes[SDC] != 0 {
			t.Fatalf("%s: SDC detected", name)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	cfg := Config{Trials: 30, Seed: 99, Sim: pipeline.TurnpikeConfig(4, 10)}
	a, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Outcome{Masked, Recovered, SDC, Crash} {
		if a.Outcomes[o] != b.Outcomes[o] {
			t.Fatalf("campaign nondeterministic: %v vs %v", a.Outcomes, b.Outcomes)
		}
	}
}

func TestRecoveryCostAccounted(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	res, err := Campaign(prog, Config{Trials: 60, Seed: 3, Sim: pipeline.TurnpikeConfig(4, 10)}, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Recovered] > 0 && res.AvgRecoveryCycles <= 0 {
		t.Fatalf("recoveries without cost: %+v", res)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Masked: "masked", Recovered: "recovered", SDC: "SDC", Crash: "crash"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}

func TestCampaignWithPhysicalDetector(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	cfgSim := pipeline.TurnpikeConfig(4, 11)
	det, err := sensor.NewPhysicalDetector(sensor.Model{Sensors: 300, DieAreaMM2: 1, ClockGHz: 2.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Campaign(prog, Config{Trials: 40, Seed: 5, Sim: cfgSim, Sampler: det}, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC] != 0 || res.Outcomes[Crash] != 0 {
		t.Fatalf("outcomes: %v", res.Outcomes)
	}
}

func TestSlowdownPercentiles(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	res, err := Campaign(prog, Config{Trials: 60, Seed: 13, Sim: pipeline.TurnpikeConfig(4, 10)}, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Recovered] == 0 {
		t.Skip("no recoveries sampled")
	}
	p50, p99 := res.SlowdownPercentile(50), res.SlowdownPercentile(99)
	if p50 < 1.0 || p99 < p50 {
		t.Fatalf("percentiles implausible: p50=%.3f p99=%.3f", p50, p99)
	}
	// A single strike's re-execution cost must stay small relative to the
	// whole run.
	if p99 > 2.0 {
		t.Fatalf("p99 slowdown %.2f: a single recovery should not double the run", p99)
	}
	if (&Result{}).SlowdownPercentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
}
