package fault

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/olog"
	"repro/internal/pipeline"
)

// lockedBuffer lets campaign workers share one log sink; slog handlers
// serialize individual Handle calls but the buffer itself must be safe.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestCampaignStructuredLog drives a small campaign with a Debug logger
// under a job-correlated context and checks the full chain: lifecycle
// lines carry the job ID, per-trial Debug lines add shard and trial
// indices, and every line is one JSON object in the pinned schema.
func TestCampaignStructuredLog(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	var sink lockedBuffer
	cfg := Config{
		Trials:  12,
		Seed:    7,
		Sim:     pipeline.TurnpikeConfig(4, 10),
		Workers: 3,
		Logger:  olog.New(&sink, olog.Options{Level: slog.LevelDebug}),
	}
	ctx := olog.WithJobID(olog.WithRequestID(context.Background(), "req-42"), "job-log-1")
	if _, err := CampaignContext(ctx, prog, cfg, p.SeedMemory); err != nil {
		t.Fatal(err)
	}

	var sawStart, sawComplete bool
	trials := map[float64]bool{}
	for _, ln := range sink.Lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, ln)
		}
		if m["job_id"] != "job-log-1" || m["request_id"] != "req-42" {
			t.Fatalf("line lost the correlation chain: %s", ln)
		}
		switch m["msg"] {
		case "campaign start":
			sawStart = true
			if m["trials"] != float64(12) || m["workers"] != float64(3) {
				t.Errorf("campaign start fields wrong: %s", ln)
			}
		case "campaign complete":
			sawComplete = true
			if m["completed"] != float64(12) {
				t.Errorf("campaign complete fields wrong: %s", ln)
			}
		case "trial complete":
			sh, okS := m["shard"].(float64)
			tr, okT := m["trial"].(float64)
			if !okS || !okT || sh < 0 || sh > 2 || tr < 0 || tr > 11 {
				t.Fatalf("trial line missing shard/trial: %s", ln)
			}
			trials[tr] = true
			if _, ok := m["outcome"].(string); !ok {
				t.Errorf("trial line missing outcome: %s", ln)
			}
		}
	}
	if !sawStart || !sawComplete {
		t.Errorf("lifecycle lines missing: start=%v complete=%v", sawStart, sawComplete)
	}
	if len(trials) != 12 {
		t.Errorf("saw %d distinct trial lines, want 12", len(trials))
	}
}

// TestCampaignLoggerOffIsDeterministic: attaching a logger must not
// perturb the campaign result (logging reads state, never draws from
// the trial streams).
func TestCampaignLoggerOffIsDeterministic(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	base := Config{Trials: 20, Seed: 5, Sim: pipeline.TurnpikeConfig(4, 10), Workers: 2}

	quiet, err := Campaign(prog, base, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	loud := base
	var sink lockedBuffer
	loud.Logger = olog.New(&sink, olog.Options{Level: slog.LevelDebug})
	logged, err := Campaign(prog, loud, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.CompletedTrials != logged.CompletedTrials ||
		len(quiet.Outcomes) != len(logged.Outcomes) {
		t.Errorf("logger changed the campaign result: %+v vs %+v", quiet, logged)
	}
	for k, v := range quiet.Outcomes {
		if logged.Outcomes[k] != v {
			t.Errorf("outcome %s: %d with logger vs %d without", k, logged.Outcomes[k], v)
		}
	}
}

// TestWarnfAndLoggerBothReceiveWarnings pins the compat contract: a
// corrupt checkpoint warning reaches the legacy printf hook and the
// structured logger.
func TestWarnfAndLoggerBothReceiveWarnings(t *testing.T) {
	var sink lockedBuffer
	var printf []string
	e := &engine{cfg: Config{
		Warnf:  func(format string, args ...any) { printf = append(printf, format) },
		Logger: olog.New(&sink, olog.Options{}),
	}}
	e.warnf("checkpoint %s corrupt", "x.json")
	if len(printf) != 1 {
		t.Errorf("legacy Warnf hook not called: %v", printf)
	}
	if out := strings.Join(sink.Lines(), "\n"); !strings.Contains(out, "checkpoint x.json corrupt") ||
		!strings.Contains(out, `"WARN"`) {
		t.Errorf("structured warning missing: %s", out)
	}
}
