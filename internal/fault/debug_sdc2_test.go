package fault

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestDebugSDC2 reproduces a failing fft injection with diagnostics;
// retained as a regression test for the exact scenario.
func TestDebugSDC2(t *testing.T) {
	p, _ := workload.ByName("fft")
	f := p.Build(2)
	c, err := core.Compile(f, core.TurnpikeAll(4))
	if err != nil {
		t.Fatal(err)
	}
	prog := c.Prog
	cfg := pipeline.TurnpikeConfig(4, 10)

	golden, _, err := run(context.Background(), prog, Config{Sim: cfg}, p.SeedMemory, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj := Injection{Reg: 4, Bit: 48, AtInst: 632, Latency: 1}
	mem, st, err := run(context.Background(), prog, Config{Sim: cfg}, p.SeedMemory, &inj)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Equal(mem) {
		t.Skip("scenario no longer reproduces")
	}
	t.Logf("stats: recoveries=%d parity=%d", st.Recoveries, st.ParityTrips)
	t.Fatalf("SDC:\n%s", golden.Diff(mem, 12))
}
