package fault

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/sensor"
)

// adversarialConfig is the reference hostile campaign: a lossy mesh
// (misses, dead sensors), multi-strike bursts, and false positives, run
// against a containment-enabled Turnpike pipeline. Tests derive their
// variants from it so the knobs stay in one place.
func adversarialConfig(workers int) Config {
	sim := pipeline.TurnpikeConfig(4, 10)
	sim.DetectQueue = 8
	return Config{
		Trials: 120, Seed: 1234, Sim: sim, Workers: workers,
		FailureBudget: -1, // record everything; asserts inspect the counts
		Adversary: &Adversary{
			MissProb:          0.25,
			FalsePositiveRate: 0.10,
			DeadSensors:       40,
			BurstMax:          3,
			LateFactor:        64, // far beyond any region's verify window
		},
	}
}

// TestAdversarialContainmentInvariant is the PR's headline guarantee: an
// imperfect mesh (late detections, dead sensors, bursts, false positives)
// with containment on produces zero SDC — every miss that escapes recovery
// becomes a DUE, never a silently-wrong result.
func TestAdversarialContainmentInvariant(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	res, err := Campaign(prog, adversarialConfig(0), p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC] != 0 {
		t.Fatalf("containment violated: %d SDC outcomes (%v)", res.Outcomes[SDC], res.Outcomes)
	}
	if res.Outcomes[Crash] != 0 {
		t.Fatalf("adversarial campaign crashed the simulator: %v", res.Outcomes)
	}
	if res.Outcomes[DUE] == 0 {
		t.Fatalf("adversary drew no DUEs — knobs too soft to exercise containment: %v", res.Outcomes)
	}
	if res.MissedDetections == 0 {
		t.Fatal("adversary planned no missed detections")
	}
	if res.Strikes <= res.CompletedTrials {
		t.Fatalf("no bursts materialized: %d strikes over %d trials", res.Strikes, res.CompletedTrials)
	}
	// The statistics must be internally consistent.
	if got := res.Coverage; got.Total != res.Strikes || got.Successes != res.Strikes-res.MissedDetections {
		t.Fatalf("coverage interval inconsistent: %+v vs %d/%d strikes detected",
			got, res.Strikes-res.MissedDetections, res.Strikes)
	}
	if res.Coverage.Lo > res.Coverage.Rate || res.Coverage.Rate > res.Coverage.Hi {
		t.Fatalf("coverage interval does not bracket the rate: %+v", res.Coverage)
	}
	if res.SDCRate.Successes != 0 || res.SDCRate.Hi == 0 {
		t.Fatalf("SDC rate must be zero with a nonzero Wilson upper bound: %+v", res.SDCRate)
	}
	if res.DUERate.Successes != res.Outcomes[DUE] {
		t.Fatalf("DUE rate %+v disagrees with outcomes %v", res.DUERate, res.Outcomes)
	}
}

// TestAdversarialWithoutContainmentYieldsSDC is the negative control
// guarding the invariant test's power: the same campaign with containment
// switched off must produce silent corruption, proving the misses are real
// and containment — not luck — is what eliminates SDC above.
func TestAdversarialWithoutContainmentYieldsSDC(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	cfg := adversarialConfig(0)
	cfg.Sim.Containment = false
	res, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[SDC] == 0 {
		t.Fatalf("containment off must leak SDC under this adversary (else the invariant test proves nothing): %v",
			res.Outcomes)
	}
	if res.Outcomes[DUE] != 0 {
		t.Fatalf("DUEs reported with containment off: %v", res.Outcomes)
	}
	if res.SDCRate.Successes != res.Outcomes[SDC] {
		t.Fatalf("SDC rate %+v disagrees with outcomes %v", res.SDCRate, res.Outcomes)
	}
}

// TestAdversarialWorkerCountInvariant extends the engine's determinism
// guarantee to the adversarial planner: burst plans, mesh draws, and false
// positives are pure functions of (Seed, trial), so one worker and eight
// must merge byte-identical Results.
func TestAdversarialWorkerCountInvariant(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	one, err := Campaign(prog, adversarialConfig(1), p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Campaign(prog, adversarialConfig(8), p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("adversarial campaign diverged between 1 and 8 workers:\n%+v\nvs\n%+v", one, eight)
	}
}

// TestAdversaryValidation pins the knob ranges and the burst/queue
// coupling: a burst that cannot fit the pending-detection queue is a
// configuration error, not a mid-campaign surprise.
func TestAdversaryValidation(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	run := func(mut func(*Config)) error {
		cfg := adversarialConfig(1)
		cfg.Trials = 1
		mut(&cfg)
		_, err := Campaign(prog, cfg, p.SeedMemory)
		return err
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"miss prob above one", func(c *Config) { c.Adversary.MissProb = 1.5 }},
		{"negative miss prob", func(c *Config) { c.Adversary.MissProb = -0.1 }},
		{"fp rate above one", func(c *Config) { c.Adversary.FalsePositiveRate = 2 }},
		{"negative dead sensors", func(c *Config) { c.Adversary.DeadSensors = -1 }},
		{"negative burst", func(c *Config) { c.Adversary.BurstMax = -1 }},
		{"burst exceeds queue", func(c *Config) { c.Adversary.BurstMax = 8; c.Sim.DetectQueue = 4 }},
		{"negative late factor", func(c *Config) { c.Adversary.LateFactor = -1 }},
		{"dead sensors swallow the mesh", func(c *Config) { c.Adversary.DeadSensors = 1 << 20 }},
		{"adversary plus sampler", func(c *Config) { c.Sampler = sensor.NewDetector(10, 0) }},
	}
	for _, tc := range cases {
		if err := run(tc.mut); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := run(func(c *Config) {}); err != nil {
		t.Errorf("reference adversary rejected: %v", err)
	}
}

// TestNonForkableSamplerRejected: the serial pre-draw fallback is gone;
// a sampler that cannot derive per-trial streams is now a configuration
// error instead of a silent serial pass.
func TestNonForkableSamplerRejected(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	cfg := Config{Trials: 2, Seed: 1, Sim: pipeline.TurnpikeConfig(4, 10), Sampler: fixedSampler{7}}
	if _, err := Campaign(prog, cfg, p.SeedMemory); err == nil {
		t.Fatal("non-forkable sampler accepted")
	}
}

type fixedSampler struct{ lat int }

func (f fixedSampler) Latency() int { return f.lat }

// TestAdversarialReplayAndResume closes the loop on the debugging
// workflow: every checkpointed adversarial trial replays to its recorded
// outcome, and a fresh campaign over the finished checkpoint file merges
// to the identical Result without re-running anything.
func TestAdversarialReplayAndResume(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	cfg := adversarialConfig(4)
	cfg.Trials = 30
	cfg.Checkpoint = t.TempDir() + "/adv.json"
	res, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the first few trials and require no silent corruption.
	replayed := 0
	for trial := 0; trial < cfg.Trials && replayed < 4; trial++ {
		inj := planFor(t, prog, cfg, p.SeedMemory, trial)
		out, _, err := Replay(prog, Config{Sim: cfg.Sim}, p.SeedMemory, inj)
		if err != nil {
			t.Fatalf("trial %d replay errored: %v", trial, err)
		}
		if out == SDC {
			t.Fatalf("trial %d replayed as SDC under containment", trial)
		}
		replayed++
	}
	resumed, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, resumed) {
		t.Fatalf("resume over a complete adversarial checkpoint diverged:\n%+v\nvs\n%+v", res, resumed)
	}
}

// planFor re-derives one trial's plan exactly as the campaign engine does,
// including the golden-run-derived injection window.
func planFor(t *testing.T, prog *isa.Program, cfg Config, seedMem func(*isa.Memory), trial int) Injection {
	t.Helper()
	golden, goldenStats, err := run(context.Background(), prog, cfg, seedMem, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxAt := cfg.MaxInjectInst
	if maxAt == 0 {
		maxAt = goldenStats.Insts * 9 / 10
		if maxAt == 0 {
			maxAt = 1
		}
	}
	e := &engine{prog: prog, cfg: cfg, seedMem: seedMem, golden: golden, maxAt: maxAt}
	if err := e.resolveSampler(); err != nil {
		t.Fatal(err)
	}
	return e.plan(trial)
}
