package fault

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sensor"
	"repro/internal/workload"
)

// TestCampaignWorkerCountInvariant is the engine's core guarantee: the
// merged result — outcome histogram, aggregate statistics, slowdown
// samples, failure report, and the metric registry fed from them — is
// identical for every worker count at a fixed seed.
func TestCampaignWorkerCountInvariant(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	base := Config{Trials: 80, Seed: 42, Sim: pipeline.TurnpikeConfig(4, 10)}

	results := make([]*Result, 0, 3)
	snaps := make([]obs.Snapshot, 0, 3)
	for _, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		cfg.Metrics = obs.NewRegistry()
		res, err := Campaign(prog, cfg, p.SeedMemory)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
		snaps = append(snaps, cfg.Metrics.Snapshot())
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("result diverged between worker counts:\n%+v\nvs\n%+v", results[0], results[i])
		}
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Errorf("metric snapshot diverged between worker counts")
		}
	}
	if results[0].CompletedTrials != base.Trials {
		t.Fatalf("completed %d/%d trials", results[0].CompletedTrials, base.Trials)
	}
}

// TestCampaignPhysicalDetectorWorkerInvariant covers the per-trial
// detector fork path: a grid-placed PhysicalDetector sampler must also
// yield worker-count-independent results.
func TestCampaignPhysicalDetectorWorkerInvariant(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	mk := func(workers int) *Result {
		det, err := sensor.NewPhysicalDetector(sensor.Model{Sensors: 300, DieAreaMM2: 1, ClockGHz: 2.5}, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Campaign(prog, Config{
			Trials: 40, Seed: 5, Sim: pipeline.TurnpikeConfig(4, 11),
			Sampler: det, Workers: workers,
		}, p.SeedMemory)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	if a, b := mk(1), mk(4); !reflect.DeepEqual(a, b) {
		t.Fatalf("physical-detector campaign diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestTrialPlanIsPure pins the seeding scheme: a trial's injection is a
// pure function of (seed, trial), independent of any other trial.
func TestTrialPlanIsPure(t *testing.T) {
	e := &engine{cfg: Config{Seed: 7, Trials: 100, Sim: pipeline.TurnpikeConfig(4, 10)}, maxAt: 5000}
	if err := e.resolveSampler(); err != nil {
		t.Fatal(err)
	}
	want := make([]Injection, 16)
	for i := range want {
		want[i] = e.plan(i)
	}
	// Re-derive in reverse order from a fresh engine: identical plans.
	e2 := &engine{cfg: e.cfg, maxAt: e.maxAt}
	if err := e2.resolveSampler(); err != nil {
		t.Fatal(err)
	}
	for i := len(want) - 1; i >= 0; i-- {
		if got := e2.plan(i); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("trial %d plan not pure: %+v vs %+v", i, got, want[i])
		}
	}
	// Different seeds must decorrelate.
	e3 := &engine{cfg: Config{Seed: 8, Trials: 100, Sim: e.cfg.Sim}, maxAt: e.maxAt}
	if err := e3.resolveSampler(); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range want {
		if reflect.DeepEqual(e3.plan(i), want[i]) {
			same++
		}
	}
	if same == len(want) {
		t.Fatal("seed change did not change the plan")
	}
}

// TestFailureBudgetRecordsAndAborts drives the engine against a
// non-resilient binary, where every injection attempt crashes (the
// pipeline rejects injection without a resilient config): the budget must
// bound how many failures are recorded, and a negative budget must record
// all of them without an error.
func TestFailureBudgetRecordsAndAborts(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Baseline)
	cfg := Config{Trials: 10, Seed: 1, Sim: pipeline.BaselineConfig(4), Workers: 1}

	// Unlimited budget: every trial recorded, no abort.
	cfg.FailureBudget = -1
	res, err := Campaign(prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatalf("unlimited budget must not abort: %v", err)
	}
	if res.Outcomes[Crash] != 10 || len(res.Failures) != 10 {
		t.Fatalf("outcomes %v, %d failures recorded", res.Outcomes, len(res.Failures))
	}
	for i, f := range res.Failures {
		if f.Trial != i || f.Outcome != Crash || f.Err == "" {
			t.Fatalf("failure %d malformed: %+v", i, f)
		}
	}

	// Budget of 3 on one worker: exactly three trials run, then abort.
	cfg.FailureBudget = 3
	res, err = Campaign(prog, cfg, p.SeedMemory)
	if err == nil {
		t.Fatal("exhausted budget must return an error")
	}
	if res.CompletedTrials != 3 || len(res.Failures) != 3 {
		t.Fatalf("completed=%d failures=%d, want 3/3", res.CompletedTrials, len(res.Failures))
	}

	// Default (zero) budget keeps the historical fail-fast contract.
	cfg.FailureBudget = 0
	res, err = Campaign(prog, cfg, p.SeedMemory)
	if err == nil || len(res.Failures) != 1 {
		t.Fatalf("fail-fast default: err=%v failures=%d", err, len(res.Failures))
	}
}

// TestReplayMatchesCheckpointRecords replays trials recorded in a
// checkpoint file and requires the classification to reproduce — the
// failure-report debugging loop, exercised on healthy trials.
func TestReplayMatchesCheckpointRecords(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	ckpt := filepath.Join(t.TempDir(), "camp.json")
	cfg := Config{Trials: 12, Seed: 3, Sim: pipeline.TurnpikeConfig(4, 10), Checkpoint: ckpt}
	if _, err := Campaign(prog, cfg, p.SeedMemory); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var ck campaignCheckpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.Done) != cfg.Trials {
		t.Fatalf("checkpoint has %d/%d trials", len(ck.Done), cfg.Trials)
	}
	for _, rec := range ck.Done[:4] {
		out, st, err := Replay(prog, Config{Sim: cfg.Sim}, p.SeedMemory, rec.Inj)
		if err != nil {
			t.Fatalf("trial %d replay: %v", rec.Trial, err)
		}
		if out != rec.Outcome {
			t.Fatalf("trial %d replayed as %s, recorded %s", rec.Trial, out, rec.Outcome)
		}
		if st != rec.Stats {
			t.Fatalf("trial %d replay stats diverged", rec.Trial)
		}
	}
}

// TestCampaignResume kills a campaign mid-flight via context
// cancellation, restarts it from the checkpoint file, and requires the
// merged result to equal an uninterrupted run at the same seed.
func TestCampaignResume(t *testing.T) {
	prog, p := compiled(t, "gcc", core.Turnpike)
	base := Config{Trials: 60, Seed: 9, Sim: pipeline.TurnpikeConfig(4, 10)}

	uninterrupted, err := Campaign(prog, base, p.SeedMemory)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "resume.json")
	cfg := base
	cfg.Checkpoint = ckpt
	cfg.CheckpointEvery = 1
	cfg.Workers = 2
	cfg.Progress = &pipeline.Progress{}

	// Cancel once a handful of trials completed (Runs counts the golden
	// run too); the final checkpoint write must preserve the watermark.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for cfg.Progress.Runs.Load() < 6 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	partial, err := CampaignContext(ctx, prog, cfg, p.SeedMemory)
	if err == nil {
		t.Fatal("cancelled campaign must report interruption")
	}
	if partial.CompletedTrials == 0 {
		t.Fatal("cancellation landed before any trial completed")
	}
	if partial.CompletedTrials >= base.Trials {
		t.Fatalf("cancellation landed after all %d trials; nothing to resume", base.Trials)
	}

	cfg.Progress = nil
	resumed, err := CampaignContext(context.Background(), prog, cfg, p.SeedMemory)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(resumed, uninterrupted) {
		t.Fatalf("resumed result diverged from uninterrupted run:\n%+v\nvs\n%+v", resumed, uninterrupted)
	}
}

// TestCheckpointMismatchRejected: a checkpoint from one campaign must not
// silently seed a different one.
func TestCheckpointMismatchRejected(t *testing.T) {
	prog, p := compiled(t, "fft", core.Turnpike)
	ckpt := filepath.Join(t.TempDir(), "camp.json")
	cfg := Config{Trials: 8, Seed: 3, Sim: pipeline.TurnpikeConfig(4, 10), Checkpoint: ckpt}
	if _, err := Campaign(prog, cfg, p.SeedMemory); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 4
	if _, err := Campaign(prog, cfg, p.SeedMemory); err == nil {
		t.Fatal("seed change over an existing checkpoint must be rejected")
	}
}

// TestSlowdownPercentileNearestRank pins the nearest-rank definition:
// rank = ceil(p/100*n), clamped to [1, n]. The previous truncating index
// biased P95/P99 low on small sample counts.
func TestSlowdownPercentileNearestRank(t *testing.T) {
	four := &Result{SlowdownSamples: []float64{1.0, 1.1, 1.2, 1.3}}
	ten := &Result{SlowdownSamples: []float64{1.01, 1.02, 1.03, 1.04, 1.05, 1.06, 1.07, 1.08, 1.09, 1.10}}
	cases := []struct {
		name string
		r    *Result
		p    float64
		want float64
	}{
		{"empty", &Result{}, 50, 0},
		{"p0 clamps to first", four, 0, 1.0},
		{"p25 of 4", four, 25, 1.0},
		{"p50 of 4", four, 50, 1.1},
		{"p95 of 4 is the max", four, 95, 1.3}, // truncation said 1.2
		{"p99 of 4 is the max", four, 99, 1.3},
		{"p100 of 4", four, 100, 1.3},
		{"p90 of 10", ten, 90, 1.09},
		{"p91 of 10 rounds up", ten, 91, 1.10}, // truncation said 1.09
		{"p99 of 10 is the max", ten, 99, 1.10},
		{"p10 of 10", ten, 10, 1.01},
	}
	for _, c := range cases {
		if got := c.r.SlowdownPercentile(c.p); got != c.want {
			t.Errorf("%s: P%.0f = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

// BenchmarkCampaignWorkers reports the campaign's wall-clock scaling with
// the worker pool; on a multi-core runner the parallel variant should
// approach workers-fold speedup since trials are embarrassingly parallel.
// CI gates only the determinism of the result, never the speedup.
func BenchmarkCampaignWorkers(b *testing.B) {
	p, ok := workload.ByName("gcc")
	if !ok {
		b.Fatal("no gcc benchmark")
	}
	f := p.Build(4)
	c, err := core.Compile(f, core.TurnpikeAll(4))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "serial", 8: "workers8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Campaign(c.Prog, Config{
					Trials: 64, Seed: 42, Workers: workers,
					Sim: pipeline.TurnpikeConfig(4, 10),
				}, p.SeedMemory)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
