package fault

// The distributed half of the campaign engine. A coordinator Opens a
// Prepared campaign as a Session, hands out TrialRanges as leases, and
// Commits the ShardResults that come back — from remote workers over any
// transport, or from its own runners via RunRange. Because every trial's
// injection plan is a pure function of (Seed, trial) and the simulator is
// deterministic, a shard executed anywhere merges byte-identically with
// shards executed everywhere else; the Session enforces that by
// re-deriving each committed record's plan and cross-checking duplicate
// completions record-for-record.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/olog"
	"repro/internal/obs/span"
	"repro/internal/pipeline"
)

// TrialRange is the lease unit of a distributed campaign: the contiguous
// trials [Lo, Hi).
type TrialRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of trials in the range.
func (r TrialRange) Len() int { return r.Hi - r.Lo }

func (r TrialRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// ShardResult is the serialized outcome of one leased trial range — the
// unit a remote worker posts back to its coordinator. GoldenCycles and
// GoldenInsts fingerprint the executing process's warm golden run: a
// worker whose golden run disagrees with the coordinator's compiled a
// different program or simulator configuration, and its records must not
// be merged. Checksum is FNV-1a over the records' canonical JSON so a
// duplicate completion can be cross-validated cheaply before the
// record-level comparison.
type ShardResult struct {
	Lo           int           `json:"lo"`
	Hi           int           `json:"hi"`
	GoldenCycles uint64        `json:"golden_cycles"`
	GoldenInsts  uint64        `json:"golden_insts"`
	Records      []TrialRecord `json:"records"`
	Checksum     uint64        `json:"checksum"`
}

// shardChecksum hashes the records' canonical JSON with FNV-1a.
func shardChecksum(records []TrialRecord) uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for i := range records {
		enc.Encode(&records[i]) //nolint:errcheck — hash writes cannot fail
	}
	return h.Sum64()
}

// Seal computes and stores the checksum. Call after Records is final.
func (s *ShardResult) Seal() { s.Checksum = shardChecksum(s.Records) }

// Verify checks the shard's internal consistency: a well-formed range,
// one record per trial in order, and a checksum matching the records.
// It says nothing about which campaign the shard belongs to — Commit
// checks that against the session's plan and golden fingerprint.
func (s *ShardResult) Verify() error {
	if s.Lo < 0 || s.Hi <= s.Lo {
		return fmt.Errorf("%w: bad range [%d,%d)", ErrShardInvalid, s.Lo, s.Hi)
	}
	if len(s.Records) != s.Hi-s.Lo {
		return fmt.Errorf("%w: range [%d,%d) carries %d records", ErrShardInvalid, s.Lo, s.Hi, len(s.Records))
	}
	for i := range s.Records {
		if s.Records[i].Trial != s.Lo+i {
			return fmt.Errorf("%w: record %d is trial %d, want %d", ErrShardInvalid, i, s.Records[i].Trial, s.Lo+i)
		}
	}
	if got := shardChecksum(s.Records); got != s.Checksum {
		return fmt.Errorf("%w: checksum %x does not match records (%x)", ErrShardInvalid, s.Checksum, got)
	}
	return nil
}

// RunRange executes trials [lo, hi) on the prepared campaign's local
// runners and returns the sealed shard — the worker side of a
// distributed campaign, and the coordinator's local-fallback execution
// path. The range is fanned over the prepared simulators and each record
// lands at its trial index, so the shard is byte-identical for any
// runner count. A cancelled ctx abandons the shard and returns the
// context error: partial shards are never returned — the lease is simply
// re-run.
func (p *Prepared) RunRange(ctx context.Context, lo, hi int) (*ShardResult, error) {
	e := p.e
	if lo < 0 || hi > e.cfg.Trials || lo >= hi {
		return nil, fmt.Errorf("%w: shard range [%d,%d) outside campaign of %d trials",
			ErrInvalidConfig, lo, hi, e.cfg.Trials)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sh := &ShardResult{
		Lo: lo, Hi: hi,
		GoldenCycles: p.goldenStats.Cycles,
		GoldenInsts:  p.goldenStats.Insts,
		Records:      make([]TrialRecord, hi-lo),
	}
	workers := len(p.runners)
	if workers > hi-lo {
		workers = hi - lo
	}
	log := e.cfg.Logger
	debugOn := log != nil && log.Enabled(ctx, slog.LevelDebug)
	var next atomic.Int64
	next.Store(int64(lo))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int, runner *trialRunner) {
			defer wg.Done()
			if e.cfg.Progress != nil {
				e.cfg.Progress.Workers.Add(1)
				defer e.cfg.Progress.Workers.Add(-1)
			}
			wctx := olog.WithShard(ctx, shard)
			for ctx.Err() == nil {
				t := int(next.Add(1)) - 1
				if t >= hi {
					return
				}
				tctx := wctx
				if log != nil {
					tctx = olog.WithTrial(wctx, t)
				}
				rec := &sh.Records[t-lo]
				e.runTrial(tctx, runner, t, rec)
				if debugOn {
					e.logTrial(tctx, rec)
				}
			}
		}(w, p.runners[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fault: shard [%d,%d) interrupted: %w", lo, hi, err)
	}
	span.RecordCtx(ctx, "fault", "shard_exec", start, time.Now(),
		map[string]any{"lo": lo, "hi": hi, "trials": hi - lo})
	sh.Seal()
	return sh, nil
}

// Session is a Prepared campaign opened for external scheduling: the
// coordinator side of a distributed run. It owns the campaign's record
// table, checkpoint cadence, and failure budget; leases of Pending
// ranges are executed anywhere (RunRange locally, remote workers over a
// transport) and merged back through Commit. Finish merges the records
// in trial order, so the Result is byte-identical to a single-process
// Prepared.Run of the same Config — regardless of which worker executed
// which range, how often leases were re-granted, or how many duplicate
// completions arrived.
//
// Session methods are safe for concurrent use.
type Session struct {
	p *Prepared

	mu        sync.Mutex
	records   []*TrialRecord
	failures  int
	sinceCkpt int
	every     int
	budget    int
	ckptErr   error
	finished  bool
}

// Open restores the campaign's checkpoint (if configured) and returns
// the session ready for scheduling. Like Run, a corrupt checkpoint is
// discarded with a warning and the campaign restarts from trial zero;
// a checkpoint from a different campaign is an error. Open and Run are
// mutually exclusive: whichever is called first owns the campaign.
func (p *Prepared) Open(ctx context.Context) (*Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ran {
		return nil, fmt.Errorf("fault: campaign already running")
	}
	p.ran = true
	e := p.e
	budget := e.cfg.FailureBudget
	if budget == 0 {
		budget = 1 // historical fail-fast default
	}
	every := e.cfg.CheckpointEvery
	if every <= 0 {
		every = 64
	}
	records := make([]*TrialRecord, e.cfg.Trials)
	if e.cfg.Checkpoint != "" {
		restoreStart := time.Now()
		err := e.restore(records, p.goldenStats)
		span.RecordCtx(ctx, "fault", "checkpoint_restore", restoreStart, time.Now(), nil)
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) {
				return nil, err
			}
			e.warnf("%v — restarting the campaign from trial 0", err)
			for i := range records {
				records[i] = nil
			}
		}
	}
	s := &Session{p: p, records: records, every: every, budget: budget}
	for _, rec := range records {
		if rec != nil && (rec.Outcome == SDC || rec.Outcome == Crash) {
			s.failures++
		}
	}
	return s, nil
}

// Trials returns the campaign's total trial count.
func (s *Session) Trials() int { return len(s.records) }

// GoldenStats returns the warm golden run's statistics — the fingerprint
// leases carry so workers can prove they compiled the same campaign.
func (s *Session) GoldenStats() pipeline.Stats { return s.p.goldenStats }

// RunRange executes [lo, hi) on the session's own prepared runners —
// the coordinator's local-fallback path when no fleet workers are live.
func (s *Session) RunRange(ctx context.Context, lo, hi int) (*ShardResult, error) {
	return s.p.RunRange(ctx, lo, hi)
}

// Completed returns how many trials hold committed records.
func (s *Session) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completedLocked()
}

func (s *Session) completedLocked() int {
	n := 0
	for _, rec := range s.records {
		if rec != nil {
			n++
		}
	}
	return n
}

// Pending returns the maximal contiguous ranges of trials without
// committed records, in trial order — the work left to lease. A session
// whose failure budget is exhausted owes no further work and returns
// nil.
func (s *Session) Pending() []TrialRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && s.failures >= s.budget {
		return nil
	}
	var out []TrialRange
	for t := 0; t < len(s.records); {
		if s.records[t] != nil {
			t++
			continue
		}
		lo := t
		for t < len(s.records) && s.records[t] == nil {
			t++
		}
		out = append(out, TrialRange{Lo: lo, Hi: t})
	}
	return out
}

// RangeComplete reports whether every trial in [lo, hi) holds a
// committed record — the coordinator's guard against re-leasing work a
// duplicate grant already finished.
func (s *Session) RangeComplete(lo, hi int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lo < 0 || hi > len(s.records) || lo >= hi {
		return false
	}
	for t := lo; t < hi; t++ {
		if s.records[t] == nil {
			return false
		}
	}
	return true
}

// BudgetExhausted reports whether committed failures have consumed the
// failure budget; the coordinator stops granting leases once it trips.
func (s *Session) BudgetExhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget > 0 && s.failures >= s.budget
}

// Commit validates one shard against the campaign and merges its
// records, returning how many trials were newly committed. Zero with a
// nil error is a benign duplicate: every record in the range was already
// committed with identical bytes (first-complete-wins — the duplicate
// grant lost the race and its work is simply discarded).
//
// Validation failures wrap ErrShardInvalid (broken checksum, foreign
// golden fingerprint, out-of-range trials, records contradicting the
// deterministic plan); a duplicate whose records disagree with committed
// ones wraps ErrShardMismatch. Either way the coordinator should
// quarantine the submitter and re-run the range.
func (s *Session) Commit(sh *ShardResult) (int, error) {
	if err := sh.Verify(); err != nil {
		return 0, err
	}
	e := s.p.e
	if sh.Hi > len(s.records) {
		return 0, fmt.Errorf("%w: range [%d,%d) outside campaign of %d trials",
			ErrShardInvalid, sh.Lo, sh.Hi, len(s.records))
	}
	if sh.GoldenCycles != s.p.goldenStats.Cycles || sh.GoldenInsts != s.p.goldenStats.Insts {
		return 0, fmt.Errorf("%w: golden fingerprint %d cycles/%d insts does not match the coordinator's %d/%d — the worker compiled a different campaign",
			ErrShardInvalid, sh.GoldenCycles, sh.GoldenInsts, s.p.goldenStats.Cycles, s.p.goldenStats.Insts)
	}
	// Plan validation outside the lock: re-derive every record's
	// injection and reject fabrications before touching the table.
	var sc planScratch
	for i := range sh.Records {
		if got := e.planWith(sh.Records[i].Trial, &sc); !reflect.DeepEqual(got, sh.Records[i].Inj) {
			return 0, fmt.Errorf("%w: trial %d recorded injection %+v does not match the plan %+v",
				ErrShardInvalid, sh.Records[i].Trial, sh.Records[i].Inj, got)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		// The campaign merged while this shard was in flight; its work
		// is simply discarded (the merge already happened in trial
		// order, so nothing is lost or double-counted).
		return 0, nil
	}
	// Duplicate cross-validation first: if any already-committed trial
	// disagrees with the incoming record, commit nothing.
	for i := range sh.Records {
		if prev := s.records[sh.Lo+i]; prev != nil && !reflect.DeepEqual(*prev, sh.Records[i]) {
			return 0, fmt.Errorf("%w: trial %d", ErrShardMismatch, sh.Lo+i)
		}
	}
	fresh := 0
	for i := range sh.Records {
		if s.records[sh.Lo+i] != nil {
			continue
		}
		rec := &sh.Records[i]
		s.records[sh.Lo+i] = rec
		fresh++
		if rec.Outcome == SDC || rec.Outcome == Crash {
			s.failures++
		}
	}
	if fresh == 0 {
		return 0, nil
	}
	s.sinceCkpt += fresh
	if e.cfg.Checkpoint != "" && s.sinceCkpt >= s.every {
		s.sinceCkpt = 0
		if err := e.save(s.records, s.p.goldenStats); err != nil && s.ckptErr == nil {
			s.ckptErr = err
		}
	}
	return fresh, nil
}

// Revoke clears the committed records in [lo, hi) so the range can be
// re-leased — the deterministic resolution of a shard mismatch: neither
// conflicting execution is trusted, a third decides. The checkpoint is
// rewritten immediately so a coordinator crash cannot resurrect the
// revoked records.
func (s *Session) Revoke(lo, hi int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return nil
	}
	if lo < 0 || hi > len(s.records) || lo >= hi {
		return fmt.Errorf("%w: revoke range [%d,%d) outside campaign of %d trials",
			ErrInvalidConfig, lo, hi, len(s.records))
	}
	s.failures = 0
	for t := lo; t < hi; t++ {
		s.records[t] = nil
	}
	for _, rec := range s.records {
		if rec != nil && (rec.Outcome == SDC || rec.Outcome == Crash) {
			s.failures++
		}
	}
	if s.p.e.cfg.Checkpoint != "" {
		return s.p.e.save(s.records, s.p.goldenStats)
	}
	return nil
}

// Checkpoint rewrites the campaign's checkpoint file with every
// committed record, regardless of cadence — the coordinator calls it
// when an attempt is being cut short (drain, cancellation) so the next
// life resumes from the exact watermark.
func (s *Session) Checkpoint() error {
	if s.p.e.cfg.Checkpoint == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return nil
	}
	s.sinceCkpt = 0
	return s.p.e.save(s.records, s.p.goldenStats)
}

// Finish writes the final checkpoint, merges every committed record in
// trial order, and returns the campaign Result — byte-identical to a
// single-process run of the same Config over the same completed trials.
// The error mirrors Prepared.Run: a checkpoint write failure, a
// cancelled ctx (partial result attached), or an exhausted failure
// budget each return the merged partial result alongside the error.
func (s *Session) Finish(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return nil, fmt.Errorf("fault: Session.Finish called twice")
	}
	s.finished = true
	e := s.p.e
	if e.cfg.Checkpoint != "" {
		ckptStart := time.Now()
		err := e.save(s.records, s.p.goldenStats)
		span.RecordCtx(ctx, "fault", "checkpoint_write", ckptStart, time.Now(),
			map[string]any{"final": true})
		if err != nil && s.ckptErr == nil {
			s.ckptErr = err
		}
	}
	mergeStart := time.Now()
	res := e.merge(s.records, s.p.goldenStats)
	span.RecordCtx(ctx, "fault", "merge", mergeStart, time.Now(),
		map[string]any{"completed": res.CompletedTrials})
	ckptErr := s.ckptErr
	budget := s.budget
	s.mu.Unlock()
	if log := e.cfg.Logger; log != nil {
		log.LogAttrs(ctx, slog.LevelInfo, "campaign complete",
			slog.Int("completed", res.CompletedTrials),
			slog.Int("trials", e.cfg.Trials),
			slog.Int("recovered", res.Outcomes[Recovered]),
			slog.Int("masked", res.Outcomes[Masked]),
			slog.Int("due", res.Outcomes[DUE]),
			slog.Int("failures", len(res.Failures)),
		)
	}
	switch {
	case ckptErr != nil:
		return res, fmt.Errorf("fault: checkpoint: %w", ckptErr)
	case ctx.Err() != nil:
		return res, fmt.Errorf("fault: campaign interrupted after %d/%d trials: %w",
			res.CompletedTrials, e.cfg.Trials, ctx.Err())
	case budget > 0 && len(res.Failures) >= budget:
		f := res.Failures[0]
		return res, fmt.Errorf("fault: failure budget (%d) exhausted with %d failure(s); first: trial %d %s (%+v)%s",
			budget, len(res.Failures), f.Trial, f.Outcome, f.Inj, errSuffix(f.Err))
	}
	return res, nil
}
