package fault

import "errors"

// The package's error-wrapping convention, consumed by service.Classify:
// every error a campaign can return is either *permanent* (re-running the
// same configuration will fail the same way — the simulator is
// deterministic) or *transient* (an environmental problem a retry can
// outlive). Permanent campaign errors wrap ErrInvalidConfig; checkpoint
// files whose bytes cannot be trusted wrap ErrCheckpointCorrupt, which the
// engine itself treats as "restart fresh", never as fatal.

// ErrInvalidConfig marks a campaign failure no retry can fix: a sampler
// that cannot fork per-trial streams, adversary knobs outside their
// domain, a golden run that crashes, or a checkpoint written by a
// different campaign. Callers (the campaign service's retry supervisor)
// test with errors.Is and fail such jobs fast instead of burning retry
// attempts.
var ErrInvalidConfig = errors.New("fault: campaign configuration can never succeed")

// ErrShardInvalid marks a shard result that fails validation against the
// campaign it claims to belong to: a broken checksum, a golden-run
// fingerprint from a different program or simulator configuration, trial
// indices outside the campaign, or recorded injections that contradict
// the deterministic per-trial plan. A coordinator treats the submitting
// worker as untrustworthy (quarantine) and re-runs the range elsewhere.
var ErrShardInvalid = errors.New("fault: shard result failed validation")

// ErrShardMismatch marks a duplicate shard completion whose records
// disagree with records already committed for the same trials — two
// executions of a deterministic campaign produced different bytes, so at
// least one executor is broken. The coordinator resolves it
// deterministically: quarantine the later submitter, revoke the range,
// and re-run it.
var ErrShardMismatch = errors.New("fault: shard result contradicts committed records")

// ErrCheckpointCorrupt marks a checkpoint file whose bytes are not a
// syntactically valid checkpoint — truncated JSON from a torn pre-atomic
// write, garbage, or records that contradict the deterministic per-trial
// plan. It is deliberately distinct from the ErrInvalidConfig fingerprint
// mismatch: a corrupt file carries no usable progress and is safe to
// overwrite (CampaignContext restarts fresh with a warning), while a
// fingerprint mismatch means the file belongs to a *different* campaign
// whose progress must not be clobbered.
var ErrCheckpointCorrupt = errors.New("fault: checkpoint corrupt")
