package fault

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestQuickFuzzNoSDC is the strongest end-to-end property in the suite:
// for random structured programs, random optimization subsets, random
// hardware configurations, and random single-bit strikes, the pipeline
// must never produce silent data corruption. Every counterexample this
// test has found became a named regression elsewhere.
func TestQuickFuzzNoSDC(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0xfa07))
		f := workload.Fuzz(seed)

		scheme := core.Turnstile
		opt := core.Options{Scheme: core.Turnstile, SBSize: 4}
		wcdl := 5 + rng.Intn(30)
		cfg := pipeline.TurnstileConfig(4, wcdl)
		if rng.Intn(2) == 0 {
			scheme = core.Turnpike
			opt = core.Options{
				Scheme: core.Turnpike, SBSize: 4,
				StoreAwareRA: rng.Intn(2) == 0,
				LIVM:         rng.Intn(2) == 0,
				Prune:        rng.Intn(2) == 0,
				Sink:         rng.Intn(2) == 0,
				Sched:        rng.Intn(2) == 0,
				ColoredCkpts: true,
			}
			cfg = pipeline.TurnpikeConfig(4, wcdl)
			if rng.Intn(3) == 0 {
				cfg.CLQ = pipeline.CLQIdeal
			}
		}
		_ = scheme

		compiled, err := core.Compile(f, opt)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		seedMem := func(m *isa.Memory) { workload.FuzzSeedMemory(m, seed) }

		golden, _, err := run(context.Background(), compiled.Prog, Config{Sim: cfg}, seedMem, nil)
		if err != nil {
			t.Logf("seed %d: golden: %v", seed, err)
			return false
		}
		for trial := 0; trial < 4; trial++ {
			inj := Injection{
				Reg:     isa.Reg(1 + rng.Intn(isa.NumRegs-1)),
				Bit:     uint(rng.Intn(64)),
				AtInst:  uint64(rng.Intn(600) + 1),
				Latency: 1 + rng.Intn(wcdl),
			}
			mem, _, err := run(context.Background(), compiled.Prog, Config{Sim: cfg}, seedMem, &inj)
			if err != nil {
				t.Logf("seed %d trial %d (%+v): crash: %v", seed, trial, inj, err)
				return false
			}
			if !golden.Equal(mem) {
				t.Logf("seed %d trial %d (%+v): SDC:\n%s", seed, trial, inj, golden.Diff(mem, 8))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(987654))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
