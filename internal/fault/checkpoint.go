package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"reflect"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// campaignCheckpoint is the on-disk resume state: a fingerprint binding
// the file to one exact campaign (seed, trial count, resolved injection
// window, and the golden run's cycle/instruction counts, which pin the
// program, its inputs, and the simulator config), plus every completed
// trial. The file is rewritten in full through obs.WriteFileAtomic, so an
// interrupted campaign never leaves a torn checkpoint behind.
type campaignCheckpoint struct {
	Version       int           `json:"version"`
	Seed          int64         `json:"seed"`
	Trials        int           `json:"trials"`
	MaxInjectInst uint64        `json:"max_inject_inst"`
	GoldenCycles  uint64        `json:"golden_cycles"`
	GoldenInsts   uint64        `json:"golden_insts"`
	Adversary     *Adversary    `json:"adversary,omitempty"`
	Done          []TrialRecord `json:"done"`
}

// Version 2: injections gained burst/false-positive plans and the
// fingerprint gained the adversary, so v1 files no longer resume.
const checkpointVersion = 2

// save rewrites the checkpoint file with every completed trial, in trial
// order. Callers serialize saves (the campaign holds its merge mutex or
// has joined all workers).
func (e *engine) save(records []*TrialRecord, goldenStats pipeline.Stats) error {
	ck := campaignCheckpoint{
		Version:       checkpointVersion,
		Seed:          e.cfg.Seed,
		Trials:        e.cfg.Trials,
		MaxInjectInst: e.maxAt,
		GoldenCycles:  goldenStats.Cycles,
		GoldenInsts:   goldenStats.Insts,
		Adversary:     e.cfg.Adversary,
	}
	for _, rec := range records {
		if rec != nil {
			ck.Done = append(ck.Done, *rec)
		}
	}
	return obs.WriteFileAtomic(e.cfg.Checkpoint, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(ck)
	})
}

// restore loads the checkpoint file, if any, into records. A missing file
// is a fresh campaign. Bytes that do not parse as a checkpoint, or records
// that contradict the deterministic per-trial plan, wrap
// ErrCheckpointCorrupt (the caller restarts fresh); a syntactically valid
// file whose fingerprint does not match this campaign wraps
// ErrInvalidConfig, because it records a *different* campaign's progress
// and must not be silently overwritten.
func (e *engine) restore(records []*TrialRecord, goldenStats pipeline.Stats) error {
	b, err := os.ReadFile(e.cfg.Checkpoint)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fault: checkpoint: %w", err)
	}
	var ck campaignCheckpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, e.cfg.Checkpoint, err)
	}
	if ck.Version != checkpointVersion || ck.Seed != e.cfg.Seed || ck.Trials != e.cfg.Trials ||
		ck.MaxInjectInst != e.maxAt ||
		ck.GoldenCycles != goldenStats.Cycles || ck.GoldenInsts != goldenStats.Insts ||
		!reflect.DeepEqual(ck.Adversary, e.cfg.Adversary) {
		return fmt.Errorf("%w: checkpoint %s was written by a different campaign (seed, trials, workload, or simulator config changed) — delete it to start over",
			ErrInvalidConfig, e.cfg.Checkpoint)
	}
	var sc planScratch // one reseeded sampler fork validates every record
	for i := range ck.Done {
		rec := ck.Done[i]
		if rec.Trial < 0 || rec.Trial >= len(records) {
			return fmt.Errorf("%w: %s: trial %d out of range", ErrCheckpointCorrupt, e.cfg.Checkpoint, rec.Trial)
		}
		if got := e.planWith(rec.Trial, &sc); !reflect.DeepEqual(got, rec.Inj) {
			return fmt.Errorf("%w: %s: trial %d recorded injection %+v does not match the plan %+v",
				ErrCheckpointCorrupt, e.cfg.Checkpoint, rec.Trial, rec.Inj, got)
		}
		records[rec.Trial] = &rec
	}
	return nil
}
