package experiment

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/sensor"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 4: checkpoint ratio vs store buffer size (40 vs 4 entries).
// ---------------------------------------------------------------------------

// Fig4Result holds the dynamic checkpoint fraction per benchmark and SB.
type Fig4Result struct {
	// Ratio[sb][bench] = dynamic CKPT instructions / total instructions.
	Ratio map[int]map[string]float64
	Table Table
}

// Fig4 reproduces Figure 4: eager checkpointing under Turnstile-style
// partitioning, with 40-entry versus 4-entry store buffers.
func Fig4(r *Runner) (*Fig4Result, error) {
	res := &Fig4Result{Ratio: map[int]map[string]float64{4: {}, 40: {}}}
	for _, sb := range []int{40, 4} {
		for _, b := range sortedBenchNames() {
			total, stores, err := r.dynamicCounts(b, core.Options{Scheme: core.Turnstile, SBSize: sb})
			if err != nil {
				return nil, err
			}
			res.Ratio[sb][b] = float64(stores[isa.StoreCheckpoint]) / float64(total)
		}
	}
	t := Table{
		Title:  "Figure 4: ratio of checkpoints to dynamic instructions (Turnstile partitioning)",
		Header: []string{"group", "40-entry SB", "4-entry SB"},
	}
	for _, g := range bySuite(res.Ratio[40]) {
		g4 := 0.0
		for _, x := range bySuite(res.Ratio[4]) {
			if x.Suite == g.Suite {
				g4 = x.Geo
			}
		}
		t.Rows = append(t.Rows, []string{g.Suite, fmtPct(100 * g.Geo), fmtPct(100 * g4)})
	}
	t.Notes = append(t.Notes, "paper: ~4.1% at SB=40 rising to ~15% at SB=4 (arith. mean of SPEC)")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 14/15: ideal vs compact CLQ (hardware fast release only).
// ---------------------------------------------------------------------------

// Fig14Result compares run-time overhead under the two CLQ designs with
// only the hardware optimizations enabled (no compiler passes), per the
// paper's Fig. 14 protocol.
type Fig14Result struct {
	Ideal, Compact map[string]float64 // normalized exec time per benchmark
	Table          Table
}

func fastReleaseOnlyOpts(sb int) core.Options {
	// "only enable WAR-free checking and hardware coloring to exclude the
	// impacts of Turnpike compiler optimizations" (Fig. 14's caption):
	// the binary is the Turnstile compilation — SB-sized regions, eager
	// checkpointing, no compiler passes — and only the hardware differs.
	return core.Options{Scheme: core.Turnstile, SBSize: sb}
}

// Fig14 reproduces Figure 14.
func Fig14(r *Runner, wcdl int) (*Fig14Result, error) {
	res := &Fig14Result{Ideal: map[string]float64{}, Compact: map[string]float64{}}
	opts := fastReleaseOnlyOpts(4)
	var mu sync.Mutex
	if err := parallelBenches(func(b string) error {
		cfgC := pipeline.TurnpikeConfig(4, wcdl)
		cfgI := cfgC
		cfgI.CLQ = pipeline.CLQIdeal
		oc, err := r.Overhead(b, opts, cfgC)
		if err != nil {
			return err
		}
		oi, err := r.Overhead(b, opts, cfgI)
		if err != nil {
			return err
		}
		mu.Lock()
		res.Compact[b], res.Ideal[b] = oc, oi
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 14: normalized exec time, ideal vs compact CLQ (WCDL=%d, HW fast release only)", wcdl),
		Header: []string{"benchmark", "ideal CLQ", "compact CLQ"},
	}
	for _, b := range sortedBenchNames() {
		t.Rows = append(t.Rows, []string{b, fmtRatio(res.Ideal[b]), fmtRatio(res.Compact[b])})
	}
	for _, g := range bySuite(res.Ideal) {
		gc := 0.0
		for _, x := range bySuite(res.Compact) {
			if x.Suite == g.Suite {
				gc = x.Geo
			}
		}
		t.Rows = append(t.Rows, []string{"geomean(" + g.Suite + ")", fmtRatio(g.Geo), fmtRatio(gc)})
	}
	t.Notes = append(t.Notes, "paper: compact CLQ within ~3% of the infinite ideal CLQ")
	res.Table = t
	return res, nil
}

// Fig15Result compares the detected WAR-free store fraction.
type Fig15Result struct {
	Ideal, Compact map[string]float64 // WAR-free released / all stores
	Table          Table
}

// Fig15 reproduces Figure 15.
func Fig15(r *Runner, wcdl int) (*Fig15Result, error) {
	res := &Fig15Result{Ideal: map[string]float64{}, Compact: map[string]float64{}}
	opts := fastReleaseOnlyOpts(4)
	var mu sync.Mutex
	if err := parallelBenches(func(b string) error {
		cfgC := pipeline.TurnpikeConfig(4, wcdl)
		cfgI := cfgC
		cfgI.CLQ = pipeline.CLQIdeal
		for _, v := range []struct {
			cfg pipeline.Config
			dst map[string]float64
		}{{cfgC, res.Compact}, {cfgI, res.Ideal}} {
			st, err := r.Run(b, opts, v.cfg)
			if err != nil {
				return err
			}
			ratio := 0.0
			if all := st.ProgStores + st.SpillStores + st.CkptStores; all > 0 {
				ratio = float64(st.WARFreeReleased) / float64(all)
			}
			mu.Lock()
			v.dst[b] = ratio
			mu.Unlock()
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 15: WAR-free stores detected / all stores (WCDL=%d)", wcdl),
		Header: []string{"benchmark", "ideal CLQ", "compact CLQ"},
	}
	for _, b := range sortedBenchNames() {
		t.Rows = append(t.Rows, []string{b, fmtPct(100 * res.Ideal[b]), fmtPct(100 * res.Compact[b])})
	}
	t.Notes = append(t.Notes, "paper: ideal detects ~10.6pp more WAR-free stores than compact")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 18: sensor count vs detection latency.
// ---------------------------------------------------------------------------

// Fig18Result holds detection latency curves per clock frequency.
type Fig18Result struct {
	// Latency[ghzTimes10][sensors] in cycles.
	Latency map[int]map[int]int
	Table   Table
}

// Fig18 reproduces Figure 18 for 2.0/2.5/3.0 GHz on a 1mm² die.
func Fig18() *Fig18Result {
	sensorsAxis := []int{10, 20, 30, 50, 100, 200, 300, 500}
	clocks := []float64{2.0, 2.5, 3.0}
	res := &Fig18Result{Latency: map[int]map[int]int{}}
	t := Table{
		Title:  "Figure 18: worst-case detection latency vs deployed sensors (1mm² die)",
		Header: []string{"sensors", "2.0GHz", "2.5GHz", "3.0GHz"},
	}
	for _, n := range sensorsAxis {
		row := []string{fmt.Sprintf("%d", n)}
		for _, g := range clocks {
			m := sensor.Model{Sensors: n, DieAreaMM2: 1.0, ClockGHz: g}
			w := m.WCDL()
			k := int(g * 10)
			if res.Latency[k] == nil {
				res.Latency[k] = map[int]int{}
			}
			res.Latency[k][n] = w
			row = append(row, fmt.Sprintf("%d", w))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper operating points: 300 sensors ≈ 10 cycles, 30 sensors ≈ 30 cycles at 2.5GHz")
	res.Table = t
	return res
}

// ---------------------------------------------------------------------------
// Figures 19/20: overhead across WCDL for Turnpike and Turnstile.
// ---------------------------------------------------------------------------

// WCDLSweepResult holds the per-benchmark normalized execution times for a
// scheme across WCDL values.
type WCDLSweepResult struct {
	Scheme   core.Scheme
	WCDLs    []int
	Overhead map[int]map[string]float64 // wcdl -> bench -> normalized time
	Table    Table
}

// wcdlSweep runs one scheme over the WCDL axis.
func wcdlSweep(r *Runner, scheme core.Scheme, wcdls []int) (*WCDLSweepResult, error) {
	res := &WCDLSweepResult{Scheme: scheme, WCDLs: wcdls, Overhead: map[int]map[string]float64{}}
	var opt core.Options
	if scheme == core.Turnpike {
		opt = core.TurnpikeAll(4)
	} else {
		opt = core.Options{Scheme: core.Turnstile, SBSize: 4}
	}
	var mu sync.Mutex
	for _, w := range wcdls {
		w := w
		res.Overhead[w] = map[string]float64{}
		cfg := pipeline.TurnstileConfig(4, w)
		if scheme == core.Turnpike {
			cfg = pipeline.TurnpikeConfig(4, w)
		}
		if err := parallelBenches(func(b string) error {
			o, err := r.Overhead(b, opt, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			res.Overhead[w][b] = o
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	fig := "Figure 19: Turnpike"
	if scheme == core.Turnstile {
		fig = "Figure 20: Turnstile"
	}
	t := Table{
		Title:  fmt.Sprintf("%s normalized exec time, WCDL 10..50 (SB=4)", fig),
		Header: append([]string{"benchmark"}, dlHeaders(wcdls)...),
	}
	for _, b := range sortedBenchNames() {
		row := []string{b}
		for _, w := range wcdls {
			row = append(row, fmtRatio(res.Overhead[w][b]))
		}
		t.Rows = append(t.Rows, row)
	}
	// Per-suite and overall geomeans.
	for _, suite := range append(append([]string{}, suiteOrder...), "all") {
		row := []string{"geomean(" + suite + ")"}
		for _, w := range wcdls {
			for _, g := range bySuite(res.Overhead[w]) {
				if g.Suite == suite {
					row = append(row, fmtRatio(g.Geo))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	res.Table = t
	return res, nil
}

// Fig19 reproduces Figure 19 (Turnpike with all optimizations).
func Fig19(r *Runner) (*WCDLSweepResult, error) {
	res, err := wcdlSweep(r, core.Turnpike, []int{10, 20, 30, 40, 50})
	if err == nil {
		res.Table.Notes = append(res.Table.Notes, "paper: 0–14% average overhead across WCDL 10–50")
	}
	return res, err
}

// Fig20 reproduces Figure 20 (Turnstile).
func Fig20(r *Runner) (*WCDLSweepResult, error) {
	res, err := wcdlSweep(r, core.Turnstile, []int{10, 20, 30, 40, 50})
	if err == nil {
		res.Table.Notes = append(res.Table.Notes, "paper: 29–84% average overhead across WCDL 10–50")
	}
	return res, err
}

func dlHeaders(wcdls []int) []string {
	out := make([]string, len(wcdls))
	for i, w := range wcdls {
		out[i] = fmt.Sprintf("DL%d", w)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 21: cumulative optimization breakdown at WCDL=10.
// ---------------------------------------------------------------------------

// Fig21Config names one ablation point in the paper's order.
type Fig21Config struct {
	Name string
	Opt  core.Options
	Cfg  pipeline.Config
}

// Fig21Configs returns the 8 evaluated configurations. The first three use
// the Turnstile compilation (the hardware-only steps exclude compiler
// optimizations, as in Figs. 14/21); from "Fast Release + Pruning" onward
// the Turnpike compilation applies, with colored checkpoints excluded from
// the region store budget since the coloring hardware is present.
func Fig21Configs(sb, wcdl int) []Fig21Config {
	ts := pipeline.TurnstileConfig(sb, wcdl)
	war := ts
	war.WARFreeRelease = true
	war.CLQ = pipeline.CLQCompact
	war.CLQSize = 2
	fast := war
	fast.HWColoring = true
	tsOpts := core.Options{Scheme: core.Turnstile, SBSize: sb}
	withPrune := core.Options{Scheme: core.Turnpike, SBSize: sb, ColoredCkpts: true, Prune: true}
	withLICM := withPrune
	withLICM.Sink = true
	withSched := withLICM
	withSched.Sched = true
	withRA := withSched
	withRA.StoreAwareRA = true
	all := core.TurnpikeAll(sb)
	return []Fig21Config{
		{"Turnstile", tsOpts, ts},
		{"WAR-free Checking", tsOpts, war},
		{"Fast Release (WAR-free + HW coloring)", tsOpts, fast},
		{"Fast Release + Pruning", withPrune, fast},
		{"Fast Release + Pruning + LICM", withLICM, fast},
		{"Fast Release + Pruning + LICM + Inst Sched", withSched, fast},
		{"Fast Release + Pruning + LICM + Inst Sched + RA Trick", withRA, fast},
		{"Turnpike (all, + LIVM)", all, fast},
	}
}

// Fig21Result holds the ablation overheads.
type Fig21Result struct {
	Configs  []string
	Overhead map[string]map[string]float64 // config -> bench -> overhead
	Table    Table
}

// Fig21 reproduces Figure 21.
func Fig21(r *Runner, wcdl int) (*Fig21Result, error) {
	cfgs := Fig21Configs(4, wcdl)
	res := &Fig21Result{Overhead: map[string]map[string]float64{}}
	var mu sync.Mutex
	for _, c := range cfgs {
		c := c
		res.Configs = append(res.Configs, c.Name)
		res.Overhead[c.Name] = map[string]float64{}
		if err := parallelBenches(func(b string) error {
			o, err := r.Overhead(b, c.Opt, c.Cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			res.Overhead[c.Name][b] = o
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 21: optimization breakdown, normalized exec time (WCDL=%d, SB=4)", wcdl),
		Header: []string{"configuration", "geo(2006)", "geo(2017)", "geo(splash3)", "geo(all)"},
	}
	for _, c := range cfgs {
		row := []string{c.Name}
		for _, g := range bySuite(res.Overhead[c.Name]) {
			row = append(row, fmtRatio(g.Geo))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper sequence (geomean overhead): 29% → 25% → 22% → 12% → 10% → 7% → 2% → 0%")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 22: store-buffer size sensitivity.
// ---------------------------------------------------------------------------

// Fig22Result holds overheads for both schemes over SB sizes.
type Fig22Result struct {
	Turnstile map[int]map[string]float64 // sb -> bench -> overhead
	Turnpike  map[int]map[string]float64
	Table     Table
}

// Fig22 reproduces Figure 22 at the given WCDL: Turnstile at SB
// 8/10/20/30/40 and Turnpike at SB 4/8/10.
func Fig22(r *Runner, wcdl int) (*Fig22Result, error) {
	res := &Fig22Result{Turnstile: map[int]map[string]float64{}, Turnpike: map[int]map[string]float64{}}
	var mu sync.Mutex
	for _, sb := range []int{4, 8, 10, 20, 30, 40} {
		sb := sb
		res.Turnstile[sb] = map[string]float64{}
		if err := parallelBenches(func(b string) error {
			o, err := r.Overhead(b, core.Options{Scheme: core.Turnstile, SBSize: sb}, pipeline.TurnstileConfig(sb, wcdl))
			if err != nil {
				return err
			}
			mu.Lock()
			res.Turnstile[sb][b] = o
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	for _, sb := range []int{4, 8, 10} {
		sb := sb
		res.Turnpike[sb] = map[string]float64{}
		if err := parallelBenches(func(b string) error {
			o, err := r.Overhead(b, core.TurnpikeAll(sb), pipeline.TurnpikeConfig(sb, wcdl))
			if err != nil {
				return err
			}
			mu.Lock()
			res.Turnpike[sb][b] = o
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 22: normalized exec time vs store buffer size (WCDL=%d)", wcdl),
		Header: []string{"scheme/SB", "geo(2006)", "geo(2017)", "geo(splash3)", "geo(all)"},
	}
	for _, sb := range []int{4, 8, 10} {
		row := []string{fmt.Sprintf("Turnpike (SB-%d)", sb)}
		for _, g := range bySuite(res.Turnpike[sb]) {
			row = append(row, fmtRatio(g.Geo))
		}
		t.Rows = append(t.Rows, row)
	}
	for _, sb := range []int{4, 8, 10, 20, 30, 40} {
		row := []string{fmt.Sprintf("Turnstile (SB-%d)", sb)}
		for _, g := range bySuite(res.Turnstile[sb]) {
			row = append(row, fmtRatio(g.Geo))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: Turnstile 20%/18%/13%/11%/9% at SB 8/10/20/30/40; even SB-40 Turnstile loses to SB-4 Turnpike")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 23: store breakdown.
// ---------------------------------------------------------------------------

// Fig23Categories in the paper's legend order.
var Fig23Categories = []string{
	"Pruned", "LICM-eliminated", "Colored", "WAR-free store",
	"RA-eliminated", "IndVarMerging-eliminated", "Others",
}

// Fig23Result maps bench -> category -> fraction of all stores.
type Fig23Result struct {
	Breakdown map[string]map[string]float64
	Table     Table
}

// Fig23 reproduces Figure 23 by differencing dynamic store counts across
// compiler ablations (for the eliminated categories) and reading simulator
// counters (for the released categories). The denominator is the store
// count of the unoptimized Turnpike compilation, matching the paper's
// "ratio of stores".
func Fig23(r *Runner, wcdl int) (*Fig23Result, error) {
	res := &Fig23Result{Breakdown: map[string]map[string]float64{}}
	for _, b := range sortedBenchNames() {
		// The chain holds the partitioning strategy fixed (colored
		// checkpoints excluded from the store budget, as on the Turnpike
		// core) and turns the store-removing optimizations on one at a
		// time, so each difference isolates one category.
		base := core.Options{Scheme: core.Turnpike, SBSize: 4, ColoredCkpts: true}
		withPrune := base
		withPrune.Prune = true
		withSink := withPrune
		withSink.Sink = true
		withRA := withSink
		withRA.StoreAwareRA = true
		all := core.TurnpikeAll(4)

		count := func(o core.Options) (uint64, error) {
			_, stores, err := r.dynamicCounts(b, o)
			if err != nil {
				return 0, err
			}
			return stores[isa.StoreProgram] + stores[isa.StoreSpill] + stores[isa.StoreCheckpoint], nil
		}
		s0, err := count(base)
		if err != nil {
			return nil, err
		}
		s1, err := count(withPrune)
		if err != nil {
			return nil, err
		}
		s2, err := count(withSink)
		if err != nil {
			return nil, err
		}
		s3, err := count(withRA)
		if err != nil {
			return nil, err
		}
		s4, err := count(all)
		if err != nil {
			return nil, err
		}
		st, err := r.Run(b, all, pipeline.TurnpikeConfig(4, wcdl))
		if err != nil {
			return nil, err
		}
		den := float64(s0)
		diff := func(hi, lo uint64) float64 {
			if hi <= lo {
				return 0
			}
			return float64(hi-lo) / den
		}
		bd := map[string]float64{
			"Pruned":                   diff(s0, s1),
			"LICM-eliminated":          diff(s1, s2),
			"RA-eliminated":            diff(s2, s3),
			"IndVarMerging-eliminated": diff(s3, s4),
			"Colored":                  float64(st.ColoredReleased) / den,
			"WAR-free store":           float64(st.WARFreeReleased) / den,
		}
		oth := 1.0
		for _, v := range bd {
			oth -= v
		}
		if oth < 0 {
			oth = 0
		}
		bd["Others"] = oth
		res.Breakdown[b] = bd
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 23: store breakdown (WCDL=%d, 2-entry CLQ)", wcdl),
		Header: append([]string{"benchmark"}, Fig23Categories...),
	}
	for _, b := range sortedBenchNames() {
		row := []string{b}
		for _, c := range Fig23Categories {
			row = append(row, fmtPct(100*res.Breakdown[b][c]))
		}
		t.Rows = append(t.Rows, row)
	}
	// Arithmetic means (the paper uses arith means in Fig. 23).
	mean := []string{"arithmean(all)"}
	for _, c := range Fig23Categories {
		var xs []float64
		for _, b := range sortedBenchNames() {
			xs = append(xs, res.Breakdown[b][c])
		}
		mean = append(mean, fmtPct(100*Mean(xs)))
	}
	t.Rows = append(t.Rows, mean)
	t.Notes = append(t.Notes,
		"paper: pruning removes ~21% of stores, LICM ~1.4%, RA ~1.7%, LIVM ~5%; ~39% released without quarantine")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 24/25: CLQ occupancy and size sensitivity.
// ---------------------------------------------------------------------------

// Fig24Result holds CLQ occupancy per benchmark.
type Fig24Result struct {
	Avg, Max map[string]float64
	Table    Table
}

// Fig24 reproduces Figure 24 (populated CLQ entries; simulated with a
// 4-entry CLQ so the observable maximum is not clipped by the default 2).
func Fig24(r *Runner, wcdl int) (*Fig24Result, error) {
	res := &Fig24Result{Avg: map[string]float64{}, Max: map[string]float64{}}
	opt := core.TurnpikeAll(4)
	cfg := pipeline.TurnpikeConfig(4, wcdl)
	cfg.CLQSize = 4
	for _, b := range sortedBenchNames() {
		st, err := r.Run(b, opt, cfg)
		if err != nil {
			return nil, err
		}
		res.Avg[b] = st.AvgCLQOccupancy()
		res.Max[b] = float64(st.CLQOccMax)
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 24: dynamic CLQ entries populated (WCDL=%d)", wcdl),
		Header: []string{"benchmark", "average", "maximum"},
	}
	for _, b := range sortedBenchNames() {
		t.Rows = append(t.Rows, []string{b, fmt.Sprintf("%.2f", res.Avg[b]), fmt.Sprintf("%.0f", res.Max[b])})
	}
	var avgs []float64
	for _, b := range sortedBenchNames() {
		avgs = append(avgs, res.Avg[b])
	}
	t.Rows = append(t.Rows, []string{"mean(all)", fmt.Sprintf("%.2f", Mean(avgs)), ""})
	t.Notes = append(t.Notes, "paper: average ≈1 populated entry; maxima of 3–4 on a few benchmarks")
	res.Table = t
	return res, nil
}

// Fig25Result compares CLQ-2 against CLQ-4.
type Fig25Result struct {
	CLQ2, CLQ4 map[string]float64
	Table      Table
}

// Fig25 reproduces Figure 25.
func Fig25(r *Runner, wcdl int) (*Fig25Result, error) {
	res := &Fig25Result{CLQ2: map[string]float64{}, CLQ4: map[string]float64{}}
	opt := core.TurnpikeAll(4)
	for _, b := range sortedBenchNames() {
		c2 := pipeline.TurnpikeConfig(4, wcdl)
		c4 := c2
		c4.CLQSize = 4
		o2, err := r.Overhead(b, opt, c2)
		if err != nil {
			return nil, err
		}
		o4, err := r.Overhead(b, opt, c4)
		if err != nil {
			return nil, err
		}
		res.CLQ2[b], res.CLQ4[b] = o2, o4
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 25: 2-entry vs 4-entry CLQ, normalized exec time (WCDL=%d)", wcdl),
		Header: []string{"benchmark", "CLQ-2", "CLQ-4"},
	}
	for _, b := range sortedBenchNames() {
		t.Rows = append(t.Rows, []string{b, fmtRatio(res.CLQ2[b]), fmtRatio(res.CLQ4[b])})
	}
	for _, g := range bySuite(res.CLQ2) {
		g4 := 0.0
		for _, x := range bySuite(res.CLQ4) {
			if x.Suite == g.Suite {
				g4 = x.Geo
			}
		}
		t.Rows = append(t.Rows, []string{"geomean(" + g.Suite + ")", fmtRatio(g.Geo), fmtRatio(g4)})
	}
	t.Notes = append(t.Notes, "paper: CLQ-2 performs essentially the same as CLQ-4")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 26: region size and code growth.
// ---------------------------------------------------------------------------

// Fig26Result holds region/code-size statistics per benchmark.
type Fig26Result struct {
	RegionSize map[string]float64 // dynamic instructions per region
	CodeGrowth map[string]float64 // static body growth vs baseline, percent
	Table      Table
}

// Fig26 reproduces Figure 26. Code growth counts the resilient program
// body (boundaries + checkpoints) against the baseline body; the paper's
// binary-size metric likewise excludes cold recovery code, which lives out
// of line (EXPERIMENTS.md discusses the accounting).
func Fig26(r *Runner, wcdl int) (*Fig26Result, error) {
	res := &Fig26Result{RegionSize: map[string]float64{}, CodeGrowth: map[string]float64{}}
	for _, b := range sortedBenchNames() {
		st, err := r.Run(b, core.TurnpikeAll(4), pipeline.TurnpikeConfig(4, wcdl))
		if err != nil {
			return nil, err
		}
		if st.RegionsExecuted > 0 {
			res.RegionSize[b] = float64(st.Insts) / float64(st.RegionsExecuted)
		}
		tp, err := r.Compile(b, core.TurnpikeAll(4))
		if err != nil {
			return nil, err
		}
		base, err := r.Compile(b, core.Options{Scheme: core.Baseline, SBSize: 4})
		if err != nil {
			return nil, err
		}
		// BOUNDs are metadata, not instructions; exclude them from the
		// binary-growth metric (the paper's boundaries add no code).
		body := tp.Stats.InstrCount - tp.Stats.Regions
		res.CodeGrowth[b] = 100 * (float64(body)/float64(base.Stats.InstrCount) - 1)
	}
	t := Table{
		Title:  "Figure 26: average region size (dynamic insts) and code growth",
		Header: []string{"benchmark", "insts/region", "code growth"},
	}
	for _, b := range sortedBenchNames() {
		t.Rows = append(t.Rows, []string{b,
			fmt.Sprintf("%.1f", res.RegionSize[b]), fmtPct(res.CodeGrowth[b])})
	}
	var sizes []float64
	for _, b := range sortedBenchNames() {
		sizes = append(sizes, res.RegionSize[b])
	}
	t.Rows = append(t.Rows, []string{"mean(all)", fmt.Sprintf("%.1f", Mean(sizes)), ""})
	t.Notes = append(t.Notes, "paper: ~11.2 instructions per region; ~0.4% geomean code growth")
	res.Table = t
	return res, nil
}

// ---------------------------------------------------------------------------
// Workload characterization (the benchmark-suite table).
// ---------------------------------------------------------------------------

// WorkloadTable characterizes the 36 kernels at the runner's scale — the
// "benchmark characteristics" table evaluations publish beside their
// workload list, and the ground truth for the substitution argument in
// DESIGN.md (store density, WAR fraction, branchiness, footprint).
func WorkloadTable(scalePct int) (Table, error) {
	cs, err := workload.CharacterizeAll(scalePct)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title: "Workload characterization (synthetic stand-ins for SPEC/SPLASH)",
		Header: []string{"benchmark", "suite", "template", "dyn insts",
			"loads", "stores", "branches", "WAR stores", "footprint"},
	}
	for _, c := range cs {
		t.Rows = append(t.Rows, []string{
			c.Name, c.Suite, c.Tmpl.String(),
			fmt.Sprintf("%d", c.DynamicInsts),
			fmtPct(c.LoadPct), fmtPct(c.StorePct), fmtPct(c.BranchPct),
			fmtPct(c.WARPct),
			fmt.Sprintf("%dKiB", c.FootprintBytes/1024),
		})
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Per-run dynamic energy (extension of Table 1).
// ---------------------------------------------------------------------------

// EnergyTable estimates each scheme's co-design dynamic energy overhead on
// a benchmark subset, combining the Table 1 analytical model with the
// simulator's event counts (hwcost.RunEnergy).
func EnergyTable(r *Runner, wcdl int) (Table, error) {
	m := hwcost.Default22nm()
	t := Table{
		Title:  fmt.Sprintf("Dynamic energy of co-design structures (WCDL=%d; extension of Table 1)", wcdl),
		Header: []string{"benchmark", "baseline pJ", "turnstile pJ (+%)", "turnpike pJ (+%)"},
	}
	for _, bench := range []string{"gcc", "lbm", "mcf", "exchange2", "radix", "fft"} {
		base, err := r.Run(bench, core.Options{Scheme: core.Baseline, SBSize: 4}, pipeline.BaselineConfig(4))
		if err != nil {
			return Table{}, err
		}
		ts, err := r.Run(bench, core.Options{Scheme: core.Turnstile, SBSize: 4}, pipeline.TurnstileConfig(4, wcdl))
		if err != nil {
			return Table{}, err
		}
		tp, err := r.Run(bench, core.TurnpikeAll(4), pipeline.TurnpikeConfig(4, wcdl))
		if err != nil {
			return Table{}, err
		}
		eb := hwcost.EstimateRunEnergy(m, 4, 2, base)
		et := hwcost.EstimateRunEnergy(m, 4, 2, ts)
		ep := hwcost.EstimateRunEnergy(m, 4, 2, tp)
		t.Rows = append(t.Rows, []string{
			bench,
			fmt.Sprintf("%.1f", eb.TotalPJ()),
			fmt.Sprintf("%.1f (%+.0f%%)", et.TotalPJ(), 100*hwcost.OverheadVsBaseline(m, 4, 2, ts, base)),
			fmt.Sprintf("%.1f (%+.0f%%)", ep.TotalPJ(), 100*hwcost.OverheadVsBaseline(m, 4, 2, tp, base)),
		})
	}
	t.Notes = append(t.Notes,
		"co-design RAM structures are minor; the overhead is dominated by checkpoint stores' SB traffic")
	return t, nil
}

// ---------------------------------------------------------------------------
// Table 1: hardware cost.
// ---------------------------------------------------------------------------

// Table1 reproduces the paper's Table 1 from the analytical CACTI-like
// model.
func Table1() Table {
	m := hwcost.Default22nm()
	t := Table{
		Title:  "Table 1: area and per-access energy (22nm analytical model)",
		Header: []string{"structure", "area (µm²)", "dynamic access (pJ)"},
	}
	for _, row := range hwcost.Table1(m) {
		t.Rows = append(t.Rows, []string{row.Name,
			fmt.Sprintf("%.2f", row.AreaUM2), fmt.Sprintf("%.5f", row.EnergyPJ)})
	}
	a, e, a40, e40 := hwcost.Ratios(m)
	t.Rows = append(t.Rows,
		[]string{"Turnpike in total / 4-entry SB", fmtPct(a), fmtPct(e)},
		[]string{"40-entry SB / 4-entry SB", fmtPct(a40), fmtPct(e40)})
	t.Notes = append(t.Notes, "paper: 9.8%/9.7% and 504%/497%")
	return t
}
