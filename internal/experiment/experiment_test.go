package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// testRunner uses a small scale so the full suite stays fast.
func testRunner() *Runner { return NewRunner(6) }

func TestGeomeanAndMean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("Geomean = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v", g)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := testRunner()
	opt := core.TurnpikeAll(4)
	cfg := pipeline.TurnpikeConfig(4, 10)
	a, err := r.Run("gcc", opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("gcc", opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cached run differs")
	}
	if len(r.simmed) != 1 {
		t.Fatalf("cache has %d entries", len(r.simmed))
	}
}

func TestFig18Shape(t *testing.T) {
	res := Fig18()
	w := res.Latency[25]
	if w[300] > w[30] {
		t.Fatalf("latency not decreasing with sensors: %v", w)
	}
	if w[300] < 8 || w[300] > 12 {
		t.Fatalf("300 sensors at 2.5GHz: %d cycles, want ~10", w[300])
	}
	if len(res.Table.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestHeadlineShape(t *testing.T) {
	// The paper's central result at small scale: baseline <= turnpike <
	// turnstile (geomean), and turnstile overhead grows with WCDL.
	r := testRunner()
	tp10, err := wcdlSweep(r, core.Turnpike, []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	ts10, err := wcdlSweep(r, core.Turnstile, []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	geo := func(m map[string]float64) float64 {
		var xs []float64
		for _, v := range m {
			xs = append(xs, v)
		}
		return Geomean(xs)
	}
	gTP10, gTP50 := geo(tp10.Overhead[10]), geo(tp10.Overhead[50])
	gTS10, gTS50 := geo(ts10.Overhead[10]), geo(ts10.Overhead[50])
	t.Logf("turnpike: DL10 %.3f DL50 %.3f ; turnstile: DL10 %.3f DL50 %.3f", gTP10, gTP50, gTS10, gTS50)
	if gTP10 >= gTS10 || gTP50 >= gTS50 {
		t.Fatalf("turnpike not faster than turnstile: tp=%.3f/%.3f ts=%.3f/%.3f", gTP10, gTP50, gTS10, gTS50)
	}
	if gTS50 <= gTS10 {
		t.Fatalf("turnstile overhead not increasing with WCDL: %.3f -> %.3f", gTS10, gTS50)
	}
	if gTP10 < 0.98 {
		t.Fatalf("turnpike faster than baseline?! %.3f", gTP10)
	}
}

func TestFig4Shape(t *testing.T) {
	r := testRunner()
	res, err := Fig4(r)
	if err != nil {
		t.Fatal(err)
	}
	// Bound placement differs between budgets, so per-benchmark ratios are
	// not strictly ordered; the aggregate must grow and most benchmarks
	// must follow (the paper's 4.1% -> 15% mean effect).
	grew := 0
	var all4, all40 []float64
	for _, b := range sortedBenchNames() {
		all4 = append(all4, res.Ratio[4][b])
		all40 = append(all40, res.Ratio[40][b])
		if res.Ratio[4][b] > res.Ratio[40][b] {
			grew++
		}
		if res.Ratio[4][b] < res.Ratio[40][b]*0.9 {
			t.Errorf("%s: SB4 ratio %.4f well below SB40 %.4f", b, res.Ratio[4][b], res.Ratio[40][b])
		}
	}
	if Mean(all4) <= Mean(all40) {
		t.Fatalf("mean checkpoint ratio did not grow: SB4=%.4f SB40=%.4f", Mean(all4), Mean(all40))
	}
	if grew < len(all4)/2 {
		t.Fatalf("only %d/%d benchmarks grew", grew, len(all4))
	}
}

func TestFig14Fig15Shape(t *testing.T) {
	r := testRunner()
	f14, err := Fig14(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	f15, err := Fig15(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sortedBenchNames() {
		if f14.Ideal[b] > f14.Compact[b]+1e-9 {
			t.Errorf("%s: ideal CLQ slower than compact (%.3f vs %.3f)", b, f14.Ideal[b], f14.Compact[b])
		}
		if f15.Ideal[b] < f15.Compact[b]-1e-9 {
			t.Errorf("%s: ideal CLQ detects fewer WAR-free stores", b)
		}
	}
}

func TestFig21Monotone(t *testing.T) {
	r := testRunner()
	res, err := Fig21(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	geo := func(name string) float64 {
		var xs []float64
		for _, v := range res.Overhead[name] {
			xs = append(xs, v)
		}
		return Geomean(xs)
	}
	first, last := geo(res.Configs[0]), geo(res.Configs[len(res.Configs)-1])
	t.Logf("turnstile %.3f -> turnpike %.3f", first, last)
	if last >= first {
		t.Fatalf("full turnpike (%.3f) not better than turnstile (%.3f)", last, first)
	}
	// Adding the fast-release hardware must not hurt.
	if geo(res.Configs[2]) > geo(res.Configs[0])+1e-9 {
		t.Fatalf("fast release made things worse: %.3f vs %.3f", geo(res.Configs[2]), geo(res.Configs[0]))
	}
}

func TestFig22Shape(t *testing.T) {
	r := testRunner()
	res, err := Fig22(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	geo := func(m map[string]float64) float64 {
		var xs []float64
		for _, v := range m {
			xs = append(xs, v)
		}
		return Geomean(xs)
	}
	// Turnstile improves with SB size.
	if geo(res.Turnstile[40]) > geo(res.Turnstile[4]) {
		t.Fatalf("turnstile SB-40 (%.3f) worse than SB-4 (%.3f)",
			geo(res.Turnstile[40]), geo(res.Turnstile[4]))
	}
	// SB-4 Turnpike beats SB-40 Turnstile (the paper's headline of Fig 22)
	// — allow a tiny tolerance at test scale.
	if geo(res.Turnpike[4]) > geo(res.Turnstile[40])+0.02 {
		t.Fatalf("turnpike SB-4 (%.3f) loses to turnstile SB-40 (%.3f)",
			geo(res.Turnpike[4]), geo(res.Turnstile[40]))
	}
}

func TestFig23SumsToOne(t *testing.T) {
	r := testRunner()
	res, err := Fig23(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sortedBenchNames() {
		sum := 0.0
		for _, c := range Fig23Categories {
			v := res.Breakdown[b][c]
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s/%s out of range: %v", b, c, v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: breakdown sums to %.3f", b, sum)
		}
	}
}

func TestFig24Fig25Shape(t *testing.T) {
	r := testRunner()
	f24, err := Fig24(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sortedBenchNames() {
		if f24.Max[b] > 4 {
			t.Errorf("%s: max CLQ occupancy %v > 4", b, f24.Max[b])
		}
		if f24.Avg[b] > f24.Max[b] {
			t.Errorf("%s: avg > max", b)
		}
	}
	f25, err := Fig25(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sortedBenchNames() {
		if f25.CLQ4[b] > f25.CLQ2[b]+1e-9 {
			t.Errorf("%s: CLQ-4 slower than CLQ-2", b)
		}
	}
}

func TestFig26Shape(t *testing.T) {
	r := testRunner()
	res, err := Fig26(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sortedBenchNames() {
		if res.RegionSize[b] < 2 || res.RegionSize[b] > 60 {
			t.Errorf("%s: region size %.1f implausible", b, res.RegionSize[b])
		}
		if res.CodeGrowth[b] < 0 {
			t.Errorf("%s: negative code growth %.2f%%", b, res.CodeGrowth[b])
		}
	}
}

func TestTable1Renders(t *testing.T) {
	tab := Table1()
	s := tab.Render()
	if len(tab.Rows) != 7 || len(s) == 0 {
		t.Fatalf("table 1 malformed: %d rows", len(tab.Rows))
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "x", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.Render()
	if s == "" {
		t.Fatal("empty render")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "b"}, Rows: [][]string{{"1", "x|y"}}, Notes: []string{"n"}}
	md := tab.RenderMarkdown()
	for _, frag := range []string{"### T", "| a | b |", "| --- | --- |", "x\\|y", "*n*"} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, md)
		}
	}
}
