// Package experiment regenerates every table and figure of the paper's
// evaluation (§6): run-time overheads across WCDLs and store-buffer sizes,
// the optimization-breakdown ablation, CLQ accuracy and occupancy, the
// store breakdown, sensor latency curves, region/code-size statistics, and
// the hardware cost table. Each FigNN function returns both typed series
// and a render-ready text table; cmd/experiments prints them all.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Runner compiles and simulates benchmarks with memoization, since many
// figures share configurations.
type Runner struct {
	// Scale is the workload iteration multiplier in percent (100 = the
	// profile's full trip count). Tests use small scales; cmd/experiments
	// and the benchmarks use larger ones.
	Scale int

	// Progress, when non-nil, is attached to every simulation the runner
	// starts, so a Sampler can publish live figures while a sweep is in
	// flight (cmd/experiments -serve). Cache hits do not re-publish.
	Progress *pipeline.Progress

	mu       sync.Mutex
	compiled map[string]*core.Compiled
	simmed   map[string]pipeline.Stats
}

// NewRunner returns a Runner at the given workload scale.
func NewRunner(scalePct int) *Runner {
	if scalePct <= 0 {
		scalePct = 25
	}
	return &Runner{
		Scale:    scalePct,
		compiled: map[string]*core.Compiled{},
		simmed:   map[string]pipeline.Stats{},
	}
}

func optKey(o core.Options) string {
	return fmt.Sprintf("%d|%d|%t%t%t%t%t%t", o.Scheme, o.SBSize,
		o.StoreAwareRA, o.LIVM, o.Prune, o.Sink, o.Sched, o.ColoredCkpts)
}

func cfgKey(c pipeline.Config) string {
	return fmt.Sprintf("%d|%d|%t|%t|%v%d|%t|%d|%d", c.SBSize, c.WCDL, c.Resilient,
		c.WARFreeRelease, c.CLQ, c.CLQSize, c.HWColoring, c.IssueWidth, c.RBBSize)
}

// Compile returns the (cached) compilation of bench under opt.
func (r *Runner) Compile(bench string, opt core.Options) (*core.Compiled, error) {
	key := bench + "\x00" + optKey(opt)
	r.mu.Lock()
	c, ok := r.compiled[key]
	r.mu.Unlock()
	if ok {
		return c, nil
	}
	p, found := workload.ByName(bench)
	if !found {
		return nil, fmt.Errorf("experiment: unknown benchmark %q", bench)
	}
	f := p.Build(r.Scale)
	c, err := core.Compile(f, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: compile %s: %w", bench, err)
	}
	r.mu.Lock()
	r.compiled[key] = c
	r.mu.Unlock()
	return c, nil
}

// Run returns the (cached) simulation statistics of bench compiled under
// opt and simulated under cfg.
func (r *Runner) Run(bench string, opt core.Options, cfg pipeline.Config) (pipeline.Stats, error) {
	key := bench + "\x00" + optKey(opt) + "\x00" + cfgKey(cfg)
	r.mu.Lock()
	st, ok := r.simmed[key]
	r.mu.Unlock()
	if ok {
		return st, nil
	}
	c, err := r.Compile(bench, opt)
	if err != nil {
		return pipeline.Stats{}, err
	}
	p, _ := workload.ByName(bench)
	s, err := pipeline.New(c.Prog, cfg)
	if err != nil {
		return pipeline.Stats{}, err
	}
	if r.Progress != nil {
		s.AttachProgress(r.Progress)
	}
	p.SeedMemory(s.Mem)
	st, err = s.Run()
	if err != nil {
		return pipeline.Stats{}, fmt.Errorf("experiment: simulate %s: %w", bench, err)
	}
	if r.Progress != nil {
		r.Progress.Runs.Add(1)
	}
	r.mu.Lock()
	r.simmed[key] = st
	r.mu.Unlock()
	return st, nil
}

// MetricsSnapshot merges every cached simulation's statistics (via
// Stats.Merge) into one registry snapshot — the metrics payload of the
// run manifest cmd/experiments emits.
func (r *Runner) MetricsSnapshot() obs.Snapshot {
	var agg pipeline.Stats
	n := 0
	r.mu.Lock()
	for _, st := range r.simmed {
		st := st
		agg.Merge(&st)
		n++
	}
	r.mu.Unlock()
	reg := obs.NewRegistry()
	pipeline.FillStats(reg, &agg)
	reg.Gauge("runner.simulations").Set(int64(n))
	reg.Gauge("runner.scale_pct").Set(int64(r.Scale))
	return reg.Snapshot()
}

// BaselineCycles returns the cycle count of the no-resilience compilation
// on the no-resilience core with the given SB size.
func (r *Runner) BaselineCycles(bench string, sb int) (uint64, error) {
	st, err := r.Run(bench, core.Options{Scheme: core.Baseline, SBSize: sb}, pipeline.BaselineConfig(sb))
	if err != nil {
		return 0, err
	}
	return st.Cycles, nil
}

// Overhead returns normalized execution time (≥ ~1.0): scheme cycles over
// baseline cycles, both at SB size sb.
func (r *Runner) Overhead(bench string, opt core.Options, cfg pipeline.Config) (float64, error) {
	base, err := r.BaselineCycles(bench, cfg.SBSize)
	if err != nil {
		return 0, err
	}
	st, err := r.Run(bench, opt, cfg)
	if err != nil {
		return 0, err
	}
	return float64(st.Cycles) / float64(base), nil
}

// Geomean of a slice.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Mean of a slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table is a render-ready result table — an alias of the shared obs
// renderer so cmd/experiments, cmd/diag, and metric snapshots all print
// through one implementation.
type Table = obs.Table

// suiteOrder renders per-suite geomeans in the paper's order.
var suiteOrder = []string{"cpu2006", "cpu2017", "splash3"}

// bySuite groups benchmark values and returns per-suite plus overall
// geomeans, in a stable order.
func bySuite(vals map[string]float64) []struct {
	Suite string
	Geo   float64
} {
	group := map[string][]float64{}
	var all []float64
	for _, p := range workload.Benchmarks() {
		v, ok := vals[p.Name]
		if !ok {
			continue
		}
		group[p.Suite] = append(group[p.Suite], v)
		all = append(all, v)
	}
	out := make([]struct {
		Suite string
		Geo   float64
	}, 0, 4)
	for _, s := range suiteOrder {
		if len(group[s]) > 0 {
			out = append(out, struct {
				Suite string
				Geo   float64
			}{s, Geomean(group[s])})
		}
	}
	out = append(out, struct {
		Suite string
		Geo   float64
	}{"all", Geomean(all)})
	return out
}

// dynamicCounts executes bench's program (under opt) on the reference
// machine and returns dynamic instruction and per-kind store counts — used
// by the compile-side figures (Fig. 4, Fig. 23, Fig. 26).
func (r *Runner) dynamicCounts(bench string, opt core.Options) (total uint64, stores map[isa.StoreKind]uint64, err error) {
	c, err := r.Compile(bench, opt)
	if err != nil {
		return 0, nil, err
	}
	p, _ := workload.ByName(bench)
	m := isa.NewMachine(c.Prog)
	m.StepLimit = 200_000_000
	p.SeedMemory(m.Mem)
	stores = map[isa.StoreKind]uint64{}
	for {
		in := &c.Prog.Insts[m.PC]
		if in.Op.IsStore() {
			stores[in.Kind]++
		}
		ok, err := m.Step()
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			break
		}
	}
	return m.Executed, stores, nil
}

// sortedBenchNames returns the evaluation-ordered names (paper order).
func sortedBenchNames() []string { return workload.Names() }

// parallelBenches runs fn over every benchmark concurrently (bounded by
// GOMAXPROCS workers) and returns the first error. Figure builders use it
// for their per-benchmark fan-out; results land in maps keyed by name, so
// aggregation order stays deterministic regardless of completion order.
func parallelBenches(fn func(bench string) error) error {
	names := sortedBenchNames()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	work := make(chan string)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				if err := fn(b); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, b := range names {
		work <- b
	}
	close(work)
	wg.Wait()
	close(errs)
	return <-errs
}

// fmtRatio renders a normalized execution time like the figures ("1.23").
func fmtRatio(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct renders a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// sortStrings is a tiny alias to keep imports tidy in figures.go.
func sortStrings(s []string) { sort.Strings(s) }
