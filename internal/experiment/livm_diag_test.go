package experiment

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// TestLIVMMarginal reports LIVM's marginal effect per benchmark - a manual
// calibration aid, enabled with TURNPIKE_DIAG=1.
func TestLIVMMarginal(t *testing.T) {
	if os.Getenv("TURNPIKE_DIAG") == "" {
		t.Skip("diagnostic; set TURNPIKE_DIAG=1 to run")
	}
	r := NewRunner(10)
	noLIVM := core.TurnpikeAll(4)
	noLIVM.LIVM = false
	all := core.TurnpikeAll(4)
	cfg := pipeline.TurnpikeConfig(4, 10)
	var with, without []float64
	for _, b := range sortedBenchNames() {
		o1, err := r.Overhead(b, noLIVM, cfg)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := r.Overhead(b, all, cfg)
		if err != nil {
			t.Fatal(err)
		}
		without = append(without, o1)
		with = append(with, o2)
		if o2 > o1+0.005 || o2 < o1-0.005 {
			t.Logf("%-12s noLIVM=%.3f all=%.3f (%+.1fpp)", b, o1, o2, 100*(o2-o1))
		}
	}
	t.Logf("geomean: without=%.4f with=%.4f", Geomean(without), Geomean(with))
}
