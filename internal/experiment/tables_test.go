package experiment

import (
	"strings"
	"testing"
)

// TestAllFigureTablesWellFormed runs every figure builder once at a tiny
// scale and checks its render-ready table: header/row arity, 36 benchmark
// rows where per-benchmark data is promised, and a paper-comparison note.
func TestAllFigureTablesWellFormed(t *testing.T) {
	r := NewRunner(3)
	type built struct {
		name         string
		table        Table
		perBenchmark bool
	}
	var tables []built

	f4, err := Fig4(r)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"fig4", f4.Table, false})

	f14, err := Fig14(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"fig14", f14.Table, true})

	f15, err := Fig15(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"fig15", f15.Table, true})

	tables = append(tables, built{"fig18", Fig18().Table, false})

	f21, err := Fig21(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"fig21", f21.Table, false})

	f24, err := Fig24(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"fig24", f24.Table, true})

	f26, err := Fig26(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"fig26", f26.Table, true})

	tables = append(tables, built{"table1", Table1(), false})

	wl, err := WorkloadTable(2)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"workloads", wl, true})

	en, err := EnergyTable(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, built{"energy", en, false})

	for _, b := range tables {
		if b.table.Title == "" || len(b.table.Header) == 0 || len(b.table.Rows) == 0 {
			t.Errorf("%s: empty table pieces", b.name)
			continue
		}
		for i, row := range b.table.Rows {
			if len(row) != len(b.table.Header) {
				t.Errorf("%s row %d: %d cells for %d columns", b.name, i, len(row), len(b.table.Header))
			}
		}
		if b.perBenchmark {
			// 36 benchmark rows plus optional summary rows.
			if len(b.table.Rows) < 36 {
				t.Errorf("%s: %d rows, want >= 36", b.name, len(b.table.Rows))
			}
		}
		out := b.table.Render()
		if !strings.Contains(out, b.table.Title) {
			t.Errorf("%s: render missing title", b.name)
		}
	}
}
