package workload

import (
	"os"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/passes"
	"repro/internal/regalloc"
)

// TestRADiag prints spill decisions per write weight (TURNPIKE_DIAG=1).
func TestRADiag(t *testing.T) {
	if os.Getenv("TURNPIKE_DIAG") == "" {
		t.Skip("diagnostic")
	}
	p, _ := ByName("gemsfdtd")
	for _, ww := range []int{1, 3} {
		f := p.Build(10)
		passes.StrengthReduce(f)
		res, err := regalloc.Allocate(f, regalloc.Config{WriteWeight: ww})
		if err != nil {
			t.Fatal(err)
		}
		// Count dynamic spill ops in loop blocks.
		dt := ir.ComputeDominators(f)
		lf := ir.FindLoops(f, dt)
		inLoopStores, inLoopLoads := 0, 0
		for _, b := range f.Blocks {
			if lf.Depth(b) == 0 {
				continue
			}
			for i := range b.Instrs {
				if b.Instrs[i].Op == isa.ST && b.Instrs[i].Kind == isa.StoreSpill {
					inLoopStores++
				}
				if b.Instrs[i].Op == isa.LD && b.Instrs[i].Src1 == 0 {
					inLoopLoads++
				}
			}
		}
		t.Logf("ww=%d spilled=%d spillStores=%d spillLoads=%d inLoop(st=%d ld=%d)",
			ww, len(res.Spilled), res.SpillStores, res.SpillLoads, inLoopStores, inLoopLoads)
	}
}
