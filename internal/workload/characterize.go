package workload

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// Characteristics summarizes a kernel's dynamic behaviour in the
// quantities the Turnpike mechanisms respond to — the workload-suite table
// evaluation sections publish next to their benchmark lists.
type Characteristics struct {
	Name  string
	Suite string
	Tmpl  Template

	// DynamicInsts is the executed instruction count at the measured scale.
	DynamicInsts uint64
	// LoadPct/StorePct are the dynamic load/store fractions (percent).
	LoadPct, StorePct float64
	// BranchPct is the dynamic conditional-branch fraction (percent).
	BranchPct float64
	// WARPct is the fraction of stores whose address was loaded within the
	// preceding window (percent) — the stores fast release cannot help.
	WARPct float64
	// FootprintBytes counts distinct data bytes touched.
	FootprintBytes uint64
}

// Characterize interprets the kernel at the given scale and extracts its
// characteristics. The WAR window is approximated with the most recent 64
// loaded addresses, roughly the reach of the in-flight unverified regions.
func Characterize(p Profile, scalePct int) (Characteristics, error) {
	f := p.Build(scalePct)

	var loads, stores, branches, warStores uint64
	touched := map[uint64]bool{}
	const warWindow = 64
	recent := make([]uint64, 0, warWindow)
	recentSet := map[uint64]int{}
	noteLoad := func(addr uint64) {
		touched[addr] = true
		if len(recent) == warWindow {
			old := recent[0]
			recent = recent[1:]
			if recentSet[old] > 0 {
				recentSet[old]--
			}
		}
		recent = append(recent, addr)
		recentSet[addr]++
	}

	it := &ir.Interp{
		Regs: make([]uint64, f.NumVRegs),
		Mem:  isa.NewMemory(),
		Trace: func(in *ir.Instr, regs []uint64) {
			switch {
			case in.Op == isa.LD:
				noteLoad(regs[in.Src1] + uint64(in.Imm))
			case in.Op == isa.ST:
				stores++
				addr := regs[in.Src1] + uint64(in.Imm)
				touched[addr] = true
				if recentSet[addr] > 0 {
					warStores++
				}
			case in.Op.IsCondBranch():
				branches++
			}
			if in.Op == isa.LD {
				loads++
			}
		},
	}
	p.SeedMemory(it.Mem)
	if err := it.Run(f); err != nil {
		return Characteristics{}, err
	}

	c := Characteristics{
		Name: p.Name, Suite: p.Suite, Tmpl: p.Tmpl,
		DynamicInsts:   it.Executed,
		FootprintBytes: uint64(len(touched)) * 8,
	}
	if it.Executed > 0 {
		c.LoadPct = 100 * float64(loads) / float64(it.Executed)
		c.StorePct = 100 * float64(stores) / float64(it.Executed)
		c.BranchPct = 100 * float64(branches) / float64(it.Executed)
	}
	if stores > 0 {
		c.WARPct = 100 * float64(warStores) / float64(stores)
	}
	return c, nil
}

// CharacterizeAll characterizes every benchmark at the given scale.
func CharacterizeAll(scalePct int) ([]Characteristics, error) {
	var out []Characteristics
	for _, p := range Benchmarks() {
		c, err := Characterize(p, scalePct)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
