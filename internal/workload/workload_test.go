package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
)

func TestBenchmarkCountAndSuites(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 36 {
		t.Fatalf("benchmark count = %d, want 36 (paper's 36 workloads)", len(bs))
	}
	suites := map[string]int{}
	names := map[string]bool{}
	for _, b := range bs {
		suites[b.Suite]++
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
	}
	if suites["cpu2006"] != 16 || suites["cpu2017"] != 13 || suites["splash3"] != 7 {
		t.Fatalf("suite split = %v, want 16/13/7", suites)
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Tmpl != Chase {
		t.Fatalf("mcf lookup = %+v, %v", p, ok)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("found nonexistent benchmark")
	}
}

func TestAllKernelsBuildAndVerify(t *testing.T) {
	for _, p := range Benchmarks() {
		f := p.Build(5)
		if err := f.Verify(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if f.InstrCount() < 10 {
			t.Errorf("%s: suspiciously small (%d instrs)", p.Name, f.InstrCount())
		}
	}
}

func TestAllKernelsTerminate(t *testing.T) {
	for _, p := range Benchmarks() {
		f := p.Build(2)
		it := &ir.Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory(), StepLimit: 5_000_000}
		p.SeedMemory(it.Mem)
		if err := it.Run(f); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if it.Executed == 0 {
			t.Errorf("%s: executed nothing", p.Name)
		}
	}
}

func TestKernelsAreDeterministic(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "gcc", "radix"} {
		p, _ := ByName(name)
		run := func() []struct{ Addr, Val uint64 } {
			f := p.Build(3)
			it := &ir.Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory(), StepLimit: 5_000_000}
			p.SeedMemory(it.Mem)
			if err := it.Run(f); err != nil {
				t.Fatal(err)
			}
			return it.Mem.Snapshot()
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic size", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %#x", name, a[i].Addr)
			}
		}
	}
}

func TestKernelsCompileUnderAllSchemes(t *testing.T) {
	for _, p := range Benchmarks() {
		f := p.Build(2)
		for _, opt := range []core.Options{
			{Scheme: core.Baseline},
			{Scheme: core.Turnstile, SBSize: 4},
			core.TurnpikeAll(4),
		} {
			c, err := core.Compile(f, opt)
			if err != nil {
				t.Errorf("%s under %v: %v", p.Name, opt.Scheme, err)
				continue
			}
			if err := c.Prog.Validate(); err != nil {
				t.Errorf("%s under %v: %v", p.Name, opt.Scheme, err)
			}
		}
	}
}

func TestChaseRingCoversWorkingSet(t *testing.T) {
	p, _ := ByName("mcf")
	mem := isa.NewMemory()
	p.SeedMemory(mem)
	// Follow the ring; it must return to the start only after visiting
	// every node (a single cycle).
	base := p.arrayBase(0)
	cur := base
	seen := map[uint64]bool{}
	for i := 0; i < p.ArrayWords; i++ {
		if seen[cur] {
			t.Fatalf("ring revisits %#x after %d hops", cur, i)
		}
		seen[cur] = true
		cur = mem.Load(cur)
		if cur == 0 {
			t.Fatalf("ring broken at hop %d", i)
		}
	}
	if cur != mem.Load(base-8+8) && len(seen) != p.ArrayWords {
		t.Fatalf("ring visited %d of %d nodes", len(seen), p.ArrayWords)
	}
}

func TestTemplateDiversity(t *testing.T) {
	tmpls := map[Template]bool{}
	for _, p := range Benchmarks() {
		tmpls[p.Tmpl] = true
	}
	for _, want := range []Template{Stream, Reduce, Chase, Stencil, InPlace, Nested} {
		if !tmpls[want] {
			t.Errorf("no benchmark uses template %v", want)
		}
	}
}

func TestCharacterizeTemplatesDiffer(t *testing.T) {
	get := func(name string) Characteristics {
		p, _ := ByName(name)
		c, err := Characterize(p, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return c
	}
	radix := get("radix") // in-place read-modify-write
	lbm := get("lbm")     // disjoint output streams
	if radix.WARPct < 50 {
		t.Errorf("radix WAR fraction %.0f%%, expected dominant (in-place template)", radix.WARPct)
	}
	if lbm.WARPct > 20 {
		t.Errorf("lbm WAR fraction %.0f%%, expected minor (streaming template)", lbm.WARPct)
	}
	gcc := get("gcc")
	if gcc.BranchPct <= lbm.BranchPct {
		t.Errorf("gcc branch density %.1f%% not above lbm's %.1f%%", gcc.BranchPct, lbm.BranchPct)
	}
	mcf := get("mcf")
	if mcf.FootprintBytes <= gcc.FootprintBytes {
		t.Errorf("mcf footprint %d not above gcc's %d", mcf.FootprintBytes, gcc.FootprintBytes)
	}
	for _, c := range []Characteristics{radix, lbm, gcc, mcf} {
		if c.DynamicInsts == 0 || c.LoadPct <= 0 || c.StorePct <= 0 {
			t.Errorf("%s: degenerate characteristics %+v", c.Name, c)
		}
	}
}

func TestCharacterizeAll(t *testing.T) {
	cs, err := CharacterizeAll(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 36 {
		t.Fatalf("%d characterizations", len(cs))
	}
	for _, c := range cs {
		if c.LoadPct+c.StorePct+c.BranchPct > 100 {
			t.Errorf("%s: fractions exceed 100%%", c.Name)
		}
	}
}
