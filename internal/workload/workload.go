// Package workload generates the 36 benchmark kernels used in the
// evaluation. The paper runs SPEC CPU2006/CPU2017 and SPLASH-3; those
// suites are proprietary or need an OS substrate, so each benchmark is
// replaced by a synthetic kernel that reproduces the characteristics the
// Turnpike mechanisms react to:
//
//   - store density (store-buffer pressure, Figs. 3–5),
//   - live-register pressure across region boundaries (checkpoint count),
//   - loop-carried induction variables (LIVM targets),
//   - load-use distances and cache footprint (checkpoint data hazards),
//   - the WAR fraction of stores (CLQ fast-release rate), and
//   - branch density (region shapes).
//
// Five kernel templates cover the space — streaming, reduction, pointer
// chase, stencil, and in-place update — and each named benchmark is a
// parameterization of one template. Parameters were set from the
// well-known qualitative behaviour of each benchmark (mcf/omnetpp pointer-
// chasing and cache-hostile, lbm/bwaves store-heavy streaming, exchange2/
// deepsjeng branchy integer, ...), then nudged so the Turnstile/Turnpike
// overhead *shapes* track the paper's Figs. 19–21. Absolute cycle counts
// are not comparable to gem5+SPEC and are not meant to be.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Template is the kernel shape.
type Template int

const (
	// Stream: per iteration, load from S input streams, combine, store to
	// output streams. Stores are mostly WAR-free; address streams are
	// strength-reduction/LIVM targets.
	Stream Template = iota
	// Reduce: many loads into several live accumulators, few stores,
	// conditional accumulation (branchy).
	Reduce
	// Chase: pointer chasing through a ring with occasional stores;
	// serialized delinquent loads make checkpoint data hazards expensive.
	Chase
	// Stencil: neighborhood loads, one store per point, high ALU density.
	Stencil
	// InPlace: read-modify-write on one array — every store conflicts
	// with a same-iteration load (WAR), defeating fast release.
	InPlace
	// Nested: a two-level loop nest (rows x columns) with a per-row
	// reduction and store — the blocked linear-algebra shape. Region
	// boundaries land at both loop headers, exercising multi-level
	// partitioning and inner-loop checkpoint pressure.
	Nested
)

func (t Template) String() string {
	switch t {
	case Stream:
		return "stream"
	case Reduce:
		return "reduce"
	case Chase:
		return "chase"
	case Stencil:
		return "stencil"
	case InPlace:
		return "inplace"
	case Nested:
		return "nested"
	}
	return fmt.Sprintf("template(%d)", int(t))
}

// Profile describes one benchmark.
type Profile struct {
	Name  string
	Suite string // "cpu2006", "cpu2017", "splash3"
	Tmpl  Template

	// Iters is the default main-loop trip count at Scale 1.
	Iters int
	// ArrayWords is the working-set size per array in 8-byte words;
	// larger than the caches means memory-bound behaviour.
	ArrayWords int
	// Streams is the number of independent input/output address streams
	// (Stream/Stencil) or arrays touched (Reduce).
	Streams int
	// Accs is the number of live accumulator registers carried around the
	// loop (checkpoint pressure).
	Accs int
	// ALU is extra arithmetic per iteration (compute density).
	ALU int
	// Branchy adds a data-dependent branch in the body.
	Branchy bool
	// WARStores adds per-iteration read-modify-write stores (InPlace gets
	// them implicitly).
	WARStores int
	// Stride is the index step in words between iterations (odd, so the
	// wrap covers the array). Values above a cache line (8 words) make
	// every access touch a fresh line — the cache-hostile, delinquent-load
	// behaviour of the memory-bound SPEC codes.
	Stride int
	// Unroll is the body unroll factor, as -O3 would apply: several
	// elements per loop iteration, accumulators redefined per element.
	Unroll int
	// Pressure adds register-pressure pairs: per pair, one read-only
	// value (two reads per iteration, zero writes) and one write-hot
	// value (one read + one write per iteration). At equal read+write
	// frequency a traditional allocator is indifferent between them, so
	// it sometimes spills the write-hot one — generating a spill *store*
	// every iteration; the store-aware allocator (§4.1.1) weighs writes
	// higher and keeps the write-hot values in registers. This reproduces
	// the paper's gemsfdtd/lbm behaviour, where the RA trick removes
	// 17–19% of stores.
	Pressure int
	// Seed drives input data generation.
	Seed int64
}

// Benchmarks returns the 36 evaluated benchmarks in the paper's order:
// 16 from SPEC CPU2006, 13 from SPEC CPU2017, 7 from SPLASH-3.
func Benchmarks() []Profile {
	mk := func(name, suite string, t Template, iters, words, streams, accs, alu int, branchy bool, war, stride, unroll int) Profile {
		return Profile{Name: name, Suite: suite, Tmpl: t, Iters: iters,
			ArrayWords: words, Streams: streams, Accs: accs, ALU: alu,
			Branchy: branchy, WARStores: war, Stride: stride, Unroll: unroll,
			Seed: int64(len(name)*2654435761) + int64(t)}
	}
	return []Profile{
		// SPEC CPU2006 (16)
		mk("astar", "cpu2006", Chase, 1400, 1<<13, 1, 2, 3, true, 0, 1, 1),
		mk("bwaves", "cpu2006", Stream, 1200, 1<<14, 3, 2, 6, false, 0, 3, 4),
		mk("bzip2", "cpu2006", Reduce, 1500, 1<<13, 2, 3, 4, true, 1, 3, 2),
		mk("gcc", "cpu2006", Reduce, 1500, 1<<12, 2, 4, 2, true, 1, 1, 2),
		withPressure(mk("gemsfdtd", "cpu2006", Stencil, 1000, 1<<14, 3, 2, 8, false, 0, 1, 4), 10),
		mk("gobmk", "cpu2006", Reduce, 1500, 1<<12, 2, 3, 3, true, 0, 1, 2),
		mk("hmmer", "cpu2006", Stream, 1400, 1<<11, 2, 3, 5, false, 0, 1, 4),
		mk("leslie3d", "cpu2006", Stencil, 1000, 1<<14, 3, 2, 7, false, 0, 3, 4),
		mk("libquan", "cpu2006", Stream, 1600, 1<<15, 1, 1, 2, false, 0, 1, 4),
		mk("mcf", "cpu2006", Chase, 1200, 1<<16, 1, 2, 2, true, 1, 1, 1),
		mk("milc", "cpu2006", Stream, 1200, 1<<15, 2, 2, 6, false, 0, 3, 4),
		mk("omnetpp", "cpu2006", Chase, 1200, 1<<15, 1, 3, 2, true, 1, 1, 1),
		mk("perlbench", "cpu2006", Reduce, 1500, 1<<12, 2, 4, 2, true, 1, 1, 2),
		mk("soplex", "cpu2006", Stream, 1300, 1<<14, 2, 3, 4, true, 0, 3, 2),
		mk("xalan", "cpu2006", Reduce, 1400, 1<<13, 2, 3, 3, true, 1, 3, 2),
		withPressure(mk("zeusmp", "cpu2006", Stencil, 1000, 1<<14, 3, 2, 7, false, 0, 3, 4), 8),
		// SPEC CPU2017 (13)
		mk("bwaves17", "cpu2017", Stream, 1200, 1<<14, 3, 2, 6, false, 0, 3, 4),
		mk("cactubssn", "cpu2017", Stencil, 900, 1<<15, 4, 2, 9, false, 0, 3, 4),
		mk("deepsjeng", "cpu2017", Reduce, 1500, 1<<12, 2, 3, 3, true, 0, 1, 2),
		mk("exchange2", "cpu2017", Reduce, 1600, 1<<11, 1, 4, 4, true, 0, 1, 2),
		mk("fotonik3d", "cpu2017", Stencil, 1000, 1<<15, 3, 2, 7, false, 0, 3, 4),
		withPressure(mk("lbm", "cpu2017", Stream, 1000, 1<<16, 4, 1, 5, false, 0, 1, 4), 9),
		mk("leela", "cpu2017", Reduce, 1500, 1<<12, 2, 3, 3, true, 0, 1, 2),
		mk("mcf17", "cpu2017", Chase, 1200, 1<<16, 1, 2, 2, true, 1, 1, 1),
		mk("nab", "cpu2017", Stream, 1300, 1<<13, 2, 3, 6, false, 0, 3, 4),
		mk("roms", "cpu2017", Stencil, 1000, 1<<14, 3, 2, 7, false, 0, 3, 4),
		mk("x264", "cpu2017", Stream, 1200, 1<<13, 3, 2, 5, true, 1, 1, 4),
		mk("xalan17", "cpu2017", Reduce, 1400, 1<<13, 2, 3, 3, true, 1, 3, 2),
		mk("xz", "cpu2017", Reduce, 1400, 1<<14, 2, 3, 3, true, 1, 3, 2),
		// SPLASH-3 (7)
		mk("cholesky", "splash3", Nested, 160, 1<<13, 2, 2, 6, false, 0, 1, 4),
		mk("fft", "splash3", Stream, 1200, 1<<14, 2, 2, 6, false, 0, 3, 4),
		mk("lu-cg", "splash3", Nested, 160, 1<<13, 2, 2, 4, false, 0, 1, 4),
		mk("ocean-ng", "splash3", Stencil, 1000, 1<<15, 3, 2, 7, false, 0, 3, 4),
		mk("radiosity", "splash3", Reduce, 1400, 1<<13, 2, 3, 3, true, 0, 1, 2),
		mk("radix", "splash3", InPlace, 1300, 1<<14, 2, 2, 3, false, 2, 1, 2),
		mk("water-sp", "splash3", Stream, 1200, 1<<13, 2, 3, 5, false, 0, 1, 4),
	}
}

// withPressure sets the register-pressure pair count on a profile.
func withPressure(p Profile, pairs int) Profile {
	p.Pressure = pairs
	return p
}

// ByName finds a benchmark profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists benchmark names in evaluation order.
func Names() []string {
	bs := Benchmarks()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// arrayBase returns the base address of array k for this profile.
func (p Profile) arrayBase(k int) uint64 {
	return isa.DataBase + uint64(k)*uint64(p.ArrayWords+64)*8
}

// outputBase is where the kernel writes its results summary.
func (p Profile) outputBase() uint64 {
	return p.arrayBase(p.Streams + 4)
}

// SeedMemory fills the kernel's input arrays deterministically.
func (p Profile) SeedMemory(mem *isa.Memory) {
	rng := rand.New(rand.NewSource(p.Seed))
	switch p.Tmpl {
	case Chase:
		// Build a pseudo-random ring over array 0 so the chase visits the
		// whole working set: next[i] = address of a permuted successor.
		n := p.ArrayWords
		perm := rng.Perm(n)
		base := p.arrayBase(0)
		for i := 0; i < n; i++ {
			from := base + uint64(perm[i])*8
			to := base + uint64(perm[(i+1)%n])*8
			mem.Store(from, to)
		}
		// Payload array for the accumulators.
		pay := p.arrayBase(1)
		for i := 0; i < n; i++ {
			mem.Store(pay+uint64(i)*8, uint64(rng.Intn(1<<20)+1))
		}
	default:
		for k := 0; k < p.Streams+1; k++ {
			base := p.arrayBase(k)
			for i := 0; i < p.ArrayWords; i++ {
				mem.Store(base+uint64(i)*8, uint64(rng.Intn(1<<20)+1))
			}
		}
	}
}

// Build generates the kernel IR at the given scale (iteration multiplier
// in percent: 100 = the profile's default trip count; tests use less).
func (p Profile) Build(scalePct int) *ir.Func {
	iters := p.Iters * scalePct / 100
	if iters < 4 {
		iters = 4
	}
	switch p.Tmpl {
	case Stream:
		return p.buildStream(iters)
	case Reduce:
		return p.buildReduce(iters)
	case Chase:
		return p.buildChase(iters)
	case Stencil:
		return p.buildStencil(iters)
	case InPlace:
		return p.buildInPlace(iters)
	case Nested:
		return p.buildNested(iters)
	}
	panic("workload: unknown template")
}

// emitEpilogue stores every accumulator to the output area and halts.
func emitEpilogue(b *ir.Builder, accs []ir.VReg, out ir.VReg) {
	for k, a := range accs {
		b.Store(out, int64(k)*8, a)
	}
	b.Halt()
}

// emitPressurePrologue creates the register-pressure pairs in the entry
// block and returns (readOnly, writeHot) slices; see Profile.Pressure.
func (p Profile) emitPressurePrologue(b *ir.Builder) (ro, wh []ir.VReg) {
	for k := 0; k < p.Pressure; k++ {
		ro = append(ro, b.MovI(int64(3*k+1)))
		wh = append(wh, b.MovI(int64(5*k+2)))
	}
	return ro, wh
}

// emitPressureBody touches the pressure pairs once per loop body: each
// read-only value is read twice, each write-hot value is read once and
// written once, so their frequency-based spill weights tie under a
// traditional allocator (writes-as-reads) but separate under the
// store-aware one.
func (p Profile) emitPressureBody(b *ir.Builder, ro, wh []ir.VReg, acc ir.VReg) {
	for k := range ro {
		b.OpTo(isa.ADD, acc, acc, ro[k])
		b.OpTo(isa.XOR, acc, acc, ro[k])
		b.OpTo(isa.XOR, wh[k], wh[k], acc)
	}
}

// emitPressureEpilogue keeps every pressure value live to the end.
func emitPressureEpilogue(b *ir.Builder, ro, wh []ir.VReg, out ir.VReg) {
	for k := range ro {
		b.Store(out, int64(1024+16*k), ro[k])
		b.Store(out, int64(1024+16*k+8), wh[k])
	}
}

// unroll returns the body unroll factor (≥1). Unrolled bodies redefine the
// accumulators several times between boundaries — the redundancy that a
// large store buffer's long regions can elide but SB-4's short regions
// must checkpoint (the paper's Fig. 3/4 mechanism) — and give the
// scheduler independent work to hide checkpoint hazards with.
func (p Profile) unroll() int {
	if p.Unroll < 1 {
		return 1
	}
	return p.Unroll
}

// disp returns the displacement of unrolled copy u under direct (stride-1)
// indexing, where all copies share one address computation.
func (p Profile) disp(u int) int64 {
	if p.Stride <= 1 {
		return int64(u) * 8
	}
	return 0
}

// wrapIndex emits the array index for unrolled copy u. With stride 1 and a
// trip count that fits the array, the index is the loop counter itself —
// the form production compilers strength-reduce into pointer induction
// variables (and the form LIVM must then merge back, §4.1.2); unrolled
// copies address through displacements (see disp) so the single pointer IV
// survives. Strided profiles emit idx = ((i+u)*stride) & (words-1): an odd
// stride larger than a cache line touches a fresh line every iteration,
// the miss-dominated pattern of the memory-bound codes.
func (p Profile) wrapIndex(b *ir.Builder, i ir.VReg, u, iters, words int) ir.VReg {
	if p.Stride <= 1 {
		if iters+p.unroll() <= words {
			return i
		}
		// Wrap; unrolled displacements may spill into the 64-word guard
		// gap between arrays, which is harmless padding.
		return b.OpI(isa.AND, i, int64(words-1))
	}
	iu := i
	if u > 0 {
		iu = b.OpI(isa.ADD, i, int64(u))
	}
	s := b.OpI(isa.MUL, iu, int64(p.Stride))
	return b.OpI(isa.AND, s, int64(words-1))
}

func (p Profile) buildStream(iters int) *ir.Func {
	b := ir.NewBuilder(p.Name)
	bases := make([]ir.VReg, p.Streams)
	outs := make([]ir.VReg, p.Streams)
	for k := 0; k < p.Streams; k++ {
		bases[k] = b.MovI(int64(p.arrayBase(k)))
		outs[k] = b.MovI(int64(p.arrayBase(p.Streams)) + int64(k*8*p.ArrayWords/4))
	}
	outp := b.MovI(int64(p.outputBase()))
	accs := make([]ir.VReg, p.Accs)
	for k := range accs {
		accs[k] = b.MovI(int64(k + 1))
	}
	ro, wh := p.emitPressurePrologue(b)
	i := b.MovI(0)

	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	var oddB, joinB *ir.Block
	if p.Branchy {
		oddB, joinB = b.NewBlock(), b.NewBlock()
	}
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, int64(iters), exit, body)

	b.SetBlock(body)
	p.emitPressureBody(b, ro, wh, accs[0])
	var v ir.VReg
	for u := 0; u < p.unroll(); u++ {
		idx := p.wrapIndex(b, i, u, iters, p.ArrayWords)
		off := b.OpI(isa.SHL, idx, 3)
		d := p.disp(u)
		for k := 0; k < p.Streams; k++ {
			addr := b.Op(isa.ADD, bases[k], off)
			v = b.Load(addr, d)
			acc := accs[(k+u)%len(accs)]
			b.OpTo(isa.ADD, acc, acc, v)
			// Output stream store: disjoint from the loads => WAR-free.
			oaddr := b.Op(isa.ADD, outs[k], off)
			b.Store(oaddr, d, acc)
		}
		for a := 0; a < p.ALU; a++ {
			acc := accs[(a+u)%len(accs)]
			b.OpITo(isa.XOR, acc, acc, int64(a*37+u*5+1))
		}
		for w := 0; w < p.WARStores; w++ {
			// Read-modify-write on the first input stream (WAR).
			addr := b.Op(isa.ADD, bases[0], off)
			old := b.Load(addr, d+int64(w)*8)
			nv := b.OpI(isa.ADD, old, 1)
			b.Store(addr, d+int64(w)*8, nv)
		}
	}
	if p.Branchy {
		bit := b.OpI(isa.AND, v, 1)
		b.BranchI(isa.BEQ, bit, 1, oddB, joinB)
		b.SetBlock(oddB)
		b.OpITo(isa.ADD, accs[0], accs[0], 13)
		b.Fallthrough(joinB)
		b.SetBlock(joinB)
	}
	b.OpITo(isa.ADD, i, i, int64(p.unroll()))
	b.Jump(head)

	b.SetBlock(exit)
	emitPressureEpilogue(b, ro, wh, outp)
	emitEpilogue(b, accs, outp)
	return b.MustFinish()
}

func (p Profile) buildReduce(iters int) *ir.Func {
	b := ir.NewBuilder(p.Name)
	bases := make([]ir.VReg, p.Streams)
	for k := range bases {
		bases[k] = b.MovI(int64(p.arrayBase(k)))
	}
	outp := b.MovI(int64(p.outputBase()))
	accs := make([]ir.VReg, p.Accs)
	for k := range accs {
		accs[k] = b.MovI(int64(2*k + 1))
	}
	i := b.MovI(0)

	head, body, t1, f1, join, exit := b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, int64(iters), exit, body)

	b.SetBlock(body)
	var v ir.VReg
	for u := 0; u < p.unroll(); u++ {
		idx := p.wrapIndex(b, i, u, iters, p.ArrayWords)
		off := b.OpI(isa.SHL, idx, 3)
		d := p.disp(u)
		for k := 0; k < p.Streams; k++ {
			addr := b.Op(isa.ADD, bases[k], off)
			v = b.Load(addr, d)
			acc := accs[(k+u)%len(accs)]
			b.OpTo(isa.ADD, acc, acc, v)
		}
		for a := 0; a < p.ALU; a++ {
			x, y := accs[(a+u)%len(accs)], accs[(a+u+1)%len(accs)]
			b.OpTo(isa.XOR, x, x, y)
		}
		for w := 0; w < p.WARStores; w++ {
			addr := b.Op(isa.ADD, bases[0], off)
			old := b.Load(addr, d+int64(w+1)*16)
			nv := b.OpI(isa.ADD, old, 3)
			b.Store(addr, d+int64(w+1)*16, nv)
		}
	}
	if p.Branchy {
		bit := b.OpI(isa.AND, v, 3)
		b.BranchI(isa.BEQ, bit, 0, t1, f1)
		b.SetBlock(t1)
		b.OpITo(isa.MUL, accs[0], accs[0], 3)
		b.Jump(join)
		b.SetBlock(f1)
		b.OpITo(isa.ADD, accs[len(accs)-1], accs[len(accs)-1], 7)
		b.Fallthrough(join)
		b.SetBlock(join)
	} else {
		b.Fallthrough(t1)
		b.SetBlock(t1)
		b.Fallthrough(f1)
		b.SetBlock(f1)
		b.Fallthrough(join)
		b.SetBlock(join)
	}
	// One live result store per iteration keeps region live-outs real.
	b.Store(outp, 64, accs[0])
	b.OpITo(isa.ADD, i, i, int64(p.unroll()))
	b.Jump(head)

	b.SetBlock(exit)
	emitEpilogue(b, accs, outp)
	return b.MustFinish()
}

func (p Profile) buildChase(iters int) *ir.Func {
	b := ir.NewBuilder(p.Name)
	ptr := b.MovI(int64(p.arrayBase(0))) // chase starts at ring head
	pay := b.MovI(int64(p.arrayBase(1)))
	base0 := b.MovI(int64(p.arrayBase(0)))
	outp := b.MovI(int64(p.outputBase()))
	accs := make([]ir.VReg, p.Accs)
	for k := range accs {
		accs[k] = b.MovI(int64(k + 3))
	}
	i := b.MovI(0)

	head, body, t1, join, exit := b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, int64(iters), exit, body)

	b.SetBlock(body)
	// The delinquent load: the next pointer.
	b.LoadTo(ptr, ptr, 0)
	// Payload indexed by the pointer's ring position.
	delta := b.Op(isa.SUB, ptr, base0)
	v := b.Op(isa.ADD, pay, delta)
	pv := b.Load(v, 0)
	b.OpTo(isa.ADD, accs[0], accs[0], pv)
	for a := 0; a < p.ALU; a++ {
		b.OpITo(isa.XOR, accs[a%len(accs)], accs[a%len(accs)], int64(a*11+5))
	}
	for w := 0; w < p.WARStores; w++ {
		old := b.Load(v, 8)
		nv := b.Op(isa.ADD, old, accs[0])
		b.Store(v, 8, nv)
	}
	if p.Branchy {
		bit := b.OpI(isa.AND, pv, 1)
		b.BranchI(isa.BEQ, bit, 1, t1, join)
		b.SetBlock(t1)
		b.OpITo(isa.ADD, accs[len(accs)-1], accs[len(accs)-1], 9)
		b.Fallthrough(join)
		b.SetBlock(join)
	} else {
		b.Fallthrough(t1)
		b.SetBlock(t1)
		b.Fallthrough(join)
		b.SetBlock(join)
	}
	b.Store(outp, 64, accs[0])
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)

	b.SetBlock(exit)
	emitEpilogue(b, accs, outp)
	return b.MustFinish()
}

func (p Profile) buildStencil(iters int) *ir.Func {
	b := ir.NewBuilder(p.Name)
	in := b.MovI(int64(p.arrayBase(0)))
	out := b.MovI(int64(p.arrayBase(1)))
	outp := b.MovI(int64(p.outputBase()))
	accs := make([]ir.VReg, p.Accs)
	for k := range accs {
		accs[k] = b.MovI(int64(k + 1))
	}
	ro, wh := p.emitPressurePrologue(b)
	i := b.MovI(0)

	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, int64(iters), exit, body)

	b.SetBlock(body)
	p.emitPressureBody(b, ro, wh, accs[0])
	for u := 0; u < p.unroll(); u++ {
		idx := p.wrapIndex(b, i, u, iters, p.ArrayWords-2-p.unroll())
		off := b.OpI(isa.SHL, idx, 3)
		d := p.disp(u)
		a0 := b.Op(isa.ADD, in, off)
		// Neighborhood loads.
		sum := b.Load(a0, d)
		for k := 1; k <= p.Streams; k++ {
			nv := b.Load(a0, d+int64(k)*8)
			sum = b.Op(isa.ADD, sum, nv)
		}
		for a := 0; a < p.ALU; a++ {
			sum = b.OpI(isa.XOR, sum, int64(a*29+u*7+3))
		}
		b.OpTo(isa.ADD, accs[u%len(accs)], accs[u%len(accs)], sum)
		oaddr := b.Op(isa.ADD, out, off)
		b.Store(oaddr, d, sum) // disjoint output array: WAR-free
	}
	b.OpITo(isa.ADD, i, i, int64(p.unroll()))
	b.Jump(head)

	b.SetBlock(exit)
	emitPressureEpilogue(b, ro, wh, outp)
	emitEpilogue(b, accs, outp)
	return b.MustFinish()
}

func (p Profile) buildInPlace(iters int) *ir.Func {
	b := ir.NewBuilder(p.Name)
	arr := b.MovI(int64(p.arrayBase(0)))
	outp := b.MovI(int64(p.outputBase()))
	accs := make([]ir.VReg, p.Accs)
	for k := range accs {
		accs[k] = b.MovI(int64(k + 1))
	}
	i := b.MovI(0)

	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, int64(iters), exit, body)

	b.SetBlock(body)
	for u := 0; u < p.unroll(); u++ {
		idx := p.wrapIndex(b, i, u, iters, p.ArrayWords)
		off := b.OpI(isa.SHL, idx, 3)
		d := p.disp(u) * int64(p.WARStores+1)
		addr := b.Op(isa.ADD, arr, off)
		for w := 0; w <= p.WARStores; w++ {
			old := b.Load(addr, d+int64(w)*8)
			nv := b.Op(isa.ADD, old, accs[(w+u)%len(accs)])
			b.Store(addr, d+int64(w)*8, nv) // same address as the load: WAR
			b.OpTo(isa.XOR, accs[(w+u)%len(accs)], accs[(w+u)%len(accs)], nv)
		}
		for a := 0; a < p.ALU; a++ {
			b.OpITo(isa.ADD, accs[(a+u)%len(accs)], accs[(a+u)%len(accs)], int64(a+u+1))
		}
	}
	b.OpITo(isa.ADD, i, i, int64(p.unroll()))
	b.Jump(head)

	b.SetBlock(exit)
	emitEpilogue(b, accs, outp)
	return b.MustFinish()
}

// buildNested emits the two-level nest: for each of iters rows, reduce
// Streams*8 columns into an accumulator and store the row result. The
// inner-loop header gets a region boundary every iteration, so inner
// live-outs (the row accumulator, indices, addresses) feel maximum
// checkpoint pressure.
func (p Profile) buildNested(iters int) *ir.Func {
	cols := int64(8 * p.Streams)
	b := ir.NewBuilder(p.Name)
	in := b.MovI(int64(p.arrayBase(0)))
	out := b.MovI(int64(p.arrayBase(1)))
	outp := b.MovI(int64(p.outputBase()))
	accs := make([]ir.VReg, p.Accs)
	for k := range accs {
		accs[k] = b.MovI(int64(k + 1))
	}
	i := b.MovI(0)

	oHead, oBody, iHead, iBody, oLatch, exit :=
		b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(oHead)

	b.SetBlock(oHead)
	b.BranchI(isa.BGE, i, int64(iters), exit, oBody)

	b.SetBlock(oBody)
	rowAcc := accs[0]
	b.MovITo(rowAcc, 0)
	j := b.MovI(0)
	// Row base address: wrap rows over the working set.
	ri := p.wrapIndex(b, i, 0, iters*int(cols), p.ArrayWords/int(cols))
	roff := b.OpI(isa.MUL, ri, cols*8)
	rbase := b.Op(isa.ADD, in, roff)
	b.Fallthrough(iHead)

	b.SetBlock(iHead)
	b.BranchI(isa.BGE, j, cols, oLatch, iBody)

	b.SetBlock(iBody)
	joff := b.OpI(isa.SHL, j, 3)
	addr := b.Op(isa.ADD, rbase, joff)
	for u := 0; u < p.unroll(); u++ {
		v := b.Load(addr, int64(u)*8)
		b.OpTo(isa.ADD, rowAcc, rowAcc, v)
		for a := 0; a < p.ALU; a++ {
			b.OpITo(isa.XOR, rowAcc, rowAcc, int64(a*13+u*7+1))
		}
	}
	b.OpITo(isa.ADD, j, j, int64(p.unroll()))
	b.Jump(iHead)

	b.SetBlock(oLatch)
	ooff := b.OpI(isa.SHL, ri, 3)
	oaddr := b.Op(isa.ADD, out, ooff)
	b.Store(oaddr, 0, rowAcc) // one row-result store per outer iteration
	if len(accs) > 1 {
		b.OpTo(isa.ADD, accs[1], accs[1], rowAcc)
	}
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(oHead)

	b.SetBlock(exit)
	emitEpilogue(b, accs, outp)
	return b.MustFinish()
}
