package workload

import (
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Fuzz builds a random but well-formed kernel from a seed: nested counted
// loops, data-dependent branches, loads/stores over a small data region,
// and a mix of live accumulators — the structural space every compiler
// pass and simulator mechanism must handle. The same seed always yields
// the same program. Property tests across the repository drive the full
// compile-and-simulate stack with these.
func Fuzz(seed int64) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder("fuzz")
	base := b.MovI(int64(isa.DataBase))
	out := b.MovI(int64(isa.DataBase) + 1<<14)
	nAccs := 1 + rng.Intn(4)
	accs := make([]ir.VReg, nAccs)
	for k := range accs {
		accs[k] = b.MovI(int64(rng.Intn(50) + 1))
	}
	acc := func() ir.VReg { return accs[rng.Intn(nAccs)] }

	ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR}
	emitStraight := func(n int, idx ir.VReg) {
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0: // load
				off := b.OpI(isa.SHL, idx, 3)
				addr := b.Op(isa.ADD, base, off)
				v := b.Load(addr, int64(rng.Intn(4))*8)
				b.OpTo(isa.ADD, acc(), acc(), v)
			case 1: // store
				off := b.OpI(isa.SHL, idx, 3)
				addr := b.Op(isa.ADD, out, off)
				b.Store(addr, int64(rng.Intn(4))*8, acc())
			case 2: // immediate ALU on an accumulator
				a := acc()
				b.OpITo(ops[rng.Intn(len(ops))], a, a, int64(rng.Intn(31)+1))
			default: // reg-reg ALU
				a := acc()
				b.OpTo(ops[rng.Intn(len(ops)/2)], a, a, acc())
			}
		}
	}

	zero := b.MovI(0)
	nLoops := 1 + rng.Intn(2)
	for l := 0; l < nLoops; l++ {
		i := b.Mov(zero)
		iters := int64(4 + rng.Intn(24))
		head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
		b.Fallthrough(head)
		b.SetBlock(head)
		b.BranchI(isa.BGE, i, iters, exit, body)
		b.SetBlock(body)
		emitStraight(2+rng.Intn(6), i)
		if rng.Intn(2) == 0 {
			tb, jb := b.NewBlock(), b.NewBlock()
			bit := b.OpI(isa.AND, acc(), 1)
			b.BranchI(isa.BEQ, bit, 0, tb, jb)
			b.SetBlock(tb)
			emitStraight(1+rng.Intn(3), i)
			b.Fallthrough(jb)
			b.SetBlock(jb)
		}
		emitStraight(1+rng.Intn(3), i)
		b.OpITo(isa.ADD, i, i, 1)
		b.Jump(head)
		b.SetBlock(exit)
	}
	for k, a := range accs {
		b.Store(out, int64(1024+k*8), a)
	}
	b.Halt()
	return b.MustFinish()
}

// FuzzSeedMemory seeds the data region read by Fuzz programs.
func FuzzSeedMemory(mem *isa.Memory, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := uint64(0); i < 64; i++ {
		mem.Store(isa.DataBase+i*8, uint64(rng.Intn(1<<16)+1))
	}
}
