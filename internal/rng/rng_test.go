package rng

import "testing"

func TestStreamDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	d := New(42)
	for i := 0; i < 64; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	s := New(7)
	seen := make([]bool, 10)
	for i := 0; i < 10_000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 10k draws", v)
		}
	}
	if s.Intn(1) != 0 {
		t.Fatal("Intn(1) must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 20_000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %.3f far from 0.5", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(3)
	before := *parent // copy state
	c1, c2 := parent.Fork(9), parent.Fork(9)
	for i := 0; i < 64; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-index forks diverged at draw %d", i)
		}
	}
	if *parent != before {
		t.Fatal("forking perturbed the parent state")
	}
	// Different indices decorrelate.
	d1, d2 := parent.Fork(1), parent.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different fork indices produced identical streams")
	}
}

func TestMixMatchesReference(t *testing.T) {
	// Reference values for the canonical SplitMix64 sequence seeded with
	// 1234567: from the public-domain reference implementation
	// (Vigna, prng.di.unimi.it).
	s := &Stream{state: 1234567}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}
