// Package rng provides the deterministic SplitMix64 stream every
// randomized component of the simulator draws from. The fault-campaign
// engine seeds one independent Stream per trial (a pure function of
// (campaign seed, trial index)), and the sensor detectors run their
// latency streams on the same generator, so a campaign's entire random
// history is reproducible from its seed alone — on any worker count, in
// any trial order, across process restarts.
//
// SplitMix64 (Steele, Lea, Flood — OOPSLA'14) is a bijective avalanche
// over a Weyl sequence: tiny state (one word), full 2^64 period, passes
// BigCrush, and — unlike math/rand's additive lagged Fibonacci — costs
// nothing to seed, which matters when a million-trial campaign forks a
// million independent streams.
package rng

// Mix is the SplitMix64 output function: a bijective avalanche over the
// incremented state. Two Mix applications over (seed, index) give any
// derived stream an independent, well-spread seed without consuming a
// shared stream — the fault engine's per-trial seeding scheme.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream is a SplitMix64 PRNG. The zero value is a valid stream seeded
// with 0; New spreads an arbitrary seed first.
type Stream struct {
	state uint64
}

// New returns a stream whose output is a pure function of seed.
func New(seed int64) *Stream {
	// Pre-mix so that adjacent seeds (0, 1, 2, …) land far apart in the
	// Weyl sequence.
	return &Stream{state: Mix(uint64(seed))}
}

// Reseed resets the stream in place to the state New(seed) would start
// from. Campaign planners keep one Stream value per worker and reseed it
// per trial instead of allocating a fresh stream for every plan.
func (s *Stream) Reseed(seed int64) { s.state = Mix(uint64(seed)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63n returns a uniform value in [0, n). It panics when n <= 0.
// Rejection sampling removes the modulo bias (negligible for the small
// bounds the simulator uses, but determinism tests pin exact draws, so
// the implementation is fixed here once and for all).
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n bound must be positive")
	}
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	v := s.Uint64()
	for v >= max {
		v = s.Uint64()
	}
	return int64(v % uint64(n))
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (s *Stream) Intn(n int) int {
	return int(s.Int63n(int64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent child stream from this stream's seed
// lineage and the given index: the child is a pure function of the
// parent's *current* state and idx, and drawing from it does not perturb
// the parent.
func (s *Stream) Fork(idx uint64) *Stream {
	return &Stream{state: Mix(Mix(s.state) ^ idx)}
}
