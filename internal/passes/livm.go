package passes

import (
	"math/bits"

	"repro/internal/ir"
	"repro/internal/isa"
)

// LIVM is the paper's loop induction variable merging (§4.1.2). It looks
// for pairs of basic induction variables (a, b) in a loop where b is an
// affine function of a:
//
//	b == initB + (a - initA) * (stepB / stepA)
//
// and demotes b to an *induced* induction variable: every in-loop use of b
// is replaced with a freshly computed value derived from a, the increment
// of b is deleted, and b's loop-carried dependence disappears — so b is no
// longer live-out of the loop's regions and its per-iteration checkpoint
// store vanishes. (The inverse of strength reduction, traded deliberately:
// one or two ALU ops per use against a store-buffer entry per iteration.)
//
// Requirements for a merge, checked conservatively:
//   - single-latch loop with a unique preheader;
//   - stepA divides stepB with a power-of-two (or 1) quotient, so the
//     scaling is a shift;
//   - both IVs have recognizable preheader initializations: a with a known
//     constant, b either constant or base-register + offset with the base
//     not redefined in the loop;
//   - every in-loop use of b is positioned before both increments, and
//     both increments sit in the same block (values of a and b then move in
//     lock step at every use point);
//   - b is not used after the loop (not live at any exit), since after
//     merging b is no longer maintained.
//
// Returns the number of merged (eliminated) induction variables.
func LIVM(f *ir.Func) int {
	dt := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dt)
	lv := ir.ComputeLiveness(f)
	merged := 0
	for _, l := range loops.Loops {
		merged += livmLoop(f, l, lv)
		if merged > 0 {
			// Liveness is stale after a rewrite; recompute for later loops.
			lv = ir.ComputeLiveness(f)
		}
	}
	if merged > 0 {
		DeadCodeElim(f)
	}
	return merged
}

func livmLoop(f *ir.Func, l *ir.Loop, lv *ir.Liveness) int {
	pre := uniquePreheader(l)
	if pre == nil || len(l.Latches) != 1 {
		return 0
	}
	ivs := ir.FindBasicIVs(f, l)
	if len(ivs) < 2 {
		return 0
	}
	merged := 0
	for bi := range ivs {
		b := &ivs[bi]
		if b.Step == 0 {
			continue
		}
		// b must die with the loop.
		liveOutside := false
		for _, ex := range l.Exits {
			if lv.In[ex].Has(b.Reg) {
				liveOutside = true
				break
			}
		}
		if liveOutside {
			continue
		}
		for ai := range ivs {
			a := &ivs[ai]
			if ai == bi || a.Step == 0 || !a.HasInitConst {
				continue
			}
			if b.Step%a.Step != 0 {
				continue
			}
			q := b.Step / a.Step
			if q <= 0 || q&(q-1) != 0 {
				continue
			}
			shift := int64(bits.TrailingZeros64(uint64(q)))
			// b's init must be expressible: constant, or base+offset with
			// base invariant in the loop.
			var baseReg ir.VReg = ir.NoReg
			var baseOff int64
			switch {
			case b.HasInitConst:
				baseOff = b.InitConst
			case b.InitBase != ir.NoReg:
				if definedInLoop(l, b.InitBase) {
					continue
				}
				baseReg, baseOff = b.InitBase, b.InitOffset
			default:
				continue
			}
			// Both increments in one block; uses of b precede them.
			if a.DefBlock != b.DefBlock {
				continue
			}
			if !usesPrecedeIncrements(l, b.Reg, a, b) {
				continue
			}
			if rewriteMerge(f, l, a, b, baseReg, baseOff, shift) {
				merged++
			}
			break
		}
	}
	return merged
}

func definedInLoop(l *ir.Loop, v ir.VReg) bool {
	for b := range l.Body {
		for i := range b.Instrs {
			if d, ok := b.Instrs[i].Def(); ok && d == v {
				return true
			}
		}
	}
	return false
}

// usesPrecedeIncrements verifies every in-loop use of reg (other than its
// own increment) happens before both IV increments in program order: uses
// must not be in the increments' block at or after the earlier increment,
// and the increments' block must be the single latch (executed last).
func usesPrecedeIncrements(l *ir.Loop, reg ir.VReg, a, b *ir.BasicIV) bool {
	incBlock := a.DefBlock
	if len(l.Latches) != 1 || l.Latches[0] != incBlock {
		return false
	}
	firstInc := a.DefIndex
	if b.DefIndex < firstInc {
		firstInc = b.DefIndex
	}
	var uses []ir.VReg
	for blk := range l.Body {
		for i := range blk.Instrs {
			if blk == incBlock && i == b.DefIndex {
				continue // b's own increment
			}
			in := &blk.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if u != reg {
					continue
				}
				if blk == incBlock && i >= firstInc {
					return false
				}
			}
		}
	}
	return true
}

// rewriteMerge replaces uses of b with a value computed from a:
//
//	t = a - initA   (skipped when initA == 0)
//	t = t << shift  (skipped when shift == 0)
//	v = t + base(+off) or t + offConst
//
// The sequence is materialized once per block, immediately before the
// block's first use of b (all in-loop uses precede the increments, so a
// and b hold their iteration-entry values at every use point); later uses
// in the same block reuse the temporary. b's increment is then deleted
// (DCE sweeps the preheader init). Materializing once keeps the
// instruction cost near the one store it replaces — recomputing per use
// would cancel the win on kernels with several address uses per iteration.
func rewriteMerge(f *ir.Func, l *ir.Loop, a, b *ir.BasicIV, baseReg ir.VReg, baseOff int64, shift int64) bool {
	var uses []ir.VReg
	for blk := range l.Body {
		first := -1
		for i := range blk.Instrs {
			if blk == b.DefBlock && i == b.DefIndex {
				continue
			}
			in := &blk.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if u == b.Reg {
					first = i
					break
				}
			}
			if first >= 0 {
				break
			}
		}
		if first < 0 {
			continue
		}
		// Build the replacement value once, before the first use.
		var seq []ir.Instr
		cur := a.Reg
		if a.InitConst != 0 {
			t := f.NewVReg()
			seq = append(seq, ir.Instr{Op: isa.SUB, Dst: t, Src1: cur, Src2: ir.NoReg, Imm: a.InitConst, HasImm: true})
			cur = t
		}
		if shift != 0 {
			t := f.NewVReg()
			seq = append(seq, ir.Instr{Op: isa.SHL, Dst: t, Src1: cur, Src2: ir.NoReg, Imm: shift, HasImm: true})
			cur = t
		}
		v := f.NewVReg()
		if baseReg != ir.NoReg {
			seq = append(seq, ir.Instr{Op: isa.ADD, Dst: v, Src1: cur, Src2: baseReg})
			if baseOff != 0 {
				v2 := f.NewVReg()
				seq = append(seq, ir.Instr{Op: isa.ADD, Dst: v2, Src1: v, Src2: ir.NoReg, Imm: baseOff, HasImm: true})
				v = v2
			}
		} else {
			seq = append(seq, ir.Instr{Op: isa.ADD, Dst: v, Src1: cur, Src2: ir.NoReg, Imm: baseOff, HasImm: true})
		}
		// Substitute every use of b in this block with v.
		for i := range blk.Instrs {
			if blk == b.DefBlock && i == b.DefIndex {
				continue
			}
			in := &blk.Instrs[i]
			if in.Src1 == b.Reg {
				in.Src1 = v
			}
			if in.Src2 == b.Reg {
				in.Src2 = v
			}
		}
		blk.Instrs = append(blk.Instrs[:first:first], append(seq, blk.Instrs[first:]...)...)
		if blk == b.DefBlock && first <= b.DefIndex {
			b.DefIndex += len(seq)
		}
		if blk == a.DefBlock && first <= a.DefIndex {
			a.DefIndex += len(seq)
		}
	}
	// Delete b's increment (replace with NOP; DCE cleans up).
	b.DefBlock.Instrs[b.DefIndex] = ir.Instr{Op: isa.NOP}
	return true
}
