package passes

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// buildArrayLoop builds the paper's Figure 8(a) kernel in IR:
//
//	for i in [0,n): A[i] = i*7; followed by a checksum store.
//
// The address A+i*8 is computed with an explicit shift+add so that
// StrengthReduce has the classic pattern to transform.
func buildArrayLoop(n int64) *ir.Func {
	b := ir.NewBuilder("arrayloop")
	base := b.MovI(int64(isa.DataBase))
	i := b.MovI(0)
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, n, exit, body)
	b.SetBlock(body)
	off := b.OpI(isa.SHL, i, 3)
	addr := b.Op(isa.ADD, base, off)
	v := b.OpI(isa.MUL, i, 7)
	b.Store(addr, 0, v)
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)
	b.SetBlock(exit)
	outp := b.MovI(int64(isa.DataBase) + 4096)
	b.Store(outp, 0, i)
	b.Halt()
	return b.MustFinish()
}

func interpMem(t *testing.T, f *ir.Func) *isa.Memory {
	t.Helper()
	it, err := ir.RunIR(f)
	if err != nil {
		t.Fatalf("interp %s: %v", f.Name, err)
	}
	return it.Mem
}

func TestDeadCodeElim(t *testing.T) {
	b := ir.NewBuilder("dce")
	out := b.MovI(int64(isa.DataBase))
	x := b.MovI(5)
	_ = b.OpI(isa.ADD, x, 3) // dead
	y := b.OpI(isa.MUL, x, 2)
	_ = b.Op(isa.ADD, x, y) // dead
	b.Store(out, 0, y)
	b.Halt()
	f := b.MustFinish()
	before := f.InstrCount()
	removed := DeadCodeElim(f)
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	if f.InstrCount() != before-2 {
		t.Fatalf("instr count %d, want %d", f.InstrCount(), before-2)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := interpMem(t, f).Load(isa.DataBase); got != 10 {
		t.Fatalf("output %d, want 10", got)
	}
}

func TestDeadCodeElimKeepsLoads(t *testing.T) {
	b := ir.NewBuilder("dceload")
	addr := b.MovI(int64(isa.DataBase))
	_ = b.Load(addr, 0) // dead but conservatively kept
	b.Store(addr, 8, addr)
	b.Halt()
	f := b.MustFinish()
	if removed := DeadCodeElim(f); removed != 0 {
		t.Fatalf("DCE removed %d instructions including a load", removed)
	}
}

func TestStrengthReduceCreatesDerivedIV(t *testing.T) {
	f := buildArrayLoop(50)
	golden := interpMem(t, f.Clone())
	created := StrengthReduce(f)
	if created != 1 {
		t.Fatalf("created %d derived IVs, want 1", created)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if !golden.Equal(interpMem(t, f)) {
		t.Fatalf("strength reduction changed semantics")
	}
	// The loop body must no longer contain the shift feeding the address.
	dt := ir.ComputeDominators(f)
	lf := ir.FindLoops(f, dt)
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d", len(lf.Loops))
	}
	// After the pass there are two basic IVs: i and the derived pointer.
	ivs := ir.FindBasicIVs(f, lf.Loops[0])
	if len(ivs) != 2 {
		t.Fatalf("basic IVs after strength reduction = %d, want 2 (i and ptr)", len(ivs))
	}
}

func TestLIVMMergesDerivedIV(t *testing.T) {
	f := buildArrayLoop(50)
	if created := StrengthReduce(f); created != 1 {
		t.Fatalf("setup: strength reduction created %d", created)
	}
	golden := interpMem(t, f.Clone())
	merged := LIVM(f)
	if merged != 1 {
		t.Fatalf("merged %d IVs, want 1", merged)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if !golden.Equal(interpMem(t, f)) {
		t.Fatalf("LIVM changed semantics")
	}
	// Back to a single basic IV: the derived pointer is gone.
	dt := ir.ComputeDominators(f)
	lf := ir.FindLoops(f, dt)
	ivs := ir.FindBasicIVs(f, lf.Loops[0])
	if len(ivs) != 1 {
		t.Fatalf("basic IVs after LIVM = %d, want 1", len(ivs))
	}
}

func TestLIVMSkipsLiveOutsideIV(t *testing.T) {
	// The derived pointer is stored after the loop, so merging would lose
	// its final value; LIVM must refuse.
	b := ir.NewBuilder("liveout")
	base := b.MovI(int64(isa.DataBase))
	ptr := b.Mov(base)
	i := b.MovI(0)
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, 10, exit, body)
	b.SetBlock(body)
	b.Store(ptr, 0, i)
	b.OpITo(isa.ADD, i, i, 1)
	b.OpITo(isa.ADD, ptr, ptr, 8)
	b.Jump(head)
	b.SetBlock(exit)
	out := b.MovI(int64(isa.DataBase) + 4096)
	b.Store(out, 0, ptr) // ptr live after loop
	b.Halt()
	f := b.MustFinish()
	golden := interpMem(t, f.Clone())
	if merged := LIVM(f); merged != 0 {
		t.Fatalf("LIVM merged %d IVs despite live-out use", merged)
	}
	if !golden.Equal(interpMem(t, f)) {
		t.Fatalf("semantics changed")
	}
}

func TestLIVMHandlesPointerIVFromBase(t *testing.T) {
	// ptr initialized as mov from base register (not a constant), step 8;
	// i starts at 0 step 1. Classic Figure 8(b) shape.
	b := ir.NewBuilder("fig8b")
	base := b.MovI(int64(isa.DataBase))
	ptr := b.Mov(base)
	i := b.MovI(0)
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, 20, exit, body)
	b.SetBlock(body)
	v := b.OpI(isa.MUL, i, 3)
	b.Store(ptr, 0, v)
	b.OpITo(isa.ADD, i, i, 1)
	b.OpITo(isa.ADD, ptr, ptr, 8)
	b.Jump(head)
	b.SetBlock(exit)
	b.Halt()
	f := b.MustFinish()
	golden := interpMem(t, f.Clone())
	if merged := LIVM(f); merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if !golden.Equal(interpMem(t, f)) {
		t.Fatalf("LIVM changed semantics")
	}
}

func TestScheduleSeparatesCkptFromDef(t *testing.T) {
	// Model Figure 6/11: ld r6; ckpt r6; add; shl — scheduling should move
	// the two independent ALU ops between the load and the checkpoint.
	b := ir.NewBuilder("fig11")
	a := b.MovI(int64(isa.DataBase))
	r5 := b.MovI(1)
	r1 := b.MovI(2)
	r4 := b.MovI(3)
	r6 := b.Load(a, 0)
	b.Block().Instrs = append(b.Block().Instrs,
		ir.Instr{Op: isa.CKPT, Dst: ir.NoReg, Src1: ir.NoReg, Src2: r6, Kind: isa.StoreCheckpoint})
	b.OpTo(isa.ADD, r5, r5, r1)
	b.OpITo(isa.SHL, r4, r4, 2)
	b.Halt()
	f := b.MustFinish()

	moved := Schedule(f, ScheduleConfig{LoadLatency: 3, DeprioritizeCheckpoints: true})
	if moved == 0 {
		t.Fatal("scheduler did not move anything")
	}
	// Find positions of the load and the checkpoint.
	blk := f.Blocks[0]
	ldPos, ckPos := -1, -1
	for i := range blk.Instrs {
		switch blk.Instrs[i].Op {
		case isa.LD:
			ldPos = i
		case isa.CKPT:
			ckPos = i
		}
	}
	if ckPos-ldPos < 3 {
		t.Fatalf("checkpoint at %d, load at %d: gap %d < 3\n%s", ckPos, ldPos, ckPos-ldPos, f.String())
	}
}

func TestScheduleBarriers(t *testing.T) {
	// Instructions must not cross BOUND markers.
	b := ir.NewBuilder("barrier")
	x := b.MovI(1)
	b.Block().Instrs = append(b.Block().Instrs, ir.Instr{Op: isa.BOUND})
	y := b.OpI(isa.ADD, x, 1)
	_ = y
	b.Halt()
	f := b.MustFinish()
	Schedule(f, ScheduleConfig{DeprioritizeCheckpoints: true})
	blk := f.Blocks[0]
	if blk.Instrs[1].Op != isa.BOUND {
		t.Fatalf("BOUND moved: %v", f.String())
	}
}

func TestSchedulePreservesMemoryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		b := ir.NewBuilder("mem")
		base := b.MovI(int64(isa.DataBase))
		vals := []ir.VReg{b.MovI(int64(rng.Intn(50))), b.MovI(int64(rng.Intn(50)))}
		n := 10 + rng.Intn(20)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				vals = append(vals, b.Load(base, int64(rng.Intn(4))*8))
			case 1:
				b.Store(base, int64(rng.Intn(4))*8, vals[rng.Intn(len(vals))])
			default:
				a := vals[rng.Intn(len(vals))]
				c := vals[rng.Intn(len(vals))]
				vals = append(vals, b.Op(isa.ADD, a, c))
			}
		}
		b.Store(base, 1024, vals[len(vals)-1])
		b.Halt()
		f := b.MustFinish()
		golden := interpMem(t, f.Clone())
		orig := f.Clone()
		Schedule(f, ScheduleConfig{LoadLatency: 2, DeprioritizeCheckpoints: trial%2 == 0})
		if !SameShape(orig, f) {
			t.Fatalf("trial %d: scheduling changed shape", trial)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !golden.Equal(interpMem(t, f)) {
			t.Fatalf("trial %d: scheduling changed semantics", trial)
		}
	}
}

func TestScheduleRandomALUPrograms(t *testing.T) {
	ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		b := ir.NewBuilder("alu")
		out := b.MovI(int64(isa.DataBase))
		var pool []ir.VReg
		for i := 0; i < 5; i++ {
			pool = append(pool, b.MovI(int64(rng.Intn(100)+1)))
		}
		for i := 0; i < 30; i++ {
			op := ops[rng.Intn(len(ops))]
			pool = append(pool, b.Op(op, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]))
		}
		for i := 0; i < 4; i++ {
			b.Store(out, int64(i)*8, pool[len(pool)-1-i])
		}
		b.Halt()
		f := b.MustFinish()
		golden := interpMem(t, f.Clone())
		Schedule(f, ScheduleConfig{LoadLatency: 2})
		if !golden.Equal(interpMem(t, f)) {
			t.Fatalf("trial %d: semantics changed", trial)
		}
	}
}
