// Package passes implements the machine-independent optimizations the
// Turnpike compiler uses: dead-code elimination, loop strength reduction
// (the pass that *creates* the extra induction variables the paper
// observes), loop induction variable merging (LIVM, §4.1.2, which removes
// them again to kill loop-carried checkpoints), and checkpoint-aware list
// scheduling (§4.2).
package passes

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// DeadCodeElim removes instructions that define a register that is never
// live afterwards and that have no side effects (no stores, branches,
// checkpoints, or boundaries). It iterates until no instruction is removed,
// and returns the number of instructions deleted.
func DeadCodeElim(f *ir.Func) int {
	removed := 0
	for {
		lv := ir.ComputeLiveness(f)
		n := 0
		for _, b := range f.Blocks {
			la := lv.LiveAcross(b)
			out := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				if d, ok := in.Def(); ok && in.Op != isa.LD && in.Op != isa.RESTORE {
					if !la[i].Has(d) {
						n++
						continue
					}
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}
