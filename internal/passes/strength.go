package passes

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// StrengthReduce performs classic loop strength reduction: an in-loop
// address computation
//
//	off  = iv << k          (iv a basic induction variable, step s)
//	addr = base + off       (base loop-invariant)
//
// becomes a new basic induction variable initialized in the preheader and
// advanced by s<<k each iteration, eliminating the shift+add from the loop
// body. This is what production -O3 does — and, as the paper's §4.1.2
// explains, it is exactly what creates the extra loop-carried registers
// that Turnstile must checkpoint every iteration. Returns the number of
// derived induction variables created.
//
// Only single-latch loops with a unique preheader are transformed; the new
// increment is placed immediately after the basic IV's increment.
func StrengthReduce(f *ir.Func) int {
	dt := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dt)
	created := 0
	for _, l := range loops.Loops {
		created += strengthReduceLoop(f, l)
	}
	if created > 0 {
		DeadCodeElim(f)
	}
	return created
}

func strengthReduceLoop(f *ir.Func, l *ir.Loop) int {
	pre := uniquePreheader(l)
	if pre == nil || len(l.Latches) != 1 {
		return 0
	}
	ivs := ir.FindBasicIVs(f, l)
	if len(ivs) == 0 {
		return 0
	}
	ivOf := map[ir.VReg]*ir.BasicIV{}
	for i := range ivs {
		ivOf[ivs[i].Reg] = &ivs[i]
	}
	// Registers redefined inside the loop are not invariant bases.
	defined := map[ir.VReg]bool{}
	for b := range l.Body {
		for i := range b.Instrs {
			if d, ok := b.Instrs[i].Def(); ok {
				defined[d] = true
			}
		}
	}

	created := 0
	for b := range l.Body {
		for i := 0; i < len(b.Instrs); i++ {
			sh := &b.Instrs[i]
			// Match off = iv << k with iv a basic IV and k immediate.
			if sh.Op != isa.SHL || !sh.HasImm {
				continue
			}
			iv, ok := ivOf[sh.Src1]
			if !ok || iv.DefBlock == b && iv.DefIndex < i {
				// Shift after the increment would need an adjusted init;
				// keep the pass simple and skip that form.
				continue
			}
			// The shift result must feed exactly one ADD with an invariant
			// base, and have no other uses in the loop.
			add, addBlock, addIdx := singleAddUse(l, sh.Dst, b, i)
			if add == nil {
				continue
			}
			var base ir.VReg
			switch {
			case add.Src1 == sh.Dst && !defined[add.Src2]:
				base = add.Src2
			case add.Src2 == sh.Dst && !defined[add.Src1]:
				base = add.Src1
			default:
				continue
			}
			// The derived pointer must not be redefined elsewhere.
			if countDefs(f, add.Dst) != 1 {
				continue
			}
			// Rewrite: preheader gets ptr = base + (ivInit << k) when the
			// IV's init is a known constant, else ptr = base + (iv << k)
			// computed from the IV's current (entry) value.
			ptr := add.Dst
			k := sh.Imm
			step := iv.Step << uint(k&63)
			preInstrs := pre.Instrs
			insertAt := len(preInstrs)
			if t := pre.Terminator(); t != nil && (t.Op.IsBranch() || t.Op == isa.HALT) {
				insertAt--
			}
			var init []ir.Instr
			if iv.HasInitConst {
				if iv.InitConst == 0 {
					init = []ir.Instr{{Op: isa.MOV, Dst: ptr, Src1: base, Src2: ir.NoReg}}
				} else {
					init = []ir.Instr{{Op: isa.ADD, Dst: ptr, Src1: base, Src2: ir.NoReg,
						Imm: iv.InitConst << uint(k&63), HasImm: true}}
				}
			} else {
				tmp := f.NewVReg()
				init = []ir.Instr{
					{Op: isa.SHL, Dst: tmp, Src1: iv.Reg, Src2: ir.NoReg, Imm: k, HasImm: true},
					{Op: isa.ADD, Dst: ptr, Src1: base, Src2: tmp},
				}
			}
			pre.Instrs = append(preInstrs[:insertAt:insertAt],
				append(init, preInstrs[insertAt:]...)...)

			// Replace the in-loop add with a no-op (DCE removes the shift)
			// and bump the pointer right after the IV increment.
			addBlock.Instrs[addIdx] = ir.Instr{Op: isa.NOP}
			inc := ir.Instr{Op: isa.ADD, Dst: ptr, Src1: ptr, Src2: ir.NoReg, Imm: step, HasImm: true}
			db, di := iv.DefBlock, iv.DefIndex
			db.Instrs = append(db.Instrs[:di+1:di+1], append([]ir.Instr{inc}, db.Instrs[di+1:]...)...)
			created++
			// Positions shifted; restart this loop's scan.
			return created + strengthReduceLoop(f, l)
		}
	}
	return created
}

// singleAddUse finds the unique in-loop ADD consuming v, requiring v to be
// used exactly once in the loop and defined at (defBlock, defIdx). Returns
// nil when the use pattern does not match.
func singleAddUse(l *ir.Loop, v ir.VReg, defBlock *ir.Block, defIdx int) (*ir.Instr, *ir.Block, int) {
	var found *ir.Instr
	var fb *ir.Block
	fi := -1
	var uses []ir.VReg
	for b := range l.Body {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if u != v {
					continue
				}
				if found != nil || in.Op != isa.ADD || in.HasImm {
					return nil, nil, -1
				}
				found, fb, fi = in, b, i
			}
		}
	}
	// The add must appear after the shift when in the same block.
	if found == nil || (fb == defBlock && fi < defIdx) {
		return nil, nil, -1
	}
	return found, fb, fi
}

func countDefs(f *ir.Func, v ir.VReg) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d, ok := b.Instrs[i].Def(); ok && d == v {
				n++
			}
		}
	}
	return n
}

func uniquePreheader(l *ir.Loop) *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds {
		if l.Body[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}
