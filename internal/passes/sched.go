package passes

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// ScheduleConfig tunes the list scheduler.
type ScheduleConfig struct {
	// LoadLatency is the assumed load-to-use latency (L1 hit) the
	// scheduler plans for, in cycles.
	LoadLatency int
	// DeprioritizeCheckpoints schedules CKPT stores as late as their
	// dependences allow, implementing the paper's checkpoint-aware
	// instruction scheduling (§4.2): independent instructions fill the gap
	// between a register-update instruction and its checkpoint store so
	// the in-order pipeline does not stall on the data hazard.
	DeprioritizeCheckpoints bool
}

// Schedule list-schedules every basic block of f for an in-order pipeline.
// BOUND instructions and terminators act as barriers: nothing moves across
// them, so region store budgets and control flow are preserved. Memory
// operations keep their relative order except CKPT stores, which access
// disjoint architected storage and only depend on their data register and
// on same-register checkpoint order. Returns the number of instructions
// that changed position.
func Schedule(f *ir.Func, cfg ScheduleConfig) int {
	if cfg.LoadLatency <= 0 {
		cfg.LoadLatency = 2
	}
	moved := 0
	for _, b := range f.Blocks {
		moved += scheduleBlock(b, cfg)
	}
	return moved
}

func scheduleBlock(b *ir.Block, cfg ScheduleConfig) int {
	moved := 0
	// Split into segments at barriers (BOUND, branch, HALT); schedule each
	// segment independently and keep barriers in place.
	start := 0
	for i := 0; i <= len(b.Instrs); i++ {
		atEnd := i == len(b.Instrs)
		isBarrier := !atEnd && (b.Instrs[i].Op == isa.BOUND || b.Instrs[i].Op.IsBranch() || b.Instrs[i].Op == isa.HALT)
		if !atEnd && !isBarrier {
			continue
		}
		if i-start > 1 {
			moved += scheduleSegment(b.Instrs[start:i], cfg)
		}
		start = i + 1
	}
	return moved
}

type schedNode struct {
	idx      int // original position within segment
	succs    []int
	preds    int // unscheduled predecessor count
	latency  int
	critical int // longest latency path to any sink
}

func scheduleSegment(seg []ir.Instr, cfg ScheduleConfig) int {
	n := len(seg)
	nodes := make([]schedNode, n)
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range nodes[from].succs {
			if s == to {
				return
			}
		}
		nodes[from].succs = append(nodes[from].succs, to)
		nodes[to].preds++
	}

	lastDef := map[ir.VReg]int{}
	lastUses := map[ir.VReg][]int{}
	lastMem := -1                 // last LD or ST (program/spill memory order)
	lastStore := -1               // last ST
	lastCkpt := map[ir.VReg]int{} // same-register checkpoint order
	var uses []ir.VReg
	for i := range seg {
		in := &seg[i]
		nodes[i].idx = i
		lat := in.Op.ExLatency()
		if in.Op == isa.LD || in.Op == isa.RESTORE {
			lat = cfg.LoadLatency
		}
		nodes[i].latency = lat
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i) // RAW
			}
		}
		if d, ok := in.Def(); ok {
			if p, ok2 := lastDef[d]; ok2 {
				addEdge(p, i) // WAW
			}
			for _, u := range lastUses[d] {
				addEdge(u, i) // WAR
			}
			lastDef[d] = i
			lastUses[d] = lastUses[d][:0]
		}
		for _, u := range uses {
			lastUses[u] = append(lastUses[u], i)
		}
		switch in.Op {
		case isa.LD, isa.RESTORE:
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			lastMem = i
		case isa.ST:
			if lastMem >= 0 {
				addEdge(lastMem, i)
			}
			lastMem, lastStore = i, i
		case isa.CKPT:
			// Checkpoint storage is disjoint from program memory; only
			// same-register checkpoint order matters (last writer wins at
			// the architected slot).
			if p, ok := lastCkpt[in.Src2]; ok {
				addEdge(p, i)
			}
			lastCkpt[in.Src2] = i
		}
	}

	// Critical path lengths (reverse topological = reverse index order,
	// since edges always go forward).
	for i := n - 1; i >= 0; i-- {
		c := nodes[i].latency
		for _, s := range nodes[i].succs {
			if v := nodes[i].latency + nodes[s].critical; v > c {
				c = v
			}
		}
		nodes[i].critical = c
	}

	// Greedy list scheduling: simulate in-order issue; at each step pick
	// the ready node that can start earliest; break ties by criticality
	// (descending) then original order. Checkpoints optionally sort last
	// so independent work fills the def-to-checkpoint gap.
	readyAt := make([]int, n) // earliest cycle the node may start
	scheduled := make([]bool, n)
	order := make([]int, 0, n)
	clock := 0
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if scheduled[i] || nodes[i].preds > 0 {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			bi, bb := nodes[i], nodes[best]
			si, sb := maxInt(readyAt[i], clock), maxInt(readyAt[best], clock)
			ci, cb := seg[i].Op == isa.CKPT, seg[best].Op == isa.CKPT
			if cfg.DeprioritizeCheckpoints && ci != cb {
				if cb && !ci {
					best = i
				}
				continue
			}
			if si != sb {
				if si < sb {
					best = i
				}
				continue
			}
			if bi.critical != bb.critical {
				if bi.critical > bb.critical {
					best = i
				}
				continue
			}
			if bi.idx < bb.idx {
				best = i
			}
		}
		issue := maxInt(readyAt[best], clock)
		scheduled[best] = true
		order = append(order, best)
		clock = issue // in-order issue: next instruction not before this one
		done := issue + nodes[best].latency
		for _, s := range nodes[best].succs {
			nodes[s].preds--
			if done > readyAt[s] {
				readyAt[s] = done
			}
		}
	}

	moved := 0
	for pos, idx := range order {
		if pos != idx {
			moved++
		}
	}
	if moved == 0 {
		return 0
	}
	out := make([]ir.Instr, n)
	for pos, idx := range order {
		out[pos] = seg[idx]
	}
	copy(seg, out)
	return moved
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SameShape reports whether two functions have identical block and
// instruction counts — scheduling must never add or drop instructions.
func SameShape(a, b *ir.Func) bool {
	if len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		if len(a.Blocks[i].Instrs) != len(b.Blocks[i].Instrs) {
			return false
		}
	}
	return true
}
