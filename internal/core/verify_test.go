package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// TestVerifyResilienceOnWorkloads audits every compiled workload with the
// independent program-level checker under both schemes.
func TestVerifyResilienceOnWorkloads(t *testing.T) {
	for _, p := range workload.Benchmarks() {
		f := p.Build(1)
		ts, err := Compile(f, Options{Scheme: Turnstile, SBSize: 4})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := VerifyResilience(ts.Prog, 4, true); err != nil {
			t.Errorf("%s turnstile: %v", p.Name, err)
		}
		tp, err := Compile(f, TurnpikeAll(4))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := VerifyResilience(tp.Prog, 2, false); err != nil {
			t.Errorf("%s turnpike: %v", p.Name, err)
		}
	}
}

// TestVerifyResilienceOnFuzz audits fuzzed programs.
func TestVerifyResilienceOnFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 40; trial++ {
		seed := rng.Int63()
		f := workload.Fuzz(seed)
		c, err := Compile(f, TurnpikeAll(4))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := VerifyResilience(c.Prog, 2, false); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestVerifyResilienceCatchesTampering mutates valid binaries in ways a
// buggy compiler could and checks each is rejected.
func TestVerifyResilienceCatchesTampering(t *testing.T) {
	build := func() *isa.Program {
		f := buildKernel(10)
		c := compileOrDie(t, f, TurnpikeAll(4))
		return c.Prog
	}

	t.Run("missing restore", func(t *testing.T) {
		prog := build()
		// Delete the first RESTORE of some recovery block that has one.
		for _, ri := range prog.Regions {
			pc := ri.RecoveryPC
			if prog.Insts[pc].Op == isa.RESTORE {
				prog.Insts[pc] = isa.Inst{Op: isa.NOP}
				if err := VerifyResilience(prog, 2, false); err == nil {
					t.Fatal("accepted recovery block missing a restore")
				} else if !strings.Contains(err.Error(), "live at its boundary") &&
					!strings.Contains(err.Error(), "recovery block contains") {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
		}
		t.Skip("no RESTORE-leading recovery block in this kernel")
	})

	t.Run("recovery jumps to wrong region", func(t *testing.T) {
		prog := build()
		// Redirect region 1's recovery jump to region 0's bound.
		pc := prog.Regions[1].RecoveryPC
		for prog.Insts[pc].Op != isa.JMP {
			pc++
		}
		prog.Insts[pc].Target = 0 // entry bound
		if err := VerifyResilience(prog, 2, false); err == nil {
			t.Fatal("accepted recovery jumping to the wrong bound")
		}
	})

	t.Run("store smuggled into recovery", func(t *testing.T) {
		prog := build()
		pc := prog.Regions[1].RecoveryPC
		prog.Insts[pc] = isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2, Kind: isa.StoreProgram}
		if err := VerifyResilience(prog, 2, false); err == nil {
			t.Fatal("accepted store in recovery block")
		}
	})

	t.Run("budget violation", func(t *testing.T) {
		prog := build()
		if err := VerifyResilience(prog, 1, true); err == nil {
			t.Fatal("accepted an over-budget region (budget 1 with checkpoints counted)")
		}
	})

	t.Run("bound renumbered", func(t *testing.T) {
		prog := build()
		for i := range prog.Insts {
			if prog.Insts[i].Op == isa.BOUND && prog.Insts[i].Imm == 1 {
				prog.Insts[i].Imm = 2
				break
			}
		}
		if err := VerifyResilience(prog, 2, false); err == nil {
			t.Fatal("accepted out-of-order region IDs")
		}
	})

	t.Run("baseline rejected", func(t *testing.T) {
		f := buildKernel(10)
		c := compileOrDie(t, f, Options{Scheme: Baseline})
		if err := VerifyResilience(c.Prog, 2, false); err == nil {
			t.Fatal("accepted a region-less program")
		}
	})
}

// TestProgCFGLiveness sanity-checks the independent program-level liveness
// on a hand-built binary.
func TestProgCFGLiveness(t *testing.T) {
	p := &isa.Program{CkptBase: isa.DefaultCkptBase, Insts: []isa.Inst{
		{Op: isa.MOVI, Rd: 1, Imm: 5},                           // 0
		{Op: isa.MOVI, Rd: 2, Imm: 7},                           // 1
		{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2},                    // 2
		{Op: isa.BEQ, Rs1: 3, Imm: 12, HasImm: true, Target: 5}, // 3
		{Op: isa.ADD, Rd: 3, Rs1: 3, Imm: 1, HasImm: true},      // 4
		{Op: isa.MOVI, Rd: 4, Imm: 0x2000},                      // 5
		{Op: isa.ST, Rs1: 4, Rs2: 3, Kind: isa.StoreProgram},    // 6
		{Op: isa.HALT}, // 7
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := isa.BuildCFG(p)
	live := g.LiveIn()
	if !live[2].Has(1) || !live[2].Has(2) {
		t.Fatalf("operands not live before add: %b", live[2])
	}
	if live[5].Has(1) || live[5].Has(2) {
		t.Fatalf("dead operands still live at 5: %b", live[5])
	}
	if !live[5].Has(3) {
		t.Fatalf("r3 not live at 5 (used by store): %b", live[5])
	}
	// The conditional branch has two successors.
	if len(g.Succs[3]) != 2 {
		t.Fatalf("branch successors = %v", g.Succs[3])
	}
	reach := g.ReachableFrom(0)
	for i := range p.Insts {
		if !reach[i] {
			t.Fatalf("instruction %d unreachable", i)
		}
	}
}

func TestRegBitmap(t *testing.T) {
	var m isa.RegBitmap
	m = m.With(0).With(31).With(5)
	if !m.Has(0) || !m.Has(31) || !m.Has(5) || m.Has(6) {
		t.Fatal("membership wrong")
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d", m.Count())
	}
	m = m.Without(5)
	if m.Has(5) || m.Count() != 2 {
		t.Fatal("removal wrong")
	}
}
