package core

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Recipe reconstructs a pruned checkpoint's register value inside a
// recovery block: Instrs write Reg, reading only registers in Deps (which
// the recovery block restores or reconstructs first) — the paper's §4.1.3
// "value can be reconstructed from a constant or the value of other
// checkpoints at recovery time".
type Recipe struct {
	Reg    ir.VReg
	Instrs []ir.Instr
	Deps   []ir.VReg
}

// RecipeMap registers recipes per region boundary: boundID -> reg -> recipe.
type RecipeMap map[int]map[ir.VReg]Recipe

// numberBounds assigns a unique ID to every BOUND (stored in its Imm field)
// and returns the number of bounds. It must run after the final
// partitioning and before pruning/lowering, which key on these IDs.
func numberBounds(f *ir.Func) int {
	id := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.BOUND {
				b.Instrs[i].Imm = int64(id)
				id++
			}
		}
	}
	return id
}

// pruneCheckpoints removes checkpoints whose value is reconstructible at
// every recovery point that could need it, following Penny's optimal
// pruning idea restricted to ALU backward slices of depth one (constants,
// moves, and single ALU ops over still-checkpointed operands; chains
// compose across registers because each pruned operand registers its own
// recipe). Returns the number pruned and the recipes for recovery-block
// generation.
//
// A checkpoint of r defined by instruction d qualifies when:
//
//   - d is MOVI, MOV, or an ALU op that does not read r itself and does
//     not load from memory;
//   - a bounded forward walk from d reaches every BOUND at which r is
//     still live before any redefinition of r, without exhausting the
//     exploration budget;
//   - d's block dominates every such BOUND (unique reaching definition);
//   - no operand of d is redefined anywhere along the walk while r lives;
//   - every operand of d is live at each such BOUND, so the recovery block
//     can restore (or reconstruct) it first.
func pruneCheckpoints(f *ir.Func) (int, RecipeMap, error) {
	lv := ir.ComputeLiveness(f)
	dt := ir.ComputeDominators(f)
	recipes := RecipeMap{}

	type site struct {
		block *ir.Block
		idx   int // index of the CKPT instruction
	}
	var sites []site
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.CKPT {
				sites = append(sites, site{b, i})
			}
		}
	}

	drop := map[*ir.Block]map[int]bool{}
	pruned := 0
	for _, s := range sites {
		ck := &s.block.Instrs[s.idx]
		r := ck.Src2
		if s.idx == 0 {
			continue // sunk or boundary-adjacent; no adjacent def
		}
		d := &s.block.Instrs[s.idx-1]
		dd, ok := d.Def()
		if !ok || dd != r {
			continue // eager adjacency broken (e.g. by earlier transforms)
		}
		slice, deps, ok := buildSlice(f, lv, s.block, s.idx, r)
		if !ok {
			continue
		}
		bounds, ok := collectBounds(f, lv, s.block, s.idx, r, deps)
		if !ok || len(bounds) == 0 {
			continue
		}
		// Unique reaching definition: d's block dominates every bound's
		// block; same-block bounds must come after the def.
		sound := true
		for _, bp := range bounds {
			if bp.block == s.block {
				if bp.idx < s.idx {
					sound = false
					break
				}
				continue
			}
			if !dt.Dominates(s.block, bp.block) {
				sound = false
				break
			}
		}
		// Slice temporaries are written by the recovery block; they must
		// be dead at every collected bound, or the recipe would clobber a
		// restored live-in (a temp dead after the checkpoint can still be
		// redefined downstream and live at a later bound).
		if sound && len(slice) > 1 {
			var temps []ir.VReg
			for i := range slice[:len(slice)-1] {
				if td, ok := slice[i].Def(); ok && td != r {
					temps = append(temps, td)
				}
			}
			laCache := map[*ir.Block][]ir.RegSet{}
		tempCheck:
			for _, bp := range bounds {
				la, ok := laCache[bp.block]
				if !ok {
					la = lv.LiveAcross(bp.block)
					laCache[bp.block] = la
				}
				for _, tmp := range temps {
					if la[bp.idx].Has(tmp) {
						sound = false
						break tempCheck
					}
				}
			}
		}
		if !sound {
			continue
		}
		// Register the recipe at every collected bound.
		rec := Recipe{Reg: r, Instrs: slice, Deps: deps}
		for _, bp := range bounds {
			id := int(bp.block.Instrs[bp.idx].Imm)
			if recipes[id] == nil {
				recipes[id] = map[ir.VReg]Recipe{}
			}
			if _, dup := recipes[id][r]; dup {
				// Two pruned defs of r reaching one bound would mean two
				// dominating defs with no redef in between — impossible;
				// treat defensively as an internal error.
				return 0, nil, fmt.Errorf("core: duplicate recipe for %v at bound %d", r, id)
			}
			recipes[id][r] = rec
		}
		if drop[s.block] == nil {
			drop[s.block] = map[int]bool{}
		}
		drop[s.block][s.idx] = true
		pruned++
	}

	for b, idxs := range drop {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			if idxs[i] {
				continue
			}
			out = append(out, b.Instrs[i])
		}
		b.Instrs = out
	}
	// Dropping instructions invalidated recorded bound indices inside the
	// same blocks; renumbering is not needed because recipes key on the
	// BOUND's Imm ID, which travels with the instruction.
	return pruned, recipes, nil
}

// prunableDef reports whether d's value can be recomputed in a recovery
// block: pure ALU over registers/immediates (no loads, no divides —
// divides are excluded only to keep recovery blocks cheap).
func prunableDef(d *ir.Instr) bool {
	switch d.Op {
	case isa.MOVI, isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.CMPEQ, isa.CMPLT:
		return true
	}
	return false
}

// buildSlice collects the backward slice that recomputes register r from
// values restorable at recovery time — Penny's reconstruction generalized
// beyond a single instruction. Starting from r's definition (the
// instruction right above the checkpoint at ckIdx), the scan walks up the
// block resolving operands:
//
//   - an operand that is *dead* after the checkpoint (a temporary) must be
//     recomputed: its reaching definition joins the slice and its own
//     operands are resolved in turn — provided the definition is a pure
//     ALU op in the same block with no intervening redefinition;
//   - an operand that is *live* after the checkpoint becomes a leaf
//     dependency: the recovery block restores it, and collectBounds later
//     verifies it is live and stable at every relevant boundary.
//
// Slice temporaries are dead at the boundaries, so the recovery block may
// freely write their registers. The scan is bounded and bails on loads,
// self-reads, barriers, or any redefinition of a leaf inside the window
// (which would give the leaf two values).
func buildSlice(f *ir.Func, lv *ir.Liveness, blk *ir.Block, ckIdx int, r ir.VReg) ([]ir.Instr, []ir.VReg, bool) {
	const maxSlice = 6
	const maxScan = 48
	la := lv.LiveAcross(blk)
	liveAfterCk := la[ckIdx]

	d := &blk.Instrs[ckIdx-1]
	if !prunableDef(d) {
		return nil, nil, false
	}
	needTemp := map[ir.VReg]bool{} // dead temporaries awaiting a definition
	leaf := map[ir.VReg]bool{}     // live-at-recovery dependencies
	classify := func(in *ir.Instr) bool {
		var ub [3]ir.VReg
		for _, u := range in.Uses(ub[:0]) {
			if u == r {
				return false // self-read: the old value is unavailable
			}
			if liveAfterCk.Has(u) {
				leaf[u] = true
			} else {
				needTemp[u] = true
			}
		}
		return true
	}
	if !classify(d) {
		return nil, nil, false
	}
	sliceRev := []ir.Instr{*d}
	for i := ckIdx - 2; i >= 0 && len(needTemp) > 0; i-- {
		if ckIdx-2-i > maxScan {
			return nil, nil, false
		}
		in := &blk.Instrs[i]
		if in.Op == isa.BOUND || in.Op.IsBranch() {
			return nil, nil, false // temporaries defined beyond a barrier
		}
		dd, ok := in.Def()
		if !ok {
			continue
		}
		if leaf[dd] {
			// A leaf redefined inside the window would have carried two
			// different values into the slice; bail conservatively.
			return nil, nil, false
		}
		if !needTemp[dd] {
			continue
		}
		if !prunableDef(in) {
			return nil, nil, false
		}
		if len(sliceRev) >= maxSlice {
			return nil, nil, false
		}
		delete(needTemp, dd)
		if !classify(in) {
			return nil, nil, false
		}
		sliceRev = append(sliceRev, *in)
	}
	if len(needTemp) > 0 {
		return nil, nil, false // unresolved temporaries (defined upstream)
	}
	// Reverse into program order.
	slice := make([]ir.Instr, 0, len(sliceRev))
	for i := len(sliceRev) - 1; i >= 0; i-- {
		slice = append(slice, sliceRev[i])
	}
	deps := make([]ir.VReg, 0, len(leaf))
	for v := range leaf {
		deps = append(deps, v)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	return slice, deps, true
}

type boundPos struct {
	block *ir.Block
	idx   int
}

// collectBounds walks forward from the checkpoint at (startBlock, ckIdx)
// and gathers every BOUND where reg is live before any redefinition of reg.
// It aborts (ok=false) when any dep is redefined while reg lives, when the
// exploration exceeds its instruction budget, or — crucially for loops —
// when a *redefinition* of reg can itself reach one of the collected
// bounds while reg is live: in that case the bound sees two different
// reaching values (e.g. a loop header reached once from the preheader and
// again around the back edge), so a single recipe cannot be sound there.
func collectBounds(f *ir.Func, lv *ir.Liveness, startBlock *ir.Block, ckIdx int, reg ir.VReg, deps []ir.VReg) ([]boundPos, bool) {
	const maxVisit = 512
	budget := maxVisit

	liveAfterCache := map[*ir.Block][]ir.RegSet{}
	liveAfter := func(b *ir.Block) []ir.RegSet {
		la, ok := liveAfterCache[b]
		if !ok {
			la = lv.LiveAcross(b)
			liveAfterCache[b] = la
		}
		return la
	}

	depSet := map[ir.VReg]bool{}
	for _, d := range deps {
		depSet[d] = true
	}

	type pos struct {
		block *ir.Block
		idx   int
	}
	var out []boundPos
	collected := map[pos]bool{}

	// Phase 1: fresh-value walk from the checkpoint.
	{
		visited := map[*ir.Block]bool{}
		// walk scans b.Instrs[from:]. Returns (continueToSuccs, ok).
		walk := func(b *ir.Block, from int) (bool, bool) {
			la := liveAfter(b)
			for i := from; i < len(b.Instrs); i++ {
				if budget--; budget < 0 {
					return false, false
				}
				in := &b.Instrs[i]
				if d, ok := in.Def(); ok {
					if d == reg {
						return false, true // this definition ends our reach
					}
					if depSet[d] {
						return false, false // operand clobbered while reg live
					}
				}
				if in.Op == isa.BOUND {
					// live-before BOUND == live-after (no uses/defs).
					if !la[i].Has(reg) {
						return false, true // reg dead downstream
					}
					// Operands must be restorable here so the recovery
					// block can produce them before the recipe runs.
					for d := range depSet {
						if !la[i].Has(d) {
							return false, false
						}
					}
					p := pos{b, i}
					if !collected[p] {
						collected[p] = true
						out = append(out, boundPos{b, i})
					}
				}
				if in.Op == isa.HALT {
					return false, true
				}
			}
			return true, true
		}
		cont, ok := walk(startBlock, ckIdx+1)
		if !ok {
			return nil, false
		}
		if cont {
			stack := append([]*ir.Block(nil), startBlock.Succs...)
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[b] {
					continue
				}
				visited[b] = true
				cont, ok := walk(b, 0)
				if !ok {
					return nil, false
				}
				if cont {
					stack = append(stack, b.Succs...)
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, true
	}

	// Phase 2: poison walk from every *other* definition of reg anywhere
	// in the function — if a different value of reg can flow (while reg is
	// live) into a collected bound, that bound has two reaching
	// definitions and a single recipe cannot be sound there. Walking from
	// every def (rather than only the redefs the fresh walk encountered)
	// handles redefinition chains, where a second redef hides behind a
	// first and still reaches a collected bound around a loop back edge.
	var redefs []pos
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b == startBlock && i == ckIdx-1 {
				continue // the pruned checkpoint's own def
			}
			if d, ok := b.Instrs[i].Def(); ok && d == reg {
				redefs = append(redefs, pos{b, i + 1})
			}
		}
	}
	for _, rd := range redefs {
		visited := map[*ir.Block]bool{}
		walk := func(b *ir.Block, from int) (bool, bool) {
			la := liveAfter(b)
			for i := from; i < len(b.Instrs); i++ {
				if budget--; budget < 0 {
					return false, false
				}
				in := &b.Instrs[i]
				if d, ok := in.Def(); ok && d == reg {
					return false, true // another redef takes over
				}
				if in.Op == isa.BOUND {
					if !la[i].Has(reg) {
						return false, true
					}
					if collected[pos{b, i}] {
						return false, false // two reaching values at one bound
					}
				}
				if in.Op == isa.HALT {
					return false, true
				}
			}
			return true, true
		}
		cont, ok := walk(rd.block, rd.idx)
		if !ok {
			return nil, false
		}
		if cont {
			stack := append([]*ir.Block(nil), rd.block.Succs...)
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[b] {
					continue
				}
				visited[b] = true
				cont, ok := walk(b, 0)
				if !ok {
					return nil, false
				}
				if cont {
					stack = append(stack, b.Succs...)
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].block.ID != out[j].block.ID {
			return out[i].block.ID < out[j].block.ID
		}
		return out[i].idx < out[j].idx
	})
	return out, true
}
