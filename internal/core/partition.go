// Package core implements the Turnstile/Turnpike compiler co-design on top
// of the physical (post-register-allocation) IR: store-buffer-aware region
// partitioning, eager checkpointing of live-out registers, optimal
// checkpoint pruning, checkpoint sinking (LICM), recovery-block generation,
// and lowering to an executable isa.Program. The scheme drivers in
// compile.go assemble these into the Baseline, Turnstile, and Turnpike
// pipelines evaluated in the paper.
package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// partition inserts BOUND markers so that no region has more than budget
// store instructions (program stores, spill stores, and checkpoint stores
// alike) along any path, mirroring the paper's §2.1/§4.3.1 partitioning:
//
//   - a boundary at the function entry,
//   - a boundary at the top of every loop header (as in Turnstile, so every
//     iteration is its own region), and
//   - a boundary before any store that would exceed the budget, determined
//     by a path-insensitive max-stores dataflow over the loop-reduced CFG.
//
// countCkpts selects whether checkpoint stores count against the budget:
// they do for Turnstile and for coloring-less configurations (checkpoints
// quarantine in the SB like any store), but not when hardware coloring is
// assumed — colored checkpoints release to cache immediately and never
// occupy a quarantine slot, which is what lets Turnpike keep its regions
// long despite the added checkpoints.
//
// The function returns the number of BOUNDs inserted. It is re-run by the
// checkpointing fixpoint in checkpoint.go after checkpoint stores are
// inserted when checkpoints count against the budget.
func partition(f *ir.Func, budget int, countCkpts bool) (int, error) {
	if budget < 1 {
		return 0, fmt.Errorf("core: store budget %d < 1", budget)
	}
	inserted := 0

	// Entry boundary.
	entry := f.Blocks[0]
	if len(entry.Instrs) == 0 || entry.Instrs[0].Op != isa.BOUND {
		entry.Instrs = append([]ir.Instr{{Op: isa.BOUND}}, entry.Instrs...)
		inserted++
	}

	// Loop-header boundaries.
	dt := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dt)
	headers := map[*ir.Block]bool{}
	for _, l := range loops.Loops {
		headers[l.Header] = true
	}
	for h := range headers {
		if len(h.Instrs) == 0 || h.Instrs[0].Op != isa.BOUND {
			h.Instrs = append([]ir.Instr{{Op: isa.BOUND}}, h.Instrs...)
			inserted++
		}
	}

	// Budget boundaries: forward max-stores dataflow in reverse postorder.
	// Loop headers reset the incoming count (they start with a BOUND), so
	// ignoring back edges keeps the analysis a single DAG pass.
	rpo := f.ReversePostorder()
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	out := map[*ir.Block]int{}
	for _, b := range rpo {
		in := 0
		for _, p := range b.Preds {
			pp, reachable := pos[p]
			if !reachable || pp >= pos[b] {
				continue
			}
			if out[p] > in {
				in = out[p]
			}
		}
		cnt := in
		instrs := b.Instrs
		for i := 0; i < len(instrs); i++ {
			op := instrs[i].Op
			if op == isa.BOUND {
				cnt = 0
				continue
			}
			if op.IsStore() && (countCkpts || op != isa.CKPT) {
				if cnt+1 > budget {
					// Insert a boundary before this store. When the store
					// is a checkpoint adjacent to its defining instruction,
					// the boundary goes before the *definition* instead:
					// separating a def from its checkpoint would let an
					// error in the checkpoint's region leave the def's
					// region verified with a stale checkpoint, breaking
					// recovery (§4.1.4's constraint).
					at := i
					if instrs[i].Op == isa.CKPT && i > 0 {
						if d, ok := instrs[i-1].Def(); ok && d == instrs[i].Src2 {
							at = i - 1
						}
					}
					instrs = append(instrs[:at:at], append([]ir.Instr{{Op: isa.BOUND}}, instrs[at:]...)...)
					b.Instrs = instrs
					inserted++
					cnt = 0
					i = at // resume just after the new BOUND
					continue
				}
				cnt++
			}
		}
		out[b] = cnt
	}
	return inserted, nil
}

// checkBudget verifies that no region exceeds budget stores along any path,
// using the same loop-reduced dataflow as partition. It returns the number
// of violations found (0 means the partitioning is valid).
func checkBudget(f *ir.Func, budget int, countCkpts bool) int {
	rpo := f.ReversePostorder()
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	out := map[*ir.Block]int{}
	violations := 0
	for _, b := range rpo {
		in := 0
		for _, p := range b.Preds {
			pp, ok := pos[p]
			if !ok || pp >= pos[b] {
				continue
			}
			if out[p] > in {
				in = out[p]
			}
		}
		cnt := in
		for i := range b.Instrs {
			switch {
			case b.Instrs[i].Op == isa.BOUND:
				cnt = 0
			case b.Instrs[i].Op.IsStore() && (countCkpts || b.Instrs[i].Op != isa.CKPT):
				cnt++
				if cnt > budget {
					violations++
				}
			}
		}
		out[b] = cnt
	}
	return violations
}

// boundSite locates one BOUND instruction.
type boundSite struct {
	block *ir.Block
	idx   int
}

// boundSites enumerates all BOUND instructions in layout order.
func boundSites(f *ir.Func) []boundSite {
	var sites []boundSite
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.BOUND {
				sites = append(sites, boundSite{b, i})
			}
		}
	}
	return sites
}

// stripCheckpoints removes every CKPT instruction, returning the count.
// Used by the partition/checkpoint fixpoint between rounds.
func stripCheckpoints(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.CKPT {
				n++
				continue
			}
			out = append(out, b.Instrs[i])
		}
		b.Instrs = out
	}
	return n
}
