package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// buildKernel constructs a representative kernel with a loop, stores,
// branches, and cross-region live values:
//
//	for i in [0,n): { v = A[i]; s += v; if v odd: B[i] = v*3 else B[i] = v }
//	out[0] = s
func buildKernel(n int64) *ir.Func {
	b := ir.NewBuilder("kernel")
	a := b.MovI(int64(isa.DataBase))
	bb := b.MovI(int64(isa.DataBase) + 8192)
	out := b.MovI(int64(isa.DataBase) + 16384)
	i := b.MovI(0)
	s := b.MovI(0)
	head, body, odd, even, join, exit := b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)

	b.SetBlock(head)
	b.BranchI(isa.BGE, i, n, exit, body)

	b.SetBlock(body)
	off := b.OpI(isa.SHL, i, 3)
	ai := b.Op(isa.ADD, a, off)
	v := b.Load(ai, 0)
	b.OpTo(isa.ADD, s, s, v)
	bit := b.OpI(isa.AND, v, 1)
	bi := b.Op(isa.ADD, bb, off)
	b.BranchI(isa.BEQ, bit, 1, odd, even)

	b.SetBlock(odd)
	v3 := b.OpI(isa.MUL, v, 3)
	b.Store(bi, 0, v3)
	b.Jump(join)

	b.SetBlock(even)
	b.Store(bi, 0, v)
	b.Fallthrough(join)

	b.SetBlock(join)
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)

	b.SetBlock(exit)
	b.Store(out, 0, s)
	b.Halt()
	return b.MustFinish()
}

// seedInput writes the input array used by buildKernel.
func seedInput(mem *isa.Memory, n int) {
	for i := 0; i < n; i++ {
		mem.Store(isa.DataBase+uint64(i)*8, uint64(i*i+3))
	}
}

// goldenOutput runs the IR directly.
func goldenOutput(t *testing.T, f *ir.Func, n int) *isa.Memory {
	t.Helper()
	it := &ir.Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory()}
	seedInput(it.Mem, n)
	if err := it.Run(f); err != nil {
		t.Fatal(err)
	}
	return maskPrivate(it.Mem)
}

// runProgram executes a lowered program on the reference machine.
func runProgram(t *testing.T, p *isa.Program, n int) *isa.Memory {
	t.Helper()
	m := isa.NewMachine(p)
	m.StepLimit = 50_000_000
	seedInput(m.Mem, n)
	if err := m.Run(); err != nil {
		t.Fatalf("machine: %v\n%s", err, p.Disassemble())
	}
	return maskPrivate(m.OutputMemory())
}

// maskPrivate hides spill slots and checkpoint storage.
func maskPrivate(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		if e.Addr >= isa.DefaultCkptBase {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}

func compileOrDie(t *testing.T, f *ir.Func, opt Options) *Compiled {
	t.Helper()
	c, err := Compile(f, opt)
	if err != nil {
		t.Fatalf("compile %v: %v", opt.Scheme, err)
	}
	return c
}

func TestCompileBaselinePreservesSemantics(t *testing.T) {
	f := buildKernel(40)
	want := goldenOutput(t, f, 40)
	c := compileOrDie(t, f, Options{Scheme: Baseline})
	got := runProgram(t, c.Prog, 40)
	if !want.Equal(got) {
		t.Fatalf("baseline output differs:\n%s", want.Diff(got, 10))
	}
	if len(c.Prog.Regions) != 0 {
		t.Fatalf("baseline has %d regions", len(c.Prog.Regions))
	}
	if n := c.Prog.CountStores()[isa.StoreCheckpoint]; n != 0 {
		t.Fatalf("baseline has %d checkpoints", n)
	}
}

func TestCompileTurnstilePreservesSemantics(t *testing.T) {
	f := buildKernel(40)
	want := goldenOutput(t, f, 40)
	c := compileOrDie(t, f, Options{Scheme: Turnstile, SBSize: 4})
	got := runProgram(t, c.Prog, 40)
	if !want.Equal(got) {
		t.Fatalf("turnstile output differs:\n%s", want.Diff(got, 10))
	}
	if c.Stats.Regions < 3 {
		t.Fatalf("turnstile produced %d regions", c.Stats.Regions)
	}
	if c.Stats.Checkpoints == 0 {
		t.Fatal("turnstile inserted no checkpoints")
	}
	// Every region must have a recovery block ending in a JMP to a BOUND.
	for _, r := range c.Prog.Regions {
		if r.RecoveryPC < 0 {
			t.Fatalf("region %d lacks recovery block", r.ID)
		}
		// Walk the recovery block to its JMP.
		pc := r.RecoveryPC
		for c.Prog.Insts[pc].Op != isa.JMP {
			op := c.Prog.Insts[pc].Op
			if op != isa.RESTORE && !op.IsALU() {
				t.Fatalf("region %d recovery block contains %v", r.ID, op)
			}
			pc++
		}
		tgt := c.Prog.Insts[pc].Target
		if c.Prog.Insts[tgt].Op != isa.BOUND {
			t.Fatalf("region %d recovery jumps to %v, want BOUND", r.ID, c.Prog.Insts[tgt].Op)
		}
	}
}

func TestCompileTurnpikeAllPreservesSemantics(t *testing.T) {
	f := buildKernel(40)
	want := goldenOutput(t, f, 40)
	c := compileOrDie(t, f, TurnpikeAll(4))
	got := runProgram(t, c.Prog, 40)
	if !want.Equal(got) {
		t.Fatalf("turnpike output differs:\n%s", want.Diff(got, 10))
	}
}

func TestTurnpikeAblationsPreserveSemantics(t *testing.T) {
	f := buildKernel(30)
	want := goldenOutput(t, f, 30)
	cases := []Options{
		{Scheme: Turnpike, SBSize: 4},
		{Scheme: Turnpike, SBSize: 4, Prune: true},
		{Scheme: Turnpike, SBSize: 4, Prune: true, Sink: true},
		{Scheme: Turnpike, SBSize: 4, Prune: true, Sink: true, Sched: true},
		{Scheme: Turnpike, SBSize: 4, Prune: true, Sink: true, Sched: true, StoreAwareRA: true},
		TurnpikeAll(4),
		TurnpikeAll(8),
		TurnpikeAll(40),
	}
	for ci, opt := range cases {
		c := compileOrDie(t, f, opt)
		got := runProgram(t, c.Prog, 30)
		if !want.Equal(got) {
			t.Fatalf("case %d (%+v): output differs:\n%s", ci, opt, want.Diff(got, 10))
		}
	}
}

func TestRegionBudgetHolds(t *testing.T) {
	f := buildKernel(30)
	for _, sb := range []int{2, 4, 8, 40} {
		for _, scheme := range []Scheme{Turnstile, Turnpike} {
			opt := Options{Scheme: scheme, SBSize: sb}
			if scheme == Turnpike {
				opt = TurnpikeAll(sb)
			}
			c := compileOrDie(t, f, opt)
			budget := c.Stats.StoreBudget
			// Dynamic check: execute and count quarantine-bound stores per
			// dynamic region. Colored checkpoints (TurnpikeAll) bypass the
			// store buffer and do not count against the budget.
			countCkpts := scheme == Turnstile
			m := isa.NewMachine(c.Prog)
			m.StepLimit = 10_000_000
			seedInput(m.Mem, 30)
			stores := 0
			maxStores := 0
			for {
				in := &c.Prog.Insts[m.PC]
				if in.Op == isa.BOUND {
					stores = 0
				}
				if in.Op.IsStore() && (countCkpts || in.Op != isa.CKPT) {
					stores++
					if stores > maxStores {
						maxStores = stores
					}
				}
				ok, err := m.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
			if maxStores > budget {
				t.Errorf("%v SB=%d: dynamic region had %d stores > budget %d",
					scheme, sb, maxStores, budget)
			}
		}
	}
}

// buildStoreDense builds a kernel whose loop body redefines an accumulator
// between stores many times. With a small store budget the body splits into
// several regions, so intermediate definitions become live-out and need
// checkpoints; a large budget keeps one region where only the final
// definition is checkpointed — the mechanism behind the paper's Fig. 3/4.
func buildStoreDense(n int64) *ir.Func {
	b := ir.NewBuilder("storedense")
	base := b.MovI(int64(isa.DataBase))
	i := b.MovI(0)
	acc := b.MovI(0)
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, n, exit, body)
	b.SetBlock(body)
	for k := 0; k < 10; k++ {
		b.OpITo(isa.ADD, acc, acc, int64(k+1)) // redefine acc
		b.Store(base, int64(k)*8, acc)         // store between redefs
	}
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)
	b.SetBlock(exit)
	b.Store(base, 1024, acc)
	b.Halt()
	return b.MustFinish()
}

func TestSmallerSBMeansMoreCheckpoints(t *testing.T) {
	// The paper's Fig. 4: shrinking the SB from 40 to 4 raises the
	// dynamic checkpoint ratio substantially.
	f := buildStoreDense(50)
	count := func(sb int) (ckpts, total uint64) {
		c := compileOrDie(t, f, Options{Scheme: Turnstile, SBSize: sb})
		m := isa.NewMachine(c.Prog)
		m.StepLimit = 10_000_000
		seedInput(m.Mem, 50)
		for {
			if c.Prog.Insts[m.PC].Op == isa.CKPT {
				ckpts++
			}
			ok, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		return ckpts, m.Executed
	}
	c4, t4 := count(4)
	c40, t40 := count(40)
	r4 := float64(c4) / float64(t4)
	r40 := float64(c40) / float64(t40)
	if r4 <= r40 {
		t.Fatalf("checkpoint ratio did not grow when SB shrank: SB4=%.3f SB40=%.3f", r4, r40)
	}
}

func TestPruningRemovesCheckpoints(t *testing.T) {
	f := buildKernel(30)
	plain := compileOrDie(t, f, Options{Scheme: Turnpike, SBSize: 4})
	pruned := compileOrDie(t, f, Options{Scheme: Turnpike, SBSize: 4, Prune: true})
	if pruned.Stats.PrunedCkpts == 0 {
		t.Fatal("pruning removed nothing")
	}
	if pruned.Stats.Checkpoints >= plain.Stats.Checkpoints {
		t.Fatalf("checkpoints: plain=%d pruned=%d", plain.Stats.Checkpoints, pruned.Stats.Checkpoints)
	}
}

func TestRecoveryBlockRestoresExactState(t *testing.T) {
	// Run the program to each region boundary; at the boundary, roll back:
	// a scratch machine with garbage registers runs the region's recovery
	// block against the current memory and re-executes to completion. Its
	// output must equal the fault-free image. This is the compiler-side
	// recovery guarantee, independent of the pipeline's color/quarantine
	// machinery (the reference machine writes checkpoints to color 0).
	f := buildKernel(20)
	c := compileOrDie(t, f, TurnpikeAll(4))
	prog := c.Prog

	gm := isa.NewMachine(prog)
	gm.StepLimit = 10_000_000
	seedInput(gm.Mem, 20)
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	golden := maskPrivate(gm.OutputMemory())

	m := isa.NewMachine(prog)
	m.StepLimit = 10_000_000
	seedInput(m.Mem, 20)

	checked := 0
	for {
		in := &prog.Insts[m.PC]
		if in.Op == isa.BOUND && m.Executed > 0 && checked < 60 {
			region := int(in.Imm)
			rm := isa.NewMachine(prog)
			rm.Mem = m.Mem.Clone()
			rm.PC = prog.Regions[region].RecoveryPC
			rm.StepLimit = 10_000_000
			for r := range rm.Regs {
				rm.Regs[r] = 0xDEADBEEFDEADBEEF
			}
			if err := rm.Run(); err != nil {
				t.Fatalf("region %d rollback: %v", region, err)
			}
			got := maskPrivate(rm.OutputMemory())
			if !golden.Equal(got) {
				t.Fatalf("region %d: rollback re-execution diverged:\n%s",
					region, golden.Diff(got, 8))
			}
			checked++
		}
		ok, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if checked < 10 {
		t.Fatalf("only %d boundaries checked", checked)
	}
}

func TestSinkMovesCheckpointsOutOfLoop(t *testing.T) {
	// A register written every iteration but only read after the loop
	// should lose its in-loop checkpoint when sinking is on. The loop is
	// bottom-tested (do-while): the exit edge leaves *after* the
	// redefinition, so the register is dead at the loop header — the
	// paper's Fig. 10 shape. (In a top-tested loop the path header->exit
	// skips the redefinition, the register stays live at the header, and
	// sinking would be unsound; sinkOutOfLoop must refuse it.)
	// The use of `last` must also sit beyond a region boundary in the exit
	// code — otherwise the final iteration's region covers both def and
	// use and no checkpoint is needed in the first place.
	b := ir.NewBuilder("sink")
	base := b.MovI(int64(isa.DataBase))
	i := b.MovI(0)
	last := b.MovI(0)
	body, exit := b.NewBlock(), b.NewBlock()
	b.Fallthrough(body)
	b.SetBlock(body) // header == body == latch
	v := b.Load(base, 0)
	b.OpTo(isa.ADD, last, v, i) // last redefined every iteration
	b.OpITo(isa.ADD, i, i, 1)
	b.BranchI(isa.BLT, i, 16, body, exit)
	b.SetBlock(exit)
	b.Store(base, 16, i) // forces a boundary: region budget exhausted
	b.Store(base, 24, i)
	b.Store(base, 32, last) // use of last lands beyond the boundary
	b.Halt()
	f := b.MustFinish()

	noSink := compileOrDie(t, f, Options{Scheme: Turnpike, SBSize: 4})
	withSink := compileOrDie(t, f, Options{Scheme: Turnpike, SBSize: 4, Sink: true})
	if withSink.Stats.SunkOutOfLoop == 0 {
		t.Fatal("nothing sunk out of the loop")
	}
	// Dynamic checkpoint count must drop.
	countCkpts := func(p *isa.Program) uint64 {
		m := isa.NewMachine(p)
		m.StepLimit = 1_000_000
		var n uint64
		for {
			if p.Insts[m.PC].Op == isa.CKPT {
				n++
			}
			ok, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return n
			}
		}
	}
	n0, n1 := countCkpts(noSink.Prog), countCkpts(withSink.Prog)
	if n1 >= n0 {
		t.Fatalf("dynamic checkpoints: noSink=%d withSink=%d", n0, n1)
	}
}

func TestLIVMReducesCheckpointsEndToEnd(t *testing.T) {
	// The Figure 8 kernel: a strength-reduced pointer IV checkpointed each
	// iteration disappears under LIVM.
	b := ir.NewBuilder("fig8")
	i := b.MovI(0)
	base := b.MovI(int64(isa.DataBase))
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, 32, exit, body)
	b.SetBlock(body)
	off := b.OpI(isa.SHL, i, 3)
	addr := b.Op(isa.ADD, base, off)
	b.Store(addr, 0, i)
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)
	b.SetBlock(exit)
	b.Halt()
	f := b.MustFinish()

	want := goldenOutput(t, f, 0)
	no := compileOrDie(t, f, Options{Scheme: Turnpike, SBSize: 4})
	yes := compileOrDie(t, f, Options{Scheme: Turnpike, SBSize: 4, LIVM: true})
	if yes.Stats.LIVMMerged == 0 {
		t.Fatal("LIVM merged nothing")
	}
	if yes.Stats.Checkpoints >= no.Stats.Checkpoints {
		t.Fatalf("static checkpoints: without LIVM=%d with=%d", no.Stats.Checkpoints, yes.Stats.Checkpoints)
	}
	got := runProgram(t, yes.Prog, 0)
	if !want.Equal(got) {
		t.Fatalf("LIVM pipeline changed semantics:\n%s", want.Diff(got, 10))
	}
}

func TestRegionZeroCoversEntry(t *testing.T) {
	f := buildKernel(10)
	c := compileOrDie(t, f, Options{Scheme: Turnstile, SBSize: 4})
	if c.Prog.Insts[0].Op != isa.BOUND {
		t.Fatalf("program does not start with BOUND: %v", c.Prog.Insts[0])
	}
	if c.Prog.RegionOf[0] != 0 {
		t.Fatalf("entry region = %d", c.Prog.RegionOf[0])
	}
}
