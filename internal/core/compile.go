package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/passes"
	"repro/internal/regalloc"
)

// Scheme selects the resilience compilation strategy.
type Scheme int

const (
	// Baseline compiles without any resilience support: no regions, no
	// checkpoints. Its cycle count is the denominator of every overhead
	// figure in the paper.
	Baseline Scheme = iota
	// Turnstile is the prior work (Liu et al., MICRO'16): SB-sized
	// regions, eager checkpointing, full store-buffer quarantine, no
	// compiler or hardware fast-release optimizations.
	Turnstile
	// Turnpike is the paper's scheme: half-SB regions plus the
	// optimizations selected in Options.
	Turnpike
)

func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case Turnstile:
		return "turnstile"
	case Turnpike:
		return "turnpike"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Options configures a compilation. The five optimization toggles map to
// the paper's Fig. 21 ablation axes; hardware fast-release (CLQ, coloring)
// is a simulator option, not a compiler one.
type Options struct {
	Scheme Scheme
	// SBSize is the store-buffer capacity partitioning plans for.
	SBSize int
	// StoreAwareRA raises the register allocator's write weight (§4.1.1).
	StoreAwareRA bool
	// LIVM merges loop induction variables (§4.1.2).
	LIVM bool
	// Prune removes reconstructible checkpoints (§4.1.3).
	Prune bool
	// Sink applies checkpoint LICM/sinking (§4.1.4).
	Sink bool
	// Sched applies checkpoint-aware instruction scheduling (§4.2).
	Sched bool
	// ColoredCkpts tells the partitioner that the target core has the
	// hardware coloring of §4.3.2: checkpoint stores release to cache
	// immediately and never occupy a quarantine slot, so they do not count
	// against the region store budget. Must match the simulator's
	// HWColoring setting — compiling with ColoredCkpts for a core without
	// coloring can wedge the store buffer.
	ColoredCkpts bool
	// LoadLatency the scheduler plans for (defaults to the L1 hit time).
	LoadLatency int
}

// TurnpikeAll returns Options with every Turnpike compiler optimization on,
// targeting a core with both fast-release hardware schemes.
func TurnpikeAll(sbSize int) Options {
	return Options{Scheme: Turnpike, SBSize: sbSize,
		StoreAwareRA: true, LIVM: true, Prune: true, Sink: true, Sched: true,
		ColoredCkpts: true}
}

// Stats describes what the compiler did, feeding Figs. 4, 23, and 26.
type Stats struct {
	Scheme        Scheme
	StoreBudget   int
	Regions       int
	Checkpoints   int // static CKPTs remaining in the binary
	PrunedCkpts   int
	SunkInBlock   int
	SunkOutOfLoop int
	LIVMMerged    int
	SpillStores   int
	SpillLoads    int
	InstrCount    int // static body instructions (excluding recovery blocks)
	RecoveryInsts int // static recovery-block instructions
}

// Compiled bundles the executable program with compile-time statistics.
type Compiled struct {
	Prog  *isa.Program
	Stats Stats
}

// compilePhysify runs the shared front half of Compile (strength reduction
// and register allocation with default weights); split out for tests.
func compilePhysify(f *ir.Func) (*ir.Func, error) {
	passes.StrengthReduce(f)
	if _, err := regalloc.Allocate(f, regalloc.Config{WriteWeight: 1}); err != nil {
		return nil, err
	}
	return f, nil
}

// Compile lowers fn under the given scheme. The input function is not
// modified. The returned program validates and, for resilient schemes, has
// a recovery block per region.
func Compile(fn *ir.Func, opt Options) (*Compiled, error) {
	if opt.SBSize <= 0 {
		opt.SBSize = 4
	}
	f := fn.Clone()
	st := Stats{Scheme: opt.Scheme}

	// Machine-independent optimization, mirroring -O3: strength reduction
	// runs for every scheme (it is the baseline compiler behaviour the
	// paper's §4.1.2 pushes back against), LIVM only when asked.
	passes.StrengthReduce(f)
	if opt.Scheme == Turnpike && opt.LIVM {
		st.LIVMMerged = passes.LIVM(f)
	}

	ww := 1
	if opt.Scheme == Turnpike && opt.StoreAwareRA {
		ww = 3
	}
	ra, err := regalloc.Allocate(f, regalloc.Config{WriteWeight: ww})
	if err != nil {
		return nil, err
	}
	st.SpillStores, st.SpillLoads = ra.SpillStores, ra.SpillLoads

	if opt.Scheme == Baseline {
		// Generic scheduling, then a plain lowering without regions.
		passes.Schedule(f, passes.ScheduleConfig{LoadLatency: opt.LoadLatency})
		st.InstrCount = f.InstrCount()
		prog, err := lower(f, nil, false)
		if err != nil {
			return nil, err
		}
		return &Compiled{Prog: prog, Stats: st}, nil
	}

	budget := opt.SBSize
	if opt.Scheme == Turnpike {
		// §4.3.1: Turnpike regions use at most half the SB so one region's
		// verification overlaps the next region's execution.
		budget = opt.SBSize / 2
		if budget < 1 {
			budget = 1
		}
	}
	st.StoreBudget = budget

	countCkpts := !(opt.Scheme == Turnpike && opt.ColoredCkpts)
	if _, err := partitionAndCheckpoint(f, budget, countCkpts); err != nil {
		return nil, err
	}
	st.Regions = numberBounds(f)

	recipes := RecipeMap{}
	if opt.Scheme == Turnpike && opt.Prune {
		n, r, err := pruneCheckpoints(f)
		if err != nil {
			return nil, err
		}
		st.PrunedCkpts, recipes = n, r
	}
	if opt.Scheme == Turnpike && opt.Sink {
		st.SunkInBlock, st.SunkOutOfLoop = sinkCheckpoints(f, budget, countCkpts)
	}
	if opt.Scheme == Turnpike && opt.Sched {
		passes.Schedule(f, passes.ScheduleConfig{
			LoadLatency:             opt.LoadLatency,
			DeprioritizeCheckpoints: true,
		})
	}
	st.Checkpoints = countCheckpoints(f)
	st.InstrCount = f.InstrCount()

	prog, err := lower(f, recipes, true)
	if err != nil {
		return nil, err
	}
	// Recovery code occupies the tail, starting at the earliest recovery
	// PC (the body may be longer than the IR instruction count when the
	// lowering synthesizes fall-through jumps).
	recoveryStart := len(prog.Insts)
	for _, ri := range prog.Regions {
		if ri.RecoveryPC >= 0 && ri.RecoveryPC < recoveryStart {
			recoveryStart = ri.RecoveryPC
		}
	}
	st.RecoveryInsts = len(prog.Insts) - recoveryStart
	return &Compiled{Prog: prog, Stats: st}, nil
}
