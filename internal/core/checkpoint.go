package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// needsCkpt computes, for every program point, the set of registers whose
// current value must be checkpointed: X(p) contains r when some path from p
// reaches a BOUND at which r is live, with no intervening redefinition of
// r. A definition of r at instruction i therefore needs an (eager)
// checkpoint exactly when r ∈ X(after i) — which also reproduces the
// paper's "only the last definition in a region is live-out" behaviour,
// since an intervening redefinition kills the path.
//
// The transfer function, applied backward per instruction:
//
//	X_before = (X_after − def(i)) ∪ (i is BOUND ? live_at(i) : ∅)
type needsCkpt struct {
	// in/out are block-level fixed-point sets.
	in, out map[*ir.Block]ir.RegSet
	lv      *ir.Liveness
	fn      *ir.Func
}

func computeNeedsCkpt(f *ir.Func, lv *ir.Liveness) *needsCkpt {
	nc := &needsCkpt{
		in:  make(map[*ir.Block]ir.RegSet, len(f.Blocks)),
		out: make(map[*ir.Block]ir.RegSet, len(f.Blocks)),
		lv:  lv,
		fn:  f,
	}
	n := f.NumVRegs
	for _, b := range f.Blocks {
		nc.in[b] = ir.NewRegSet(n)
		nc.out[b] = ir.NewRegSet(n)
	}
	rpo := f.ReversePostorder()
	changed := true
	tmp := ir.NewRegSet(n)
	for changed {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := nc.out[b]
			for _, s := range b.Succs {
				if out.UnionWith(nc.in[s]) {
					changed = true
				}
			}
			tmp.CopyFrom(out)
			nc.transferBlock(b, tmp, nil)
			if nc.in[b].UnionWith(tmp) {
				changed = true
			}
		}
	}
	return nc
}

// transferBlock applies the backward transfer through b starting from the
// set in cur (which is mutated to become X at block entry). When visit is
// non-nil it is called with X(after i) for every instruction, enabling the
// insertion pass to reuse the same transfer code.
func (nc *needsCkpt) transferBlock(b *ir.Block, cur ir.RegSet, visit func(i int, after ir.RegSet)) {
	liveAfter := nc.lv.LiveAcross(b)
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		if visit != nil {
			visit(i, cur)
		}
		in := &b.Instrs[i]
		if d, ok := in.Def(); ok {
			cur.Remove(d)
		}
		if in.Op == isa.BOUND {
			// Live set at the BOUND: registers live after it (BOUND has
			// no uses or defs, so before == after).
			cur.UnionWith(liveAfter[i])
		}
	}
}

// insertCheckpoints places `ckpt r` right after every definition whose
// value is needed across a region boundary (eager checkpointing, §2.2).
// Returns the number of checkpoints inserted.
func insertCheckpoints(f *ir.Func) int {
	lv := ir.ComputeLiveness(f)
	nc := computeNeedsCkpt(f, lv)
	inserted := 0
	for _, b := range f.Blocks {
		// Collect insertion points first (backward walk), then splice.
		var points []int // insert after b.Instrs[points[k]]
		var regs []ir.VReg
		cur := nc.out[b].Clone()
		nc.transferBlock(b, cur, func(i int, after ir.RegSet) {
			in := &b.Instrs[i]
			if d, ok := in.Def(); ok && after.Has(d) {
				points = append(points, i)
				regs = append(regs, d)
			}
		})
		if len(points) == 0 {
			continue
		}
		// points are in descending instruction order; splice from the end
		// so earlier indices stay valid.
		for k := 0; k < len(points); k++ {
			i, r := points[k], regs[k]
			ck := ir.Instr{Op: isa.CKPT, Dst: ir.NoReg, Src1: ir.NoReg, Src2: r, Kind: isa.StoreCheckpoint}
			b.Instrs = append(b.Instrs[:i+1:i+1], append([]ir.Instr{ck}, b.Instrs[i+1:]...)...)
			inserted++
		}
	}
	return inserted
}

// partitionAndCheckpoint runs the partition/checkpoint fixpoint: partition
// with the store budget, insert eager checkpoints, and re-partition when
// the checkpoints themselves blow the budget (checkpoint stores occupy
// store-buffer entries too — the feedback loop behind the paper's Fig. 4).
// At the fixpoint no region exceeds budget stores on any path.
//
// With countCkpts=false (Turnpike with hardware coloring), checkpoints
// never occupy a quarantine slot, so one partitioning pass suffices and
// regions stay long.
func partitionAndCheckpoint(f *ir.Func, budget int, countCkpts bool) (ckpts int, err error) {
	// Convergence is monotone (boundaries only ever accumulate, bounded by
	// the instruction count) but can take a round per added boundary on
	// store-dense unrolled bodies.
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		if _, err := partition(f, budget, countCkpts); err != nil {
			return 0, err
		}
		n := insertCheckpoints(f)
		if checkBudget(f, budget, countCkpts) == 0 {
			return n, nil
		}
		// Budget violated by checkpoint stores: remove them, add the
		// missing boundaries (partition sees the violation spots only with
		// the checkpoints present, so re-insert boundaries on a copy that
		// still has them — equivalently, partition now, then strip).
		if _, err := partition(f, budget, countCkpts); err != nil {
			return 0, err
		}
		stripCheckpoints(f)
	}
	return 0, fmt.Errorf("core: partition/checkpoint did not converge in %d rounds (budget %d)", maxRounds, budget)
}

// dedupeCheckpoints removes redundant checkpoints: within a block segment
// delimited by BOUNDs, several `ckpt r` with no intervening definition of r
// store the same value to the same architected slot — only the last one is
// kept. Sinking (sink.go) creates such duplicates by design (Fig. 10).
func dedupeCheckpoints(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		// lastCkpt maps reg -> index of the most recent kept checkpoint in
		// the current segment; earlier ones are marked for deletion when a
		// later duplicate appears before any redef or boundary.
		lastCkpt := map[ir.VReg]int{}
		drop := map[int]bool{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch {
			case in.Op == isa.BOUND || in.Op.IsBranch():
				lastCkpt = map[ir.VReg]int{}
			case in.Op == isa.CKPT:
				if prev, ok := lastCkpt[in.Src2]; ok {
					drop[prev] = true
					removed++
				}
				lastCkpt[in.Src2] = i
			default:
				if d, ok := in.Def(); ok {
					delete(lastCkpt, d)
				}
			}
		}
		if len(drop) == 0 {
			continue
		}
		out := b.Instrs[:0]
		for i := range b.Instrs {
			if drop[i] {
				continue
			}
			out = append(out, b.Instrs[i])
		}
		b.Instrs = out
	}
	return removed
}

// countCheckpoints returns the number of CKPT instructions in f.
func countCheckpoints(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.CKPT {
				n++
			}
		}
	}
	return n
}
