package core

import (
	"testing"

	"repro/internal/workload"
)

func TestAnalyzeRegionsConsistency(t *testing.T) {
	for _, name := range []string{"gcc", "lbm", "radix"} {
		p, _ := workload.ByName(name)
		f := p.Build(2)
		c, err := Compile(f, TurnpikeAll(4))
		if err != nil {
			t.Fatal(err)
		}
		reports, err := AnalyzeRegions(c.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != c.Stats.Regions {
			t.Fatalf("%s: %d reports for %d regions", name, len(reports), c.Stats.Regions)
		}
		budget := c.Stats.StoreBudget
		totalRecovery := 0
		for _, r := range reports {
			// Colored checkpoints are excluded from the budget; regular
			// stores must respect it.
			if r.Stores-r.Ckpts > budget {
				t.Errorf("%s region %d: %d regular stores > budget %d",
					name, r.ID, r.Stores-r.Ckpts, budget)
			}
			if r.RecoveryInsts < 1 {
				t.Errorf("%s region %d: no recovery block", name, r.ID)
			}
			if r.Insts < 0 || r.LiveIn < 0 {
				t.Errorf("%s region %d: negative maxima", name, r.ID)
			}
			totalRecovery += r.RecoveryInsts
		}
		if totalRecovery != c.Stats.RecoveryInsts {
			t.Errorf("%s: recovery insts %d != compile stats %d",
				name, totalRecovery, c.Stats.RecoveryInsts)
		}
	}
}

func TestAnalyzeRegionsMatchesKnownShape(t *testing.T) {
	// The golden kernel from golden_test.go: one region, three stores.
	f := buildKernel(5)
	c := compileOrDie(t, f, Options{Scheme: Turnstile, SBSize: 40})
	reports, err := AnalyzeRegions(c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// SB-40 budget keeps boundaries only at entry and the loop header.
	if len(reports) < 2 || len(reports) > 4 {
		t.Fatalf("unexpected region count %d", len(reports))
	}
	for _, r := range reports {
		if r.Stores > 40 {
			t.Errorf("region %d exceeds the SB-40 budget: %d", r.ID, r.Stores)
		}
	}
}

func TestAnalyzeRegionsRejectsBaseline(t *testing.T) {
	f := buildKernel(5)
	c := compileOrDie(t, f, Options{Scheme: Baseline})
	if _, err := AnalyzeRegions(c.Prog); err == nil {
		t.Fatal("accepted a region-less binary")
	}
}
