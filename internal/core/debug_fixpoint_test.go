package core

import (
	"testing"

	"repro/internal/ir"
)

// TestDebugFixpointTrace traces the partition/checkpoint loop round by
// round on the kernel to diagnose non-convergence; kept as a regression
// canary for the fixpoint's monotonicity.
func TestDebugFixpointTrace(t *testing.T) {
	f := buildKernel(10)
	g := f.Clone()
	// Mimic Compile's preamble minimally: regalloc to physical form.
	phys, err := physify(g)
	if err != nil {
		t.Fatal(err)
	}
	budget := 4
	for round := 0; round < 6; round++ {
		nb, err := partition(phys, budget, true)
		if err != nil {
			t.Fatal(err)
		}
		nc := insertCheckpoints(phys)
		v := checkBudget(phys, budget, true)
		t.Logf("round %d: +%d bounds, %d ckpts inserted, %d violations, %d instrs",
			round, nb, nc, v, phys.InstrCount())
		if v == 0 {
			return
		}
		nb2, _ := partition(phys, budget, true)
		t.Logf("        fix pass added %d bounds; violations now %d", nb2, checkBudget(phys, budget, true))
		stripCheckpoints(phys)
	}
	t.Fatalf("did not converge:\n%s", phys.String())
}

// physify runs the regalloc step the way Compile does.
func physify(f *ir.Func) (*ir.Func, error) {
	return compilePhysify(f)
}
