package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// TestRecoveryExactOnWorkloads replays every workload kernel on the
// reference machine and, at sampled dynamic region boundaries, simulates a
// worst-case rollback: a scratch machine whose registers are garbage runs
// the region's recovery block against the current memory image and then
// re-executes the program to completion. Its final output memory must
// equal the fault-free run's. This validates the compiler's recovery
// metadata — live-in restores, pruning recipes (including multi-
// instruction slices whose temporaries are dead), and sinking — on all 36
// kernels, independent of the pipeline's quarantine/coloring machinery.
func TestRecoveryExactOnWorkloads(t *testing.T) {
	for _, p := range workload.Benchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f := p.Build(1)
			c, err := Compile(f, TurnpikeAll(4))
			if err != nil {
				t.Fatal(err)
			}
			prog := c.Prog

			// Golden run for the final memory image.
			gm := isa.NewMachine(prog)
			gm.StepLimit = 20_000_000
			p.SeedMemory(gm.Mem)
			if err := gm.Run(); err != nil {
				t.Fatal(err)
			}
			golden := maskPrivate(gm.OutputMemory())

			m := isa.NewMachine(prog)
			m.StepLimit = 20_000_000
			p.SeedMemory(m.Mem)

			checked := 0
			boundSeen := 0
			const maxChecks = 25
			for {
				in := &prog.Insts[m.PC]
				if in.Op == isa.BOUND && m.Executed > 0 && checked < maxChecks {
					boundSeen++
					// Sample boundaries; checking each one would square
					// the runtime.
					if boundSeen%37 == 1 {
						region := int(in.Imm)
						rpc := prog.Regions[region].RecoveryPC
						rm := isa.NewMachine(prog)
						rm.Mem = m.Mem.Clone()
						rm.PC = rpc
						rm.StepLimit = 30_000_000
						for r := range rm.Regs {
							rm.Regs[r] = 0xDEADBEEFDEADBEEF // prove restores suffice
						}
						if err := rm.Run(); err != nil {
							t.Fatalf("region %d (pc %d) rollback: %v", region, m.PC, err)
						}
						got := maskPrivate(rm.OutputMemory())
						if !golden.Equal(got) {
							t.Fatalf("region %d (pc %d): rollback re-execution diverged:\n%s",
								region, m.PC, golden.Diff(got, 8))
						}
						checked++
					}
				}
				ok, err := m.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
			if checked == 0 {
				t.Fatal("no boundaries checked")
			}
		})
	}
}
