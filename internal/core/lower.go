package core

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// lower linearizes a physical-register IR function into an executable
// isa.Program. When genRecovery is true, every BOUND becomes a region with
// a compiler-generated recovery block appended after the program body:
// RESTOREs for the region's live-in registers, reconstruction code for
// pruned checkpoints (recipes), and a jump back to the region's boundary —
// the paper's recovery-PC/recovery-block machinery (§2.2, Fig. 9).
func lower(f *ir.Func, recipes RecipeMap, genRecovery bool) (*isa.Program, error) {
	if f.NumVRegs > isa.NumRegs {
		return nil, fmt.Errorf("core: lower called on unallocated function (%d vregs)", f.NumVRegs)
	}

	// Layout: block start offsets, accounting for fall-through JMPs that
	// must be synthesized when the layout-successor differs.
	type layout struct {
		start    int
		extraJmp bool // JMP appended after the block's instructions
		jmpTo    *ir.Block
	}
	lay := make(map[*ir.Block]*layout, len(f.Blocks))
	pos := 0
	for bi, b := range f.Blocks {
		l := &layout{start: pos}
		lay[b] = l
		pos += len(b.Instrs)
		var next *ir.Block
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1]
		}
		t := b.Terminator()
		switch {
		case t != nil && t.Op.IsCondBranch():
			if b.Succs[1] != next {
				l.extraJmp, l.jmpTo = true, b.Succs[1]
			}
		case t != nil && (t.Op == isa.JMP || t.Op == isa.HALT):
			// explicit control transfer; nothing to add
		default:
			if len(b.Succs) != 1 {
				return nil, fmt.Errorf("core: block %s lacks terminator and has %d succs", b, len(b.Succs))
			}
			if b.Succs[0] != next {
				l.extraJmp, l.jmpTo = true, b.Succs[0]
			}
		}
		if l.extraJmp {
			pos++
		}
	}

	prog := &isa.Program{CkptBase: isa.DefaultCkptBase}
	boundLinear := map[int]int{} // bound ID -> linear index
	var boundOrder []int         // bound IDs in emission order

	emit := func(in isa.Inst) { prog.Insts = append(prog.Insts, in) }
	lowReg := func(v ir.VReg) isa.Reg {
		if v == ir.NoReg {
			return 0
		}
		return isa.Reg(v)
	}

	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			out := isa.Inst{
				Op:     in.Op,
				Rd:     lowReg(in.Dst),
				Rs1:    lowReg(in.Src1),
				Rs2:    lowReg(in.Src2),
				Imm:    in.Imm,
				HasImm: in.HasImm,
				Kind:   in.Kind,
			}
			switch {
			case in.Op == isa.BOUND:
				id := int(in.Imm)
				boundLinear[id] = len(prog.Insts)
				boundOrder = append(boundOrder, id)
				out.Imm = int64(len(boundOrder) - 1) // region ID in program order
			case in.Op.IsCondBranch():
				out.Target = lay[b.Succs[0]].start
			case in.Op == isa.JMP:
				out.Target = lay[b.Succs[0]].start
			}
			emit(out)
		}
		if l := lay[b]; l.extraJmp {
			emit(isa.Inst{Op: isa.JMP, Target: lay[l.jmpTo].start})
		}
	}
	bodyLen := len(prog.Insts)

	// Sanity: computed layout matches emission.
	for _, b := range f.Blocks {
		if lay[b].start >= bodyLen && len(b.Instrs) > 0 {
			return nil, fmt.Errorf("core: layout overflow for %s", b)
		}
	}

	if genRecovery {
		if err := emitRecovery(f, prog, recipes, boundLinear, boundOrder); err != nil {
			return nil, err
		}
	}

	// RegionOf: region of each body instruction (last BOUND seen); -1 for
	// recovery code and anything before the first BOUND.
	prog.RegionOf = make([]int, len(prog.Insts))
	cur := -1
	for i := 0; i < len(prog.Insts); i++ {
		if i >= bodyLen {
			cur = -1
		} else if prog.Insts[i].Op == isa.BOUND {
			cur = int(prog.Insts[i].Imm)
		}
		prog.RegionOf[i] = cur
	}

	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: lowered program invalid: %w", err)
	}
	return prog, nil
}

// emitRecovery appends one recovery block per region and fills
// prog.Regions. Region IDs are bound emission order; RecoveryPC points at
// the block, which ends by jumping back to the region's BOUND.
func emitRecovery(f *ir.Func, prog *isa.Program, recipes RecipeMap, boundLinear map[int]int, boundOrder []int) error {
	// Live-in registers per bound from the physical IR.
	lv := ir.ComputeLiveness(f)
	liveAt := map[int][]ir.VReg{} // bound ID -> live regs (sorted)
	for _, b := range f.Blocks {
		var la []ir.RegSet
		for i := range b.Instrs {
			if b.Instrs[i].Op != isa.BOUND {
				continue
			}
			if la == nil {
				la = lv.LiveAcross(b)
			}
			id := int(b.Instrs[i].Imm)
			// Imm was rewritten during lowering? No: lowering copies, the
			// IR still holds the bound ID assigned by numberBounds.
			liveAt[id] = la[i].Members()
		}
	}

	prog.Regions = make([]isa.RegionInfo, len(boundOrder))
	for regionID, boundID := range boundOrder {
		entry := len(prog.Insts)
		live := liveAt[boundID]
		recs := recipes[boundID]

		// Restores first (registers without recipes), ascending.
		var pending []Recipe
		for _, r := range live {
			if rec, ok := recs[r]; ok {
				pending = append(pending, rec)
				continue
			}
			prog.Insts = append(prog.Insts, isa.Inst{Op: isa.RESTORE, Rd: isa.Reg(r)})
		}
		// Recipes in dependency order: a recipe runs once all of its deps
		// are available (restored above, or produced by an earlier recipe).
		avail := map[ir.VReg]bool{}
		for _, r := range live {
			if _, ok := recs[r]; !ok {
				avail[r] = true
			}
		}
		sort.Slice(pending, func(i, j int) bool { return pending[i].Reg < pending[j].Reg })
		for len(pending) > 0 {
			progress := false
			rest := pending[:0]
			for _, rec := range pending {
				ready := true
				for _, d := range rec.Deps {
					if !avail[d] {
						ready = false
						break
					}
				}
				if !ready {
					rest = append(rest, rec)
					continue
				}
				for _, in := range rec.Instrs {
					prog.Insts = append(prog.Insts, isa.Inst{
						Op: in.Op, Rd: isa.Reg(in.Dst),
						Rs1: lowerSrc(in.Src1), Rs2: lowerSrc(in.Src2),
						Imm: in.Imm, HasImm: in.HasImm,
					})
				}
				avail[rec.Reg] = true
				progress = true
			}
			pending = append([]Recipe(nil), rest...)
			if !progress {
				return fmt.Errorf("core: recipe dependency cycle at region %d", regionID)
			}
		}
		prog.Insts = append(prog.Insts, isa.Inst{Op: isa.JMP, Target: boundLinear[boundID]})
		prog.Regions[regionID] = isa.RegionInfo{ID: regionID, RecoveryPC: entry}
	}
	return nil
}

func lowerSrc(v ir.VReg) isa.Reg {
	if v == ir.NoReg {
		return 0
	}
	return isa.Reg(v)
}
