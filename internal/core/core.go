package core
