package core

import (
	"fmt"

	"repro/internal/isa"
)

// RegionReport describes one static region of a compiled binary, derived
// purely from the program (no compiler state): the analysis a tool or a
// reviewer runs over an artifact.
type RegionReport struct {
	ID      int
	BoundPC int
	// Insts is the maximum instruction count from this boundary to any
	// next boundary (longest path through the region, boundaries and
	// recovery code excluded).
	Insts int
	// Stores / Ckpts are the maximum store and checkpoint counts along
	// any path through the region.
	Stores, Ckpts int
	// LiveIn counts registers the region's recovery must produce.
	LiveIn int
	// RecoveryInsts is the region's recovery block length (JMP included).
	RecoveryInsts int
}

// AnalyzeRegions computes per-region static structure for a resilient
// binary. It complements VerifyResilience: where the verifier answers
// "is this sound", the analyzer answers "what does it look like" —
// region sizes for Fig. 26-style reporting, store pressure against the
// budget, recovery block weight.
func AnalyzeRegions(p *isa.Program) ([]RegionReport, error) {
	if len(p.Regions) == 0 {
		return nil, fmt.Errorf("core: program has no regions")
	}
	g := isa.BuildCFG(p)
	liveIn := g.LiveIn()

	reports := make([]RegionReport, len(p.Regions))
	boundPC := map[int]int{}
	for i := range p.Insts {
		if p.Insts[i].Op == isa.BOUND {
			boundPC[int(p.Insts[i].Imm)] = i
		}
	}
	for id := range p.Regions {
		pc, ok := boundPC[id]
		if !ok {
			return nil, fmt.Errorf("core: region %d has no BOUND", id)
		}
		r := RegionReport{ID: id, BoundPC: pc, LiveIn: liveIn[pc].Count()}
		r.Insts, r.Stores, r.Ckpts = regionMaxima(p, g, pc)
		if rpc := p.Regions[id].RecoveryPC; rpc >= 0 {
			for i := rpc; i < len(p.Insts); i++ {
				r.RecoveryInsts++
				if p.Insts[i].Op == isa.JMP {
					break
				}
			}
		}
		reports[id] = r
	}
	return reports, nil
}

// regionMaxima walks forward from the region's BOUND to the next
// boundaries, returning the maximum instruction, store, and checkpoint
// counts along any path. The walk is bounded and cycle-safe: a block
// revisited with no higher count is not re-expanded.
func regionMaxima(p *isa.Program, g *isa.ProgCFG, boundPC int) (insts, stores, ckpts int) {
	type state struct{ i, s, c int }
	best := map[int]state{}
	type item struct {
		pc     int
		st     state
		budget int
	}
	stack := []item{{boundPC + 1, state{}, 4096}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pc, st := it.pc, it.st
		if pc < 0 || pc >= len(p.Insts) || it.budget <= 0 {
			continue
		}
		if b, ok := best[pc]; ok && b.i >= st.i && b.s >= st.s && b.c >= st.c {
			continue
		}
		if b, ok := best[pc]; !ok || st.i > b.i || st.s > b.s || st.c > b.c {
			nb := best[pc]
			if st.i > nb.i {
				nb.i = st.i
			}
			if st.s > nb.s {
				nb.s = st.s
			}
			if st.c > nb.c {
				nb.c = st.c
			}
			best[pc] = nb
		}
		in := &p.Insts[pc]
		if in.Op == isa.BOUND || in.Op == isa.HALT {
			if st.i > insts {
				insts = st.i
			}
			if st.s > stores {
				stores = st.s
			}
			if st.c > ckpts {
				ckpts = st.c
			}
			continue
		}
		st.i++
		if in.Op.IsStore() {
			st.s++
			if in.Op == isa.CKPT {
				st.c++
			}
		}
		for _, nxt := range g.Succs[pc] {
			stack = append(stack, item{nxt, st, it.budget - 1})
		}
	}
	return insts, stores, ckpts
}
