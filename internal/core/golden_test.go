package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// TestGoldenLowering pins the lowered form of a tiny kernel: a change to
// partitioning, checkpointing, or lowering that alters the emitted code
// shows up here as an explicit, reviewable diff rather than a silent
// perturbation of every experiment.
func TestGoldenLowering(t *testing.T) {
	b := ir.NewBuilder("golden")
	out := b.MovI(int64(isa.DataBase))
	x := b.MovI(7)
	y := b.OpI(isa.MUL, x, 6)
	b.Store(out, 0, y)
	b.Store(out, 8, x)
	b.Store(out, 16, y)
	b.Halt()
	f := b.MustFinish()

	c, err := Compile(f, Options{Scheme: Turnstile, SBSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := trimTrailing(c.Prog.Disassemble())
	want := strings.TrimLeft(`
   0: bound                        ; R0
   1: movi r0, #4096               ; R0
   2: movi r1, #65536              ; R0
   3: movi r2, #7                  ; R0
   4: mul r3, r2, #6               ; R0
   5: st r3, [r1, #0]              ; R0
   6: st r2, [r1, #8]              ; R0
   7: st r3, [r1, #16]             ; R0
   8: halt                         ; R0
   9: jmp @0
`, "\n")
	if got != want {
		t.Fatalf("lowering changed; update the golden if intentional.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Sanity on the pinned shape: single region (3 stores ≤ budget 4,
	// no loop), no checkpoints needed (nothing lives across a boundary).
	if c.Stats.Regions != 1 || c.Stats.Checkpoints != 0 {
		t.Fatalf("stats drifted: %+v", c.Stats)
	}
}

// trimTrailing removes per-line right padding from a disassembly.
func trimTrailing(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " ")
	}
	return strings.Join(lines, "\n")
}

// TestGoldenLoweringBranchLayout pins the fall-through/JMP synthesis rules.
func TestGoldenLoweringBranchLayout(t *testing.T) {
	b := ir.NewBuilder("branches")
	x := b.MovI(1)
	tb, fb, jb := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.BranchI(isa.BEQ, x, 1, tb, fb)
	b.SetBlock(tb)
	b.OpITo(isa.ADD, x, x, 10)
	b.Jump(jb)
	b.SetBlock(fb)
	b.OpITo(isa.ADD, x, x, 20)
	b.Fallthrough(jb)
	b.SetBlock(jb)
	out := b.MovI(int64(isa.DataBase))
	b.Store(out, 0, x)
	b.Halt()
	f := b.MustFinish()

	c, err := Compile(f, Options{Scheme: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	dis := c.Prog.Disassemble()
	// Layout order is block creation order (entry, taken, fallthrough,
	// join): the taken block directly follows the branch, so the
	// *fallthrough* edge needs a synthesized JMP after the branch, and the
	// taken block's explicit JMP reaches the join.
	for _, frag := range []string{"beq r1, #1, @4", "jmp @6", "jmp @7"} {
		if !strings.Contains(dis, frag) {
			t.Fatalf("missing %q in:\n%s", frag, dis)
		}
	}
	if strings.Count(dis, "jmp") != 2 {
		t.Fatalf("expected exactly two jmps:\n%s", dis)
	}
	// Execute to validate the layout semantics end to end.
	m := isa.NewMachine(c.Prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(isa.DataBase); got != 11 {
		t.Fatalf("result %d, want 11 (taken path)", got)
	}
}
