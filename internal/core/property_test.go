package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/workload"
)

// genProgram and seedFuzzMem delegate to the shared fuzz kernel generator.
func genProgram(seed int64) *ir.Func { return workload.Fuzz(seed) }

func seedFuzzMem(mem *isa.Memory, seed int64) { workload.FuzzSeedMemory(mem, seed) }

// goldenFuzz interprets the IR directly.
func goldenFuzz(t *testing.T, f *ir.Func, seed int64) *isa.Memory {
	t.Helper()
	it := &ir.Interp{Regs: make([]uint64, f.NumVRegs), Mem: isa.NewMemory(), StepLimit: 5_000_000}
	seedFuzzMem(it.Mem, seed)
	if err := it.Run(f); err != nil {
		t.Fatalf("seed %d: interp: %v", seed, err)
	}
	return maskPrivate(it.Mem)
}

// TestQuickCompileAllSchemesPreservesSemantics is the central property of
// the compiler: for random structured programs and random optimization
// subsets, the lowered binary computes exactly what the IR computes.
func TestQuickCompileAllSchemesPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		f := genProgram(seed)
		want := goldenFuzz(t, f, seed)
		rng := rand.New(rand.NewSource(seed ^ 0xabcdef))
		opts := []Options{
			{Scheme: Baseline},
			{Scheme: Turnstile, SBSize: 4},
			{
				Scheme: Turnpike, SBSize: 2 + 2*rng.Intn(4),
				StoreAwareRA: rng.Intn(2) == 0,
				LIVM:         rng.Intn(2) == 0,
				Prune:        rng.Intn(2) == 0,
				Sink:         rng.Intn(2) == 0,
				Sched:        rng.Intn(2) == 0,
				ColoredCkpts: rng.Intn(2) == 0,
			},
			TurnpikeAll(4),
		}
		for _, opt := range opts {
			c, err := Compile(f, opt)
			if err != nil {
				t.Logf("seed %d opt %+v: %v", seed, opt, err)
				return false
			}
			m := isa.NewMachine(c.Prog)
			m.StepLimit = 5_000_000
			seedFuzzMem(m.Mem, seed)
			if err := m.Run(); err != nil {
				t.Logf("seed %d opt %+v: run: %v", seed, opt, err)
				return false
			}
			if !want.Equal(maskPrivate(m.OutputMemory())) {
				t.Logf("seed %d opt %+v: output diverged:\n%s",
					seed, opt, want.Diff(maskPrivate(m.OutputMemory()), 8))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(20260704)),
		Values:   nil,
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecoveryRollbackOnFuzz extends the rollback property to random
// programs: at sampled boundaries, a garbage-register machine running the
// recovery block and re-executing must land on the fault-free output.
func TestQuickRecoveryRollbackOnFuzz(t *testing.T) {
	check := func(seed int64) bool {
		f := genProgram(seed)
		c, err := Compile(f, TurnpikeAll(4))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		prog := c.Prog
		gm := isa.NewMachine(prog)
		gm.StepLimit = 5_000_000
		seedFuzzMem(gm.Mem, seed)
		if err := gm.Run(); err != nil {
			t.Logf("seed %d: golden: %v", seed, err)
			return false
		}
		golden := maskPrivate(gm.OutputMemory())

		m := isa.NewMachine(prog)
		m.StepLimit = 5_000_000
		seedFuzzMem(m.Mem, seed)
		checked := 0
		boundSeen := 0
		for {
			in := &prog.Insts[m.PC]
			if in.Op == isa.BOUND && m.Executed > 0 && checked < 8 {
				boundSeen++
				if boundSeen%11 == 1 {
					rm := isa.NewMachine(prog)
					rm.Mem = m.Mem.Clone()
					rm.PC = prog.Regions[in.Imm].RecoveryPC
					rm.StepLimit = 5_000_000
					for r := range rm.Regs {
						rm.Regs[r] = 0xBADBADBADBAD
					}
					if err := rm.Run(); err != nil {
						t.Logf("seed %d: rollback: %v", seed, err)
						return false
					}
					if !golden.Equal(maskPrivate(rm.OutputMemory())) {
						t.Logf("seed %d: rollback diverged at pc %d", seed, m.PC)
						return false
					}
					checked++
				}
			}
			ok, err := m.Step()
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if !ok {
				return true
			}
		}
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(777))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartitionBudgetInvariant: for random programs, no path through
// any region exceeds the store budget the partitioner was given.
func TestQuickPartitionBudgetInvariant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0xb0d6e7))
		budget := 2 + rng.Intn(6)
		f := genProgram(seed)
		phys, err := compilePhysify(f.Clone())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if _, err := partitionAndCheckpoint(phys, budget, true); err != nil {
			t.Logf("seed %d budget %d: %v", seed, budget, err)
			return false
		}
		if v := checkBudget(phys, budget, true); v != 0 {
			t.Logf("seed %d budget %d: %d violations", seed, budget, v)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(31337))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
