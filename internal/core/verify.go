package core

import (
	"fmt"

	"repro/internal/isa"
)

// VerifyResilience statically checks a compiled resilient binary against
// the co-design's invariants, using only program-level analyses
// (isa.BuildCFG / LiveIn) that share no code with the passes that produced
// the binary — an independent auditor a downstream user can run over any
// program before trusting its recovery metadata.
//
// Checked invariants:
//
//  1. Every region has a recovery block: a run of RESTORE/ALU instructions
//     ending in a JMP back to that region's BOUND.
//  2. Coverage: every register live at a region's BOUND is produced by its
//     recovery block (restored or recomputed) before the jump back.
//  3. Recovery blocks are self-contained: any register they *read* is
//     produced earlier in the same block (recipes consume restored
//     leaves, never garbage).
//  4. Recovery code contains no stores (it must be re-executable any
//     number of times without touching memory).
//  5. Store budget: along any path, the stores of one region (optionally
//     ignoring colored checkpoints) never exceed the given budget.
//  6. Every BOUND carries a valid region ID, in program order.
//
// A nil error means the binary passes; otherwise the error describes the
// first violation.
func VerifyResilience(p *isa.Program, budget int, countCkpts bool) error {
	if len(p.Regions) == 0 {
		return fmt.Errorf("core: program has no regions")
	}
	g := isa.BuildCFG(p)
	liveIn := g.LiveIn()

	// Locate each region's BOUND instruction.
	boundPC := make([]int, len(p.Regions))
	for i := range boundPC {
		boundPC[i] = -1
	}
	seen := 0
	for i := range p.Insts {
		if p.Insts[i].Op != isa.BOUND {
			continue
		}
		id := int(p.Insts[i].Imm)
		if id != seen {
			return fmt.Errorf("core: BOUND at %d has region ID %d, want %d (program order)", i, id, seen)
		}
		if id < 0 || id >= len(p.Regions) {
			return fmt.Errorf("core: BOUND at %d carries invalid region %d", i, id)
		}
		boundPC[id] = i
		seen++
	}
	if seen != len(p.Regions) {
		return fmt.Errorf("core: %d BOUNDs for %d regions", seen, len(p.Regions))
	}

	// Check each recovery block.
	for id, ri := range p.Regions {
		if ri.RecoveryPC < 0 || ri.RecoveryPC >= len(p.Insts) {
			return fmt.Errorf("core: region %d recovery PC %d invalid", id, ri.RecoveryPC)
		}
		var produced isa.RegBitmap
		pc := ri.RecoveryPC
		for {
			if pc >= len(p.Insts) {
				return fmt.Errorf("core: region %d recovery block runs off the program", id)
			}
			in := &p.Insts[pc]
			if in.Op == isa.JMP {
				if in.Target != boundPC[id] {
					return fmt.Errorf("core: region %d recovery jumps to %d, want BOUND at %d",
						id, in.Target, boundPC[id])
				}
				break
			}
			if in.Op.IsStore() {
				return fmt.Errorf("core: region %d recovery block contains a store at %d", id, pc)
			}
			if in.Op != isa.RESTORE && !in.Op.IsALU() {
				return fmt.Errorf("core: region %d recovery block contains %v at %d", id, in.Op, pc)
			}
			// Self-containment: reads must be produced earlier in the block.
			var usebuf [3]isa.Reg
			for _, u := range in.Uses(usebuf[:0]) {
				if !produced.Has(u) {
					return fmt.Errorf("core: region %d recovery reads %v at %d before producing it", id, u, pc)
				}
			}
			if d, ok := in.Def(); ok {
				produced = produced.With(d)
			}
			pc++
		}
		// Coverage: registers live at the BOUND are all produced.
		need := liveIn[boundPC[id]]
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if need.Has(r) && !produced.Has(r) {
				return fmt.Errorf("core: region %d: %v live at its boundary but not produced by recovery", id, r)
			}
		}
	}

	// Store budget along every path: max-stores-since-BOUND dataflow over
	// the instruction CFG (forward, monotone max, saturating at budget+1).
	if budget > 0 {
		counts := make([]int, len(p.Insts))
		for i := range counts {
			counts[i] = -1 // unreached
		}
		counts[p.Entry] = 0
		work := []int{p.Entry}
		for len(work) > 0 {
			i := work[len(work)-1]
			work = work[:len(work)-1]
			c := counts[i]
			in := &p.Insts[i]
			next := c
			switch {
			case in.Op == isa.BOUND:
				next = 0
			case in.Op.IsStore() && (countCkpts || in.Op != isa.CKPT):
				next = c + 1
				if next > budget {
					return fmt.Errorf("core: store at %d is the %dth of its region (budget %d)", i, next, budget)
				}
			}
			for _, s := range g.Succs[i] {
				if next > counts[s] {
					counts[s] = next
					work = append(work, s)
				}
			}
		}
	}
	return nil
}
