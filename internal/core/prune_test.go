package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// physFor compiles the function to physical form and runs partitioning and
// checkpoint insertion with the given budget, returning the physical IR.
// countCkpts selects whether checkpoints occupy the store budget (false
// models a core with hardware coloring).
func physFor(t *testing.T, f *ir.Func, budget int, countCkpts bool) *ir.Func {
	t.Helper()
	phys, err := compilePhysify(f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partitionAndCheckpoint(phys, budget, countCkpts); err != nil {
		t.Fatal(err)
	}
	numberBounds(phys)
	return phys
}

// TestPruneConstantRecipe: a checkpointed constant definition crossing a
// boundary is reconstructible with a MOVI recipe.
func TestPruneConstantRecipe(t *testing.T) {
	b := ir.NewBuilder("konst")
	out := b.MovI(int64(isa.DataBase))
	k := b.MovI(42) // constant, live across the boundary below
	// Force a boundary with budget-filling stores.
	b.Store(out, 0, out)
	b.Store(out, 8, out)
	b.Store(out, 16, out) // budget 2 -> boundary lands before this
	b.Store(out, 24, k)   // use of k beyond the boundary
	b.Halt()
	f := b.MustFinish()

	phys := physFor(t, f, 2, true)
	before := countCheckpoints(phys)
	n, recipes, err := pruneCheckpoints(phys)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("no checkpoints pruned (had %d)", before)
	}
	// At least one recipe must be a pure MOVI.
	foundMovi := false
	for _, m := range recipes {
		for _, rec := range m {
			if len(rec.Instrs) == 1 && rec.Instrs[0].Op == isa.MOVI {
				foundMovi = true
			}
		}
	}
	if !foundMovi {
		t.Fatalf("no MOVI recipe registered: %+v", recipes)
	}
}

// TestPruneSliceRecipe: an address chain (shl+add over live leaves through
// dead temporaries) is reconstructible as a multi-instruction slice.
func TestPruneSliceRecipe(t *testing.T) {
	b := ir.NewBuilder("slice")
	base := b.MovI(int64(isa.DataBase))
	i := b.MovI(3)
	off := b.OpI(isa.SHL, i, 3)      // dead temp after the ckpt
	addr := b.Op(isa.ADD, base, off) // the pruned value
	// Boundary-forcing stores; addr used beyond it.
	b.Store(base, 0, base)
	b.Store(base, 8, base)
	b.Store(base, 16, base)
	b.Store(addr, 0, i) // use of addr (and i) beyond the boundary
	b.Halt()
	f := b.MustFinish()

	phys := physFor(t, f, 2, false)
	_, recipes, err := pruneCheckpoints(phys)
	if err != nil {
		t.Fatal(err)
	}
	foundSlice := false
	for _, m := range recipes {
		for _, rec := range m {
			if len(rec.Instrs) >= 2 {
				foundSlice = true
				if len(rec.Deps) == 0 {
					t.Errorf("slice recipe with no leaf deps: %+v", rec)
				}
			}
		}
	}
	if !foundSlice {
		t.Fatalf("no multi-instruction slice recipe: %+v", recipes)
	}
}

// TestPruneRejectsLoopCarried: a value redefined around a loop must keep
// its checkpoint — a recipe at the loop-header boundary would resurrect
// the first iteration's value (the poison-walk rule).
func TestPruneRejectsLoopCarried(t *testing.T) {
	b := ir.NewBuilder("carried")
	out := b.MovI(int64(isa.DataBase))
	acc := b.MovI(1) // candidate: constant def, but redefined in the loop
	i := b.MovI(0)
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Fallthrough(head)
	b.SetBlock(head)
	b.BranchI(isa.BGE, i, 8, exit, body)
	b.SetBlock(body)
	b.OpITo(isa.MUL, acc, acc, 3) // redefinition reaching the header bound
	b.OpITo(isa.ADD, i, i, 1)
	b.Jump(head)
	b.SetBlock(exit)
	b.Store(out, 0, acc)
	b.Halt()
	f := b.MustFinish()

	phys := physFor(t, f, 2, true)
	_, recipes, err := pruneCheckpoints(phys)
	if err != nil {
		t.Fatal(err)
	}
	// acc's initial MOVI checkpoint must not have a recipe at the loop
	// header bound: find the header bound's ID and check.
	dt := ir.ComputeDominators(phys)
	loops := ir.FindLoops(phys, dt)
	if len(loops.Loops) != 1 {
		t.Fatalf("loops = %d", len(loops.Loops))
	}
	header := loops.Loops[0].Header
	if header.Instrs[0].Op != isa.BOUND {
		t.Fatal("no bound at loop header")
	}
	headerID := int(header.Instrs[0].Imm)
	for reg, rec := range recipes[headerID] {
		if len(rec.Instrs) == 1 && rec.Instrs[0].Op == isa.MOVI {
			// A MOVI recipe at the header for a loop-carried register
			// would be the classic unsoundness; make sure the register is
			// genuinely loop-invariant.
			for blk := range loops.Loops[0].Body {
				for j := range blk.Instrs {
					if d, ok := blk.Instrs[j].Def(); ok && d == reg {
						t.Fatalf("recipe for loop-redefined %v at header bound", reg)
					}
				}
			}
		}
	}
}

// TestPruneRejectsClobberedDep: a recipe operand redefined between the def
// and the boundary invalidates the recipe.
func TestPruneRejectsClobberedDep(t *testing.T) {
	b := ir.NewBuilder("clobber")
	out := b.MovI(int64(isa.DataBase))
	x := b.MovI(5)
	y := b.OpI(isa.ADD, x, 1) // candidate: y = x + 1
	b.OpITo(isa.MUL, x, x, 7) // x clobbered while y still lives
	b.Store(out, 0, out)
	b.Store(out, 8, out)
	b.Store(out, 16, out) // boundary forced here
	b.Store(out, 24, y)   // y used beyond the boundary
	b.Store(out, 32, x)
	b.Halt()
	f := b.MustFinish()

	phys := physFor(t, f, 2, true)
	_, recipes, err := pruneCheckpoints(phys)
	if err != nil {
		t.Fatal(err)
	}
	// No recipe may compute its root from x via "add root, x, #1": x's
	// restored value at recovery is the clobbered one.
	for _, m := range recipes {
		for _, rec := range m {
			if len(rec.Instrs) == 1 && rec.Instrs[0].Op == isa.ADD &&
				rec.Instrs[0].HasImm && rec.Instrs[0].Imm == 1 {
				t.Fatalf("recipe uses clobbered dependency: %+v", rec)
			}
		}
	}
}

// TestPruneRejectsLoadDef: load results are never reconstructible.
func TestPruneRejectsLoadDef(t *testing.T) {
	b := ir.NewBuilder("loaddef")
	base := b.MovI(int64(isa.DataBase))
	v := b.Load(base, 0)
	b.Store(base, 8, base)
	b.Store(base, 16, base)
	b.Store(base, 24, base) // boundary forced
	b.Store(base, 32, v)    // v used beyond it
	b.Halt()
	f := b.MustFinish()

	phys := physFor(t, f, 2, true)
	_, recipes, err := pruneCheckpoints(phys)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range recipes {
		for _, rec := range m {
			for _, in := range rec.Instrs {
				if in.Op == isa.LD {
					t.Fatalf("recipe contains a load: %+v", rec)
				}
			}
		}
	}
}
