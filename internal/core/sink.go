package core

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// sinkCheckpoints relaxes eager checkpointing (§4.1.4): a checkpoint only
// has to execute (a) before the register is consumed by a later region's
// recovery and (b) before its defining region ends. Two legal motions
// follow:
//
//  1. Within a region: move the checkpoint from right-after-the-def down to
//     just before the next BOUND in the same block, un-serializing it from
//     the defining instruction (complementing the scheduler).
//
//  2. Out of a loop (the Fig. 10 case): when the checkpointed register is
//     dead at the loop header boundary — i.e. every iteration redefines it
//     before any use, so no in-loop region restart ever restores it — the
//     per-iteration checkpoint can be removed entirely and replaced by one
//     checkpoint at each loop exit where the register is live. Soundness:
//     an error inside the loop restarts an iteration region, which
//     re-executes the definition; an error after the loop but before the
//     sunk checkpoint restarts a region whose entry is the last header
//     boundary, and the path from there to the fault re-executes the
//     definition too.
//
// Both motions are budget-aware when checkpoints count against the store
// budget (no hardware coloring): a checkpoint is only moved into a segment
// that still has room for one more store, so partitioning invariants hold
// without re-running the fixpoint. With colored checkpoints the budget is
// irrelevant to the motion. Returns (sunk-in-block, sunk-out-of-loop).
func sinkCheckpoints(f *ir.Func, budget int, countCkpts bool) (inBlock, outOfLoop int) {
	dt := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dt)
	lv := ir.ComputeLiveness(f)

	// Phase 2 first (loop exits), since it deletes in-loop checkpoints
	// that phase 1 would otherwise just move around.
	for _, l := range loops.Loops {
		outOfLoop += sinkOutOfLoop(f, l, lv, budget, countCkpts)
		if outOfLoop > 0 {
			lv = ir.ComputeLiveness(f)
		}
	}

	// Phase 1: within-block sink toward the next BOUND.
	for _, b := range f.Blocks {
		inBlock += sinkWithinBlock(b)
	}
	dedupeCheckpoints(f)
	return inBlock, outOfLoop
}

// sinkWithinBlock moves each checkpoint down to just before the next BOUND
// in its block, as long as no intervening instruction redefines the
// register (there cannot be one — checkpoints follow the last def — but
// scheduling may have interleaved code, so it is checked) and no
// intervening instruction is a branch. Returns the number moved.
func sinkWithinBlock(b *ir.Block) int {
	moved := 0
	for i := 0; i < len(b.Instrs); i++ {
		if b.Instrs[i].Op != isa.CKPT {
			continue
		}
		r := b.Instrs[i].Src2
		// Find the last position before the next BOUND/branch/redef.
		j := i
		for k := i + 1; k < len(b.Instrs); k++ {
			op := b.Instrs[k].Op
			if op == isa.BOUND || op.IsBranch() || op == isa.HALT {
				break
			}
			if d, ok := b.Instrs[k].Def(); ok && d == r {
				break
			}
			j = k
		}
		if j == i {
			continue
		}
		ck := b.Instrs[i]
		copy(b.Instrs[i:], b.Instrs[i+1:j+1])
		b.Instrs[j] = ck
		moved++
	}
	return moved
}

// sinkOutOfLoop implements the Fig. 10 motion for one loop. The register
// must be dead at *every* region boundary inside the loop — not just the
// header: partitioning places additional BOUNDs mid-iteration, and a
// restart at any of them restores the register from its checkpoint, so a
// register live at such a bound must keep an in-loop checkpoint.
func sinkOutOfLoop(f *ir.Func, l *ir.Loop, lv *ir.Liveness, budget int, countCkpts bool) int {
	// Registers live at any in-loop BOUND.
	liveAtSomeBound := ir.NewRegSet(f.NumVRegs)
	for blk := range l.Body {
		var la []ir.RegSet
		for i := range blk.Instrs {
			if blk.Instrs[i].Op != isa.BOUND {
				continue
			}
			if la == nil {
				la = lv.LiveAcross(blk)
			}
			liveAtSomeBound.UnionWith(la[i])
		}
	}
	sunk := 0
	for blk := range l.Body {
		for i := 0; i < len(blk.Instrs); i++ {
			if blk.Instrs[i].Op != isa.CKPT {
				continue
			}
			r := blk.Instrs[i].Src2
			if liveAtSomeBound.Has(r) {
				continue // needed by an in-loop region restart
			}
			// The register must be defined inside this loop (it is — a
			// checkpoint follows its def), and every exit where r is live
			// must accept one more store within budget.
			exits := make([]*ir.Block, 0, len(l.Exits))
			for _, ex := range l.Exits {
				if lv.In[ex].Has(r) {
					exits = append(exits, ex)
				}
			}
			ok := true
			for _, ex := range exits {
				if l.Body[ex] || (countCkpts && !segmentHasRoom(ex, budget)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Remove the in-loop checkpoint...
			blk.Instrs = append(blk.Instrs[:i:i], blk.Instrs[i+1:]...)
			i--
			// ...and checkpoint r at the top of each relevant exit, before
			// the exit's first BOUND so it stays in the region entered
			// from the loop.
			for _, ex := range exits {
				ck := ir.Instr{Op: isa.CKPT, Dst: ir.NoReg, Src1: ir.NoReg, Src2: r, Kind: isa.StoreCheckpoint}
				ex.Instrs = append([]ir.Instr{ck}, ex.Instrs...)
			}
			sunk++
		}
	}
	return sunk
}

// segmentHasRoom reports whether the leading segment of block b (up to its
// first BOUND) has fewer than budget stores, so one more checkpoint fits.
// Conservative: callers only insert at the very top of b.
func segmentHasRoom(b *ir.Block, budget int) bool {
	n := 0
	for i := range b.Instrs {
		if b.Instrs[i].Op == isa.BOUND {
			break
		}
		if b.Instrs[i].Op.IsStore() {
			n++
		}
	}
	return n+1 <= budget-1 // keep one slot of headroom for upstream stores
}
