package artifact

import (
	"fmt"
	"regexp"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ir"
)

const dotSource = `func dot
b0: -> b1
    movi v0, #0
    movi v1, #0
b1: -> b2 b1
    ld v2, [v1, #0]
    ld v3, [v1, #1024]
    mul v2, v2, v3
    add v0, v0, v2
    add v1, v1, #8
    blt v1, #64
b2:
    st v0, [v1, #4096]
    halt
`

// The same program with different whitespace, ordering of incidental
// formatting, and extra blank lines — must fingerprint identically
// because Fingerprint hashes the canonical String rendering.
const dotSourceMessy = "func dot\n\n" +
	"b0:    ->   b1\n" +
	"  movi   v0, #0\n" +
	"\tmovi v1, #0\n" +
	"b1: -> b2 b1\n" +
	"    ld v2, [v1, #0]\n" +
	"    ld v3, [v1, #1024]\n" +
	"    mul v2, v2, v3\n" +
	"    add v0, v0, v2\n" +
	"    add v1, v1, #8\n" +
	"    blt v1, #64\n" +
	"\n" +
	"b2:\n" +
	"    st v0, [v1, #4096]\n" +
	"    halt\n"

func parse(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestFingerprintCanonicalization(t *testing.T) {
	a := Fingerprint(parse(t, dotSource))
	b := Fingerprint(parse(t, dotSourceMessy))
	if a != b {
		t.Fatalf("formatting changed the fingerprint: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(a) {
		t.Fatalf("fingerprint %q is not 32 lowercase hex chars", a)
	}
	// A one-immediate change is a different program.
	changed := parse(t, dotSource)
	changed.Blocks[0].Instrs[0].Imm = 7
	if Fingerprint(changed) == a {
		t.Fatal("distinct programs share a fingerprint")
	}
}

func TestCompileAllSchemes(t *testing.T) {
	f := parse(t, dotSource)
	e, err := CompileAll(f, 4, len(dotSource))
	if err != nil {
		t.Fatalf("CompileAll: %v", err)
	}
	for _, name := range SchemeNames {
		if e.Schemes[name] == nil {
			t.Errorf("scheme %q missing from entry", name)
		}
	}
	if e.SBSize != 4 || e.Name != "dot" || e.Fingerprint != Fingerprint(parse(t, dotSource)) {
		t.Errorf("entry metadata wrong: %+v", e)
	}
	if e.Size() <= int64(len(dotSource)) {
		t.Errorf("entry size %d should exceed raw source (%d): compiled images count", e.Size(), len(dotSource))
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0, nil)
	f := parse(t, dotSource)
	fp := Fingerprint(f)

	var builds atomic.Int64
	build := func() (*Entry, error) {
		builds.Add(1)
		return CompileAll(f.Clone(), 4, len(dotSource))
	}

	const callers = 16
	var wg sync.WaitGroup
	entries := make([]*Entry, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.GetOrCompute(fp, build)
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for concurrent identical submissions, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent callers got different entries")
		}
	}
	st := c.Stats()
	if st.Compiles != 1 {
		t.Errorf("Stats.Compiles = %d, want 1", st.Compiles)
	}
	if st.Entries != 1 {
		t.Errorf("Stats.Entries = %d, want 1", st.Entries)
	}

	// A later identical submission is a pure hit: zero new compiles.
	if _, hit, err := c.GetOrCompute(fp, build); err != nil || !hit {
		t.Fatalf("resubmission: hit=%v err=%v, want cache hit", hit, err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("resubmission recompiled (builds=%d)", n)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewCache(0, nil)
	wantErr := fmt.Errorf("boom")
	if _, _, err := c.GetOrCompute("deadbeef", func() (*Entry, error) { return nil, wantErr }); err == nil {
		t.Fatal("build error swallowed")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed build left %d entries resident", st.Entries)
	}
	// The next attempt must run the build again (errors are not cached).
	ran := false
	_, _, err := c.GetOrCompute("deadbeef", func() (*Entry, error) {
		ran = true
		return nil, wantErr
	})
	if err == nil || !ran {
		t.Fatalf("retry after failed build: ran=%v err=%v", ran, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Entries of 100 bytes each; bound admits exactly two.
	mk := func(fp string) *Entry {
		return &Entry{Fingerprint: fp, size: 100}
	}
	c := NewCache(200, nil)
	for _, fp := range []string{"a", "b"} {
		fp := fp
		if _, _, err := c.GetOrCompute(fp, func() (*Entry, error) { return mk(fp), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU tail, then insert "c".
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	if _, _, err := c.GetOrCompute("c", func() (*Entry, error) { return mk("c"), nil }); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b still resident")
	}
	for _, fp := range []string{"a", "c"} {
		if _, ok := c.Get(fp); !ok {
			t.Errorf("entry %s evicted, want resident", fp)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Stats.Evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 200 {
		t.Errorf("Stats.Bytes = %d, want 200", st.Bytes)
	}
}

func TestCacheOversizedEntryAdmitted(t *testing.T) {
	// An entry larger than the whole bound is still admitted alone — the
	// compile is already paid for — and evicted by the next insert.
	c := NewCache(50, nil)
	if _, _, err := c.GetOrCompute("big", func() (*Entry, error) {
		return &Entry{Fingerprint: "big", size: 500}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversized entry rejected outright; should be admitted alone")
	}
	if _, _, err := c.GetOrCompute("small", func() (*Entry, error) {
		return &Entry{Fingerprint: "small", size: 10}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); ok {
		t.Error("oversized entry survived the next insert")
	}
}
