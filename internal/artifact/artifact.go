// Package artifact is the content-addressed compiled-program cache
// behind the multi-tenant ingestion front door (grown from
// examples/artifactcache): programs are fingerprinted over their
// canonicalized IR text, compiled once under every scheme, and the
// compiled images are kept in a size-bounded LRU so concurrent
// submissions of the same program compile exactly once (single-flight)
// and repeat submissions compile zero times.
package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Fingerprint returns the content hash of a function: SHA-256 over the
// canonical ir.Func.String rendering, truncated to 128 bits (32 hex
// characters). Canonicalizing through String first means whitespace,
// comments, and block-label spelling differences in the submitted text
// do not change the fingerprint — two sources that parse to the same IR
// are the same program.
func Fingerprint(f *ir.Func) string {
	sum := sha256.Sum256([]byte(f.String()))
	return hex.EncodeToString(sum[:16])
}

// FingerprintText fingerprints source text that has already been
// canonicalized (or whose canonical form the caller wants to address
// directly). Prefer Fingerprint on the parsed function.
func FingerprintText(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:16])
}

// Entry is one cached compilation: the program compiled under every
// scheme, keyed by fingerprint, with enough metadata to validate a
// campaign spec against it without reparsing the source.
type Entry struct {
	Fingerprint string
	// Name is the parsed function name (informational).
	Name string
	// Schemes maps scheme name ("baseline", "turnstile", "turnpike") to
	// the compiled executable image.
	Schemes map[string]*isa.Program
	// SBSize is the store-buffer size the resilient schemes were
	// compiled for; campaigns against this entry must simulate the same.
	SBSize int
	// Blocks/Instrs/VRegs describe the parsed IR.
	Blocks, Instrs, VRegs int
	// SourceBytes is len(source) of the submitted text.
	SourceBytes int
	// size is the cache-accounting cost in bytes (wire size of every
	// compiled image plus the source), fixed at build time.
	size int64
}

// Size returns the entry's cache-accounting cost in bytes.
func (e *Entry) Size() int64 { return e.size }

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 // Get/GetOrCompute served from the cache
	Misses    uint64 // GetOrCompute had to build (or join a build)
	Compiles  uint64 // build functions actually run (single-flight dedup keeps this ≤ Misses)
	Evictions uint64 // entries dropped by the LRU size bound
	Entries   int    // resident entries
	Bytes     int64  // resident bytes
}

// Cache is the size-bounded LRU of compiled entries with single-flight
// build dedup: concurrent GetOrCompute calls for one fingerprint run the
// build function once and share its result. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element // fingerprint → LRU element holding *Entry
	lru      list.List                // front = most recently used
	inflight map[string]*flight

	hits, misses, compiles, evictions uint64
	// metrics, when set, mirrors the counters into the registry under
	// artifact.cache.*.
	metrics *obs.Registry
}

// flight is one in-progress build other callers wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// NewCache builds a cache bounded at maxBytes of compiled artifacts
// (≤0 means a 64 MiB default). reg, when non-nil, receives the cache
// counters as artifact.cache.{hits,misses,compiles,evictions}.
func NewCache(maxBytes int64, reg *obs.Registry) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
		metrics:  reg,
	}
}

// Get returns the cached entry for fp, marking it most recently used.
func (c *Cache) Get(fp string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.count("artifact.cache.hits")
	return el.Value.(*Entry), true
}

// GetOrCompute returns the entry for fp, building it with build on a
// miss. Concurrent calls for the same fp share one build (single-flight):
// exactly one runs build, the rest block until it finishes and return
// the same entry or error. hit reports whether the call was served
// without running (or waiting on) a build. A build error is returned to
// every waiter and nothing is cached.
func (c *Cache) GetOrCompute(fp string, build func() (*Entry, error)) (e *Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.count("artifact.cache.hits")
		c.mu.Unlock()
		return el.Value.(*Entry), true, nil
	}
	c.misses++
	c.count("artifact.cache.misses")
	if fl, ok := c.inflight[fp]; ok {
		// Another submission of the same program is compiling right now;
		// join it instead of compiling again.
		c.mu.Unlock()
		<-fl.done
		return fl.entry, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[fp] = fl
	c.compiles++
	c.count("artifact.cache.compiles")
	c.mu.Unlock()

	fl.entry, fl.err = build()
	if fl.err == nil && fl.entry == nil {
		fl.err = fmt.Errorf("artifact: build for %s returned no entry", fp)
	}

	c.mu.Lock()
	delete(c.inflight, fp)
	if fl.err == nil {
		c.insertLocked(fp, fl.entry)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.entry, false, fl.err
}

// insertLocked adds an entry and evicts from the LRU tail until the
// size bound holds. An entry larger than the whole bound is still
// admitted alone — the submission already paid for the compile, and the
// next insert will evict it.
func (c *Cache) insertLocked(fp string, e *Entry) {
	if el, ok := c.entries[fp]; ok {
		// Lost a race with an identical insert; keep the resident one.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[fp] = c.lru.PushFront(e)
	c.bytes += e.Size()
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		tail := c.lru.Back()
		victim := tail.Value.(*Entry)
		c.lru.Remove(tail)
		delete(c.entries, victim.Fingerprint)
		c.bytes -= victim.Size()
		c.evictions++
		c.count("artifact.cache.evictions")
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Compiles: c.compiles,
		Evictions: c.evictions, Entries: len(c.entries), Bytes: c.bytes,
	}
}

func (c *Cache) count(name string) {
	if c.metrics != nil {
		c.metrics.Counter(name).Inc()
	}
}
