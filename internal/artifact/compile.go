package artifact

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
)

// SchemeNames are the compilation targets of a front-door submission, in
// build order: the baseline (the overhead denominator) plus both
// resilient schemes, so any accepted program can immediately serve
// evaluations and fault campaigns under either.
var SchemeNames = []string{"baseline", "turnstile", "turnpike"}

// optionsFor maps a scheme name to its compiler options at the given
// store-buffer size.
func optionsFor(scheme string, sbSize int) (core.Options, error) {
	switch scheme {
	case "baseline":
		return core.Options{Scheme: core.Baseline, SBSize: sbSize}, nil
	case "turnstile":
		return core.Options{Scheme: core.Turnstile, SBSize: sbSize}, nil
	case "turnpike":
		return core.TurnpikeAll(sbSize), nil
	}
	return core.Options{}, fmt.Errorf("artifact: unknown scheme %q", scheme)
}

// CompileAll compiles f under every scheme at sbSize (≤0 defaults to 4),
// audits each resilient image with the independent static verifier, and
// returns a cache entry. sourceBytes is recorded for quota accounting.
func CompileAll(f *ir.Func, sbSize, sourceBytes int) (*Entry, error) {
	if sbSize <= 0 {
		sbSize = 4
	}
	e := &Entry{
		Fingerprint: Fingerprint(f),
		Name:        f.Name,
		Schemes:     make(map[string]*isa.Program, len(SchemeNames)),
		SBSize:      sbSize,
		Blocks:      len(f.Blocks),
		Instrs:      f.InstrCount(),
		VRegs:       f.NumVRegs,
		SourceBytes: sourceBytes,
		size:        int64(sourceBytes),
	}
	for _, name := range SchemeNames {
		opt, err := optionsFor(name, sbSize)
		if err != nil {
			return nil, err
		}
		// Compile on a clone: the compiler mutates its input, and every
		// scheme must start from the same parsed function.
		compiled, err := core.Compile(f.Clone(), opt)
		if err != nil {
			return nil, fmt.Errorf("artifact: compile %s under %s: %w", f.Name, name, err)
		}
		if opt.Scheme != core.Baseline {
			// Audit before caching: a cached artifact is served to every
			// future campaign, so it must pass the same static resilience
			// checks a third-party binary would.
			if err := core.VerifyResilience(compiled.Prog, compiled.Stats.StoreBudget, !opt.ColoredCkpts); err != nil {
				return nil, fmt.Errorf("artifact: %s image failed the resilience audit: %w", name, err)
			}
		}
		n, err := compiled.Prog.WriteTo(io.Discard)
		if err != nil {
			return nil, fmt.Errorf("artifact: size %s image: %w", name, err)
		}
		e.Schemes[name] = compiled.Prog
		e.size += n
	}
	return e, nil
}

// CompileAllContext is CompileAll under a deadline: the compile runs in
// its own goroutine and the call returns ctx.Err() as soon as the
// context ends. The compiler itself is not cancellable, so an abandoned
// compile runs to completion in the background before its goroutine
// exits — acceptable because ParseLimits has already bounded the
// program, making the worst-case compile small.
func CompileAllContext(ctx context.Context, f *ir.Func, sbSize, sourceBytes int) (*Entry, error) {
	if ctx.Done() == nil {
		return CompileAll(f, sbSize, sourceBytes)
	}
	type res struct {
		e   *Entry
		err error
	}
	ch := make(chan res, 1)
	go func() {
		e, err := CompileAll(f, sbSize, sourceBytes)
		ch <- res{e, err}
	}()
	select {
	case r := <-ch:
		return r.e, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("artifact: compile deadline: %w", ctx.Err())
	}
}

// Deadline derives a compile context from a budget; 0 means no deadline.
func Deadline(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, budget)
}
