package service

// FuzzSubmitProgram throws adversarial submission text at the admission
// envelope — the exact surface POST /programs exposes to untrusted
// tenants. The envelope must never panic, must stay inside its
// declared bounds (parse limits, step budget), and must keep the
// content-addressing invariant: an accepted program's canonical form
// reparses to the same fingerprint.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/ir"
)

func FuzzSubmitProgram(f *testing.F) {
	// Seeds: a real kernel, its formatting variant, and the abuse
	// classes the front door must reject — malformed text, an infinite
	// loop, a block bomb, a vreg bomb, truncation, and binary junk.
	f.Add(frontDoorKernel)
	f.Add(frontDoorKernelMessy)
	f.Add("")
	f.Add("this is not IR")
	f.Add("func spin\nb0: -> b0\n    movi v0, #1\n    jmp\n")
	f.Add("func x\nb0:\n    halt\n")
	f.Add("func bomb\n" + strings.Repeat("b0:\n    movi v0, #1\n", 100))
	f.Add("func regs\nb0:\n    movi v9999, #1\n    halt\n")
	f.Add(frontDoorKernel[:len(frontDoorKernel)/2])
	f.Add("func j\nb0:\n    ld v0, [v1, #-8]\n    halt\n")
	f.Add("\x00\xff\xfe func \x01")

	limits := ir.ParseLimits{
		MaxSourceBytes:    4096,
		MaxBlocks:         64,
		MaxInstrsPerBlock: 64,
		MaxVRegs:          64,
	}
	store, err := NewProgramStore(ProgramStoreConfig{Dir: f.TempDir(), Limits: limits})
	if err != nil {
		f.Fatal(err)
	}
	const budget uint64 = 10_000

	f.Fuzz(func(t *testing.T, source string) {
		fn, steps, err := store.Validate(source, budget)
		if err != nil {
			// Rejections must be classifiable, typed failures — the 422
			// path — never raw panics (the harness catches those) and
			// never an accepted program.
			if fn != nil {
				t.Fatalf("Validate returned both a function and an error: %v", err)
			}
			return
		}
		if steps > budget {
			t.Fatalf("validation ran %d steps past the %d budget", steps, budget)
		}
		if len(source) > limits.MaxSourceBytes {
			t.Fatalf("accepted %d bytes past the %d source cap", len(source), limits.MaxSourceBytes)
		}
		// Content addressing: the canonical rendering must reparse to an
		// identical fingerprint, or the cache would serve wrong artifacts.
		fp := artifact.Fingerprint(fn)
		again, err := ir.ParseFuncLimits(fn.String(), limits)
		if err != nil {
			// Canonical output should always be within the same limits it
			// was admitted under — except a rare edge: String can render
			// longer than the submitted text. That is only acceptable for
			// the size cap, nothing structural.
			if !errors.Is(err, ir.ErrProgramTooLarge) {
				t.Fatalf("canonical form does not reparse: %v\n%s", err, fn.String())
			}
			return
		}
		if artifact.Fingerprint(again) != fp {
			t.Fatalf("canonical round-trip changed the fingerprint\nsource: %q", source)
		}
	})
}
