// Package service turns the fault-campaign engine into a crash-safe job
// service: a bounded queue with backpressure, a worker supervisor with
// deadline enforcement, exponential-backoff retry of transient failures,
// per-workload circuit breakers, and durable job state that survives a
// killed daemon — every in-flight campaign resumes from its checkpoint
// watermark on restart and merges to a byte-identical result.
package service

import (
	"context"
	"errors"
	"io/fs"
	"net"
	"net/url"

	"repro/internal/fault"
	"repro/internal/ir"
)

// Class is the retry supervisor's verdict on a job failure.
type Class int

const (
	// Transient failures — deadline overruns (the next attempt resumes
	// from the checkpoint watermark and makes fresh progress), I/O
	// hiccups, cancelled contexts — are retried with backoff.
	Transient Class = iota
	// Permanent failures recur on every attempt: the simulator is
	// deterministic, so an unexplained campaign failure is permanent by
	// default. Permanent failures fail the job immediately and count
	// toward the workload's circuit breaker.
	Permanent
)

func (c Class) String() string {
	if c == Permanent {
		return "permanent"
	}
	return "transient"
}

// classified wraps an error with an explicit Class, overriding Classify's
// inference.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// MarkTransient marks err as transient regardless of its type: retrying
// can help. Nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Transient}
}

// MarkPermanent marks err as permanent regardless of its type: no retry
// will ever succeed. Nil stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Permanent}
}

// Classify maps a job failure to its retry class. Explicit
// MarkTransient/MarkPermanent wrappers win; otherwise the convention
// shared with internal/fault applies:
//
//   - context deadline/cancellation → Transient: the attempt was cut
//     short, not wrong, and the checkpoint watermark makes the retry
//     cheaper than the original attempt;
//   - fault.ErrCheckpointCorrupt → Transient: the engine restarts fresh
//     over a corrupt file, so a retry proceeds;
//   - filesystem errors → Transient: disks fill and unfill;
//   - network errors (net.Error, *url.Error — the fleet's worker ↔
//     coordinator transport) → Transient: connections drop and reconnect;
//   - fault.ErrInvalidConfig → Permanent: the campaign configuration can
//     never succeed;
//   - fault.ErrShardInvalid / fault.ErrShardMismatch → Permanent: the
//     submitting executor is broken, not the network;
//   - ir.ErrStepLimit → Permanent: the interpreter is deterministic, so
//     a program that burned its whole step budget without halting will
//     burn it again on every retry;
//   - anything else → Permanent: the simulator is deterministic, so an
//     unexplained failure will recur on every retry.
func Classify(err error) Class {
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return Transient
	case errors.Is(err, fault.ErrCheckpointCorrupt):
		return Transient
	case errors.Is(err, fault.ErrInvalidConfig):
		return Permanent
	case errors.Is(err, fault.ErrShardInvalid), errors.Is(err, fault.ErrShardMismatch):
		return Permanent
	case errors.Is(err, ir.ErrStepLimit):
		return Permanent
	}
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) {
		return Transient
	}
	var urlErr *url.Error
	if errors.As(err, &urlErr) {
		return Transient
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return Transient
	}
	return Permanent
}
